// Faultstorm: a miniature Figure 4 — compare every recovery method on the
// thermal2 analogue (the paper's slowest-converging matrix) under
// increasing error-injection rates, with the wall-clock exponential
// injector of §5.3.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/inject"
	"repro/internal/matgen"
)

func main() {
	a := matgen.Thermal2Analogue(4096)
	b := matgen.Ones(a.N)
	fmt.Printf("thermal2 analogue: n=%d nnz=%d\n", a.N, a.NNZ())

	base := core.Config{Workers: 4, PageDoubles: 256, Tol: 1e-8}

	// Ideal baseline for the normalized MTBE.
	idealCfg := base
	idealCfg.Method = core.MethodIdeal
	ideal, err := core.NewCG(a, b, idealCfg)
	if err != nil {
		log.Fatal(err)
	}
	iref, err := ideal.Run()
	if err != nil {
		log.Fatal(err)
	}
	tau := iref.Elapsed
	fmt.Printf("ideal: %d iterations in %v\n\n", iref.Iterations, tau.Round(time.Millisecond))

	methods := []core.Method{core.MethodAFEIR, core.MethodFEIR, core.MethodLossy, core.MethodCheckpoint, core.MethodTrivial}
	rates := []float64{1, 5, 20}

	fmt.Printf("%-8s", "method")
	for _, r := range rates {
		fmt.Printf("%14s", fmt.Sprintf("rate %gx", r))
	}
	fmt.Println("   (slowdown vs ideal; F = did not converge)")
	for _, m := range methods {
		fmt.Printf("%-8s", m)
		for _, rate := range rates {
			mtbe := time.Duration(tau.Seconds() / rate * float64(time.Second))
			cfg := base
			cfg.Method = m
			cfg.MaxIter = 40 * a.N
			if m == core.MethodCheckpoint {
				cfg.ExpectedMTBE = mtbe
				cfg.Disk = core.NewSimDisk(0)
			}
			cg, err := core.NewCG(a, b, cfg)
			if err != nil {
				log.Fatal(err)
			}
			in := inject.NewInjector(cg.Space(), cg.DynamicVectors(), mtbe, int64(rate)*7+int64(m))
			in.Start()
			res, err := cg.Run()
			in.Stop()
			if err != nil || !res.Converged {
				fmt.Printf("%14s", "F")
				continue
			}
			fmt.Printf("%13.1f%%", (res.Elapsed.Seconds()/tau.Seconds()-1)*100)
		}
		fmt.Println()
	}
	fmt.Println("\nAFEIR overlaps recovery with reductions: cheapest at low rates.")
	fmt.Println("FEIR pays critical-path recoveries but covers late errors: wins at high rates.")
}
