// Quickstart: solve an SPD system with the asynchronous forward exact
// interpolation recovery (AFEIR) while a DUE destroys a page of the
// iterate mid-run. The solver detects the lost page through its fault
// bitmask, interpolates the exact replacement data from the solver's own
// redundancy relations, and converges at the fault-free rate.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/inject"
	"repro/internal/matgen"
)

func main() {
	// A 2-D Poisson problem: the "hello world" of SPD systems.
	a := matgen.Poisson2D(64, 64)
	b := matgen.Ones(a.N)
	fmt.Printf("system: n=%d, nnz=%d\n", a.N, a.NNZ())

	cfg := core.Config{
		Method:      core.MethodAFEIR,
		Workers:     4,
		PageDoubles: 128,
		Tol:         1e-10,
	}
	cg, err := core.NewCG(a, b, cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Schedule one DUE into a page of the iterate x at iteration 40 —
	// the hardware would raise SIGBUS; here the page's fault bit is set
	// and the content is lost.
	plan := &inject.Plan{
		ByIteration: true,
		Errors: []inject.PlannedError{
			{Vector: cg.Space().VectorByName("x"), Page: 7, AtIteration: 40},
		},
	}
	cfg.OnIteration = func(it int, rel float64) {
		plan.Tick(it)
		if it%50 == 0 {
			fmt.Printf("  iter %4d  relative residual %.3e\n", it, rel)
		}
	}
	cg, err = core.NewCG(a, b, cfg)
	if err != nil {
		log.Fatal(err)
	}
	plan.Errors[0].Vector = cg.Space().VectorByName("x")
	plan.Start()

	res, err := cg.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nconverged=%v in %d iterations (%v), true residual %.3e\n",
		res.Converged, res.Iterations, res.Elapsed.Round(time.Millisecond), res.RelResidual)
	fmt.Printf("faults seen: %d, pages recovered exactly: %d forward + %d inverse\n",
		res.Stats.FaultsSeen,
		res.Stats.RecoveredForward, res.Stats.RecoveredInverse)
	if res.Stats.Unrecovered > 0 {
		fmt.Printf("unrecovered pages: %d\n", res.Stats.Unrecovered)
	}
}
