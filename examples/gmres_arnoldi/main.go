// GMRES Arnoldi-basis recovery (§3.1.3): the Hessenberg matrix built by
// the Arnoldi process is itself the redundancy that protects the basis —
// any lost basis-vector page is rebuilt from
//
//	v_l = (A v_{l-1} - Σ_{k<l} h_{k,l-1} v_k) / h_{l,l-1}
//
// This example solves a non-symmetric system with resilient GMRES(20)
// while DUEs strike several Arnoldi vectors mid-cycle.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/matgen"
	"repro/internal/sparse"
)

func main() {
	// A convection-diffusion-like non-symmetric operator.
	n := 4000
	var tr []sparse.Triplet
	for i := 0; i < n; i++ {
		tr = append(tr, sparse.Triplet{Row: i, Col: i, Val: 4})
		if i > 0 {
			tr = append(tr, sparse.Triplet{Row: i, Col: i - 1, Val: -1.5})
		}
		if i < n-1 {
			tr = append(tr, sparse.Triplet{Row: i, Col: i + 1, Val: -0.5})
		}
	}
	a := sparse.NewCSRFromTriplets(n, n, tr)
	want := matgen.RandomVector(n, 99)
	b := make([]float64, n)
	a.MulVec(want, b)
	fmt.Printf("non-symmetric system: n=%d nnz=%d\n", a.N, a.NNZ())

	cfg := core.Config{PageDoubles: 256, Tol: 1e-10}
	sv, err := core.NewGMRES(a, b, 20, cfg)
	if err != nil {
		log.Fatal(err)
	}
	cfg.OnIteration = func(it int, rel float64) {
		// Strike three different Arnoldi vectors as the basis grows.
		switch it {
		case 5:
			sv.Space().VectorByName("v2").Poison(3)
		case 9:
			sv.Space().VectorByName("v7").Poison(11)
		case 26:
			sv.Space().VectorByName("x").Poison(6)
		}
	}
	sv, err = core.NewGMRES(a, b, 20, cfg)
	if err != nil {
		log.Fatal(err)
	}
	res, x, err := sv.Run()
	if err != nil {
		log.Fatal(err)
	}
	var maxErr float64
	for i := range x {
		if d := x[i] - want[i]; d > maxErr || -d > maxErr {
			if d < 0 {
				d = -d
			}
			maxErr = d
		}
	}
	fmt.Printf("converged=%v in %d Arnoldi steps (%v)\n",
		res.Converged, res.Iterations, res.Elapsed.Round(time.Millisecond))
	fmt.Printf("true residual %.3e, max solution error %.3e\n", res.RelResidual, maxErr)
	fmt.Printf("faults=%d, basis/iterate pages rebuilt: %d forward + %d inverse, unrecovered=%d\n",
		res.Stats.FaultsSeen, res.Stats.RecoveredForward, res.Stats.RecoveredInverse, res.Stats.Unrecovered)
}
