// Poisson3D: the paper's scaling workload (§5.5) at laptop scale — the
// HPCG-like 27-point stencil discretization of the 3-D Poisson equation,
// solved by the distributed resilient CG across goroutine "MPI ranks" with
// errors injected on several ranks, plus the modelled 64–1024-core
// speedup curves of Figure 5.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/matgen"
	"repro/internal/perfmodel"
	"repro/internal/shard"
)

func main() {
	const nx = 24 // 24³ = 13824 unknowns (the paper runs 512³ on 1024 cores)
	a := matgen.Poisson3D27(nx, nx, nx)
	b := matgen.Ones(a.N)
	fmt.Printf("27-point stencil: %d^3 = %d unknowns, %d nonzeros\n", nx, a.N, a.NNZ())

	const ranks = 4
	cfg := dist.Config{
		Method:      core.MethodFEIR,
		PageDoubles: 256,
		Tol:         1e-10,
		Inject: func(it int, ranks []*shard.Rank) {
			// Two DUEs on different ranks while the solve is in flight,
			// each targeting a page the rank owns.
			if it == 10 {
				ranks[1].Space.VectorByName("x").Poison(ranks[1].PLo + 1)
			}
			if it == 20 {
				ranks[3].Space.VectorByName("g").Poison(ranks[3].PLo + 1)
			}
		},
	}
	res, _, err := dist.SolveCG(a, b, ranks, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("distributed FEIR on %d ranks: converged=%v iterations=%d (%v)\n",
		ranks, res.Converged, res.Iterations, res.Elapsed.Round(time.Millisecond))
	fmt.Printf("true residual %.3e, faults=%d, exact recoveries: %d forward + %d inverse\n",
		res.RelResidual, res.Stats.FaultsSeen,
		res.Stats.RecoveredForward, res.Stats.RecoveredInverse)

	// The Figure 5 projection to MareNostrum scale.
	m := perfmodel.New()
	fmt.Printf("\nmodelled speedups for the 512^3 system (vs ideal on 64 cores):\n")
	fmt.Printf("%-8s", "cores")
	for _, c := range perfmodel.Fig5Cores {
		fmt.Printf("%8d", c)
	}
	fmt.Println()
	for _, curve := range m.Fig5() {
		if curve.Errors != 1 {
			continue
		}
		fmt.Printf("%-8s", curve.Method)
		for _, s := range curve.Speedup {
			fmt.Printf("%8.2f", s)
		}
		fmt.Println()
	}
	fmt.Printf("(1 error per run; ideal parallel efficiency at 1024 cores: %.1f%%)\n",
		m.ParallelEfficiency(1024)*100)
}
