// Benchmarks regenerating the paper's tables and figures (one per
// artefact) plus ablations for the design choices called out in DESIGN.md.
// The full-size reproductions run through cmd/due-bench; these benches use
// scaled-down workloads so `go test -bench=.` completes in minutes and
// reports the headline metrics with b.ReportMetric.
package repro_test

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/inject"
	"repro/internal/matgen"
	"repro/internal/perfmodel"
	"repro/internal/sparse"
)

func benchOpts() experiments.Options {
	return experiments.Options{
		Scale:       2048,
		Workers:     4,
		PageDoubles: 128,
		Reps:        1,
		Tol:         1e-8,
		Matrices:    []string{"qa8fm", "Dubcova3", "parabolic_fem"},
		Rates:       []int{1, 5},
		Seed:        1,
	}
}

// BenchmarkTable2 regenerates Table 2 (no-error overheads) and reports the
// AFEIR/FEIR/ckpt-200 overhead percentages.
func BenchmarkTable2(b *testing.B) {
	opts := benchOpts()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table2(opts)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range res.Rows {
			switch r.Method {
			case "AFEIR":
				b.ReportMetric(r.Overhead*100, "AFEIR-ovh-%")
			case "FEIR":
				b.ReportMetric(r.Overhead*100, "FEIR-ovh-%")
			case "ckpt 200":
				b.ReportMetric(r.Overhead*100, "ckpt200-ovh-%")
			}
		}
	}
}

// BenchmarkTable3 regenerates Table 3 (state-time increases).
func BenchmarkTable3(b *testing.B) {
	opts := benchOpts()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table3(opts)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range res.Rows {
			if r.Method == "FEIR" {
				b.ReportMetric(r.Imbalance*100, "FEIR-imbalance-%")
			}
		}
	}
}

// BenchmarkFig3 regenerates the Figure 3 single-error convergence study.
func BenchmarkFig3(b *testing.B) {
	opts := benchOpts()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig3(opts)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Series) != 5 {
			b.Fatalf("series = %d", len(res.Series))
		}
	}
}

// BenchmarkFig4Means regenerates the Figure 4 method-mean slowdowns on a
// reduced grid and reports the rate-1 means for AFEIR and FEIR.
func BenchmarkFig4Means(b *testing.B) {
	opts := benchOpts()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig4(opts, false)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.MethodMeans["AFEIR"][1]*100, "AFEIR@1x-%")
		b.ReportMetric(res.MethodMeans["FEIR"][1]*100, "FEIR@1x-%")
	}
}

// BenchmarkFig4PCGMeans regenerates the preconditioned panel of Figure 4.
func BenchmarkFig4PCGMeans(b *testing.B) {
	opts := benchOpts()
	opts.Matrices = []string{"qa8fm"}
	opts.Rates = []int{1}
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig4(opts, true)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.MethodMeans["AFEIR"][1]*100, "PCG-AFEIR@1x-%")
	}
}

// BenchmarkFig5Model regenerates the Figure 5 speedup curves from the
// calibrated model and reports the 1024-core anchors.
func BenchmarkFig5Model(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m := perfmodel.New()
		b.ReportMetric(m.Speedup(core.MethodAFEIR, 1024, 1), "AFEIR@1024c-1err")
		b.ReportMetric(m.Speedup(core.MethodFEIR, 1024, 1), "FEIR@1024c-1err")
		b.ReportMetric(m.Speedup(core.MethodAFEIR, 1024, 2), "AFEIR@1024c-2err")
		b.ReportMetric(m.ParallelEfficiency(1024)*100, "ideal-eff-%")
	}
}

// BenchmarkFig5Functional anchors the model with a real distributed run
// (goroutine ranks, 16³ stencil, two injected errors, FEIR).
func BenchmarkFig5Functional(b *testing.B) {
	opts := benchOpts()
	for i := 0; i < b.N; i++ {
		res, err := experiments.ValidateDistributed(core.MethodFEIR, 4, 2, opts)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Converged {
			b.Fatal("not converged")
		}
	}
}

// ---------------------------------------------------------------------
// Ablations (DESIGN.md §4).
// ---------------------------------------------------------------------

// BenchmarkAblationDoubleBuffer measures the memory-traffic cost of the
// double-buffered direction update (Listing 2) vs the in-place update the
// ideal CG uses — the price of the d = A⁻¹q redundancy.
func BenchmarkAblationDoubleBuffer(b *testing.B) {
	n := 1 << 16
	src := matgen.RandomVector(n, 1)
	d1 := matgen.RandomVector(n, 2)
	d2 := matgen.RandomVector(n, 3)
	b.Run("inplace", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sparse.XpbyRange(src, 0.5, d1, 0, n)
		}
	})
	b.Run("doublebuffer", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sparse.XpbyOutRange(src, 0.5, d2, d1, 0, n)
		}
	})
}

// BenchmarkAblationBlockSolve compares the diagonal-block factorizations a
// recovery can use (§2.3): Cholesky (SPD fast path), LU (general), QR
// least-squares (singular fallback), on a page-sized 512×512 block.
func BenchmarkAblationBlockSolve(b *testing.B) {
	a := matgen.Poisson2D(64, 64) // 4096: diagonal block of 512
	layout := sparse.BlockLayout{N: a.N, BlockSize: 512}
	lo, hi := layout.Range(2)
	block := a.DiagBlock(lo, hi)
	rhs := matgen.RandomVector(hi-lo, 4)
	b.Run("cholesky", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			c, err := sparse.NewCholesky(block)
			if err != nil {
				b.Fatal(err)
			}
			buf := append([]float64(nil), rhs...)
			c.Solve(buf)
		}
	})
	b.Run("lu", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			f, err := sparse.NewLU(block)
			if err != nil {
				b.Fatal(err)
			}
			f.Solve(rhs)
		}
	})
	b.Run("qr", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			q, err := sparse.NewQR(block)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := q.SolveLeastSquares(rhs); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationPageSize runs FEIR with one injected error at different
// recovery granularities: larger pages mean fewer, costlier recoveries.
func BenchmarkAblationPageSize(b *testing.B) {
	a := matgen.Poisson2D(48, 48)
	rhs := matgen.Ones(a.N)
	for _, pd := range []int{64, 128, 256, 512} {
		b.Run(sizeName(pd), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := core.Config{Method: core.MethodFEIR, Workers: 4, PageDoubles: pd, Tol: 1e-8}
				cg, err := core.NewCG(a, rhs, cfg)
				if err != nil {
					b.Fatal(err)
				}
				cfgI := cfg
				cfgI.OnIteration = func(it int, rel float64) {
					if it == 10 {
						cg.Space().VectorByName("x").Poison(0)
					}
				}
				cg, err = core.NewCG(a, rhs, cfgI)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := cg.Run(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func sizeName(pd int) string { return fmt.Sprintf("page%d", pd) }

// BenchmarkSpMV measures the core SpMV kernel on the 27-point stencil.
func BenchmarkSpMV(b *testing.B) {
	a := matgen.Poisson3D27(20, 20, 20)
	x := matgen.RandomVector(a.N, 5)
	y := make([]float64, a.N)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.MulVec(x, y)
	}
	b.SetBytes(int64(a.NNZ() * 12))
}

// BenchmarkCGVariantsNoErrors compares the per-solve cost of the ideal,
// FEIR and AFEIR CGs without faults: the Table 2 microcosm.
func BenchmarkCGVariantsNoErrors(b *testing.B) {
	a := matgen.Poisson2D(48, 48)
	rhs := matgen.Ones(a.N)
	for _, m := range []core.Method{core.MethodIdeal, core.MethodAFEIR, core.MethodFEIR} {
		b.Run(m.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cg, err := core.NewCG(a, rhs, core.Config{Method: m, Workers: 4, PageDoubles: 128, Tol: 1e-8})
				if err != nil {
					b.Fatal(err)
				}
				if _, err := cg.Run(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkInjectorThroughput measures the error-injection fast path.
func BenchmarkInjectorThroughput(b *testing.B) {
	a := matgen.Poisson2D(32, 32)
	cg, err := core.NewCG(a, matgen.Ones(a.N), core.Config{Method: core.MethodFEIR, PageDoubles: 64})
	if err != nil {
		b.Fatal(err)
	}
	vecs := cg.DynamicVectors()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vecs[i%len(vecs)].Poison(i % cg.Space().NumPages())
		if i%64 == 0 {
			cg.Space().ScramblePending()
			cg.Space().ClearAll()
		}
	}
	_ = inject.PlannedError{}
}

// BenchmarkAblationRecoveryAlwaysVsOnDemand measures the cost of the
// paper's always-instantiated recovery tasks against the §7 proposal of
// injecting them only when errors are signalled (no-error runs).
func BenchmarkAblationRecoveryAlwaysVsOnDemand(b *testing.B) {
	a := matgen.Poisson2D(48, 48)
	rhs := matgen.Ones(a.N)
	for _, onDemand := range []bool{false, true} {
		name := "always"
		if onDemand {
			name = "ondemand"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := core.Config{Method: core.MethodFEIR, Workers: 4, PageDoubles: 128, Tol: 1e-8, OnDemandRecovery: onDemand}
				cg, err := core.NewCG(a, rhs, cfg)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := cg.Run(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
