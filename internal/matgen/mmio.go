package matgen

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/sparse"
)

// ReadMatrixMarket parses a Matrix Market coordinate-format stream
// ("%%MatrixMarket matrix coordinate real {general|symmetric}") into a CSR
// matrix. Symmetric files are expanded to full storage. Pattern and
// integer fields are accepted (pattern entries become 1.0). Complex and
// array formats are rejected.
func ReadMatrixMarket(r io.Reader) (*sparse.CSR, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)

	if !sc.Scan() {
		return nil, fmt.Errorf("matgen: empty Matrix Market stream")
	}
	header := strings.Fields(strings.ToLower(sc.Text()))
	if len(header) < 5 || header[0] != "%%matrixmarket" || header[1] != "matrix" {
		return nil, fmt.Errorf("matgen: bad Matrix Market header %q", sc.Text())
	}
	format, field, symmetry := header[2], header[3], header[4]
	if format != "coordinate" {
		return nil, fmt.Errorf("matgen: unsupported format %q (only coordinate)", format)
	}
	switch field {
	case "real", "integer", "pattern":
	default:
		return nil, fmt.Errorf("matgen: unsupported field %q", field)
	}
	var symmetric, skewSymmetric bool
	switch symmetry {
	case "general":
	case "symmetric":
		symmetric = true
	case "skew-symmetric":
		skewSymmetric = true
	default:
		return nil, fmt.Errorf("matgen: unsupported symmetry %q", symmetry)
	}

	// Skip comments, read the size line.
	var n, m, nnz int
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		if _, err := fmt.Sscan(line, &n, &m, &nnz); err != nil {
			return nil, fmt.Errorf("matgen: bad size line %q: %w", line, err)
		}
		break
	}
	if n <= 0 || m <= 0 {
		return nil, fmt.Errorf("matgen: non-positive dimensions %dx%d", n, m)
	}

	tr := make([]sparse.Triplet, 0, nnz*2)
	count := 0
	for sc.Scan() && count < nnz {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("matgen: bad entry line %q", line)
		}
		i, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("matgen: bad row index %q: %w", fields[0], err)
		}
		j, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("matgen: bad col index %q: %w", fields[1], err)
		}
		v := 1.0
		if field != "pattern" {
			if len(fields) < 3 {
				return nil, fmt.Errorf("matgen: missing value in %q", line)
			}
			v, err = strconv.ParseFloat(fields[2], 64)
			if err != nil {
				return nil, fmt.Errorf("matgen: bad value %q: %w", fields[2], err)
			}
		}
		if i < 1 || i > n || j < 1 || j > m {
			return nil, fmt.Errorf("matgen: entry (%d,%d) out of range %dx%d", i, j, n, m)
		}
		i, j = i-1, j-1
		tr = append(tr, sparse.Triplet{Row: i, Col: j, Val: v})
		if (symmetric || skewSymmetric) && i != j {
			w := v
			if skewSymmetric {
				w = -v
			}
			tr = append(tr, sparse.Triplet{Row: j, Col: i, Val: w})
		}
		count++
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if count != nnz {
		return nil, fmt.Errorf("matgen: expected %d entries, found %d", nnz, count)
	}
	return sparse.NewCSRFromTriplets(n, m, tr), nil
}

// WriteMatrixMarket writes a CSR matrix in coordinate real format. When
// symmetric is true only the lower triangle is emitted with a symmetric
// header (the caller asserts the matrix is symmetric).
func WriteMatrixMarket(w io.Writer, a *sparse.CSR, symmetric bool) error {
	bw := bufio.NewWriter(w)
	sym := "general"
	if symmetric {
		sym = "symmetric"
	}
	if _, err := fmt.Fprintf(bw, "%%%%MatrixMarket matrix coordinate real %s\n", sym); err != nil {
		return err
	}
	nnz := 0
	for i := 0; i < a.N; i++ {
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			if symmetric && a.Cols[k] > i {
				continue
			}
			nnz++
		}
	}
	if _, err := fmt.Fprintf(bw, "%d %d %d\n", a.N, a.M, nnz); err != nil {
		return err
	}
	for i := 0; i < a.N; i++ {
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			j := a.Cols[k]
			if symmetric && j > i {
				continue
			}
			if _, err := fmt.Fprintf(bw, "%d %d %.17g\n", i+1, j+1, a.Vals[k]); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}
