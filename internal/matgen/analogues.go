package matgen

import (
	"fmt"
	"sort"

	"repro/internal/sparse"
)

// PaperMatrixNames lists the nine University of Florida matrices of the
// paper's evaluation (§5.1, Figure 4), in the paper's display order.
var PaperMatrixNames = []string{
	"af_shell8",
	"cfd2",
	"consph",
	"Dubcova3",
	"ecology2",
	"parabolic_fem",
	"qa8fm",
	"thermal2",
	"thermomech",
}

// PaperSizes records the original dimensions of the paper's matrices, for
// documentation and for choosing default scaled-down sizes.
var PaperSizes = map[string]int{
	"af_shell8":     504855,
	"cfd2":          123440,
	"consph":        83334,
	"Dubcova3":      146689,
	"ecology2":      999999,
	"parabolic_fem": 525825,
	"qa8fm":         66127,
	"thermal2":      1228045,
	"thermomech":    102158,
}

// AFShellAnalogue mimics af_shell8 (sheet-metal forming shell model):
// banded SPD, ~25 nnz/row, moderate conditioning. n is the target
// dimension.
func AFShellAnalogue(n int) *sparse.CSR {
	return Banded(n, 12, 1.05, 0xAF5E11)
}

// CFDAnalogue mimics cfd2 (pressure matrix from a CFD solver): 2-D
// 9-point stencil with variable coefficients, moderate-slow convergence.
func CFDAnalogue(n int) *sparse.CSR {
	nx, ny := gridSides(n)
	return Stencil9(nx, ny, 0.02, 0xCFD2)
}

// ConsphAnalogue mimics consph (FEM of concentric spheres, dense rows,
// ~72 nnz/row): random-geometry SPD with many couplings per row.
func ConsphAnalogue(n int) *sparse.CSR {
	return RandomSPD(n, 60, 1.02, 0xC045)
}

// DubcovaAnalogue mimics Dubcova3 (2-D PDE, fast converging): 5-point
// stencil with a strong diagonal shift.
func DubcovaAnalogue(n int) *sparse.CSR {
	nx, ny := gridSides(n)
	return Poisson2DVarCoeff(nx, ny, 1.0, func(x, y float64) float64 { return 1 + 0.5*x*y })
}

// EcologyAnalogue mimics ecology2 (5-point landscape/circuit-theory
// Laplacian, ~1M rows, slow-moderate convergence).
func EcologyAnalogue(n int) *sparse.CSR {
	nx, ny := gridSides(n)
	return Poisson2DVarCoeff(nx, ny, 0.005, func(x, y float64) float64 { return 1 })
}

// ParabolicFEMAnalogue mimics parabolic_fem (diffusion-convection FEM,
// 7 nnz/row, mass-plus-stiffness structure): I + dt·L, converges at a
// medium rate.
func ParabolicFEMAnalogue(n int) *sparse.CSR {
	nx, ny := gridSides(n)
	return Poisson2DVarCoeff(nx, ny, 0.3, func(x, y float64) float64 { return 0.5 + x })
}

// QA8FMAnalogue mimics qa8fm (3-D acoustics FE mass matrix): 27-point
// couplings with heavy diagonal dominance, κ ≈ O(10), converges in tens of
// iterations — the paper's fastest case.
func QA8FMAnalogue(n int) *sparse.CSR {
	nx, ny, nz := cubeSides(n)
	a := Poisson3D27(nx, ny, nz)
	// Strong diagonal shift: mass-matrix-like conditioning.
	b := a.Clone()
	for i := 0; i < b.N; i++ {
		for k := b.RowPtr[i]; k < b.RowPtr[i+1]; k++ {
			if b.Cols[k] == i {
				b.Vals[k] += 40
			}
		}
	}
	// The in-place edit invalidates the kernel shadows Clone built.
	b.BuildIndex32()
	return b
}

// Thermal2Analogue mimics thermal2 (unstructured thermal FEM, 1.2M rows,
// the paper's slowest-converging case): 5-point stencil with rough
// variable conductivity and a tiny shift.
func Thermal2Analogue(n int) *sparse.CSR {
	nx, ny := gridSides(n)
	return Poisson2DVarCoeff(nx, ny, 1e-4, func(x, y float64) float64 {
		// Rough, high-contrast conductivity field.
		if (int(x*8)+int(y*8))%2 == 0 {
			return 0.05
		}
		return 1.0
	})
}

// ThermomechAnalogue mimics thermomech_TC (thermomechanical coupling,
// fast converging): 3-D 7-point with a dominant diagonal.
func ThermomechAnalogue(n int) *sparse.CSR {
	nx, ny, nz := cubeSides(n)
	return Poisson3D7(nx, ny, nz, 8)
}

// PaperMatrix builds the named analogue at approximately dimension n (the
// exact dimension may round up to a full grid). Unknown names return an
// error listing the valid ones.
func PaperMatrix(name string, n int) (*sparse.CSR, error) {
	switch name {
	case "af_shell8":
		return AFShellAnalogue(n), nil
	case "cfd2":
		return CFDAnalogue(n), nil
	case "consph":
		return ConsphAnalogue(n), nil
	case "Dubcova3":
		return DubcovaAnalogue(n), nil
	case "ecology2":
		return EcologyAnalogue(n), nil
	case "parabolic_fem":
		return ParabolicFEMAnalogue(n), nil
	case "qa8fm":
		return QA8FMAnalogue(n), nil
	case "thermal2":
		return Thermal2Analogue(n), nil
	case "thermomech":
		return ThermomechAnalogue(n), nil
	}
	valid := append([]string(nil), PaperMatrixNames...)
	sort.Strings(valid)
	return nil, fmt.Errorf("matgen: unknown paper matrix %q (valid: %v)", name, valid)
}
