package matgen

import (
	"math"
	"testing"

	"repro/internal/sparse"
)

// requireSPDish validates structural invariants every generated workload
// must satisfy: valid CSR, symmetric, positive diagonal.
func requireSPDish(t *testing.T, a *sparse.CSR, name string) {
	t.Helper()
	if err := a.Validate(); err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	if a.N != a.M {
		t.Fatalf("%s: non-square %dx%d", name, a.N, a.M)
	}
	if !a.IsSymmetric(1e-12) {
		t.Fatalf("%s: not symmetric", name)
	}
	for i, d := range a.Diag() {
		if d <= 0 {
			t.Fatalf("%s: non-positive diagonal %v at %d", name, d, i)
		}
	}
}

// cgProbe runs plain CG and returns iterations to reach rtol, or -1.
func cgProbe(a *sparse.CSR, rtol float64, maxIter int) int {
	n := a.N
	b := Ones(n)
	x := make([]float64, n)
	g := make([]float64, n)
	d := make([]float64, n)
	q := make([]float64, n)
	copy(g, b)
	copy(d, b)
	bnorm := sparse.Norm2(b)
	eps := sparse.Dot(g, g)
	for it := 0; it < maxIter; it++ {
		if math.Sqrt(eps)/bnorm < rtol {
			return it
		}
		a.MulVec(d, q)
		alpha := eps / sparse.Dot(q, d)
		sparse.Axpy(alpha, d, x)
		sparse.Axpy(-alpha, q, g)
		epsNew := sparse.Dot(g, g)
		beta := epsNew / eps
		eps = epsNew
		sparse.Xpby(g, beta, d)
	}
	return -1
}

func TestPoisson2DStructure(t *testing.T) {
	a := Poisson2D(10, 12)
	requireSPDish(t, a, "poisson2d")
	if a.N != 120 {
		t.Fatalf("N = %d, want 120", a.N)
	}
	// Interior row has 5 entries.
	if got := a.RowNNZ(5*12 + 6); got != 5 {
		t.Fatalf("interior row nnz = %d, want 5", got)
	}
	// Corner row has 3.
	if got := a.RowNNZ(0); got != 3 {
		t.Fatalf("corner row nnz = %d, want 3", got)
	}
}

func TestPoisson3D27Structure(t *testing.T) {
	a := Poisson3D27(4, 4, 4)
	requireSPDish(t, a, "poisson3d27")
	if a.N != 64 {
		t.Fatalf("N = %d, want 64", a.N)
	}
	// Interior node (1,1,1)... for a 4^3 grid index (1*4+1)*4+1 = 21 has 27 entries.
	if got := a.RowNNZ(21); got != 27 {
		t.Fatalf("interior row nnz = %d, want 27", got)
	}
	// Row sums are >= 0 (diagonally dominant by construction at boundaries).
	for i := 0; i < a.N; i++ {
		var s float64
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			s += a.Vals[k]
		}
		if s < -1e-12 {
			t.Fatalf("row %d sum %v < 0", i, s)
		}
	}
}

func TestPoisson3D7Structure(t *testing.T) {
	a := Poisson3D7(3, 4, 5, 1.5)
	requireSPDish(t, a, "poisson3d7")
	if a.N != 60 {
		t.Fatalf("N = %d", a.N)
	}
	if a.At(0, 0) != 6+1.5 {
		t.Fatalf("diag = %v", a.At(0, 0))
	}
}

func TestPoisson2DVarCoeffSymmetricWithRoughField(t *testing.T) {
	a := Poisson2DVarCoeff(8, 8, 0.01, func(x, y float64) float64 {
		if x > 0.5 {
			return 10
		}
		return 0.1
	})
	requireSPDish(t, a, "varcoeff")
}

func TestStencil9Structure(t *testing.T) {
	a := Stencil9(9, 9, 0.1, 1)
	requireSPDish(t, a, "stencil9")
	// Interior row: 9 entries (8 neighbours + diagonal).
	if got := a.RowNNZ(4*9 + 4); got != 9 {
		t.Fatalf("interior row nnz = %d, want 9", got)
	}
}

func TestBandedStructure(t *testing.T) {
	a := Banded(100, 5, 1.1, 42)
	requireSPDish(t, a, "banded")
	for i := 0; i < a.N; i++ {
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			if d := a.Cols[k] - i; d > 5 || d < -5 {
				t.Fatalf("entry (%d,%d) outside band", i, a.Cols[k])
			}
		}
	}
}

func TestBandedDeterministic(t *testing.T) {
	a := Banded(50, 3, 1.2, 7)
	b := Banded(50, 3, 1.2, 7)
	if a.NNZ() != b.NNZ() {
		t.Fatal("banded generator not deterministic in structure")
	}
	for i := range a.Vals {
		if a.Vals[i] != b.Vals[i] {
			t.Fatal("banded generator not deterministic in values")
		}
	}
}

func TestRandomSPDStructure(t *testing.T) {
	a := RandomSPD(200, 10, 1.05, 3)
	requireSPDish(t, a, "randomspd")
}

func TestAllPaperAnaloguesAreSPDAndCGConverges(t *testing.T) {
	for _, name := range PaperMatrixNames {
		a, err := PaperMatrix(name, 900)
		if err != nil {
			t.Fatal(err)
		}
		requireSPDish(t, a, name)
		it := cgProbe(a, 1e-8, 20000)
		if it < 0 {
			t.Fatalf("%s: CG did not converge in 20000 iterations", name)
		}
		t.Logf("%s: n=%d nnz=%d CG iters=%d", name, a.N, a.NNZ(), it)
	}
}

func TestAnalogueConvergenceOrdering(t *testing.T) {
	// qa8fm must converge much faster than thermal2 — the paper's spread
	// of "fast" vs "slow" matrices drives the Fig 4 trade-offs.
	fast, err := PaperMatrix("qa8fm", 1000)
	if err != nil {
		t.Fatal(err)
	}
	slow, err := PaperMatrix("thermal2", 1000)
	if err != nil {
		t.Fatal(err)
	}
	itFast := cgProbe(fast, 1e-8, 50000)
	itSlow := cgProbe(slow, 1e-8, 50000)
	if itFast < 0 || itSlow < 0 {
		t.Fatalf("convergence probe failed: fast=%d slow=%d", itFast, itSlow)
	}
	if itFast*4 > itSlow {
		t.Fatalf("expected qa8fm (%d iters) to be at least 4x faster than thermal2 (%d iters)", itFast, itSlow)
	}
}

func TestPaperMatrixUnknownName(t *testing.T) {
	if _, err := PaperMatrix("nope", 100); err == nil {
		t.Fatal("accepted unknown matrix name")
	}
}

func TestPaperNamesHaveSizes(t *testing.T) {
	for _, name := range PaperMatrixNames {
		if PaperSizes[name] == 0 {
			t.Fatalf("no recorded paper size for %s", name)
		}
	}
}

func TestRandomVectorDeterministic(t *testing.T) {
	a := RandomVector(10, 5)
	b := RandomVector(10, 5)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("RandomVector not deterministic")
		}
	}
}

func TestOnes(t *testing.T) {
	v := Ones(3)
	if v[0] != 1 || v[1] != 1 || v[2] != 1 {
		t.Fatalf("Ones = %v", v)
	}
}

func TestGridHelpers(t *testing.T) {
	nx, ny := gridSides(100)
	if nx*ny < 100 {
		t.Fatalf("gridSides(100) = %d,%d too small", nx, ny)
	}
	cx, cy, cz := cubeSides(100)
	if cx*cy*cz < 100 {
		t.Fatalf("cubeSides(100) = %d,%d,%d too small", cx, cy, cz)
	}
}

// TestAnaloguesSpMVMatchesRawArrays guards against stale kernel shadows:
// an analogue that edits Vals after construction (qa8fm's diagonal
// shift) must rebuild the shadows, or the shadow-dispatched SpMV would
// silently apply a different operator than the CSR arrays describe.
func TestAnaloguesSpMVMatchesRawArrays(t *testing.T) {
	for _, name := range []string{"qa8fm", "thermal2", "Dubcova3"} {
		a, err := PaperMatrix(name, 600)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		x := RandomVector(a.N, 11)
		got := make([]float64, a.N)
		a.MulVec(x, got)
		for i := 0; i < a.N; i++ {
			var want float64
			for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
				want += a.Vals[k] * x[a.Cols[k]]
			}
			if diff := got[i] - want; diff > 1e-12 || diff < -1e-12 {
				t.Fatalf("%s row %d: shadow SpMV %v != raw arrays %v", name, i, got[i], want)
			}
		}
	}
}
