package matgen

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/sparse"
)

func TestReadMatrixMarketGeneral(t *testing.T) {
	src := `%%MatrixMarket matrix coordinate real general
% a comment
3 3 4
1 1 2.0
2 2 3.0
3 3 4.0
1 3 -1.5
`
	a, err := ReadMatrixMarket(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if a.N != 3 || a.M != 3 || a.NNZ() != 4 {
		t.Fatalf("dims %dx%d nnz %d", a.N, a.M, a.NNZ())
	}
	if a.At(0, 2) != -1.5 || a.At(1, 1) != 3 {
		t.Fatal("values wrong")
	}
}

func TestReadMatrixMarketSymmetricExpands(t *testing.T) {
	src := `%%MatrixMarket matrix coordinate real symmetric
2 2 2
1 1 5
2 1 -1
`
	a, err := ReadMatrixMarket(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if a.At(0, 1) != -1 || a.At(1, 0) != -1 {
		t.Fatal("symmetric expansion missing")
	}
	if a.NNZ() != 3 {
		t.Fatalf("nnz = %d, want 3", a.NNZ())
	}
}

func TestReadMatrixMarketPattern(t *testing.T) {
	src := `%%MatrixMarket matrix coordinate pattern general
2 2 2
1 1
2 2
`
	a, err := ReadMatrixMarket(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if a.At(0, 0) != 1 || a.At(1, 1) != 1 {
		t.Fatal("pattern entries not 1.0")
	}
}

func TestReadMatrixMarketSkewSymmetric(t *testing.T) {
	src := `%%MatrixMarket matrix coordinate real skew-symmetric
2 2 1
2 1 3
`
	a, err := ReadMatrixMarket(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if a.At(1, 0) != 3 || a.At(0, 1) != -3 {
		t.Fatal("skew expansion wrong")
	}
}

func TestReadMatrixMarketErrors(t *testing.T) {
	cases := []struct{ name, src string }{
		{"empty", ""},
		{"badheader", "%%NotMM matrix\n1 1 0\n"},
		{"badformat", "%%MatrixMarket matrix array real general\n1 1\n"},
		{"badfield", "%%MatrixMarket matrix coordinate complex general\n1 1 1\n1 1 1 1\n"},
		{"badsym", "%%MatrixMarket matrix coordinate real hermitian\n1 1 1\n1 1 1\n"},
		{"outofrange", "%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1.0\n"},
		{"shortentries", "%%MatrixMarket matrix coordinate real general\n2 2 3\n1 1 1.0\n"},
		{"badvalue", "%%MatrixMarket matrix coordinate real general\n1 1 1\n1 1 abc\n"},
		{"missingvalue", "%%MatrixMarket matrix coordinate real general\n1 1 1\n1 1\n"},
		{"zerodim", "%%MatrixMarket matrix coordinate real general\n0 0 0\n"},
	}
	for _, c := range cases {
		if _, err := ReadMatrixMarket(strings.NewReader(c.src)); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestMatrixMarketRoundTripGeneral(t *testing.T) {
	a := RandomSPD(40, 6, 1.1, 11)
	var buf bytes.Buffer
	if err := WriteMatrixMarket(&buf, a, false); err != nil {
		t.Fatal(err)
	}
	b, err := ReadMatrixMarket(&buf)
	if err != nil {
		t.Fatal(err)
	}
	requireEqualCSR(t, a, b)
}

func TestMatrixMarketRoundTripSymmetric(t *testing.T) {
	a := Poisson2D(6, 6)
	var buf bytes.Buffer
	if err := WriteMatrixMarket(&buf, a, true); err != nil {
		t.Fatal(err)
	}
	b, err := ReadMatrixMarket(&buf)
	if err != nil {
		t.Fatal(err)
	}
	requireEqualCSR(t, a, b)
}

func requireEqualCSR(t *testing.T, a, b *sparse.CSR) {
	t.Helper()
	if a.N != b.N || a.M != b.M || a.NNZ() != b.NNZ() {
		t.Fatalf("shape mismatch: %dx%d/%d vs %dx%d/%d", a.N, a.M, a.NNZ(), b.N, b.M, b.NNZ())
	}
	for i := 0; i < a.N; i++ {
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			j := a.Cols[k]
			if got := b.At(i, j); got != a.Vals[k] {
				t.Fatalf("(%d,%d) = %v, want %v", i, j, got, a.Vals[k])
			}
		}
	}
}
