// Package matgen generates the sparse SPD workloads of the paper's
// evaluation: discretized PDE stencils (including the HPCG-like 27-point
// 3-D Poisson operator used for the scaling study, §5.5), synthetic
// analogues of the nine University of Florida matrices (§5.1), random SPD
// matrices for property-based testing, and Matrix Market I/O so real
// matrices can be used when available.
//
// The University of Florida collection is not redistributable inside this
// offline module, so each paper matrix is replaced by a documented
// generator matched in structure class, nonzeros per row, and relative
// conditioning; DESIGN.md §3 records the mapping.
package matgen

import (
	"math"
	"math/rand"
	"sort"

	"repro/internal/sparse"
)

// Poisson2D builds the standard 5-point finite-difference Laplacian on an
// nx×ny grid with Dirichlet boundaries. The matrix is SPD with 4 on the
// diagonal and -1 couplings.
func Poisson2D(nx, ny int) *sparse.CSR {
	n := nx * ny
	tr := make([]sparse.Triplet, 0, 5*n)
	idx := func(i, j int) int { return i*ny + j }
	for i := 0; i < nx; i++ {
		for j := 0; j < ny; j++ {
			r := idx(i, j)
			tr = append(tr, sparse.Triplet{Row: r, Col: r, Val: 4})
			if i > 0 {
				tr = append(tr, sparse.Triplet{Row: r, Col: idx(i-1, j), Val: -1})
			}
			if i < nx-1 {
				tr = append(tr, sparse.Triplet{Row: r, Col: idx(i+1, j), Val: -1})
			}
			if j > 0 {
				tr = append(tr, sparse.Triplet{Row: r, Col: idx(i, j-1), Val: -1})
			}
			if j < ny-1 {
				tr = append(tr, sparse.Triplet{Row: r, Col: idx(i, j+1), Val: -1})
			}
		}
	}
	return sparse.NewCSRFromTriplets(n, n, tr)
}

// Poisson2DVarCoeff builds a 5-point stencil for -div(k grad u) with a
// spatially varying conductivity field k, plus a diagonal shift. Small
// shift and rough k yield a slowly converging (large-κ) SPD system like
// thermal2; a big shift yields a fast one.
func Poisson2DVarCoeff(nx, ny int, shift float64, k func(x, y float64) float64) *sparse.CSR {
	n := nx * ny
	tr := make([]sparse.Triplet, 0, 5*n)
	idx := func(i, j int) int { return i*ny + j }
	// Harmonic-mean edge conductivities keep the operator symmetric.
	edge := func(x1, y1, x2, y2 float64) float64 {
		k1, k2 := k(x1, y1), k(x2, y2)
		return 2 * k1 * k2 / (k1 + k2)
	}
	hx, hy := 1.0/float64(nx+1), 1.0/float64(ny+1)
	for i := 0; i < nx; i++ {
		for j := 0; j < ny; j++ {
			r := idx(i, j)
			x, y := float64(i+1)*hx, float64(j+1)*hy
			var diag float64
			add := func(ii, jj int, xx, yy float64) {
				w := edge(x, y, xx, yy)
				diag += w
				if ii >= 0 && ii < nx && jj >= 0 && jj < ny {
					tr = append(tr, sparse.Triplet{Row: r, Col: idx(ii, jj), Val: -w})
				}
			}
			add(i-1, j, x-hx, y)
			add(i+1, j, x+hx, y)
			add(i, j-1, x, y-hy)
			add(i, j+1, x, y+hy)
			tr = append(tr, sparse.Triplet{Row: r, Col: r, Val: diag + shift})
		}
	}
	return sparse.NewCSRFromTriplets(n, n, tr)
}

// Poisson3D27 builds the 27-point stencil discretization of the 3-D Poisson
// equation used by the HPCG benchmark and the paper's scaling study
// (§5.5, 512³ unknowns on MareNostrum). Diagonal 26, off-diagonals -1 to
// each of the up-to-26 neighbours in the 3×3×3 cube.
func Poisson3D27(nx, ny, nz int) *sparse.CSR {
	n := nx * ny * nz
	tr := make([]sparse.Triplet, 0, 27*n)
	idx := func(i, j, k int) int { return (i*ny+j)*nz + k }
	for i := 0; i < nx; i++ {
		for j := 0; j < ny; j++ {
			for k := 0; k < nz; k++ {
				r := idx(i, j, k)
				tr = append(tr, sparse.Triplet{Row: r, Col: r, Val: 26})
				for di := -1; di <= 1; di++ {
					for dj := -1; dj <= 1; dj++ {
						for dk := -1; dk <= 1; dk++ {
							if di == 0 && dj == 0 && dk == 0 {
								continue
							}
							ii, jj, kk := i+di, j+dj, k+dk
							if ii < 0 || ii >= nx || jj < 0 || jj >= ny || kk < 0 || kk >= nz {
								continue
							}
							tr = append(tr, sparse.Triplet{Row: r, Col: idx(ii, jj, kk), Val: -1})
						}
					}
				}
			}
		}
	}
	return sparse.NewCSRFromTriplets(n, n, tr)
}

// Poisson3D7 builds the 7-point stencil 3-D Laplacian with a diagonal
// shift; shift > 0 improves conditioning.
func Poisson3D7(nx, ny, nz int, shift float64) *sparse.CSR {
	n := nx * ny * nz
	tr := make([]sparse.Triplet, 0, 7*n)
	idx := func(i, j, k int) int { return (i*ny+j)*nz + k }
	for i := 0; i < nx; i++ {
		for j := 0; j < ny; j++ {
			for k := 0; k < nz; k++ {
				r := idx(i, j, k)
				tr = append(tr, sparse.Triplet{Row: r, Col: r, Val: 6 + shift})
				type nb struct{ i, j, k int }
				for _, d := range []nb{{i - 1, j, k}, {i + 1, j, k}, {i, j - 1, k}, {i, j + 1, k}, {i, j, k - 1}, {i, j, k + 1}} {
					if d.i < 0 || d.i >= nx || d.j < 0 || d.j >= ny || d.k < 0 || d.k >= nz {
						continue
					}
					tr = append(tr, sparse.Triplet{Row: r, Col: idx(d.i, d.j, d.k), Val: -1})
				}
			}
		}
	}
	return sparse.NewCSRFromTriplets(n, n, tr)
}

// Stencil9 builds a 2-D 9-point stencil with variable coefficients
// (CFD-pressure-like): 8 neighbour couplings plus a dominant diagonal.
func Stencil9(nx, ny int, shift float64, seed int64) *sparse.CSR {
	rng := rand.New(rand.NewSource(seed))
	n := nx * ny
	tr := make([]sparse.Triplet, 0, 9*n)
	idx := func(i, j int) int { return i*ny + j }
	// Symmetric edge weights: derive from a per-node potential field.
	pot := make([]float64, n)
	for i := range pot {
		pot[i] = 0.5 + rng.Float64()
	}
	for i := 0; i < nx; i++ {
		for j := 0; j < ny; j++ {
			r := idx(i, j)
			var diag float64
			for di := -1; di <= 1; di++ {
				for dj := -1; dj <= 1; dj++ {
					if di == 0 && dj == 0 {
						continue
					}
					ii, jj := i+di, j+dj
					if ii < 0 || ii >= nx || jj < 0 || jj >= ny {
						continue
					}
					c := idx(ii, jj)
					w := math.Sqrt(pot[r] * pot[c]) // symmetric by construction
					if di != 0 && dj != 0 {
						w *= 0.5 // weaker diagonal couplings
					}
					tr = append(tr, sparse.Triplet{Row: r, Col: c, Val: -w})
					diag += w
				}
			}
			tr = append(tr, sparse.Triplet{Row: r, Col: r, Val: diag + shift})
		}
	}
	return sparse.NewCSRFromTriplets(n, n, tr)
}

// Banded builds a symmetric banded SPD matrix with the given half
// bandwidth: A[i][j] nonzero for |i-j| <= half, smooth entry decay, and
// diagonal dominance controlled by dominance (>= 1 keeps it SPD;
// values near 1 make it ill-conditioned).
func Banded(n, half int, dominance float64, seed int64) *sparse.CSR {
	rng := rand.New(rand.NewSource(seed))
	tr := make([]sparse.Triplet, 0, (2*half+1)*n)
	// Draw symmetric off-diagonals first, then set the diagonal to the
	// absolute row sum times dominance.
	off := make(map[[2]int]float64)
	for i := 0; i < n; i++ {
		for d := 1; d <= half; d++ {
			j := i + d
			if j >= n {
				break
			}
			v := -(0.2 + 0.8*rng.Float64()) / float64(d)
			off[[2]int{i, j}] = v
		}
	}
	rowAbs := make([]float64, n)
	for _, k := range sortedKeys(off) {
		v := off[k]
		rowAbs[k[0]] += math.Abs(v)
		rowAbs[k[1]] += math.Abs(v)
		tr = append(tr, sparse.Triplet{Row: k[0], Col: k[1], Val: v})
		tr = append(tr, sparse.Triplet{Row: k[1], Col: k[0], Val: v})
	}
	for i := 0; i < n; i++ {
		tr = append(tr, sparse.Triplet{Row: i, Col: i, Val: rowAbs[i]*dominance + 1e-8})
	}
	return sparse.NewCSRFromTriplets(n, n, tr)
}

// sortedKeys returns the map keys in (row, col) order so that floating
// point accumulations over the entries are deterministic run to run.
func sortedKeys(m map[[2]int]float64) [][2]int {
	keys := make([][2]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(a, b int) bool {
		if keys[a][0] != keys[b][0] {
			return keys[a][0] < keys[b][0]
		}
		return keys[a][1] < keys[b][1]
	})
	return keys
}

// RandomSPD builds a random sparse SPD matrix with roughly nnzPerRow
// off-diagonal entries per row (symmetric pattern) and diagonal dominance
// factor dominance >= 1.
func RandomSPD(n, nnzPerRow int, dominance float64, seed int64) *sparse.CSR {
	rng := rand.New(rand.NewSource(seed))
	off := make(map[[2]int]float64)
	for i := 0; i < n; i++ {
		for k := 0; k < nnzPerRow/2; k++ {
			j := rng.Intn(n)
			if j == i {
				continue
			}
			a, b := i, j
			if a > b {
				a, b = b, a
			}
			off[[2]int{a, b}] = -rng.Float64()
		}
	}
	tr := make([]sparse.Triplet, 0, 2*len(off)+n)
	rowAbs := make([]float64, n)
	for _, k := range sortedKeys(off) {
		v := off[k]
		rowAbs[k[0]] += math.Abs(v)
		rowAbs[k[1]] += math.Abs(v)
		tr = append(tr, sparse.Triplet{Row: k[0], Col: k[1], Val: v})
		tr = append(tr, sparse.Triplet{Row: k[1], Col: k[0], Val: v})
	}
	for i := 0; i < n; i++ {
		tr = append(tr, sparse.Triplet{Row: i, Col: i, Val: rowAbs[i]*dominance + 0.1})
	}
	return sparse.NewCSRFromTriplets(n, n, tr)
}

// RandomVector returns a deterministic pseudo-random vector with standard
// normal entries.
func RandomVector(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}

// Ones returns the all-ones vector, the conventional right-hand side for
// stencil benchmarks.
func Ones(n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = 1
	}
	return v
}

// gridSides returns nx, ny with nx*ny >= n and nearly square.
func gridSides(n int) (int, int) {
	nx := int(math.Sqrt(float64(n)))
	if nx < 1 {
		nx = 1
	}
	ny := (n + nx - 1) / nx
	return nx, ny
}

// cubeSides returns nx, ny, nz with product >= n and nearly cubic.
func cubeSides(n int) (int, int, int) {
	c := int(math.Cbrt(float64(n)))
	if c < 1 {
		c = 1
	}
	for c*c*c < n {
		c++
	}
	return c, c, c
}
