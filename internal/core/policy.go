package core

import "repro/internal/pagemem"

// Allowed method sets for runtime switching. A switch is safe only when
// the solver was constructed with every structure the target method
// needs, so the sets depend on the construction-time method:
//
//   - resilient construction (FEIR/AFEIR) carries the double-buffered
//     direction, version stamps and recovery graph, and the boundary/
//     recovery code reads cfg.Method per call — FEIR ↔ AFEIR ↔ Lossy
//     switches take effect at the next fixpoint;
//   - a Checkpoint run keeps its method (the checkpointer state machine
//     has no resilient stamps to switch onto) but retunes its interval;
//   - everything else is pinned to its construction method.
var (
	resilientSwitchSet = []Method{MethodFEIR, MethodAFEIR, MethodLossy}
	// BiCGStab/GMRES repair at phase boundaries without the CG restart
	// machinery behind MethodLossy, so only the recovery scheduling
	// (critical-path vs overlapped) switches.
	recoverySwitchSet = []Method{MethodFEIR, MethodAFEIR}
)

// policyState tracks the per-run event counters the policy consumes.
type policyState struct {
	lastEvents int64
	allowed    []Method
}

// policyAllowed computes the switch set for a construction-time method.
func policyAllowed(constructed Method, fullSet []Method) []Method {
	switch constructed {
	case MethodFEIR, MethodAFEIR:
		return fullSet
	default:
		return []Method{constructed}
	}
}

// AllowedPolicySwitches reports the runtime switch set for a solver whose
// phases run unguarded between boundaries (the distributed solvers, whose
// boundary code reads cfg.Method per call): a FEIR/AFEIR construction may
// move across the full resilient set, all other constructions are pinned.
func AllowedPolicySwitches(constructed Method) []Method {
	return policyAllowed(constructed, resilientSwitchSet)
}

func methodIn(ms []Method, m Method) bool {
	for _, x := range ms {
		if x == m {
			return true
		}
	}
	return false
}

// applyPolicy consults cfg.Policy at an iteration fixpoint: observed
// events since the last call (DUE poisons + SDC detections, read from
// the space's atomic counters) feed the controller, whose decision is
// applied to cfg.Method (counted in stats) and, for checkpoint runs, to
// the checkpointer interval. Returns the possibly-updated method.
func applyPolicy(it int, cfg *Config, st *policyState, space *pagemem.Space, stats *Stats, ck *checkpointer) {
	events := space.FaultCount() + space.SDCDetected()
	newEvents := int(events - st.lastEvents)
	st.lastEvents = events
	m, ckIv := cfg.Policy.Decide(it, newEvents, cfg.Method, st.allowed)
	if m != cfg.Method && methodIn(st.allowed, m) {
		cfg.Method = m
		stats.PolicySwitches++
	}
	if ck != nil && cfg.Method == MethodCheckpoint && ckIv > 0 {
		ck.interval = ckIv
	}
}
