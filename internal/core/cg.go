package core

import (
	"fmt"
	"math"
	"time"

	"repro/internal/engine"
	"repro/internal/pagemem"
	"repro/internal/precond"
	"repro/internal/sparse"
	"repro/internal/taskrt"
)

// CG is the paper's task-parallel Conjugate Gradient (Listing 1/Listing 5)
// with a pluggable resilience method. Strip-mined tasks follow the
// Figure 1 decomposition; the FEIR/AFEIR variants use the double-buffered
// direction of Listing 2, per-page fault bitmasks and version stamps, and
// the recovery tasks r1/r2/r3 of Figure 1(b). The chunked page operations,
// version stamping and recovery scheduling all run through the shared
// internal/engine layer.
//
// Versioning convention: within iteration t, phase 1 produces d and q at
// version t, phase 2 produces x, g (and z) at version t. A page is
// "current" when its stamp equals the expected version and its fault bit
// is clear. Skipped tasks leave the previous version (and its stamp) in
// place, which is what makes the old-q/dPrev recovery of §3.1.1 possible.
type CG struct {
	cfg    Config
	a      *sparse.CSR
	b      []float64
	bnorm  float64
	layout sparse.BlockLayout
	np     int

	space   *pagemem.Space
	x, g, q *pagemem.Vector
	d       [2]*pagemem.Vector
	z       *pagemem.Vector

	pre    *precond.BlockJacobi
	blocks *sparse.BlockSolverCache
	conn   [][]int
	rel    *Relations

	// Per-page version stamps (see package comment).
	xS, gS, qS, zS engine.Stamps
	dS             [2]engine.Stamps

	dqPart, ggPart, zgPart *engine.Partial

	rt  *taskrt.Runtime
	eng *engine.Engine

	stats Stats
	beta  float64
	epsGG float64 // <g, g>
	rho   float64 // <z, g> (preconditioned only)
	alpha float64

	doubleBuffer bool
	resilient    bool
	abft         bool // checksum-carrying kernels + verify-on-read

	pol policyState
	// sdcInjBase/sdcDetBase snapshot the space's cumulative SDC counters
	// at Run start, so pooled instances report per-run deltas.
	sdcInjBase, sdcDetBase int64

	ck *checkpointer

	scratch  []float64 // one page of recovery scratch
	scratch2 []float64
	resid    []float64 // full-length true-residual scratch (reused)

	// restartPending requests a beta=0 step (d rebuilt from g alone) on
	// the next iteration, set by restart-style recoveries.
	restartPending bool

	// Prepared steady-state task graph (built once in Run): the same
	// handles are replayed every iteration, so the hot loop performs zero
	// allocations. The task bodies read the iter* fields below, which the
	// coordinator writes before each submission (the run-queue handoff
	// provides the happens-before edge).
	prep struct {
		d, q, x, g *engine.Prepared // fused: q carries <d,q>, g carries ε
		z, zg      *engine.Prepared // preconditioned variant only
		r1o, r23o  *engine.Prepared // overlapped recoveries (AFEIR, prio -1)
		r1c, r23c  *engine.Prepared // critical-path recoveries (FEIR)
		r1After    []*taskrt.Handle // d+q handles (prebuilt: stable)
		zgAfter    []*taskrt.Handle // g+z handles
		r23After   []*taskrt.Handle // x+g(+z) handles
	}
	iterVer           int64
	iterBeta          float64
	iterCur, iterPrev int
}

// NewCG builds a resilient CG solver for the SPD system A x = b.
func NewCG(a *sparse.CSR, b []float64, cfg Config) (*CG, error) {
	if a.N != a.M {
		return nil, fmt.Errorf("core: non-square matrix %dx%d", a.N, a.M)
	}
	if len(b) != a.N {
		return nil, fmt.Errorf("core: rhs length %d for n=%d", len(b), a.N)
	}
	s := &CG{
		cfg:    cfg,
		a:      a,
		b:      append([]float64(nil), b...),
		layout: sparse.BlockLayout{N: a.N, BlockSize: cfg.pageDoubles()},
	}
	s.bnorm = sparse.Norm2(b)
	if s.bnorm == 0 {
		s.bnorm = 1
	}
	s.np = s.layout.NumBlocks()
	s.space = pagemem.NewSpace(a.N, cfg.pageDoubles())
	s.x = s.space.AddVector("x")
	s.g = s.space.AddVector("g")
	s.q = s.space.AddVector("q")
	s.d[0] = s.space.AddVector("d0")
	s.resilient = cfg.Method == MethodFEIR || cfg.Method == MethodAFEIR
	s.doubleBuffer = s.resilient
	if s.doubleBuffer {
		s.d[1] = s.space.AddVector("d1")
	} else {
		s.d[1] = s.d[0]
	}
	s.abft = cfg.ABFT && s.resilient
	s.pol.allowed = policyAllowed(cfg.Method, resilientSwitchSet)
	if cfg.Blocks != nil {
		if cfg.Blocks.A != a || cfg.Blocks.Layout != s.layout || !cfg.Blocks.SPD {
			return nil, fmt.Errorf("core: shared block cache mismatch (want matrix %p layout %+v spd=true, have %p %+v spd=%v)",
				a, s.layout, cfg.Blocks.A, cfg.Blocks.Layout, cfg.Blocks.SPD)
		}
		s.blocks = cfg.Blocks
	} else {
		s.blocks = sparse.NewBlockSolverCache(a, s.layout, true)
	}
	if cfg.UsePrecond {
		s.z = s.space.AddVector("z")
		// Reuse the recovery cache's Cholesky factorizations as the
		// preconditioner blocks — they are the same A_pp (§5.1).
		pre, err := precond.FromCache(s.blocks)
		if err != nil {
			return nil, fmt.Errorf("core: block-Jacobi setup: %w", err)
		}
		s.pre = pre
	}

	s.xS = engine.NewStamps(s.np)
	s.gS = engine.NewStamps(s.np)
	s.qS = engine.NewStamps(s.np)
	s.dS[0] = engine.NewStamps(s.np)
	if s.doubleBuffer {
		s.dS[1] = engine.NewStamps(s.np)
	} else {
		s.dS[1] = s.dS[0]
	}
	if cfg.UsePrecond {
		s.zS = engine.NewStamps(s.np)
	}
	s.dqPart = engine.NewPartial(s.np)
	s.ggPart = engine.NewPartial(s.np)
	s.zgPart = engine.NewPartial(s.np)

	if s.abft {
		for _, v := range s.DynamicVectors() {
			v.EnableChecksums()
		}
	}

	s.scratch = make([]float64, cfg.pageDoubles())
	s.scratch2 = make([]float64, cfg.pageDoubles())
	s.resid = make([]float64, a.N)

	if cfg.Method == MethodCheckpoint {
		disk := cfg.Disk
		if disk == nil {
			disk = NewSimDisk(0)
		}
		s.ck = newCheckpointer(disk, cfg.CheckpointInterval, cfg.ExpectedMTBE, a.N, cfg.UsePrecond)
	}
	return s, nil
}

// Space returns the fault domain: error injectors target its vectors.
func (s *CG) Space() *pagemem.Space { return s.space }

// DynamicVectors lists the vectors the paper's injections cover (§5.3):
// the Krylov vectors, excluding constant data and resilience metadata.
func (s *CG) DynamicVectors() []*pagemem.Vector {
	vs := []*pagemem.Vector{s.x, s.g, s.q, s.d[0]}
	if s.doubleBuffer {
		vs = append(vs, s.d[1])
	}
	if s.z != nil {
		vs = append(vs, s.z)
	}
	return vs
}

// Stats returns a snapshot of the resilience counters. Only valid after
// Run returned.
func (s *CG) Stats() Stats { return s.stats }

// captureSDC folds the space's SDC counter deltas (relative to this Run's
// start) into the stats before a Result snapshot is built.
func (s *CG) captureSDC() {
	s.stats.SDCInjected = int(s.space.SDCInjected() - s.sdcInjBase)
	s.stats.SDCDetected = int(s.space.SDCDetected() - s.sdcDetBase)
}

// Solution returns the iterate vector's backing array. Only valid after
// Run returned; the next Run (or resetState) overwrites it.
func (s *CG) Solution() []float64 { return s.x.Data }

// SetCancelled installs (or clears) the per-request cancellation poll —
// pooled instances carry a different request context each checkout.
func (s *CG) SetCancelled(f func() bool) { s.cfg.Cancelled = f }

// SetOnIteration installs (or clears) the per-request residual trace hook.
func (s *CG) SetOnIteration(f func(it int, relRes float64)) { s.cfg.OnIteration = f }

// Rebind replaces the right-hand side in place — the Relations layer and
// the prepared task bodies keep their reference to the same backing array,
// so a pooled instance serves a new RHS without rebuilding anything.
func (s *CG) Rebind(b []float64) error {
	if len(b) != s.a.N {
		return fmt.Errorf("core: rhs length %d for n=%d", len(b), s.a.N)
	}
	copy(s.b, b)
	s.bnorm = sparse.Norm2(b)
	if s.bnorm == 0 {
		s.bnorm = 1
	}
	return nil
}

// resetState returns the instance to its pre-Run state so a pooled solver
// can serve a fresh request: failed pages remapped, vectors zeroed, stamps
// and scalar recurrences cleared, counters rezeroed. Idempotent on a fresh
// instance.
func (s *CG) resetState() {
	blankAllFailed(s.space)
	zero := func(v *pagemem.Vector) {
		for i := range v.Data {
			v.Data[i] = 0
		}
		v.InvalidateChecksums()
	}
	zero(s.x)
	zero(s.g)
	zero(s.q)
	zero(s.d[0])
	if s.doubleBuffer {
		zero(s.d[1])
	}
	if s.z != nil {
		zero(s.z)
	}
	s.xS.Fill(-1)
	s.gS.Fill(-1)
	s.qS.Fill(-1)
	s.dS[0].Fill(-1)
	if s.doubleBuffer {
		s.dS[1].Fill(-1)
	}
	if s.zS != nil {
		s.zS.Fill(-1)
	}
	s.stats = Stats{}
	s.alpha, s.beta, s.rho, s.epsGG = 0, 0, 0, 0
	if s.cfg.Method == MethodCheckpoint {
		disk := s.cfg.Disk
		if disk == nil {
			disk = NewSimDisk(0)
		}
		s.ck = newCheckpointer(disk, s.cfg.CheckpointInterval, s.cfg.ExpectedMTBE, s.a.N, s.cfg.UsePrecond)
	}
}

// buildEngine constructs the engine, relations and prepared task graph on
// the current runtime. Called once per Run in owned-pool mode, once per
// instance lifetime in shared-pool mode.
func (s *CG) buildEngine() {
	s.eng = engine.New(s.a, s.layout, s.rt, s.resilient, 0)
	s.eng.RecoveryPriority = s.cfg.overlapPriority()
	s.conn = s.eng.Conn
	s.rel = &Relations{a: s.a, layout: s.layout, conn: s.conn, blocks: s.blocks, b: s.b, scratch: s.scratch, stats: &s.stats}
	s.buildPrepared()
}

// ensureEngine lazily builds the engine against the external runtime. The
// prepared graph survives across Runs — the zero-rebuild property the
// serving layer's counter test pins.
func (s *CG) ensureEngine() {
	if s.eng != nil {
		return
	}
	s.rt = s.cfg.RT
	s.buildEngine()
}

// vec couples a solver vector with its stamps for the engine operations.
func vec(v *pagemem.Vector, st engine.Stamps) engine.Vec { return engine.Vec{V: v, S: st} }

// Run executes the solve and returns its Result. Run may be called
// repeatedly (with Rebind in between to change the RHS): with Config.RT
// set, the engine and prepared task graphs are built on the first Run and
// replayed by every later one; with a solver-owned pool they are rebuilt
// per Run (and the pool closed after).
func (s *CG) Run() (Result, error) {
	start := time.Now()
	if s.cfg.RT != nil {
		s.ensureEngine()
	} else {
		s.rt = taskrt.New(s.cfg.workers())
		defer func() { s.rt.Close(); s.rt, s.eng = nil, nil }()
		s.buildEngine()
	}
	s.resetState()
	s.sdcInjBase = s.space.SDCInjected()
	s.sdcDetBase = s.space.SDCDetected()
	s.pol.lastEvents = s.space.FaultCount() + s.space.SDCDetected()

	tol := s.cfg.tol()
	maxIter := s.cfg.maxIter(s.a.N)

	// Initial state: x = 0, g = b, d built in iteration 0 via beta = 0.
	copy(s.g.Data, s.b)
	if s.pre != nil {
		s.pre.Apply(s.g.Data, s.z.Data)
		s.rho = sparse.Dot(s.z.Data, s.g.Data)
	}
	s.epsGG = sparse.Dot(s.g.Data, s.g.Data)
	s.beta = 0
	s.restartPending = true // iteration 0 is a fresh start

	var t int
	converged := false
	for t = 0; t < maxIter; t++ {
		if s.cfg.Cancelled != nil && s.cfg.Cancelled() {
			s.captureSDC()
			return Result{
				Iterations:  t,
				RelResidual: s.trueResidual(),
				Elapsed:     time.Since(start),
				Stats:       s.stats,
				WorkerTimes: s.rt.WorkerTimes(),
			}, ErrCancelled
		}
		if s.cfg.Policy != nil {
			// Loop top is a fixpoint: the previous iteration's boundary ran,
			// all prepared tasks are quiescent and pending losses applied.
			applyPolicy(t, &s.cfg, &s.pol, s.space, &s.stats, s.ck)
		}
		rel := math.Sqrt(math.Max(s.epsGG, 0)) / s.bnorm
		if s.cfg.OnIteration != nil {
			s.cfg.OnIteration(t, rel)
		}
		if rel < tol {
			if s.verifyConvergence(t, tol) {
				converged = true
				break
			}
			// Recurrence said converged but the true residual disagrees
			// (possible after ignored unrecoverable errors): refresh the
			// residual and keep iterating — within the SAME iteration
			// index, so the version stamps stay aligned.
			s.refreshResidual(int64(t) - 1)
			s.stats.Restarts++
		}

		if s.ck != nil {
			s.ck.maybeWrite(s, t, time.Since(start))
		}

		// ---------------- Phase 1: d, q, <d,q> (+ r1) ----------------
		ver := int64(t)
		s.runPhase1(ver)
		if act := s.boundary(ver, afterPhase1); act == actionSkipIteration {
			continue
		}
		dq, missing := s.dqPart.SumAvailable()
		s.stats.ContributionsLost += missing
		num := s.epsGG
		if s.pre != nil {
			num = s.rho
		}
		if dq != 0 && !math.IsNaN(dq) && !math.IsNaN(num) {
			s.alpha = num / dq
		} else {
			s.alpha = 0 // degenerate step: no progress this iteration
		}

		// ---------------- Phase 2: x, g, z, eps (+ r2/r3) -------------
		s.runPhase2(ver)
		if act := s.boundary(ver, afterPhase2); act == actionSkipIteration {
			continue
		}
		gg, missingGG := s.ggPart.SumAvailable()
		s.stats.ContributionsLost += missingGG
		if s.pre != nil {
			zg, missingZG := s.zgPart.SumAvailable()
			s.stats.ContributionsLost += missingZG
			if s.rho != 0 && !math.IsNaN(zg) {
				s.beta = zg / s.rho
			} else {
				s.beta = 0
			}
			s.rho = zg
		} else {
			if s.epsGG != 0 && !math.IsNaN(gg) {
				s.beta = gg / s.epsGG
			} else {
				s.beta = 0
			}
		}
		s.epsGG = gg
		s.restartPending = false

		if s.resilient && (s.cfg.Method == MethodFEIR || s.cfg.Method == MethodAFEIR) {
			s.reconcile(ver)
		}
	}

	s.captureSDC()
	res := Result{
		Converged:   converged,
		Iterations:  t,
		RelResidual: s.trueResidual(),
		Elapsed:     time.Since(start),
		Stats:       s.stats,
		WorkerTimes: s.rt.WorkerTimes(),
	}
	return res, nil
}

// buildPrepared constructs the prepared steady-state task graph once per
// solve: every iteration replays the same handles (taskrt.Resubmit), so
// the hot loop allocates nothing. Each fused body applies exactly the
// guard/stamp discipline of the immediate engine op it replaces (the
// engine's exported *Page helpers ARE those ops' bodies); the task bodies
// read the iter* fields the coordinator sets before submission.
func (s *CG) buildPrepared() {
	e := s.eng
	prio := s.cfg.TaskPriority
	// d = src + β d' (src = g, or z when preconditioned). Full overwrite:
	// skipped pages keep their old version, produced pages revalidate.
	//due:hotpath
	s.prep.d = e.Prepare("d", prio, func(_, pLo, pHi int) {
		ver, beta := s.iterVer, s.iterBeta
		dCur := vec(s.d[s.iterCur], s.dS[s.iterCur])
		dPrev := vec(s.d[s.iterPrev], s.dS[s.iterPrev])
		src := vec(s.g, s.gS)
		if s.pre != nil {
			src = vec(s.z, s.zS)
		}
		for p := pLo; p < pHi; p++ {
			if e.Resilient && (!src.Current(p, ver-1) || (beta != 0 && !dPrev.Current(p, ver-1))) {
				continue
			}
			// ABFT: verify the inputs' page checksums BEFORE computing; a
			// mismatch Poisons the page and skips like a stale-input guard,
			// handing the loss to the exact recovery relations.
			if s.abft && (!src.V.VerifyChecksum(p) || (beta != 0 && !dPrev.V.VerifyChecksum(p))) {
				continue
			}
			lo, hi := s.layout.Range(p)
			var ck uint64
			if s.abft {
				if beta == 0 {
					ck = sparse.CopyChecksumRange(dCur.V.Data, src.V.Data, lo, hi)
				} else {
					ck = sparse.XpbyOutChecksumRange(src.V.Data, beta, dPrev.V.Data, dCur.V.Data, lo, hi)
				}
			} else if beta == 0 {
				copy(dCur.V.Data[lo:hi], src.V.Data[lo:hi])
			} else if s.doubleBuffer {
				sparse.XpbyOutRange(src.V.Data, beta, dPrev.V.Data, dCur.V.Data, lo, hi)
			} else {
				sparse.XpbyRange(src.V.Data, beta, dCur.V.Data, lo, hi)
			}
			if e.Resilient {
				dCur.V.MarkRecovered(p)
				dCur.S[p].Store(ver)
			}
			if s.abft {
				dCur.V.SetChecksum(p, ck)
			}
		}
	})
	// Fused q = A d with the <d,q> partials: one task per chunk instead
	// of the SpMV + reduction pair. Skipped q pages keep the OLD A·dPrev
	// values, pairing with dPrev.
	//due:hotpath
	s.prep.q = e.Prepare("q,<d,q>", prio, func(_, pLo, pHi int) {
		ver := s.iterVer
		dCur := vec(s.d[s.iterCur], s.dS[s.iterCur])
		in := engine.In(dCur, ver)
		out := engine.Operand{Vec: vec(s.q, s.qS), Ver: ver}
		for p := pLo; p < pHi; p++ {
			lo, hi := s.layout.Range(p)
			e.SpMVDotPage(p, lo, hi, in, out, s.dqPart, nil)
			// ABFT: fold the checksum on the still-L1-hot page — the SpMV
			// dispatches through the shadow-format kernels, which cannot
			// carry the fold themselves.
			if s.abft && out.Current(p, ver) {
				out.V.SetChecksum(p, sparse.ChecksumRange(out.V.Data, lo, hi))
			}
		}
	})
	// x += α d: read-modify-write, so a poison landing mid-task stays
	// detected for the boundary scramble.
	//due:hotpath
	s.prep.x = e.Prepare("x", prio, func(_, pLo, pHi int) {
		ver, alpha := s.iterVer, s.alpha
		dCur := vec(s.d[s.iterCur], s.dS[s.iterCur])
		xV := vec(s.x, s.xS)
		for p := pLo; p < pHi; p++ {
			if e.Resilient && (!xV.Current(p, ver-1) || !dCur.Current(p, ver)) {
				continue
			}
			// ABFT: x verifies itself pre-RMW (catching flips since its last
			// write) and its direction input.
			if s.abft && (!xV.V.VerifyChecksum(p) || !dCur.V.VerifyChecksum(p)) {
				continue
			}
			lo, hi := s.layout.Range(p)
			if s.abft {
				ck := sparse.AxpyChecksumRange(alpha, dCur.V.Data, s.x.Data, lo, hi)
				xV.S[p].Store(ver)
				if !xV.V.Failed(p) {
					xV.V.SetChecksum(p, ck)
				}
			} else {
				sparse.AxpyRange(alpha, dCur.V.Data, s.x.Data, lo, hi)
				if e.Resilient {
					xV.S[p].Store(ver)
				}
			}
		}
	})
	// Fused g -= α q with the ε = <g,g> partials (read-modify-write).
	//due:hotpath
	s.prep.g = e.Prepare("g,eps", prio, func(_, pLo, pHi int) {
		ver, alpha := s.iterVer, s.alpha
		qIn := engine.In(vec(s.q, s.qS), ver)
		gOut := engine.Operand{Vec: vec(s.g, s.gS), Ver: ver}
		for p := pLo; p < pHi; p++ {
			lo, hi := s.layout.Range(p)
			if s.abft {
				e.AxpyDotPageABFT(p, lo, hi, -alpha, qIn, gOut, s.ggPart)
			} else {
				e.AxpyDotPage(p, lo, hi, -alpha, qIn, gOut, s.ggPart)
			}
		}
	})
	if s.pre != nil {
		// Guarded apply-M⁻¹ page operation: full-page overwrite via
		// partial preconditioner application (§3.2), then <z,g>.
		//due:hotpath
		s.prep.z = e.Prepare("z", prio, func(_, pLo, pHi int) {
			ver := s.iterVer
			gIn := engine.In(vec(s.g, s.gS), ver)
			zOut := engine.Operand{Vec: vec(s.z, s.zS), Ver: ver}
			for p := pLo; p < pHi; p++ {
				e.ApplyPrecondPage(p, s.pre, gIn, zOut)
				// ABFT: fold on the L1-hot page (the block solves run in the
				// preconditioner, which cannot carry the fold).
				if s.abft && zOut.Current(p, ver) {
					lo, hi := s.layout.Range(p)
					zOut.V.SetChecksum(p, sparse.ChecksumRange(zOut.V.Data, lo, hi))
				}
			}
		})
		//due:hotpath
		s.prep.zg = e.Prepare("<z,g>", prio, func(_, pLo, pHi int) {
			ver := s.iterVer
			zIn := engine.In(vec(s.z, s.zS), ver)
			gIn := engine.In(vec(s.g, s.gS), ver)
			for p := pLo; p < pHi; p++ {
				lo, hi := s.layout.Range(p)
				e.DotPartialPage(p, lo, hi, zIn, gIn, s.zgPart)
			}
		})
	}
	// Recovery tasks: overlapped at low priority (AFEIR, Fig 2b) and
	// critical-path (FEIR, Fig 2a) variants of r1 and r2/r3.
	r1 := func(allowLate bool) func() {
		return func() { s.recoverPhase1(s.iterVer, s.iterBeta, s.iterCur, s.iterPrev, allowLate) }
	}
	r23 := func(allowLate bool) func() {
		return func() { s.recoverPhase2(s.iterVer, s.iterCur, allowLate) }
	}
	//due:recovery
	s.prep.r1o = e.PrepareSingle("r1", s.cfg.overlapPriority(), r1(false))
	//due:recovery
	s.prep.r23o = e.PrepareSingle("r2r3", s.cfg.overlapPriority(), r23(false))
	//due:allow(priority-clamp) FEIR recovery is critical-path by design (Fig 2a): the coordinator blocks on it, so it runs at the compute tier, not below it
	//due:recovery
	s.prep.r1c = e.PrepareSingle("r1", prio, r1(true))
	//due:allow(priority-clamp) FEIR recovery is critical-path by design (Fig 2a): the coordinator blocks on it, so it runs at the compute tier, not below it
	//due:recovery
	s.prep.r23c = e.PrepareSingle("r2r3", prio, r23(true))

	// Prebuilt dependency lists: prepared handles are stable objects, so
	// the concatenations are allocated once.
	s.prep.r1After = append(append([]*taskrt.Handle{}, s.prep.d.Handles()...), s.prep.q.Handles()...)
	s.prep.r23After = append(append([]*taskrt.Handle{}, s.prep.x.Handles()...), s.prep.g.Handles()...)
	if s.pre != nil {
		s.prep.r23After = append(s.prep.r23After, s.prep.z.Handles()...)
		s.prep.zgAfter = append(append([]*taskrt.Handle{}, s.prep.g.Handles()...), s.prep.z.Handles()...)
	}
}

// runPhase1 replays the prepared d-update and fused q/<d,q> tasks plus
// the r1 recovery task, and waits for them.
func (s *CG) runPhase1(ver int64) {
	t := int(ver)
	cur, prev := 0, 0
	if s.doubleBuffer {
		cur, prev = t%2, (t+1)%2
	}
	beta := s.beta
	if s.restartPending {
		beta = 0
	}
	s.iterVer, s.iterBeta, s.iterCur, s.iterPrev = ver, beta, cur, prev
	s.dqPart.ResetMissing()

	dH := s.prep.d.Submit(nil)
	s.prep.q.Submit(dH)

	skipRecovery := s.cfg.OnDemandRecovery && !s.space.AnyFault()
	overlapped := s.cfg.Method == MethodAFEIR && !skipRecovery
	if overlapped {
		// Overlapped with the reductions, lower priority so reduction
		// tasks start first (§3.3.2, Fig 2b). Handles only faults whose
		// consequences are visible as stale stamps plus poisons on
		// vectors the concurrent reductions never read.
		s.prep.r1o.Submit(s.prep.r1After)
	}
	s.prep.d.Wait()
	s.prep.q.Wait()
	if overlapped {
		s.prep.r1o.Wait()
	}
	if s.cfg.Method == MethodFEIR && !(s.cfg.OnDemandRecovery && !s.space.AnyFault()) {
		// In the critical path: runs after every computation (thus every
		// potential error discovery) of the phase (Fig 2a).
		s.prep.r1c.Submit(nil)
		s.prep.r1c.Wait()
	}
}

// runPhase2 replays the prepared x update, fused g/ε (and z, <z,g>) tasks
// and the r2/r3 recovery, and waits.
func (s *CG) runPhase2(ver int64) {
	t := int(ver)
	cur := 0
	if s.doubleBuffer {
		cur = t % 2
	}
	s.iterVer, s.iterCur = ver, cur
	s.ggPart.ResetMissing()
	if s.pre != nil {
		s.zgPart.ResetMissing()
	}

	s.prep.x.Submit(nil)
	gH := s.prep.g.Submit(nil)
	if s.pre != nil {
		s.prep.z.Submit(gH)
		s.prep.zg.Submit(s.prep.zgAfter)
	}

	skipRecovery := s.cfg.OnDemandRecovery && !s.space.AnyFault()
	overlapped := s.cfg.Method == MethodAFEIR && !skipRecovery
	if overlapped {
		s.prep.r23o.Submit(s.prep.r23After)
	}
	s.prep.x.Wait()
	s.prep.g.Wait()
	if s.pre != nil {
		s.prep.z.Wait()
		s.prep.zg.Wait()
	}
	if overlapped {
		s.prep.r23o.Wait()
	}
	if s.cfg.Method == MethodFEIR && !(s.cfg.OnDemandRecovery && !s.space.AnyFault()) {
		s.prep.r23c.Submit(nil)
		s.prep.r23c.Wait()
	}
}

type boundaryPoint int

const (
	afterPhase1 boundaryPoint = iota
	afterPhase2
)

type boundaryAction int

const (
	actionContinue boundaryAction = iota
	actionSkipIteration
)

// boundary is a task-phase boundary: all workers are quiescent. Pending
// data losses take effect here, and the non-ABFT methods react to any
// visible fault.
func (s *CG) boundary(ver int64, _ boundaryPoint) boundaryAction {
	evs := s.space.ScramblePending()
	s.stats.FaultsSeen += len(evs)
	if !s.space.AnyFault() {
		return actionContinue
	}
	switch s.cfg.Method {
	case MethodFEIR, MethodAFEIR:
		// Handled by recovery tasks and reconcile.
		return actionContinue
	case MethodIdeal, MethodTrivial:
		// Blank-page forward recovery (§4.1): keep running.
		blankAllFailed(s.space)
		return actionContinue
	case MethodLossy:
		s.lossyRestart(ver)
		return actionSkipIteration
	case MethodCheckpoint:
		s.ck.rollback(s)
		return actionSkipIteration
	}
	return actionContinue
}

// blankAllFailed remaps every failed page of the space to a blank one and
// clears the fault bits — the Trivial forward recovery (§4.1).
func blankAllFailed(sp *pagemem.Space) {
	for _, v := range sp.Vectors() {
		for _, p := range v.FailedPages() {
			v.Remap(p)
			v.MarkRecovered(p)
		}
	}
}

// verifyConvergence recomputes the true residual when the recurrence
// claims convergence. Exact forward recovery preserves the recurrence, but
// ignored unrecoverable errors can desynchronise g from b - Ax.
func (s *CG) verifyConvergence(_ int, tol float64) bool {
	return s.trueResidual() < tol*10
}

// trueResidual computes ||b - A x|| / ||b|| sequentially, in the
// solver-owned scratch (no per-check allocation).
func (s *CG) trueResidual() float64 {
	r := s.resid
	s.a.MulVec(s.x.Data, r)
	sparse.Sub(s.b, r, r)
	return sparse.Norm2(r) / s.bnorm
}

// refreshResidual recomputes g = b - A x (and z, rho, eps) sequentially and
// forces a beta=0 step, restoring the g/x invariant after damage. Failed
// iterate pages that survived every recovery attempt are blanked first —
// the FallbackIgnore endgame.
func (s *CG) refreshResidual(ver int64) {
	for _, p := range s.x.FailedPages() {
		s.x.Remap(p)
		s.x.MarkRecovered(p)
		s.stats.Unrecovered++
	}
	s.xS.Fill(ver)
	s.a.MulVec(s.x.Data, s.g.Data)
	sparse.Sub(s.b, s.g.Data, s.g.Data)
	for p := 0; p < s.np; p++ {
		s.g.MarkRecovered(p)
	}
	s.gS.Fill(ver)
	if s.pre != nil {
		s.pre.Apply(s.g.Data, s.z.Data)
		for p := 0; p < s.np; p++ {
			s.z.MarkRecovered(p)
		}
		s.zS.Fill(ver)
		s.rho = sparse.Dot(s.z.Data, s.g.Data)
	}
	s.epsGG = sparse.Dot(s.g.Data, s.g.Data)
	s.beta = 0
	s.restartPending = true
}
