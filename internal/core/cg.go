package core

import (
	"fmt"
	"math"
	"sync/atomic"
	"time"

	"repro/internal/pagemem"
	"repro/internal/precond"
	"repro/internal/sparse"
	"repro/internal/taskrt"
)

// CG is the paper's task-parallel Conjugate Gradient (Listing 1/Listing 5)
// with a pluggable resilience method. Strip-mined tasks follow the
// Figure 1 decomposition; the FEIR/AFEIR variants use the double-buffered
// direction of Listing 2, per-page fault bitmasks and version stamps, and
// the recovery tasks r1/r2/r3 of Figure 1(b).
//
// Versioning convention: within iteration t, phase 1 produces d and q at
// version t, phase 2 produces x, g (and z) at version t. A page is
// "current" when its stamp equals the expected version and its fault bit
// is clear. Skipped tasks leave the previous version (and its stamp) in
// place, which is what makes the old-q/dPrev recovery of §3.1.1 possible.
type CG struct {
	cfg    Config
	a      *sparse.CSR
	b      []float64
	bnorm  float64
	layout sparse.BlockLayout
	np     int

	space   *pagemem.Space
	x, g, q *pagemem.Vector
	d       [2]*pagemem.Vector
	z       *pagemem.Vector

	pre    *precond.BlockJacobi
	blocks *sparse.BlockSolverCache
	conn   [][]int

	// Per-page version stamps (see package comment). Atomic because
	// AFEIR recovery tasks update them concurrently with reduction tasks
	// reading them.
	xS, gS, qS, zS []atomic.Int64
	dS             [2][]atomic.Int64

	dqPart, ggPart, zgPart *atomicFloats

	rt *taskrt.Runtime

	stats Stats
	beta  float64
	epsGG float64 // <g, g>
	rho   float64 // <z, g> (preconditioned only)
	alpha float64

	doubleBuffer bool
	resilient    bool
	nchunks      int

	ck *checkpointer

	scratch  []float64 // one page of recovery scratch
	scratch2 []float64

	// restartPending requests a beta=0 step (d rebuilt from g alone) on
	// the next iteration, set by restart-style recoveries.
	restartPending bool
}

// NewCG builds a resilient CG solver for the SPD system A x = b.
func NewCG(a *sparse.CSR, b []float64, cfg Config) (*CG, error) {
	if a.N != a.M {
		return nil, fmt.Errorf("core: non-square matrix %dx%d", a.N, a.M)
	}
	if len(b) != a.N {
		return nil, fmt.Errorf("core: rhs length %d for n=%d", len(b), a.N)
	}
	s := &CG{
		cfg:    cfg,
		a:      a,
		b:      append([]float64(nil), b...),
		layout: sparse.BlockLayout{N: a.N, BlockSize: cfg.pageDoubles()},
	}
	s.bnorm = sparse.Norm2(b)
	if s.bnorm == 0 {
		s.bnorm = 1
	}
	s.np = s.layout.NumBlocks()
	s.space = pagemem.NewSpace(a.N, cfg.pageDoubles())
	s.x = s.space.AddVector("x")
	s.g = s.space.AddVector("g")
	s.q = s.space.AddVector("q")
	s.d[0] = s.space.AddVector("d0")
	s.resilient = cfg.Method == MethodFEIR || cfg.Method == MethodAFEIR
	s.doubleBuffer = s.resilient
	if s.doubleBuffer {
		s.d[1] = s.space.AddVector("d1")
	} else {
		s.d[1] = s.d[0]
	}
	if cfg.UsePrecond {
		s.z = s.space.AddVector("z")
		pre, err := precond.NewBlockJacobi(a, cfg.pageDoubles())
		if err != nil {
			return nil, fmt.Errorf("core: block-Jacobi setup: %w", err)
		}
		s.pre = pre
	}
	s.blocks = sparse.NewBlockSolverCache(a, s.layout, true)
	s.conn = pageConnectivity(a, s.layout)

	s.xS = newStamps(s.np)
	s.gS = newStamps(s.np)
	s.qS = newStamps(s.np)
	s.dS[0] = newStamps(s.np)
	if s.doubleBuffer {
		s.dS[1] = newStamps(s.np)
	} else {
		s.dS[1] = s.dS[0]
	}
	if cfg.UsePrecond {
		s.zS = newStamps(s.np)
	}
	s.dqPart = newAtomicFloats(s.np)
	s.ggPart = newAtomicFloats(s.np)
	s.zgPart = newAtomicFloats(s.np)

	s.scratch = make([]float64, cfg.pageDoubles())
	s.scratch2 = make([]float64, cfg.pageDoubles())

	if cfg.Method == MethodCheckpoint {
		disk := cfg.Disk
		if disk == nil {
			disk = NewSimDisk(0)
		}
		s.ck = newCheckpointer(disk, cfg.CheckpointInterval, cfg.ExpectedMTBE, a.N, cfg.UsePrecond)
	}
	return s, nil
}

func newStamps(n int) []atomic.Int64 {
	s := make([]atomic.Int64, n)
	for i := range s {
		s[i].Store(-1)
	}
	return s
}

// Space returns the fault domain: error injectors target its vectors.
func (s *CG) Space() *pagemem.Space { return s.space }

// DynamicVectors lists the vectors the paper's injections cover (§5.3):
// the Krylov vectors, excluding constant data and resilience metadata.
func (s *CG) DynamicVectors() []*pagemem.Vector {
	vs := []*pagemem.Vector{s.x, s.g, s.q, s.d[0]}
	if s.doubleBuffer {
		vs = append(vs, s.d[1])
	}
	if s.z != nil {
		vs = append(vs, s.z)
	}
	return vs
}

// Stats returns a snapshot of the resilience counters. Only valid after
// Run returned.
func (s *CG) Stats() Stats { return s.stats }

// current reports whether page p of vector v holds version ver.
func current(v *pagemem.Vector, stamps []atomic.Int64, p int, ver int64) bool {
	return stamps[p].Load() == ver && !v.Failed(p)
}

// chunkOfPages splits [0, np) pages into nchunks contiguous ranges.
func chunkRanges(np, nchunks int) [][2]int {
	if nchunks > np {
		nchunks = np
	}
	if nchunks < 1 {
		nchunks = 1
	}
	out := make([][2]int, 0, nchunks)
	for c := 0; c < nchunks; c++ {
		lo := c * np / nchunks
		hi := (c + 1) * np / nchunks
		if lo < hi {
			out = append(out, [2]int{lo, hi})
		}
	}
	return out
}

// Run executes the solve and returns its Result. Run may be called once.
func (s *CG) Run() (Result, error) {
	start := time.Now()
	s.rt = taskrt.New(s.cfg.workers())
	defer s.rt.Close()
	s.nchunks = s.rt.NumWorkers()

	tol := s.cfg.tol()
	maxIter := s.cfg.maxIter(s.a.N)

	// Initial state: x = 0, g = b, d built in iteration 0 via beta = 0.
	copy(s.g.Data, s.b)
	if s.pre != nil {
		s.pre.Apply(s.g.Data, s.z.Data)
		s.rho = sparse.Dot(s.z.Data, s.g.Data)
	}
	s.epsGG = sparse.Dot(s.g.Data, s.g.Data)
	s.beta = 0
	s.restartPending = true // iteration 0 is a fresh start

	var t int
	converged := false
	for t = 0; t < maxIter; t++ {
		rel := math.Sqrt(math.Max(s.epsGG, 0)) / s.bnorm
		if s.cfg.OnIteration != nil {
			s.cfg.OnIteration(t, rel)
		}
		if rel < tol {
			if s.verifyConvergence(t, tol) {
				converged = true
				break
			}
			// Recurrence said converged but the true residual disagrees
			// (possible after ignored unrecoverable errors): refresh the
			// residual and keep iterating — within the SAME iteration
			// index, so the version stamps stay aligned.
			s.refreshResidual(int64(t) - 1)
			s.stats.Restarts++
		}

		if s.ck != nil {
			s.ck.maybeWrite(s, t, time.Since(start))
		}

		// ---------------- Phase 1: d, q, <d,q> (+ r1) ----------------
		ver := int64(t)
		s.runPhase1(ver)
		if act := s.boundary(ver, afterPhase1); act == actionSkipIteration {
			continue
		}
		dq, missing := s.dqPart.SumAvailable()
		s.stats.ContributionsLost += missing
		num := s.epsGG
		if s.pre != nil {
			num = s.rho
		}
		if dq != 0 && !math.IsNaN(dq) && !math.IsNaN(num) {
			s.alpha = num / dq
		} else {
			s.alpha = 0 // degenerate step: no progress this iteration
		}

		// ---------------- Phase 2: x, g, z, eps (+ r2/r3) -------------
		s.runPhase2(ver)
		if act := s.boundary(ver, afterPhase2); act == actionSkipIteration {
			continue
		}
		gg, missingGG := s.ggPart.SumAvailable()
		s.stats.ContributionsLost += missingGG
		if s.pre != nil {
			zg, missingZG := s.zgPart.SumAvailable()
			s.stats.ContributionsLost += missingZG
			if s.rho != 0 && !math.IsNaN(zg) {
				s.beta = zg / s.rho
			} else {
				s.beta = 0
			}
			s.rho = zg
		} else {
			if s.epsGG != 0 && !math.IsNaN(gg) {
				s.beta = gg / s.epsGG
			} else {
				s.beta = 0
			}
		}
		s.epsGG = gg
		s.restartPending = false

		if s.resilient {
			s.reconcile(ver)
		}
	}

	res := Result{
		Converged:   converged,
		Iterations:  t,
		RelResidual: s.trueResidual(),
		Elapsed:     time.Since(start),
		Stats:       s.stats,
		WorkerTimes: s.rt.WorkerTimes(),
	}
	return res, nil
}

// runPhase1 submits the d-update, q = A d and <d,q> partial tasks plus the
// r1 recovery task, and waits for them.
func (s *CG) runPhase1(ver int64) {
	t := int(ver)
	cur, prev := 0, 0
	if s.doubleBuffer {
		cur, prev = t%2, (t+1)%2
	}
	dCur, dPrev := s.d[cur], s.d[prev]
	dCurS, dPrevS := s.dS[cur], s.dS[prev]
	beta := s.beta
	if s.restartPending {
		beta = 0
	}
	src, srcS := s.g, s.gS
	if s.pre != nil {
		src, srcS = s.z, s.zS
	}
	s.dqPart.ResetMissing()

	chunks := chunkRanges(s.np, s.nchunks)
	dH := make([]*taskrt.Handle, 0, len(chunks))
	for _, ch := range chunks {
		pLo, pHi := ch[0], ch[1]
		dH = append(dH, s.rt.Submit(taskrt.TaskSpec{Label: "d", Run: func(int) {
			for p := pLo; p < pHi; p++ {
				lo, hi := s.layout.Range(p)
				if s.resilient {
					if !current(src, srcS, p, ver-1) || (beta != 0 && !current(dPrev, dPrevS, p, ver-1)) {
						continue // skip: dCur page stays at its old version
					}
				}
				if beta == 0 {
					copy(dCur.Data[lo:hi], src.Data[lo:hi])
				} else if s.doubleBuffer {
					sparse.XpbyOutRange(src.Data, beta, dPrev.Data, dCur.Data, lo, hi)
				} else {
					sparse.XpbyRange(src.Data, beta, dCur.Data, lo, hi)
				}
				if s.resilient {
					dCur.MarkRecovered(p) // full overwrite revalidates
					dCurS[p].Store(ver)
				}
			}
		}}))
	}
	qH := make([]*taskrt.Handle, 0, len(chunks))
	for _, ch := range chunks {
		pLo, pHi := ch[0], ch[1]
		qH = append(qH, s.rt.Submit(taskrt.TaskSpec{Label: "q", After: dH, Run: func(int) {
			for p := pLo; p < pHi; p++ {
				lo, hi := s.layout.Range(p)
				if s.resilient {
					ok := true
					for _, j := range s.conn[p] {
						if !current(dCur, dCurS, j, ver) {
							ok = false
							break
						}
					}
					if !ok {
						continue // skip: q page keeps the OLD A·dPrev values
					}
				}
				s.a.MulVecRange(dCur.Data, s.q.Data, lo, hi)
				if s.resilient {
					s.q.MarkRecovered(p)
					s.qS[p].Store(ver)
				}
			}
		}}))
	}
	pH := make([]*taskrt.Handle, 0, len(chunks))
	for _, ch := range chunks {
		pLo, pHi := ch[0], ch[1]
		pH = append(pH, s.rt.Submit(taskrt.TaskSpec{Label: "<d,q>", After: qH, Run: func(int) {
			for p := pLo; p < pHi; p++ {
				lo, hi := s.layout.Range(p)
				if s.resilient {
					if !current(dCur, dCurS, p, ver) || !current(s.q, s.qS, p, ver) {
						continue // slot stays missing; r1 may fill it
					}
				}
				s.dqPart.Store(p, sparse.DotRange(dCur.Data, s.q.Data, lo, hi))
			}
		}}))
	}

	var r1 *taskrt.Handle
	skipRecovery := s.cfg.OnDemandRecovery && !s.space.AnyFault()
	if s.cfg.Method == MethodAFEIR && !skipRecovery {
		// Overlapped with the reductions, lower priority so reduction
		// tasks start first (§3.3.2, Fig 2b). Handles only faults whose
		// consequences are visible as stale stamps plus poisons on
		// vectors the concurrent reductions never read.
		after := append(append([]*taskrt.Handle{}, dH...), qH...)
		r1 = s.rt.Submit(taskrt.TaskSpec{Label: "r1", After: after, Priority: -1, Run: func(int) {
			s.recoverPhase1(ver, beta, cur, prev, false)
		}})
	}
	s.rt.WaitAll(dH)
	s.rt.WaitAll(qH)
	s.rt.WaitAll(pH)
	if r1 != nil {
		s.rt.Wait(r1)
	}
	if s.cfg.Method == MethodFEIR && !(s.cfg.OnDemandRecovery && !s.space.AnyFault()) {
		// In the critical path: runs after every computation (thus every
		// potential error discovery) of the phase (Fig 2a).
		r1 = s.rt.Submit(taskrt.TaskSpec{Label: "r1", Run: func(int) {
			s.recoverPhase1(ver, beta, cur, prev, true)
		}})
		s.rt.Wait(r1)
	}
}

// runPhase2 submits x/g/z updates, the eps partials and the r2/r3
// recovery, and waits.
func (s *CG) runPhase2(ver int64) {
	t := int(ver)
	cur := 0
	if s.doubleBuffer {
		cur = t % 2
	}
	dCur, dCurS := s.d[cur], s.dS[cur]
	alpha := s.alpha
	s.ggPart.ResetMissing()
	if s.pre != nil {
		s.zgPart.ResetMissing()
	}

	chunks := chunkRanges(s.np, s.nchunks)
	xH := make([]*taskrt.Handle, 0, len(chunks))
	gH := make([]*taskrt.Handle, 0, len(chunks))
	for _, ch := range chunks {
		pLo, pHi := ch[0], ch[1]
		xH = append(xH, s.rt.Submit(taskrt.TaskSpec{Label: "x", Run: func(int) {
			for p := pLo; p < pHi; p++ {
				lo, hi := s.layout.Range(p)
				if s.resilient {
					if !current(s.x, s.xS, p, ver-1) || !current(dCur, dCurS, p, ver) {
						continue
					}
				}
				sparse.AxpyRange(alpha, dCur.Data, s.x.Data, lo, hi)
				if s.resilient {
					s.xS[p].Store(ver)
				}
			}
		}}))
	}
	for _, ch := range chunks {
		pLo, pHi := ch[0], ch[1]
		gH = append(gH, s.rt.Submit(taskrt.TaskSpec{Label: "g", Run: func(int) {
			for p := pLo; p < pHi; p++ {
				lo, hi := s.layout.Range(p)
				if s.resilient {
					if !current(s.g, s.gS, p, ver-1) || !current(s.q, s.qS, p, ver) {
						continue
					}
				}
				sparse.AxpyRange(-alpha, s.q.Data, s.g.Data, lo, hi)
				if s.resilient {
					s.gS[p].Store(ver)
				}
			}
		}}))
	}
	var zH []*taskrt.Handle
	if s.pre != nil {
		for _, ch := range chunks {
			pLo, pHi := ch[0], ch[1]
			zH = append(zH, s.rt.Submit(taskrt.TaskSpec{Label: "z", After: gH, Run: func(int) {
				for p := pLo; p < pHi; p++ {
					if s.resilient && !current(s.g, s.gS, p, ver) {
						continue
					}
					// Full-page overwrite via partial preconditioner
					// application (§3.2).
					if err := s.pre.ApplyBlock(p, s.g.Data, s.z.Data); err != nil {
						continue
					}
					if s.resilient {
						s.z.MarkRecovered(p)
						s.zS[p].Store(ver)
					}
				}
			}}))
		}
	}
	epsAfter := gH
	if s.pre != nil {
		epsAfter = append(append([]*taskrt.Handle{}, gH...), zH...)
	}
	eH := make([]*taskrt.Handle, 0, len(chunks))
	for _, ch := range chunks {
		pLo, pHi := ch[0], ch[1]
		eH = append(eH, s.rt.Submit(taskrt.TaskSpec{Label: "eps", After: epsAfter, Run: func(int) {
			for p := pLo; p < pHi; p++ {
				lo, hi := s.layout.Range(p)
				gOK := !s.resilient || current(s.g, s.gS, p, ver)
				if gOK {
					s.ggPart.Store(p, sparse.DotRange(s.g.Data, s.g.Data, lo, hi))
				}
				if s.pre != nil {
					zOK := !s.resilient || current(s.z, s.zS, p, ver)
					if gOK && zOK {
						s.zgPart.Store(p, sparse.DotRange(s.z.Data, s.g.Data, lo, hi))
					}
				}
			}
		}}))
	}

	var r23 *taskrt.Handle
	skipRecovery := s.cfg.OnDemandRecovery && !s.space.AnyFault()
	if s.cfg.Method == MethodAFEIR && !skipRecovery {
		after := append(append([]*taskrt.Handle{}, xH...), gH...)
		after = append(after, zH...)
		r23 = s.rt.Submit(taskrt.TaskSpec{Label: "r2r3", After: after, Priority: -1, Run: func(int) {
			s.recoverPhase2(ver, cur, false)
		}})
	}
	s.rt.WaitAll(xH)
	s.rt.WaitAll(gH)
	s.rt.WaitAll(zH)
	s.rt.WaitAll(eH)
	if r23 != nil {
		s.rt.Wait(r23)
	}
	if s.cfg.Method == MethodFEIR && !(s.cfg.OnDemandRecovery && !s.space.AnyFault()) {
		r23 = s.rt.Submit(taskrt.TaskSpec{Label: "r2r3", Run: func(int) {
			s.recoverPhase2(ver, cur, true)
		}})
		s.rt.Wait(r23)
	}
}

type boundaryPoint int

const (
	afterPhase1 boundaryPoint = iota
	afterPhase2
)

type boundaryAction int

const (
	actionContinue boundaryAction = iota
	actionSkipIteration
)

// boundary is a task-phase boundary: all workers are quiescent. Pending
// data losses take effect here, and the non-ABFT methods react to any
// visible fault.
func (s *CG) boundary(ver int64, _ boundaryPoint) boundaryAction {
	evs := s.space.ScramblePending()
	s.stats.FaultsSeen += len(evs)
	if !s.space.AnyFault() {
		return actionContinue
	}
	switch s.cfg.Method {
	case MethodFEIR, MethodAFEIR:
		// Handled by recovery tasks and reconcile.
		return actionContinue
	case MethodIdeal, MethodTrivial:
		// Blank-page forward recovery (§4.1): keep running.
		s.blankAllFailed()
		return actionContinue
	case MethodLossy:
		s.lossyRestart(ver)
		return actionSkipIteration
	case MethodCheckpoint:
		s.ck.rollback(s)
		return actionSkipIteration
	}
	return actionContinue
}

// blankAllFailed remaps every failed page to a blank one and clears the
// fault bits — the Trivial forward recovery.
func (s *CG) blankAllFailed() {
	for _, v := range s.space.Vectors() {
		for _, p := range v.FailedPages() {
			v.Remap(p)
			v.MarkRecovered(p)
		}
	}
}

// verifyConvergence recomputes the true residual when the recurrence
// claims convergence. Exact forward recovery preserves the recurrence, but
// ignored unrecoverable errors can desynchronise g from b - Ax.
func (s *CG) verifyConvergence(_ int, tol float64) bool {
	return s.trueResidual() < tol*10
}

// trueResidual computes ||b - A x|| / ||b|| sequentially.
func (s *CG) trueResidual() float64 {
	r := make([]float64, s.a.N)
	s.a.MulVec(s.x.Data, r)
	sparse.Sub(s.b, r, r)
	return sparse.Norm2(r) / s.bnorm
}

// refreshResidual recomputes g = b - A x (and z, rho, eps) sequentially and
// forces a beta=0 step, restoring the g/x invariant after damage. Failed
// iterate pages that survived every recovery attempt are blanked first —
// the FallbackIgnore endgame.
func (s *CG) refreshResidual(ver int64) {
	for _, p := range s.x.FailedPages() {
		s.x.Remap(p)
		s.x.MarkRecovered(p)
		s.stats.Unrecovered++
	}
	for p := 0; p < s.np; p++ {
		s.xS[p].Store(ver)
	}
	s.a.MulVec(s.x.Data, s.g.Data)
	sparse.Sub(s.b, s.g.Data, s.g.Data)
	for p := 0; p < s.np; p++ {
		s.g.MarkRecovered(p)
		s.gS[p].Store(ver)
	}
	if s.pre != nil {
		s.pre.Apply(s.g.Data, s.z.Data)
		for p := 0; p < s.np; p++ {
			s.z.MarkRecovered(p)
			s.zS[p].Store(ver)
		}
		s.rho = sparse.Dot(s.z.Data, s.g.Data)
	}
	s.epsGG = sparse.Dot(s.g.Data, s.g.Data)
	s.beta = 0
	s.restartPending = true
}
