package core

import (
	"sort"

	"repro/internal/sparse"
)

// This file implements the Lossy Restart comparator (§4.3), adapted from
// Langou et al.'s Lossy Approach to the memory-page error model: lost
// iterate pages are interpolated with one block-Jacobi step
//
//	A_pp x_p = b_p - Σ_{j∉failed} A_pj x_j
//
// (discarding the residual), after which the method restarts with the
// interpolated iterate as initial guess. Theorems 1–3 about this
// interpolation are validated in lossy_test.go.

// LossyInterpolate performs the block-Jacobi step interpolation of the
// lost pages of x, in place. failed lists the lost page indices (their
// current content is ignored and excluded from the right-hand side).
// Returns false when the coupled system cannot be solved.
//
// It is exported (within the module) so the Theorem 1–3 property tests and
// the distributed solver can exercise exactly the production interpolation
// code.
func LossyInterpolate(a *sparse.CSR, layout sparse.BlockLayout, blocks *sparse.BlockSolverCache, b, x []float64, failed []int) bool {
	if len(failed) == 0 {
		return true
	}
	// The coupled solver returns solutions in ascending block order;
	// assemble the right-hand side in the same order.
	failed = append([]int(nil), failed...)
	sort.Ints(failed)
	var exclude [][2]int
	for _, p := range failed {
		lo, hi := layout.Range(p)
		exclude = append(exclude, [2]int{lo, hi})
	}
	if len(failed) == 1 {
		p := failed[0]
		lo, hi := layout.Range(p)
		rhs := make([]float64, hi-lo)
		a.MulVecRangeExcludingBlocks(x, rhs, lo, hi, exclude)
		for i := lo; i < hi; i++ {
			rhs[i-lo] = b[i] - rhs[i-lo]
		}
		if err := blocks.SolveDiagBlock(p, rhs); err != nil {
			return false
		}
		copy(x[lo:hi], rhs)
		return true
	}
	var rhs []float64
	for _, p := range failed {
		lo, hi := layout.Range(p)
		part := make([]float64, hi-lo)
		a.MulVecRangeExcludingBlocks(x, part, lo, hi, exclude)
		for i := lo; i < hi; i++ {
			part[i-lo] = b[i] - part[i-lo]
		}
		rhs = append(rhs, part...)
	}
	order, err := blocks.SolveCoupledBlocks(failed, rhs)
	if err != nil {
		return false
	}
	off := 0
	for _, p := range order {
		lo, hi := layout.Range(p)
		copy(x[lo:hi], rhs[off:off+hi-lo])
		off += hi - lo
	}
	return true
}

// lossyRestart reacts to detected faults for MethodLossy: interpolate any
// lost iterate pages, rebuild all other dynamic data from x, restart.
func (s *CG) lossyRestart(ver int64) {
	failedX := s.x.FailedPages()
	if len(failedX) > 0 {
		if LossyInterpolate(s.a, s.layout, s.blocks, s.b, s.x.Data, failedX) {
			s.stats.LossyInterpolations += len(failedX)
		} else {
			// Interpolation failed (degenerate block): blank the pages;
			// the restart still yields a consistent state.
			for _, p := range failedX {
				s.x.Remap(p)
			}
		}
	}
	s.space.ClearAll()
	if s.resilient {
		// An adaptive run switched to Lossy still executes the stamped
		// resilient task bodies: restamp everything at ver so the next
		// iteration's guards see a consistent restart state. (Pure Lossy
		// runs never read stamps, so this is inert for them.)
		s.forceAllStamps(ver)
	}
	s.refreshResidual(ver)
	s.stats.Restarts++
}

// lossyFallback is the §2.4 fallback for FEIR/AFEIR when redundancy
// relations cannot repair simultaneous related-data errors: lossy
// interpolation of whatever iterate pages are not current, then a restart.
func (s *CG) lossyFallback(ver int64) {
	var failedX []int
	for p := 0; p < s.np; p++ {
		if !current(s.x, s.xS, p, ver) {
			failedX = append(failedX, p)
		}
	}
	if len(failedX) > 0 && LossyInterpolate(s.a, s.layout, s.blocks, s.b, s.x.Data, failedX) {
		s.stats.LossyInterpolations += len(failedX)
		for _, p := range failedX {
			s.x.MarkRecovered(p)
			s.xS[p].Store(ver)
		}
	} else {
		for _, p := range failedX {
			s.x.Remap(p)
			s.x.MarkRecovered(p)
			s.xS[p].Store(ver)
			s.stats.Unrecovered++
		}
	}
	s.space.ClearAll()
	s.forceAllStamps(ver)
	s.refreshResidual(ver)
	s.stats.Restarts++
}

// forceAllStamps stamps every page of every tracked vector at ver, used
// after restart-style recoveries that rebuild all dynamic data.
func (s *CG) forceAllStamps(ver int64) {
	s.xS.Fill(ver)
	s.gS.Fill(ver)
	s.qS.Fill(ver)
	s.dS[0].Fill(ver)
	if s.doubleBuffer {
		s.dS[1].Fill(ver)
	}
	if s.zS != nil {
		s.zS.Fill(ver)
	}
}
