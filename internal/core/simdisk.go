package core

import (
	"sync"
	"time"
)

// SimDisk models the local scratch disk each processing element writes its
// checkpoints to (§4.2). 2015-era local scratch storage is far slower than
// the NVMe this reproduction runs on, so checkpoint I/O is simulated by a
// bandwidth-throttled sleep; the default bandwidth is tuned so the
// checkpoint-period overheads land in the regime Table 2 reports
// (17.62 % at period 1000, 46.20 % at period 200). A single mutex
// serialises accesses, modelling one disk shared by the node's workers.
type SimDisk struct {
	// BytesPerSecond is the sustained bandwidth of the simulated disk.
	BytesPerSecond float64
	// Latency is the fixed per-operation seek/submit cost.
	Latency time.Duration

	mu           sync.Mutex
	bytesWritten int64
	bytesRead    int64
}

// DefaultDiskBandwidth is the default simulated bandwidth. See the Table 2
// calibration notes in EXPERIMENTS.md.
const DefaultDiskBandwidth = 30e6 // 30 MB/s

// NewSimDisk builds a simulated disk with the given bandwidth (0 means
// DefaultDiskBandwidth) and a small fixed latency.
func NewSimDisk(bytesPerSecond float64) *SimDisk {
	if bytesPerSecond <= 0 {
		bytesPerSecond = DefaultDiskBandwidth
	}
	return &SimDisk{BytesPerSecond: bytesPerSecond, Latency: 200 * time.Microsecond}
}

// Write blocks for the time a write of n bytes would take and accounts it.
func (d *SimDisk) Write(n int) {
	d.transfer(n, &d.bytesWritten)
}

// Read blocks for the time a read of n bytes would take and accounts it.
func (d *SimDisk) Read(n int) {
	d.transfer(n, &d.bytesRead)
}

func (d *SimDisk) transfer(n int, counter *int64) {
	dur := d.Latency + time.Duration(float64(n)/d.BytesPerSecond*float64(time.Second))
	d.mu.Lock()
	*counter += int64(n)
	d.mu.Unlock()
	time.Sleep(dur)
}

// WriteTime predicts the duration of writing n bytes without performing
// the transfer — used by the Young/Daly checkpoint-interval optimisation.
func (d *SimDisk) WriteTime(n int) time.Duration {
	return d.Latency + time.Duration(float64(n)/d.BytesPerSecond*float64(time.Second))
}

// Stats returns cumulative bytes written and read.
func (d *SimDisk) Stats() (written, read int64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.bytesWritten, d.bytesRead
}
