package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/matgen"
	"repro/internal/sparse"
)

// asymmetricHard builds a diagonally dominant non-symmetric system with
// couplings that cross page boundaries (±67 with 64-double pages), so
// the block-Jacobi preconditioner helps without being a direct solve —
// runs last long enough for storms to land.
func asymmetricHard(n int) (*sparse.CSR, []float64, []float64) {
	var tr []sparse.Triplet
	for i := 0; i < n; i++ {
		tr = append(tr, sparse.Triplet{Row: i, Col: i, Val: 4})
		if i > 0 {
			tr = append(tr, sparse.Triplet{Row: i, Col: i - 1, Val: -1.4})
		}
		if i < n-1 {
			tr = append(tr, sparse.Triplet{Row: i, Col: i + 1, Val: -0.6})
		}
		if i+67 < n {
			tr = append(tr, sparse.Triplet{Row: i, Col: i + 67, Val: -0.9})
		}
		if i-67 >= 0 {
			tr = append(tr, sparse.Triplet{Row: i, Col: i - 67, Val: -0.7})
		}
	}
	a := sparse.NewCSRFromTriplets(n, n, tr)
	want := matgen.RandomVector(n, 33)
	b := make([]float64, n)
	a.MulVec(want, b)
	return a, b, want
}

func precondCfg(method Method) Config {
	cfg := bicgCfg()
	cfg.Method = method
	cfg.UsePrecond = true
	return cfg
}

// TestBiCGStabPrecondConvergesFaster pins the -precond contract: the
// preconditioned run reaches the exact solution in strictly fewer
// iterations than the unpreconditioned one.
func TestBiCGStabPrecondConvergesFaster(t *testing.T) {
	a, b, want := asymmetricHard(1000)
	sv, err := NewBiCGStab(a, b, bicgCfg())
	if err != nil {
		t.Fatal(err)
	}
	base, _, err := sv.Run()
	if err != nil || !base.Converged {
		t.Fatalf("unpreconditioned: %+v err=%v", base, err)
	}
	svp, err := NewBiCGStab(a, b, precondCfg(MethodFEIR))
	if err != nil {
		t.Fatal(err)
	}
	res, x, err := svp.Run()
	if err != nil || !res.Converged {
		t.Fatalf("preconditioned: %+v err=%v", res, err)
	}
	for i := range x {
		if math.Abs(x[i]-want[i]) > 1e-5 {
			t.Fatalf("x[%d] = %v, want %v", i, x[i], want[i])
		}
	}
	if res.Iterations >= base.Iterations {
		t.Fatalf("preconditioned run not faster: %d vs %d iterations", res.Iterations, base.Iterations)
	}
}

// TestGMRESPrecondConvergesFaster is the same contract for GMRES(m).
func TestGMRESPrecondConvergesFaster(t *testing.T) {
	a, b, want := asymmetricHard(1000)
	sv, err := NewGMRES(a, b, 20, bicgCfg())
	if err != nil {
		t.Fatal(err)
	}
	base, _, err := sv.Run()
	if err != nil || !base.Converged {
		t.Fatalf("unpreconditioned: %+v err=%v", base, err)
	}
	svp, err := NewGMRES(a, b, 20, precondCfg(MethodFEIR))
	if err != nil {
		t.Fatal(err)
	}
	res, x, err := svp.Run()
	if err != nil || !res.Converged {
		t.Fatalf("preconditioned: %+v err=%v", res, err)
	}
	for i := range x {
		if math.Abs(x[i]-want[i]) > 1e-5 {
			t.Fatalf("x[%d] = %v, want %v", i, x[i], want[i])
		}
	}
	if res.Iterations >= base.Iterations {
		t.Fatalf("preconditioned run not faster: %d vs %d iterations", res.Iterations, base.Iterations)
	}
}

// TestBiCGStabPrecondRecoversEveryVector poisons each protected vector
// of the preconditioned run in turn — including the preconditioned
// directions d̂ and ŝ — and demands exact convergence.
func TestBiCGStabPrecondRecoversEveryVector(t *testing.T) {
	a, b, want := asymmetricHard(1000)
	for _, vec := range []string{"x", "g", "q", "d0", "d1", "s", "t", "dh", "sh"} {
		cfg := precondCfg(MethodFEIR)
		sv, err := NewBiCGStab(a, b, cfg)
		if err != nil {
			t.Fatal(err)
		}
		cfg2 := cfg
		cfg2.OnIteration = func(it int, rel float64) {
			if it == 5 {
				sv.Space().VectorByName(vec).Poison(3)
			}
		}
		sv.cfg = cfg2
		res, x, err := sv.Run()
		if err != nil {
			t.Fatalf("error in %s: %v", vec, err)
		}
		if !res.Converged {
			t.Fatalf("error in %s: not converged %+v", vec, res)
		}
		if res.Stats.FaultsSeen == 0 {
			t.Fatalf("error in %s never seen", vec)
		}
		for i := range x {
			if math.Abs(x[i]-want[i]) > 1e-5 {
				t.Fatalf("error in %s: x[%d] = %v, want %v", vec, i, x[i], want[i])
			}
		}
	}
}

// TestGMRESPrecondRecoversZ poisons the protected preconditioned
// residual (and the x/g pair and basis) of the preconditioned GMRES.
func TestGMRESPrecondRecoversZ(t *testing.T) {
	a, b, want := asymmetricHard(1000)
	for _, vec := range []string{"x", "g", "z", "v0", "v2", "v5"} {
		cfg := precondCfg(MethodFEIR)
		sv, err := NewGMRES(a, b, 20, cfg)
		if err != nil {
			t.Fatal(err)
		}
		cfg2 := cfg
		cfg2.OnIteration = func(it int, rel float64) {
			if it == 8 { // mid-cycle: several basis vectors alive
				sv.Space().VectorByName(vec).Poison(4)
			}
		}
		sv.cfg = cfg2
		res, x, err := sv.Run()
		if err != nil {
			t.Fatalf("error in %s: %v", vec, err)
		}
		if !res.Converged {
			t.Fatalf("error in %s: not converged %+v", vec, res)
		}
		if res.Stats.FaultsSeen == 0 {
			t.Fatalf("error in %s never seen", vec)
		}
		for i := range x {
			if math.Abs(x[i]-want[i]) > 1e-5 {
				t.Fatalf("error in %s: wrong solution", vec)
			}
		}
	}
}

// TestStormBiCGStabPrecond drives the preconditioned BiCGStab through
// DUE storms of 1–5 errors per run across every protected vector
// (including d̂/ŝ) for both recovery disciplines.
func TestStormBiCGStabPrecond(t *testing.T) {
	a, b, _ := asymmetricHard(1000)
	vectors := []string{"x", "g", "q", "d0", "d1", "s", "t", "dh", "sh"}
	base := runBiCGStabWithInjections(t, a, b, precondCfg(MethodFEIR), nil)
	window := base.Iterations * 3 / 4
	if window < 2 {
		t.Fatalf("fault-free run too short for a storm: %+v", base)
	}
	for _, method := range []Method{MethodFEIR, MethodAFEIR} {
		for rate := 1; rate <= 5; rate++ {
			seed := int64(5000*int(method) + rate)
			rng := rand.New(rand.NewSource(seed))
			inj := stormInjections(rng, vectors, 16, window, rate)
			res := runBiCGStabWithInjections(t, a, b, precondCfg(method), inj)
			if !res.Converged {
				t.Fatalf("%v rate %d: not converged: %+v", method, rate, res)
			}
			if res.RelResidual > 1e-8 {
				t.Fatalf("%v rate %d: true residual %v", method, rate, res.RelResidual)
			}
		}
	}
}

// TestStormGMRESPrecond is the storm campaign for the preconditioned
// GMRES, covering the z vector alongside the x/g pair and the basis.
func TestStormGMRESPrecond(t *testing.T) {
	a, b, _ := asymmetricHard(1000)
	vectors := []string{"x", "g", "z", "v0", "v1", "v3", "v7"}
	base := runGMRESWithInjections(t, a, b, 20, precondCfg(MethodFEIR), nil)
	window := base.Iterations * 3 / 4
	if window < 2 {
		t.Fatalf("fault-free run too short for a storm: %+v", base)
	}
	for _, method := range []Method{MethodFEIR, MethodAFEIR} {
		for rate := 1; rate <= 5; rate++ {
			seed := int64(7000*int(method) + rate)
			rng := rand.New(rand.NewSource(seed))
			inj := stormInjections(rng, vectors, 16, window, rate)
			res := runGMRESWithInjections(t, a, b, 20, precondCfg(method), inj)
			if !res.Converged {
				t.Fatalf("%v rate %d: not converged: %+v", method, rate, res)
			}
			if res.RelResidual > 1e-8 {
				t.Fatalf("%v rate %d: true residual %v", method, rate, res.RelResidual)
			}
		}
	}
}

// TestRhoBoundaryBreakdown pins the phase-3 breakdown guard: a zero NEW
// rho is a breakdown (it stalls the next iteration's α), not only a zero
// carried rho or omega — except when the residual has already converged.
func TestRhoBoundaryBreakdown(t *testing.T) {
	const bnorm, tol = 1.0, 1e-10
	cases := []struct {
		name               string
		rho, omega, rhoNew float64
		gg                 float64
		want               bool
	}{
		{"healthy", 1, 0.5, 0.8, 1, false},
		{"staleRhoZero", 0, 0.5, 0.8, 1, true},
		{"omegaZero", 1, 0, 0.8, 1, true},
		{"rhoNewZeroUnconverged", 1, 0.5, 0, 1, true},
		{"rhoNewZeroConverged", 1, 0.5, 0, 1e-30, false},
		{"rhoNewNaN", 1, 0.5, math.NaN(), 1, true},
	}
	for _, c := range cases {
		if got := RhoBoundaryBreakdown(c.rho, c.omega, c.rhoNew, c.gg, bnorm, tol); got != c.want {
			t.Errorf("%s: RhoBoundaryBreakdown = %v, want %v", c.name, got, c.want)
		}
	}
}
