package core

import (
	"math"
	"testing"

	"repro/internal/matgen"
	"repro/internal/sparse"
)

// asymmetric builds a diagonally dominant non-symmetric test system.
func asymmetric(n int) (*sparse.CSR, []float64, []float64) {
	var tr []sparse.Triplet
	for i := 0; i < n; i++ {
		tr = append(tr, sparse.Triplet{Row: i, Col: i, Val: 4})
		if i > 0 {
			tr = append(tr, sparse.Triplet{Row: i, Col: i - 1, Val: -1.4})
		}
		if i < n-1 {
			tr = append(tr, sparse.Triplet{Row: i, Col: i + 1, Val: -0.6})
		}
	}
	a := sparse.NewCSRFromTriplets(n, n, tr)
	want := matgen.RandomVector(n, 33)
	b := make([]float64, n)
	a.MulVec(want, b)
	return a, b, want
}

func bicgCfg() Config {
	return Config{Method: MethodFEIR, PageDoubles: 64, Tol: 1e-10, MaxIter: 5000}
}

func TestBiCGStabNoErrors(t *testing.T) {
	a, b, want := asymmetric(1000)
	sv, err := NewBiCGStab(a, b, bicgCfg())
	if err != nil {
		t.Fatal(err)
	}
	res, x, err := sv.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("not converged: %+v", res)
	}
	for i := range x {
		if math.Abs(x[i]-want[i]) > 1e-6 {
			t.Fatalf("x[%d] = %v, want %v", i, x[i], want[i])
		}
	}
}

func TestBiCGStabRecoversEveryVector(t *testing.T) {
	a, b, want := asymmetric(1000)
	for _, vec := range []string{"x", "g", "q", "d0", "d1", "s", "t"} {
		sv, err := NewBiCGStab(a, b, bicgCfg())
		if err != nil {
			t.Fatal(err)
		}
		cfg := bicgCfg()
		cfg.OnIteration = func(it int, rel float64) {
			if it == 5 {
				sv.Space().VectorByName(vec).Poison(3)
			}
		}
		sv.cfg = cfg
		res, x, err := sv.Run()
		if err != nil {
			t.Fatalf("error in %s: %v", vec, err)
		}
		if !res.Converged {
			t.Fatalf("error in %s: not converged %+v", vec, res)
		}
		if res.Stats.FaultsSeen == 0 {
			t.Fatalf("error in %s never seen", vec)
		}
		for i := range x {
			if math.Abs(x[i]-want[i]) > 1e-5 {
				t.Fatalf("error in %s: x[%d] = %v, want %v", vec, i, x[i], want[i])
			}
		}
	}
}

func TestBiCGStabExactRecoveryKeepsIterationCount(t *testing.T) {
	a, b, _ := asymmetric(1200)
	sv, err := NewBiCGStab(a, b, bicgCfg())
	if err != nil {
		t.Fatal(err)
	}
	base, _, err := sv.Run()
	if err != nil {
		t.Fatal(err)
	}
	sv2, err := NewBiCGStab(a, b, bicgCfg())
	if err != nil {
		t.Fatal(err)
	}
	cfg := bicgCfg()
	cfg.OnIteration = func(it int, rel float64) {
		if it == 4 {
			sv2.Space().VectorByName("g").Poison(2)
			sv2.Space().VectorByName("d1").Poison(6)
		}
	}
	sv2.cfg = cfg
	res, _, err := sv2.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("not converged")
	}
	if d := res.Iterations - base.Iterations; d < -1 || d > 1 {
		t.Fatalf("iterations %d vs fault-free %d", res.Iterations, base.Iterations)
	}
	if res.Stats.RecoveredForward+res.Stats.RecoveredInverse == 0 {
		t.Fatalf("no exact recoveries recorded: %+v", res.Stats)
	}
}

func TestGMRESNoErrors(t *testing.T) {
	a, b, want := asymmetric(900)
	sv, err := NewGMRES(a, b, 25, bicgCfg())
	if err != nil {
		t.Fatal(err)
	}
	res, x, err := sv.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("not converged: %+v", res)
	}
	for i := range x {
		if math.Abs(x[i]-want[i]) > 1e-5 {
			t.Fatalf("x[%d] = %v, want %v", i, x[i], want[i])
		}
	}
}

func TestGMRESRecoversBasisVectors(t *testing.T) {
	a, b, want := asymmetric(900)
	for _, vec := range []string{"x", "g", "v0", "v2", "v5"} {
		sv, err := NewGMRES(a, b, 20, bicgCfg())
		if err != nil {
			t.Fatal(err)
		}
		cfg := bicgCfg()
		cfg.OnIteration = func(it int, rel float64) {
			if it == 8 { // mid-cycle: several basis vectors alive
				sv.Space().VectorByName(vec).Poison(4)
			}
		}
		sv.cfg = cfg
		res, x, err := sv.Run()
		if err != nil {
			t.Fatalf("error in %s: %v", vec, err)
		}
		if !res.Converged {
			t.Fatalf("error in %s: not converged %+v", vec, res)
		}
		for i := range x {
			if math.Abs(x[i]-want[i]) > 1e-5 {
				t.Fatalf("error in %s: wrong solution", vec)
			}
		}
		if res.Stats.FaultsSeen == 0 {
			t.Fatalf("error in %s never seen", vec)
		}
	}
}

func TestGMRESBasisRecoveryIsExact(t *testing.T) {
	// Poison a mid-cycle basis vector and verify the run converges with
	// at most one extra restart cycle relative to fault-free.
	a, b, _ := asymmetric(1200)
	sv, err := NewGMRES(a, b, 30, bicgCfg())
	if err != nil {
		t.Fatal(err)
	}
	base, _, err := sv.Run()
	if err != nil {
		t.Fatal(err)
	}
	sv2, err := NewGMRES(a, b, 30, bicgCfg())
	if err != nil {
		t.Fatal(err)
	}
	cfg := bicgCfg()
	cfg.OnIteration = func(it int, rel float64) {
		if it == 10 {
			sv2.Space().VectorByName("v3").Poison(7)
		}
	}
	sv2.cfg = cfg
	res, _, err := sv2.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("not converged")
	}
	if res.Iterations > base.Iterations+30 {
		t.Fatalf("recovery cost too much: %d vs %d iterations", res.Iterations, base.Iterations)
	}
	if res.Stats.RecoveredForward == 0 {
		t.Fatalf("no forward recoveries recorded: %+v", res.Stats)
	}
}

func TestGMRESRestartBound(t *testing.T) {
	a, b, _ := asymmetric(100)
	if _, err := NewGMRES(a, b, 80, bicgCfg()); err == nil {
		t.Fatal("accepted restart exceeding the protectable-vector bound")
	}
}

func TestBiCGStabValidation(t *testing.T) {
	a, b, _ := asymmetric(100)
	if _, err := NewBiCGStab(a, b[:10], bicgCfg()); err == nil {
		t.Fatal("accepted bad rhs")
	}
}
