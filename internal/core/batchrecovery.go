package core

import (
	"sync/atomic"

	"repro/internal/engine"
	"repro/internal/pagemem"
	"repro/internal/sparse"
)

// Batched recovery: the Figure 1(b) r1 and r2/r3 tasks over an
// interleaved multivector page space. A page loss takes all b columns of
// its row range together, and every Table 1 relation is column-separable
// (the matrix couples rows, never RHS columns), so each repair rebuilds
// the same page relation b times — one batched SpMM for the off-block
// part, then one diagonal-block solve per column. The allowLate
// discipline is the scalar solver's, unchanged.
//
// The one scalar facility the batch path does NOT port is the §2.4
// coupled multi-error solve: its combined block system is built per
// column and amortizes nothing across the batch, and the serving-path
// error model (one DUE per fault event) never needs it. Pages that stay
// individually unrecoverable fall through to reconcile's blank-remap
// fallback, exactly like a scalar solve with FallbackIgnore and a stuck
// group.

// bForwardResidual rebuilds page p of G at ver from G = B - A X per
// column (Table 1, row 3 lhs), requiring X current at ver on the
// connected pages.
func (s *BatchCG) bForwardResidual(p int, ver int64) bool {
	x := vec(s.x, s.xS)
	if !x.ConnCurrent(s.conn[p], ver, -1) {
		return false
	}
	w := s.width
	lo, hi := s.layout.Range(p)
	s.a.MulMatRangeExcludingCols(s.x.Data, s.scratch, w, lo, hi, 0, 0)
	for i := lo; i < hi; i++ {
		base := i * w
		sbase := (i - lo) * w
		for j := 0; j < w; j++ {
			s.g.Data[base+j] = s.b[base+j] - s.scratch[sbase+j]
		}
	}
	s.g.MarkRecovered(p)
	s.gS[p].Store(ver)
	s.stats.RecoveredForward++
	return true
}

// bInverseIterate rebuilds page p of X at ver from
// A_pp x_p = b_p - g_p - Σ_{j≠p} A_pj x_j per column (Table 1, row 3
// rhs), requiring G current at ver on page p and X current on the other
// connected pages.
func (s *BatchCG) bInverseIterate(p int, ver int64) bool {
	x, g := vec(s.x, s.xS), vec(s.g, s.gS)
	if !g.Current(p, ver) || !x.ConnCurrent(s.conn[p], ver, p) {
		return false
	}
	w := s.width
	lo, hi := s.layout.Range(p)
	s.a.MulMatRangeExcludingCols(s.x.Data, s.scratch, w, lo, hi, lo, hi)
	for j := 0; j < w; j++ {
		for i := lo; i < hi; i++ {
			s.colScratch[i-lo] = s.b[i*w+j] - s.g.Data[i*w+j] - s.scratch[(i-lo)*w+j]
		}
		if err := s.blocks.SolveDiagBlock(p, s.colScratch[:hi-lo]); err != nil {
			return false
		}
		for i := lo; i < hi; i++ {
			s.x.Data[i*w+j] = s.colScratch[i-lo]
		}
	}
	s.x.MarkRecovered(p)
	s.xS[p].Store(ver)
	s.stats.RecoveredInverse++
	return true
}

// bInverseDirection rebuilds page p of a direction buffer at ver from
// A_pp d_p = q_p - Σ_{j≠p} A_pj d_j per column (Table 1, row 1 rhs),
// requiring Q at the SAME version on page p (old Q for dPrev, preserved
// by double buffering) and the other connected pages of D current.
func (s *BatchCG) bInverseDirection(d *pagemem.Vector, dS []atomic.Int64, p int, ver int64) bool {
	dv, q := (engine.Vec{V: d, S: dS}), vec(s.q, s.qS)
	if !q.Current(p, ver) || !dv.ConnCurrent(s.conn[p], ver, p) {
		return false
	}
	w := s.width
	lo, hi := s.layout.Range(p)
	s.a.MulMatRangeExcludingCols(d.Data, s.scratch, w, lo, hi, lo, hi)
	for j := 0; j < w; j++ {
		for i := lo; i < hi; i++ {
			s.colScratch[i-lo] = s.q.Data[i*w+j] - s.scratch[(i-lo)*w+j]
		}
		if err := s.blocks.SolveDiagBlock(p, s.colScratch[:hi-lo]); err != nil {
			return false
		}
		for i := lo; i < hi; i++ {
			d.Data[i*w+j] = s.colScratch[i-lo]
		}
	}
	d.MarkRecovered(p)
	dS[p].Store(ver)
	s.stats.RecoveredInverse++
	return true
}

// bForwardSpMV rebuilds page p of Q at ver by re-running the SpMM rows
// (Table 1, row 1 lhs), requiring D current on the connected pages.
func (s *BatchCG) bForwardSpMV(d *pagemem.Vector, dS []atomic.Int64, p int, ver int64) bool {
	dv := engine.Vec{V: d, S: dS}
	if !dv.ConnCurrent(s.conn[p], ver, -1) {
		return false
	}
	lo, hi := s.layout.Range(p)
	s.a.MulMatRange(d.Data, s.q.Data, s.width, lo, hi)
	s.q.MarkRecovered(p)
	s.qS[p].Store(ver)
	s.stats.RecomputedQ++
	return true
}

// recoverPhase1 is the batched r1: repair inputs (G, dPrev), then the
// current direction, then Q, then back-fill missing <d,q> partial rows.
// Mirrors CG.recoverPhase1 minus the preconditioner and coupled paths.
func (s *BatchCG) recoverPhase1(ver int64, cur, prev int, allowLate bool) {
	dCur, dCurS := s.d[cur], s.dS[cur]
	dPrev, dPrevS := s.d[prev], s.dS[prev]
	needPrev := s.iterNeedPrev
	if !s.space.AnyFault() {
		s.fillPhase1Partials(ver, dCur, dCurS)
		return
	}
	for pass := 0; pass < 4; pass++ {
		progress := false
		for p := 0; p < s.np; p++ {
			// Inputs at version ver-1: not read by the <d,q> reductions,
			// safe for AFEIR.
			if s.g.Failed(p) && s.gS[p].Load() == ver-1 {
				if s.bForwardResidual(p, ver-1) {
					progress = true
				}
			}
			if needPrev && !current(dPrev, dPrevS, p, ver-1) && dPrevS[p].Load() <= ver-1 {
				if s.bInverseDirection(dPrev, dPrevS, p, ver-1) {
					progress = true
				}
			}
			// Current direction at version ver: forward re-run of the
			// per-column D = G + beta_j D' update, else inverse through Q.
			if !current(dCur, dCurS, p, ver) {
				if allowLate || !lateFault(dCur, dCurS, p, ver) {
					if current(s.g, s.gS, p, ver-1) && (!needPrev || current(dPrev, dPrevS, p, ver-1)) {
						lo, hi := s.layout.Range(p)
						sparse.BatchXpbyOutRange(s.g.Data, s.iterBeta, dPrev.Data, dCur.Data, s.width, lo, hi)
						dCur.MarkRecovered(p)
						dCurS[p].Store(ver)
						s.stats.RecoveredForward++
						progress = true
					} else if s.bInverseDirection(dCur, dCurS, p, ver) {
						progress = true
					}
				}
			}
			// Q rows at version ver.
			if !current(s.q, s.qS, p, ver) {
				if allowLate || !lateFault(s.q, s.qS, p, ver) {
					if s.bForwardSpMV(dCur, dCurS, p, ver) {
						progress = true
					}
				}
			}
		}
		if !progress {
			break // no coupled fallback for batches (see file comment)
		}
	}
	s.fillPhase1Partials(ver, dCur, dCurS)
}

func (s *BatchCG) fillPhase1Partials(ver int64, dCur *pagemem.Vector, dCurS []atomic.Int64) {
	for p := 0; p < s.np; p++ {
		if s.dqPart.Missing(p) && current(dCur, dCurS, p, ver) && current(s.q, s.qS, p, ver) {
			lo, hi := s.layout.Range(p)
			var row [sparse.MaxBatchWidth]float64
			sparse.BatchDotRange(dCur.Data, s.q.Data, s.width, lo, hi, row[:s.width])
			s.dqPart.StoreRow(p, row[:s.width])
		}
	}
}

// recoverPhase2 is the batched r2/r3: repair X and G, late direction/Q
// damage, and back-fill missing eps partial rows. Mirrors
// CG.recoverPhase2 minus the preconditioner and coupled paths.
func (s *BatchCG) recoverPhase2(ver int64, cur int, allowLate bool) {
	dCur, dCurS := s.d[cur], s.dS[cur]
	if !s.space.AnyFault() {
		s.fillPhase2Partials(ver)
		return
	}
	for pass := 0; pass < 4; pass++ {
		progress := false
		for p := 0; p < s.np; p++ {
			lo, hi := s.layout.Range(p)
			// X: forward when the update was merely skipped, inverse when
			// the page was lost. Not read by the eps reductions.
			if !s.x.Failed(p) && s.xS[p].Load() == ver-1 {
				if current(dCur, dCurS, p, ver) {
					sparse.BatchAxpyRange(s.alpha, dCur.Data, s.x.Data, s.width, lo, hi)
					s.x.InvalidateChecksum(p)
					s.xS[p].Store(ver)
					s.stats.RecoveredForward++
					progress = true
				}
			} else if s.x.Failed(p) {
				if s.bInverseIterate(p, ver) {
					progress = true
				}
			}
			// G: forward re-run when skipped, G = B - A X when lost. Read
			// by the eps reductions: AFEIR leaves late poisons alone.
			if s.g.Failed(p) {
				if allowLate || s.gS[p].Load() != ver {
					if s.bForwardResidual(p, ver) {
						progress = true
					}
				}
			} else if s.gS[p].Load() == ver-1 {
				if current(s.q, s.qS, p, ver) {
					sparse.BatchAxpyRange(s.negAlpha, s.q.Data, s.g.Data, s.width, lo, hi)
					s.g.InvalidateChecksum(p)
					s.gS[p].Store(ver)
					s.stats.RecoveredForward++
					progress = true
				}
			}
			// Late damage to the phase-1 outputs, needed next iteration.
			if !current(dCur, dCurS, p, ver) {
				if s.bInverseDirection(dCur, dCurS, p, ver) {
					progress = true
				}
			}
			if !current(s.q, s.qS, p, ver) {
				if s.bForwardSpMV(dCur, dCurS, p, ver) {
					progress = true
				}
			}
		}
		if !progress {
			break // no coupled fallback for batches (see file comment)
		}
	}
	s.fillPhase2Partials(ver)
}

func (s *BatchCG) fillPhase2Partials(ver int64) {
	for p := 0; p < s.np; p++ {
		if s.ggPart.Missing(p) && current(s.g, s.gS, p, ver) {
			lo, hi := s.layout.Range(p)
			var row [sparse.MaxBatchWidth]float64
			sparse.BatchDotRange(s.g.Data, s.g.Data, s.width, lo, hi, row[:s.width])
			s.ggPart.StoreRow(p, row[:s.width])
		}
	}
}

// reconcile runs at the end of each FEIR/AFEIR iteration with all
// workers quiescent: retry every outstanding repair with full (late)
// rights, then blank-remap whatever is left (FallbackIgnore is the only
// batch fallback; Lossy is rejected at construction). See CG.reconcile.
func (s *BatchCG) reconcile(ver int64) {
	cur := 0
	if s.doubleBuffer {
		cur = int(ver) % 2
	}
	s.recoverPhase2(ver, cur, true)

	type victim struct {
		v  *pagemem.Vector
		st []atomic.Int64
		p  int
	}
	var leftovers []victim
	collect := func(v *pagemem.Vector, st []atomic.Int64, want int64) {
		for p := 0; p < s.np; p++ {
			if !current(v, st, p, want) {
				leftovers = append(leftovers, victim{v, st, p})
			}
		}
	}
	collect(s.x, s.xS, ver)
	collect(s.g, s.gS, ver)
	collect(s.d[cur], s.dS[cur], ver)
	collect(s.q, s.qS, ver)
	if len(leftovers) == 0 {
		return
	}
	for _, lv := range leftovers {
		lv.v.Remap(lv.p)
		lv.v.MarkRecovered(lv.p)
		lv.st[lv.p].Store(ver)
		s.stats.Unrecovered++
	}
}
