package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/pagemem"
)

func abftConfig(method Method, precond bool) Config {
	cfg := testConfig(method)
	cfg.ABFT = true
	cfg.UsePrecond = precond
	return cfg
}

// flipHook builds an OnIteration hook firing scripted silent flips.
// Enqueued flips (immediate=false) are applied by the solver's own next
// boundary (ScramblePending), corrupting whatever the page holds THEN;
// immediate flips are applied right at the loop top — a quiescent point
// with no task in flight — corrupting the previous iteration's content
// before its consumers read it. The two timings together cover both ends
// of each page's SDC window.
type flip struct {
	it        int
	vec       string
	page      int
	elem      int
	bit       uint
	immediate bool
}

func flipHook(t *testing.T, space *pagemem.Space, flips []flip, prev func(int, float64)) func(int, float64) {
	return func(it int, rel float64) {
		for _, f := range flips {
			if f.it == it {
				v := space.VectorByName(f.vec)
				if v == nil {
					t.Errorf("no vector %q", f.vec)
					continue
				}
				v.FlipBit(f.page, f.elem, f.bit)
				if f.immediate {
					space.ApplySilentPending()
				}
			}
		}
		if prev != nil {
			prev(it, rel)
		}
	}
}

func runWithFlips(t *testing.T, cfg Config, flips []flip) (Result, *CG) {
	t.Helper()
	a, b := testSystem()
	cg, err := NewCG(a, b, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg2 := cfg
	cfg2.OnIteration = flipHook(t, cg.Space(), flips, cfg.OnIteration)
	cg.cfg = cfg2 // NewCG copied cfg by value
	res, err := cg.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res, cg
}

// On clean data the checksum-carrying kernels are the SAME arithmetic as
// the plain ones: an ABFT run must converge in the identical number of
// iterations with the bitwise-identical solution.
func TestABFTCleanRunBitwiseEqual(t *testing.T) {
	for _, m := range []Method{MethodFEIR, MethodAFEIR} {
		for _, pre := range []bool{false, true} {
			a, b := testSystem()
			plain, err := NewCG(a, b, func() Config { c := testConfig(m); c.UsePrecond = pre; return c }())
			if err != nil {
				t.Fatal(err)
			}
			resP, err := plain.Run()
			if err != nil {
				t.Fatal(err)
			}
			abft, err := NewCG(a, b, abftConfig(m, pre))
			if err != nil {
				t.Fatal(err)
			}
			resA, err := abft.Run()
			if err != nil {
				t.Fatal(err)
			}
			if !resA.Converged || resA.Iterations != resP.Iterations {
				t.Fatalf("%v precond=%v: ABFT %d iters (conv=%v) vs plain %d", m, pre, resA.Iterations, resA.Converged, resP.Iterations)
			}
			for i := range plain.Solution() {
				if math.Float64bits(plain.Solution()[i]) != math.Float64bits(abft.Solution()[i]) {
					t.Fatalf("%v precond=%v: solution differs at %d: % x vs % x", m, pre, i, plain.Solution()[i], abft.Solution()[i])
				}
			}
			if resA.Stats.SDCDetected != 0 {
				t.Fatalf("%v precond=%v: false SDC detections: %d", m, pre, resA.Stats.SDCDetected)
			}
		}
	}
}

// A single silent flip in EVERY protected vector is detected, converted to
// a Poison, recovered exactly, and the run converges at the fault-free
// iteration count. Each vector's flip is timed inside ITS live window:
// x/g/z are corrupted at the loop top (previous iteration's content, read
// by this iteration), the direction buffers at the iteration where they
// hold the consumed dPrev (d0 after odd writes, d1 after even), and q just
// after its phase-1 production, before the phase-2 read.
func TestABFTSingleFlipEachVectorDetectedAndRecovered(t *testing.T) {
	a, b := testSystem()
	base := idealIterations(t, a, b)
	idealPre, err := NewCG(a, b, func() Config { c := testConfig(MethodIdeal); c.UsePrecond = true; return c }())
	if err != nil {
		t.Fatal(err)
	}
	resPre, err := idealPre.Run()
	if err != nil {
		t.Fatal(err)
	}
	basePre := resPre.Iterations
	cases := []flip{
		{it: 6, vec: "x", page: 7, elem: 11, bit: 51, immediate: true},
		{it: 6, vec: "g", page: 7, elem: 11, bit: 51, immediate: true},
		{it: 6, vec: "q", page: 7, elem: 11, bit: 51},
		{it: 7, vec: "d0", page: 7, elem: 11, bit: 51, immediate: true},
		{it: 6, vec: "d1", page: 7, elem: 11, bit: 51, immediate: true},
		{it: 6, vec: "z", page: 7, elem: 11, bit: 51, immediate: true},
	}
	for _, m := range []Method{MethodFEIR, MethodAFEIR} {
		for _, f := range cases {
			vec := f.vec
			cfg := abftConfig(m, vec == "z")
			res, _ := runWithFlips(t, cfg, []flip{f})
			if res.Stats.SDCInjected != 1 {
				t.Fatalf("%v/%s: SDCInjected = %d, want 1", m, vec, res.Stats.SDCInjected)
			}
			if res.Stats.SDCDetected != 1 {
				t.Fatalf("%v/%s: flip not detected (stats %+v)", m, vec, res.Stats)
			}
			if !res.Converged || res.RelResidual > 1e-8 {
				t.Fatalf("%v/%s: converged=%v rel=%v", m, vec, res.Converged, res.RelResidual)
			}
			ref := base
			if vec == "z" {
				ref = basePre
			}
			if res.Stats.Unrecovered == 0 && res.Stats.Restarts == 0 {
				if d := res.Iterations - ref; d < -2 || d > 6 {
					t.Fatalf("%v/%s: %d iterations vs ideal %d", m, vec, res.Iterations, ref)
				}
			}
		}
	}
}

// Low-order-bit flips (tiny numerical perturbations, the hardest SDCs to
// see) are detected just as surely as sign flips.
func TestABFTDetectsLowOrderBitFlip(t *testing.T) {
	res, _ := runWithFlips(t, abftConfig(MethodFEIR, false), []flip{{it: 4, vec: "g", page: 3, elem: 0, bit: 0}})
	if res.Stats.SDCDetected != 1 {
		t.Fatalf("mantissa-LSB flip undetected: %+v", res.Stats)
	}
	if !res.Converged || res.RelResidual > 1e-8 {
		t.Fatalf("converged=%v rel=%v", res.Converged, res.RelResidual)
	}
}

// Storms of 1–5 silent flips across random vectors/pages: every flip that
// lands on consumed data is detected and the run still converges exactly.
func TestABFTFlipStorms(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	vecs := []string{"x", "g", "q", "d0", "d1"}
	for _, m := range []Method{MethodFEIR, MethodAFEIR} {
		for nflips := 1; nflips <= 5; nflips++ {
			var flips []flip
			for i := 0; i < nflips; i++ {
				flips = append(flips, flip{
					it:   3 + rng.Intn(20),
					vec:  vecs[rng.Intn(len(vecs))],
					page: rng.Intn(25),
					elem: rng.Intn(64),
					bit:  uint(rng.Intn(64)),
				})
			}
			res, _ := runWithFlips(t, abftConfig(m, false), flips)
			if res.Stats.SDCInjected != nflips {
				t.Fatalf("%v storm %d: injected %d", m, nflips, res.Stats.SDCInjected)
			}
			if !res.Converged || res.RelResidual > 1e-8 {
				t.Fatalf("%v storm %d: converged=%v rel=%v stats=%+v", m, nflips, res.Converged, res.RelResidual, res.Stats)
			}
		}
	}
}

// Mixed storm: DUEs and silent flips together, under both recovery
// schedulings — the detections must feed the SAME recovery machinery.
func TestABFTMixedDUEAndFlipStorm(t *testing.T) {
	for _, m := range []Method{MethodFEIR, MethodAFEIR} {
		a, b := testSystem()
		cfg := abftConfig(m, false)
		cg, err := NewCG(a, b, cfg)
		if err != nil {
			t.Fatal(err)
		}
		flips := []flip{{it: 5, vec: "g", page: 2, elem: 9, bit: 33}, {it: 12, vec: "x", page: 14, elem: 40, bit: 7}}
		inj := []injection{{it: 8, vec: "d0", page: 4}, {it: 8, vec: "q", page: 19}}
		cfg2 := cfg
		cfg2.OnIteration = flipHook(t, cg.Space(), flips, poisonAt(t, cg.Space(), inj, nil))
		cg.cfg = cfg2
		res, err := cg.Run()
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged || res.RelResidual > 1e-8 {
			t.Fatalf("%v: converged=%v rel=%v stats=%+v", m, res.Converged, res.RelResidual, res.Stats)
		}
		if res.Stats.SDCDetected != 2 {
			t.Fatalf("%v: SDCDetected = %d, want 2 (stats %+v)", m, res.Stats.SDCDetected, res.Stats)
		}
	}
}
