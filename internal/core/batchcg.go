package core

import (
	"fmt"
	"math"
	"time"

	"repro/internal/engine"
	"repro/internal/pagemem"
	"repro/internal/sparse"
	"repro/internal/taskrt"
)

// BatchCG runs b independent CG recurrences over one matrix in lockstep,
// sharing a single SpMM pass per iteration: the batched analogue of CG
// for the multi-RHS serving path. The vectors live interleaved
// (column-major-by-row) in a multivector page space whose pages hold all
// b columns of a row range, so the version stamps, DUE poison
// granularity and FEIR/AFEIR recovery relations of the scalar solver
// extend column-wise with no new fault-semantics cases. Scalars (α, β,
// ε) are per-column; every kernel performs, per column, the same
// floating-point operations in the same order as the scalar CG, so each
// column's trajectory — iterates, residuals, iteration count — is
// bitwise the unbatched run's.
//
// A column that converges (or is cancelled) RETIRES: its coefficients
// freeze at zero so the kernels keep sweeping all b slots branch-light
// while the column's x and g stop moving. The batch finishes when every
// bound column has retired.
//
// Supported methods: Ideal, FEIR, AFEIR. Preconditioning, ABFT,
// checkpointing, adaptive policy and the Lossy fallback are scalar-path
// features and are rejected at construction — the serving coalescer only
// batches requests that fit this envelope.
type BatchCG struct {
	cfg    Config
	a      *sparse.CSR
	width  int       // kernel width (slot capacity)
	bound  int       // columns bound to a live RHS (<= width)
	b      []float64 // interleaved RHS, n*width
	bnorm  []float64
	layout sparse.BlockLayout
	np     int

	space   *pagemem.Space
	x, g, q *pagemem.Vector
	d       [2]*pagemem.Vector

	blocks *sparse.BlockSolverCache
	conn   [][]int

	xS, gS, qS engine.Stamps
	dS         [2]engine.Stamps

	dqPart, ggPart *engine.PartialBlock

	rt  *taskrt.Runtime
	eng *engine.Engine

	stats Stats

	// Per-column recurrence state (length width; retired slots stay 0).
	alpha, negAlpha, beta, epsGG []float64
	dq, gg                       []float64 // coordinator reduction scratch

	retired      []bool
	colRestart   []bool // force a beta=0 step for one column
	colIters     []int
	colConverged []bool
	colCancelled []bool
	cancel       []func() bool // per-column cancellation polls

	doubleBuffer bool
	resilient    bool

	restartPending bool

	scratch    []float64 // pd*width compact SpMM recovery scratch
	colScratch []float64 // pd per-column block-solve scratch
	resid      []float64 // n true-residual scratch
	xcol       []float64 // n column gather scratch

	prep struct {
		d, q, x, g *engine.Prepared
		r1o, r23o  *engine.Prepared
		r1c, r23c  *engine.Prepared
		r1After    []*taskrt.Handle
		r23After   []*taskrt.Handle
	}
	iterVer           int64
	iterBeta          []float64 // per-column beta snapshot (restarts applied)
	iterNeedPrev      bool      // any iterBeta[j] != 0
	iterCur, iterPrev int
}

// BatchColumnResult is one column's outcome of a batched solve.
type BatchColumnResult struct {
	Converged   bool
	Cancelled   bool
	Iterations  int
	RelResidual float64
}

// BatchResult aggregates a batched solve: per-column outcomes plus the
// shared iteration count and resilience counters.
type BatchResult struct {
	Columns    []BatchColumnResult
	Iterations int // shared iterations run (max over columns)
	Elapsed    time.Duration
	Stats      Stats
}

// NewBatchCG builds a batched CG of kernel width `width` for the SPD
// system A X = B, binding the columns of rhs (len(rhs) <= width; unused
// slots ride along retired). Width is capped at sparse.MaxBatchWidth.
func NewBatchCG(a *sparse.CSR, rhs [][]float64, width int, cfg Config) (*BatchCG, error) {
	if a.N != a.M {
		return nil, fmt.Errorf("core: non-square matrix %dx%d", a.N, a.M)
	}
	if width < 1 || width > sparse.MaxBatchWidth {
		return nil, fmt.Errorf("core: batch width %d out of range [1, %d]", width, sparse.MaxBatchWidth)
	}
	switch cfg.Method {
	case MethodIdeal, MethodFEIR, MethodAFEIR:
	default:
		return nil, fmt.Errorf("core: batch CG supports methods ideal/feir/afeir, not %v", cfg.Method)
	}
	if cfg.UsePrecond {
		return nil, fmt.Errorf("core: batch CG has no preconditioned variant")
	}
	if cfg.ABFT {
		return nil, fmt.Errorf("core: batch CG has no ABFT checksum coverage")
	}
	if cfg.Policy != nil {
		return nil, fmt.Errorf("core: batch CG has no adaptive-policy support")
	}
	if cfg.Fallback == FallbackLossy {
		return nil, fmt.Errorf("core: batch CG supports the Ignore fallback only")
	}
	s := &BatchCG{
		cfg:    cfg,
		a:      a,
		width:  width,
		layout: sparse.BlockLayout{N: a.N, BlockSize: cfg.pageDoubles()},
	}
	s.np = s.layout.NumBlocks()
	// One page = all `width` columns of pageDoubles rows: same page count
	// and connectivity as the scalar solver, b columns per fault.
	s.space = pagemem.NewSpace(a.N*width, cfg.pageDoubles()*width)
	s.x = s.space.AddVector("x")
	s.g = s.space.AddVector("g")
	s.q = s.space.AddVector("q")
	s.d[0] = s.space.AddVector("d0")
	s.resilient = cfg.Method == MethodFEIR || cfg.Method == MethodAFEIR
	s.doubleBuffer = s.resilient
	if s.doubleBuffer {
		s.d[1] = s.space.AddVector("d1")
	} else {
		s.d[1] = s.d[0]
	}
	if cfg.Blocks != nil {
		if cfg.Blocks.A != a || cfg.Blocks.Layout != s.layout || !cfg.Blocks.SPD {
			return nil, fmt.Errorf("core: shared block cache mismatch (want matrix %p layout %+v spd=true, have %p %+v spd=%v)",
				a, s.layout, cfg.Blocks.A, cfg.Blocks.Layout, cfg.Blocks.SPD)
		}
		s.blocks = cfg.Blocks
	} else {
		s.blocks = sparse.NewBlockSolverCache(a, s.layout, true)
	}

	s.xS = engine.NewStamps(s.np)
	s.gS = engine.NewStamps(s.np)
	s.qS = engine.NewStamps(s.np)
	s.dS[0] = engine.NewStamps(s.np)
	if s.doubleBuffer {
		s.dS[1] = engine.NewStamps(s.np)
	} else {
		s.dS[1] = s.dS[0]
	}
	s.dqPart = engine.NewPartialBlock(s.np, width)
	s.ggPart = engine.NewPartialBlock(s.np, width)

	s.b = make([]float64, a.N*width)
	s.bnorm = make([]float64, width)
	s.alpha = make([]float64, width)
	s.negAlpha = make([]float64, width)
	s.beta = make([]float64, width)
	s.epsGG = make([]float64, width)
	s.dq = make([]float64, width)
	s.gg = make([]float64, width)
	s.iterBeta = make([]float64, width)
	s.retired = make([]bool, width)
	s.colRestart = make([]bool, width)
	s.colIters = make([]int, width)
	s.colConverged = make([]bool, width)
	s.colCancelled = make([]bool, width)
	s.cancel = make([]func() bool, width)

	s.scratch = make([]float64, cfg.pageDoubles()*width)
	s.colScratch = make([]float64, cfg.pageDoubles())
	s.resid = make([]float64, a.N)
	s.xcol = make([]float64, a.N)

	if err := s.Rebind(rhs); err != nil {
		return nil, err
	}
	return s, nil
}

// Space returns the fault domain: error injectors target its vectors.
func (s *BatchCG) Space() *pagemem.Space { return s.space }

// DynamicVectors lists the vectors the paper's injections cover (§5.3).
func (s *BatchCG) DynamicVectors() []*pagemem.Vector {
	vs := []*pagemem.Vector{s.x, s.g, s.q, s.d[0]}
	if s.doubleBuffer {
		vs = append(vs, s.d[1])
	}
	return vs
}

// Width returns the kernel width (slot capacity).
func (s *BatchCG) Width() int { return s.width }

// Bound returns the number of columns bound by the last Rebind.
func (s *BatchCG) Bound() int { return s.bound }

// Stats returns a snapshot of the resilience counters. Only valid after
// Run returned.
func (s *BatchCG) Stats() Stats { return s.stats }

// SetCancelled installs (or clears) the whole-batch cancellation poll.
func (s *BatchCG) SetCancelled(f func() bool) { s.cfg.Cancelled = f }

// SetColumnCancelled installs (or clears) column j's cancellation poll:
// a cancelled column retires (its slot freezes) while the rest of the
// batch keeps solving.
func (s *BatchCG) SetColumnCancelled(j int, f func() bool) { s.cancel[j] = f }

// SetOnIteration installs (or clears) the residual trace hook; it
// receives the max relative recurrence residual over the active columns.
func (s *BatchCG) SetOnIteration(f func(it int, relRes float64)) { s.cfg.OnIteration = f }

// Solution returns column j of the iterate, gathered into the shared
// column scratch. Only valid after Run returned; the next call (or Run)
// overwrites it.
func (s *BatchCG) Solution(j int) []float64 {
	sparse.GatherColumn(s.x.Data, s.width, j, s.xcol)
	return s.xcol
}

// SolutionInto gathers column j of the iterate into dst (length n).
func (s *BatchCG) SolutionInto(j int, dst []float64) {
	sparse.GatherColumn(s.x.Data, s.width, j, dst)
}

// Rebind replaces the bound right-hand sides in place (len(rhs) may
// differ from the previous binding, up to the kernel width): the pooled
// warm-instance path across batch widths. Unused slots are zeroed and
// retire immediately at the next Run.
func (s *BatchCG) Rebind(rhs [][]float64) error {
	if len(rhs) < 1 || len(rhs) > s.width {
		return fmt.Errorf("core: %d rhs columns for batch width %d", len(rhs), s.width)
	}
	for j, col := range rhs {
		if len(col) != s.a.N {
			return fmt.Errorf("core: rhs column %d length %d for n=%d", j, len(col), s.a.N)
		}
	}
	for i := range s.b {
		s.b[i] = 0
	}
	for j := range s.bnorm {
		s.bnorm[j] = 1
	}
	for j, col := range rhs {
		sparse.ScatterColumn(col, s.b, s.width, j)
		s.bnorm[j] = sparse.Norm2(col)
		if s.bnorm[j] == 0 {
			s.bnorm[j] = 1
		}
	}
	s.bound = len(rhs)
	for j := range s.cancel {
		s.cancel[j] = nil
	}
	return nil
}

// resetState returns the instance to its pre-Run state so a pooled
// batch solver can serve a fresh request (see CG.resetState).
func (s *BatchCG) resetState() {
	blankAllFailed(s.space)
	zero := func(v *pagemem.Vector) {
		for i := range v.Data {
			v.Data[i] = 0
		}
	}
	zero(s.x)
	zero(s.g)
	zero(s.q)
	zero(s.d[0])
	if s.doubleBuffer {
		zero(s.d[1])
	}
	s.xS.Fill(-1)
	s.gS.Fill(-1)
	s.qS.Fill(-1)
	s.dS[0].Fill(-1)
	if s.doubleBuffer {
		s.dS[1].Fill(-1)
	}
	s.stats = Stats{}
	for j := 0; j < s.width; j++ {
		s.alpha[j], s.negAlpha[j], s.beta[j], s.epsGG[j] = 0, 0, 0, 0
		s.iterBeta[j] = 0
		s.retired[j] = j >= s.bound // padding slots never run
		s.colRestart[j] = false
		s.colIters[j] = 0
		s.colConverged[j] = false
		s.colCancelled[j] = false
	}
}

// buildEngine constructs the engine and prepared task graph on the
// current runtime (see CG.buildEngine).
func (s *BatchCG) buildEngine() {
	s.eng = engine.New(s.a, s.layout, s.rt, s.resilient, 0)
	s.eng.RecoveryPriority = s.cfg.overlapPriority()
	s.conn = s.eng.Conn
	s.buildPrepared()
}

// ensureEngine lazily builds the engine against the external runtime;
// the prepared graph survives across Runs (the zero-rebuild property the
// serving layer pins).
func (s *BatchCG) ensureEngine() {
	if s.eng != nil {
		return
	}
	s.rt = s.cfg.RT
	s.buildEngine()
}

// activeRel returns the max relative recurrence residual over the
// unretired bound columns (0 when all retired).
func (s *BatchCG) activeRel() float64 {
	var rel float64
	for j := 0; j < s.bound; j++ {
		if s.retired[j] {
			continue
		}
		if r := math.Sqrt(math.Max(s.epsGG[j], 0)) / s.bnorm[j]; r > rel {
			rel = r
		}
	}
	return rel
}

// allRetired reports whether every bound column has retired.
func (s *BatchCG) allRetired() bool {
	for j := 0; j < s.bound; j++ {
		if !s.retired[j] {
			return false
		}
	}
	return true
}

// trueResidualCol computes ||b_j - A x_j|| / ||b_j|| sequentially in the
// solver-owned scratch — bitwise the scalar solver's check on the same
// column data.
func (s *BatchCG) trueResidualCol(j int) float64 {
	sparse.GatherColumn(s.x.Data, s.width, j, s.xcol)
	s.a.MulVec(s.xcol, s.resid)
	w := s.width
	for i := range s.resid {
		s.resid[i] = s.b[i*w+j] - s.resid[i]
	}
	return sparse.Norm2(s.resid) / s.bnorm[j]
}

// refreshResidualCol recomputes column j's residual g_j = b_j - A x_j in
// place and forces a beta=0 step for that column — the per-column
// analogue of CG.refreshResidual. Other columns' data in the shared
// pages is untouched, and page stamps stay valid: the rewritten column
// is exactly as consistent with x at the current version as before.
func (s *BatchCG) refreshResidualCol(j int) {
	sparse.GatherColumn(s.x.Data, s.width, j, s.xcol)
	s.a.MulVec(s.xcol, s.resid)
	w := s.width
	var eps float64
	for i := range s.resid {
		gij := s.b[i*w+j] - s.resid[i]
		s.g.Data[i*w+j] = gij
		eps += gij * gij
	}
	s.epsGG[j] = eps
	s.colRestart[j] = true
	s.stats.Restarts++
}

// retireCol freezes column j's slot at iteration t.
func (s *BatchCG) retireCol(j, t int, converged, cancelled bool) {
	s.retired[j] = true
	s.colIters[j] = t
	s.colConverged[j] = converged
	s.colCancelled[j] = cancelled
	s.alpha[j], s.negAlpha[j], s.beta[j] = 0, 0, 0
}

// snapshot builds the per-column results from the current state.
func (s *BatchCG) snapshot(t int, start time.Time) BatchResult {
	cols := make([]BatchColumnResult, s.bound)
	for j := 0; j < s.bound; j++ {
		it := s.colIters[j]
		if !s.retired[j] {
			it = t
		}
		cols[j] = BatchColumnResult{
			Converged:   s.colConverged[j],
			Cancelled:   s.colCancelled[j],
			Iterations:  it,
			RelResidual: s.trueResidualCol(j),
		}
	}
	return BatchResult{
		Columns:    cols,
		Iterations: t,
		Elapsed:    time.Since(start),
		Stats:      s.stats,
	}
}

// Run executes the batched solve. Like CG.Run it may be called
// repeatedly (Rebind in between): with Config.RT set the engine and
// prepared graphs are built once and replayed by every later Run.
func (s *BatchCG) Run() (BatchResult, error) {
	start := time.Now()
	if s.cfg.RT != nil {
		s.ensureEngine()
	} else {
		s.rt = taskrt.New(s.cfg.workers())
		defer func() { s.rt.Close(); s.rt, s.eng = nil, nil }()
		s.buildEngine()
	}
	s.resetState()

	tol := s.cfg.tol()
	maxIter := s.cfg.maxIter(s.a.N)

	// Initial state: X = 0, G = B, D built in iteration 0 via beta = 0.
	copy(s.g.Data, s.b)
	for j := range s.epsGG {
		s.epsGG[j] = 0
	}
	sparse.BatchDotRange(s.g.Data, s.g.Data, s.width, 0, s.a.N, s.epsGG)
	for j := range s.beta {
		s.beta[j] = 0
	}
	s.restartPending = true

	var t int
	for t = 0; t < maxIter; t++ {
		if s.cfg.Cancelled != nil && s.cfg.Cancelled() {
			return s.snapshot(t, start), ErrCancelled
		}
		for j := 0; j < s.bound; j++ {
			if !s.retired[j] && s.cancel[j] != nil && s.cancel[j]() {
				s.retireCol(j, t, false, true)
			}
		}
		if s.cfg.OnIteration != nil {
			s.cfg.OnIteration(t, s.activeRel())
		}
		for j := 0; j < s.bound; j++ {
			if s.retired[j] {
				continue
			}
			rel := math.Sqrt(math.Max(s.epsGG[j], 0)) / s.bnorm[j]
			if rel >= tol {
				continue
			}
			if s.trueResidualCol(j) < tol*10 {
				s.retireCol(j, t, true, false)
			} else {
				// Recurrence converged but the true residual disagrees
				// (possible after ignored unrecoverable errors): refresh
				// this column's residual and keep iterating.
				s.refreshResidualCol(j)
			}
		}
		if s.allRetired() {
			break
		}

		// ---------------- Phase 1: D, Q, <d,q> (+ r1) ----------------
		ver := int64(t)
		s.runPhase1(ver)
		s.boundary()
		missing := s.dqPart.SumAvailable(zeroed(s.dq))
		s.stats.ContributionsLost += missing
		for j := 0; j < s.width; j++ {
			if s.retired[j] {
				s.alpha[j], s.negAlpha[j] = 0, 0
				continue
			}
			if s.dq[j] != 0 && !math.IsNaN(s.dq[j]) && !math.IsNaN(s.epsGG[j]) {
				s.alpha[j] = s.epsGG[j] / s.dq[j]
			} else {
				s.alpha[j] = 0 // degenerate step: no progress this iteration
			}
			s.negAlpha[j] = -s.alpha[j]
		}

		// ---------------- Phase 2: X, G, eps (+ r2/r3) ----------------
		s.runPhase2(ver)
		s.boundary()
		missingGG := s.ggPart.SumAvailable(zeroed(s.gg))
		s.stats.ContributionsLost += missingGG
		for j := 0; j < s.width; j++ {
			if s.retired[j] {
				s.beta[j] = 0
				continue
			}
			if s.epsGG[j] != 0 && !math.IsNaN(s.gg[j]) {
				s.beta[j] = s.gg[j] / s.epsGG[j]
			} else {
				s.beta[j] = 0
			}
			s.epsGG[j] = s.gg[j]
			s.colRestart[j] = false
		}
		s.restartPending = false

		if s.resilient {
			s.reconcile(ver)
		}
	}

	return s.snapshot(t, start), nil
}

// zeroed zeroes v in place and returns it (reduction scratch reuse).
func zeroed(v []float64) []float64 {
	for i := range v {
		v[i] = 0
	}
	return v
}

// buildPrepared constructs the prepared steady-state task graph once per
// solve; every iteration replays the same handles, so the hot loop
// allocates nothing (see CG.buildPrepared).
func (s *BatchCG) buildPrepared() {
	e := s.eng
	w := s.width
	prio := s.cfg.TaskPriority
	// D = G + beta_j D' per column. Full overwrite: skipped pages keep
	// their old version, produced pages revalidate.
	//due:hotpath
	s.prep.d = e.Prepare("bd", prio, func(_, pLo, pHi int) {
		ver := s.iterVer
		dCur := vec(s.d[s.iterCur], s.dS[s.iterCur])
		dPrev := vec(s.d[s.iterPrev], s.dS[s.iterPrev])
		src := vec(s.g, s.gS)
		needPrev := s.iterNeedPrev
		for p := pLo; p < pHi; p++ {
			if e.Resilient && (!src.Current(p, ver-1) || (needPrev && !dPrev.Current(p, ver-1))) {
				continue
			}
			lo, hi := s.layout.Range(p)
			sparse.BatchXpbyOutRange(src.V.Data, s.iterBeta, dPrev.V.Data, dCur.V.Data, w, lo, hi)
			if e.Resilient {
				dCur.V.MarkRecovered(p)
				dCur.S[p].Store(ver)
			}
		}
	})
	// Fused Q = A D with the per-column <d,q> partial rows.
	//due:hotpath
	s.prep.q = e.Prepare("bq,<d,q>", prio, func(_, pLo, pHi int) {
		ver := s.iterVer
		in := engine.In(vec(s.d[s.iterCur], s.dS[s.iterCur]), ver)
		out := engine.Operand{Vec: vec(s.q, s.qS), Ver: ver}
		for p := pLo; p < pHi; p++ {
			lo, hi := s.layout.Range(p)
			e.SpMMDotPage(p, lo, hi, w, in, out, s.dqPart, nil)
		}
	})
	// X += alpha_j D: read-modify-write, late poisons stay detected.
	//due:hotpath
	s.prep.x = e.Prepare("bx", prio, func(_, pLo, pHi int) {
		ver := s.iterVer
		dCur := vec(s.d[s.iterCur], s.dS[s.iterCur])
		xV := vec(s.x, s.xS)
		for p := pLo; p < pHi; p++ {
			if e.Resilient && (!xV.Current(p, ver-1) || !dCur.Current(p, ver)) {
				continue
			}
			lo, hi := s.layout.Range(p)
			sparse.BatchAxpyRange(s.alpha, dCur.V.Data, s.x.Data, w, lo, hi)
			if e.Resilient {
				xV.S[p].Store(ver)
			}
		}
	})
	// Fused G -= alpha_j Q with the per-column eps partial rows.
	//due:hotpath
	s.prep.g = e.Prepare("bg,eps", prio, func(_, pLo, pHi int) {
		ver := s.iterVer
		qIn := engine.In(vec(s.q, s.qS), ver)
		gOut := engine.Operand{Vec: vec(s.g, s.gS), Ver: ver}
		for p := pLo; p < pHi; p++ {
			lo, hi := s.layout.Range(p)
			e.BatchAxpyDotPage(p, lo, hi, w, s.negAlpha, qIn, gOut, s.ggPart)
		}
	})
	// Recovery tasks: overlapped (AFEIR, Fig 2b) and critical-path (FEIR,
	// Fig 2a) variants of r1 and r2/r3, column-wise over the same
	// relations.
	r1 := func(allowLate bool) func() {
		return func() { s.recoverPhase1(s.iterVer, s.iterCur, s.iterPrev, allowLate) }
	}
	r23 := func(allowLate bool) func() {
		return func() { s.recoverPhase2(s.iterVer, s.iterCur, allowLate) }
	}
	//due:recovery
	s.prep.r1o = e.PrepareSingle("br1", s.cfg.overlapPriority(), r1(false))
	//due:recovery
	s.prep.r23o = e.PrepareSingle("br2r3", s.cfg.overlapPriority(), r23(false))
	//due:allow(priority-clamp) FEIR recovery is critical-path by design (Fig 2a): the coordinator blocks on it, so it runs at the compute tier, not below it
	//due:recovery
	s.prep.r1c = e.PrepareSingle("br1", prio, r1(true))
	//due:allow(priority-clamp) FEIR recovery is critical-path by design (Fig 2a): the coordinator blocks on it, so it runs at the compute tier, not below it
	//due:recovery
	s.prep.r23c = e.PrepareSingle("br2r3", prio, r23(true))

	s.prep.r1After = append(append([]*taskrt.Handle{}, s.prep.d.Handles()...), s.prep.q.Handles()...)
	s.prep.r23After = append(append([]*taskrt.Handle{}, s.prep.x.Handles()...), s.prep.g.Handles()...)
}

// runPhase1 replays the prepared D-update and fused Q/<d,q> tasks plus
// the r1 recovery task, and waits for them (see CG.runPhase1).
func (s *BatchCG) runPhase1(ver int64) {
	t := int(ver)
	cur, prev := 0, 0
	if s.doubleBuffer {
		cur, prev = t%2, (t+1)%2
	}
	needPrev := false
	for j := 0; j < s.width; j++ {
		b := s.beta[j]
		if s.restartPending || s.colRestart[j] || s.retired[j] {
			b = 0
		}
		s.iterBeta[j] = b
		if b != 0 {
			needPrev = true
		}
	}
	s.iterVer, s.iterCur, s.iterPrev, s.iterNeedPrev = ver, cur, prev, needPrev
	s.dqPart.ResetMissing()

	dH := s.prep.d.Submit(nil)
	s.prep.q.Submit(dH)

	skipRecovery := s.cfg.OnDemandRecovery && !s.space.AnyFault()
	overlapped := s.cfg.Method == MethodAFEIR && !skipRecovery
	if overlapped {
		s.prep.r1o.Submit(s.prep.r1After)
	}
	s.prep.d.Wait()
	s.prep.q.Wait()
	if overlapped {
		s.prep.r1o.Wait()
	}
	if s.cfg.Method == MethodFEIR && !(s.cfg.OnDemandRecovery && !s.space.AnyFault()) {
		s.prep.r1c.Submit(nil)
		s.prep.r1c.Wait()
	}
}

// runPhase2 replays the prepared X update and fused G/eps tasks plus the
// r2/r3 recovery, and waits (see CG.runPhase2).
func (s *BatchCG) runPhase2(ver int64) {
	t := int(ver)
	cur := 0
	if s.doubleBuffer {
		cur = t % 2
	}
	s.iterVer, s.iterCur = ver, cur
	s.ggPart.ResetMissing()

	s.prep.x.Submit(nil)
	s.prep.g.Submit(nil)

	skipRecovery := s.cfg.OnDemandRecovery && !s.space.AnyFault()
	overlapped := s.cfg.Method == MethodAFEIR && !skipRecovery
	if overlapped {
		s.prep.r23o.Submit(s.prep.r23After)
	}
	s.prep.x.Wait()
	s.prep.g.Wait()
	if overlapped {
		s.prep.r23o.Wait()
	}
	if s.cfg.Method == MethodFEIR && !(s.cfg.OnDemandRecovery && !s.space.AnyFault()) {
		s.prep.r23c.Submit(nil)
		s.prep.r23c.Wait()
	}
}

// boundary is a task-phase boundary with all workers quiescent: pending
// data losses take effect, the Ideal method blanks them, FEIR/AFEIR hand
// them to the recovery tasks and reconcile. The batch never skips
// iterations (no Lossy/Checkpoint methods).
func (s *BatchCG) boundary() {
	evs := s.space.ScramblePending()
	s.stats.FaultsSeen += len(evs)
	if !s.space.AnyFault() {
		return
	}
	if !s.resilient {
		blankAllFailed(s.space)
	}
}
