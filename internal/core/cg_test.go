package core

import (
	"math"
	"testing"
	"time"

	"repro/internal/matgen"
	"repro/internal/pagemem"
	"repro/internal/solver"
	"repro/internal/sparse"
)

// testConfig returns the standard test configuration: a page size of 64
// doubles so a 1600-element system spans 25 pages.
func testConfig(method Method) Config {
	return Config{
		Method:      method,
		Workers:     4,
		PageDoubles: 64,
		Tol:         1e-10,
		MaxIter:     20000,
	}
}

func testSystem() (*sparse.CSR, []float64) {
	a := matgen.Poisson2D(40, 40) // n = 1600, 25 pages of 64
	b := matgen.RandomVector(a.N, 42)
	return a, b
}

// runWithInjections runs a solver injecting pages listed as (iteration,
// vector name, page) triples at iteration starts.
type injection struct {
	it   int
	vec  string
	page int
}

// poisonAt builds an OnIteration hook firing the scripted poisons at
// their iteration numbers, chaining an optional previous hook. Shared by
// the CG, BiCGStab and GMRES injection runners.
func poisonAt(t *testing.T, space *pagemem.Space, inj []injection, prev func(int, float64)) func(int, float64) {
	return func(it int, rel float64) {
		for _, e := range inj {
			if e.it == it {
				v := space.VectorByName(e.vec)
				if v == nil {
					t.Errorf("no vector %q", e.vec)
					continue
				}
				v.Poison(e.page)
			}
		}
		if prev != nil {
			prev(it, rel)
		}
	}
}

func runWithInjections(t *testing.T, a *sparse.CSR, b []float64, cfg Config, inj []injection) Result {
	t.Helper()
	cg, err := NewCG(a, b, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg2 := cfg
	cfg2.OnIteration = poisonAt(t, cg.Space(), inj, cfg.OnIteration)
	cg.cfg = cfg2 // NewCG copied cfg by value
	res, err := cg.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestIdealMatchesSequentialCG(t *testing.T) {
	a, b := testSystem()
	cg, err := NewCG(a, b, testConfig(MethodIdeal))
	if err != nil {
		t.Fatal(err)
	}
	res, err := cg.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("ideal CG did not converge: %+v", res)
	}
	x := make([]float64, a.N)
	seq, err := solver.CG(a, b, x, solver.Options{Tol: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	if d := res.Iterations - seq.Iterations; d < -2 || d > 2 {
		t.Fatalf("ideal %d vs sequential %d iterations", res.Iterations, seq.Iterations)
	}
	if res.RelResidual > 1e-9 {
		t.Fatalf("true residual %v", res.RelResidual)
	}
}

func TestResilientNoErrorsMatchesIdeal(t *testing.T) {
	a, b := testSystem()
	ideal, err := NewCG(a, b, testConfig(MethodIdeal))
	if err != nil {
		t.Fatal(err)
	}
	resIdeal, err := ideal.Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []Method{MethodFEIR, MethodAFEIR} {
		cg, err := NewCG(a, b, testConfig(m))
		if err != nil {
			t.Fatal(err)
		}
		res, err := cg.Run()
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged {
			t.Fatalf("%v did not converge", m)
		}
		if d := res.Iterations - resIdeal.Iterations; d < -2 || d > 2 {
			t.Fatalf("%v %d vs ideal %d iterations", m, res.Iterations, resIdeal.Iterations)
		}
		if res.Stats.FaultsSeen != 0 || res.Stats.Unrecovered != 0 {
			t.Fatalf("%v phantom faults: %+v", m, res.Stats)
		}
	}
}

// idealIterations caches the fault-free iteration count for comparison.
func idealIterations(t *testing.T, a *sparse.CSR, b []float64) int {
	t.Helper()
	cg, err := NewCG(a, b, testConfig(MethodIdeal))
	if err != nil {
		t.Fatal(err)
	}
	res, err := cg.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res.Iterations
}

func TestFEIRRecoversErrorsInEveryVector(t *testing.T) {
	a, b := testSystem()
	base := idealIterations(t, a, b)
	for _, vec := range []string{"x", "g", "q", "d0", "d1"} {
		res := runWithInjections(t, a, b, testConfig(MethodFEIR), []injection{
			{it: 20, vec: vec, page: 7},
		})
		if !res.Converged {
			t.Fatalf("FEIR with error in %s did not converge", vec)
		}
		// Exact forward recovery must preserve the convergence rate
		// (§2.3: "guarantee the same convergence rate as when the
		// algorithm is not subject to faults").
		if d := res.Iterations - base; d < -2 || d > 2 {
			t.Fatalf("error in %s: %d iterations vs ideal %d", vec, res.Iterations, base)
		}
		if res.Stats.FaultsSeen == 0 {
			t.Fatalf("error in %s never became visible", vec)
		}
		if res.Stats.Unrecovered > 0 {
			t.Fatalf("error in %s left %d unrecovered pages", vec, res.Stats.Unrecovered)
		}
	}
}

func TestAFEIRRecoversErrorsInEveryVector(t *testing.T) {
	a, b := testSystem()
	base := idealIterations(t, a, b)
	for _, vec := range []string{"x", "g", "q", "d0", "d1"} {
		res := runWithInjections(t, a, b, testConfig(MethodAFEIR), []injection{
			{it: 15, vec: vec, page: 3},
			{it: 40, vec: vec, page: 11},
		})
		if !res.Converged {
			t.Fatalf("AFEIR with errors in %s did not converge", vec)
		}
		if d := res.Iterations - base; d < -2 || d > 2 {
			t.Fatalf("errors in %s: %d iterations vs ideal %d", vec, res.Iterations, base)
		}
	}
}

func TestFEIRExactRecoveryCounters(t *testing.T) {
	a, b := testSystem()
	// Error in x forces an inverse recovery; error in g a forward one.
	res := runWithInjections(t, a, b, testConfig(MethodFEIR), []injection{
		{it: 10, vec: "x", page: 5},
		{it: 30, vec: "g", page: 9},
	})
	if !res.Converged {
		t.Fatal("not converged")
	}
	if res.Stats.RecoveredInverse == 0 {
		t.Fatalf("expected inverse recovery for x, stats %+v", res.Stats)
	}
	if res.Stats.RecoveredForward == 0 {
		t.Fatalf("expected forward recovery for g, stats %+v", res.Stats)
	}
}

func TestFEIRMultipleErrorsSameVectorCoupled(t *testing.T) {
	a, b := testSystem()
	base := idealIterations(t, a, b)
	// Two adjacent x pages in the same iteration: individually the
	// inverse relation can still work page by page (the other page is
	// excluded), so also hit THREE pages to exercise the coupled path.
	res := runWithInjections(t, a, b, testConfig(MethodFEIR), []injection{
		{it: 25, vec: "x", page: 6},
		{it: 25, vec: "x", page: 7},
		{it: 25, vec: "x", page: 8},
	})
	if !res.Converged {
		t.Fatal("not converged with multi-page x errors")
	}
	if d := res.Iterations - base; d < -3 || d > 3 {
		t.Fatalf("%d iterations vs ideal %d", res.Iterations, base)
	}
	if res.Stats.RecoveredInverse+res.Stats.RecoveredCoupled < 3 {
		t.Fatalf("expected 3 pages recovered, stats %+v", res.Stats)
	}
}

func TestFEIRRelatedDataErrorsIgnoredStillTerminates(t *testing.T) {
	a, b := testSystem()
	// x and g lost on the same page: §2.4 case 2 — unrecoverable by
	// relations. With FallbackIgnore the run must still terminate with a
	// correct answer (the consistency refresh re-derives g).
	cfg := testConfig(MethodFEIR)
	res := runWithInjections(t, a, b, cfg, []injection{
		{it: 12, vec: "x", page: 4},
		{it: 12, vec: "g", page: 4},
	})
	if !res.Converged {
		t.Fatalf("run did not terminate correctly: %+v", res)
	}
	if res.RelResidual > 1e-8 {
		t.Fatalf("true residual %v", res.RelResidual)
	}
	if res.Stats.Unrecovered == 0 {
		t.Fatalf("expected unrecovered pages, stats %+v", res.Stats)
	}
}

func TestFEIRFallbackLossy(t *testing.T) {
	a, b := testSystem()
	cfg := testConfig(MethodFEIR)
	cfg.Fallback = FallbackLossy
	res := runWithInjections(t, a, b, cfg, []injection{
		{it: 12, vec: "x", page: 4},
		{it: 12, vec: "g", page: 4},
	})
	if !res.Converged {
		t.Fatalf("FallbackLossy run failed: %+v", res)
	}
	if res.Stats.Restarts == 0 {
		t.Fatalf("expected a lossy-fallback restart, stats %+v", res.Stats)
	}
	if res.RelResidual > 1e-8 {
		t.Fatalf("true residual %v", res.RelResidual)
	}
}

func TestPreconditionedFEIRRecovers(t *testing.T) {
	a, b := testSystem()
	cfg := testConfig(MethodFEIR)
	cfg.UsePrecond = true
	cg, err := NewCG(a, b, cfg)
	if err != nil {
		t.Fatal(err)
	}
	resIdeal, err := cg.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !resIdeal.Converged {
		t.Fatal("PCG-FEIR without errors did not converge")
	}
	for _, vec := range []string{"x", "g", "z", "q", "d0"} {
		res := runWithInjections(t, a, b, cfg, []injection{{it: 8, vec: vec, page: 2}})
		if !res.Converged {
			t.Fatalf("PCG-FEIR error in %s did not converge", vec)
		}
		if d := res.Iterations - resIdeal.Iterations; d < -2 || d > 2 {
			t.Fatalf("error in %s: %d vs %d iterations", vec, res.Iterations, resIdeal.Iterations)
		}
	}
}

func TestPreconditionedUsesPartialApplications(t *testing.T) {
	a, b := testSystem()
	cfg := testConfig(MethodAFEIR)
	cfg.UsePrecond = true
	res := runWithInjections(t, a, b, cfg, []injection{{it: 10, vec: "z", page: 6}})
	if !res.Converged {
		t.Fatal("not converged")
	}
	if res.Stats.PrecondPartialApplies == 0 {
		t.Fatalf("expected partial preconditioner applications, stats %+v", res.Stats)
	}
}

func TestTrivialSurvivesButDegrades(t *testing.T) {
	a, b := testSystem()
	base := idealIterations(t, a, b)
	cfg := testConfig(MethodTrivial)
	res := runWithInjections(t, a, b, cfg, []injection{{it: base / 2, vec: "x", page: 5}})
	if res.Iterations <= base {
		t.Fatalf("trivial recovery was free: %d vs ideal %d", res.Iterations, base)
	}
}

func TestLossyRestartRecovers(t *testing.T) {
	a, b := testSystem()
	base := idealIterations(t, a, b)
	cfg := testConfig(MethodLossy)
	res := runWithInjections(t, a, b, cfg, []injection{{it: base / 2, vec: "x", page: 5}})
	if !res.Converged {
		t.Fatalf("lossy restart did not converge: %+v", res)
	}
	if res.Stats.LossyInterpolations == 0 || res.Stats.Restarts == 0 {
		t.Fatalf("stats %+v", res.Stats)
	}
	if res.RelResidual > 1e-8 {
		t.Fatalf("true residual %v", res.RelResidual)
	}
	// Restart harms superlinear convergence: more iterations than ideal.
	if res.Iterations < base {
		t.Fatalf("lossy restart faster than ideal? %d vs %d", res.Iterations, base)
	}
}

func TestLossyRestartErrorInNonIterateVector(t *testing.T) {
	a, b := testSystem()
	cfg := testConfig(MethodLossy)
	res := runWithInjections(t, a, b, cfg, []injection{{it: 30, vec: "q", page: 2}})
	if !res.Converged {
		t.Fatal("not converged")
	}
	if res.Stats.Restarts == 0 {
		t.Fatal("expected a restart")
	}
	if res.Stats.LossyInterpolations != 0 {
		t.Fatal("interpolation should only run for iterate pages")
	}
}

func TestCheckpointRollback(t *testing.T) {
	a, b := testSystem()
	cfg := testConfig(MethodCheckpoint)
	cfg.CheckpointInterval = 50
	cfg.Disk = NewSimDisk(1e9) // fast disk to keep the test quick
	res := runWithInjections(t, a, b, cfg, []injection{{it: 60, vec: "x", page: 5}})
	if !res.Converged {
		t.Fatalf("checkpoint run did not converge: %+v", res)
	}
	if res.Stats.Rollbacks == 0 || res.Stats.CheckpointsWritten == 0 {
		t.Fatalf("stats %+v", res.Stats)
	}
	if res.RelResidual > 1e-8 {
		t.Fatalf("true residual %v", res.RelResidual)
	}
}

func TestCheckpointRollbackBeforeFirstCheckpointRestarts(t *testing.T) {
	a, b := testSystem()
	cfg := testConfig(MethodCheckpoint)
	cfg.CheckpointInterval = 1 << 30 // never write after iteration 0
	cfg.Disk = NewSimDisk(1e9)
	res := runWithInjections(t, a, b, cfg, []injection{{it: 10, vec: "g", page: 1}})
	if !res.Converged {
		t.Fatalf("did not converge: %+v", res)
	}
	if res.Stats.Rollbacks == 0 {
		t.Fatal("expected a rollback")
	}
}

func TestCheckpointAutoIntervalDaly(t *testing.T) {
	ck := newCheckpointer(NewSimDisk(30e6), 0, 10*time.Second, 100000, false)
	// C = 1.6MB/30MBps ≈ 53ms; Topt = sqrt(2*0.053*10) ≈ 1.03s.
	iv := ck.currentInterval(100, 1*time.Second) // 10ms per iteration
	if iv < 50 || iv > 250 {
		t.Fatalf("Daly interval = %d iterations, want ~103", iv)
	}
	// Fixed interval overrides.
	ck2 := newCheckpointer(NewSimDisk(30e6), 77, 10*time.Second, 100000, false)
	if ck2.currentInterval(100, time.Second) != 77 {
		t.Fatal("fixed interval ignored")
	}
	// No MTBE information: the paper's default period.
	ck3 := newCheckpointer(NewSimDisk(30e6), 0, 0, 100000, false)
	if ck3.currentInterval(100, time.Second) != 1000 {
		t.Fatal("default interval wrong")
	}
}

func TestExactRecoveryPreservesIterates(t *testing.T) {
	// The strongest exactness property: a FEIR run with an injected error
	// must converge to the same solution as the fault-free run, to
	// near-machine precision, because replacement data is exact.
	a, b := testSystem()
	ideal, err := NewCG(a, b, testConfig(MethodIdeal))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ideal.Run(); err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(MethodFEIR)
	cg, err := NewCG(a, b, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cgCfg := cfg
	cgCfg.OnIteration = func(it int, rel float64) {
		if it == 25 {
			cg.Space().VectorByName("g").Poison(8)
		}
	}
	cg, err = NewCG(a, b, cgCfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := cg.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("not converged")
	}
	var maxDiff float64
	for i := range ideal.x.Data {
		if d := math.Abs(ideal.x.Data[i] - cg.x.Data[i]); d > maxDiff {
			maxDiff = d
		}
	}
	if maxDiff > 1e-8 {
		t.Fatalf("solutions diverged by %v after exact recovery", maxDiff)
	}
}

func TestWorkerTimesPopulated(t *testing.T) {
	a, b := testSystem()
	cg, err := NewCG(a, b, testConfig(MethodFEIR))
	if err != nil {
		t.Fatal(err)
	}
	res, err := cg.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.WorkerTimes) != 4 {
		t.Fatalf("worker times for %d workers", len(res.WorkerTimes))
	}
	var useful time.Duration
	for _, w := range res.WorkerTimes {
		useful += w.Useful
	}
	if useful == 0 {
		t.Fatal("no useful time recorded")
	}
}

func TestDynamicVectorsList(t *testing.T) {
	a, b := testSystem()
	cg, err := NewCG(a, b, testConfig(MethodFEIR))
	if err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, v := range cg.DynamicVectors() {
		names[v.Name()] = true
	}
	for _, want := range []string{"x", "g", "q", "d0", "d1"} {
		if !names[want] {
			t.Fatalf("missing dynamic vector %s", want)
		}
	}
	// Plain methods have a single direction buffer.
	cg2, err := NewCG(a, b, testConfig(MethodTrivial))
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range cg2.DynamicVectors() {
		if v.Name() == "d1" {
			t.Fatal("plain method should not expose d1")
		}
	}
}

func TestNewCGValidation(t *testing.T) {
	a, b := testSystem()
	if _, err := NewCG(a, b[:10], testConfig(MethodIdeal)); err == nil {
		t.Fatal("accepted wrong rhs length")
	}
	rect := sparse.NewCSRFromTriplets(2, 3, []sparse.Triplet{{Row: 0, Col: 0, Val: 1}})
	if _, err := NewCG(rect, []float64{1, 2}, testConfig(MethodIdeal)); err == nil {
		t.Fatal("accepted non-square matrix")
	}
}

func TestMethodString(t *testing.T) {
	cases := map[Method]string{
		MethodIdeal: "Ideal", MethodTrivial: "Trivial", MethodLossy: "Lossy",
		MethodCheckpoint: "ckpt", MethodFEIR: "FEIR", MethodAFEIR: "AFEIR",
	}
	for m, want := range cases {
		if m.String() != want {
			t.Fatalf("%d.String() = %q, want %q", int(m), m.String(), want)
		}
	}
	if Method(99).String() == "" {
		t.Fatal("unknown method string empty")
	}
}

func TestStatsAdd(t *testing.T) {
	a := Stats{FaultsSeen: 1, RecoveredForward: 2, Rollbacks: 3}
	b := Stats{FaultsSeen: 10, RecoveredInverse: 5, Restarts: 7}
	a.Add(b)
	if a.FaultsSeen != 11 || a.RecoveredForward != 2 || a.RecoveredInverse != 5 || a.Rollbacks != 3 || a.Restarts != 7 {
		t.Fatalf("Add wrong: %+v", a)
	}
}

func TestOnDemandRecoveryNoErrors(t *testing.T) {
	// §7's proposed runtime support: with no errors, recovery tasks are
	// never instantiated and results match the always-on variant.
	a, b := testSystem()
	for _, m := range []Method{MethodFEIR, MethodAFEIR} {
		cfg := testConfig(m)
		cfg.OnDemandRecovery = true
		cg, err := NewCG(a, b, cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := cg.Run()
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged || res.RelResidual > 1e-9 {
			t.Fatalf("%v on-demand: %+v", m, res)
		}
	}
}

func TestOnDemandRecoveryStillRecovers(t *testing.T) {
	a, b := testSystem()
	base := idealIterations(t, a, b)
	for _, m := range []Method{MethodFEIR, MethodAFEIR} {
		cfg := testConfig(m)
		cfg.OnDemandRecovery = true
		res := runWithInjections(t, a, b, cfg, []injection{
			{it: 20, vec: "x", page: 7},
			{it: 45, vec: "g", page: 12},
		})
		if !res.Converged || res.RelResidual > 1e-8 {
			t.Fatalf("%v on-demand with errors: %+v", m, res)
		}
		if d := res.Iterations - base; d < -2 || d > 2 {
			t.Fatalf("%v on-demand: %d vs ideal %d iterations", m, res.Iterations, base)
		}
		if res.Stats.RecoveredForward+res.Stats.RecoveredInverse == 0 {
			t.Fatalf("%v on-demand: no recoveries recorded %+v", m, res.Stats)
		}
	}
}
