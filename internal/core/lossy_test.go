package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/matgen"
	"repro/internal/sparse"
)

// These tests validate the paper's §4.3 mathematical results about the
// block-Jacobi step interpolation of the Lossy Approach:
//
//	Theorem 1 (Langou et al.): ||e_I|| <= c_i ||e|| with
//	    c_i = (1 + ||A_ii^{-1}|| Σ_{j≠i} ||A_ij||)^{1/2}.
//	Theorem 2 (Agullo et al.): for SPD A, ||e_I||_A <= ||e||_A.
//	Theorem 3 (this paper):    for SPD A, the interpolation MINIMIZES
//	    ||e_I||_A over all possible values of the lost block.
//
// plus the fixed-point property: interpolating from the exact solution
// returns the exact solution.

// aNorm computes sqrt(eᵀ A e).
func aNorm(a *sparse.CSR, e []float64) float64 {
	t := make([]float64, a.N)
	a.MulVec(e, t)
	v := sparse.Dot(e, t)
	if v < 0 {
		v = 0
	}
	return math.Sqrt(v)
}

type lossyFixture struct {
	a      *sparse.CSR
	layout sparse.BlockLayout
	blocks *sparse.BlockSolverCache
	xTrue  []float64
	b      []float64
}

func newLossyFixture(seed int64) *lossyFixture {
	a := matgen.Poisson2D(16, 16) // n=256
	layout := sparse.BlockLayout{N: a.N, BlockSize: 32}
	f := &lossyFixture{
		a:      a,
		layout: layout,
		blocks: sparse.NewBlockSolverCache(a, layout, true),
		xTrue:  matgen.RandomVector(a.N, seed),
	}
	f.b = make([]float64, a.N)
	a.MulVec(f.xTrue, f.b)
	return f
}

// interpolateFrom corrupts the given pages of a perturbed iterate and runs
// the production interpolation, returning (pre-error, post-interpolation)
// error vectors.
func (f *lossyFixture) interpolateFrom(t *testing.T, x []float64, pages []int) (e, eI []float64) {
	t.Helper()
	e = make([]float64, f.a.N)
	for i := range e {
		e[i] = f.xTrue[i] - x[i]
	}
	xI := append([]float64(nil), x...)
	// Destroy the lost pages so the test fails if the interpolation reads
	// them.
	for _, p := range pages {
		lo, hi := f.layout.Range(p)
		for i := lo; i < hi; i++ {
			xI[i] = math.NaN()
		}
	}
	if !LossyInterpolate(f.a, f.layout, f.blocks, f.b, xI, pages) {
		t.Fatal("interpolation failed")
	}
	eI = make([]float64, f.a.N)
	for i := range eI {
		eI[i] = f.xTrue[i] - xI[i]
		if math.IsNaN(eI[i]) {
			t.Fatal("interpolation left NaN")
		}
	}
	return e, eI
}

func TestTheorem2ANormNonExpansive(t *testing.T) {
	f := newLossyFixture(1)
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 200; trial++ {
		x := make([]float64, f.a.N)
		for i := range x {
			x[i] = f.xTrue[i] + rng.NormFloat64()
		}
		p := rng.Intn(f.layout.NumBlocks())
		e, eI := f.interpolateFrom(t, x, []int{p})
		ne, neI := aNorm(f.a, e), aNorm(f.a, eI)
		if neI > ne*(1+1e-12) {
			t.Fatalf("trial %d page %d: ||eI||_A = %v > ||e||_A = %v", trial, p, neI, ne)
		}
	}
}

func TestTheorem3ANormMinimality(t *testing.T) {
	// The interpolated block minimizes ||e_I||_A over ALL candidate
	// values of the lost block: any perturbation of the interpolated
	// block must not decrease the A-norm of the error.
	f := newLossyFixture(3)
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 50; trial++ {
		x := make([]float64, f.a.N)
		for i := range x {
			x[i] = f.xTrue[i] + rng.NormFloat64()
		}
		p := rng.Intn(f.layout.NumBlocks())
		_, eI := f.interpolateFrom(t, x, []int{p})
		base := aNorm(f.a, eI)
		lo, hi := f.layout.Range(p)
		for k := 0; k < 10; k++ {
			pert := append([]float64(nil), eI...)
			for i := lo; i < hi; i++ {
				pert[i] += rng.NormFloat64() * 0.1
			}
			if aNorm(f.a, pert) < base*(1-1e-10) {
				t.Fatalf("trial %d: perturbation beat the interpolation (%v < %v)", trial, aNorm(f.a, pert), base)
			}
		}
	}
}

func TestTheorem1ContractionConstant(t *testing.T) {
	// ||e_I|| <= c_i ||e|| in the Euclidean norm, with c_i computed from
	// the block structure. We verify with ||A_ii^{-1}|| and ||A_ij||
	// bounded via infinity norms (a valid upper bound for the constant).
	f := newLossyFixture(5)
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 100; trial++ {
		x := make([]float64, f.a.N)
		for i := range x {
			x[i] = f.xTrue[i] + rng.NormFloat64()
		}
		p := rng.Intn(f.layout.NumBlocks())
		e, eI := f.interpolateFrom(t, x, []int{p})
		// Off-block row-sum bound: max_i Σ_{j outside block} |A_ij|.
		lo, hi := f.layout.Range(p)
		var offMax float64
		for i := lo; i < hi; i++ {
			if s := f.a.OffBlockRowAbsSum(i, lo, hi); s > offMax {
				offMax = s
			}
		}
		// ||A_pp^{-1}||_inf via solves against unit vectors.
		k := hi - lo
		var invNorm float64
		for c := 0; c < k; c++ {
			rhs := make([]float64, k)
			rhs[c] = 1
			if err := f.blocks.SolveDiagBlock(p, rhs); err != nil {
				t.Fatal(err)
			}
			var col float64
			for _, v := range rhs {
				col += math.Abs(v)
			}
			if col > invNorm {
				invNorm = col
			}
		}
		// Loose norm-equivalence safety factor sqrt(k) for 2-vs-inf norms.
		ci := math.Sqrt(1+invNorm*offMax) * math.Sqrt(float64(k))
		ne, neI := sparse.Norm2(e), sparse.Norm2(eI)
		if neI > ci*ne*(1+1e-9) {
			t.Fatalf("trial %d: ||eI|| = %v > c_i ||e|| = %v", trial, neI, ci*ne)
		}
	}
}

func TestLossyFixedPoint(t *testing.T) {
	// If x = x*, the interpolation returns x* (e = 0 ⇒ eI = 0).
	f := newLossyFixture(7)
	for p := 0; p < f.layout.NumBlocks(); p++ {
		x := append([]float64(nil), f.xTrue...)
		_, eI := f.interpolateFrom(t, x, []int{p})
		if n := sparse.Norm2(eI); n > 1e-9 {
			t.Fatalf("page %d: fixed point violated, ||eI|| = %v", p, n)
		}
	}
}

func TestLossyMultiPageInterpolationContracts(t *testing.T) {
	f := newLossyFixture(9)
	rng := rand.New(rand.NewSource(10))
	for trial := 0; trial < 50; trial++ {
		x := make([]float64, f.a.N)
		for i := range x {
			x[i] = f.xTrue[i] + rng.NormFloat64()
		}
		p1 := rng.Intn(f.layout.NumBlocks())
		p2 := (p1 + 1 + rng.Intn(f.layout.NumBlocks()-1)) % f.layout.NumBlocks()
		e, eI := f.interpolateFrom(t, x, []int{p1, p2})
		if aNorm(f.a, eI) > aNorm(f.a, e)*(1+1e-12) {
			t.Fatalf("trial %d: multi-page interpolation expanded the A-norm", trial)
		}
	}
}

func TestLossyInterpolateEmptyAndFullRecovery(t *testing.T) {
	f := newLossyFixture(11)
	x := append([]float64(nil), f.xTrue...)
	if !LossyInterpolate(f.a, f.layout, f.blocks, f.b, x, nil) {
		t.Fatal("empty interpolation should succeed")
	}
	// Losing EVERY page turns the interpolation into a direct solve.
	all := make([]int, f.layout.NumBlocks())
	for i := range all {
		all[i] = i
	}
	xAll := make([]float64, f.a.N)
	if !LossyInterpolate(f.a, f.layout, f.blocks, f.b, xAll, all) {
		t.Fatal("full interpolation failed")
	}
	for i := range xAll {
		if math.Abs(xAll[i]-f.xTrue[i]) > 1e-6 {
			t.Fatalf("direct-solve interpolation x[%d] = %v, want %v", i, xAll[i], f.xTrue[i])
		}
	}
}
