package core

import (
	"sync/atomic"

	"repro/internal/engine"
	"repro/internal/pagemem"
	"repro/internal/sparse"
)

// This file implements the recovery tasks of Figure 1(b): r1 repairs the
// direction/matvec pipeline (d, q, and the <d,q> partial contributions)
// before the α scalar task, r2/r3 repair g, x (and z) and the ε partials
// before the β scalar task. Both run the Table 1 relations:
//
//	forward:  re-run the operation that produced the page
//	          (d = g + βd', q = A d, g = b - A x, z = M⁻¹ g)
//	inverse:  solve the relation for its right-hand side with the
//	          factorized diagonal block (d = A⁻¹q, x = A⁻¹(b - g))
//	coupled:  the multi-error combined block system of §2.4
//
// The allowLate flag distinguishes FEIR from AFEIR: AFEIR recovery runs
// concurrently with the reduction tasks, so it must not rewrite pages the
// reductions may be reading — pages whose stamp is current but whose fault
// bit was set mid-phase ("late" poisons). FEIR recovery starts only after
// every computation of the phase finished, so it repairs those too; this
// is exactly the paper's coverage difference (§5.4).

// current reports whether page p of vector v holds version ver.
func current(v *pagemem.Vector, stamps []atomic.Int64, p int, ver int64) bool {
	return stamps[p].Load() == ver && !v.Failed(p)
}

// lateFault reports whether page p of v was poisoned after being written
// at version ver (fault bit set, stamp already current).
func lateFault(v *pagemem.Vector, stamps []atomic.Int64, p int, ver int64) bool {
	return stamps[p].Load() == ver && v.Failed(p)
}

// connCurrent reports whether every page of v listed in pages is current
// at ver, optionally skipping one page index.
func connCurrent(v *pagemem.Vector, stamps []atomic.Int64, pages []int, ver int64, skip int) bool {
	for _, j := range pages {
		if j == skip {
			continue
		}
		if !current(v, stamps, j, ver) {
			return false
		}
	}
	return true
}

// recoverGForward rebuilds page p of g at version ver from g = b - A x,
// requiring x current at ver on the connected pages. Table 1, row 3 lhs.
func (s *CG) recoverGForward(p int, ver int64) bool {
	return s.rel.ForwardResidual(vec(s.g, s.gS), ver, vec(s.x, s.xS), ver, p)
}

// recoverXInverse rebuilds page p of x at version ver from
// A_pp x_p = b_p - g_p - Σ_{j≠p} A_pj x_j (Table 1, row 3 rhs), requiring
// g current at ver on page p and x current at ver on the other connected
// pages.
func (s *CG) recoverXInverse(p int, ver int64) bool {
	return s.rel.InverseIterate(vec(s.x, s.xS), ver, vec(s.g, s.gS), ver, p)
}

// recoverDInverse rebuilds page p of a direction buffer at version ver
// from A_pp d_p = q_p - Σ_{j≠p} A_pj d_j (Table 1, row 1 rhs), requiring q
// at the SAME version on page p (for dPrev recovery that is the old q the
// double buffering of Listing 2 preserves) and the other connected pages
// of d current.
func (s *CG) recoverDInverse(d *pagemem.Vector, dS []atomic.Int64, p int, ver int64) bool {
	return s.rel.InverseDirection(engine.Vec{V: d, S: dS}, ver, vec(s.q, s.qS), ver, p)
}

// recomputeQ rebuilds page p of q at version ver by re-running the SpMV
// rows (Table 1, row 1 lhs), requiring d current on the connected pages.
func (s *CG) recomputeQ(d *pagemem.Vector, dS []atomic.Int64, p int, ver int64) bool {
	return s.rel.ForwardSpMV(vec(s.q, s.qS), ver, engine.Vec{V: d, S: dS}, ver, p)
}

// recoverZ rebuilds page p of the preconditioned residual by a partial
// block-Jacobi application (§3.2), requiring g current at ver on page p.
func (s *CG) recoverZ(p int, ver int64) bool {
	return s.rel.PrecondApply(s.pre, vec(s.z, s.zS), ver, vec(s.g, s.gS), ver, p)
}

// coupledRecoverD solves the combined §2.4 system for a set of direction
// pages that are individually unrecoverable but whose q pages are current
// at ver. All direction pages outside the group must be current.
func (s *CG) coupledRecoverD(d *pagemem.Vector, dS []atomic.Int64, group []int, ver int64) bool {
	if len(group) < 2 {
		return false
	}
	inGroup := make(map[int]bool, len(group))
	var exclude [][2]int
	for _, p := range group {
		if s.qS[p].Load() != ver || s.q.Failed(p) {
			return false
		}
		inGroup[p] = true
		lo, hi := s.layout.Range(p)
		exclude = append(exclude, [2]int{lo, hi})
	}
	// Every off-group page read by the group's rows must be current.
	for _, p := range group {
		for _, j := range s.conn[p] {
			if !inGroup[j] && !current(d, dS, j, ver) {
				return false
			}
		}
	}
	var rhs []float64
	for _, p := range group {
		lo, hi := s.layout.Range(p)
		part := make([]float64, hi-lo)
		s.a.MulVecRangeExcludingBlocks(d.Data, part, lo, hi, exclude)
		for i := lo; i < hi; i++ {
			part[i-lo] = s.q.Data[i] - part[i-lo]
		}
		rhs = append(rhs, part...)
	}
	order, err := s.blocks.SolveCoupledBlocks(group, rhs)
	if err != nil {
		return false
	}
	off := 0
	for _, p := range order {
		lo, hi := s.layout.Range(p)
		copy(d.Data[lo:hi], rhs[off:off+hi-lo])
		d.MarkRecovered(p)
		dS[p].Store(ver)
		off += hi - lo
	}
	s.stats.RecoveredCoupled += len(order)
	return true
}

// coupledRecoverX solves the combined system for several lost iterate
// pages, requiring g current at ver on all of them.
func (s *CG) coupledRecoverX(group []int, ver int64) bool {
	if len(group) < 2 {
		return false
	}
	inGroup := make(map[int]bool, len(group))
	var exclude [][2]int
	for _, p := range group {
		if !current(s.g, s.gS, p, ver) {
			return false
		}
		inGroup[p] = true
		lo, hi := s.layout.Range(p)
		exclude = append(exclude, [2]int{lo, hi})
	}
	for _, p := range group {
		for _, j := range s.conn[p] {
			if !inGroup[j] && !current(s.x, s.xS, j, ver) {
				return false
			}
		}
	}
	var rhs []float64
	for _, p := range group {
		lo, hi := s.layout.Range(p)
		part := make([]float64, hi-lo)
		s.a.MulVecRangeExcludingBlocks(s.x.Data, part, lo, hi, exclude)
		for i := lo; i < hi; i++ {
			part[i-lo] = s.b[i] - s.g.Data[i] - part[i-lo]
		}
		rhs = append(rhs, part...)
	}
	order, err := s.blocks.SolveCoupledBlocks(group, rhs)
	if err != nil {
		return false
	}
	off := 0
	for _, p := range order {
		lo, hi := s.layout.Range(p)
		copy(s.x.Data[lo:hi], rhs[off:off+hi-lo])
		s.x.MarkRecovered(p)
		s.xS[p].Store(ver)
		off += hi - lo
	}
	s.stats.RecoveredCoupled += len(order)
	return true
}

// recoverPhase1 is the r1 recovery: repair inputs (g, z, dPrev), then the
// current direction, then q, then fill missing <d,q> partials.
func (s *CG) recoverPhase1(ver int64, beta float64, cur, prev int, allowLate bool) {
	dCur, dCurS := s.d[cur], s.dS[cur]
	dPrev, dPrevS := s.d[prev], s.dS[prev]
	src, srcS := s.g, s.gS
	if s.pre != nil {
		src, srcS = s.z, s.zS
	}
	if !s.space.AnyFault() {
		// Fast path for the steady state: with no fault bit set anywhere
		// there is nothing to repair — pages can only be stale downstream
		// of a fault. Partial back-fill below still runs (it is what a
		// late repair feeds). A fault arriving mid-scan was always racy;
		// the phase boundary and reconcile catch it, exactly as before.
		s.fillPhase1Partials(ver, dCur, dCurS)
		return
	}
	for pass := 0; pass < 4; pass++ {
		progress := false
		for p := 0; p < s.np; p++ {
			// Inputs at version ver-1. The concurrent <d,q> reductions
			// never read g, z or dPrev, so these repairs are safe even
			// for AFEIR.
			if s.g.Failed(p) && s.gS[p].Load() == ver-1 {
				if s.recoverGForward(p, ver-1) {
					progress = true
				}
			}
			if s.pre != nil && !current(s.z, s.zS, p, ver-1) && s.zS[p].Load() <= ver-1 {
				if s.recoverZ(p, ver-1) {
					progress = true
				}
			}
			if beta != 0 && !current(dPrev, dPrevS, p, ver-1) && dPrevS[p].Load() <= ver-1 {
				// Inverse through the OLD q preserved by double buffering.
				if s.recoverDInverse(dPrev, dPrevS, p, ver-1) {
					progress = true
				}
			}
			// Current direction at version ver.
			if !current(dCur, dCurS, p, ver) {
				if allowLate || !lateFault(dCur, dCurS, p, ver) {
					if current(src, srcS, p, ver-1) && (beta == 0 || current(dPrev, dPrevS, p, ver-1)) {
						lo, hi := s.layout.Range(p)
						if beta == 0 {
							copy(dCur.Data[lo:hi], src.Data[lo:hi])
						} else {
							sparse.XpbyOutRange(src.Data, beta, dPrev.Data, dCur.Data, lo, hi)
						}
						dCur.MarkRecovered(p)
						dCurS[p].Store(ver)
						s.stats.RecoveredForward++
						progress = true
					} else if s.recoverDInverse(dCur, dCurS, p, ver) {
						progress = true
					}
				}
			}
			// q rows at version ver.
			if !current(s.q, s.qS, p, ver) {
				if allowLate || !lateFault(s.q, s.qS, p, ver) {
					if s.recomputeQ(dCur, dCurS, p, ver) {
						progress = true
					}
				}
			}
		}
		if !progress {
			// Multi-error combined recovery (§2.4): gather direction
			// pages that are individually stuck but have current q.
			var group []int
			for p := 0; p < s.np; p++ {
				if !current(dCur, dCurS, p, ver) &&
					(allowLate || !lateFault(dCur, dCurS, p, ver)) &&
					s.qS[p].Load() == ver && !s.q.Failed(p) {
					group = append(group, p)
				}
			}
			if !s.coupledRecoverD(dCur, dCurS, group, ver) {
				break
			}
		}
	}
	// Fill the partial contributions that are now computable.
	s.fillPhase1Partials(ver, dCur, dCurS)
}

func (s *CG) fillPhase1Partials(ver int64, dCur *pagemem.Vector, dCurS []atomic.Int64) {
	for p := 0; p < s.np; p++ {
		if s.dqPart.Missing(p) && current(dCur, dCurS, p, ver) && current(s.q, s.qS, p, ver) {
			lo, hi := s.layout.Range(p)
			s.dqPart.Store(p, sparse.DotRange(dCur.Data, s.q.Data, lo, hi))
		}
	}
}

// recoverPhase2 is the r2/r3 recovery: repair x and g (and z), the late
// direction/q damage, and fill missing ε partials.
func (s *CG) recoverPhase2(ver int64, cur int, allowLate bool) {
	dCur, dCurS := s.d[cur], s.dS[cur]
	alpha := s.alpha
	if !s.space.AnyFault() {
		// Steady-state fast path: see recoverPhase1.
		s.fillPhase2Partials(ver)
		return
	}
	for pass := 0; pass < 4; pass++ {
		progress := false
		for p := 0; p < s.np; p++ {
			lo, hi := s.layout.Range(p)
			// x: forward when the update was merely skipped, inverse when
			// the page was lost. x is not read by the ε reductions, so
			// both are safe for AFEIR too (r3 runs concurrently, §3.3.2).
			if !s.x.Failed(p) && s.xS[p].Load() == ver-1 {
				if current(dCur, dCurS, p, ver) {
					sparse.AxpyRange(alpha, dCur.Data, s.x.Data, lo, hi)
					// Direct repair outside the checksum-carrying producer:
					// the stored checksum describes the ver-1 content.
					s.x.InvalidateChecksum(p)
					s.xS[p].Store(ver)
					s.stats.RecoveredForward++
					progress = true
				}
			} else if s.x.Failed(p) {
				if s.recoverXInverse(p, ver) {
					progress = true
				}
			}
			// g: forward when skipped, g = b - A x when lost. The ε
			// reductions read g, so AFEIR must leave late poisons alone.
			if s.g.Failed(p) {
				if allowLate || s.gS[p].Load() != ver {
					if s.recoverGForward(p, ver) {
						progress = true
					}
				}
			} else if s.gS[p].Load() == ver-1 {
				if current(s.q, s.qS, p, ver) {
					sparse.AxpyRange(-alpha, s.q.Data, s.g.Data, lo, hi)
					// See the x repair above: stored checksum is ver-1's.
					s.g.InvalidateChecksum(p)
					s.gS[p].Store(ver)
					s.stats.RecoveredForward++
					progress = true
				}
			}
			// z: rebuild by partial preconditioner application. Read by
			// the <z,g> reductions: same late rule.
			if s.pre != nil && !current(s.z, s.zS, p, ver) {
				if allowLate || !lateFault(s.z, s.zS, p, ver) {
					if s.recoverZ(p, ver) {
						progress = true
					}
				}
			}
			// Late damage to the phase-1 outputs, needed next iteration.
			if !current(dCur, dCurS, p, ver) {
				if s.recoverDInverse(dCur, dCurS, p, ver) {
					progress = true
				}
			}
			if !current(s.q, s.qS, p, ver) {
				if s.recomputeQ(dCur, dCurS, p, ver) {
					progress = true
				}
			}
		}
		if !progress {
			var group []int
			for p := 0; p < s.np; p++ {
				if s.x.Failed(p) && current(s.g, s.gS, p, ver) {
					group = append(group, p)
				}
			}
			if !s.coupledRecoverX(group, ver) {
				break
			}
		}
	}
	s.fillPhase2Partials(ver)
}

func (s *CG) fillPhase2Partials(ver int64) {
	for p := 0; p < s.np; p++ {
		lo, hi := s.layout.Range(p)
		gOK := current(s.g, s.gS, p, ver)
		if s.ggPart.Missing(p) && gOK {
			s.ggPart.Store(p, sparse.DotRange(s.g.Data, s.g.Data, lo, hi))
		}
		if s.pre != nil && s.zgPart.Missing(p) && gOK && current(s.z, s.zS, p, ver) {
			s.zgPart.Store(p, sparse.DotRange(s.z.Data, s.g.Data, lo, hi))
		}
	}
}

// reconcile runs at the end of each FEIR/AFEIR iteration, with all workers
// quiescent. It retries every outstanding repair with full (late) rights —
// the "next recovery opportunity" for damage AFEIR could not touch
// mid-phase — then applies the unrecoverable-error policy to whatever is
// left: blank-remap under FallbackIgnore (§5.1), or a Lossy-style
// interpolation + restart under FallbackLossy (§2.4).
func (s *CG) reconcile(ver int64) {
	cur := 0
	if s.doubleBuffer {
		cur = int(ver) % 2
	}
	s.recoverPhase2(ver, cur, true)

	type victim struct {
		v  *pagemem.Vector
		st []atomic.Int64
		p  int
	}
	var leftovers []victim
	collect := func(v *pagemem.Vector, st []atomic.Int64, want int64) {
		for p := 0; p < s.np; p++ {
			if !current(v, st, p, want) {
				leftovers = append(leftovers, victim{v, st, p})
			}
		}
	}
	collect(s.x, s.xS, ver)
	collect(s.g, s.gS, ver)
	collect(s.d[cur], s.dS[cur], ver)
	collect(s.q, s.qS, ver)
	if s.pre != nil {
		collect(s.z, s.zS, ver)
	}
	if len(leftovers) == 0 {
		return
	}
	if s.cfg.Fallback == FallbackLossy {
		s.lossyFallback(ver)
		return
	}
	// FallbackIgnore: blank pages and move on; convergence pays the
	// price, the true-residual guard protects the reported result.
	for _, lv := range leftovers {
		lv.v.Remap(lv.p)
		lv.v.MarkRecovered(lv.p)
		lv.st[lv.p].Store(ver)
		s.stats.Unrecovered++
	}
}
