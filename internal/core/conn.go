package core

import (
	"repro/internal/engine"
	"repro/internal/sparse"
)

// PageConnectivity computes, for every row-page p of the matrix, the
// sorted set of column-pages q such that the block A[rows(p), cols(q)]
// holds at least one nonzero — the read set of a strip-mined SpMV task
// producing rows(p), and the halo a distributed rank must import before
// applying A to its own rows (§2.3, §3.4). The computation lives in
// internal/engine; this wrapper is the stable entry point for the solver
// and distributed layers.
func PageConnectivity(a *sparse.CSR, layout sparse.BlockLayout) [][]int {
	return engine.PageConnectivity(a, layout)
}
