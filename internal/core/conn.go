package core

import (
	"repro/internal/sparse"
)

// pageConnectivity computes, for every row-page p of the matrix, the
// sorted set of column-pages q such that the block A[rows(p), cols(q)]
// holds at least one nonzero. A strip-mined SpMV task producing rows(p)
// reads exactly the input pages listed in conn[p]; for the paper's
// FEM/stencil matrices this set is small, which is what keeps the blast
// radius of a lost direction page local (§2.3).
func pageConnectivity(a *sparse.CSR, layout sparse.BlockLayout) [][]int {
	np := layout.NumBlocks()
	conn := make([][]int, np)
	seen := make([]int, np) // last row-page that recorded column-page j
	for i := range seen {
		seen[i] = -1
	}
	for p := 0; p < np; p++ {
		lo, hi := layout.Range(p)
		for r := lo; r < hi; r++ {
			for k := a.RowPtr[r]; k < a.RowPtr[r+1]; k++ {
				cp := layout.BlockOf(a.Cols[k])
				if seen[cp] != p {
					seen[cp] = p
					conn[p] = append(conn[p], cp)
				}
			}
		}
		sortInts(conn[p])
	}
	return conn
}

func sortInts(s []int) {
	// Insertion sort: connectivity lists are tiny (a handful of pages).
	for i := 1; i < len(s); i++ {
		v := s[i]
		j := i - 1
		for j >= 0 && s[j] > v {
			s[j+1] = s[j]
			j--
		}
		s[j+1] = v
	}
}
