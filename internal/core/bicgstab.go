package core

import (
	"fmt"
	"math"
	"time"

	"repro/internal/engine"
	"repro/internal/pagemem"
	"repro/internal/precond"
	"repro/internal/sparse"
	"repro/internal/taskrt"
)

// BiCGStabSolver is the task-parallel resilient BiCGStab (Listing 3)
// protected with the redundancy relations of §3.1.2, running its
// iterations as chunked task graphs on the shared internal/engine — the
// same strip-mined decomposition, version stamps and recovery scheduling
// as the flagship CG, so FEIR (critical-path) and AFEIR (overlapped,
// Fig 2b) recovery both apply.
//
// The direction d is double-buffered (as in CG, Listing 2); the shadow
// residual r̂0 lives in reliably-stored constant memory (§2.1). The
// intermediate vectors s and t are fully regenerated every iteration, so
// their losses heal by overwrite; losses in x, g, d and q are repaired
// exactly through
//
//	g = b - A x            (conserved, verified in §3.1.2)
//	x = A⁻¹(b - g)         (inverse, LU diagonal blocks: A may be non-SPD)
//	q = A d  /  d = A⁻¹ q  (forward / inverse, with the old q preserved
//	                        by double buffering)
//	d = g + β(d' - ω q)    (forward, scalars live in reliable memory)
//
// Versioning: iteration t consumes x, g and the incoming direction at
// version t-1 and produces q, s, t, x, g and the outgoing direction at
// version t. The q produced at t pairs with the direction produced at
// t-1, so at the next iteration boundary the OLD direction buffer is
// still recoverable as d = A⁻¹q — the same trick CG plays.
//
// With Config.UsePrecond the solver runs the paper's preconditioned
// BiCGStab (Listing 6): the block-Jacobi M⁻¹ is applied to the search
// directions, d̂ = M⁻¹ d and ŝ = M⁻¹ s, through the engine's guarded
// apply-M⁻¹ page operation; the matvecs become q = A d̂ and t = A ŝ and
// the iterate update x += α d̂ + ω ŝ. g remains the TRUE residual
// b - A x, so every unpreconditioned redundancy relation above survives
// verbatim, and the preconditioned vectors gain their own §3.2
// relations: forward d̂ = M⁻¹ d (partial application, page-local by block
// diagonality), inverse d = M d̂, and the inverse d̂ = A⁻¹ q through the
// factorized diagonal blocks.
type BiCGStabSolver struct {
	cfg     Config
	a       *sparse.CSR
	b       []float64
	bnorm   float64
	layout  sparse.BlockLayout
	np      int
	space   *pagemem.Space
	x, g, q *pagemem.Vector
	d       [2]*pagemem.Vector
	s, t    *pagemem.Vector
	rhat    []float64
	blocks  *sparse.BlockSolverCache
	conn    [][]int
	rel     *Relations
	stats   Stats

	// Preconditioned variant (Listing 6): d̂ = M⁻¹ d and ŝ = M⁻¹ s, nil
	// otherwise.
	pre        *precond.BlockJacobi
	dhat, shat *pagemem.Vector

	xS, gS, qS, sS, tS engine.Stamps
	dS                 [2]engine.Stamps
	dhatS, shatS       engine.Stamps

	qrPart, ttPart, tsPart, rhoPart, ggPart *engine.Partial

	rt        *taskrt.Runtime
	eng       *engine.Engine
	resilient bool
	pol       policyState

	scratch []float64
	resid   []float64 // full-length true-residual scratch (reused)

	// Scalars of the current and last iteration. They live outside the
	// page fault domain (the error model only kills memory pages, §5.3).
	alpha, omega, beta  float64
	rho                 float64
	epsGG               float64 // <g,g> from the phase-3 reduction
	lastBeta, lastOmega float64
	restartPending      bool
}

// NewBiCGStab builds a resilient BiCGStab solver. MethodFEIR and
// MethodAFEIR get exact task-overlapped recovery; MethodLossy interpolates
// the iterate and restarts; the remaining methods run unguarded with
// blank-page forward recovery.
func NewBiCGStab(a *sparse.CSR, b []float64, cfg Config) (*BiCGStabSolver, error) {
	if a.N != a.M {
		return nil, fmt.Errorf("core: non-square matrix %dx%d", a.N, a.M)
	}
	if len(b) != a.N {
		return nil, fmt.Errorf("core: rhs length %d for n=%d", len(b), a.N)
	}
	sv := &BiCGStabSolver{
		cfg:    cfg,
		a:      a,
		b:      append([]float64(nil), b...),
		layout: sparse.BlockLayout{N: a.N, BlockSize: cfg.pageDoubles()},
	}
	sv.bnorm = sparse.Norm2(b)
	if sv.bnorm == 0 {
		sv.bnorm = 1
	}
	sv.np = sv.layout.NumBlocks()
	sv.space = pagemem.NewSpace(a.N, cfg.pageDoubles())
	sv.x = sv.space.AddVector("x")
	sv.g = sv.space.AddVector("g")
	sv.q = sv.space.AddVector("q")
	sv.d[0] = sv.space.AddVector("d0")
	sv.d[1] = sv.space.AddVector("d1")
	sv.s = sv.space.AddVector("s")
	sv.t = sv.space.AddVector("t")
	sv.rhat = make([]float64, a.N)
	if cfg.Blocks != nil {
		if cfg.Blocks.A != a || cfg.Blocks.Layout != sv.layout || cfg.Blocks.SPD {
			return nil, fmt.Errorf("core: shared block cache mismatch (want matrix %p layout %+v spd=false, have %p %+v spd=%v)",
				a, sv.layout, cfg.Blocks.A, cfg.Blocks.Layout, cfg.Blocks.SPD)
		}
		sv.blocks = cfg.Blocks
	} else {
		sv.blocks = sparse.NewBlockSolverCache(a, sv.layout, false) // LU: general A
	}
	sv.resilient = cfg.Method == MethodFEIR || cfg.Method == MethodAFEIR
	sv.pol.allowed = policyAllowed(cfg.Method, recoverySwitchSet)
	if cfg.UsePrecond {
		// Reuse the recovery cache's LU factorizations as the
		// preconditioner blocks — they are the same A_pp (§5.1: "the
		// factorization of diagonal blocks ... is already computed").
		pre, err := precond.FromCache(sv.blocks)
		if err != nil {
			return nil, fmt.Errorf("core: block-Jacobi setup: %w", err)
		}
		sv.pre = pre
		sv.dhat = sv.space.AddVector("dh")
		sv.shat = sv.space.AddVector("sh")
		sv.dhatS = engine.NewStamps(sv.layout.NumBlocks())
		sv.shatS = engine.NewStamps(sv.layout.NumBlocks())
	}

	sv.xS = engine.NewStamps(sv.np)
	sv.gS = engine.NewStamps(sv.np)
	sv.qS = engine.NewStamps(sv.np)
	sv.sS = engine.NewStamps(sv.np)
	sv.tS = engine.NewStamps(sv.np)
	sv.dS[0] = engine.NewStamps(sv.np)
	sv.dS[1] = engine.NewStamps(sv.np)
	sv.qrPart = engine.NewPartial(sv.np)
	sv.ttPart = engine.NewPartial(sv.np)
	sv.tsPart = engine.NewPartial(sv.np)
	sv.rhoPart = engine.NewPartial(sv.np)
	sv.ggPart = engine.NewPartial(sv.np)
	sv.scratch = make([]float64, cfg.pageDoubles())
	sv.resid = make([]float64, a.N)
	return sv, nil
}

// Space exposes the fault domain for error injection.
func (sv *BiCGStabSolver) Space() *pagemem.Space { return sv.space }

// DynamicVectors lists the vectors injections cover (§5.3).
func (sv *BiCGStabSolver) DynamicVectors() []*pagemem.Vector {
	vs := []*pagemem.Vector{sv.x, sv.g, sv.q, sv.d[0], sv.d[1], sv.s, sv.t}
	if sv.pre != nil {
		vs = append(vs, sv.dhat, sv.shat)
	}
	return vs
}

// ErrRecurrenceBreakdown reports a degenerate recurrence.
var ErrRecurrenceBreakdown = fmt.Errorf("core: recurrence breakdown")

// Run executes the resilient solve. It returns the result, the solution
// vector and the resilience statistics.
func (sv *BiCGStabSolver) Run() (Result, []float64, error) {
	start := time.Now()
	if sv.cfg.RT != nil {
		sv.rt = sv.cfg.RT // externally owned (shared pool): never closed here
	} else {
		sv.rt = taskrt.New(sv.cfg.workers())
		defer sv.rt.Close()
	}
	sv.eng = engine.New(sv.a, sv.layout, sv.rt, sv.resilient, 0)
	sv.eng.RecoveryPriority = sv.cfg.overlapPriority()
	sv.conn = sv.eng.Conn
	sv.rel = &Relations{a: sv.a, layout: sv.layout, conn: sv.conn, blocks: sv.blocks, b: sv.b, scratch: sv.scratch, stats: &sv.stats}

	tol := sv.cfg.tol()
	maxIter := sv.cfg.maxIter(sv.a.N)

	// Initial state (x = 0): g = r̂0 = b; the direction consumed by
	// iteration 0 goes into d[1] (its dIn buffer) at version -1, matching
	// the initial stamps.
	copy(sv.g.Data, sv.b)
	copy(sv.rhat, sv.b)
	copy(sv.d[1].Data, sv.b)
	sv.rho = sparse.Dot(sv.g.Data, sv.rhat)
	sv.epsGG = sparse.Dot(sv.g.Data, sv.g.Data)

	var it int
	converged := false
	sv.pol.lastEvents = sv.space.FaultCount() + sv.space.SDCDetected()
	for it = 0; it < maxIter; it++ {
		if sv.cfg.Cancelled != nil && sv.cfg.Cancelled() {
			return sv.finish(it, false, start), sv.x.Data, ErrCancelled
		}
		if sv.cfg.Policy != nil {
			applyPolicy(it, &sv.cfg, &sv.pol, sv.space, &sv.stats, nil)
		}
		ver := int64(it)
		cur, prev := it%2, (it+1)%2
		dIn := vec(sv.d[prev], sv.dS[prev])
		dOut := vec(sv.d[cur], sv.dS[cur])

		// The residual norm comes from the <g,g> reduction of the
		// previous iteration's phase 3 — no sequential pass over g.
		rel := relFromEpsilon(sv.epsGG, sv.bnorm)
		if sv.cfg.OnIteration != nil {
			sv.cfg.OnIteration(it, rel)
		}
		if rel < tol {
			if sv.trueResidual() < tol*10 {
				converged = true
				break
			}
			// Recurrence lied (possible after ignored unrecoverable
			// errors): rebuild the recurrence from x and keep going.
			// Stamp at ver so THIS loop index is consumed by the
			// restart and the next iteration reads a consistent state.
			sv.restart(ver)
			continue
		}

		// Iteration boundary: pending losses take effect, everything is
		// repaired (or the method's fallback applies) before the phases.
		if !sv.boundaryRecover(ver) {
			continue // restart-style recovery consumed this iteration
		}
		if sv.restartPending {
			sv.restart(ver - 1)
			sv.restartPending = false
		}

		// ---------------- Phase 1: [d̂ = M⁻¹d,] q = A d̂, <q, r̂> -------
		sv.qrPart.ResetMissing()
		qSrc, qSrcVer := dIn, ver-1
		var preH []*taskrt.Handle
		if sv.pre != nil {
			dhOp := engine.Operand{Vec: vec(sv.dhat, sv.dhatS), Ver: ver}
			preH = sv.eng.ApplyPrecond("dh", nil, sv.pre, engine.In(dIn, ver-1), dhOp)
			qSrc, qSrcVer = dhOp.Vec, ver
		}
		qOp := engine.Operand{Vec: vec(sv.q, sv.qS), Ver: ver}
		// Fused q = A d̂ with the <q, r̂0> partials: one task per chunk
		// instead of the SpMV + reduction pair.
		qH := sv.eng.SpMVDotReliable("q,<q,r>", preH, engine.In(qSrc, qSrcVer), qOp, sv.rhat, sv.qrPart)
		phase1 := append(append([]*taskrt.Handle{}, preH...), qH...)
		sv.runRecovery("r1", phase1, func(allowLate bool) {
			sv.recoverPhase(ver, cur, bPhase1, allowLate)
		}, phase1)
		sv.phaseBoundary()
		qr, missQR := sv.qrPart.SumAvailable()
		sv.stats.ContributionsLost += missQR
		if qr == 0 || math.IsNaN(qr) || math.IsNaN(sv.rho) {
			if missQR == 0 && !sv.space.AnyFault() {
				return sv.finish(it, converged, start), sv.x.Data, ErrRecurrenceBreakdown
			}
			sv.restartPending = true
			continue
		}
		sv.alpha = sv.rho / qr

		// ---------------- Phase 2: s, [ŝ = M⁻¹s,] t = A ŝ, <t,t>, <t,s>
		alpha := sv.alpha
		sv.ttPart.ResetMissing()
		sv.tsPart.ResetMissing()
		sOp := engine.Operand{Vec: vec(sv.s, sv.sS), Ver: ver}
		sH := sv.eng.PageOp("s", nil,
			[]engine.Operand{engine.In(vec(sv.g, sv.gS), ver-1), engine.In(qOp.Vec, ver)},
			&sOp, true, func(p, lo, hi int) bool {
				// s = g - α q (full overwrite heals s losses).
				sparse.XpbyOutRange(sv.g.Data, -alpha, sv.q.Data, sv.s.Data, lo, hi)
				return true
			})
		tSrc := sOp.Vec
		tAfter := sH
		var shH []*taskrt.Handle
		if sv.pre != nil {
			shOp := engine.Operand{Vec: vec(sv.shat, sv.shatS), Ver: ver}
			shH = sv.eng.ApplyPrecond("sh", sH, sv.pre, engine.In(sOp.Vec, ver), shOp)
			tSrc = shOp.Vec
			tAfter = shH
		}
		tOp := engine.Operand{Vec: vec(sv.t, sv.tS), Ver: ver}
		// Fused t = A ŝ with <t,t> (and, unpreconditioned, <t,s>: there
		// the SpMV input IS s, so both reductions ride the same pass;
		// preconditioned, <t,s> pairs t with a different vector than the
		// SpMV input ŝ and stays a separate reduction).
		var tH, tsH []*taskrt.Handle
		if sv.pre == nil {
			tH = sv.eng.SpMVDot("t,<t,s>,<t,t>", tAfter, engine.In(tSrc, ver), tOp, sv.tsPart, sv.ttPart)
		} else {
			tH = sv.eng.SpMVDot("t,<t,t>", tAfter, engine.In(tSrc, ver), tOp, nil, sv.ttPart)
			tsH = sv.eng.DotPartials("<t,s>", tH, engine.In(tOp.Vec, ver), engine.In(sOp.Vec, ver), sv.tsPart)
		}
		phase2 := append(append(append([]*taskrt.Handle{}, sH...), shH...), tH...)
		sv.runRecovery("r2", phase2, func(allowLate bool) {
			sv.recoverPhase(ver, cur, bPhase2, allowLate)
		}, append(append([]*taskrt.Handle{}, phase2...), tsH...))
		sv.phaseBoundary()
		tt, missTT := sv.ttPart.SumAvailable()
		ts, missTS := sv.tsPart.SumAvailable()
		sv.stats.ContributionsLost += missTT + missTS
		if tt == 0 {
			if missTT > 0 || sv.space.AnyFault() {
				sv.restartPending = true
				continue
			}
			// Lucky breakdown: s is already the residual of the updated x.
			if sv.pre != nil {
				sparse.Axpy(alpha, sv.dhat.Data, sv.x.Data)
			} else {
				sparse.Axpy(alpha, sv.d[prev].Data, sv.x.Data)
			}
			copy(sv.g.Data, sv.s.Data)
			it++
			converged = sparse.Norm2(sv.g.Data)/sv.bnorm < tol
			break
		}
		sv.omega = ts / tt

		// ---------------- Phase 3: x, g, <g, r̂> ----------------------
		omega := sv.omega
		sv.rhoPart.ResetMissing()
		// Unpreconditioned: x += α d + ω s. Preconditioned (Listing 6):
		// x += α d̂ + ω ŝ.
		xDir, xDirVer := dIn, ver-1
		xStep := sOp.Vec
		if sv.pre != nil {
			xDir, xDirVer = vec(sv.dhat, sv.dhatS), ver
			xStep = vec(sv.shat, sv.shatS)
		}
		xOp := engine.Operand{Vec: vec(sv.x, sv.xS), Ver: ver}
		xH := sv.eng.PageOp("x", nil,
			[]engine.Operand{engine.In(xOp.Vec, ver-1), engine.In(xDir, xDirVer), engine.In(xStep, ver)},
			&xOp, false, func(p, lo, hi int) bool {
				// Read-modify-write: late poisons stay detected.
				sparse.Axpy2Range(alpha, xDir.V.Data, omega, xStep.V.Data, sv.x.Data, lo, hi)
				return true
			})
		sv.ggPart.ResetMissing()
		gOp := engine.Operand{Vec: vec(sv.g, sv.gS), Ver: ver}
		gH := sv.eng.PageOp("g,<g,r>,<g,g>", nil,
			[]engine.Operand{engine.In(sOp.Vec, ver), engine.In(tOp.Vec, ver)},
			&gOp, true, func(p, lo, hi int) bool {
				// g = s - ω t fused with the <g,r̂0> and <g,g> partials in
				// one pass. Full overwrite revalidates g, so whenever the
				// body ran the unfused reductions' currency guard would
				// have held; a skipped page leaves both slots missing,
				// exactly as the stale-stamp guard would.
				ow, oo := sparse.XpbyDotNormRange(sv.s.Data, -omega, sv.t.Data, sv.g.Data, sv.rhat, lo, hi)
				sv.rhoPart.Store(p, ow)
				sv.ggPart.Store(p, oo)
				return true
			})
		sv.runRecovery("r3", append(append([]*taskrt.Handle{}, xH...), gH...), func(allowLate bool) {
			sv.recoverPhase(ver, cur, bPhase3, allowLate)
		}, append(append([]*taskrt.Handle{}, xH...), gH...))
		sv.phaseBoundary()
		rhoNew, missRho := sv.rhoPart.SumAvailable()
		sv.stats.ContributionsLost += missRho
		gg, missGG := sv.ggPart.SumAvailable()
		sv.stats.ContributionsLost += missGG
		sv.epsGG = gg
		if RhoBoundaryBreakdown(sv.rho, omega, rhoNew, gg, sv.bnorm, tol) {
			if missRho == 0 && !sv.space.AnyFault() {
				return sv.finish(it, converged, start), sv.x.Data, ErrRecurrenceBreakdown
			}
			sv.restartPending = true
			continue
		}
		sv.beta = rhoNew / sv.rho * alpha / omega

		// ---------------- Phase 4: d = g + β(d' - ω q) ----------------
		beta := sv.beta
		dOutOp := engine.Operand{Vec: dOut, Ver: ver}
		dH := sv.eng.PageOp("d", nil,
			[]engine.Operand{engine.In(gOp.Vec, ver), engine.In(dIn, ver-1), engine.In(qOp.Vec, ver)},
			&dOutOp, true, func(p, lo, hi int) bool {
				sparse.XpbyzOutRange(sv.g.Data, beta, sv.d[prev].Data, omega, sv.q.Data, sv.d[cur].Data, lo, hi)
				return true
			})
		sv.runRecovery("r4", dH, func(allowLate bool) {
			sv.recoverPhase(ver, cur, bPhase4, true)
		}, dH)
		sv.phaseBoundary()

		sv.rho = rhoNew
		sv.lastBeta, sv.lastOmega = beta, omega
	}
	return sv.finish(it, converged, start), sv.x.Data, nil
}

// runRecovery schedules the phase recovery per the method: overlapped at
// low priority after the producer tasks (AFEIR, Fig 2b) or in the
// critical path once the whole phase finished (FEIR, Fig 2a). waitFor
// lists every task of the phase; it is always awaited before returning.
//
//due:recovery
func (sv *BiCGStabSolver) runRecovery(label string, after []*taskrt.Handle, fn func(allowLate bool), waitFor []*taskrt.Handle) {
	skip := !sv.resilient || (sv.cfg.OnDemandRecovery && !sv.space.AnyFault())
	var r *taskrt.Handle
	if sv.cfg.Method == MethodAFEIR && !skip {
		r = sv.eng.OverlappedRecovery(label, after, func() { fn(false) })
	}
	sv.rt.WaitAll(waitFor)
	if r != nil {
		sv.rt.Wait(r)
	}
	if sv.cfg.Method == MethodFEIR && !skip {
		sv.eng.CriticalRecovery(label, func() { fn(true) })
	}
}

// relFromEpsilon converts an <g,g> reduction into the relative residual.
func relFromEpsilon(eps, bnorm float64) float64 {
	return math.Sqrt(math.Max(eps, 0)) / bnorm
}

// RhoBoundaryBreakdown reports whether the phase-3 boundary scalars
// indicate a recurrence breakdown. Besides the classic ω == 0 / stale
// ρ == 0 / NaN cases, a zero NEW rho is one too: it flows into
// β = ρ'/ρ · α/ω as a harmless-looking zero, but the ρ' carried into the
// next iteration's α = ρ'/<q,r̂> then stalls the recurrence — so it is
// detected at this boundary like ω == 0. Exception: a zero ρ' with the
// residual already below tolerance is just convergence, which the loop
// head reports cleanly.
func RhoBoundaryBreakdown(rho, omega, rhoNew, gg, bnorm, tol float64) bool {
	if math.IsNaN(rhoNew) || rho == 0 || omega == 0 {
		return true
	}
	return rhoNew == 0 && relFromEpsilon(gg, bnorm) >= tol
}

// phaseBoundary applies pending data losses with all workers quiescent.
func (sv *BiCGStabSolver) phaseBoundary() {
	evs := sv.space.ScramblePending()
	sv.stats.FaultsSeen += len(evs)
}

// trueResidual computes ||b - A x|| / ||b|| sequentially, in the
// solver-owned scratch (no per-check allocation).
func (sv *BiCGStabSolver) trueResidual() float64 {
	r := sv.resid
	sv.a.MulVec(sv.x.Data, r)
	sparse.Sub(sv.b, r, r)
	return sparse.Norm2(r) / sv.bnorm
}

func (sv *BiCGStabSolver) finish(it int, converged bool, start time.Time) Result {
	return Result{
		Converged:   converged,
		Iterations:  it,
		RelResidual: sv.trueResidual(),
		Elapsed:     time.Since(start),
		Stats:       sv.stats,
		WorkerTimes: sv.rt.WorkerTimes(),
	}
}

// restart rebuilds the whole recurrence from the current iterate: failed
// x pages are blanked (they survived every recovery attempt), g = b - Ax,
// r̂0 = g, d = g, ρ = <g,g>, with every stamp forced to ver so the next
// iteration (ver+1) consumes a consistent state.
func (sv *BiCGStabSolver) restart(ver int64) {
	for _, p := range sv.x.FailedPages() {
		sv.x.Remap(p)
		sv.x.MarkRecovered(p)
		sv.stats.Unrecovered++
	}
	sv.space.ClearAll()
	sv.a.MulVec(sv.x.Data, sv.g.Data)
	sparse.Sub(sv.b, sv.g.Data, sv.g.Data)
	copy(sv.rhat, sv.g.Data)
	// Both buffers get the fresh direction: whichever one the next
	// iteration treats as dIn is then valid.
	copy(sv.d[0].Data, sv.g.Data)
	copy(sv.d[1].Data, sv.g.Data)
	if sv.pre != nil {
		// Preconditioned pairing: q = A d̂ with d̂ = M⁻¹ d.
		sv.pre.Apply(sv.d[0].Data, sv.dhat.Data)
		sv.a.MulVec(sv.dhat.Data, sv.q.Data)
		sv.dhatS.Fill(ver)
		sv.shatS.Fill(ver)
	} else {
		sv.a.MulVec(sv.d[0].Data, sv.q.Data) // keep the q = A d pairing
	}
	sv.rho = sparse.Dot(sv.g.Data, sv.rhat)
	sv.epsGG = sv.rho // r̂0 = g, so <g,g> = <g,r̂0>
	sv.lastBeta, sv.lastOmega = 0, 0
	sv.xS.Fill(ver)
	sv.gS.Fill(ver)
	sv.qS.Fill(ver)
	sv.sS.Fill(ver)
	sv.tS.Fill(ver)
	sv.dS[0].Fill(ver)
	sv.dS[1].Fill(ver)
	sv.stats.Restarts++
}

// boundaryRecover repairs the carried state at the start of iteration ver:
// x, g and the incoming direction at ver-1, q at ver-1 (paired with the
// outgoing buffer's ver-2 content), s and t by blanking (they regenerate).
// Returns false when a restart-style fallback consumed the iteration.
func (sv *BiCGStabSolver) boundaryRecover(ver int64) bool {
	evs := sv.space.ScramblePending()
	sv.stats.FaultsSeen += len(evs)
	if !sv.space.AnyFault() {
		return true
	}
	it := int(ver)
	cur, prev := it%2, (it+1)%2
	dIn := vec(sv.d[prev], sv.dS[prev]) // produced at ver-1, consumed now
	dOld := vec(sv.d[cur], sv.dS[cur])  // produced at ver-2, paired with q
	switch sv.cfg.Method {
	case MethodFEIR, MethodAFEIR:
		// Exact repairs below.
	case MethodLossy:
		failed := sv.x.FailedPages()
		if len(failed) > 0 && LossyInterpolate(sv.a, sv.layout, sv.blocks, sv.b, sv.x.Data, failed) {
			sv.stats.LossyInterpolations += len(failed)
			for _, p := range failed {
				sv.x.MarkRecovered(p)
			}
		}
		// Stamp at ver: this loop index is consumed by the restart and
		// the next iteration reads a consistent state.
		sv.restart(ver)
		return false
	default:
		// Blank-page forward recovery (§4.1): keep running.
		blankAllFailed(sv.space)
		return true
	}
	// s and t (and ŝ) are rebuilt before use: just blank them.
	scratchVecs := []*pagemem.Vector{sv.s, sv.t}
	if sv.pre != nil {
		scratchVecs = append(scratchVecs, sv.shat)
	}
	for _, v := range scratchVecs {
		for _, p := range v.FailedPages() {
			v.Remap(p)
			v.MarkRecovered(p)
		}
	}
	gV, xV, qV := vec(sv.g, sv.gS), vec(sv.x, sv.xS), vec(sv.q, sv.qS)
	var dhatV engine.Vec
	if sv.pre != nil {
		dhatV = vec(sv.dhat, sv.dhatS)
	}
	for pass := 0; pass < 4; pass++ {
		progress := false
		for p := 0; p < sv.np; p++ {
			if sv.g.Failed(p) && sv.rel.ForwardResidual(gV, sv.gS[p].Load(), xV, ver-1, p) {
				progress = true
			}
			if sv.x.Failed(p) && sv.rel.InverseIterate(xV, ver-1, gV, ver-1, p) {
				progress = true
			}
			if sv.pre == nil {
				if dOld.V.Failed(p) && sv.rel.InverseDirection(dOld, ver-2, qV, ver-1, p) {
					progress = true
				}
				if sv.q.Failed(p) && sv.rel.ForwardSpMV(qV, ver-1, dOld, ver-2, p) {
					progress = true
				}
			} else {
				// Preconditioned pairing: the q produced at ver-1 is
				// A d̂(ver-1) with d̂ = M⁻¹ dOld(ver-2). d̂ repairs forward
				// by partial application or inverse through q; dOld by the
				// forward product d = M d̂; q by re-running the SpMV on d̂.
				if sv.dhat.Failed(p) {
					if sv.rel.PrecondApply(sv.pre, dhatV, ver-1, dOld, ver-2, p) {
						progress = true
					} else if sv.rel.InverseDirection(dhatV, ver-1, qV, ver-1, p) {
						progress = true
					}
				}
				if dOld.V.Failed(p) && sv.rel.PrecondUnapply(sv.pre, dOld, ver-2, dhatV, ver-1, p) {
					progress = true
				}
				if sv.q.Failed(p) && sv.rel.ForwardSpMV(qV, ver-1, dhatV, ver-1, p) {
					progress = true
				}
			}
			// dIn = g + lastβ (dOld - lastω q): re-run the forward update
			// (scalars live in reliable memory). After a restart the
			// direction is just g.
			if dIn.V.Failed(p) && gV.Current(p, ver-1) {
				lo, hi := sv.layout.Range(p)
				if sv.lastBeta == 0 {
					copy(dIn.V.Data[lo:hi], sv.g.Data[lo:hi])
					sv.rel.MarkRecovered(dIn, p, ver-1)
					sv.stats.RecoveredForward++
					progress = true
				} else if qV.Current(p, ver-1) && dOld.Current(p, ver-2) {
					sparse.XpbyzOutRange(sv.g.Data, sv.lastBeta, dOld.V.Data, sv.lastOmega, sv.q.Data, dIn.V.Data, lo, hi)
					sv.rel.MarkRecovered(dIn, p, ver-1)
					sv.stats.RecoveredForward++
					progress = true
				}
			}
		}
		if !progress {
			break
		}
	}
	if sv.space.AnyFault() {
		// Simultaneous errors on related data (§2.4): rebuild from x.
		// Stamped at ver — this loop index is consumed by the restart.
		sv.restart(ver)
		return false
	}
	return true
}

type bicgPhase int

const (
	bPhase1 bicgPhase = iota
	bPhase2
	bPhase3
	bPhase4
)

// recoverPhase is the per-phase recovery task body. allowLate
// distinguishes FEIR from AFEIR exactly as in CG: overlapped recovery
// must not rewrite pages the concurrent reduction tasks may be reading
// (pages whose stamp is current but whose fault bit was set mid-phase).
func (sv *BiCGStabSolver) recoverPhase(ver int64, cur int, phase bicgPhase, allowLate bool) {
	prev := 1 - cur
	dIn := vec(sv.d[prev], sv.dS[prev])
	dOut := vec(sv.d[cur], sv.dS[cur])
	gV, xV, qV := vec(sv.g, sv.gS), vec(sv.x, sv.xS), vec(sv.q, sv.qS)
	sV, tV := vec(sv.s, sv.sS), vec(sv.t, sv.tS)
	var dhatV, shatV engine.Vec
	// qSrc is what the phase's SpMV consumed: d̂ at ver when
	// preconditioned, the incoming direction at ver-1 otherwise.
	qSrc, qSrcVer := dIn, ver-1
	if sv.pre != nil {
		dhatV, shatV = vec(sv.dhat, sv.dhatS), vec(sv.shat, sv.shatS)
		qSrc, qSrcVer = dhatV, ver
	}
	if !sv.space.AnyFault() {
		// Steady-state fast path: with no fault bit set anywhere there is
		// nothing to repair — pages can only be stale downstream of a
		// fault. The partial back-fill still runs. A fault arriving
		// mid-scan was always racy; the phase boundary catches it.
		sv.fillPhasePartials(ver, phase, qV, sV, tV, gV)
		return
	}
	// recoverQSrc repairs the SpMV input: d̂ forward by partial
	// application from dIn (or inverse through the new q), and dIn either
	// inverse through q (unpreconditioned) or by the forward product
	// d = M d̂. All safe for AFEIR: the phase reductions never read them.
	recoverQSrc := func(p int) bool {
		progress := false
		if sv.pre != nil {
			if !dhatV.Current(p, ver) {
				if sv.rel.PrecondApply(sv.pre, dhatV, ver, dIn, ver-1, p) {
					progress = true
				} else if sv.rel.InverseDirection(dhatV, ver, qV, ver, p) {
					progress = true
				}
			}
			if !dIn.Current(p, ver-1) && sv.rel.PrecondUnapply(sv.pre, dIn, ver-1, dhatV, ver, p) {
				progress = true
			}
			return progress
		}
		if !dIn.Current(p, ver-1) && sv.rel.InverseDirection(dIn, ver-1, qV, ver, p) {
			progress = true
		}
		return progress
	}
	for pass := 0; pass < 4; pass++ {
		progress := false
		for p := 0; p < sv.np; p++ {
			lo, hi := sv.layout.Range(p)
			switch phase {
			case bPhase1:
				if recoverQSrc(p) {
					progress = true
				}
				// q rows skipped because the SpMV input was stale:
				// recompute. The reduction skipped them too (stale
				// stamp), so the rewrite is safe; late poisons only
				// under allowLate.
				if !qV.Current(p, ver) {
					if allowLate || !qV.LateFault(p, ver) {
						if sv.rel.ForwardSpMV(qV, ver, qSrc, qSrcVer, p) {
							progress = true
						}
					}
				}
			case bPhase2:
				// Inputs: g at ver-1 (not read by the <t,t>/<t,s>
				// reductions), q at ver.
				if sv.g.Failed(p) && sv.gS[p].Load() == ver-1 {
					if sv.rel.ForwardResidual(gV, ver-1, xV, ver-1, p) {
						progress = true
					}
				}
				if recoverQSrc(p) {
					progress = true
				}
				if !qV.Current(p, ver) && sv.rel.ForwardSpMV(qV, ver, qSrc, qSrcVer, p) {
					progress = true
				}
				// s = g - α q, then [ŝ = M⁻¹s and] t = A ŝ. s and t are
				// read by the reductions: stale pages were skipped
				// (safe), late poisons only under allowLate. ŝ is not
				// read by any reduction, so its repair is always safe.
				if !sV.Current(p, ver) {
					if (allowLate || !sV.LateFault(p, ver)) && gV.Current(p, ver-1) && qV.Current(p, ver) {
						sparse.XpbyOutRange(sv.g.Data, -sv.alpha, sv.q.Data, sv.s.Data, lo, hi)
						sv.rel.MarkRecovered(sV, p, ver)
						sv.stats.RecoveredForward++
						progress = true
					}
				}
				tSrc := sV
				if sv.pre != nil {
					tSrc = shatV
					if !shatV.Current(p, ver) && sv.rel.PrecondApply(sv.pre, shatV, ver, sV, ver, p) {
						progress = true
					}
				}
				if !tV.Current(p, ver) {
					if allowLate || !tV.LateFault(p, ver) {
						if sv.rel.ForwardSpMV(tV, ver, tSrc, ver, p) {
							// forwardSpMV counts RecomputedQ; t is the
							// same A·vec relation.
							progress = true
						}
					}
				}
			case bPhase3:
				// x += α d + ω s (or α d̂ + ω ŝ preconditioned): not read
				// by the <g,r̂> reduction.
				xDir, xDirVer, xStep := dIn, ver-1, sV
				if sv.pre != nil {
					xDir, xDirVer, xStep = dhatV, ver, shatV
					if !shatV.Current(p, ver) && sv.rel.PrecondApply(sv.pre, shatV, ver, sV, ver, p) {
						progress = true
					}
					if recoverQSrc(p) {
						progress = true
					}
				}
				if !sv.x.Failed(p) && sv.xS[p].Load() == ver-1 {
					if xDir.Current(p, xDirVer) && xStep.Current(p, ver) {
						sparse.Axpy2Range(sv.alpha, xDir.V.Data, sv.omega, xStep.V.Data, sv.x.Data, lo, hi)
						sv.xS[p].Store(ver)
						sv.stats.RecoveredForward++
						progress = true
					}
				} else if sv.x.Failed(p) {
					if sv.rel.InverseIterate(xV, ver, gV, ver, p) {
						progress = true
					}
				}
				// g = s - ω t: read by the reduction, late rule applies.
				if !gV.Current(p, ver) {
					if (allowLate || !gV.LateFault(p, ver)) && sV.Current(p, ver) && tV.Current(p, ver) {
						sparse.XpbyOutRange(sv.s.Data, -sv.omega, sv.t.Data, sv.g.Data, lo, hi)
						sv.rel.MarkRecovered(gV, p, ver)
						sv.stats.RecoveredForward++
						progress = true
					}
				}
			case bPhase4:
				// d = g + β(d' - ω q): nothing reads dOut concurrently.
				if !dOut.Current(p, ver) {
					if gV.Current(p, ver) && dIn.Current(p, ver-1) && qV.Current(p, ver) {
						sparse.XpbyzOutRange(sv.g.Data, sv.beta, dIn.V.Data, sv.omega, sv.q.Data, dOut.V.Data, lo, hi)
						sv.rel.MarkRecovered(dOut, p, ver)
						sv.stats.RecoveredForward++
						progress = true
					}
				}
			}
		}
		if !progress {
			break
		}
	}
	// Fill the partial contributions that are now computable.
	sv.fillPhasePartials(ver, phase, qV, sV, tV, gV)
}

func (sv *BiCGStabSolver) fillPhasePartials(ver int64, phase bicgPhase, qV, sV, tV, gV engine.Vec) {
	switch phase {
	case bPhase1:
		for p := 0; p < sv.np; p++ {
			if sv.qrPart.Missing(p) && qV.Current(p, ver) {
				lo, hi := sv.layout.Range(p)
				sv.qrPart.Store(p, sparse.DotRange(sv.q.Data, sv.rhat, lo, hi))
			}
		}
	case bPhase2:
		for p := 0; p < sv.np; p++ {
			lo, hi := sv.layout.Range(p)
			if sv.ttPart.Missing(p) && tV.Current(p, ver) {
				sv.ttPart.Store(p, sparse.DotRange(sv.t.Data, sv.t.Data, lo, hi))
			}
			if sv.tsPart.Missing(p) && tV.Current(p, ver) && sV.Current(p, ver) {
				sv.tsPart.Store(p, sparse.DotRange(sv.t.Data, sv.s.Data, lo, hi))
			}
		}
	case bPhase3:
		for p := 0; p < sv.np; p++ {
			if !gV.Current(p, ver) {
				continue
			}
			lo, hi := sv.layout.Range(p)
			if sv.rhoPart.Missing(p) {
				sv.rhoPart.Store(p, sparse.DotRange(sv.g.Data, sv.rhat, lo, hi))
			}
			if sv.ggPart.Missing(p) {
				sv.ggPart.Store(p, sparse.DotRange(sv.g.Data, sv.g.Data, lo, hi))
			}
		}
	}
}
