package core

import (
	"fmt"
	"math"
	"time"

	"repro/internal/pagemem"
	"repro/internal/sparse"
)

// ResilientBiCGStab protects BiCGStab (Listing 3) with the redundancy
// relations of §3.1.2. The direction d is double-buffered (as in CG); the
// shadow residual r̂0 is constant and therefore, like A and b, assumed to
// live in reliably-stored constant data (§2.1). The intermediate vectors
// s and t are fully regenerated every iteration, so page losses in them
// heal by overwrite; losses in x, g, d and q are repaired exactly through
//
//	g = b - A x            (conserved, verified in §3.1.2)
//	x = A⁻¹(b - g)         (inverse, LU diagonal blocks: A may be non-SPD)
//	q = A d  /  d = A⁻¹ q  (forward / inverse, with the old q preserved
//	                        by double buffering)
//
// Errors are detected and repaired at iteration boundaries. It returns
// the result, the solution vector and the resilience statistics.
type BiCGStabSolver struct {
	cfg     Config
	a       *sparse.CSR
	b       []float64
	bnorm   float64
	layout  sparse.BlockLayout
	np      int
	space   *pagemem.Space
	x, g, q *pagemem.Vector
	d       [2]*pagemem.Vector
	s, t    *pagemem.Vector
	rhat    []float64
	blocks  *sparse.BlockSolverCache
	conn    [][]int
	stats   Stats

	// Scalars of the last completed iteration, used by the forward
	// direction recovery. They live outside the page fault domain (the
	// error model only kills memory pages, §5.3).
	lastBeta, lastOmega float64
	lastIter            int
}

// NewBiCGStab builds a resilient BiCGStab solver. Only MethodFEIR
// semantics (exact recovery at boundaries) are implemented; cfg.Method is
// ignored beyond enabling recovery.
func NewBiCGStab(a *sparse.CSR, b []float64, cfg Config) (*BiCGStabSolver, error) {
	if a.N != a.M {
		return nil, fmt.Errorf("core: non-square matrix %dx%d", a.N, a.M)
	}
	if len(b) != a.N {
		return nil, fmt.Errorf("core: rhs length %d for n=%d", len(b), a.N)
	}
	sv := &BiCGStabSolver{
		cfg:    cfg,
		a:      a,
		b:      append([]float64(nil), b...),
		layout: sparse.BlockLayout{N: a.N, BlockSize: cfg.pageDoubles()},
	}
	sv.bnorm = sparse.Norm2(b)
	if sv.bnorm == 0 {
		sv.bnorm = 1
	}
	sv.np = sv.layout.NumBlocks()
	sv.space = pagemem.NewSpace(a.N, cfg.pageDoubles())
	sv.x = sv.space.AddVector("x")
	sv.g = sv.space.AddVector("g")
	sv.q = sv.space.AddVector("q")
	sv.d[0] = sv.space.AddVector("d0")
	sv.d[1] = sv.space.AddVector("d1")
	sv.s = sv.space.AddVector("s")
	sv.t = sv.space.AddVector("t")
	sv.rhat = make([]float64, a.N)
	sv.blocks = sparse.NewBlockSolverCache(a, sv.layout, false) // LU: general A
	sv.conn = pageConnectivity(a, sv.layout)
	sv.lastIter = -1
	return sv, nil
}

// Space exposes the fault domain for error injection.
func (sv *BiCGStabSolver) Space() *pagemem.Space { return sv.space }

// Run executes the resilient solve.
func (sv *BiCGStabSolver) Run() (Result, []float64, error) {
	start := time.Now()
	tol := sv.cfg.tol()
	maxIter := sv.cfg.maxIter(sv.a.N)

	// g, r̂0, d ⇐ b - A x (x = 0). The initial direction goes into d[1],
	// which is the dPrev buffer of iteration 0.
	copy(sv.g.Data, sv.b)
	copy(sv.rhat, sv.b)
	copy(sv.d[1].Data, sv.b)
	rho := sparse.Dot(sv.g.Data, sv.rhat)

	var it int
	converged := false
	for it = 0; it < maxIter; it++ {
		rel := sparse.Norm2(sv.g.Data) / sv.bnorm
		if sv.cfg.OnIteration != nil {
			sv.cfg.OnIteration(it, rel)
		}
		if rel < tol {
			converged = true
			break
		}
		cur, prev := it%2, (it+1)%2
		dPrev, dCur := sv.d[prev], sv.d[cur]
		// At this boundary dPrev is the freshly built direction (forward
		// relation d = g + β(dOld - ω q)) and dCur still holds LAST
		// iteration's direction, paired with q by q = A dOld.
		sv.recoverBoundary(dPrev, dCur)

		// q ⇐ A d.
		sv.a.MulVec(dPrev.Data, sv.q.Data)
		sv.clearByOverwrite(sv.q)
		qr := sparse.Dot(sv.q.Data, sv.rhat)
		if qr == 0 || math.IsNaN(qr) {
			return sv.finish(it, converged, start), sv.x.Data, ErrRecurrenceBreakdown
		}
		alpha := rho / qr
		// s ⇐ g - α q (full overwrite heals any s losses).
		for i := range sv.s.Data {
			sv.s.Data[i] = sv.g.Data[i] - alpha*sv.q.Data[i]
		}
		sv.clearByOverwrite(sv.s)
		// t ⇐ A s.
		sv.a.MulVec(sv.s.Data, sv.t.Data)
		sv.clearByOverwrite(sv.t)
		tt := sparse.Dot(sv.t.Data, sv.t.Data)
		if tt == 0 {
			sparse.Axpy(alpha, dPrev.Data, sv.x.Data)
			copy(sv.g.Data, sv.s.Data)
			it++
			converged = sparse.Norm2(sv.g.Data)/sv.bnorm < tol
			break
		}
		omega := sparse.Dot(sv.t.Data, sv.s.Data) / tt
		// x ⇐ x + α d + ω s ;  g ⇐ s - ω t.
		for i := range sv.x.Data {
			sv.x.Data[i] += alpha*dPrev.Data[i] + omega*sv.s.Data[i]
		}
		for i := range sv.g.Data {
			sv.g.Data[i] = sv.s.Data[i] - omega*sv.t.Data[i]
		}
		sv.clearByOverwrite(sv.g)
		rhoOld := rho
		rho = sparse.Dot(sv.g.Data, sv.rhat)
		if rhoOld == 0 || omega == 0 || math.IsNaN(rho) {
			return sv.finish(it, converged, start), sv.x.Data, ErrRecurrenceBreakdown
		}
		beta := rho / rhoOld * alpha / omega
		// d_cur ⇐ g + β (d_prev - ω q): double-buffered, old q intact.
		for i := range dCur.Data {
			dCur.Data[i] = sv.g.Data[i] + beta*(dPrev.Data[i]-omega*sv.q.Data[i])
		}
		sv.clearByOverwrite(dCur)
		sv.lastBeta, sv.lastOmega, sv.lastIter = beta, omega, it
	}
	return sv.finish(it, converged, start), sv.x.Data, nil
}

// ErrRecurrenceBreakdown reports a degenerate BiCGStab recurrence.
var ErrRecurrenceBreakdown = fmt.Errorf("core: recurrence breakdown")

func (sv *BiCGStabSolver) finish(it int, converged bool, start time.Time) Result {
	r := make([]float64, sv.a.N)
	sv.a.MulVec(sv.x.Data, r)
	sparse.Sub(sv.b, r, r)
	return Result{
		Converged:   converged,
		Iterations:  it,
		RelResidual: sparse.Norm2(r) / sv.bnorm,
		Elapsed:     time.Since(start),
		Stats:       sv.stats,
	}
}

// clearByOverwrite clears fault bits of a vector that was just fully
// rewritten.
func (sv *BiCGStabSolver) clearByOverwrite(v *pagemem.Vector) {
	for _, p := range v.FailedPages() {
		v.MarkRecovered(p)
	}
}

// recoverBoundary repairs page losses at the iteration boundary. dNew is
// the direction about to be consumed (built last iteration from
// d = g + β(dOld - ω q)); dOld is last iteration's direction, paired with
// q through q = A dOld. s and t heal by overwrite inside the iteration.
func (sv *BiCGStabSolver) recoverBoundary(dNew, dOld *pagemem.Vector) {
	evs := sv.space.ScramblePending()
	sv.stats.FaultsSeen += len(evs)
	if !sv.space.AnyFault() {
		return
	}
	// s and t are rebuilt before use: just blank them.
	for _, v := range []*pagemem.Vector{sv.s, sv.t} {
		for _, p := range v.FailedPages() {
			v.Remap(p)
			v.MarkRecovered(p)
		}
	}
	for pass := 0; pass < 3; pass++ {
		progress := false
		// g = b - A x (needs x current at connected pages).
		for _, p := range sv.g.FailedPages() {
			if sv.x.AnyFailedInPages(sv.conn[p]) {
				continue
			}
			lo, hi := sv.layout.Range(p)
			buf := make([]float64, hi-lo)
			sv.a.MulVecRangeExcludingCols(sv.x.Data, buf, lo, hi, 0, 0)
			for i := lo; i < hi; i++ {
				sv.g.Data[i] = sv.b[i] - buf[i-lo]
			}
			sv.g.MarkRecovered(p)
			sv.stats.RecoveredForward++
			progress = true
		}
		// x = A⁻¹(b - g) per diagonal block.
		for _, p := range sv.x.FailedPages() {
			if sv.g.Failed(p) || sv.x.AnyFailedInPagesExcept(sv.conn[p], p) {
				continue
			}
			lo, hi := sv.layout.Range(p)
			buf := make([]float64, hi-lo)
			sv.a.MulVecRangeExcludingCols(sv.x.Data, buf, lo, hi, lo, hi)
			for i := lo; i < hi; i++ {
				buf[i-lo] = sv.b[i] - sv.g.Data[i] - buf[i-lo]
			}
			if err := sv.blocks.SolveDiagBlock(p, buf); err != nil {
				continue
			}
			copy(sv.x.Data[lo:hi], buf)
			sv.x.MarkRecovered(p)
			sv.stats.RecoveredInverse++
			progress = true
		}
		// dOld = A⁻¹ q (inverse through the preserved q pairing).
		for _, p := range dOld.FailedPages() {
			if sv.q.Failed(p) || dOld.AnyFailedInPagesExcept(sv.conn[p], p) {
				continue
			}
			lo, hi := sv.layout.Range(p)
			buf := make([]float64, hi-lo)
			sv.a.MulVecRangeExcludingCols(dOld.Data, buf, lo, hi, lo, hi)
			for i := lo; i < hi; i++ {
				buf[i-lo] = sv.q.Data[i] - buf[i-lo]
			}
			if err := sv.blocks.SolveDiagBlock(p, buf); err != nil {
				continue
			}
			copy(dOld.Data[lo:hi], buf)
			dOld.MarkRecovered(p)
			sv.stats.RecoveredInverse++
			progress = true
		}
		// q = A dOld.
		for _, p := range sv.q.FailedPages() {
			if dOld.AnyFailedInPages(sv.conn[p]) {
				continue
			}
			lo, hi := sv.layout.Range(p)
			sv.a.MulVecRange(dOld.Data, sv.q.Data, lo, hi)
			sv.q.MarkRecovered(p)
			sv.stats.RecomputedQ++
			progress = true
		}
		// dNew = g + β (dOld - ω q): re-run the forward update for lost
		// pages of the fresh direction (scalars live in reliable memory).
		for _, p := range dNew.FailedPages() {
			if sv.g.Failed(p) || dOld.Failed(p) || sv.q.Failed(p) {
				continue
			}
			lo, hi := sv.layout.Range(p)
			if sv.lastIter < 0 {
				copy(dNew.Data[lo:hi], sv.g.Data[lo:hi]) // initial d = g
			} else {
				for i := lo; i < hi; i++ {
					dNew.Data[i] = sv.g.Data[i] + sv.lastBeta*(dOld.Data[i]-sv.lastOmega*sv.q.Data[i])
				}
			}
			dNew.MarkRecovered(p)
			sv.stats.RecoveredForward++
			progress = true
		}
		if !progress {
			break
		}
	}
	// Whatever is left is unrecoverable related data (§2.4): blank it.
	for _, v := range sv.space.Vectors() {
		for _, p := range v.FailedPages() {
			v.Remap(p)
			v.MarkRecovered(p)
			sv.stats.Unrecovered++
		}
	}
}
