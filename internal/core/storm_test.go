package core

import (
	"math/rand"
	"testing"

	"repro/internal/sparse"
)

// Storm tests: randomized multi-error campaigns driven by seeds, checking
// the end-to-end invariant of exact forward recovery — every run either
// converges with a verified true residual, or reports its damage honestly
// through the statistics. These are the property-style integration tests
// over the whole recovery machinery.

// stormInjections builds a random iteration-indexed injection schedule.
func stormInjections(rng *rand.Rand, vectors []string, pages, maxIter, count int) []injection {
	inj := make([]injection, count)
	for i := range inj {
		inj[i] = injection{
			it:   1 + rng.Intn(maxIter),
			vec:  vectors[rng.Intn(len(vectors))],
			page: rng.Intn(pages),
		}
	}
	return inj
}

func TestStormFEIRRandomErrors(t *testing.T) {
	a, b := testSystem()
	base := idealIterations(t, a, b)
	vectors := []string{"x", "g", "q", "d0", "d1"}
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		inj := stormInjections(rng, vectors, 25, base, 5)
		res := runWithInjections(t, a, b, testConfig(MethodFEIR), inj)
		if !res.Converged {
			t.Fatalf("seed %d: not converged: %+v", seed, res)
		}
		if res.RelResidual > 1e-8 {
			t.Fatalf("seed %d: true residual %v", seed, res.RelResidual)
		}
		// Exact recovery: unless errors hit related data simultaneously
		// (possible but rare here), iteration counts stay close to ideal.
		if res.Stats.Unrecovered == 0 && res.Stats.Restarts == 0 {
			if d := res.Iterations - base; d < -3 || d > 3 {
				t.Fatalf("seed %d: %d iterations vs ideal %d with full recovery (%+v)",
					seed, res.Iterations, base, res.Stats)
			}
		}
	}
}

func TestStormAFEIRRandomErrors(t *testing.T) {
	a, b := testSystem()
	vectors := []string{"x", "g", "q", "d0", "d1"}
	for seed := int64(100); seed < 106; seed++ {
		rng := rand.New(rand.NewSource(seed))
		inj := stormInjections(rng, vectors, 25, 150, 6)
		res := runWithInjections(t, a, b, testConfig(MethodAFEIR), inj)
		if !res.Converged {
			t.Fatalf("seed %d: not converged: %+v", seed, res)
		}
		if res.RelResidual > 1e-8 {
			t.Fatalf("seed %d: true residual %v", seed, res.RelResidual)
		}
	}
}

func TestStormPreconditionedFEIR(t *testing.T) {
	a, b := testSystem()
	cfg := testConfig(MethodFEIR)
	cfg.UsePrecond = true
	vectors := []string{"x", "g", "q", "d0", "d1", "z"}
	for seed := int64(200); seed < 204; seed++ {
		rng := rand.New(rand.NewSource(seed))
		inj := stormInjections(rng, vectors, 25, 100, 4)
		res := runWithInjections(t, a, b, cfg, inj)
		if !res.Converged || res.RelResidual > 1e-8 {
			t.Fatalf("seed %d: %+v", seed, res)
		}
	}
}

func TestStormLossyAndCheckpointSurvive(t *testing.T) {
	a, b := testSystem()
	for seed := int64(300); seed < 303; seed++ {
		rng := rand.New(rand.NewSource(seed))
		inj := stormInjections(rng, []string{"x", "g", "d0"}, 25, 120, 3)

		res := runWithInjections(t, a, b, testConfig(MethodLossy), inj)
		if !res.Converged || res.RelResidual > 1e-8 {
			t.Fatalf("lossy seed %d: %+v", seed, res)
		}

		cfg := testConfig(MethodCheckpoint)
		cfg.CheckpointInterval = 40
		cfg.Disk = NewSimDisk(1e9)
		res = runWithInjections(t, a, b, cfg, inj)
		if !res.Converged || res.RelResidual > 1e-8 {
			t.Fatalf("ckpt seed %d: %+v", seed, res)
		}
	}
}

func TestStormBurstSameIteration(t *testing.T) {
	// Many errors in a single iteration, spread across vectors and pages:
	// exercises coupled recoveries and fixpoint passes together.
	a, b := testSystem()
	inj := []injection{
		{it: 30, vec: "x", page: 3},
		{it: 30, vec: "x", page: 4},
		{it: 30, vec: "g", page: 10},
		{it: 30, vec: "q", page: 15},
		{it: 30, vec: "d0", page: 20},
		{it: 30, vec: "d1", page: 21},
	}
	res := runWithInjections(t, a, b, testConfig(MethodFEIR), inj)
	if !res.Converged || res.RelResidual > 1e-8 {
		t.Fatalf("burst: %+v", res)
	}
}

func TestStormEveryPageOfXOverTime(t *testing.T) {
	// Lose a different iterate page every few iterations: CG must still
	// converge exactly (x recovery is exact as long as g is intact).
	a, b := testSystem()
	base := idealIterations(t, a, b)
	var inj []injection
	for p := 0; p < 20; p++ {
		inj = append(inj, injection{it: 5 + 4*p, vec: "x", page: p})
	}
	res := runWithInjections(t, a, b, testConfig(MethodFEIR), inj)
	if !res.Converged {
		t.Fatalf("not converged: %+v", res)
	}
	if res.Stats.RecoveredInverse < 15 {
		t.Fatalf("expected many inverse recoveries: %+v", res.Stats)
	}
	if d := res.Iterations - base; d < -3 || d > 3 {
		t.Fatalf("%d iterations vs ideal %d", res.Iterations, base)
	}
}

// runBiCGStabWithInjections runs a resilient BiCGStab with scripted
// page poisons at iteration starts.
func runBiCGStabWithInjections(t *testing.T, a *sparse.CSR, b []float64, cfg Config, inj []injection) Result {
	t.Helper()
	sv, err := NewBiCGStab(a, b, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg2 := cfg
	cfg2.OnIteration = poisonAt(t, sv.Space(), inj, cfg.OnIteration)
	sv.cfg = cfg2
	res, _, err := sv.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// runGMRESWithInjections does the same for the resilient GMRES(m).
func runGMRESWithInjections(t *testing.T, a *sparse.CSR, b []float64, restart int, cfg Config, inj []injection) Result {
	t.Helper()
	sv, err := NewGMRES(a, b, restart, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg2 := cfg
	cfg2.OnIteration = poisonAt(t, sv.Space(), inj, cfg.OnIteration)
	sv.cfg = cfg2
	res, _, err := sv.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// stormSystem is the nonsymmetric test system shared by the BiCGStab and
// GMRES storms: 1000 unknowns over 16 pages of 64 doubles.
func stormSystem() (*sparse.CSR, []float64, int) {
	a, b, _ := asymmetric(1000)
	return a, b, 16
}

// TestStormBiCGStabRandomErrors drives the task-parallel BiCGStab through
// DUE storms of 1–5 errors per run, for both recovery disciplines: every
// run must converge with a verified true residual.
func TestStormBiCGStabRandomErrors(t *testing.T) {
	a, b, pages := stormSystem()
	base := runBiCGStabWithInjections(t, a, b, bicgCfg(), nil)
	window := base.Iterations * 3 / 4
	if window < 2 {
		t.Fatalf("fault-free run too short for a storm: %+v", base)
	}
	vectors := []string{"x", "g", "q", "d0", "d1", "s", "t"}
	for _, method := range []Method{MethodFEIR, MethodAFEIR} {
		for rate := 1; rate <= 5; rate++ {
			seed := int64(1000*int(method) + rate)
			rng := rand.New(rand.NewSource(seed))
			inj := stormInjections(rng, vectors, pages, window, rate)
			cfg := bicgCfg()
			cfg.Method = method
			res := runBiCGStabWithInjections(t, a, b, cfg, inj)
			if !res.Converged {
				t.Fatalf("%v rate %d: not converged: %+v", method, rate, res)
			}
			if res.RelResidual > 1e-8 {
				t.Fatalf("%v rate %d: true residual %v", method, rate, res.RelResidual)
			}
			if res.Stats.FaultsSeen == 0 {
				t.Fatalf("%v rate %d: no faults seen", method, rate)
			}
		}
	}
}

// TestStormBiCGStabBurst throws simultaneous errors across related
// vectors in one iteration: the run must still terminate correctly
// (restart fallback at worst).
func TestStormBiCGStabBurst(t *testing.T) {
	a, b, _ := stormSystem()
	inj := []injection{
		{it: 12, vec: "x", page: 3},
		{it: 12, vec: "g", page: 3},
		{it: 12, vec: "d0", page: 7},
		{it: 12, vec: "q", page: 9},
	}
	cfg := bicgCfg()
	res := runBiCGStabWithInjections(t, a, b, cfg, inj)
	if !res.Converged || res.RelResidual > 1e-8 {
		t.Fatalf("burst: %+v", res)
	}
}

// TestStormGMRESRandomErrors drives the task-parallel GMRES through DUE
// storms of 1–5 errors per run for both disciplines.
func TestStormGMRESRandomErrors(t *testing.T) {
	a, b, pages := stormSystem()
	base := runGMRESWithInjections(t, a, b, 20, bicgCfg(), nil)
	window := base.Iterations * 3 / 4
	if window < 2 {
		t.Fatalf("fault-free run too short for a storm: %+v", base)
	}
	vectors := []string{"x", "g", "v0", "v1", "v3", "v7"}
	for _, method := range []Method{MethodFEIR, MethodAFEIR} {
		for rate := 1; rate <= 5; rate++ {
			seed := int64(2000*int(method) + rate)
			rng := rand.New(rand.NewSource(seed))
			inj := stormInjections(rng, vectors, pages, window, rate)
			cfg := bicgCfg()
			cfg.Method = method
			res := runGMRESWithInjections(t, a, b, 20, cfg, inj)
			if !res.Converged {
				t.Fatalf("%v rate %d: not converged: %+v", method, rate, res)
			}
			if res.RelResidual > 1e-8 {
				t.Fatalf("%v rate %d: true residual %v", method, rate, res.RelResidual)
			}
			if res.Stats.FaultsSeen == 0 {
				t.Fatalf("%v rate %d: no faults seen", method, rate)
			}
		}
	}
}

func TestStormRepeatedSamePage(t *testing.T) {
	// The same page dying over and over must not accumulate damage.
	a, b := testSystem()
	var inj []injection
	for k := 0; k < 10; k++ {
		inj = append(inj, injection{it: 10 + 6*k, vec: "g", page: 7})
	}
	res := runWithInjections(t, a, b, testConfig(MethodAFEIR), inj)
	if !res.Converged || res.RelResidual > 1e-8 {
		t.Fatalf("%+v", res)
	}
	if res.Stats.RecoveredForward < 8 {
		t.Fatalf("expected repeated forward recoveries: %+v", res.Stats)
	}
}
