package core

import (
	"math/rand"
	"testing"
)

// Storm tests: randomized multi-error campaigns driven by seeds, checking
// the end-to-end invariant of exact forward recovery — every run either
// converges with a verified true residual, or reports its damage honestly
// through the statistics. These are the property-style integration tests
// over the whole recovery machinery.

// stormInjections builds a random iteration-indexed injection schedule.
func stormInjections(rng *rand.Rand, vectors []string, pages, maxIter, count int) []injection {
	inj := make([]injection, count)
	for i := range inj {
		inj[i] = injection{
			it:   1 + rng.Intn(maxIter),
			vec:  vectors[rng.Intn(len(vectors))],
			page: rng.Intn(pages),
		}
	}
	return inj
}

func TestStormFEIRRandomErrors(t *testing.T) {
	a, b := testSystem()
	base := idealIterations(t, a, b)
	vectors := []string{"x", "g", "q", "d0", "d1"}
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		inj := stormInjections(rng, vectors, 25, base, 5)
		res := runWithInjections(t, a, b, testConfig(MethodFEIR), inj)
		if !res.Converged {
			t.Fatalf("seed %d: not converged: %+v", seed, res)
		}
		if res.RelResidual > 1e-8 {
			t.Fatalf("seed %d: true residual %v", seed, res.RelResidual)
		}
		// Exact recovery: unless errors hit related data simultaneously
		// (possible but rare here), iteration counts stay close to ideal.
		if res.Stats.Unrecovered == 0 && res.Stats.Restarts == 0 {
			if d := res.Iterations - base; d < -3 || d > 3 {
				t.Fatalf("seed %d: %d iterations vs ideal %d with full recovery (%+v)",
					seed, res.Iterations, base, res.Stats)
			}
		}
	}
}

func TestStormAFEIRRandomErrors(t *testing.T) {
	a, b := testSystem()
	vectors := []string{"x", "g", "q", "d0", "d1"}
	for seed := int64(100); seed < 106; seed++ {
		rng := rand.New(rand.NewSource(seed))
		inj := stormInjections(rng, vectors, 25, 150, 6)
		res := runWithInjections(t, a, b, testConfig(MethodAFEIR), inj)
		if !res.Converged {
			t.Fatalf("seed %d: not converged: %+v", seed, res)
		}
		if res.RelResidual > 1e-8 {
			t.Fatalf("seed %d: true residual %v", seed, res.RelResidual)
		}
	}
}

func TestStormPreconditionedFEIR(t *testing.T) {
	a, b := testSystem()
	cfg := testConfig(MethodFEIR)
	cfg.UsePrecond = true
	vectors := []string{"x", "g", "q", "d0", "d1", "z"}
	for seed := int64(200); seed < 204; seed++ {
		rng := rand.New(rand.NewSource(seed))
		inj := stormInjections(rng, vectors, 25, 100, 4)
		res := runWithInjections(t, a, b, cfg, inj)
		if !res.Converged || res.RelResidual > 1e-8 {
			t.Fatalf("seed %d: %+v", seed, res)
		}
	}
}

func TestStormLossyAndCheckpointSurvive(t *testing.T) {
	a, b := testSystem()
	for seed := int64(300); seed < 303; seed++ {
		rng := rand.New(rand.NewSource(seed))
		inj := stormInjections(rng, []string{"x", "g", "d0"}, 25, 120, 3)

		res := runWithInjections(t, a, b, testConfig(MethodLossy), inj)
		if !res.Converged || res.RelResidual > 1e-8 {
			t.Fatalf("lossy seed %d: %+v", seed, res)
		}

		cfg := testConfig(MethodCheckpoint)
		cfg.CheckpointInterval = 40
		cfg.Disk = NewSimDisk(1e9)
		res = runWithInjections(t, a, b, cfg, inj)
		if !res.Converged || res.RelResidual > 1e-8 {
			t.Fatalf("ckpt seed %d: %+v", seed, res)
		}
	}
}

func TestStormBurstSameIteration(t *testing.T) {
	// Many errors in a single iteration, spread across vectors and pages:
	// exercises coupled recoveries and fixpoint passes together.
	a, b := testSystem()
	inj := []injection{
		{it: 30, vec: "x", page: 3},
		{it: 30, vec: "x", page: 4},
		{it: 30, vec: "g", page: 10},
		{it: 30, vec: "q", page: 15},
		{it: 30, vec: "d0", page: 20},
		{it: 30, vec: "d1", page: 21},
	}
	res := runWithInjections(t, a, b, testConfig(MethodFEIR), inj)
	if !res.Converged || res.RelResidual > 1e-8 {
		t.Fatalf("burst: %+v", res)
	}
}

func TestStormEveryPageOfXOverTime(t *testing.T) {
	// Lose a different iterate page every few iterations: CG must still
	// converge exactly (x recovery is exact as long as g is intact).
	a, b := testSystem()
	base := idealIterations(t, a, b)
	var inj []injection
	for p := 0; p < 20; p++ {
		inj = append(inj, injection{it: 5 + 4*p, vec: "x", page: p})
	}
	res := runWithInjections(t, a, b, testConfig(MethodFEIR), inj)
	if !res.Converged {
		t.Fatalf("not converged: %+v", res)
	}
	if res.Stats.RecoveredInverse < 15 {
		t.Fatalf("expected many inverse recoveries: %+v", res.Stats)
	}
	if d := res.Iterations - base; d < -3 || d > 3 {
		t.Fatalf("%d iterations vs ideal %d", res.Iterations, base)
	}
}

func TestStormRepeatedSamePage(t *testing.T) {
	// The same page dying over and over must not accumulate damage.
	a, b := testSystem()
	var inj []injection
	for k := 0; k < 10; k++ {
		inj = append(inj, injection{it: 10 + 6*k, vec: "g", page: 7})
	}
	res := runWithInjections(t, a, b, testConfig(MethodAFEIR), inj)
	if !res.Converged || res.RelResidual > 1e-8 {
		t.Fatalf("%+v", res)
	}
	if res.Stats.RecoveredForward < 8 {
		t.Fatalf("expected repeated forward recoveries: %+v", res.Stats)
	}
}
