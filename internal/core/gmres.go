package core

import (
	"fmt"
	"math"
	"time"

	"repro/internal/engine"
	"repro/internal/pagemem"
	"repro/internal/precond"
	"repro/internal/sparse"
	"repro/internal/taskrt"
)

// GMRESSolver is the task-parallel resilient restarted GMRES(m)
// (Listing 4) protected with the §3.1.3 redundancies, running every
// Arnoldi step as chunked task graphs on the shared internal/engine. The
// Arnoldi basis — the bulk of the method's dynamic data — is recoverable
// from the Hessenberg matrix:
//
//	v_l = (A v_{l-1} - Σ_{k<l} h_{k,l-1} v_k) / h_{l,l-1}
//
// so a pristine copy of H is kept while the Givens-rotated R is built (the
// paper's "keeping a copy of the matrix H has a reasonable cost"; H and R
// are m(m+1) — far smaller than the m·n basis). The iterate and residual
// pair is protected by g = b - A x / x = A⁻¹(b - g) as for CG; within an
// Arnoldi cycle x and g are constant, so the pair stays consistent.
//
// Unlike CG and BiCGStab, GMRES tracks validity with fault bits alone (no
// version stamps): detected errors leave the page data intact until the
// next step boundary (detect-on-access semantics, see pagemem), so the
// chunked compute tasks run unguarded and exact repairs happen at Arnoldi
// step boundaries. Under MethodAFEIR an additional repair task is
// overlapped with each step's orthogonalisation reductions at low
// priority (Fig 2b): it recomputes still-intact poisoned pages in place
// (exact replacement data, so concurrent readers are unaffected) and
// clears their fault bits, hiding the recovery latency; whatever it could
// not reach is repaired at the boundary like FEIR.
//
// With Config.UsePrecond the solver runs left-preconditioned GMRES on
// M⁻¹ A x = M⁻¹ b with the block-Jacobi M: the cycle starts from the
// protected preconditioned residual z = M⁻¹ g (recoverable from g by
// partial application, §3.2) and every Arnoldi step applies M⁻¹ to the
// SpMV result in place (w is regenerated per step, so it needs no
// protection). The Hessenberg redundancy becomes
//
//	v_l = (M⁻¹ A v_{l-1} - Σ_{k<l} h_{k,l-1} v_k) / h_{l,l-1}
//
// whose only new ingredient is a per-page M⁻¹_pp application on the
// rebuilt SpMV rows — block diagonality keeps the relation page-local.
// The x/g pair keeps the UNpreconditioned g = b - A x relation, and
// convergence is still declared on the true residual.
type GMRESSolver struct {
	cfg     Config
	restart int
	a       *sparse.CSR
	b       []float64
	bnorm   float64
	layout  sparse.BlockLayout
	np      int
	space   *pagemem.Space
	x, g    *pagemem.Vector
	z       *pagemem.Vector // preconditioned residual M⁻¹ g (UsePrecond)
	v       []*pagemem.Vector
	w       []float64     // unprotected per-step scratch
	hCopy   *sparse.Dense // pristine H, the redundancy store
	pre     *precond.BlockJacobi
	blocks  *sparse.BlockSolverCache
	conn    [][]int
	rel     *Relations
	stats   Stats

	rt      *taskrt.Runtime
	eng     *engine.Engine
	dotPart *engine.Partial
	resid   []float64 // full-length true-residual scratch (reused)
	pol     policyState

	zeta  float64 // ||z|| of the current cycle (reliable scalar)
	steps int     // completed Arnoldi steps in the current cycle
}

// NewGMRES builds a resilient GMRES(m) solver. restart m must satisfy
// m+3 <= pagemem.MaxVectors.
func NewGMRES(a *sparse.CSR, b []float64, restart int, cfg Config) (*GMRESSolver, error) {
	if a.N != a.M {
		return nil, fmt.Errorf("core: non-square matrix %dx%d", a.N, a.M)
	}
	if len(b) != a.N {
		return nil, fmt.Errorf("core: rhs length %d for n=%d", len(b), a.N)
	}
	if restart <= 0 {
		restart = 30
	}
	fixed := 3 // x, g, v_0..v_m
	if cfg.UsePrecond {
		fixed = 4 // plus the protected preconditioned residual z
	}
	if restart+fixed > pagemem.MaxVectors {
		return nil, fmt.Errorf("core: restart %d exceeds protectable vectors (max %d)", restart, pagemem.MaxVectors-fixed)
	}
	sv := &GMRESSolver{
		cfg:     cfg,
		restart: restart,
		a:       a,
		b:       append([]float64(nil), b...),
		layout:  sparse.BlockLayout{N: a.N, BlockSize: cfg.pageDoubles()},
	}
	sv.bnorm = sparse.Norm2(b)
	if sv.bnorm == 0 {
		sv.bnorm = 1
	}
	sv.np = sv.layout.NumBlocks()
	sv.space = pagemem.NewSpace(a.N, cfg.pageDoubles())
	sv.x = sv.space.AddVector("x")
	sv.g = sv.space.AddVector("g")
	if cfg.UsePrecond {
		sv.z = sv.space.AddVector("z")
	}
	sv.v = make([]*pagemem.Vector, restart+1)
	for i := range sv.v {
		sv.v[i] = sv.space.AddVector(fmt.Sprintf("v%d", i))
	}
	sv.w = make([]float64, a.N)
	sv.hCopy = sparse.NewDense(restart+1, restart)
	if cfg.Blocks != nil {
		if cfg.Blocks.A != a || cfg.Blocks.Layout != sv.layout || cfg.Blocks.SPD {
			return nil, fmt.Errorf("core: shared block cache mismatch (want matrix %p layout %+v spd=false, have %p %+v spd=%v)",
				a, sv.layout, cfg.Blocks.A, cfg.Blocks.Layout, cfg.Blocks.SPD)
		}
		sv.blocks = cfg.Blocks
	} else {
		sv.blocks = sparse.NewBlockSolverCache(a, sv.layout, false)
	}
	if cfg.UsePrecond {
		// Reuse the recovery cache's LU factorizations as the
		// preconditioner blocks — they are the same A_pp (§5.1).
		pre, err := precond.FromCache(sv.blocks)
		if err != nil {
			return nil, fmt.Errorf("core: block-Jacobi setup: %w", err)
		}
		sv.pre = pre
	}
	sv.dotPart = engine.NewPartial(sv.np)
	sv.resid = make([]float64, a.N)
	sv.pol.allowed = policyAllowed(cfg.Method, recoverySwitchSet)
	return sv, nil
}

// Space exposes the fault domain for error injection.
func (sv *GMRESSolver) Space() *pagemem.Space { return sv.space }

// DynamicVectors lists the vectors injections cover (§5.3).
func (sv *GMRESSolver) DynamicVectors() []*pagemem.Vector {
	vs := []*pagemem.Vector{sv.x, sv.g}
	if sv.z != nil {
		vs = append(vs, sv.z)
	}
	return append(vs, sv.v...)
}

// Run executes the resilient solve and returns the result and solution.
func (sv *GMRESSolver) Run() (Result, []float64, error) {
	start := time.Now()
	if sv.cfg.RT != nil {
		sv.rt = sv.cfg.RT // externally owned (shared pool): never closed here
	} else {
		sv.rt = taskrt.New(sv.cfg.workers())
		defer sv.rt.Close()
	}
	sv.eng = engine.New(sv.a, sv.layout, sv.rt, false, 0)
	sv.eng.RecoveryPriority = sv.cfg.overlapPriority()
	sv.conn = sv.eng.Conn
	sv.rel = &Relations{a: sv.a, layout: sv.layout, conn: sv.conn, blocks: sv.blocks, b: sv.b,
		scratch: make([]float64, sv.cfg.pageDoubles()), stats: &sv.stats}

	tol := sv.cfg.tol()
	maxIter := sv.cfg.maxIter(sv.a.N)
	m := sv.restart

	h := sparse.NewDense(m+1, m) // working copy, Givens-rotated
	cs := make([]float64, m)
	sn := make([]float64, m)
	res := make([]float64, m+1)
	y := make([]float64, m)

	totalIt := 0
	restarts := 0
	converged := false
	sv.pol.lastEvents = sv.space.FaultCount() + sv.space.SDCDetected()
	for totalIt < maxIter {
		if sv.cfg.Cancelled != nil && sv.cfg.Cancelled() {
			return sv.finish(totalIt, restarts, false, start), sv.x.Data, ErrCancelled
		}
		if sv.cfg.Policy != nil {
			applyPolicy(totalIt, &sv.cfg, &sv.pol, sv.space, &sv.stats, nil)
		}
		sv.boundary()
		// Start of cycle: g = b - A x (full rebuild validates g), fused
		// with the <g,g> partials — the cycle residual norm and, when
		// unpreconditioned, the Arnoldi ζ ride the rebuild's own pass.
		sv.dotPart.ResetMissing()
		sv.rt.WaitAll(sv.eng.RawOp("g,<g,g>", nil, func(p, lo, hi int) {
			sv.a.MulVecRange(sv.x.Data, sv.g.Data, lo, hi)
			var gg float64
			for i := lo; i < hi; i++ {
				d := sv.b[i] - sv.g.Data[i]
				sv.g.Data[i] = d
				gg += d * d
			}
			sv.dotPart.Store(p, gg)
		}))
		sv.clearFailed(sv.g)
		gg, _ := sv.dotPart.SumAvailable()
		trueRel := math.Sqrt(math.Max(gg, 0)) / sv.bnorm
		if sv.cfg.OnIteration != nil {
			sv.cfg.OnIteration(totalIt, trueRel)
		}
		if trueRel < tol {
			converged = true
			break
		}
		// The Arnoldi start vector: g, or the preconditioned residual
		// z = M⁻¹ g (full overwrite, so the rebuild heals z losses too).
		src := sv.g
		sv.zeta = math.Sqrt(math.Max(gg, 0))
		if sv.pre != nil {
			sv.rt.WaitAll(sv.eng.RawApplyPrecond("z", nil, sv.pre, sv.g.Data, sv.z.Data))
			sv.clearFailed(sv.z)
			src = sv.z
			sv.zeta = math.Sqrt(sv.eng.Dot("<z,z>", src.Data, src.Data, sv.dotPart))
		}
		zeta := sv.zeta
		sv.rt.WaitAll(sv.eng.RawOp("v0", nil, func(p, lo, hi int) {
			for i := lo; i < hi; i++ {
				sv.v[0].Data[i] = src.Data[i] / zeta
			}
		}))
		sv.clearFailed(sv.v[0])
		sv.steps = 0
		for i := range res {
			res[i] = 0
		}
		res[0] = sv.zeta

		steps := 0
		for l := 0; l < m && totalIt < maxIter; l++ {
			sv.boundary() // Arnoldi-step boundary: repair before using data
			// w = A v_l (then w = M⁻¹ w in place when preconditioned),
			// chunked; under AFEIR the repair task overlaps with the
			// orthogonalisation reductions that follow.
			wH := sv.eng.RawSpMV("w", nil, sv.v[l].Data, sv.w)
			if sv.pre != nil {
				wH = sv.eng.RawApplyPrecond("Mw", wH, sv.pre, sv.w, sv.w)
			}
			var rOverlap *taskrt.Handle
			if sv.cfg.Method == MethodAFEIR && !(sv.cfg.OnDemandRecovery && !sv.space.AnyFault()) {
				liveSteps := sv.steps // snapshot: the step counter advances mid-phase
				//due:recovery
				rOverlap = sv.eng.OverlappedRecovery("rV", wH, func() { sv.repairPasses(liveSteps) })
			}
			sv.rt.WaitAll(wH)
			// Modified Gram-Schmidt: each h_{k,l} is a chunked reduction
			// followed by a chunked axpy; the LAST axpy is fused with the
			// normalisation norm <w,w>, saving one full pass over w.
			var wn2 float64
			for k := 0; k <= l; k++ {
				hk := sv.eng.Dot("<w,v>", sv.w, sv.v[k].Data, sv.dotPart)
				h.Set(k, l, hk)
				sv.hCopy.Set(k, l, hk) // redundancy store
				vk := sv.v[k].Data
				if k == l {
					wn2 = sv.eng.AxpyNorm("w-hv,<w,w>", -hk, vk, sv.w, sv.dotPart)
				} else {
					sv.rt.WaitAll(sv.eng.RawOp("w-hv", nil, func(p, lo, hi int) {
						sparse.AxpyRange(-hk, vk, sv.w, lo, hi)
					}))
				}
			}
			wn := math.Sqrt(math.Max(wn2, 0))
			h.Set(l+1, l, wn)
			sv.hCopy.Set(l+1, l, wn)
			steps = l + 1
			sv.steps = steps
			totalIt++
			if wn != 0 {
				sv.rt.WaitAll(sv.eng.RawOp("v+", nil, func(p, lo, hi int) {
					for i := lo; i < hi; i++ {
						sv.v[l+1].Data[i] = sv.w[i] / wn
					}
				}))
				sv.clearFailed(sv.v[l+1])
			}
			if rOverlap != nil {
				sv.rt.Wait(rOverlap)
			}
			for k := 0; k < l; k++ {
				hkl, hk1l := h.At(k, l), h.At(k+1, l)
				h.Set(k, l, cs[k]*hkl+sn[k]*hk1l)
				h.Set(k+1, l, -sn[k]*hkl+cs[k]*hk1l)
			}
			hll, hl1l := h.At(l, l), h.At(l+1, l)
			r := math.Hypot(hll, hl1l)
			if r == 0 {
				cs[l], sn[l] = 1, 0
			} else {
				cs[l], sn[l] = hll/r, hl1l/r
			}
			h.Set(l, l, r)
			h.Set(l+1, l, 0)
			res[l+1] = -sn[l] * res[l]
			res[l] = cs[l] * res[l]
			if sv.cfg.OnIteration != nil {
				sv.cfg.OnIteration(totalIt, math.Abs(res[l+1])/sv.bnorm)
			}
			if math.Abs(res[l+1])/sv.zeta < tol/10 || wn == 0 {
				break
			}
		}
		// y = R⁻¹ (rotated rhs); x += Σ y_l v_l.
		sv.boundary()
		for i := steps - 1; i >= 0; i-- {
			s := res[i]
			for j := i + 1; j < steps; j++ {
				s -= h.At(i, j) * y[j]
			}
			d := h.At(i, i)
			if d == 0 {
				return sv.finish(totalIt, restarts, converged, start), sv.x.Data, ErrRecurrenceBreakdown
			}
			y[i] = s / d
		}
		sv.rt.WaitAll(sv.eng.RawOp("x+", nil, func(p, lo, hi int) {
			for l := 0; l < steps; l++ {
				sparse.AxpyRange(y[l], sv.v[l].Data, sv.x.Data, lo, hi)
			}
		}))
		restarts++
		sv.steps = 0
	}
	return sv.finish(totalIt, restarts, converged, start), sv.x.Data, nil
}

func (sv *GMRESSolver) finish(it, restarts int, converged bool, start time.Time) Result {
	r := sv.resid
	sv.a.MulVec(sv.x.Data, r)
	sparse.Sub(sv.b, r, r)
	_ = restarts
	return Result{
		Converged:   converged,
		Iterations:  it,
		RelResidual: sparse.Norm2(r) / sv.bnorm,
		Elapsed:     time.Since(start),
		Stats:       sv.stats,
		WorkerTimes: sv.rt.WorkerTimes(),
	}
}

func (sv *GMRESSolver) clearFailed(v *pagemem.Vector) {
	for _, p := range v.FailedPages() {
		v.MarkRecovered(p)
	}
}

// boundary applies pending data losses with all workers quiescent and
// resolves every failed page: exact repairs for FEIR/AFEIR, iterate
// interpolation for Lossy, blank pages otherwise. Leaving a boundary no
// page is failed, which is what lets the compute tasks run unguarded.
func (sv *GMRESSolver) boundary() {
	evs := sv.space.ScramblePending()
	sv.stats.FaultsSeen += len(evs)
	if !sv.space.AnyFault() {
		return
	}
	switch sv.cfg.Method {
	case MethodFEIR, MethodAFEIR:
		sv.repairPasses(sv.steps)
	case MethodLossy:
		failed := sv.x.FailedPages()
		if len(failed) > 0 && LossyInterpolate(sv.a, sv.layout, sv.blocks, sv.b, sv.x.Data, failed) {
			sv.stats.LossyInterpolations += len(failed)
			for _, p := range failed {
				sv.x.MarkRecovered(p)
			}
			sv.stats.Restarts++
		}
	}
	// Unused basis slots (l > steps) will be overwritten: blank them.
	for l := sv.steps + 1; l < len(sv.v); l++ {
		for _, p := range sv.v[l].FailedPages() {
			sv.v[l].Remap(p)
			sv.v[l].MarkRecovered(p)
		}
	}
	// Anything else is unrecoverable related data: blank (a restart cycle
	// will rebuild the basis from x anyway).
	for _, v := range sv.space.Vectors() {
		for _, p := range v.FailedPages() {
			v.Remap(p)
			v.MarkRecovered(p)
			sv.stats.Unrecovered++
		}
	}
}

// repairPasses runs the §3.1.3 relations to a fixpoint: g = b - A x,
// x = A⁻¹(b - g), z = M⁻¹ g (preconditioned), v_0 = z/ζ (or g/ζ) and the
// Hessenberg redundancy for v_l up to the given completed step count. It
// is safe to run concurrently with reduction tasks (the AFEIR overlap):
// replacement data is exact, so readers of a page being repaired see
// values equal to the originals.
func (sv *GMRESSolver) repairPasses(steps int) {
	gV := engine.Vec{V: sv.g}
	xV := engine.Vec{V: sv.x}
	src := sv.g
	if sv.pre != nil {
		src = sv.z
	}
	for pass := 0; pass < 4; pass++ {
		progress := false
		for _, p := range sv.g.FailedPages() {
			if sv.rel.ForwardResidual(gV, 0, xV, 0, p) {
				progress = true
			}
		}
		for _, p := range sv.x.FailedPages() {
			if sv.rel.InverseIterate(xV, 0, gV, 0, p) {
				progress = true
			}
		}
		// z = M⁻¹ g by partial application (§3.2).
		if sv.pre != nil {
			zV := engine.Vec{V: sv.z}
			for _, p := range sv.z.FailedPages() {
				if sv.rel.PrecondApply(sv.pre, zV, 0, gV, 0, p) {
					progress = true
				}
			}
		}
		// v_0 = z / ζ (or g / ζ unpreconditioned).
		for _, p := range sv.v[0].FailedPages() {
			if steps == 0 || sv.zeta == 0 {
				break
			}
			if src.Failed(p) {
				continue
			}
			lo, hi := sv.layout.Range(p)
			for i := lo; i < hi; i++ {
				sv.v[0].Data[i] = src.Data[i] / sv.zeta
			}
			sv.v[0].MarkRecovered(p)
			sv.stats.RecoveredForward++
			progress = true
		}
		// v_l from the Hessenberg redundancy, page by page.
		for l := 1; l <= steps; l++ {
			vl := sv.v[l]
			if !vl.AnyFailed() {
				continue
			}
			hll := sv.hCopy.At(l, l-1)
			if hll == 0 {
				continue
			}
			for _, p := range vl.FailedPages() {
				// Needs v_{l-1} on the connected pages and v_k on page p.
				if sv.v[l-1].AnyFailedInPages(sv.conn[p]) {
					continue
				}
				bad := false
				for k := 0; k < l; k++ {
					if sv.v[k].Failed(p) {
						bad = true
						break
					}
				}
				if bad {
					continue
				}
				lo, hi := sv.layout.Range(p)
				buf := make([]float64, hi-lo)
				sv.a.MulVecRangeExcludingCols(sv.v[l-1].Data, buf, lo, hi, 0, 0)
				if sv.pre != nil {
					// Left preconditioning: the Arnoldi operator is
					// M⁻¹ A, and M⁻¹ is block-diagonal, so the rebuilt
					// rows just get the partial application too.
					if sv.pre.SolveBlockInPlace(p, buf) != nil {
						continue
					}
					sv.stats.PrecondPartialApplies++
				}
				for k := 0; k < l; k++ {
					hk := sv.hCopy.At(k, l-1)
					if hk == 0 {
						continue
					}
					vk := sv.v[k].Data
					for i := lo; i < hi; i++ {
						buf[i-lo] -= hk * vk[i]
					}
				}
				for i := lo; i < hi; i++ {
					vl.Data[i] = buf[i-lo] / hll
				}
				vl.MarkRecovered(p)
				sv.stats.RecoveredForward++
				progress = true
			}
		}
		if !progress {
			break
		}
	}
}
