package core

import (
	"repro/internal/engine"
	"repro/internal/sparse"
)

// relations bundles the Table 1 redundancy relations shared by every
// resilient solver (and the distributed layer): the forward and inverse
// repairs of the residual/iterate pair g = b - A x, and of a
// direction/matvec pair q = A d. Each method rebuilds exactly one page
// from data that is current at the stated versions; CG, BiCGStab and
// GMRES differ only in which versions pair up (double buffering shifts
// the q/d pairing by one iteration in BiCGStab) and in the method-specific
// relations layered on top (CG's coupled systems, GMRES's Hessenberg
// redundancy).
type Relations struct {
	a       *sparse.CSR
	layout  sparse.BlockLayout
	conn    [][]int
	blocks  *sparse.BlockSolverCache
	b       []float64
	scratch []float64
	stats   *Stats
}

// NewRelations builds the relation set for one solver (or one rank of
// the distributed substrate). scratch must hold at least one page of
// elements; stats receives the recovery counters. The blocks cache must
// be safe for the caller's concurrency pattern — rank-parallel recovery
// prefactorizes it so lookups are read-only.
func NewRelations(a *sparse.CSR, layout sparse.BlockLayout, conn [][]int, blocks *sparse.BlockSolverCache, b, scratch []float64, stats *Stats) *Relations {
	return &Relations{a: a, layout: layout, conn: conn, blocks: blocks, b: b, scratch: scratch, stats: stats}
}

// ForwardResidual rebuilds page p of g at gVer from g = b - A x,
// requiring x current at xVer on the connected pages (Table 1, row 3 lhs).
func (r *Relations) ForwardResidual(g engine.Vec, gVer int64, x engine.Vec, xVer int64, p int) bool {
	if !x.ConnCurrent(r.conn[p], xVer, -1) {
		return false
	}
	lo, hi := r.layout.Range(p)
	r.a.MulVecRangeExcludingCols(x.V.Data, r.scratch, lo, hi, 0, 0)
	for i := lo; i < hi; i++ {
		g.V.Data[i] = r.b[i] - r.scratch[i-lo]
	}
	r.MarkRecovered(g, p, gVer)
	r.stats.RecoveredForward++
	return true
}

// InverseIterate rebuilds page p of x at xVer from
// A_pp x_p = b_p - g_p - Σ_{j≠p} A_pj x_j (Table 1, row 3 rhs), requiring
// g current at gVer on page p and x current at xVer on the other
// connected pages.
func (r *Relations) InverseIterate(x engine.Vec, xVer int64, g engine.Vec, gVer int64, p int) bool {
	if !g.Current(p, gVer) {
		return false
	}
	if !x.ConnCurrent(r.conn[p], xVer, p) {
		return false
	}
	lo, hi := r.layout.Range(p)
	r.a.MulVecRangeExcludingCols(x.V.Data, r.scratch, lo, hi, lo, hi)
	for i := lo; i < hi; i++ {
		r.scratch[i-lo] = r.b[i] - g.V.Data[i] - r.scratch[i-lo]
	}
	if err := r.blocks.SolveDiagBlock(p, r.scratch[:hi-lo]); err != nil {
		return false
	}
	copy(x.V.Data[lo:hi], r.scratch[:hi-lo])
	r.MarkRecovered(x, p, xVer)
	r.stats.RecoveredInverse++
	return true
}

// InverseDirection rebuilds page p of d at dVer from
// A_pp d_p = q_p - Σ_{j≠p} A_pj d_j (Table 1, row 1 rhs), requiring q
// current at qVer on page p (for old-direction recovery that is the old q
// the double buffering of Listing 2 preserves) and the other connected
// pages of d current at dVer.
func (r *Relations) InverseDirection(d engine.Vec, dVer int64, q engine.Vec, qVer int64, p int) bool {
	if !q.Current(p, qVer) {
		return false
	}
	if !d.ConnCurrent(r.conn[p], dVer, p) {
		return false
	}
	lo, hi := r.layout.Range(p)
	r.a.MulVecRangeExcludingCols(d.V.Data, r.scratch, lo, hi, lo, hi)
	for i := lo; i < hi; i++ {
		r.scratch[i-lo] = q.V.Data[i] - r.scratch[i-lo]
	}
	if err := r.blocks.SolveDiagBlock(p, r.scratch[:hi-lo]); err != nil {
		return false
	}
	copy(d.V.Data[lo:hi], r.scratch[:hi-lo])
	r.MarkRecovered(d, p, dVer)
	r.stats.RecoveredInverse++
	return true
}

// ForwardSpMV rebuilds page p of q at qVer by re-running the SpMV rows
// q = A d (Table 1, row 1 lhs), requiring d current at dVer on the
// connected pages.
func (r *Relations) ForwardSpMV(q engine.Vec, qVer int64, d engine.Vec, dVer int64, p int) bool {
	if !d.ConnCurrent(r.conn[p], dVer, -1) {
		return false
	}
	lo, hi := r.layout.Range(p)
	r.a.MulVecRange(d.V.Data, q.V.Data, lo, hi)
	r.MarkRecovered(q, p, qVer)
	r.stats.RecomputedQ++
	return true
}

// PrecondApply rebuilds page p of z at zVer by a partial application of
// the block-diagonal preconditioner to src (§3.2): z_p = M_pp⁻¹ src_p.
// Block diagonality means the relation needs src current at srcVer on
// page p only — no connectivity, no halo.
func (r *Relations) PrecondApply(m engine.BlockApplier, z engine.Vec, zVer int64, src engine.Vec, srcVer int64, p int) bool {
	if !src.Current(p, srcVer) {
		return false
	}
	if err := m.ApplyBlock(p, src.V.Data, z.V.Data); err != nil {
		return false
	}
	r.MarkRecovered(z, p, zVer)
	r.stats.PrecondPartialApplies++
	return true
}

// PrecondUnapply rebuilds page p of d at dVer from its surviving
// preconditioned image d̂ = M⁻¹ d: d_p = M_pp d̂_p, requiring d̂ current at
// hatVer on page p. The inverse partner of PrecondApply, again rank- and
// page-local by block diagonality.
func (r *Relations) PrecondUnapply(m engine.BlockMultiplier, d engine.Vec, dVer int64, dhat engine.Vec, hatVer int64, p int) bool {
	if !dhat.Current(p, hatVer) {
		return false
	}
	if err := m.MulBlock(p, dhat.V.Data, d.V.Data); err != nil {
		return false
	}
	r.MarkRecovered(d, p, dVer)
	r.stats.RecoveredInverse++
	return true
}

// MarkRecovered clears the fault bit and stamps the page (stampless
// vectors just clear the bit).
func (r *Relations) MarkRecovered(v engine.Vec, p int, ver int64) {
	v.V.MarkRecovered(p)
	if v.S != nil {
		v.S[p].Store(ver)
	}
}
