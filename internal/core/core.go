// Package core implements the paper's primary contribution: iterative
// solvers protected against memory-page DUE by exact forward interpolation
// recoveries, either executed in the critical path (FEIR) or overlapped
// with solver computation by a task-based runtime (AFEIR), together with
// the comparator recovery schemes of §4 — Trivial forward recovery, Lossy
// Restart (Langou et al.'s block-Jacobi interpolation + restart) and
// periodic checkpoint/rollback to local disk.
//
// The flagship implementation is the task-parallel resilient Conjugate
// Gradient of §3.3 (plain and block-Jacobi preconditioned), built on
// internal/taskrt with the Figure 1(b) task graph. Resilient BiCGStab and
// GMRES, for which the paper derives the redundancy relations (§3.1.2,
// §3.1.3), run as task graphs on the same engine in bicgstab.go and
// gmres.go — each with a block-Jacobi preconditioned variant
// (Config.UsePrecond) whose preconditioned vectors recover by partial
// application (§3.2).
package core

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/defaults"
	"repro/internal/sparse"
	"repro/internal/taskrt"
)

// ErrCancelled is returned by Run when Config.Cancelled reports true at an
// iteration boundary. The solver state is left consistent (the prepared
// graph is quiescent), so a pooled instance can be reset and reused.
var ErrCancelled = errors.New("core: solve cancelled")

// Method selects the resilience scheme of a solver run (§5.1).
type Method int

const (
	// MethodIdeal is the baseline with no resilience mechanisms and no
	// error handling at all; the reference for all overhead numbers.
	MethodIdeal Method = iota
	// MethodTrivial keeps running after a DUE by mapping a blank page over
	// the lost one (§4.1). No convergence guarantees.
	MethodTrivial
	// MethodLossy is the Lossy Restart (§4.3): block-Jacobi interpolation
	// of lost iterate pages, then a restart of the method.
	MethodLossy
	// MethodCheckpoint is periodic checkpoint/rollback to local disk
	// (§4.2) of the iterate and search direction.
	MethodCheckpoint
	// MethodFEIR is the Forward Exact Interpolation Recovery with recovery
	// tasks in the critical path (§3.3.2, Fig 2a).
	MethodFEIR
	// MethodAFEIR is the asynchronous variant: recovery tasks overlapped
	// with reductions at lower priority (Fig 2b).
	MethodAFEIR
)

// String returns the paper's name for the method.
func (m Method) String() string {
	switch m {
	case MethodIdeal:
		return "Ideal"
	case MethodTrivial:
		return "Trivial"
	case MethodLossy:
		return "Lossy"
	case MethodCheckpoint:
		return "ckpt"
	case MethodFEIR:
		return "FEIR"
	case MethodAFEIR:
		return "AFEIR"
	}
	return fmt.Sprintf("Method(%d)", int(m))
}

// Methods lists all methods in the paper's comparison order.
var Methods = []Method{MethodAFEIR, MethodFEIR, MethodLossy, MethodCheckpoint, MethodTrivial}

// Fallback selects what FEIR/AFEIR do with errors that no redundancy
// relation can repair (simultaneous errors on related data, §2.4 case 2).
type Fallback int

const (
	// FallbackIgnore reproduces the paper's evaluation setting (§5.1):
	// "no fallback is used ... simultaneous errors on related data are
	// simply ignored" — the page is replaced by a blank one and counted
	// in Stats.Unrecovered.
	FallbackIgnore Fallback = iota
	// FallbackLossy applies the §2.4 recommendation: a Lossy-style
	// block-Jacobi interpolation of the iterate page and a restart.
	FallbackLossy
)

// Config parametrises a resilient solver run.
type Config struct {
	// Method is the resilience scheme. Default MethodIdeal.
	Method Method
	// Workers is the task-runtime pool size. 0 means GOMAXPROCS. The
	// paper's single-node runs use 8 (§5.1).
	Workers int
	// PageDoubles is the fault/recovery granularity in float64 elements.
	// 0 means 512 (a 4 KiB page, §2.3).
	PageDoubles int
	// Tol is the relative residual convergence threshold; 0 means 1e-10
	// (§5.4).
	Tol float64
	// MaxIter bounds iterations; 0 means 10*n.
	MaxIter int
	// UsePrecond enables the block-Jacobi preconditioned variant (PCG)
	// with blocks of PageDoubles elements (§5.1).
	UsePrecond bool
	// CheckpointInterval is the checkpoint period in iterations for
	// MethodCheckpoint. 0 means the Young/Daly optimum computed from
	// ExpectedMTBE and the measured checkpoint write time.
	CheckpointInterval int
	// ExpectedMTBE is the error rate assumed by the checkpoint-interval
	// optimisation (it does not drive any injection).
	ExpectedMTBE time.Duration
	// Disk is the simulated local disk for checkpoints. nil means a
	// default disk (see NewSimDisk) when MethodCheckpoint is used.
	Disk *SimDisk
	// Fallback selects the unrecoverable-error policy for FEIR/AFEIR.
	Fallback Fallback
	// OnDemandRecovery implements the runtime support the paper's §5.2/§7
	// calls for: recovery tasks are instantiated only when a DUE has been
	// signalled, removing most of the no-error overhead of FEIR and
	// widening AFEIR's coverage. The paper measures the always-on
	// variant; this flag is the proposed improvement.
	OnDemandRecovery bool
	// OnIteration, when non-nil, is called once per iteration with the
	// relative recurrence residual — the Figure 3 trace hook.
	OnIteration func(it int, relRes float64)
	// RT, when non-nil, is an externally owned task runtime (typically the
	// process-wide taskrt.Shared pool). The solver submits to it but never
	// closes it, and builds its engine and prepared task graphs once —
	// subsequent Runs on the same instance replay them. When nil the
	// solver owns a private pool per Run (the historical behaviour).
	RT *taskrt.Runtime
	// Blocks, when non-nil, is a prefactorized diagonal-block solver cache
	// shared across solver instances for the same operator; the
	// constructor uses it instead of building (and factorizing) its own.
	// It must have been built for the same matrix, block size and SPD
	// setting — constructors reject mismatches loudly.
	Blocks *sparse.BlockSolverCache
	// Cancelled, when non-nil, is polled at iteration boundaries; when it
	// reports true the solve stops and Run returns ErrCancelled. The
	// serving layer wires context.Done into this.
	Cancelled func() bool
	// TaskPriority is the base priority of the solver's compute tasks on
	// the shared runtime (higher runs first; 0 keeps the per-worker FIFO
	// fast path). Overlapped recovery tasks always run below every
	// request's compute tier.
	TaskPriority int
	// ABFT enables the checksum-carrying kernel variants: every produced
	// page stores an XOR-of-bits checksum in the producing pass, and
	// consumers verify it before reading, turning silent bit flips into
	// Poisons the exact recovery relations repair. Only effective with
	// the resilient methods (FEIR/AFEIR), which own the recovery
	// machinery the detections hand over to.
	ABFT bool
	// Policy, when non-nil, is consulted once per iteration at a
	// fixpoint (all tasks quiescent, pending losses applied) and may
	// switch the resilience method or retune the checkpoint interval for
	// the following iterations. internal/policy provides the
	// perfmodel-driven adaptive controller.
	Policy ResiliencePolicy
}

// ResiliencePolicy decides, at iteration fixpoints, which resilience
// method the next iterations should run. newEvents is the number of
// fault events (DUE poisons + SDC detections) observed since the
// previous call; allowed lists the methods the running solver can switch
// to safely (always including cur). The returned method is ignored
// unless it is in allowed; the returned checkpoint interval (iterations)
// applies only when cur is MethodCheckpoint, 0 keeping the current one.
type ResiliencePolicy interface {
	Decide(it, newEvents int, cur Method, allowed []Method) (Method, int)
}

// overlapPriority is the priority of overlapped (AFEIR) recovery tasks:
// strictly below the compute tier of every request, preserving the §3.3.2
// "recoveries after reductions" ordering under concurrent solves.
func (c Config) overlapPriority() int {
	if c.TaskPriority-1 < 0 {
		return c.TaskPriority - 1
	}
	return -1
}

func (c Config) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return 0 // taskrt.New treats 0 as GOMAXPROCS
}

func (c Config) pageDoubles() int { return defaults.PageDoublesOr(c.PageDoubles) }

func (c Config) tol() float64 { return defaults.TolOr(c.Tol) }

func (c Config) maxIter(n int) int { return defaults.MaxIterOr(c.MaxIter, n) }

// Stats counts the resilience activity of one run.
type Stats struct {
	// FaultsSeen is the number of page DUEs that became visible to the
	// solver (applied injections).
	FaultsSeen int
	// RecoveredForward counts pages rebuilt by re-running the forward
	// relation that produced them (lhs rows of Table 1).
	RecoveredForward int
	// RecoveredInverse counts pages rebuilt by solving an inverted block
	// relation with a factorized diagonal block (rhs rows of Table 1).
	RecoveredInverse int
	// RecoveredCoupled counts pages rebuilt via the combined multi-error
	// block system of §2.4.
	RecoveredCoupled int
	// RecomputedQ counts q row-pages recomputed by SpMV after direction
	// recovery.
	RecomputedQ int
	// PrecondPartialApplies counts partial block-Jacobi applications used
	// to rebuild preconditioned-vector pages (§3.2).
	PrecondPartialApplies int
	// ContributionsLost counts page contributions missing from a scalar
	// reduction at the time it ran — AFEIR's vulnerability window (§5.4).
	ContributionsLost int
	// Unrecovered counts pages abandoned to a blank remap because no
	// relation could rebuild them (FallbackIgnore policy).
	Unrecovered int
	// LossyInterpolations counts block-Jacobi iterate interpolations
	// (Lossy Restart, or FallbackLossy).
	LossyInterpolations int
	// Restarts counts solver restarts (Lossy Restart, FallbackLossy and
	// consistency refreshes).
	Restarts int
	// Rollbacks counts checkpoint restores.
	Rollbacks int
	// CheckpointsWritten counts checkpoint writes.
	CheckpointsWritten int
	// SDCInjected counts silent bit flips applied to the solver's pages.
	SDCInjected int
	// SDCDetected counts silent flips caught by ABFT checksum
	// verification (each one also appears in FaultsSeen once its Poison
	// is applied).
	SDCDetected int
	// PolicySwitches counts resilience-method changes made by the
	// adaptive policy during the run.
	PolicySwitches int
}

// Add accumulates other into s.
func (s *Stats) Add(o Stats) {
	s.FaultsSeen += o.FaultsSeen
	s.RecoveredForward += o.RecoveredForward
	s.RecoveredInverse += o.RecoveredInverse
	s.RecoveredCoupled += o.RecoveredCoupled
	s.RecomputedQ += o.RecomputedQ
	s.PrecondPartialApplies += o.PrecondPartialApplies
	s.ContributionsLost += o.ContributionsLost
	s.Unrecovered += o.Unrecovered
	s.LossyInterpolations += o.LossyInterpolations
	s.Restarts += o.Restarts
	s.Rollbacks += o.Rollbacks
	s.CheckpointsWritten += o.CheckpointsWritten
	s.SDCInjected += o.SDCInjected
	s.SDCDetected += o.SDCDetected
	s.PolicySwitches += o.PolicySwitches
}

// Result reports the outcome of a resilient solve.
type Result struct {
	Converged   bool
	Iterations  int
	RelResidual float64 // true relative residual, recomputed at the end
	Elapsed     time.Duration
	Stats       Stats
	// WorkerTimes is the per-worker useful/runtime/idle breakdown from
	// the task runtime (Table 3).
	WorkerTimes []taskrt.StateTimes
}
