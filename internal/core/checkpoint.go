package core

import (
	"math"
	"time"

	"repro/internal/sparse"
)

// checkpointer implements the periodic checkpoint/rollback comparator
// (§4.2): every interval iterations the iterate and search direction —
// "the minimum to allow rolling back" — are written to the (simulated)
// local disk. On a detected DUE the vectors are restored, the residual is
// recomputed from the restored iterate, and execution resumes from the
// checkpointed state. The β scalar lives in reliable memory (the error
// model only kills memory pages, §5.3) and is stored with the checkpoint.
type checkpointer struct {
	disk     *SimDisk
	interval int           // fixed period in iterations; 0 = Young/Daly
	mtbe     time.Duration // expected MTBE for the Young/Daly optimum
	bytes    int

	haveCkpt bool
	lastIter int
	x, d     []float64
	beta     float64
}

func newCheckpointer(disk *SimDisk, interval int, mtbe time.Duration, n int, _ bool) *checkpointer {
	return &checkpointer{
		disk:     disk,
		interval: interval,
		mtbe:     mtbe,
		bytes:    2 * n * 8, // x and d, float64
		x:        make([]float64, n),
		d:        make([]float64, n),
		lastIter: -1 << 30,
	}
}

// currentInterval returns the checkpoint period in iterations: the fixed
// configuration when given, otherwise the Young/Daly optimum
// T_opt = sqrt(2 * C * MTBE) converted to iterations with the measured
// mean iteration time (Bougeret et al. [5] in the paper).
func (c *checkpointer) currentInterval(iter int, elapsed time.Duration) int {
	if c.interval > 0 {
		return c.interval
	}
	if c.mtbe <= 0 || iter == 0 {
		return 1000 // the paper's default no-error-information period
	}
	writeTime := c.disk.WriteTime(c.bytes)
	tOpt := math.Sqrt(2 * writeTime.Seconds() * c.mtbe.Seconds())
	iterTime := elapsed.Seconds() / float64(iter)
	if iterTime <= 0 {
		return 1000
	}
	iv := int(tOpt / iterTime)
	if iv < 1 {
		iv = 1
	}
	return iv
}

// maybeWrite checkpoints at iteration boundaries when the period elapsed.
func (c *checkpointer) maybeWrite(s *CG, iter int, elapsed time.Duration) {
	iv := c.currentInterval(iter, elapsed)
	if iter-c.lastIter < iv && c.haveCkpt {
		return
	}
	c.disk.Write(c.bytes)
	copy(c.x, s.x.Data)
	copy(c.d, s.d[0].Data)
	c.beta = s.beta
	c.haveCkpt = true
	c.lastIter = iter
	s.stats.CheckpointsWritten++
}

// rollback restores the last checkpoint and rebuilds the derived state:
// g = b - A x, z = M⁻¹ g, ε = <g,g>, ρ = <z,g>.
func (c *checkpointer) rollback(s *CG) {
	if !c.haveCkpt {
		// No checkpoint yet: restart from scratch (x = 0).
		for i := range s.x.Data {
			s.x.Data[i] = 0
		}
		for i := range s.d[0].Data {
			s.d[0].Data[i] = 0
		}
		s.beta = 0
		s.restartPending = true
	} else {
		c.disk.Read(c.bytes)
		copy(s.x.Data, c.x)
		copy(s.d[0].Data, c.d)
		s.beta = c.beta
		s.restartPending = false
	}
	s.space.ClearAll()
	// Rebuild the derived vectors from the restored iterate.
	s.a.MulVec(s.x.Data, s.g.Data)
	sparse.Sub(s.b, s.g.Data, s.g.Data)
	if s.pre != nil {
		s.pre.Apply(s.g.Data, s.z.Data)
		s.rho = sparse.Dot(s.z.Data, s.g.Data)
	}
	s.epsGG = sparse.Dot(s.g.Data, s.g.Data)
	s.stats.Rollbacks++
}
