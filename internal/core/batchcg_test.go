package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/engine"
	"repro/internal/matgen"
	"repro/internal/sparse"
	"repro/internal/taskrt"
)

// The batched-solve contract at the solver level: each column of a
// BatchCG run IS the unbatched CG run on that right-hand side — same
// iteration count, bitwise the same solution — and under DUE storms the
// FEIR/AFEIR recovery preserves per-column convergence exactly as the
// scalar solver's storm tests demand.

func batchTestRHS(n, cols int) [][]float64 {
	rhs := make([][]float64, cols)
	for j := range rhs {
		rhs[j] = matgen.RandomVector(n, int64(42+j))
	}
	return rhs
}

func TestBatchCGCleanMatchesUnbatchedPerColumn(t *testing.T) {
	a, _ := testSystem()
	rhs := batchTestRHS(a.N, 3)
	for _, m := range []Method{MethodIdeal, MethodFEIR, MethodAFEIR} {
		// Width 4 with 3 bound columns: the padding slot rides along retired.
		bcg, err := NewBatchCG(a, rhs, 4, testConfig(m))
		if err != nil {
			t.Fatal(err)
		}
		bres, err := bcg.Run()
		if err != nil {
			t.Fatal(err)
		}
		if len(bres.Columns) != 3 {
			t.Fatalf("%v: %d columns", m, len(bres.Columns))
		}
		for j, col := range bres.Columns {
			if !col.Converged {
				t.Fatalf("%v col %d did not converge: %+v", m, j, col)
			}
			cg, err := NewCG(a, rhs[j], testConfig(m))
			if err != nil {
				t.Fatal(err)
			}
			sres, err := cg.Run()
			if err != nil {
				t.Fatal(err)
			}
			if col.Iterations != sres.Iterations {
				t.Fatalf("%v col %d: batch %d vs scalar %d iterations",
					m, j, col.Iterations, sres.Iterations)
			}
			want := cg.Solution()
			got := make([]float64, a.N)
			bcg.SolutionInto(j, got)
			for i := range got {
				if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
					t.Fatalf("%v col %d row %d: batch %v vs scalar %v",
						m, j, i, got[i], want[i])
				}
			}
			if col.RelResidual > 1e-9 {
				t.Fatalf("%v col %d residual %v", m, j, col.RelResidual)
			}
		}
		if bres.Stats.FaultsSeen != 0 || bres.Stats.Unrecovered != 0 {
			t.Fatalf("%v phantom faults: %+v", m, bres.Stats)
		}
	}
}

func TestBatchCGStormRecoversEveryColumn(t *testing.T) {
	a, _ := testSystem()
	rhs := batchTestRHS(a.N, 4)
	for _, m := range []Method{MethodFEIR, MethodAFEIR} {
		clean, err := NewBatchCG(a, rhs, 4, testConfig(m))
		if err != nil {
			t.Fatal(err)
		}
		cres, err := clean.Run()
		if err != nil {
			t.Fatal(err)
		}
		vectors := []string{"x", "g", "q", "d0", "d1"}
		for seed := int64(0); seed < 6; seed++ {
			rng := rand.New(rand.NewSource(seed))
			count := 1 + int(seed)%5 // storms of 1..5 DUEs
			var inj []injection
			for k := 0; k < count; k++ {
				inj = append(inj, injection{
					it:   2 + rng.Intn(50),
					vec:  vectors[rng.Intn(len(vectors))],
					page: rng.Intn(25),
				})
			}
			bcg, err := NewBatchCG(a, rhs, 4, testConfig(m))
			if err != nil {
				t.Fatal(err)
			}
			bcg.SetOnIteration(poisonAt(t, bcg.Space(), inj, nil))
			bres, err := bcg.Run()
			if err != nil {
				t.Fatal(err)
			}
			if bres.Stats.FaultsSeen == 0 {
				t.Fatalf("%v seed %d: no faults landed", m, seed)
			}
			for j, col := range bres.Columns {
				if !col.Converged {
					t.Fatalf("%v seed %d col %d did not converge: %+v inj %+v",
						m, seed, j, col, inj)
				}
				if col.RelResidual > 1e-8 {
					t.Fatalf("%v seed %d col %d residual %v", m, seed, j, col.RelResidual)
				}
				// Exact recovery preserves the convergence rate (§2.3):
				// when nothing fell through to the blank fallback or a
				// restart, every column finishes within a few iterations
				// of its clean run.
				if bres.Stats.Unrecovered == 0 && bres.Stats.Restarts == 0 {
					if d := col.Iterations - cres.Columns[j].Iterations; d < -3 || d > 3 {
						t.Fatalf("%v seed %d col %d: %d vs clean %d iterations (inj %+v)",
							m, seed, j, col.Iterations, cres.Columns[j].Iterations, inj)
					}
				}
			}
		}
	}
}

func TestBatchCGRejections(t *testing.T) {
	a, _ := testSystem()
	rhs := batchTestRHS(a.N, 2)
	bad := []struct {
		name string
		mut  func(*Config)
		rhs  [][]float64
		w    int
	}{
		{"lossy method", func(c *Config) { c.Method = MethodLossy }, rhs, 2},
		{"checkpoint method", func(c *Config) { c.Method = MethodCheckpoint }, rhs, 2},
		{"precond", func(c *Config) { c.UsePrecond = true }, rhs, 2},
		{"abft", func(c *Config) { c.ABFT = true }, rhs, 2},
		{"lossy fallback", func(c *Config) { c.Fallback = FallbackLossy }, rhs, 2},
		{"width zero", func(c *Config) {}, rhs, 0},
		{"width over max", func(c *Config) {}, rhs, sparse.MaxBatchWidth + 1},
		{"too many rhs", func(c *Config) {}, batchTestRHS(a.N, 3), 2},
		{"short rhs column", func(c *Config) {}, [][]float64{make([]float64, a.N-1)}, 2},
	}
	for _, tc := range bad {
		cfg := testConfig(MethodFEIR)
		tc.mut(&cfg)
		if _, err := NewBatchCG(a, tc.rhs, tc.w, cfg); err == nil {
			t.Fatalf("%s: no error", tc.name)
		}
	}
}

func TestBatchCGRebindReusesPreparedGraph(t *testing.T) {
	a, _ := testSystem()
	rt := taskrt.New(4)
	defer rt.Close()
	cfg := testConfig(MethodFEIR)
	cfg.RT = rt

	bcg, err := NewBatchCG(a, batchTestRHS(a.N, 2), 4, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bcg.Run(); err != nil {
		t.Fatal(err)
	}
	preps := engine.GraphPrepCount()
	facs := sparse.FactorizationCount()

	// Rebind across widths (2 -> 4 bound columns) and replay: the warm
	// path must not rebuild task graphs or factorize anything.
	rhs := batchTestRHS(a.N, 4)
	if err := bcg.Rebind(rhs); err != nil {
		t.Fatal(err)
	}
	bres, err := bcg.Run()
	if err != nil {
		t.Fatal(err)
	}
	if got := engine.GraphPrepCount(); got != preps {
		t.Fatalf("graph preps after rebind: %d -> %d", preps, got)
	}
	if got := sparse.FactorizationCount(); got != facs {
		t.Fatalf("factorizations after rebind: %d -> %d", facs, got)
	}
	for j, col := range bres.Columns {
		if !col.Converged || col.RelResidual > 1e-9 {
			t.Fatalf("col %d after rebind: %+v", j, col)
		}
	}
	// Column 3 still matches its unbatched run bitwise.
	cg, err := NewCG(a, rhs[3], testConfig(MethodFEIR))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cg.Run(); err != nil {
		t.Fatal(err)
	}
	got := make([]float64, a.N)
	bcg.SolutionInto(3, got)
	for i, want := range cg.Solution() {
		if math.Float64bits(got[i]) != math.Float64bits(want) {
			t.Fatalf("row %d: %v vs %v", i, got[i], want)
		}
	}
}

func TestBatchCGColumnCancellation(t *testing.T) {
	a, _ := testSystem()
	bcg, err := NewBatchCG(a, batchTestRHS(a.N, 2), 2, testConfig(MethodFEIR))
	if err != nil {
		t.Fatal(err)
	}
	iter := 0
	bcg.SetOnIteration(func(it int, _ float64) { iter = it })
	bcg.SetColumnCancelled(0, func() bool { return iter >= 5 })
	bres, err := bcg.Run()
	if err != nil {
		t.Fatal(err)
	}
	c0, c1 := bres.Columns[0], bres.Columns[1]
	if !c0.Cancelled || c0.Converged {
		t.Fatalf("column 0 not cancelled: %+v", c0)
	}
	if c0.Iterations > 7 {
		t.Fatalf("column 0 cancelled late: %+v", c0)
	}
	if !c1.Converged || c1.Cancelled {
		t.Fatalf("column 1 hurt by cancellation: %+v", c1)
	}
}

func TestBatchCGZeroColumnRetiresImmediately(t *testing.T) {
	a, b := testSystem()
	rhs := [][]float64{b, make([]float64, a.N)}
	bcg, err := NewBatchCG(a, rhs, 2, testConfig(MethodIdeal))
	if err != nil {
		t.Fatal(err)
	}
	bres, err := bcg.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !bres.Columns[1].Converged || bres.Columns[1].Iterations != 0 {
		t.Fatalf("zero column: %+v", bres.Columns[1])
	}
	if !bres.Columns[0].Converged {
		t.Fatalf("live column: %+v", bres.Columns[0])
	}
}
