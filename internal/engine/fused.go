// Fused page operations: each emits ONE task per chunk where the unfused
// pipeline emitted two dependent ones (the producing operation plus the
// reduction over its output), cutting both the task count and the memory
// traffic of the steady-state iteration. The version-stamp guards and
// FEIR/AFEIR recovery semantics are identical to the ops they fuse:
//
//   - a page runs only when the same input operands the unfused producer
//     checked are current; a skipped page keeps its previous version and
//     its reduction slot stays missing — exactly what the unfused
//     reduction would have decided from the stale stamp;
//   - a produced page is stamped the same way (full-overwrite ops
//     revalidate, read-modify-write ops keep late poisons detected), so
//     the recovery relations of §3.1 apply unchanged, and the recovery
//     tasks' partial back-fill loops (which test Partial.Missing plus
//     page currency) work on fused and unfused partials alike.
//
// The one observable difference is benign: the unfused reduction task ran
// strictly after the producer, so a fault bit raised in the gap made it
// drop a numerically-correct contribution that recovery then recomputed.
// The fused op computes the contribution from the values it just wrote —
// the same values the recovery relation would reproduce.
package engine

import (
	"sync/atomic"

	"repro/internal/sparse"
	"repro/internal/taskrt"
)

// SpMVDotPage is the per-page body of the fused SpMV + dot operation:
// out rows = A·in for page p, the <in,out> partial into xy and the
// <out,out> partial into yy (either may be nil). Shared by the immediate
// SpMVDot op and the prepared steady-state graphs.
//
//due:hotpath
func (e *Engine) SpMVDotPage(p, lo, hi int, in, out Operand, xy, yy *Partial) {
	if e.Resilient && !in.ConnCurrent(e.Conn[p], in.Ver, -1) {
		return // output page keeps its OLD values; partials stay missing
	}
	// When only one partial is wanted, the single-dot kernel saves the
	// other reduction's work: <in,out> is <out,w> with w = in, and
	// <out,out> is <out,w> with w = out.
	var sxy, syy float64
	switch {
	case xy != nil && yy == nil:
		sxy = e.A.MulVecDotVecRange(in.V.Data, out.V.Data, in.V.Data, lo, hi)
	case xy == nil && yy != nil:
		syy = e.A.MulVecDotVecRange(in.V.Data, out.V.Data, out.V.Data, lo, hi)
	default:
		sxy, syy = e.A.MulVecDotRange(in.V.Data, out.V.Data, lo, hi)
	}
	if e.Resilient {
		out.V.MarkRecovered(p)
		out.S[p].Store(out.Ver)
		if !in.Current(p, in.Ver) {
			// A row-page whose own column-page is outside its connectivity
			// (no diagonal nonzero): the SpMV was legal but the <in,out>
			// contribution read a stale in page — leave it missing, as the
			// unfused reduction's guard would have.
			if yy != nil {
				yy.Store(p, syy)
			}
			return
		}
	}
	if xy != nil {
		xy.Store(p, sxy)
	}
	if yy != nil {
		yy.Store(p, syy)
	}
}

// SpMVDot submits chunked tasks computing out rows = A * in fused with
// the per-page partials <in, out> (into xy) and <out, out> (into yy);
// pass nil to skip either. Guards and stamping match SpMV followed by
// DotPartials: a row-page runs only when every connected input page is
// current at in.Ver, the output revalidates at out.Ver, and skipped pages
// leave their partial slots missing.
func (e *Engine) SpMVDot(label string, after []*taskrt.Handle, in, out Operand, xy, yy *Partial) []*taskrt.Handle {
	handles := make([]*taskrt.Handle, 0, len(e.chunks))
	for _, ch := range e.chunks {
		pLo, pHi := ch[0], ch[1]
		handles = append(handles, e.RT.Submit(taskrt.TaskSpec{Label: label, After: after, Run: func(int) {
			for p := pLo; p < pHi; p++ {
				lo, hi := e.Layout.Range(p)
				e.SpMVDotPage(p, lo, hi, in, out, xy, yy)
			}
		}}))
	}
	return handles
}

// SpMVDotVecPage is the per-page body of SpMVDotReliable: out rows = A·in
// fused with the <out, y> partial against reliable-memory y (the BiCGStab
// shadow residual). The partial guard matches DotPartialsReliable: only
// the produced page must be current, which it is whenever the SpMV ran.
//
//due:hotpath
func (e *Engine) SpMVDotVecPage(p, lo, hi int, in, out Operand, y []float64, part *Partial) {
	if e.Resilient && !in.ConnCurrent(e.Conn[p], in.Ver, -1) {
		return
	}
	wy := e.A.MulVecDotVecRange(in.V.Data, out.V.Data, y, lo, hi)
	if e.Resilient {
		out.V.MarkRecovered(p)
		out.S[p].Store(out.Ver)
	}
	part.Store(p, wy)
}

// SpMVDotReliable submits chunked tasks computing out rows = A * in fused
// with the per-page partials <out, y> for a reliable-memory y.
func (e *Engine) SpMVDotReliable(label string, after []*taskrt.Handle, in, out Operand, y []float64, part *Partial) []*taskrt.Handle {
	handles := make([]*taskrt.Handle, 0, len(e.chunks))
	for _, ch := range e.chunks {
		pLo, pHi := ch[0], ch[1]
		handles = append(handles, e.RT.Submit(taskrt.TaskSpec{Label: label, After: after, Run: func(int) {
			for p := pLo; p < pHi; p++ {
				lo, hi := e.Layout.Range(p)
				e.SpMVDotVecPage(p, lo, hi, in, out, y, part)
			}
		}}))
	}
	return handles
}

// AxpyDotPage is the per-page body of the fused read-modify-write update
// y += alpha·x with the <y, y> partial of the updated values. Guards
// match PageOp(ins={y@Ver-1, x@x.Ver}, overwrite=false) followed by
// DotPartials(y, y): the stamp advances but a poison landing mid-task
// stays detected, and then the contribution is dropped exactly as the
// unfused reduction's currency guard would drop it.
//
//due:hotpath
func (e *Engine) AxpyDotPage(p, lo, hi int, alpha float64, x, y Operand, yy *Partial) {
	if e.Resilient && (!x.Current(p, x.Ver) || !y.Current(p, y.Ver-1)) {
		return
	}
	s := sparse.AxpyDotRange(alpha, x.V.Data, y.V.Data, lo, hi)
	if e.Resilient {
		y.S[p].Store(y.Ver)
		if y.V.Failed(p) {
			return // late poison: the contribution stays missing
		}
	}
	yy.Store(p, s)
}

// AxpyDot submits chunked tasks computing y += alpha * x (read-modify-
// write: y consumed at y.Ver-1, produced at y.Ver, fault bits preserved)
// fused with the per-page <y, y> partials of the updated values — the CG
// phase-2 g -= αq with ε = <g,g> in one task per chunk.
func (e *Engine) AxpyDot(label string, after []*taskrt.Handle, alpha float64, x, y Operand, yy *Partial) []*taskrt.Handle {
	handles := make([]*taskrt.Handle, 0, len(e.chunks))
	for _, ch := range e.chunks {
		pLo, pHi := ch[0], ch[1]
		handles = append(handles, e.RT.Submit(taskrt.TaskSpec{Label: label, After: after, Run: func(int) {
			for p := pLo; p < pHi; p++ {
				lo, hi := e.Layout.Range(p)
				e.AxpyDotPage(p, lo, hi, alpha, x, y, yy)
			}
		}}))
	}
	return handles
}

// AxpyDotPageABFT is the checksum-carrying variant of AxpyDotPage: the
// inputs' stored page checksums are verified before the read-modify-
// write runs (a mismatch poisons the corrupt page and skips the update,
// exactly like a stale-input guard), and the checksum of the updated y
// page is folded into the producing pass and stored for the next
// consumer. On clean data the arithmetic is bitwise identical to
// AxpyDotPage.
//
//due:hotpath
func (e *Engine) AxpyDotPageABFT(p, lo, hi int, alpha float64, x, y Operand, yy *Partial) {
	if e.Resilient && (!x.Current(p, x.Ver) || !y.Current(p, y.Ver-1)) {
		return
	}
	if !x.V.VerifyChecksum(p) || !y.V.VerifyChecksum(p) {
		return // SDC caught: skip, the recovery relations take over
	}
	s, ck := sparse.AxpyDotChecksumRange(alpha, x.V.Data, y.V.Data, lo, hi)
	if e.Resilient {
		y.S[p].Store(y.Ver)
		if y.V.Failed(p) {
			return // late poison: the contribution stays missing
		}
	}
	y.V.SetChecksum(p, ck)
	yy.Store(p, s)
}

// ApplyPrecondPage is the per-page body of the guarded apply-M⁻¹
// operation (ApplyPrecond): out_p = M_pp⁻¹ in_p with full-overwrite
// stamping, for prepared steady-state graphs.
//
//due:hotpath
func (e *Engine) ApplyPrecondPage(p int, m BlockApplier, in, out Operand) {
	if e.Resilient && !in.Current(p, in.Ver) {
		return
	}
	if m.ApplyBlock(p, in.V.Data, out.V.Data) != nil {
		return
	}
	if e.Resilient {
		out.V.MarkRecovered(p)
		out.S[p].Store(out.Ver)
	}
}

// DotPartialPage is the per-page body of the guarded DotPartials
// reduction, for prepared steady-state graphs.
//
//due:hotpath
func (e *Engine) DotPartialPage(p, lo, hi int, x, y Operand, part *Partial) {
	if e.Resilient && (!x.Current(p, x.Ver) || !y.Current(p, y.Ver)) {
		return
	}
	part.Store(p, sparse.DotRange(x.V.Data, y.V.Data, lo, hi))
}

// RawSpMVDot submits unguarded chunked tasks computing y rows = A * x
// fused with the per-page partials <x, y> (into xy) and <y, y> (into yy);
// pass nil to skip either.
func (e *Engine) RawSpMVDot(label string, after []*taskrt.Handle, x, y []float64, xy, yy *Partial) []*taskrt.Handle {
	return e.RawOp(label, after, func(p, lo, hi int) {
		sxy, syy := e.A.MulVecDotRange(x, y, lo, hi)
		if xy != nil {
			xy.Store(p, sxy)
		}
		if yy != nil {
			yy.Store(p, syy)
		}
	})
}

// AxpyNorm runs the fused y += alpha*x with the <y,y> partials of the
// updated values, waits, and returns the squared norm — the GMRES final
// orthogonalisation update fused with the Arnoldi normalisation norm
// (unguarded, phase-boundary repair discipline).
func (e *Engine) AxpyNorm(label string, alpha float64, x, y []float64, part *Partial) float64 {
	part.ResetMissing()
	e.RT.WaitAll(e.RawOp(label, nil, func(p, lo, hi int) {
		part.Store(p, sparse.AxpyDotRange(alpha, x, y, lo, hi))
	}))
	sum, _ := part.SumAvailable()
	return sum
}

// ---------------------------------------------------------------------
// Prepared (replayed) operations.
// ---------------------------------------------------------------------

// Prepared is a reusable chunked operation: one persistent task handle
// per chunk whose body reads per-iteration state (versions, scalars,
// buffer roles) through the owning solver, so a steady-state iteration
// resubmits the same handles with zero allocations. Dependencies are
// passed at submission; handle slices returned by Handles are stable, so
// cross-op dependency lists can be prebuilt once.
type Prepared struct {
	rt      *taskrt.Runtime
	handles []*taskrt.Handle
}

// graphPreps counts task-graph preparations process-wide. The serving
// layer's zero-rebuild guarantee is pinned against it: repeated solves on
// a cached operator context must not move this counter after warmup.
var graphPreps atomic.Int64

// GraphPrepCount returns the number of prepared task graphs built so far
// (Prepare + PrepareSingle calls, process-wide).
func GraphPrepCount() int64 { return graphPreps.Load() }

// Prepare builds a prepared chunked op running body(worker, pLo, pHi) for
// every chunk of the engine's page range.
func (e *Engine) Prepare(label string, priority int, body func(worker, pLo, pHi int)) *Prepared {
	graphPreps.Add(1)
	p := &Prepared{rt: e.RT, handles: make([]*taskrt.Handle, 0, len(e.chunks))}
	for _, ch := range e.chunks {
		pLo, pHi := ch[0], ch[1]
		p.handles = append(p.handles, e.RT.NewTask(taskrt.TaskSpec{
			Label:    label,
			Priority: priority,
			Run:      func(w int) { body(w, pLo, pHi) },
		}))
	}
	return p
}

// PrepareSingle builds a prepared single-task op (the per-phase recovery
// tasks: one task, not chunked).
func (e *Engine) PrepareSingle(label string, priority int, body func()) *Prepared {
	graphPreps.Add(1)
	return &Prepared{rt: e.RT, handles: []*taskrt.Handle{
		e.RT.NewTask(taskrt.TaskSpec{Label: label, Priority: priority, Run: func(int) { body() }}),
	}}
}

// Submit replays every chunk task after the given dependencies and
// returns the persistent handles.
func (p *Prepared) Submit(after []*taskrt.Handle) []*taskrt.Handle {
	p.rt.ResubmitAll(p.handles, after)
	return p.handles
}

// Handles returns the persistent task handles (stable across replays).
func (p *Prepared) Handles() []*taskrt.Handle { return p.handles }

// Wait blocks until the most recent replay of every chunk task finished.
func (p *Prepared) Wait() { p.rt.WaitAll(p.handles) }
