package engine

import (
	"math"
	"testing"
)

func TestPartialBlock(t *testing.T) {
	b := NewPartialBlock(3, 4)
	if b.Width() != 4 {
		t.Fatalf("width %d", b.Width())
	}
	out := make([]float64, 4)
	if missing := b.SumAvailable(out); missing != 3 {
		t.Fatalf("fresh block: %d missing, want 3", missing)
	}
	b.StoreRow(0, []float64{1, 2, 3, 4})
	b.StoreRow(2, []float64{10, 20, 30, 40})
	if missing := b.SumAvailable(out); missing != 1 {
		t.Fatalf("%d missing, want 1", missing)
	}
	for k, want := range []float64{11, 22, 33, 44} {
		if out[k] != want {
			t.Fatalf("out[%d] = %v, want %v", k, out[k], want)
		}
	}
	// SumAvailable accumulates: a second call doubles the sums.
	b.SumAvailable(out)
	if out[0] != 22 {
		t.Fatalf("accumulation broken: out[0] = %v, want 22", out[0])
	}
	// A stored row whose slot 0 is NaN counts as missing (rows are
	// stored whole, so slot 0 is the page's presence bit).
	b.StoreRow(1, []float64{math.NaN(), 5, 5, 5})
	for i := range out {
		out[i] = 0
	}
	if missing := b.SumAvailable(out); missing != 1 {
		t.Fatalf("NaN slot-0 row: %d missing, want 1", missing)
	}
	b.ResetMissing()
	if missing := b.SumAvailable(out); missing != 3 {
		t.Fatalf("after reset: %d missing, want 3", missing)
	}
}
