// Batched (multi-RHS) page operations: the per-page bodies of the fused
// batch-CG iteration over an interleaved multivector page space. A
// width-b multivector lives in a pagemem space of n*b doubles with b*pd
// doubles per page, so page p holds rows [p*pd, (p+1)*pd) of ALL b
// columns. That layout is what keeps the fault semantics unchanged: one
// stamp and one fault bit still cover one page, a DUE poisons all b
// columns of those rows together, and the forward/inverse recovery
// relations extend column-wise with no new cases — they just rebuild b
// columns per page instead of one. Guards and stamping mirror the scalar
// fused ops (fused.go) exactly; reductions land in PartialBlock rows, one
// slot per column, summed page-ascending so every column's reduction
// order matches the scalar Partial's.
package engine

import (
	"repro/internal/sparse"
)

// SpMMDotPage is the batch analogue of SpMVDotPage: out rows = A·in for
// page p across b interleaved columns, fused with the per-column <in,out>
// and <out,out> partial rows. lo and hi are ROW bounds of page p.
//
//due:hotpath
func (e *Engine) SpMMDotPage(p, lo, hi, b int, in, out Operand, xy, yy *PartialBlock) {
	if e.Resilient && !in.ConnCurrent(e.Conn[p], in.Ver, -1) {
		return // output page keeps its OLD values; partial rows stay missing
	}
	var sxy, syy [sparse.MaxBatchWidth]float64
	e.A.MulMatDotRange(in.V.Data, out.V.Data, b, lo, hi, sxy[:b], syy[:b])
	if e.Resilient {
		out.V.MarkRecovered(p)
		out.S[p].Store(out.Ver)
		if !in.Current(p, in.Ver) {
			// No diagonal nonzero on this row page: the <in,out> row read a
			// stale in page — leave it missing (see SpMVDotPage).
			if yy != nil {
				yy.StoreRow(p, syy[:b])
			}
			return
		}
	}
	if xy != nil {
		xy.StoreRow(p, sxy[:b])
	}
	if yy != nil {
		yy.StoreRow(p, syy[:b])
	}
}

// BatchAxpyDotPage is the batch analogue of AxpyDotPage: the read-modify-
// write y += alpha[j]·x per column, fused with the per-column <y,y>
// partial row of the updated values. The stamp advances before the late-
// poison check so a poison landing mid-task stays detected and the whole
// row's contribution is dropped — the scalar discipline, column-wise.
//
//due:hotpath
func (e *Engine) BatchAxpyDotPage(p, lo, hi, b int, alpha []float64, x, y Operand, yy *PartialBlock) {
	if e.Resilient && (!x.Current(p, x.Ver) || !y.Current(p, y.Ver-1)) {
		return
	}
	var syy [sparse.MaxBatchWidth]float64
	sparse.BatchAxpyDotRange(alpha, x.V.Data, y.V.Data, b, lo, hi, syy[:b])
	if e.Resilient {
		y.S[p].Store(y.Ver)
		if y.V.Failed(p) {
			return // late poison: the contribution stays missing
		}
	}
	yy.StoreRow(p, syy[:b])
}
