package engine

import (
	"math/rand"
	"testing"

	"repro/internal/pagemem"
	"repro/internal/sparse"
	"repro/internal/taskrt"
)

// The fused-op contract: identical outputs, stamps and missing-partial
// sets as the unfused composition, page by page, including around stale
// and failed pages.

type fusedFixture struct {
	a      *sparse.CSR
	layout sparse.BlockLayout
	rt     *taskrt.Runtime
	e      *Engine
	space  *pagemem.Space
}

func newFusedFixture(t *testing.T, n, page int) *fusedFixture {
	t.Helper()
	a := testMatrix(n)
	layout := sparse.BlockLayout{N: n, BlockSize: page}
	rt := taskrt.New(2)
	t.Cleanup(rt.Close)
	return &fusedFixture{
		a: a, layout: layout, rt: rt,
		e:     New(a, layout, rt, true, 0),
		space: pagemem.NewSpace(n, page),
	}
}

func (f *fusedFixture) vec(name string, fill func(i int) float64) Vec {
	v := Vec{V: f.space.AddVector(name), S: NewStamps(f.e.NP)}
	if fill != nil {
		for i := range v.V.Data {
			v.V.Data[i] = fill(i)
		}
	}
	return v
}

// TestSpMVDotMatchesUnfused runs the fused SpMV+dot and the unfused
// SpMV-then-DotPartials pipelines from identical states with a stale
// input page, and compares outputs, stamps and partial sets.
func TestSpMVDotMatchesUnfused(t *testing.T) {
	const n, page = 256, 32
	f := newFusedFixture(t, n, page)
	rng := rand.New(rand.NewSource(7))
	fill := func(int) float64 { return rng.NormFloat64() }

	x := f.vec("x", fill)
	yU := f.vec("yU", nil)
	yF := f.vec("yF", nil)
	x.S.Fill(3)
	x.S[5].Store(2) // stale input page

	// Unfused pipeline.
	partXYU, partYYU := NewPartial(f.e.NP), NewPartial(f.e.NP)
	h := f.e.SpMV("y=Ax", nil, In(x, 3), Operand{Vec: yU, Ver: 3})
	f.rt.WaitAll(h)
	f.rt.WaitAll(f.e.DotPartials("<x,y>", nil, In(x, 3), In(yU, 3), partXYU))
	f.rt.WaitAll(f.e.DotPartials("<y,y>", nil, In(yU, 3), In(yU, 3), partYYU))

	// Fused pipeline.
	partXYF, partYYF := NewPartial(f.e.NP), NewPartial(f.e.NP)
	f.rt.WaitAll(f.e.SpMVDot("y=Ax,<x,y>,<y,y>", nil, In(x, 3), Operand{Vec: yF, Ver: 3}, partXYF, partYYF))

	for p := 0; p < f.e.NP; p++ {
		if yU.S[p].Load() != yF.S[p].Load() {
			t.Fatalf("page %d: stamp fused=%d unfused=%d", p, yF.S[p].Load(), yU.S[p].Load())
		}
		if partXYU.Missing(p) != partXYF.Missing(p) || partYYU.Missing(p) != partYYF.Missing(p) {
			t.Fatalf("page %d: missing sets differ (xy %v/%v, yy %v/%v)", p,
				partXYU.Missing(p), partXYF.Missing(p), partYYU.Missing(p), partYYF.Missing(p))
		}
		if !partXYU.Missing(p) && partXYU.Load(p) != partXYF.Load(p) {
			t.Fatalf("page %d: xy fused=%v unfused=%v", p, partXYF.Load(p), partXYU.Load(p))
		}
		if !partYYU.Missing(p) && partYYU.Load(p) != partYYF.Load(p) {
			t.Fatalf("page %d: yy fused=%v unfused=%v", p, partYYF.Load(p), partYYU.Load(p))
		}
	}
	for i := range yU.V.Data {
		if yU.V.Data[i] != yF.V.Data[i] {
			t.Fatalf("element %d: fused=%v unfused=%v", i, yF.V.Data[i], yU.V.Data[i])
		}
	}
}

// TestSpMVDotReliableMatchesUnfused compares the fused SpMV + reliable
// dot against SpMV followed by DotPartialsReliable.
func TestSpMVDotReliableMatchesUnfused(t *testing.T) {
	const n, page = 256, 32
	f := newFusedFixture(t, n, page)
	rng := rand.New(rand.NewSource(8))
	fill := func(int) float64 { return rng.NormFloat64() }

	x := f.vec("x", fill)
	yU := f.vec("yU", nil)
	yF := f.vec("yF", nil)
	w := make([]float64, n)
	for i := range w {
		w[i] = rng.NormFloat64()
	}
	x.S.Fill(1)
	x.S[0].Store(0)

	partU := NewPartial(f.e.NP)
	f.rt.WaitAll(f.e.SpMV("y=Ax", nil, In(x, 1), Operand{Vec: yU, Ver: 1}))
	f.rt.WaitAll(f.e.DotPartialsReliable("<y,w>", nil, In(yU, 1), w, partU))

	partF := NewPartial(f.e.NP)
	f.rt.WaitAll(f.e.SpMVDotReliable("y=Ax,<y,w>", nil, In(x, 1), Operand{Vec: yF, Ver: 1}, w, partF))

	for p := 0; p < f.e.NP; p++ {
		if partU.Missing(p) != partF.Missing(p) {
			t.Fatalf("page %d: missing fused=%v unfused=%v", p, partF.Missing(p), partU.Missing(p))
		}
		if !partU.Missing(p) && partU.Load(p) != partF.Load(p) {
			t.Fatalf("page %d: fused=%v unfused=%v", p, partF.Load(p), partU.Load(p))
		}
	}
}

// TestAxpyDotMatchesUnfused compares the fused RMW axpy + norm against
// PageOp followed by DotPartials, including a failed page (late poison):
// the stamp must advance, the fault must stay detected and the partial
// must stay missing.
func TestAxpyDotMatchesUnfused(t *testing.T) {
	const n, page = 256, 32
	f := newFusedFixture(t, n, page)
	rng := rand.New(rand.NewSource(9))
	fill := func(int) float64 { return rng.NormFloat64() }

	x := f.vec("x", fill)
	x.S.Fill(4)
	x.S[2].Store(3) // stale x page: update must skip page 2

	run := func(y Vec, fused bool) *Partial {
		part := NewPartial(f.e.NP)
		y.S.Fill(3)
		y.V.MarkFailed(6) // failed y page: stamp advances, partial missing
		if fused {
			f.rt.WaitAll(f.e.AxpyDot("y+=ax,<y,y>", nil, 0.5, In(x, 4), Operand{Vec: y, Ver: 4}, part))
			return part
		}
		out := Operand{Vec: y, Ver: 4}
		f.rt.WaitAll(f.e.PageOp("y+=ax", nil, []Operand{In(y, 3), In(x, 4)}, &out, false, func(p, lo, hi int) bool {
			sparse.AxpyRange(0.5, x.V.Data, y.V.Data, lo, hi)
			return true
		}))
		f.rt.WaitAll(f.e.DotPartials("<y,y>", nil, In(y, 4), In(y, 4), part))
		return part
	}

	yU := f.vec("yU", func(i int) float64 { return float64(i % 5) })
	yF := f.vec("yF", func(i int) float64 { return float64(i % 5) })
	partU := run(yU, false)
	partF := run(yF, true)

	for p := 0; p < f.e.NP; p++ {
		if yU.S[p].Load() != yF.S[p].Load() {
			t.Fatalf("page %d: stamp fused=%d unfused=%d", p, yF.S[p].Load(), yU.S[p].Load())
		}
		if partU.Missing(p) != partF.Missing(p) {
			t.Fatalf("page %d: missing fused=%v unfused=%v", p, partF.Missing(p), partU.Missing(p))
		}
		if !partU.Missing(p) && partU.Load(p) != partF.Load(p) {
			t.Fatalf("page %d: partial fused=%v unfused=%v", p, partF.Load(p), partU.Load(p))
		}
	}
	for i := range yU.V.Data {
		if yU.V.Data[i] != yF.V.Data[i] {
			t.Fatalf("element %d: fused=%v unfused=%v", i, yF.V.Data[i], yU.V.Data[i])
		}
	}
	if !yF.V.Failed(6) {
		t.Fatal("fused op cleared a late-poison fault bit")
	}
}

// TestPreparedReplayMatchesImmediate replays a prepared fused graph many
// times and checks it computes the same thing as immediate submissions,
// with zero allocations per replay.
func TestPreparedReplayMatchesImmediate(t *testing.T) {
	const n, page = 256, 32
	f := newFusedFixture(t, n, page)
	x := f.vec("x", func(i int) float64 { return float64(i%3) - 1 })
	y := f.vec("y", nil)
	x.S.Fill(0)
	part := NewPartial(f.e.NP)

	var ver int64 // read by the prepared body at run time
	op := f.e.Prepare("y=Ax", 0, func(_, pLo, pHi int) {
		for p := pLo; p < pHi; p++ {
			lo, hi := f.e.Layout.Range(p)
			f.e.SpMVDotPage(p, lo, hi, In(x, ver), Operand{Vec: y, Ver: ver}, part, nil)
		}
	})

	iter := func() {
		part.ResetMissing()
		op.Submit(nil)
		op.Wait()
	}
	iter()
	want, missing := part.SumAvailable()
	if missing != 0 {
		t.Fatalf("missing = %d", missing)
	}

	// Reference from the immediate op.
	partRef := NewPartial(f.e.NP)
	yRef := f.vec("yRef", nil)
	f.rt.WaitAll(f.e.SpMVDot("ref", nil, In(x, 0), Operand{Vec: yRef, Ver: 0}, partRef, nil))
	ref, _ := partRef.SumAvailable()
	if want != ref {
		t.Fatalf("prepared sum %v != immediate sum %v", want, ref)
	}

	for i := 0; i < 5; i++ {
		iter() // warm up rings and wait conds
	}
	if allocs := testing.AllocsPerRun(50, iter); allocs > 0 {
		t.Fatalf("prepared replay allocates %.1f/op, want 0", allocs)
	}
	got, _ := part.SumAvailable()
	if got != want {
		t.Fatalf("replay diverged: %v != %v", got, want)
	}
}
