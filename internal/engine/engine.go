// Package engine is the shared task-parallel iteration machinery behind
// every resilient solver in internal/core and the rank-sharded layer in
// internal/dist: strip-mined (chunked) page operations over pagemem
// vectors, version-stamped so that tasks can skip pages whose inputs are
// stale or poisoned (§3.3.2 of the paper), per-page reduction partials
// with missing-contribution tracking, and the two recovery scheduling
// disciplines of §3.3.2 — critical-path (FEIR, Fig 2a) and overlapped at
// low priority (AFEIR, Fig 2b) — on top of internal/taskrt.
//
// Versioning convention (shared by all solvers): a page of a vector is
// "current" at version v when its stamp equals v and its fault bit is
// clear. Tasks that skip a page leave the previous version (and its
// stamp) in place, which is exactly what makes the old-data recoveries of
// §3.1 possible; recovery code reads the stamps to decide which relation
// applies.
package engine

import (
	"sync/atomic"

	"repro/internal/pagemem"
	"repro/internal/sparse"
	"repro/internal/taskrt"
)

// Stamps holds one version stamp per page. Atomic because overlapped
// (AFEIR) recovery tasks update stamps concurrently with reduction tasks
// reading them.
type Stamps []atomic.Int64

// NewStamps returns stamps for n pages, initialised to -1 (no version).
func NewStamps(n int) Stamps {
	s := make(Stamps, n)
	for i := range s {
		s[i].Store(-1)
	}
	return s
}

// Fill stores ver into every stamp (restart-style recoveries).
func (s Stamps) Fill(ver int64) {
	for i := range s {
		s[i].Store(ver)
	}
}

// Vec couples a protected vector with its version stamps. A nil S means
// the solver tracks validity with fault bits alone (the GMRES Arnoldi
// discipline, which repairs at step boundaries): such a page is current
// exactly when its fault bit is clear.
type Vec struct {
	V *pagemem.Vector
	S Stamps
}

// Current reports whether page p holds version ver with a clear fault bit.
func (v Vec) Current(p int, ver int64) bool {
	if v.S == nil {
		return !v.V.Failed(p)
	}
	return v.S[p].Load() == ver && !v.V.Failed(p)
}

// LateFault reports whether page p was poisoned after being written at
// version ver (stamp current, fault bit set) — the damage AFEIR recovery
// must not touch mid-phase because concurrent reductions may read it.
// Stampless vectors never report late faults.
func (v Vec) LateFault(p int, ver int64) bool {
	if v.S == nil {
		return false
	}
	return v.S[p].Load() == ver && v.V.Failed(p)
}

// ConnCurrent reports whether every listed page is current at ver,
// optionally skipping one page index (pass skip < 0 to check all).
func (v Vec) ConnCurrent(pages []int, ver int64, skip int) bool {
	for _, j := range pages {
		if j == skip {
			continue
		}
		if !v.Current(j, ver) {
			return false
		}
	}
	return true
}

// Operand is a Vec read or written at a specific version by a page
// operation.
type Operand struct {
	Vec
	Ver int64
}

// In builds a read operand at version ver.
func In(v Vec, ver int64) Operand { return Operand{Vec: v, Ver: ver} }

// ChunkRanges splits [0, np) pages into at most nchunks contiguous,
// non-empty [lo, hi) ranges — the strip-mining of Figure 1.
func ChunkRanges(np, nchunks int) [][2]int {
	if nchunks > np {
		nchunks = np
	}
	if nchunks < 1 {
		nchunks = 1
	}
	out := make([][2]int, 0, nchunks)
	for c := 0; c < nchunks; c++ {
		lo := c * np / nchunks
		hi := (c + 1) * np / nchunks
		if lo < hi {
			out = append(out, [2]int{lo, hi})
		}
	}
	return out
}

// PageConnectivity computes, for every row-page p of the matrix, the
// sorted set of column-pages q such that the block A[rows(p), cols(q)]
// holds at least one nonzero. A strip-mined SpMV task producing rows(p)
// reads exactly the input pages listed in conn[p]; for the paper's
// FEM/stencil matrices this set is small, which is what keeps the blast
// radius of a lost direction page local (§2.3).
func PageConnectivity(a *sparse.CSR, layout sparse.BlockLayout) [][]int {
	np := layout.NumBlocks()
	conn := make([][]int, np)
	seen := make([]int, np) // last row-page that recorded column-page j
	for i := range seen {
		seen[i] = -1
	}
	for p := 0; p < np; p++ {
		lo, hi := layout.Range(p)
		for r := lo; r < hi; r++ {
			for k := a.RowPtr[r]; k < a.RowPtr[r+1]; k++ {
				cp := layout.BlockOf(a.Cols[k])
				if seen[cp] != p {
					seen[cp] = p
					conn[p] = append(conn[p], cp)
				}
			}
		}
		sortInts(conn[p])
	}
	return conn
}

func sortInts(s []int) {
	// Insertion sort: connectivity lists are tiny (a handful of pages).
	for i := 1; i < len(s); i++ {
		v := s[i]
		j := i - 1
		for j >= 0 && s[j] > v {
			s[j+1] = s[j]
			j--
		}
		s[j+1] = v
	}
}

// Engine drives chunked page operations for one solver over one matrix.
type Engine struct {
	RT     *taskrt.Runtime
	A      *sparse.CSR
	Layout sparse.BlockLayout
	NP     int
	// Conn is the page connectivity of A (see PageConnectivity).
	Conn [][]int
	// Resilient enables the stamp/fault guards and stamping; when false
	// every operation runs unconditionally on every page (the Ideal,
	// Trivial, Lossy and Checkpoint methods).
	Resilient bool
	// RecoveryPriority is the task priority for overlapped (AFEIR)
	// recovery. New sets -1; solvers running compute at a non-default
	// tier must lower it via Config.overlapPriority() so recovery stays
	// strictly below their own compute tasks. Clamped to ≤ -1 at use.
	RecoveryPriority int

	nchunks int
	chunks  [][2]int
}

// New builds an engine. The runtime must outlive the engine; nchunks <= 0
// means one chunk per worker.
func New(a *sparse.CSR, layout sparse.BlockLayout, rt *taskrt.Runtime, resilient bool, nchunks int) *Engine {
	if nchunks <= 0 {
		nchunks = rt.NumWorkers()
	}
	np := layout.NumBlocks()
	return &Engine{
		RT:               rt,
		A:                a,
		Layout:           layout,
		NP:               np,
		Conn:             PageConnectivity(a, layout),
		Resilient:        resilient,
		RecoveryPriority: -1,
		nchunks:          nchunks,
		chunks:           ChunkRanges(np, nchunks),
	}
}

// Chunks returns the strip-mined page ranges used by every operation.
func (e *Engine) Chunks() [][2]int { return e.chunks }

// Sub returns a view of the engine restricted to pages [pLo, pHi), split
// into at most nchunks tasks per operation — the owned shard of one rank
// in the distributed substrate. The view shares the runtime, matrix,
// layout, connectivity and resilience mode with its parent; only the
// chunk set differs, so every page operation of the view touches exactly
// the rank's pages while reading full-length (globally indexed) vectors.
func (e *Engine) Sub(pLo, pHi, nchunks int) *Engine {
	sub := *e
	base := ChunkRanges(pHi-pLo, nchunks)
	sub.chunks = make([][2]int, len(base))
	for i, c := range base {
		sub.chunks[i] = [2]int{c[0] + pLo, c[1] + pLo}
	}
	sub.nchunks = len(sub.chunks)
	return &sub
}

// PageOp submits one task per chunk running fn(p, lo, hi) for every page
// whose input operands are all current. Skipped pages keep their previous
// version. When out is non-nil and fn returned true, the output page is
// stamped at out.Ver; overwrite additionally clears the output's fault
// bit first (a full-page overwrite revalidates lost data, §3.3.2 —
// read-modify-write updates like x += αd must NOT pass overwrite, so a
// poison landing mid-task stays detected).
func (e *Engine) PageOp(label string, after []*taskrt.Handle, ins []Operand, out *Operand, overwrite bool, fn func(p, lo, hi int) bool) []*taskrt.Handle {
	handles := make([]*taskrt.Handle, 0, len(e.chunks))
	for _, ch := range e.chunks {
		pLo, pHi := ch[0], ch[1]
		handles = append(handles, e.RT.Submit(taskrt.TaskSpec{Label: label, After: after, Run: func(int) {
			for p := pLo; p < pHi; p++ {
				lo, hi := e.Layout.Range(p)
				if e.Resilient {
					ok := true
					for _, in := range ins {
						if !in.Current(p, in.Ver) {
							ok = false
							break
						}
					}
					if !ok {
						continue
					}
				}
				if !fn(p, lo, hi) {
					continue
				}
				if e.Resilient && out != nil {
					if overwrite {
						out.V.MarkRecovered(p)
					}
					out.S[p].Store(out.Ver)
				}
			}
		}}))
	}
	return handles
}

// BlockApplier is the block-diagonal apply-M⁻¹ surface the engine needs
// from a preconditioner: solve M_pp u_p = v_p for one page. Block
// diagonality is what makes the operation a page operation at all — no
// connectivity, so a page application reads exactly one input page, and
// the §3.2 partial-application recovery falls out for free.
// precond.Preconditioner satisfies it.
type BlockApplier interface {
	ApplyBlock(i int, v, u []float64) error
}

// BlockMultiplier is the forward product inverse to BlockApplier:
// u_p = M_pp v_p, used to rebuild a lost unpreconditioned page from its
// surviving preconditioned image. precond.BlockJacobi satisfies it.
type BlockMultiplier interface {
	MulBlock(i int, v, u []float64) error
}

// ApplyPrecond submits chunked tasks computing out_p = M_pp⁻¹ in_p for
// every page whose input is current — the guarded apply-M⁻¹ page
// operation every preconditioned solver runs. Full-page overwrite
// semantics: a produced page revalidates, and a skipped page keeps its
// previous version so the partial-application recovery (§3.2) can fill
// it in later.
func (e *Engine) ApplyPrecond(label string, after []*taskrt.Handle, m BlockApplier, in Operand, out Operand) []*taskrt.Handle {
	return e.PageOp(label, after, []Operand{in}, &out, true, func(p, lo, hi int) bool {
		return m.ApplyBlock(p, in.V.Data, out.V.Data) == nil
	})
}

// RawApplyPrecond submits unguarded chunked tasks computing
// out_p = M_pp⁻¹ in_p — the apply-M⁻¹ building block for solvers that
// repair at phase boundaries only (GMRES, the distributed substrate). in
// and out may alias for an in-place application.
func (e *Engine) RawApplyPrecond(label string, after []*taskrt.Handle, m BlockApplier, in, out []float64) []*taskrt.Handle {
	return e.RawOp(label, after, func(p, lo, hi int) {
		_ = m.ApplyBlock(p, in, out)
	})
}

// SpMV submits chunked tasks computing out rows = A * in. A row-page runs
// only when every connected input page is current at in.Ver; the output
// page is then stamped at out.Ver (full overwrite, so it revalidates).
func (e *Engine) SpMV(label string, after []*taskrt.Handle, in, out Operand) []*taskrt.Handle {
	handles := make([]*taskrt.Handle, 0, len(e.chunks))
	for _, ch := range e.chunks {
		pLo, pHi := ch[0], ch[1]
		handles = append(handles, e.RT.Submit(taskrt.TaskSpec{Label: label, After: after, Run: func(int) {
			for p := pLo; p < pHi; p++ {
				lo, hi := e.Layout.Range(p)
				if e.Resilient && !in.ConnCurrent(e.Conn[p], in.Ver, -1) {
					continue // output page keeps its OLD values
				}
				e.A.MulVecRange(in.V.Data, out.V.Data, lo, hi)
				if e.Resilient {
					out.V.MarkRecovered(p)
					out.S[p].Store(out.Ver)
				}
			}
		}}))
	}
	return handles
}

// DotPartials submits chunked tasks storing the per-page inner products
// <x, y> into part. Pages where either operand is stale stay missing —
// the recovery tasks may fill them later (Figure 1(b)'s r1).
func (e *Engine) DotPartials(label string, after []*taskrt.Handle, x, y Operand, part *Partial) []*taskrt.Handle {
	handles := make([]*taskrt.Handle, 0, len(e.chunks))
	for _, ch := range e.chunks {
		pLo, pHi := ch[0], ch[1]
		handles = append(handles, e.RT.Submit(taskrt.TaskSpec{Label: label, After: after, Run: func(int) {
			for p := pLo; p < pHi; p++ {
				lo, hi := e.Layout.Range(p)
				if e.Resilient && (!x.Current(p, x.Ver) || !y.Current(p, y.Ver)) {
					continue // slot stays missing
				}
				part.Store(p, sparse.DotRange(x.V.Data, y.V.Data, lo, hi))
			}
		}}))
	}
	return handles
}

// DotPartialsReliable is DotPartials with the second operand living in
// reliable memory (constant data like the BiCGStab shadow residual r̂0,
// §2.1): only x is guarded.
func (e *Engine) DotPartialsReliable(label string, after []*taskrt.Handle, x Operand, y []float64, part *Partial) []*taskrt.Handle {
	handles := make([]*taskrt.Handle, 0, len(e.chunks))
	for _, ch := range e.chunks {
		pLo, pHi := ch[0], ch[1]
		handles = append(handles, e.RT.Submit(taskrt.TaskSpec{Label: label, After: after, Run: func(int) {
			for p := pLo; p < pHi; p++ {
				lo, hi := e.Layout.Range(p)
				if e.Resilient && !x.Current(p, x.Ver) {
					continue
				}
				part.Store(p, sparse.DotRange(x.V.Data, y, lo, hi))
			}
		}}))
	}
	return handles
}

// RawOp submits chunked tasks running fn over every page range with no
// stamp guards or stamping — the building block for solvers that detect
// and repair only at phase boundaries (the GMRES Arnoldi steps, and the
// non-resilient methods).
func (e *Engine) RawOp(label string, after []*taskrt.Handle, fn func(p, lo, hi int)) []*taskrt.Handle {
	handles := make([]*taskrt.Handle, 0, len(e.chunks))
	for _, ch := range e.chunks {
		pLo, pHi := ch[0], ch[1]
		handles = append(handles, e.RT.Submit(taskrt.TaskSpec{Label: label, After: after, Run: func(int) {
			for p := pLo; p < pHi; p++ {
				lo, hi := e.Layout.Range(p)
				fn(p, lo, hi)
			}
		}}))
	}
	return handles
}

// RawSpMV submits unguarded chunked tasks computing y rows = A * x.
func (e *Engine) RawSpMV(label string, after []*taskrt.Handle, x, y []float64) []*taskrt.Handle {
	return e.RawOp(label, after, func(p, lo, hi int) {
		e.A.MulVecRange(x, y, lo, hi)
	})
}

// RawDotPartials submits unguarded chunked tasks storing the per-page
// inner products <x, y> into part.
func (e *Engine) RawDotPartials(label string, after []*taskrt.Handle, x, y []float64, part *Partial) []*taskrt.Handle {
	return e.RawOp(label, after, func(p, lo, hi int) {
		part.Store(p, sparse.DotRange(x, y, lo, hi))
	})
}

// Dot runs a chunked inner product and waits: the partial tasks plus the
// final sum, with no guards. Used for scalar reductions of non-resilient
// phases.
func (e *Engine) Dot(label string, x, y []float64, part *Partial) float64 {
	part.ResetMissing()
	e.RT.WaitAll(e.RawDotPartials(label, nil, x, y, part))
	sum, _ := part.SumAvailable()
	return sum
}

// OverlappedRecovery submits fn as a single low-priority task after the
// given producers — the AFEIR discipline (Fig 2b): it starts only once a
// worker is free, overlapping with whatever reduction tasks still run.
//
//due:recovery
func (e *Engine) OverlappedRecovery(label string, after []*taskrt.Handle, fn func()) *taskrt.Handle {
	prio := e.RecoveryPriority
	if prio > -1 {
		prio = -1
	}
	return e.RT.Submit(taskrt.TaskSpec{Label: label, After: after, Priority: prio, Run: func(int) { fn() }})
}

// CriticalRecovery runs fn as a task on the runtime and waits for it —
// the FEIR discipline (Fig 2a): recovery in the critical path, after
// every computation of the phase has finished.
func (e *Engine) CriticalRecovery(label string, fn func()) {
	h := e.RT.Submit(taskrt.TaskSpec{Label: label, Run: func(int) { fn() }})
	e.RT.Wait(h)
}
