package engine

import (
	"math"
	"sync/atomic"
)

// Partial is a slice of per-page float64 reduction contributions with
// atomic load/store and missing-slot tracking (NaN encodes "missing").
// Both reduction tasks and concurrent (AFEIR) recovery tasks write it;
// the scalar task sums whatever is present and counts the rest — the
// paper's lost-contribution accounting (§5.4).
type Partial struct {
	bits []atomic.Uint64
}

// NewPartial returns a Partial with n slots (all missing).
func NewPartial(n int) *Partial {
	p := &Partial{bits: make([]atomic.Uint64, n)}
	p.ResetMissing()
	return p
}

var nanBits = math.Float64bits(math.NaN())

// ResetMissing marks every slot as missing.
func (a *Partial) ResetMissing() {
	for i := range a.bits {
		a.bits[i].Store(nanBits)
	}
}

// Store sets slot i.
func (a *Partial) Store(i int, v float64) { a.bits[i].Store(math.Float64bits(v)) }

// Load returns slot i.
func (a *Partial) Load(i int) float64 { return math.Float64frombits(a.bits[i].Load()) }

// Missing reports whether slot i has no contribution.
func (a *Partial) Missing(i int) bool {
	return math.IsNaN(math.Float64frombits(a.bits[i].Load()))
}

// Len returns the number of slots.
func (a *Partial) Len() int { return len(a.bits) }

// SumAvailable returns the sum of present slots and the count of missing
// ones.
func (a *Partial) SumAvailable() (sum float64, missing int) {
	for i := range a.bits {
		v := math.Float64frombits(a.bits[i].Load())
		if math.IsNaN(v) {
			missing++
			continue
		}
		sum += v
	}
	return sum, missing
}

// PartialBlock is a Partial with w float64 slots per page: the reduction
// buffer of a fused BLOCK reduction, where one superstep pass produces a
// whole vector of inner products (the s-step CG's Gram matrix) instead
// of one scalar. A page's w slots are written together by its rank task
// (StoreRow) and summed page-ascending per slot by the coordinator, so
// every slot's accumulation order is as deterministic as Partial's.
type PartialBlock struct {
	w    int
	bits []atomic.Uint64
}

// NewPartialBlock returns a PartialBlock with n pages of w slots (all
// missing).
func NewPartialBlock(n, w int) *PartialBlock {
	b := &PartialBlock{w: w, bits: make([]atomic.Uint64, n*w)}
	b.ResetMissing()
	return b
}

// Width returns the number of slots per page.
func (b *PartialBlock) Width() int { return b.w }

// ResetMissing marks every page as missing.
func (b *PartialBlock) ResetMissing() {
	for i := range b.bits {
		b.bits[i].Store(nanBits)
	}
}

// Missing reports whether page p's row has not been stored since the
// last reset (rows are stored whole, so slot 0 stands for the row).
func (b *PartialBlock) Missing(p int) bool {
	return math.IsNaN(math.Float64frombits(b.bits[p*b.w].Load()))
}

// StoreRow sets page p's w slots from vals.
func (b *PartialBlock) StoreRow(p int, vals []float64) {
	base := p * b.w
	for k := 0; k < b.w; k++ {
		b.bits[base+k].Store(math.Float64bits(vals[k]))
	}
}

// SumAvailable accumulates every present page's row into out (out[k] +=
// Σ_p row[p][k], pages ascending) and returns the count of missing pages
// (a page is missing when its slot 0 is — rows are stored whole). out
// must have length w and arrive zeroed (or carrying a partial sum to
// continue).
func (b *PartialBlock) SumAvailable(out []float64) (missing int) {
	np := len(b.bits) / b.w
	for p := 0; p < np; p++ {
		base := p * b.w
		if math.IsNaN(math.Float64frombits(b.bits[base].Load())) {
			missing++
			continue
		}
		for k := 0; k < b.w; k++ {
			out[k] += math.Float64frombits(b.bits[base+k].Load())
		}
	}
	return missing
}
