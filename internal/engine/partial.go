package engine

import (
	"math"
	"sync/atomic"
)

// Partial is a slice of per-page float64 reduction contributions with
// atomic load/store and missing-slot tracking (NaN encodes "missing").
// Both reduction tasks and concurrent (AFEIR) recovery tasks write it;
// the scalar task sums whatever is present and counts the rest — the
// paper's lost-contribution accounting (§5.4).
type Partial struct {
	bits []atomic.Uint64
}

// NewPartial returns a Partial with n slots (all missing).
func NewPartial(n int) *Partial {
	p := &Partial{bits: make([]atomic.Uint64, n)}
	p.ResetMissing()
	return p
}

var nanBits = math.Float64bits(math.NaN())

// ResetMissing marks every slot as missing.
func (a *Partial) ResetMissing() {
	for i := range a.bits {
		a.bits[i].Store(nanBits)
	}
}

// Store sets slot i.
func (a *Partial) Store(i int, v float64) { a.bits[i].Store(math.Float64bits(v)) }

// Load returns slot i.
func (a *Partial) Load(i int) float64 { return math.Float64frombits(a.bits[i].Load()) }

// Missing reports whether slot i has no contribution.
func (a *Partial) Missing(i int) bool {
	return math.IsNaN(math.Float64frombits(a.bits[i].Load()))
}

// Len returns the number of slots.
func (a *Partial) Len() int { return len(a.bits) }

// SumAvailable returns the sum of present slots and the count of missing
// ones.
func (a *Partial) SumAvailable() (sum float64, missing int) {
	for i := range a.bits {
		v := math.Float64frombits(a.bits[i].Load())
		if math.IsNaN(v) {
			missing++
			continue
		}
		sum += v
	}
	return sum, missing
}
