package engine

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/pagemem"
	"repro/internal/sparse"
)

// The batched-op contract: per column, identical outputs, stamps and
// missing-partial-row sets as the scalar fused op run b times, including
// around stale and failed pages.

func TestSpMMDotPageMatchesScalarPerColumn(t *testing.T) {
	const n, page = 256, 32
	for _, b := range []int{1, 3, 8} {
		f := newFusedFixture(t, n, page)
		rng := rand.New(rand.NewSource(int64(11 + b)))

		bspace := pagemem.NewSpace(n*b, page*b)
		bx := Vec{V: bspace.AddVector("x"), S: NewStamps(f.e.NP)}
		by := Vec{V: bspace.AddVector("y"), S: NewStamps(f.e.NP)}
		for i := range bx.V.Data {
			bx.V.Data[i] = rng.NormFloat64()
		}
		bx.S.Fill(3)
		bx.S[5].Store(2) // stale input page

		// Scalar references: column j of the multivector, same stamps.
		cols := make([]Vec, b)
		outs := make([]Vec, b)
		xyS := make([]*Partial, b)
		yyS := make([]*Partial, b)
		for j := 0; j < b; j++ {
			cols[j] = f.vec("x"+string(rune('0'+j)), nil)
			outs[j] = f.vec("y"+string(rune('0'+j)), nil)
			sparse.GatherColumn(bx.V.Data, b, j, cols[j].V.Data)
			cols[j].S.Fill(3)
			cols[j].S[5].Store(2)
			xyS[j], yyS[j] = NewPartial(f.e.NP), NewPartial(f.e.NP)
			for p := 0; p < f.e.NP; p++ {
				lo, hi := f.layout.Range(p)
				f.e.SpMVDotPage(p, lo, hi, In(cols[j], 3), Operand{Vec: outs[j], Ver: 3}, xyS[j], yyS[j])
			}
		}

		xyB, yyB := NewPartialBlock(f.e.NP, b), NewPartialBlock(f.e.NP, b)
		for p := 0; p < f.e.NP; p++ {
			lo, hi := f.layout.Range(p)
			f.e.SpMMDotPage(p, lo, hi, b, In(bx, 3), Operand{Vec: by, Ver: 3}, xyB, yyB)
		}

		for p := 0; p < f.e.NP; p++ {
			if outs[0].S[p].Load() != by.S[p].Load() {
				t.Fatalf("b=%d page %d: stamp batch=%d scalar=%d", b, p, by.S[p].Load(), outs[0].S[p].Load())
			}
			if xyS[0].Missing(p) != xyB.Missing(p) || yyS[0].Missing(p) != yyB.Missing(p) {
				t.Fatalf("b=%d page %d: missing sets differ", b, p)
			}
			lo, hi := f.layout.Range(p)
			if by.S[p].Load() == 3 {
				for j := 0; j < b; j++ {
					for i := lo; i < hi; i++ {
						got := by.V.Data[i*b+j]
						want := outs[j].V.Data[i]
						if math.Float64bits(got) != math.Float64bits(want) {
							t.Fatalf("b=%d page %d col %d row %d: %v != %v", b, p, j, i, got, want)
						}
					}
				}
			}
		}

		// Per-column reduction sums match the scalar partials bitwise.
		sumB := make([]float64, b)
		missB := xyB.SumAvailable(sumB)
		for j := 0; j < b; j++ {
			sumS, missS := xyS[j].SumAvailable()
			if missB != missS || math.Float64bits(sumB[j]) != math.Float64bits(sumS) {
				t.Fatalf("b=%d col %d: xy sum batch (%v, %d missing) scalar (%v, %d)", b, j, sumB[j], missB, sumS, missS)
			}
		}
		sumB = make([]float64, b)
		missB = yyB.SumAvailable(sumB)
		for j := 0; j < b; j++ {
			sumS, missS := yyS[j].SumAvailable()
			if missB != missS || math.Float64bits(sumB[j]) != math.Float64bits(sumS) {
				t.Fatalf("b=%d col %d: yy sum mismatch", b, j)
			}
		}
	}
}

func TestBatchAxpyDotPageMatchesScalarPerColumn(t *testing.T) {
	const n, page = 192, 32
	for _, b := range []int{1, 4} {
		f := newFusedFixture(t, n, page)
		rng := rand.New(rand.NewSource(int64(23 + b)))

		bspace := pagemem.NewSpace(n*b, page*b)
		bx := Vec{V: bspace.AddVector("x"), S: NewStamps(f.e.NP)}
		by := Vec{V: bspace.AddVector("y"), S: NewStamps(f.e.NP)}
		for i := range bx.V.Data {
			bx.V.Data[i] = rng.NormFloat64()
			by.V.Data[i] = rng.NormFloat64()
		}
		bx.S.Fill(4)
		by.S.Fill(3)
		bx.S[2].Store(1) // stale x page: update must skip
		alpha := make([]float64, b)
		for j := range alpha {
			alpha[j] = rng.NormFloat64()
		}
		alpha[b-1] = 0 // retired column

		cols := make([]Vec, b)
		ys := make([]Vec, b)
		yyS := make([]*Partial, b)
		for j := 0; j < b; j++ {
			cols[j] = f.vec("x"+string(rune('0'+j)), nil)
			ys[j] = f.vec("y"+string(rune('0'+j)), nil)
			sparse.GatherColumn(bx.V.Data, b, j, cols[j].V.Data)
			sparse.GatherColumn(by.V.Data, b, j, ys[j].V.Data)
			cols[j].S.Fill(4)
			ys[j].S.Fill(3)
			cols[j].S[2].Store(1)
			yyS[j] = NewPartial(f.e.NP)
			for p := 0; p < f.e.NP; p++ {
				lo, hi := f.layout.Range(p)
				f.e.AxpyDotPage(p, lo, hi, alpha[j], In(cols[j], 4), Operand{Vec: ys[j], Ver: 4}, yyS[j])
			}
		}

		yyB := NewPartialBlock(f.e.NP, b)
		for p := 0; p < f.e.NP; p++ {
			lo, hi := f.layout.Range(p)
			f.e.BatchAxpyDotPage(p, lo, hi, b, alpha, In(bx, 4), Operand{Vec: by, Ver: 4}, yyB)
		}

		for p := 0; p < f.e.NP; p++ {
			if ys[0].S[p].Load() != by.S[p].Load() {
				t.Fatalf("b=%d page %d: stamp batch=%d scalar=%d", b, p, by.S[p].Load(), ys[0].S[p].Load())
			}
			if yyS[0].Missing(p) != yyB.Missing(p) {
				t.Fatalf("b=%d page %d: missing differs", b, p)
			}
			lo, hi := f.layout.Range(p)
			for j := 0; j < b; j++ {
				for i := lo; i < hi; i++ {
					if math.Float64bits(by.V.Data[i*b+j]) != math.Float64bits(ys[j].V.Data[i]) {
						t.Fatalf("b=%d page %d col %d row %d value mismatch", b, p, j, i)
					}
				}
			}
		}
		sumB := make([]float64, b)
		missB := yyB.SumAvailable(sumB)
		for j := 0; j < b; j++ {
			sumS, missS := yyS[j].SumAvailable()
			if missB != missS || math.Float64bits(sumB[j]) != math.Float64bits(sumS) {
				t.Fatalf("b=%d col %d: yy sum batch (%v, %d) scalar (%v, %d)", b, j, sumB[j], missB, sumS, missS)
			}
		}
	}
}
