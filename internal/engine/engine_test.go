package engine

import (
	"testing"

	"repro/internal/pagemem"
	"repro/internal/sparse"
	"repro/internal/taskrt"
)

func TestPartial(t *testing.T) {
	af := NewPartial(3)
	if !af.Missing(0) || !af.Missing(2) {
		t.Fatal("slots not missing after reset")
	}
	af.Store(1, 2.5)
	if af.Missing(1) || af.Load(1) != 2.5 {
		t.Fatal("store/load broken")
	}
	sum, missing := af.SumAvailable()
	if sum != 2.5 || missing != 2 {
		t.Fatalf("sum=%v missing=%d", sum, missing)
	}
	if af.Len() != 3 {
		t.Fatal("len wrong")
	}
}

func TestChunkRanges(t *testing.T) {
	chunks := ChunkRanges(10, 3)
	if len(chunks) != 3 || chunks[0][0] != 0 || chunks[2][1] != 10 {
		t.Fatalf("chunks = %v", chunks)
	}
	total := 0
	for _, c := range chunks {
		total += c[1] - c[0]
	}
	if total != 10 {
		t.Fatalf("chunks do not cover: %v", chunks)
	}
	if got := ChunkRanges(2, 8); len(got) != 2 {
		t.Fatalf("more chunks than pages: %v", got)
	}
	if got := ChunkRanges(4, 0); len(got) != 1 {
		t.Fatalf("zero chunks: %v", got)
	}
}

func testMatrix(n int) *sparse.CSR {
	var tr []sparse.Triplet
	for i := 0; i < n; i++ {
		tr = append(tr, sparse.Triplet{Row: i, Col: i, Val: 4})
		if i > 0 {
			tr = append(tr, sparse.Triplet{Row: i, Col: i - 1, Val: -1})
		}
		if i < n-1 {
			tr = append(tr, sparse.Triplet{Row: i, Col: i + 1, Val: -1})
		}
	}
	return sparse.NewCSRFromTriplets(n, n, tr)
}

// TestEngineGuardsSkipStalePages checks the core contract: a PageOp skips
// pages whose inputs are not current, leaving the old version in place,
// and stamps the rest.
func TestEngineGuardsSkipStalePages(t *testing.T) {
	const n, page = 256, 32
	a := testMatrix(n)
	layout := sparse.BlockLayout{N: n, BlockSize: page}
	rt := taskrt.New(2)
	defer rt.Close()
	e := New(a, layout, rt, true, 0)

	space := pagemem.NewSpace(n, page)
	src := Vec{V: space.AddVector("src"), S: NewStamps(e.NP)}
	dst := Vec{V: space.AddVector("dst"), S: NewStamps(e.NP)}
	for i := range src.V.Data {
		src.V.Data[i] = 1
	}
	src.S.Fill(5)
	src.S[3].Store(4) // page 3 stale

	out := Operand{Vec: dst, Ver: 6}
	rt.WaitAll(e.PageOp("copy", nil, []Operand{In(src, 5)}, &out, true, func(p, lo, hi int) bool {
		copy(dst.V.Data[lo:hi], src.V.Data[lo:hi])
		return true
	}))
	for p := 0; p < e.NP; p++ {
		want := int64(6)
		if p == 3 {
			want = -1 // skipped: stays at its initial version
		}
		if got := dst.S[p].Load(); got != want {
			t.Fatalf("page %d stamped %d, want %d", p, got, want)
		}
	}

	// Dot partials: the stale output page stays missing.
	part := NewPartial(e.NP)
	rt.WaitAll(e.DotPartials("dot", nil, In(dst, 6), In(dst, 6), part))
	sum, missing := part.SumAvailable()
	if missing != 1 {
		t.Fatalf("missing = %d, want 1", missing)
	}
	if want := float64(n - page); sum != want {
		t.Fatalf("sum = %v, want %v", sum, want)
	}
}

// TestEngineSpMVConnGuard checks that SpMV skips row-pages whose input
// halo is stale and that PageConnectivity includes the neighbours.
func TestEngineSpMVConnGuard(t *testing.T) {
	const n, page = 256, 32
	a := testMatrix(n)
	layout := sparse.BlockLayout{N: n, BlockSize: page}
	conn := PageConnectivity(a, layout)
	if len(conn[1]) != 3 { // tridiagonal: self + both neighbours
		t.Fatalf("conn[1] = %v", conn[1])
	}
	rt := taskrt.New(2)
	defer rt.Close()
	e := New(a, layout, rt, true, 0)
	space := pagemem.NewSpace(n, page)
	x := Vec{V: space.AddVector("x"), S: NewStamps(e.NP)}
	y := Vec{V: space.AddVector("y"), S: NewStamps(e.NP)}
	x.S.Fill(0)
	x.S[2].Store(-1) // stale input page
	rt.WaitAll(e.SpMV("y=Ax", nil, In(x, 0), Operand{Vec: y, Ver: 0}))
	for p := 0; p < e.NP; p++ {
		stale := p >= 1 && p <= 3 // pages whose halo touches page 2
		if got := y.S[p].Load() == 0; got == stale {
			t.Fatalf("page %d: stamped=%v, stale=%v", p, got, stale)
		}
	}
}
