package lint

import (
	"go/ast"
	"go/types"
	"reflect"
	"regexp"
	"strconv"
	"strings"
)

// benchProvenance makes bench artefacts self-describing forever: every
// BENCH_*.json on disk must carry the provenance block (host, CPU,
// go version, commit) or cross-machine comparisons silently lie. The
// contract has two halves:
//
//   - every struct annotated //due:bench-artefact must carry a field
//     tagged json:"provenance";
//   - every value handed to writeJSON must be (a pointer to) a
//     registered bench-artefact type, and raw os.WriteFile calls must
//     not mint BENCH_*.json paths behind the schema's back.
var benchProvenance = &Analyzer{
	Name: "bench-provenance",
	Doc:  "every experiment writing a BENCH_*.json must attach the provenance block",
	Run:  runBenchProvenance,
}

var benchPathRE = regexp.MustCompile(`BENCH_.*\.json`)

// registerArtefacts validates each //due:bench-artefact struct of pkg
// and records the compliant ones in the cross-package registry. Called
// for every loaded package before any analyzer runs.
func registerArtefacts(ctx *Context, pkg *Package) {
	for _, d := range pkg.Dirs.OfKind(DirBenchArtefact) {
		spec := typeSpecOf(d.Node)
		if spec == nil {
			continue // due-directive reports unattached/mistargeted separately
		}
		st, ok := spec.Type.(*ast.StructType)
		if !ok {
			continue
		}
		if hasProvenanceField(st) {
			ctx.artefacts[pkg.Path+"."+spec.Name.Name] = true
		}
	}
}

func typeSpecOf(n ast.Node) *ast.TypeSpec {
	switch x := n.(type) {
	case *ast.TypeSpec:
		return x
	case *ast.GenDecl:
		for _, s := range x.Specs {
			if ts, ok := s.(*ast.TypeSpec); ok {
				return ts
			}
		}
	}
	return nil
}

func hasProvenanceField(st *ast.StructType) bool {
	for _, f := range st.Fields.List {
		if f.Tag == nil {
			continue
		}
		tag, err := strconv.Unquote(f.Tag.Value)
		if err != nil {
			continue
		}
		name := reflect.StructTag(tag).Get("json")
		if name == "provenance" || strings.HasPrefix(name, "provenance,") {
			return true
		}
	}
	return false
}

func runBenchProvenance(ctx *Context, pkg *Package, report reportFunc) {
	// Half one: annotated structs missing the block.
	for _, d := range pkg.Dirs.OfKind(DirBenchArtefact) {
		spec := typeSpecOf(d.Node)
		if spec == nil {
			report(d.Pos, "//due:bench-artefact must annotate a struct type declaration")
			continue
		}
		st, ok := spec.Type.(*ast.StructType)
		if !ok {
			report(spec.Pos(), "//due:bench-artefact must annotate a struct type")
			continue
		}
		if !hasProvenanceField(st) {
			report(spec.Pos(), "bench artefact %s has no json:\"provenance\" field; the artefact would be unattributable", spec.Name.Name)
		}
	}
	// Half two: writer call sites.
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			// A bench writer is writeJSON(path string, v) — an HTTP
			// responder named writeJSON(w, status, v) is not a bench
			// artefact sink.
			if name, _ := identName(call.Fun); name == "writeJSON" && len(call.Args) == 2 &&
				isStringExpr(pkg.Info, call.Args[0]) {
				checkWriteJSONArg(ctx, pkg, call.Args[1], report)
			}
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "WriteFile" {
				if id, ok := sel.X.(*ast.Ident); ok && isPackage(pkg.Info, id, "os") {
					if callMintsBenchPath(call) {
						report(call.Pos(), "raw os.WriteFile mints a BENCH_*.json; route it through writeJSON with a //due:bench-artefact schema")
					}
				}
			}
			return true
		})
	}
}

// checkWriteJSONArg resolves the payload's type and demands it be a
// registered artefact.
func checkWriteJSONArg(ctx *Context, pkg *Package, arg ast.Expr, report reportFunc) {
	t := typeOf(pkg.Info, arg)
	if t == nil {
		report(arg.Pos(), "cannot resolve the type written to a bench artefact; annotate it //due:bench-artefact")
		return
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		report(arg.Pos(), "bench artefact payload is not a named struct; declare a //due:bench-artefact schema")
		return
	}
	key := named.Obj().Pkg().Path() + "." + named.Obj().Name()
	if !ctx.artefacts[key] {
		report(arg.Pos(), "%s is not a registered bench artefact; annotate it //due:bench-artefact and give it a json:\"provenance\" field", named.Obj().Name())
	}
}

func callMintsBenchPath(call *ast.CallExpr) bool {
	found := false
	for _, a := range call.Args {
		ast.Inspect(a, func(n ast.Node) bool {
			if lit, ok := n.(*ast.BasicLit); ok && benchPathRE.MatchString(lit.Value) {
				found = true
			}
			return !found
		})
	}
	return found
}
