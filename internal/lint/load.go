// Package loading for due-lint: parse + type-check every target package
// with nothing but the standard library. go/importer's "source" compiler
// resolves stdlib imports from $GOROOT/src; module-internal import paths
// (which go/build cannot see without the module machinery) are resolved
// by mapping them onto directories under the module root and recursively
// type-checking those, with memoization. The result is full go/types
// information for every analyzed package — no golang.org/x/tools, no
// export data, no `go list` subprocesses.
package lint

import (
	"fmt"
	"go/ast"
	"go/build/constraint"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package plus everything the
// analyzers need: syntax with comments, type info, and the parsed
// //due: directives.
type Package struct {
	Path  string // import path ("repro/internal/shard")
	Dir   string
	Files []*ast.File
	TPkg  *types.Package
	Info  *types.Info
	Dirs  *Directives
	// TypeErrs holds type-checker errors. The tree is expected to
	// compile, so any entry is a tool failure, not a violation.
	TypeErrs []string
}

type loader struct {
	fset    *token.FileSet
	modPath string
	modDir  string
	std     types.Importer
	pkgs    map[string]*Package
	loading map[string]bool
}

// newLoader builds a loader rooted at the module containing dir (found
// by walking up to go.mod), or rooted at dir itself with the given
// module path when modPath is non-empty (the fixture-test mode).
func newLoader(dir, modPath string) (*loader, error) {
	fset := token.NewFileSet()
	l := &loader{
		fset:    fset,
		std:     importer.ForCompiler(fset, "source", nil),
		pkgs:    make(map[string]*Package),
		loading: make(map[string]bool),
	}
	if modPath != "" {
		l.modPath, l.modDir = modPath, dir
		return l, nil
	}
	root, path, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	l.modPath, l.modDir = path, root
	return l, nil
}

// findModule walks up from dir to the enclosing go.mod and returns the
// module root directory and module path.
func findModule(dir string) (root, path string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := abs; ; {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("no module line in %s/go.mod", d)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("no go.mod found above %s", abs)
		}
		d = parent
	}
}

// Import implements types.Importer: module-internal paths load from
// source under the module root, everything else goes to the stdlib
// source importer.
func (l *loader) Import(path string) (*types.Package, error) {
	if path == "C" {
		return nil, fmt.Errorf("cgo is not supported")
	}
	if path == l.modPath || strings.HasPrefix(path, l.modPath+"/") {
		p, err := l.loadPath(path)
		if err != nil {
			return nil, err
		}
		return p.TPkg, nil
	}
	return l.std.Import(path)
}

func (l *loader) loadPath(ipath string) (*Package, error) {
	rel := strings.TrimPrefix(strings.TrimPrefix(ipath, l.modPath), "/")
	return l.loadDir(filepath.Join(l.modDir, filepath.FromSlash(rel)), ipath)
}

// loadDir parses and type-checks the package in dir under import path
// ipath. Test files are excluded: the invariants bind production code,
// and test-only allocations or clocks are fine.
func (l *loader) loadDir(dir, ipath string) (*Package, error) {
	if p, ok := l.pkgs[ipath]; ok {
		return p, nil
	}
	if l.loading[ipath] {
		return nil, fmt.Errorf("import cycle through %s", ipath)
	}
	l.loading[ipath] = true
	defer delete(l.loading, ipath)

	names, err := goFilesIn(dir)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("no buildable Go files in %s", dir)
	}
	p := &Package{Path: ipath, Dir: dir}
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("parse %s: %w", name, err)
		}
		p.Files = append(p.Files, f)
	}
	conf := types.Config{
		Importer: l,
		Error: func(err error) {
			p.TypeErrs = append(p.TypeErrs, err.Error())
		},
	}
	p.Info = &types.Info{
		Types: make(map[ast.Expr]types.TypeAndValue),
		Uses:  make(map[*ast.Ident]types.Object),
		Defs:  make(map[*ast.Ident]types.Object),
	}
	// Check never returns a nil package; errors are collected above so
	// analysis can proceed best-effort over whatever was resolved.
	p.TPkg, _ = conf.Check(ipath, l.fset, p.Files, p.Info)
	p.Dirs = parseDirectives(l.fset, p.Files)
	l.pkgs[ipath] = p
	return p, nil
}

// goFilesIn lists the non-test .go files of dir that build on the
// current platform (filename GOOS/GOARCH suffixes plus //go:build
// lines — the two mechanisms this module uses).
func goFilesIn(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") {
			continue
		}
		if !matchesPlatform(name) {
			continue
		}
		src, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return nil, err
		}
		if !buildTagsSatisfied(src) {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

var knownOS = map[string]bool{
	"aix": true, "android": true, "darwin": true, "dragonfly": true,
	"freebsd": true, "illumos": true, "ios": true, "js": true,
	"linux": true, "netbsd": true, "openbsd": true, "plan9": true,
	"solaris": true, "wasip1": true, "windows": true,
}

var knownArch = map[string]bool{
	"386": true, "amd64": true, "arm": true, "arm64": true,
	"loong64": true, "mips": true, "mips64": true, "mips64le": true,
	"mipsle": true, "ppc64": true, "ppc64le": true, "riscv64": true,
	"s390x": true, "wasm": true,
}

// matchesPlatform applies the _GOOS / _GOARCH / _GOOS_GOARCH filename
// convention.
func matchesPlatform(name string) bool {
	base := strings.TrimSuffix(name, ".go")
	parts := strings.Split(base, "_")
	if len(parts) >= 3 && knownOS[parts[len(parts)-2]] && knownArch[parts[len(parts)-1]] {
		return parts[len(parts)-2] == runtime.GOOS && parts[len(parts)-1] == runtime.GOARCH
	}
	if len(parts) >= 2 {
		last := parts[len(parts)-1]
		if knownOS[last] {
			return last == runtime.GOOS
		}
		if knownArch[last] {
			return last == runtime.GOARCH
		}
	}
	return true
}

// buildTagsSatisfied evaluates //go:build lines before the package
// clause against the current GOOS/GOARCH (compiler gc, all go1.x
// release tags considered satisfied).
func buildTagsSatisfied(src []byte) bool {
	for _, line := range strings.Split(string(src), "\n") {
		trimmed := strings.TrimSpace(line)
		if strings.HasPrefix(trimmed, "package ") {
			break
		}
		if !constraint.IsGoBuild(trimmed) {
			continue
		}
		expr, err := constraint.Parse(trimmed)
		if err != nil {
			continue
		}
		ok := expr.Eval(func(tag string) bool {
			return tag == runtime.GOOS || tag == runtime.GOARCH ||
				tag == "gc" || strings.HasPrefix(tag, "go1")
		})
		if !ok {
			return false
		}
	}
	return true
}

// expandPatterns resolves the command-line patterns ("./...",
// "./internal/shard", "dir/...") into package directories under the
// module root. testdata, vendor and hidden directories are skipped.
func (l *loader) expandPatterns(cwd string, patterns []string) ([]string, error) {
	seen := make(map[string]bool)
	var dirs []string
	add := func(dir string) error {
		abs, err := filepath.Abs(dir)
		if err != nil {
			return err
		}
		names, err := goFilesIn(abs)
		if err != nil || len(names) == 0 {
			return nil // not a buildable package dir; walk callers skip it
		}
		if !seen[abs] {
			seen[abs] = true
			dirs = append(dirs, abs)
		}
		return nil
	}
	for _, pat := range patterns {
		if rest, ok := strings.CutSuffix(pat, "..."); ok {
			root := filepath.Join(cwd, strings.TrimSuffix(rest, "/"))
			if rest == "" || rest == "./" {
				root = cwd
			}
			err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if !d.IsDir() {
					return nil
				}
				name := d.Name()
				if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
					name == "testdata" || name == "vendor") {
					return filepath.SkipDir
				}
				return add(path)
			})
			if err != nil {
				return nil, err
			}
			continue
		}
		if err := add(filepath.Join(cwd, pat)); err != nil {
			return nil, err
		}
	}
	return dirs, nil
}

// importPathFor maps a directory under the module root to its import
// path.
func (l *loader) importPathFor(dir string) (string, error) {
	rel, err := filepath.Rel(l.modDir, dir)
	if err != nil || strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("%s is outside module %s", dir, l.modDir)
	}
	if rel == "." {
		return l.modPath, nil
	}
	return l.modPath + "/" + filepath.ToSlash(rel), nil
}
