package lint

import (
	"go/ast"
)

// cancellationPoll guarantees every registered solver can be torn down:
// a solver's Run method owns the main iteration loop, and if that loop
// never polls Config.Cancelled the admission controller's cancel signal
// is dead letter — the solve runs to convergence while the tenant has
// long since hung up. Scope: internal/core and internal/dist, where the
// registered solvers live. A Run method is recognized by returning a
// Result (the solver contract) and containing at least one loop.
var cancellationPoll = &Analyzer{
	Name: "cancellation-poll",
	Doc:  "every registered solver's main iteration loop must poll Config.Cancelled",
	Run:  runCancellationPoll,
}

func runCancellationPoll(ctx *Context, pkg *Package, report reportFunc) {
	if !pathUnder(pkg.Path, "internal/core") && !pathUnder(pkg.Path, "internal/dist") {
		return
	}
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || fn.Name.Name != "Run" || fn.Recv == nil {
				continue
			}
			if !returnsResult(fn) || !containsLoop(fn.Body) {
				continue
			}
			if !loopPollsCancelled(fn.Body) {
				report(fn.Pos(), "solver Run loop never polls Config.Cancelled; the solve cannot be torn down mid-iteration")
			}
		}
	}
}

func returnsResult(fn *ast.FuncDecl) bool {
	if fn.Type.Results == nil {
		return false
	}
	for _, field := range fn.Type.Results.List {
		name := ""
		switch t := field.Type.(type) {
		case *ast.Ident:
			name = t.Name
		case *ast.SelectorExpr:
			name = t.Sel.Name
		case *ast.StarExpr:
			switch inner := t.X.(type) {
			case *ast.Ident:
				name = inner.Name
			case *ast.SelectorExpr:
				name = inner.Sel.Name
			}
		}
		if name == "Result" {
			return true
		}
	}
	return false
}

func containsLoop(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			found = true
		}
		return !found
	})
	return found
}

// loopPollsCancelled reports whether any for/range loop in the body
// references Cancelled somewhere in its own subtree.
func loopPollsCancelled(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		var loopBody *ast.BlockStmt
		switch x := n.(type) {
		case *ast.ForStmt:
			loopBody = x.Body
		case *ast.RangeStmt:
			loopBody = x.Body
		default:
			return !found
		}
		ast.Inspect(loopBody, func(m ast.Node) bool {
			if name, _ := identName(m); name == "Cancelled" {
				found = true
			}
			return !found
		})
		return !found
	})
	return found
}
