package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// hotpathAlloc enforces the zero-alloc discipline on //due:hotpath
// bodies: the prepared task graphs are built once and resubmitted every
// iteration, so anything the runtime might heap-allocate per execution
// (make, append, fmt, string concatenation, closures, map/slice
// literals, go statements) is a violation.
var hotpathAlloc = &Analyzer{
	Name: "hotpath-alloc",
	Doc:  "//due:hotpath function bodies must not contain allocation-causing constructs",
	Run:  runHotpathAlloc,
}

func runHotpathAlloc(ctx *Context, pkg *Package, report reportFunc) {
	for _, d := range pkg.Dirs.OfKind(DirHotpath) {
		if d.Node == nil {
			continue
		}
		// The annotation governs every function body in the attached
		// node's subtree: a FuncDecl, or a statement whose expression
		// builds a task from a closure.
		found := false
		ast.Inspect(d.Node, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					found = true
					checkHotBody(pkg, fn.Body, report)
				}
				return false
			case *ast.FuncLit:
				found = true
				checkHotBody(pkg, fn.Body, report)
				return false
			}
			return true
		})
		if !found {
			report(d.Node.Pos(), "//due:hotpath governs no function body")
		}
	}
}

// checkHotBody walks one steady-state function body. Nested closures
// are themselves a violation (closure creation allocates), so the walk
// stops at them after reporting.
func checkHotBody(pkg *Package, body *ast.BlockStmt, report reportFunc) {
	info := pkg.Info
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			report(x.Pos(), "closure creation allocates; hoist the func to prepare time")
			return false
		case *ast.GoStmt:
			report(x.Pos(), "go statement spawns a goroutine per execution; use the prepared task graph")
		case *ast.CallExpr:
			checkHotCall(pkg, x, report)
		case *ast.CompositeLit:
			checkHotComposite(info, x, report)
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				if _, ok := x.X.(*ast.CompositeLit); ok {
					report(x.Pos(), "&composite literal escapes to the heap")
				}
			}
		case *ast.BinaryExpr:
			if x.Op == token.ADD && isStringExpr(info, x.X) {
				report(x.Pos(), "string concatenation allocates; format at prepare time")
			}
		case *ast.AssignStmt:
			if x.Tok == token.ADD_ASSIGN && len(x.Lhs) == 1 && isStringExpr(info, x.Lhs[0]) {
				report(x.Pos(), "string concatenation allocates; format at prepare time")
			}
		}
		return true
	})
}

func checkHotCall(pkg *Package, call *ast.CallExpr, report reportFunc) {
	info := pkg.Info
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if isBuiltin(info, fun, "make") {
			report(call.Pos(), "make allocates; size buffers at prepare time")
		}
		if isBuiltin(info, fun, "new") {
			report(call.Pos(), "new allocates; hoist to prepare time")
		}
		if isBuiltin(info, fun, "append") {
			report(call.Pos(), "append may grow and reallocate; pre-size at prepare time")
		}
	case *ast.SelectorExpr:
		if id, ok := fun.X.(*ast.Ident); ok && isPackage(info, id, "fmt") {
			report(call.Pos(), "fmt.%s allocates (interface boxing + formatting); format at prepare time", fun.Sel.Name)
		}
	}
	// Conversions between string and []byte copy the payload.
	if len(call.Args) == 1 {
		if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
			to, from := tv.Type, typeOf(info, call.Args[0])
			if from != nil && isStringByteConv(to, from) {
				report(call.Pos(), "string/[]byte conversion copies; hoist to prepare time")
			}
		}
	}
}

func checkHotComposite(info *types.Info, lit *ast.CompositeLit, report reportFunc) {
	if t := typeOf(info, lit); t != nil {
		switch t.Underlying().(type) {
		case *types.Map:
			report(lit.Pos(), "map literal allocates; build the map at prepare time")
		case *types.Slice:
			report(lit.Pos(), "slice literal allocates; pre-size at prepare time")
		}
		return
	}
	// Type info unavailable (fixture with missing deps): fall back to
	// syntax.
	switch lt := lit.Type.(type) {
	case *ast.MapType:
		report(lit.Pos(), "map literal allocates; build the map at prepare time")
	case *ast.ArrayType:
		if lt.Len == nil {
			report(lit.Pos(), "slice literal allocates; pre-size at prepare time")
		}
	}
}

// --- shared type-query helpers ---

func typeOf(info *types.Info, e ast.Expr) types.Type {
	if info == nil {
		return nil
	}
	if tv, ok := info.Types[e]; ok {
		return tv.Type
	}
	return nil
}

// isBuiltin reports whether id resolves to (or, with no type info,
// textually names) the given builtin.
func isBuiltin(info *types.Info, id *ast.Ident, name string) bool {
	if id.Name != name {
		return false
	}
	if obj := info.Uses[id]; obj != nil {
		_, ok := obj.(*types.Builtin)
		return ok
	}
	return true // unresolved: assume the predeclared meaning
}

// isPackage reports whether id names an imported package with the given
// path (or, with no type info, that textual name).
func isPackage(info *types.Info, id *ast.Ident, path string) bool {
	if obj := info.Uses[id]; obj != nil {
		pn, ok := obj.(*types.PkgName)
		return ok && pn.Imported().Path() == path
	}
	return id.Name == path
}

func isStringExpr(info *types.Info, e ast.Expr) bool {
	t := typeOf(info, e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isStringByteConv(to, from types.Type) bool {
	return (isStringType(to) && isByteSlice(from)) || (isByteSlice(to) && isStringType(from))
}

func isStringType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}
