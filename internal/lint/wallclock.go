package lint

import (
	"go/ast"
	"strconv"
)

// noWallclockRand protects bitwise reproducibility of the kernel
// packages: the perf-guard and the fault-injection experiments both
// assume that running the same graph twice produces identical bits, so
// internal/sparse and internal/engine must not read the wall clock or a
// random source. Timing belongs in the experiment harness; randomness
// (fault injection schedules) is seeded and injected from outside.
var noWallclockRand = &Analyzer{
	Name: "no-wallclock-rand",
	Doc:  "no time.Now / math/rand inside the bitwise-reproducible kernel packages",
	Run:  runNoWallclockRand,
}

var wallclockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
}

func runNoWallclockRand(ctx *Context, pkg *Package, report reportFunc) {
	if !pathUnder(pkg.Path, "internal/sparse") && !pathUnder(pkg.Path, "internal/engine") {
		return
	}
	for _, f := range pkg.Files {
		for _, imp := range f.Imports {
			path, _ := strconv.Unquote(imp.Path.Value)
			if path == "math/rand" || path == "math/rand/v2" {
				report(imp.Pos(), "math/rand import in a reproducible kernel package; inject seeded randomness from the harness")
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || !wallclockFuncs[sel.Sel.Name] {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok || !isPackage(pkg.Info, id, "time") {
				return true
			}
			report(sel.Pos(), "time.%s in a reproducible kernel package; timing belongs in the experiment harness", sel.Sel.Name)
			return true
		})
	}
}
