package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// priorityClamp protects the AFEIR discipline: recovery work must run
// strictly below every compute tier, so recovery task creation sites
// (annotated //due:recovery) must derive their priority from the
// overlap clamp — Config.overlapPriority(), Engine.RecoveryPriority —
// never from raw Config.TaskPriority or a hardcoded negative literal.
var priorityClamp = &Analyzer{
	Name: "priority-clamp",
	Doc:  "recovery tasks take their priority from the overlap clamp, never raw Config.TaskPriority",
	Run:  runPriorityClamp,
}

// clampNames are the identifiers that prove the priority flowed through
// the clamp. OverlappedRecovery applies the clamp internally, so a
// recovery site delegating to it is compliant.
var clampNames = map[string]bool{
	"overlapPriority":    true,
	"OverlapPriority":    true,
	"RecoveryPriority":   true,
	"recoveryPriority":   true,
	"OverlappedRecovery": true,
}

func runPriorityClamp(ctx *Context, pkg *Package, report reportFunc) {
	scoped := pathUnder(pkg.Path, "internal/core") || pathUnder(pkg.Path, "internal/engine") ||
		pathUnder(pkg.Path, "internal/shard") || pathUnder(pkg.Path, "internal/dist")
	for _, d := range pkg.Dirs.OfKind(DirRecovery) {
		if d.Node == nil {
			continue
		}
		usesRaw, usesClamp := token.NoPos, false
		ast.Inspect(d.Node, func(n ast.Node) bool {
			name, pos := identName(n)
			if name == "" {
				return true
			}
			if name == "TaskPriority" && usesRaw == token.NoPos {
				usesRaw = pos
			}
			if clampNames[name] {
				usesClamp = true
			}
			return true
		})
		if usesRaw != token.NoPos {
			report(usesRaw, "recovery site reads raw Config.TaskPriority; derive the priority from overlapPriority() so recovery stays below the compute tier")
		} else if !usesClamp {
			// Report at the governed node, not the comment, so a stacked
			// //due:allow on the same node can waive it.
			report(d.Node.Pos(), "//due:recovery site never consults the overlap clamp (overlapPriority / RecoveryPriority / OverlappedRecovery)")
		}
	}
	if !scoped {
		return
	}
	// Hardcoded literals defeat the clamp just as thoroughly as raw
	// TaskPriority: a TaskSpec{Priority: -1} pins recovery at a fixed
	// tier regardless of where the tenant's compute runs.
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			lit, ok := n.(*ast.CompositeLit)
			if !ok || !isTaskSpecLit(lit) {
				return true
			}
			for _, el := range lit.Elts {
				kv, ok := el.(*ast.KeyValueExpr)
				if !ok {
					continue
				}
				if key, ok := kv.Key.(*ast.Ident); !ok || key.Name != "Priority" {
					continue
				}
				if isNegativeIntLit(kv.Value) {
					report(kv.Value.Pos(), "hardcoded negative task priority; use the clamped Engine.RecoveryPriority so per-tenant tiers stay ordered")
				}
			}
			return true
		})
	}
}

func identName(n ast.Node) (string, token.Pos) {
	switch x := n.(type) {
	case *ast.SelectorExpr:
		return x.Sel.Name, x.Sel.Pos()
	case *ast.Ident:
		return x.Name, x.Pos()
	}
	return "", token.NoPos
}

func isTaskSpecLit(lit *ast.CompositeLit) bool {
	switch t := lit.Type.(type) {
	case *ast.Ident:
		return strings.HasSuffix(t.Name, "TaskSpec")
	case *ast.SelectorExpr:
		return strings.HasSuffix(t.Sel.Name, "TaskSpec")
	}
	return false
}

func isNegativeIntLit(e ast.Expr) bool {
	u, ok := e.(*ast.UnaryExpr)
	if !ok || u.Op != token.SUB {
		return false
	}
	b, ok := u.X.(*ast.BasicLit)
	return ok && b.Kind == token.INT
}
