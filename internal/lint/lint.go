// Package lint is due-lint: an invariant-enforcing static analysis
// suite for this repository's hot paths, reductions, priorities and
// cancellation discipline. Built on go/parser, go/ast and go/types
// only — the module stays dependency-free.
//
// The six checks (DESIGN.md §9):
//
//	hotpath-alloc        //due:hotpath bodies contain no
//	                     allocation-causing constructs
//	reduction-accounting coordinator partial sums in internal/shard
//	                     and internal/dist always account a reduction
//	                     superstep, so Substrate.Reductions() never
//	                     drifts from reality
//	priority-clamp       recovery tasks take their priority from the
//	                     overlap clamp, never raw Config.TaskPriority
//	                     or a hardcoded literal
//	cancellation-poll    every registered solver's main iteration loop
//	                     polls Config.Cancelled
//	no-wallclock-rand    no time.Now / math/rand in the bitwise-
//	                     reproducible kernel packages
//	bench-provenance     every BENCH_*.json writer goes through a
//	                     //due:bench-artefact schema carrying the
//	                     provenance block
//
// Violations are waivable per-site with //due:allow(<check>) <reason>;
// the directive grammar itself is enforced by the always-on
// due-directive check.
package lint

import (
	"fmt"
	"go/token"
	"sort"
	"strings"
)

// Diagnostic is one violation, positioned for file:line:col output.
type Diagnostic struct {
	Pos     token.Position
	Check   string
	Message string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Check, d.Message)
}

// Result is the outcome of a lint run. Violations and tool failures
// are distinct: a violation means the tree breaks an invariant, a tool
// error means the analysis itself could not run (unparsable file,
// unresolvable types) and nothing may be concluded from the rest.
type Result struct {
	Diags    []Diagnostic
	ToolErrs []string
}

// Analyzer is one named check.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(ctx *Context, pkg *Package, report reportFunc)
}

type reportFunc func(pos token.Pos, format string, args ...any)

// Analyzers returns the full suite in stable order. The due-directive
// grammar check always runs and is not listed (nor waivable).
func Analyzers() []*Analyzer {
	return []*Analyzer{
		hotpathAlloc,
		reductionAccounting,
		priorityClamp,
		cancellationPoll,
		noWallclockRand,
		benchProvenance,
	}
}

// Context carries cross-package state: the loader's cache (every
// module package pulled in, analyzed or not) and the module-wide
// registry of //due:bench-artefact types.
type Context struct {
	fset *token.FileSet
	pkgs map[string]*Package
	// artefacts maps "pkgpath.TypeName" of every //due:bench-artefact
	// struct in the loaded tree.
	artefacts map[string]bool
}

// Config selects what to lint.
type Config struct {
	Dir      string   // working directory; its module is analyzed
	Patterns []string // package patterns, default ["./..."]
	Checks   []string // subset of analyzer names; empty = all
}

// Main runs the suite and returns diagnostics sorted by position.
// A non-nil error is a tool failure (as are Result.ToolErrs entries).
func Main(cfg Config) (*Result, error) {
	if len(cfg.Patterns) == 0 {
		cfg.Patterns = []string{"./..."}
	}
	l, err := newLoader(cfg.Dir, "")
	if err != nil {
		return nil, err
	}
	dirs, err := l.expandPatterns(cfg.Dir, cfg.Patterns)
	if err != nil {
		return nil, err
	}
	res := &Result{}
	var targets []*Package
	for _, dir := range dirs {
		ipath, err := l.importPathFor(dir)
		if err != nil {
			res.ToolErrs = append(res.ToolErrs, err.Error())
			continue
		}
		p, err := l.loadDir(dir, ipath)
		if err != nil {
			res.ToolErrs = append(res.ToolErrs, fmt.Sprintf("%s: %v", ipath, err))
			continue
		}
		targets = append(targets, p)
	}
	runSuite(l, targets, cfg.Checks, res)
	return res, nil
}

// runSuite analyzes the target packages with the selected checks,
// applying waivers and enforcing the directive grammar.
func runSuite(l *loader, targets []*Package, checks []string, res *Result) {
	enabled := make(map[string]bool)
	for _, c := range checks {
		enabled[c] = true
	}
	active := func(name string) bool { return len(enabled) == 0 || enabled[name] }

	ctx := &Context{fset: l.fset, pkgs: l.pkgs, artefacts: make(map[string]bool)}
	// The artefact registry spans every loaded package (targets plus
	// their module-internal dependencies): a writeJSON in cmd/due-bench
	// must see the schema declared in internal/experiments.
	for _, p := range l.pkgs {
		registerArtefacts(ctx, p)
	}

	for _, pkg := range targets {
		for _, e := range pkg.TypeErrs {
			res.ToolErrs = append(res.ToolErrs, e)
		}
		var raw []Diagnostic
		for _, a := range Analyzers() {
			if !active(a.Name) {
				continue
			}
			name := a.Name
			a.Run(ctx, pkg, func(pos token.Pos, format string, args ...any) {
				raw = append(raw, Diagnostic{
					Pos:     l.fset.Position(pos),
					Check:   name,
					Message: fmt.Sprintf(format, args...),
				})
			})
		}
		res.Diags = append(res.Diags, applyWaivers(l.fset, pkg, raw)...)
		res.Diags = append(res.Diags, checkDirectives(l.fset, pkg, active)...)
	}
	sort.Slice(res.Diags, func(i, j int) bool {
		a, b := res.Diags[i], res.Diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Pos.Column < b.Pos.Column
	})
	sort.Strings(res.ToolErrs)
}

// applyWaivers drops diagnostics covered by a matching
// //due:allow(check) directive and marks those waivers used.
func applyWaivers(fset *token.FileSet, pkg *Package, raw []Diagnostic) []Diagnostic {
	waivers := pkg.Dirs.OfKind(DirAllow)
	var kept []Diagnostic
	for _, d := range raw {
		suppressed := false
		for _, w := range waivers {
			if w.Check != d.Check || w.Reason == "" {
				continue
			}
			// Re-derive the token.Pos-comparable position from the
			// recorded file:line: waiver coverage was computed on the
			// node span, so compare by position fields.
			if coversPosition(fset, w, d.Pos) {
				w.used = true
				suppressed = true
				break
			}
		}
		if !suppressed {
			kept = append(kept, d)
		}
	}
	return kept
}

func coversPosition(fset *token.FileSet, w *Directive, pos token.Position) bool {
	if w.Node != nil {
		start, end := fset.Position(w.Node.Pos()), fset.Position(w.Node.End())
		if pos.Filename == start.Filename &&
			(pos.Line > start.Line || (pos.Line == start.Line && pos.Column >= start.Column)) &&
			(pos.Line < end.Line || (pos.Line == end.Line && pos.Column <= end.Column)) {
			return true
		}
	}
	wp := fset.Position(w.Pos)
	return wp.Filename == pos.Filename && wp.Line == pos.Line
}

// knownChecks for waiver validation.
func knownChecks() map[string]bool {
	m := make(map[string]bool)
	for _, a := range Analyzers() {
		m[a.Name] = true
	}
	return m
}

// checkDirectives enforces the grammar: no unknown directives, every
// waiver names a known check and carries a reason, every directive
// attaches to a node, and every active waiver suppressed something.
func checkDirectives(fset *token.FileSet, pkg *Package, active func(string) bool) []Diagnostic {
	known := knownChecks()
	var out []Diagnostic
	emit := func(pos token.Pos, format string, args ...any) {
		out = append(out, Diagnostic{
			Pos:     fset.Position(pos),
			Check:   "due-directive",
			Message: fmt.Sprintf(format, args...),
		})
	}
	// Diagnostics land on the governed node when one exists — the comment
	// itself holds the directive text, so pointing at it would be
	// redundant (and unmarkable in fixtures).
	at := func(d *Directive) token.Pos {
		if d.Node != nil {
			return d.Node.Pos()
		}
		return d.Pos
	}
	for _, d := range pkg.Dirs.All {
		switch d.Kind {
		case DirUnknown:
			emit(at(d), "unknown //due: directive %q (known: hotpath, recovery, bench-artefact, allow(<check>) <reason>)", d.Raw)
			continue
		case DirAllow:
			if !known[d.Check] {
				emit(at(d), "waiver names unknown check %q (known: %s)", d.Check, strings.Join(checkNames(), ", "))
				continue
			}
			if d.Reason == "" {
				emit(at(d), "waiver for %q has no reason — the justification is mandatory", d.Check)
				continue
			}
			if d.Node == nil {
				emit(d.Pos, "waiver for %q attaches to no statement or declaration", d.Check)
				continue
			}
			if !d.used && active(d.Check) {
				emit(at(d), "unused waiver: %q reports nothing here — remove it", d.Check)
			}
		default:
			if d.Node == nil {
				emit(d.Pos, "directive %q attaches to no statement or declaration", d.Raw)
			}
		}
	}
	return out
}

func checkNames() []string {
	var names []string
	for _, a := range Analyzers() {
		names = append(names, a.Name)
	}
	return names
}

// pathUnder reports whether the import path is, or lies under, a
// package whose path ends with seg (e.g. "internal/shard") — suffix
// matching so fixture trees scope the same way the real module does.
func pathUnder(path, seg string) bool {
	return path == seg || strings.HasSuffix(path, "/"+seg) ||
		strings.Contains(path, "/"+seg+"/")
}
