package lint

import "testing"

// TestRepoTreeLintClean pins that due-lint exits 0 on the repository at
// HEAD: no invariant violations, no tool failures. The tree stays
// lint-clean by construction — a change that trips an analyzer must
// either fix the violation or carry a reviewed //due:allow waiver.
func TestRepoTreeLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	root, _, err := findModule(".")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Main(Config{Dir: root})
	if err != nil {
		t.Fatalf("due-lint tool failure: %v", err)
	}
	for _, e := range res.ToolErrs {
		t.Errorf("tool failure: %s", e)
	}
	for _, d := range res.Diags {
		t.Errorf("violation: %s", d)
	}
}
