// Fixture for bench-provenance.
package exp

import (
	"encoding/json"
	"os"
)

type Provenance struct {
	Host string `json:"host"`
}

//due:bench-artefact
type GoodResult struct {
	N          int        `json:"n"`
	Provenance Provenance `json:"provenance"`
}

//due:bench-artefact
type NakedResult struct { // want "no json:.provenance. field"
	N int `json:"n"`
}

type UntrackedResult struct{ N int }

func writeJSON(path string, v any) {
	b, _ := json.Marshal(v)
	_ = os.WriteFile(path, b, 0o644)
}

func emit() {
	writeJSON("BENCH_good.json", &GoodResult{})
	writeJSON("BENCH_bad.json", UntrackedResult{}) // want "not a registered bench artefact"
	_ = os.WriteFile("BENCH_raw.json", nil, 0o644) // want "raw os.WriteFile mints"
}
