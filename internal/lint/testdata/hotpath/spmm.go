// Fixture for the hotpath-alloc analyzer: the multi-RHS kernel shapes
// (SpMM row loops over interleaved multivectors, width-specialized
// bodies using slice-to-array-pointer views, rolling column counters)
// must lint clean, and the tempting per-call accumulator allocation must
// be caught.
package hot

type csrish struct {
	rowPtr []int32
	cols   []int32
	vals   []float64
}

// spmmW4 mirrors the width-4 CSR SpMM kernel: a local fixed-size
// accumulator array and (*[4]float64) views allocate nothing.
//
//due:hotpath
func (a *csrish) spmmW4(x, y []float64, lo, hi int) {
	const b = 4
	for i := lo; i < hi; i++ {
		row := a.rowPtr[i]
		cols := a.cols[row:a.rowPtr[i+1]]
		vals := a.vals[row:a.rowPtr[i+1]]
		var acc [b]float64
		for k, c := range cols {
			v := vals[k]
			xr := (*[b]float64)(x[int(c)*b:])
			acc[0] += v * xr[0]
			acc[1] += v * xr[1]
			acc[2] += v * xr[2]
			acc[3] += v * xr[3]
		}
		*(*[b]float64)(y[i*b:]) = acc
	}
}

// batchAxpy mirrors the flat interleaved multivector pass: per-column
// scalars indexed by a rolling counter instead of a division.
//
//due:hotpath
func batchAxpy(alpha []float64, x, y []float64, b int) {
	j := 0
	for i := range x {
		y[i] += alpha[j] * x[i]
		if j++; j == b {
			j = 0
		}
	}
}

// batchAxpyBad seeds the tempting violation: sizing the per-column
// accumulator off the runtime width allocates on every call.
//
//due:hotpath
func batchAxpyBad(alpha []float64, x, y []float64, b int) {
	acc := make([]float64, b) // want "make allocates"
	for i := range x {
		acc[i%b] += alpha[i%b] * x[i]
	}
	for i := range y {
		y[i] += acc[i%b]
	}
}
