// Fixture for the hotpath-alloc analyzer.
package hot

import "fmt"

type task struct {
	buf  []float64
	name string
}

//due:hotpath
func (t *task) good(lo, hi int) {
	for i := lo; i < hi; i++ {
		t.buf[i] = 0
	}
}

//due:hotpath
func (t *task) bad(n int) {
	s := make([]float64, n)     // want "make allocates"
	t.buf = append(t.buf, s...) // want "append may grow"
	fmt.Println(len(s))         // want "fmt.Println allocates"
	m := map[string]int{}       // want "map literal allocates"
	_ = m
	sl := []int{1, 2} // want "slice literal allocates"
	_ = sl
	p := new(int) // want "new allocates"
	_ = p
	q := &task{} // want "composite literal escapes"
	_ = q
	f := func() {} // want "closure creation allocates"
	f()
	go t.good(0, n)       // want "go statement spawns"
	t.name += "x"         // want "string concatenation allocates"
	label := t.name + "y" // want "string concatenation allocates"
	raw := []byte(label)  // want "conversion copies"
	_ = raw
}
