// Fixture for reduction-accounting under an internal/dist path: the
// transport layer must never sum partials itself.
package dist

type partial struct{ vals []float64 }

func (p *partial) SumAvailable() (float64, int) {
	var s float64
	for _, v := range p.vals {
		s += v
	}
	return s, 0
}

type coordinator struct{ part *partial }

func (c *coordinator) allreduce() float64 {
	v, _ := c.part.SumAvailable() // want "bypasses the Substrate accounting"
	return v
}
