// Fixture: a directive trailing the last declaration governs nothing.
package un

func a() {}

//due:hotpath
