// Fixture for the waiver grammar: //due:allow(<check>) suppresses
// exactly its named check on its node, and nothing else.
package shard

type partial struct{ vals []float64 }

func (p *partial) SumAvailable() (float64, int) {
	var s float64
	for _, v := range p.vals {
		s += v
	}
	return s, 0
}

type sub struct {
	reductions int64
	part       *partial
}

// deferred's reduction-accounting violation is waived: no diagnostic.
//
//due:allow(reduction-accounting) fixture: deferred-sum discipline, accounted by the caller
func (s *sub) deferred() float64 {
	v, _ := s.part.SumAvailable()
	return v
}

// hot carries the same waiver, which must NOT leak onto the
// hotpath-alloc violation sharing the function.
//
//due:hotpath
//due:allow(reduction-accounting) fixture: the waiver must not leak across checks
func (s *sub) hot(n int) []float64 {
	buf := make([]float64, n) // want "make allocates"
	v, _ := s.part.SumAvailable()
	_ = v
	return buf
}
