// Fixture for priority-clamp under an internal/core path.
package core

type Config struct{ TaskPriority int }

func (c *Config) overlapPriority() int {
	if p := c.TaskPriority - 1; p < -1 {
		return p
	}
	return -1
}

type TaskSpec struct {
	Label    string
	Priority int
}

type rt struct{}

func (r *rt) Submit(spec TaskSpec) {}

func (r *rt) PrepareSingle(label string, prio int, fn func()) {}

type solver struct {
	cfg Config
	rt  *rt
}

func (s *solver) build() {
	//due:recovery
	s.rt.PrepareSingle("r1", s.cfg.overlapPriority(), func() {})
	//due:recovery
	s.rt.PrepareSingle("r2", s.cfg.TaskPriority, func() {}) // want "reads raw Config.TaskPriority"
	prio := 0
	//due:recovery
	s.rt.PrepareSingle("r3", prio, func() {})         // want "never consults the overlap clamp"
	s.rt.Submit(TaskSpec{Label: "rec", Priority: -1}) // want "hardcoded negative task priority"
	s.rt.Submit(TaskSpec{Label: "compute", Priority: prio})
}
