// Fixture for the due-directive grammar check.
package directives

//due:frobnicate
func a() {} // want "unknown //due: directive"

//due:allow(hotpath-alloc)
func b() {} // want "has no reason"

//due:allow(no-such-check) tempting but wrong
func c() {} // want "unknown check"

//due:allow(hotpath-alloc) nothing here ever triggers it
func d() {} // want "unused waiver"
