// Fixture for no-wallclock-rand under an internal/sparse path.
package sparse

import (
	"math/rand" // want "math/rand import"
	"time"
)

func kernel(x []float64) float64 {
	start := time.Now() // want "time.Now in a reproducible kernel"
	var s float64
	for _, v := range x {
		s += v
	}
	_ = start
	return s + rand.Float64()
}

// elapsed takes a duration value: referencing the time package for
// types is fine, only the clock calls are banned.
func elapsed(d time.Duration) float64 { return d.Seconds() }
