// Fixture for reduction-accounting under an internal/shard path.
package shard

type partial struct{ vals []float64 }

func (p *partial) SumAvailable() (float64, int) {
	var s float64
	for _, v := range p.vals {
		s += v
	}
	return s, 0
}

type sub struct {
	reductions int64
	part       *partial
}

func (s *sub) goodDot() float64 {
	s.reductions++
	v, _ := s.part.SumAvailable()
	return v
}

func (s *sub) goodDot2() (float64, float64) {
	s.reductions += 1
	a, _ := s.part.SumAvailable()
	b, _ := s.part.SumAvailable()
	return a, b
}

func (s *sub) badDot() float64 {
	v, _ := s.part.SumAvailable() // want "SumAvailable without a reductions"
	return v
}
