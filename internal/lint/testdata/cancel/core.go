// Fixture for cancellation-poll under an internal/core path.
package core

type Result struct{ Iters int }

type Config struct{ Cancelled func() bool }

type goodSolver struct{ cfg Config }

func (s *goodSolver) Run() (Result, error) {
	for it := 0; it < 100; it++ {
		if s.cfg.Cancelled != nil && s.cfg.Cancelled() {
			break
		}
	}
	return Result{}, nil
}

type badSolver struct{ cfg Config }

func (s *badSolver) Run() (Result, error) { // want "never polls Config.Cancelled"
	sum := 0
	for it := 0; it < 100; it++ {
		sum += it
	}
	return Result{Iters: sum}, nil
}

// helper has a loop but is not a solver Run: out of scope.
func helper() int {
	n := 0
	for i := 0; i < 3; i++ {
		n += i
	}
	return n
}
