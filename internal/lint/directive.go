// The //due: directive grammar. Directives are ordinary line comments
// and attach to the next declaration or statement (or to the one they
// trail on the same line):
//
//	//due:hotpath                  the function bodies below are
//	                               steady-state task bodies: no
//	                               allocation-causing constructs
//	//due:recovery                 the statement/function below creates
//	                               recovery tasks: priorities must come
//	                               from the overlap clamp, never raw
//	                               Config.TaskPriority
//	//due:bench-artefact           the struct below is a tracked
//	                               BENCH_*.json schema: it must carry a
//	                               json:"provenance" block
//	//due:allow(<check>) <reason>  waive exactly <check> for the node
//	                               below; the reason is mandatory
//
// Unknown directives, waivers without a reason, waivers naming an
// unknown check, unattached directives and waivers that suppress
// nothing are all violations themselves (check "due-directive") — the
// grammar is law too.
package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

type DirKind int

const (
	DirHotpath DirKind = iota
	DirRecovery
	DirBenchArtefact
	DirAllow
	DirUnknown
)

// Directive is one parsed //due: comment with the node it governs.
type Directive struct {
	Kind   DirKind
	Raw    string
	Check  string // allow: the waived check name
	Reason string // allow: mandatory justification
	Pos    token.Pos
	File   *ast.File
	Node   ast.Node // attached node; nil when nothing follows
	used   bool     // allow: suppressed at least one diagnostic
}

// Directives indexes every //due: comment of a package.
type Directives struct {
	All []*Directive
}

func (d *Directives) OfKind(k DirKind) []*Directive {
	var out []*Directive
	for _, dir := range d.All {
		if dir.Kind == k {
			out = append(out, dir)
		}
	}
	return out
}

// parseDirectives scans the comments of every file, classifies the
// //due: ones and attaches each to its governed node.
func parseDirectives(fset *token.FileSet, files []*ast.File) *Directives {
	ds := &Directives{}
	for _, f := range files {
		var fileDirs []*Directive
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "//due:")
				if !ok {
					continue
				}
				d := &Directive{Raw: c.Text, Pos: c.Pos(), File: f}
				switch {
				case rest == "hotpath":
					d.Kind = DirHotpath
				case rest == "recovery":
					d.Kind = DirRecovery
				case rest == "bench-artefact":
					d.Kind = DirBenchArtefact
				case strings.HasPrefix(rest, "allow("):
					d.Kind = DirAllow
					body := strings.TrimPrefix(rest, "allow(")
					if i := strings.Index(body, ")"); i >= 0 {
						d.Check = body[:i]
						d.Reason = strings.TrimSpace(body[i+1:])
					} else {
						d.Kind = DirUnknown
					}
				default:
					d.Kind = DirUnknown
				}
				fileDirs = append(fileDirs, d)
			}
		}
		if len(fileDirs) > 0 {
			attach(fset, f, fileDirs)
			ds.All = append(ds.All, fileDirs...)
		}
	}
	return ds
}

// attach binds each directive to the outermost statement, declaration,
// spec or field that either shares its line (trailing comment) or is
// the nearest one starting below it.
func attach(fset *token.FileSet, f *ast.File, dirs []*Directive) {
	type cand struct {
		node       ast.Node
		start, end token.Pos
		line       int
	}
	var cands []cand
	ast.Inspect(f, func(n ast.Node) bool {
		switch n.(type) {
		case ast.Stmt, ast.Decl, *ast.TypeSpec, *ast.ValueSpec, *ast.Field:
			cands = append(cands, cand{n, n.Pos(), n.End(), fset.Position(n.Pos()).Line})
		}
		return true
	})
	for _, d := range dirs {
		dLine := fset.Position(d.Pos).Line
		var best *cand
		// Trailing: a node starting on the directive's own line, before
		// the comment. Outermost (largest extent) wins.
		for i := range cands {
			c := &cands[i]
			if c.line == dLine && c.start < d.Pos {
				if best == nil || (c.end-c.start) > (best.end-best.start) {
					best = c
				}
			}
		}
		if best == nil {
			// Leading: the nearest node starting strictly below.
			bestLine := 0
			for i := range cands {
				c := &cands[i]
				if c.line <= dLine {
					continue
				}
				if bestLine == 0 || c.line < bestLine {
					bestLine, best = c.line, c
				} else if c.line == bestLine && (c.end-c.start) > (best.end-best.start) {
					best = c
				}
			}
		}
		if best != nil {
			d.Node = best.node
		}
	}
}

// covers reports whether the directive's attached node (or its own
// line) spans pos.
func (d *Directive) covers(fset *token.FileSet, pos token.Pos) bool {
	if d.Node != nil && d.Node.Pos() <= pos && pos <= d.Node.End() {
		return true
	}
	dp, pp := fset.Position(d.Pos), fset.Position(pos)
	return dp.Filename == pp.Filename && dp.Line == pp.Line
}
