package lint

import (
	"go/ast"
	"go/token"
)

// reductionAccounting keeps Substrate.Reductions() honest. The counter
// is the ground truth the s-step/CA experiments compare against, so
// every coordinator sum over rank partials must account a superstep:
//
//   - in internal/shard, any function calling SumAvailable (the
//     coordinator-side partial sum) must also increment the reductions
//     counter — same function, so the pairing is locally auditable;
//   - in internal/dist, calling SumAvailable directly is always a
//     violation: the transport layer must go through the Substrate
//     accounting sites (Dot, RankOpDot, ...) instead.
var reductionAccounting = &Analyzer{
	Name: "reduction-accounting",
	Doc:  "coordinator sums over rank partials must flow through the Substrate accounting sites",
	Run:  runReductionAccounting,
}

func runReductionAccounting(ctx *Context, pkg *Package, report reportFunc) {
	inShard := pathUnder(pkg.Path, "internal/shard")
	inDist := pathUnder(pkg.Path, "internal/dist")
	if !inShard && !inDist {
		return
	}
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			fn, ok := n.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				return true
			}
			sums := sumAvailableCalls(fn.Body)
			if len(sums) == 0 {
				return true
			}
			if inDist {
				for _, pos := range sums {
					report(pos, "coordinator sum bypasses the Substrate accounting sites; call the shard-level Dot/RankOpDot wrappers so Reductions() stays exact")
				}
				return true
			}
			if !incrementsReductions(fn.Body) {
				for _, pos := range sums {
					report(pos, "SumAvailable without a reductions++ in %s; Reductions() would drift from the true superstep count", fn.Name.Name)
				}
			}
			return true
		})
	}
}

// sumAvailableCalls collects the positions of every call whose callee
// is named SumAvailable (method or function — the partial-sum site).
func sumAvailableCalls(body *ast.BlockStmt) []token.Pos {
	var out []token.Pos
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch fun := call.Fun.(type) {
		case *ast.SelectorExpr:
			if fun.Sel.Name == "SumAvailable" {
				out = append(out, call.Pos())
			}
		case *ast.Ident:
			if fun.Name == "SumAvailable" {
				out = append(out, call.Pos())
			}
		}
		return true
	})
	return out
}

// incrementsReductions detects `x.reductions++` / `reductions++` /
// `x.reductions += n` anywhere in the body.
func incrementsReductions(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.IncDecStmt:
			if x.Tok == token.INC && namesReductions(x.X) {
				found = true
			}
		case *ast.AssignStmt:
			if x.Tok == token.ADD_ASSIGN && len(x.Lhs) == 1 && namesReductions(x.Lhs[0]) {
				found = true
			}
		case *ast.CallExpr:
			// atomic.AddInt64(&s.reductions, 1) counts too.
			for _, a := range x.Args {
				if u, ok := a.(*ast.UnaryExpr); ok && u.Op == token.AND && namesReductions(u.X) {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

func namesReductions(e ast.Expr) bool {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name == "reductions"
	case *ast.SelectorExpr:
		return x.Sel.Name == "reductions"
	}
	return false
}
