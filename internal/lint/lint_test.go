package lint

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// wantRE extracts "// want \"regex\"" expectation comments from fixture
// sources. The regex is matched against "check: message".
var wantRE = regexp.MustCompile(`// want "([^"]*)"`)

type want struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

// runFixture loads one testdata package under a synthetic import path
// (the path carries the scope, e.g. "fixture/internal/shard") and runs
// the suite over it.
func runFixture(t *testing.T, dir, ipath string, checks []string) (*Result, string) {
	t.Helper()
	abs, err := filepath.Abs(filepath.Join("testdata", dir))
	if err != nil {
		t.Fatal(err)
	}
	l, err := newLoader(abs, "fixture")
	if err != nil {
		t.Fatal(err)
	}
	p, err := l.loadDir(abs, ipath)
	if err != nil {
		t.Fatalf("load fixture %s: %v", dir, err)
	}
	if len(p.TypeErrs) > 0 {
		t.Fatalf("fixture %s does not type-check: %v", dir, p.TypeErrs)
	}
	res := &Result{}
	runSuite(l, []*Package{p}, checks, res)
	return res, abs
}

// checkFixture runs the suite and verifies the diagnostics against the
// fixture's want comments: every want matched, no diagnostic unclaimed.
func checkFixture(t *testing.T, dir, ipath string, checks []string) {
	t.Helper()
	res, abs := runFixture(t, dir, ipath, checks)

	var wants []*want
	ents, err := os.ReadDir(abs)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		src, err := os.ReadFile(filepath.Join(abs, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(src), "\n") {
			for _, m := range wantRE.FindAllStringSubmatch(line, -1) {
				re, err := regexp.Compile(m[1])
				if err != nil {
					t.Fatalf("%s:%d: bad want regex %q: %v", e.Name(), i+1, m[1], err)
				}
				wants = append(wants, &want{file: e.Name(), line: i + 1, re: re})
			}
		}
	}
	if len(wants) == 0 {
		t.Fatalf("fixture %s has no want comments", dir)
	}

	for _, d := range res.Diags {
		text := fmt.Sprintf("%s: %s", d.Check, d.Message)
		claimed := false
		for _, w := range wants {
			if !w.hit && w.file == filepath.Base(d.Pos.Filename) && w.line == d.Pos.Line && w.re.MatchString(text) {
				w.hit = true
				claimed = true
				break
			}
		}
		if !claimed {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: want %q, got no matching diagnostic", w.file, w.line, w.re)
		}
	}
}

func TestHotpathAllocFixture(t *testing.T) {
	checkFixture(t, "hotpath", "fixture/hot", nil)
}

func TestReductionShardFixture(t *testing.T) {
	checkFixture(t, "reduction_shard", "fixture/internal/shard", nil)
}

func TestReductionDistFixture(t *testing.T) {
	checkFixture(t, "reduction_dist", "fixture/internal/dist", nil)
}

func TestPriorityClampFixture(t *testing.T) {
	checkFixture(t, "priority", "fixture/internal/core", nil)
}

func TestCancellationPollFixture(t *testing.T) {
	checkFixture(t, "cancel", "fixture/internal/core", nil)
}

func TestWallclockFixture(t *testing.T) {
	checkFixture(t, "wallclock", "fixture/internal/sparse", nil)
}

func TestProvenanceFixture(t *testing.T) {
	checkFixture(t, "provenance", "fixture/experiments", nil)
}

func TestDirectivesFixture(t *testing.T) {
	checkFixture(t, "directives", "fixture/dir", nil)
}

// TestWaiverFixture pins the waiver contract via want comments: the
// reduction-accounting violations are suppressed while the
// hotpath-alloc violation in the same function still fires.
func TestWaiverFixture(t *testing.T) {
	checkFixture(t, "waiver", "fixture/internal/shard", nil)
}

// TestWaiverSuppressesOnlyNamedCheck runs the waiver fixture one check
// at a time: the waived check reports nothing (and the waiver counts as
// used), the unnamed check is untouched.
func TestWaiverSuppressesOnlyNamedCheck(t *testing.T) {
	res, _ := runFixture(t, "waiver", "fixture/internal/shard", []string{"reduction-accounting"})
	for _, d := range res.Diags {
		t.Errorf("waived check still reports: %s", d)
	}

	res, _ = runFixture(t, "waiver", "fixture/internal/shard", []string{"hotpath-alloc"})
	var hot int
	for _, d := range res.Diags {
		if d.Check != "hotpath-alloc" {
			t.Errorf("unexpected check %s: %s", d.Check, d)
			continue
		}
		hot++
	}
	if hot != 1 {
		t.Errorf("hotpath-alloc diagnostics = %d, want 1 (the waiver must not leak across checks)", hot)
	}
}

// TestUnattachedDirective pins that a directive with nothing below it is
// itself a violation.
func TestUnattachedDirective(t *testing.T) {
	res, _ := runFixture(t, "unattached", "fixture/un", nil)
	found := false
	for _, d := range res.Diags {
		if d.Check == "due-directive" && strings.Contains(d.Message, "attaches to no") {
			found = true
		} else {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	if !found {
		t.Error("unattached directive not reported")
	}
}
