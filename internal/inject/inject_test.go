package inject

import (
	"testing"
	"time"

	"repro/internal/pagemem"
)

func newSpace(t *testing.T) (*pagemem.Space, *pagemem.Vector, *pagemem.Vector) {
	t.Helper()
	s := pagemem.NewSpace(5120, 512)
	return s, s.AddVector("x"), s.AddVector("g")
}

func TestInjectorInjectsAtRoughRate(t *testing.T) {
	s, x, g := newSpace(t)
	in := NewInjector(s, []*pagemem.Vector{x, g}, 2*time.Millisecond, 1)
	in.Start()
	time.Sleep(100 * time.Millisecond)
	in.Stop()
	s.ScramblePending()
	n := in.Injected()
	if n == 0 {
		t.Fatal("no errors injected in 100ms with MTBE 2ms")
	}
	if int64(n) != s.FaultCount() {
		t.Fatalf("Injected=%d but FaultCount=%d", n, s.FaultCount())
	}
	// Expected ~50; accept a very loose band to avoid flakiness.
	if n < 5 || n > 400 {
		t.Fatalf("injected %d errors, far from expected ~50", n)
	}
}

func TestInjectorStopIsIdempotent(t *testing.T) {
	s, x, _ := newSpace(t)
	in := NewInjector(s, []*pagemem.Vector{x}, time.Hour, 1)
	in.Start()
	in.Stop()
	in.Stop() // second stop is a no-op
}

func TestInjectorRestartAfterStop(t *testing.T) {
	s, x, _ := newSpace(t)
	in := NewInjector(s, []*pagemem.Vector{x}, time.Hour, 1)
	in.Start()
	in.Stop()
	in.Start()
	in.Stop()
}

func TestInjectorDoubleStartPanics(t *testing.T) {
	s, x, _ := newSpace(t)
	in := NewInjector(s, []*pagemem.Vector{x}, time.Hour, 1)
	in.Start()
	defer in.Stop()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on double Start")
		}
	}()
	in.Start()
}

func TestInjectorValidation(t *testing.T) {
	s, x, _ := newSpace(t)
	for _, f := range []func(){
		func() { NewInjector(s, []*pagemem.Vector{x}, 0, 1) },
		func() { NewInjector(s, nil, time.Second, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected constructor panic")
				}
			}()
			f()
		}()
	}
}

func TestPlanByIteration(t *testing.T) {
	_, x, g := newSpace(t)
	p := &Plan{
		ByIteration: true,
		Errors: []PlannedError{
			{Vector: x, Page: 1, AtIteration: 3},
			{Vector: g, Page: 2, AtIteration: 3},
			{Vector: x, Page: 5, AtIteration: 10},
		},
	}
	p.Start()
	if n := p.Tick(2); n != 0 {
		t.Fatalf("Tick(2) fired %d", n)
	}
	if n := p.Tick(3); n != 2 {
		t.Fatalf("Tick(3) fired %d, want 2", n)
	}
	x.Space().ScramblePending()
	if !x.Failed(1) || !g.Failed(2) || x.Failed(5) {
		t.Fatal("wrong pages poisoned")
	}
	if n := p.Tick(50); n != 1 {
		t.Fatalf("Tick(50) fired %d, want 1", n)
	}
	if p.Fired() != 3 {
		t.Fatalf("Fired = %d", p.Fired())
	}
}

func TestPlanByWallClock(t *testing.T) {
	_, x, _ := newSpace(t)
	p := &Plan{
		Errors: []PlannedError{
			{Vector: x, Page: 0, At: 5 * time.Millisecond},
			{Vector: x, Page: 1, At: 10 * time.Millisecond},
		},
	}
	p.Start()
	deadline := time.Now().Add(2 * time.Second)
	for p.Fired() < 2 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	p.Stop()
	if p.Fired() != 2 {
		t.Fatalf("Fired = %d, want 2", p.Fired())
	}
	x.Space().ScramblePending()
	if !x.Failed(0) || !x.Failed(1) {
		t.Fatal("planned pages not poisoned")
	}
}

func TestPlanStopCancelsPending(t *testing.T) {
	_, x, _ := newSpace(t)
	p := &Plan{
		Errors: []PlannedError{
			{Vector: x, Page: 0, At: time.Hour},
		},
	}
	p.Start()
	p.Stop()
	if p.Fired() != 0 {
		t.Fatal("stop did not cancel pending error")
	}
	x.Space().ScramblePending()
	if x.Failed(0) {
		t.Fatal("page poisoned after Stop")
	}
}

func TestPlanTickOnWallClockPlanIsNoop(t *testing.T) {
	_, x, _ := newSpace(t)
	p := &Plan{Errors: []PlannedError{{Vector: x, Page: 0, At: time.Hour}}}
	p.Start()
	defer p.Stop()
	if p.Tick(100) != 0 {
		t.Fatal("Tick fired on wall-clock plan")
	}
}

// A Schedule compiles to the identical Plan every time: same seed, same
// arrivals, same pages, same flip coordinates.
func TestScheduleCompileDeterministic(t *testing.T) {
	space := pagemem.NewSpace(2048, 256)
	v1 := space.AddVector("a")
	v2 := space.AddVector("b")
	sched := Schedule{
		Phases: []RatePhase{
			{FromIteration: 0, MeanIters: 6, SDCFraction: 0.5},
			{FromIteration: 50, MeanIters: 1.5, SDCFraction: 0.25},
		},
		Seed:    42,
		Targets: []*pagemem.Vector{v1, v2},
	}
	p1 := sched.Compile(200)
	p2 := sched.Compile(200)
	if len(p1.Errors) == 0 {
		t.Fatalf("schedule compiled to no errors")
	}
	if len(p1.Errors) != len(p2.Errors) {
		t.Fatalf("lengths differ: %d vs %d", len(p1.Errors), len(p2.Errors))
	}
	for i := range p1.Errors {
		if p1.Errors[i] != p2.Errors[i] {
			t.Fatalf("error %d differs: %+v vs %+v", i, p1.Errors[i], p2.Errors[i])
		}
	}
	var sdc int
	last := -1
	for _, e := range p1.Errors {
		if e.AtIteration < last {
			t.Fatalf("arrivals out of order: %d after %d", e.AtIteration, last)
		}
		last = e.AtIteration
		if e.SDC {
			sdc++
		}
	}
	if sdc == 0 || sdc == len(p1.Errors) {
		t.Fatalf("SDC mix degenerate: %d of %d", sdc, len(p1.Errors))
	}
	// The dense phase must actually be denser.
	early, lateC := 0, 0
	for _, e := range p1.Errors {
		if e.AtIteration < 50 {
			early++
		} else {
			lateC++
		}
	}
	if lateC <= early*2 {
		t.Fatalf("ramp not visible: %d errors before it 50, %d in the 3x span after", early, lateC)
	}
}

// An error-free leading phase produces no arrivals before its boundary.
func TestScheduleErrorFreePhase(t *testing.T) {
	space := pagemem.NewSpace(1024, 256)
	v := space.AddVector("a")
	sched := Schedule{
		Phases: []RatePhase{
			{FromIteration: 0, MeanIters: 0},
			{FromIteration: 30, MeanIters: 2},
		},
		Seed:    7,
		Targets: []*pagemem.Vector{v},
	}
	p := sched.Compile(100)
	if len(p.Errors) == 0 {
		t.Fatalf("no errors in the active phase")
	}
	for _, e := range p.Errors {
		if e.AtIteration < 30 {
			t.Fatalf("error at iteration %d inside the error-free phase", e.AtIteration)
		}
	}
}

// SDC planned errors enqueue silent flips that land at the next boundary
// and count in the space's SDC counter, without setting fault bits.
func TestPlanFiresSilentFlips(t *testing.T) {
	space := pagemem.NewSpace(1024, 256)
	v := space.AddVector("a")
	for i := range v.Data {
		v.Data[i] = 1.0
	}
	plan := &Plan{ByIteration: true, Errors: []PlannedError{
		{Vector: v, Page: 1, AtIteration: 0, SDC: true, Elem: 3, Bit: 52},
	}}
	plan.Start()
	if n := plan.Tick(0); n != 1 {
		t.Fatalf("Tick fired %d, want 1", n)
	}
	if v.AnyFailed() {
		t.Fatalf("silent flip set a fault bit")
	}
	lo, _ := v.PageRange(1)
	if v.Data[lo+3] != 1.0 {
		t.Fatalf("flip applied before the boundary")
	}
	space.ScramblePending()
	if v.Data[lo+3] == 1.0 {
		t.Fatalf("flip not applied at the boundary")
	}
	if space.SDCInjected() != 1 {
		t.Fatalf("SDCInjected = %d, want 1", space.SDCInjected())
	}
	if v.AnyFailed() {
		t.Fatalf("flip raised a fault bit: SDC must stay silent")
	}
}
