package inject

import (
	"testing"
	"time"

	"repro/internal/pagemem"
)

func newSpace(t *testing.T) (*pagemem.Space, *pagemem.Vector, *pagemem.Vector) {
	t.Helper()
	s := pagemem.NewSpace(5120, 512)
	return s, s.AddVector("x"), s.AddVector("g")
}

func TestInjectorInjectsAtRoughRate(t *testing.T) {
	s, x, g := newSpace(t)
	in := NewInjector(s, []*pagemem.Vector{x, g}, 2*time.Millisecond, 1)
	in.Start()
	time.Sleep(100 * time.Millisecond)
	in.Stop()
	s.ScramblePending()
	n := in.Injected()
	if n == 0 {
		t.Fatal("no errors injected in 100ms with MTBE 2ms")
	}
	if int64(n) != s.FaultCount() {
		t.Fatalf("Injected=%d but FaultCount=%d", n, s.FaultCount())
	}
	// Expected ~50; accept a very loose band to avoid flakiness.
	if n < 5 || n > 400 {
		t.Fatalf("injected %d errors, far from expected ~50", n)
	}
}

func TestInjectorStopIsIdempotent(t *testing.T) {
	s, x, _ := newSpace(t)
	in := NewInjector(s, []*pagemem.Vector{x}, time.Hour, 1)
	in.Start()
	in.Stop()
	in.Stop() // second stop is a no-op
}

func TestInjectorRestartAfterStop(t *testing.T) {
	s, x, _ := newSpace(t)
	in := NewInjector(s, []*pagemem.Vector{x}, time.Hour, 1)
	in.Start()
	in.Stop()
	in.Start()
	in.Stop()
}

func TestInjectorDoubleStartPanics(t *testing.T) {
	s, x, _ := newSpace(t)
	in := NewInjector(s, []*pagemem.Vector{x}, time.Hour, 1)
	in.Start()
	defer in.Stop()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on double Start")
		}
	}()
	in.Start()
}

func TestInjectorValidation(t *testing.T) {
	s, x, _ := newSpace(t)
	for _, f := range []func(){
		func() { NewInjector(s, []*pagemem.Vector{x}, 0, 1) },
		func() { NewInjector(s, nil, time.Second, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected constructor panic")
				}
			}()
			f()
		}()
	}
}

func TestPlanByIteration(t *testing.T) {
	_, x, g := newSpace(t)
	p := &Plan{
		ByIteration: true,
		Errors: []PlannedError{
			{Vector: x, Page: 1, AtIteration: 3},
			{Vector: g, Page: 2, AtIteration: 3},
			{Vector: x, Page: 5, AtIteration: 10},
		},
	}
	p.Start()
	if n := p.Tick(2); n != 0 {
		t.Fatalf("Tick(2) fired %d", n)
	}
	if n := p.Tick(3); n != 2 {
		t.Fatalf("Tick(3) fired %d, want 2", n)
	}
	x.Space().ScramblePending()
	if !x.Failed(1) || !g.Failed(2) || x.Failed(5) {
		t.Fatal("wrong pages poisoned")
	}
	if n := p.Tick(50); n != 1 {
		t.Fatalf("Tick(50) fired %d, want 1", n)
	}
	if p.Fired() != 3 {
		t.Fatalf("Fired = %d", p.Fired())
	}
}

func TestPlanByWallClock(t *testing.T) {
	_, x, _ := newSpace(t)
	p := &Plan{
		Errors: []PlannedError{
			{Vector: x, Page: 0, At: 5 * time.Millisecond},
			{Vector: x, Page: 1, At: 10 * time.Millisecond},
		},
	}
	p.Start()
	deadline := time.Now().Add(2 * time.Second)
	for p.Fired() < 2 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	p.Stop()
	if p.Fired() != 2 {
		t.Fatalf("Fired = %d, want 2", p.Fired())
	}
	x.Space().ScramblePending()
	if !x.Failed(0) || !x.Failed(1) {
		t.Fatal("planned pages not poisoned")
	}
}

func TestPlanStopCancelsPending(t *testing.T) {
	_, x, _ := newSpace(t)
	p := &Plan{
		Errors: []PlannedError{
			{Vector: x, Page: 0, At: time.Hour},
		},
	}
	p.Start()
	p.Stop()
	if p.Fired() != 0 {
		t.Fatal("stop did not cancel pending error")
	}
	x.Space().ScramblePending()
	if x.Failed(0) {
		t.Fatal("page poisoned after Stop")
	}
}

func TestPlanTickOnWallClockPlanIsNoop(t *testing.T) {
	_, x, _ := newSpace(t)
	p := &Plan{Errors: []PlannedError{{Vector: x, Page: 0, At: time.Hour}}}
	p.Start()
	defer p.Stop()
	if p.Tick(100) != 0 {
		t.Fatal("Tick fired on wall-clock plan")
	}
}
