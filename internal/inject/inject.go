// Package inject drives the paper's error-injection methodology (§5.3):
// errors arrive from a separate goroutine at times drawn from an
// exponential distribution parametrised by the Mean Time Between Errors
// (MTBE), normalised to the ideal convergence time of the target problem;
// affected memory pages are selected uniformly at random over the
// protected (dynamic) vectors.
//
// Two injection drivers are provided:
//
//   - Injector: wall-clock driven, matching the paper's separate-thread
//     setup, for the benchmark harness.
//   - Plan: deterministic scripted injections (at fixed wall-clock offsets
//     or fixed iteration numbers), for reproducible tests and for the
//     single-error convergence study of Figure 3.
package inject

import (
	"math/rand"
	"sync"
	"time"

	"repro/internal/pagemem"
)

// RampStep changes the injection rate mid-run: After the given offset from
// Start, the mean time between errors becomes MTBE. Steps must be in
// ascending After order.
type RampStep struct {
	After time.Duration
	MTBE  time.Duration
}

// Injector injects DUEs into random pages of the target vectors at
// exponential intervals, from its own goroutine, until stopped.
type Injector struct {
	Space   *pagemem.Space
	Targets []*pagemem.Vector // dynamic data covered by injections
	MTBE    time.Duration     // mean time between errors
	Seed    int64
	// SDCFraction is the probability that an injected error is a silent
	// single-bit flip (enqueued via FlipBit) instead of a page DUE.
	SDCFraction float64
	// Ramp, when non-empty, is a time-varying MTBE schedule: each step
	// replaces the current MTBE once its After offset has elapsed.
	Ramp []RampStep

	mu       sync.Mutex
	stop     chan struct{}
	done     chan struct{}
	injected int
}

// NewInjector builds an injector over the given targets. MTBE must be
// positive.
func NewInjector(space *pagemem.Space, targets []*pagemem.Vector, mtbe time.Duration, seed int64) *Injector {
	if mtbe <= 0 {
		panic("inject: non-positive MTBE")
	}
	if len(targets) == 0 {
		panic("inject: no target vectors")
	}
	return &Injector{Space: space, Targets: targets, MTBE: mtbe, Seed: seed}
}

// Start launches the injection goroutine. It panics if already running.
func (in *Injector) Start() {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.stop != nil {
		panic("inject: injector already running")
	}
	in.stop = make(chan struct{})
	in.done = make(chan struct{})
	go in.run(in.stop, in.done)
}

// Stop terminates the injection goroutine and waits for it to exit.
// Stopping a non-started injector is a no-op.
func (in *Injector) Stop() {
	in.mu.Lock()
	stop, done := in.stop, in.done
	in.stop, in.done = nil, nil
	in.mu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	<-done
}

// Injected returns the number of errors injected so far.
func (in *Injector) Injected() int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.injected
}

func (in *Injector) run(stop, done chan struct{}) {
	defer close(done)
	rng := rand.New(rand.NewSource(in.Seed))
	start := time.Now()
	timer := time.NewTimer(in.nextDelay(rng, start))
	defer timer.Stop()
	for {
		select {
		case <-stop:
			return
		case <-timer.C:
			in.injectOne(rng)
			timer.Reset(in.nextDelay(rng, start))
		}
	}
}

// currentMTBE resolves the ramp schedule at elapsed time since Start.
func (in *Injector) currentMTBE(elapsed time.Duration) time.Duration {
	mtbe := in.MTBE
	for _, s := range in.Ramp {
		if elapsed >= s.After {
			mtbe = s.MTBE
		}
	}
	return mtbe
}

func (in *Injector) nextDelay(rng *rand.Rand, start time.Time) time.Duration {
	return time.Duration(rng.ExpFloat64() * float64(in.currentMTBE(time.Since(start))))
}

func (in *Injector) injectOne(rng *rand.Rand) {
	// Uniform over (vector, page) pairs: every protected page is equally
	// likely, as in the paper's uniform page selection.
	v := in.Targets[rng.Intn(len(in.Targets))]
	p := rng.Intn(in.Space.NumPages())
	if in.SDCFraction > 0 && rng.Float64() < in.SDCFraction {
		lo, hi := v.PageRange(p)
		v.FlipBit(p, rng.Intn(hi-lo), uint(rng.Intn(64)))
	} else {
		v.Poison(p)
	}
	in.mu.Lock()
	in.injected++
	in.mu.Unlock()
}

// ---------------------------------------------------------------------

// PlannedError is one scripted injection. Exactly one of At (wall-clock
// offset from Plan.Start) or AtIteration is used, selected by ByIteration.
// With SDC set the injection is a silent single-bit flip of element Elem
// (page-relative) bit Bit instead of a page DUE.
type PlannedError struct {
	Vector      *pagemem.Vector
	Page        int
	At          time.Duration
	AtIteration int
	SDC         bool
	Elem        int
	Bit         uint
}

// fire applies the planned injection.
func (e PlannedError) fire() {
	if e.SDC {
		e.Vector.FlipBit(e.Page, e.Elem, e.Bit)
	} else {
		e.Vector.Poison(e.Page)
	}
}

// Plan injects a fixed list of errors either at wall-clock offsets
// (driven by an internal goroutine) or at iteration boundaries (driven by
// the solver calling Tick).
type Plan struct {
	ByIteration bool
	Errors      []PlannedError

	mu    sync.Mutex
	next  int
	start time.Time
	stop  chan struct{}
	done  chan struct{}
}

// Start arms the plan. For wall-clock plans it launches the timing
// goroutine; for iteration plans it only records readiness.
func (p *Plan) Start() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.start = time.Now()
	p.next = 0
	if p.ByIteration {
		return
	}
	p.stop = make(chan struct{})
	p.done = make(chan struct{})
	// Sort-free: errors are fired in slice order; offsets should be
	// non-decreasing, which callers control.
	go func(stop, done chan struct{}) {
		defer close(done)
		for i := range p.Errors {
			e := p.Errors[i]
			delay := time.Until(p.start.Add(e.At))
			if delay > 0 {
				select {
				case <-stop:
					return
				case <-time.After(delay):
				}
			}
			e.fire()
			p.mu.Lock()
			p.next = i + 1
			p.mu.Unlock()
		}
	}(p.stop, p.done)
}

// Stop cancels any pending wall-clock injections.
func (p *Plan) Stop() {
	p.mu.Lock()
	stop, done := p.stop, p.done
	p.stop, p.done = nil, nil
	p.mu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	<-done
}

// Tick fires all iteration-scheduled errors due at iteration it. Solvers
// call it once per iteration. Returns the number of errors injected.
func (p *Plan) Tick(it int) int {
	if !p.ByIteration {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	fired := 0
	for p.next < len(p.Errors) && p.Errors[p.next].AtIteration <= it {
		p.Errors[p.next].fire()
		p.next++
		fired++
	}
	return fired
}

// Fired returns how many planned errors have been injected.
func (p *Plan) Fired() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.next
}

// ---------------------------------------------------------------------

// RatePhase is one segment of a scripted, iteration-driven error-rate
// schedule: from FromIteration onwards, errors arrive with exponential
// gaps of mean MeanIters iterations, and each is a silent bit flip with
// probability SDCFraction (a page DUE otherwise).
type RatePhase struct {
	FromIteration int
	MeanIters     float64
	SDCFraction   float64
}

// Schedule is a deterministic, wall-clock-free description of a
// time-varying error rate, in iteration units. Compile expands it into an
// iteration-driven Plan: same Schedule, same Plan, every run — the
// reproducible counterpart of Injector.Ramp.
type Schedule struct {
	Phases  []RatePhase
	Seed    int64
	Targets []*pagemem.Vector
}

// Compile draws the scripted injections for iterations [0, maxIter) and
// returns them as a ByIteration Plan. Arrival gaps are exponential with
// the phase's mean; pages, elements and bits are uniform over the
// targets. A phase with MeanIters <= 0 is error-free.
func (s Schedule) Compile(maxIter int) *Plan {
	if len(s.Targets) == 0 {
		panic("inject: schedule with no target vectors")
	}
	rng := rand.New(rand.NewSource(s.Seed))
	plan := &Plan{ByIteration: true}
	phase := 0
	at := 0.0
	for it := 0; it < maxIter; {
		for phase+1 < len(s.Phases) && s.Phases[phase+1].FromIteration <= it {
			phase++
		}
		ph := s.Phases[phase]
		if ph.MeanIters <= 0 {
			// Error-free phase: jump to the next phase boundary.
			if phase+1 >= len(s.Phases) {
				break
			}
			it = s.Phases[phase+1].FromIteration
			at = float64(it)
			continue
		}
		at += rng.ExpFloat64() * ph.MeanIters
		it = int(at)
		if it >= maxIter {
			break
		}
		v := s.Targets[rng.Intn(len(s.Targets))]
		p := rng.Intn(v.Space().NumPages())
		e := PlannedError{Vector: v, Page: p, AtIteration: it}
		if ph.SDCFraction > 0 && rng.Float64() < ph.SDCFraction {
			lo, hi := v.PageRange(p)
			e.SDC = true
			e.Elem = rng.Intn(hi - lo)
			e.Bit = uint(rng.Intn(64))
		}
		plan.Errors = append(plan.Errors, e)
	}
	return plan
}
