// Package inject drives the paper's error-injection methodology (§5.3):
// errors arrive from a separate goroutine at times drawn from an
// exponential distribution parametrised by the Mean Time Between Errors
// (MTBE), normalised to the ideal convergence time of the target problem;
// affected memory pages are selected uniformly at random over the
// protected (dynamic) vectors.
//
// Two injection drivers are provided:
//
//   - Injector: wall-clock driven, matching the paper's separate-thread
//     setup, for the benchmark harness.
//   - Plan: deterministic scripted injections (at fixed wall-clock offsets
//     or fixed iteration numbers), for reproducible tests and for the
//     single-error convergence study of Figure 3.
package inject

import (
	"math/rand"
	"sync"
	"time"

	"repro/internal/pagemem"
)

// Injector injects DUEs into random pages of the target vectors at
// exponential intervals, from its own goroutine, until stopped.
type Injector struct {
	Space   *pagemem.Space
	Targets []*pagemem.Vector // dynamic data covered by injections
	MTBE    time.Duration     // mean time between errors
	Seed    int64

	mu       sync.Mutex
	stop     chan struct{}
	done     chan struct{}
	injected int
}

// NewInjector builds an injector over the given targets. MTBE must be
// positive.
func NewInjector(space *pagemem.Space, targets []*pagemem.Vector, mtbe time.Duration, seed int64) *Injector {
	if mtbe <= 0 {
		panic("inject: non-positive MTBE")
	}
	if len(targets) == 0 {
		panic("inject: no target vectors")
	}
	return &Injector{Space: space, Targets: targets, MTBE: mtbe, Seed: seed}
}

// Start launches the injection goroutine. It panics if already running.
func (in *Injector) Start() {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.stop != nil {
		panic("inject: injector already running")
	}
	in.stop = make(chan struct{})
	in.done = make(chan struct{})
	go in.run(in.stop, in.done)
}

// Stop terminates the injection goroutine and waits for it to exit.
// Stopping a non-started injector is a no-op.
func (in *Injector) Stop() {
	in.mu.Lock()
	stop, done := in.stop, in.done
	in.stop, in.done = nil, nil
	in.mu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	<-done
}

// Injected returns the number of errors injected so far.
func (in *Injector) Injected() int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.injected
}

func (in *Injector) run(stop, done chan struct{}) {
	defer close(done)
	rng := rand.New(rand.NewSource(in.Seed))
	timer := time.NewTimer(in.nextDelay(rng))
	defer timer.Stop()
	for {
		select {
		case <-stop:
			return
		case <-timer.C:
			in.injectOne(rng)
			timer.Reset(in.nextDelay(rng))
		}
	}
}

func (in *Injector) nextDelay(rng *rand.Rand) time.Duration {
	return time.Duration(rng.ExpFloat64() * float64(in.MTBE))
}

func (in *Injector) injectOne(rng *rand.Rand) {
	// Uniform over (vector, page) pairs: every protected page is equally
	// likely, as in the paper's uniform page selection.
	v := in.Targets[rng.Intn(len(in.Targets))]
	p := rng.Intn(in.Space.NumPages())
	v.Poison(p)
	in.mu.Lock()
	in.injected++
	in.mu.Unlock()
}

// ---------------------------------------------------------------------

// PlannedError is one scripted injection. Exactly one of At (wall-clock
// offset from Plan.Start) or AtIteration is used, selected by ByIteration.
type PlannedError struct {
	Vector      *pagemem.Vector
	Page        int
	At          time.Duration
	AtIteration int
}

// Plan injects a fixed list of errors either at wall-clock offsets
// (driven by an internal goroutine) or at iteration boundaries (driven by
// the solver calling Tick).
type Plan struct {
	ByIteration bool
	Errors      []PlannedError

	mu    sync.Mutex
	next  int
	start time.Time
	stop  chan struct{}
	done  chan struct{}
}

// Start arms the plan. For wall-clock plans it launches the timing
// goroutine; for iteration plans it only records readiness.
func (p *Plan) Start() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.start = time.Now()
	p.next = 0
	if p.ByIteration {
		return
	}
	p.stop = make(chan struct{})
	p.done = make(chan struct{})
	// Sort-free: errors are fired in slice order; offsets should be
	// non-decreasing, which callers control.
	go func(stop, done chan struct{}) {
		defer close(done)
		for i := range p.Errors {
			e := p.Errors[i]
			delay := time.Until(p.start.Add(e.At))
			if delay > 0 {
				select {
				case <-stop:
					return
				case <-time.After(delay):
				}
			}
			e.Vector.Poison(e.Page)
			p.mu.Lock()
			p.next = i + 1
			p.mu.Unlock()
		}
	}(p.stop, p.done)
}

// Stop cancels any pending wall-clock injections.
func (p *Plan) Stop() {
	p.mu.Lock()
	stop, done := p.stop, p.done
	p.stop, p.done = nil, nil
	p.mu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	<-done
}

// Tick fires all iteration-scheduled errors due at iteration it. Solvers
// call it once per iteration. Returns the number of errors injected.
func (p *Plan) Tick(it int) int {
	if !p.ByIteration {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	fired := 0
	for p.next < len(p.Errors) && p.Errors[p.next].AtIteration <= it {
		e := p.Errors[p.next]
		e.Vector.Poison(e.Page)
		p.next++
		fired++
	}
	return fired
}

// Fired returns how many planned errors have been injected.
func (p *Plan) Fired() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.next
}
