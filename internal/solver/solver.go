// Package solver implements the reference (sequential, non-resilient)
// Krylov subspace methods of the paper's Listings 1–7: CG, BiCGStab and
// GMRES(m), plain and preconditioned. These serve as numerical ground
// truth for the resilient task-parallel implementations in internal/core
// and as the baselines the recovery relations are derived from.
package solver

import (
	"errors"
	"math"

	"repro/internal/defaults"
	"repro/internal/precond"
	"repro/internal/sparse"
)

// ErrNotConverged is wrapped into solver errors when MaxIter is exhausted.
var ErrNotConverged = errors.New("solver: not converged")

// ErrBreakdown is returned when a method's scalar recurrence degenerates
// (division by a vanishing inner product).
var ErrBreakdown = errors.New("solver: breakdown in recurrence")

// Options configures an iterative solve.
type Options struct {
	// Tol is the relative convergence threshold on ||b - Ax|| / ||b||.
	// The paper's evaluation uses 1e-10 (§5.4). Zero means 1e-10.
	Tol float64
	// MaxIter bounds the iteration count. Zero means 10*n.
	MaxIter int
	// OnIteration, when non-nil, is called after each iteration with the
	// iteration number and current relative residual norm — the hook the
	// Figure 3 convergence traces use.
	OnIteration func(it int, relRes float64)
}

func (o Options) tol() float64 { return defaults.TolOr(o.Tol) }

func (o Options) maxIter(n int) int { return defaults.MaxIterOr(o.MaxIter, n) }

// Result reports the outcome of a solve.
type Result struct {
	Iterations int
	Converged  bool
	// RelResidual is the final relative residual ||b - Ax|| / ||b||
	// recomputed explicitly (not the recurrence value).
	RelResidual float64
	// Restarts counts GMRES restart cycles (zero for other methods).
	Restarts int
}

// CG solves A x = b for SPD A with the conjugate gradient method
// (Listing 1). x holds the initial guess on entry and the solution on
// return.
func CG(a *sparse.CSR, b, x []float64, opts Options) (Result, error) {
	n := a.N
	g := make([]float64, n) // residual b - Ax
	d := make([]float64, n) // search direction
	q := make([]float64, n) // A d

	a.MulVec(x, g)
	sparse.Sub(b, g, g)
	copy(d, g)

	bnorm := sparse.Norm2(b)
	if bnorm == 0 {
		bnorm = 1
	}
	eps := sparse.Dot(g, g)
	tol := opts.tol()
	maxIter := opts.maxIter(n)

	var it int
	for it = 0; it < maxIter; it++ {
		rel := math.Sqrt(eps) / bnorm
		if opts.OnIteration != nil {
			opts.OnIteration(it, rel)
		}
		if rel < tol {
			break
		}
		a.MulVec(d, q)
		dq := sparse.Dot(d, q)
		if dq == 0 || math.IsNaN(dq) {
			return Result{Iterations: it}, ErrBreakdown
		}
		alpha := eps / dq
		sparse.Axpy(alpha, d, x)
		sparse.Axpy(-alpha, q, g)
		epsNew := sparse.Dot(g, g)
		beta := epsNew / eps
		eps = epsNew
		sparse.Xpby(g, beta, d)
	}
	return finish(a, b, x, bnorm, it, tol)
}

// PCG solves A x = b with preconditioned CG (Listing 5).
func PCG(a *sparse.CSR, m precond.Preconditioner, b, x []float64, opts Options) (Result, error) {
	n := a.N
	g := make([]float64, n)
	z := make([]float64, n)
	d := make([]float64, n)
	q := make([]float64, n)

	a.MulVec(x, g)
	sparse.Sub(b, g, g)
	m.Apply(g, z)
	copy(d, z)

	bnorm := sparse.Norm2(b)
	if bnorm == 0 {
		bnorm = 1
	}
	rho := sparse.Dot(z, g)
	tol := opts.tol()
	maxIter := opts.maxIter(n)

	var it int
	for it = 0; it < maxIter; it++ {
		rel := sparse.Norm2(g) / bnorm
		if opts.OnIteration != nil {
			opts.OnIteration(it, rel)
		}
		if rel < tol {
			break
		}
		a.MulVec(d, q)
		dq := sparse.Dot(d, q)
		if dq == 0 || math.IsNaN(dq) {
			return Result{Iterations: it}, ErrBreakdown
		}
		alpha := rho / dq
		sparse.Axpy(alpha, d, x)
		sparse.Axpy(-alpha, q, g)
		m.Apply(g, z)
		rhoNew := sparse.Dot(z, g)
		beta := rhoNew / rho
		rho = rhoNew
		sparse.Xpby(z, beta, d)
	}
	return finish(a, b, x, bnorm, it, tol)
}

// BiCGStab solves A x = b for general A (Listing 3).
func BiCGStab(a *sparse.CSR, b, x []float64, opts Options) (Result, error) {
	n := a.N
	g := make([]float64, n) // residual
	r := make([]float64, n) // shadow residual r̂0, constant
	d := make([]float64, n)
	q := make([]float64, n)
	s := make([]float64, n)
	t := make([]float64, n)

	a.MulVec(x, g)
	sparse.Sub(b, g, g)
	copy(r, g)
	copy(d, g)

	bnorm := sparse.Norm2(b)
	if bnorm == 0 {
		bnorm = 1
	}
	rho := sparse.Dot(g, r)
	tol := opts.tol()
	maxIter := opts.maxIter(n)

	var it int
	for it = 0; it < maxIter; it++ {
		rel := sparse.Norm2(g) / bnorm
		if opts.OnIteration != nil {
			opts.OnIteration(it, rel)
		}
		if rel < tol {
			break
		}
		a.MulVec(d, q)
		qr := sparse.Dot(q, r)
		if qr == 0 || math.IsNaN(qr) {
			return Result{Iterations: it}, ErrBreakdown
		}
		alpha := rho / qr
		sparse.XpbyOut(g, -alpha, q, s) // s = g - alpha q
		a.MulVec(s, t)
		tt := sparse.Dot(t, t)
		if tt == 0 {
			// s is already the residual of x + alpha d: lucky breakdown.
			sparse.Axpy(alpha, d, x)
			copy(g, s)
			it++
			break
		}
		omega := sparse.Dot(t, s) / tt
		sparse.Axpy2(alpha, d, omega, s, x) // x += alpha d + omega s
		sparse.XpbyOut(s, -omega, t, g)     // g = s - omega t
		rhoOld := rho
		rho = sparse.Dot(g, r)
		if rhoOld == 0 || omega == 0 || math.IsNaN(rho) {
			return Result{Iterations: it}, ErrBreakdown
		}
		beta := rho / rhoOld * alpha / omega
		sparse.XpbyzOut(g, beta, d, omega, q, d) // d = g + beta (d - omega q)
	}
	return finish(a, b, x, bnorm, it, tol)
}

// PBiCGStab solves A x = b with preconditioned BiCGStab (Listing 6).
func PBiCGStab(a *sparse.CSR, m precond.Preconditioner, b, x []float64, opts Options) (Result, error) {
	n := a.N
	g := make([]float64, n)
	rhat := make([]float64, n)
	d := make([]float64, n)
	p := make([]float64, n) // M p = d
	q := make([]float64, n)
	r := make([]float64, n)
	s := make([]float64, n) // M s = r
	t := make([]float64, n)

	a.MulVec(x, g)
	sparse.Sub(b, g, g)
	copy(rhat, g)
	copy(d, g)

	bnorm := sparse.Norm2(b)
	if bnorm == 0 {
		bnorm = 1
	}
	rho := sparse.Dot(g, rhat)
	tol := opts.tol()
	maxIter := opts.maxIter(n)

	var it int
	for it = 0; it < maxIter; it++ {
		rel := sparse.Norm2(g) / bnorm
		if opts.OnIteration != nil {
			opts.OnIteration(it, rel)
		}
		if rel < tol {
			break
		}
		m.Apply(d, p)
		a.MulVec(p, q)
		qr := sparse.Dot(q, rhat)
		if qr == 0 || math.IsNaN(qr) {
			return Result{Iterations: it}, ErrBreakdown
		}
		alpha := rho / qr
		sparse.XpbyOut(g, -alpha, q, r) // r = g - alpha q
		m.Apply(r, s)
		a.MulVec(s, t)
		tt := sparse.Dot(t, t)
		if tt == 0 {
			sparse.Axpy(alpha, p, x)
			copy(g, r)
			it++
			break
		}
		omega := sparse.Dot(t, r) / tt
		sparse.Axpy2(alpha, p, omega, s, x) // x += alpha p + omega s
		sparse.XpbyOut(r, -omega, t, g)     // g = r - omega t
		rhoOld := rho
		rho = sparse.Dot(g, rhat)
		if rhoOld == 0 || omega == 0 || math.IsNaN(rho) {
			return Result{Iterations: it}, ErrBreakdown
		}
		beta := rho / rhoOld * alpha / omega
		sparse.XpbyzOut(g, beta, d, omega, q, d) // d = g + beta (d - omega q)
	}
	return finish(a, b, x, bnorm, it, tol)
}

// finish recomputes the true residual and assembles the Result.
func finish(a *sparse.CSR, b, x []float64, bnorm float64, it int, tol float64) (Result, error) {
	n := a.N
	res := make([]float64, n)
	a.MulVec(x, res)
	sparse.Sub(b, res, res)
	rel := sparse.Norm2(res) / bnorm
	r := Result{Iterations: it, RelResidual: rel, Converged: rel < tol*10}
	// tol*10: the recurrence residual that stopped the loop can differ
	// from the true residual by a small factor after many updates.
	if !r.Converged {
		return r, ErrNotConverged
	}
	return r, nil
}
