package solver

import (
	"errors"
	"math"
	"testing"

	"repro/internal/matgen"
	"repro/internal/precond"
	"repro/internal/sparse"
)

// residual returns ||b - A x|| / ||b||.
func residual(a *sparse.CSR, b, x []float64) float64 {
	r := make([]float64, a.N)
	a.MulVec(x, r)
	sparse.Sub(b, r, r)
	return sparse.Norm2(r) / sparse.Norm2(b)
}

func TestCGSolvesPoisson(t *testing.T) {
	a := matgen.Poisson2D(20, 20)
	b := matgen.Ones(a.N)
	x := make([]float64, a.N)
	res, err := CG(a, b, x, Options{Tol: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("not converged")
	}
	if r := residual(a, b, x); r > 1e-9 {
		t.Fatalf("residual %v", r)
	}
	if res.Iterations == 0 {
		t.Fatal("zero iterations for nontrivial system")
	}
}

func TestCGZeroRHS(t *testing.T) {
	a := matgen.Poisson2D(5, 5)
	b := make([]float64, a.N)
	x := make([]float64, a.N)
	res, err := CG(a, b, x, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations != 0 {
		t.Fatalf("iterations = %d for zero rhs", res.Iterations)
	}
}

func TestCGWarmStart(t *testing.T) {
	a := matgen.Poisson2D(12, 12)
	b := matgen.RandomVector(a.N, 3)
	x := make([]float64, a.N)
	if _, err := CG(a, b, x, Options{Tol: 1e-12}); err != nil {
		t.Fatal(err)
	}
	// Restarting from the solution must converge immediately.
	res, err := CG(a, b, x, Options{Tol: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations > 1 {
		t.Fatalf("warm start took %d iterations", res.Iterations)
	}
}

func TestCGMaxIterReturnsError(t *testing.T) {
	a := matgen.Thermal2Analogue(900)
	b := matgen.Ones(a.N)
	x := make([]float64, a.N)
	_, err := CG(a, b, x, Options{Tol: 1e-14, MaxIter: 3})
	if !errors.Is(err, ErrNotConverged) {
		t.Fatalf("err = %v, want ErrNotConverged", err)
	}
}

func TestCGCallbackMonotoneIterations(t *testing.T) {
	a := matgen.Poisson2D(15, 15)
	b := matgen.Ones(a.N)
	x := make([]float64, a.N)
	lastIt := -1
	_, err := CG(a, b, x, Options{OnIteration: func(it int, rel float64) {
		if it != lastIt+1 {
			t.Fatalf("iteration jumped from %d to %d", lastIt, it)
		}
		lastIt = it
		if math.IsNaN(rel) {
			t.Fatal("NaN residual in callback")
		}
	}})
	if err != nil {
		t.Fatal(err)
	}
	if lastIt < 1 {
		t.Fatal("callback not invoked")
	}
}

func TestPCGSolvesAndAcceleratesConvergence(t *testing.T) {
	a := matgen.Thermal2Analogue(1600)
	b := matgen.Ones(a.N)

	xPlain := make([]float64, a.N)
	plain, err := CG(a, b, xPlain, Options{Tol: 1e-10})
	if err != nil {
		t.Fatal(err)
	}

	bj, err := precond.NewBlockJacobi(a, 64)
	if err != nil {
		t.Fatal(err)
	}
	xPre := make([]float64, a.N)
	pre, err := PCG(a, bj, b, xPre, Options{Tol: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	if r := residual(a, b, xPre); r > 1e-9 {
		t.Fatalf("PCG residual %v", r)
	}
	if pre.Iterations >= plain.Iterations {
		t.Fatalf("PCG (%d iters) not faster than CG (%d iters)", pre.Iterations, plain.Iterations)
	}
}

func TestPCGWithIdentityMatchesCGIterationCount(t *testing.T) {
	a := matgen.Poisson2D(16, 16)
	b := matgen.RandomVector(a.N, 7)
	x1 := make([]float64, a.N)
	x2 := make([]float64, a.N)
	r1, err := CG(a, b, x1, Options{Tol: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := PCG(a, precond.NewIdentity(a.N, 64), b, x2, Options{Tol: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	if d := r1.Iterations - r2.Iterations; d < -1 || d > 1 {
		t.Fatalf("CG %d vs identity-PCG %d iterations", r1.Iterations, r2.Iterations)
	}
}

// asymmetricSystem builds a diagonally dominant non-symmetric matrix.
func asymmetricSystem(n int) *sparse.CSR {
	var tr []sparse.Triplet
	for i := 0; i < n; i++ {
		tr = append(tr, sparse.Triplet{Row: i, Col: i, Val: 4})
		if i > 0 {
			tr = append(tr, sparse.Triplet{Row: i, Col: i - 1, Val: -1.5})
		}
		if i < n-1 {
			tr = append(tr, sparse.Triplet{Row: i, Col: i + 1, Val: -0.5})
		}
	}
	return sparse.NewCSRFromTriplets(n, n, tr)
}

func TestBiCGStabSolvesNonSymmetric(t *testing.T) {
	a := asymmetricSystem(300)
	want := matgen.RandomVector(300, 5)
	b := make([]float64, 300)
	a.MulVec(want, b)
	x := make([]float64, 300)
	res, err := BiCGStab(a, b, x, Options{Tol: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("not converged")
	}
	for i := range x {
		if math.Abs(x[i]-want[i]) > 1e-6 {
			t.Fatalf("x[%d] = %v, want %v", i, x[i], want[i])
		}
	}
}

func TestBiCGStabSolvesSPDToo(t *testing.T) {
	a := matgen.Poisson2D(12, 12)
	b := matgen.Ones(a.N)
	x := make([]float64, a.N)
	if _, err := BiCGStab(a, b, x, Options{Tol: 1e-10}); err != nil {
		t.Fatal(err)
	}
	if r := residual(a, b, x); r > 1e-9 {
		t.Fatalf("residual %v", r)
	}
}

func TestPBiCGStabSolves(t *testing.T) {
	a := matgen.Poisson2D(14, 14)
	bj, err := precond.NewBlockJacobi(a, 49)
	if err != nil {
		t.Fatal(err)
	}
	b := matgen.RandomVector(a.N, 9)
	x := make([]float64, a.N)
	res, err := PBiCGStab(a, bj, b, x, Options{Tol: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || residual(a, b, x) > 1e-9 {
		t.Fatalf("residual %v", residual(a, b, x))
	}
}

func TestGMRESSolvesNonSymmetric(t *testing.T) {
	a := asymmetricSystem(200)
	want := matgen.RandomVector(200, 11)
	b := make([]float64, 200)
	a.MulVec(want, b)
	x := make([]float64, 200)
	res, err := GMRES(a, b, x, GMRESOptions{Options: Options{Tol: 1e-10}, Restart: 25})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("not converged: %+v", res)
	}
	if r := residual(a, b, x); r > 1e-8 {
		t.Fatalf("residual %v", r)
	}
}

func TestGMRESRestartsCounted(t *testing.T) {
	a := matgen.Thermal2Analogue(400)
	b := matgen.Ones(a.N)
	x := make([]float64, a.N)
	res, err := GMRES(a, b, x, GMRESOptions{Options: Options{Tol: 1e-8}, Restart: 10})
	if err != nil {
		t.Fatal(err)
	}
	if res.Restarts < 2 {
		t.Fatalf("expected multiple restart cycles, got %d", res.Restarts)
	}
}

func TestPGMRESSolves(t *testing.T) {
	a := matgen.Poisson2D(14, 14)
	bj, err := precond.NewBlockJacobi(a, 49)
	if err != nil {
		t.Fatal(err)
	}
	b := matgen.RandomVector(a.N, 13)
	x := make([]float64, a.N)
	res, err := PGMRES(a, bj, b, x, GMRESOptions{Options: Options{Tol: 1e-10}, Restart: 30})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || residual(a, b, x) > 1e-8 {
		t.Fatalf("residual %v", residual(a, b, x))
	}
}

func TestGMRESConvergesFasterPreconditioned(t *testing.T) {
	a := matgen.Thermal2Analogue(900)
	b := matgen.Ones(a.N)
	x1 := make([]float64, a.N)
	r1, err := GMRES(a, b, x1, GMRESOptions{Options: Options{Tol: 1e-8, MaxIter: 5000}, Restart: 30})
	if err != nil {
		t.Fatal(err)
	}
	bj, err := precond.NewBlockJacobi(a, 64)
	if err != nil {
		t.Fatal(err)
	}
	x2 := make([]float64, a.N)
	r2, err := PGMRES(a, bj, b, x2, GMRESOptions{Options: Options{Tol: 1e-8, MaxIter: 5000}, Restart: 30})
	if err != nil {
		t.Fatal(err)
	}
	if r2.Iterations >= r1.Iterations {
		t.Fatalf("PGMRES (%d) not faster than GMRES (%d)", r2.Iterations, r1.Iterations)
	}
}

func TestAllSolversAgreeOnSPDSystem(t *testing.T) {
	a := matgen.Poisson2D(10, 10)
	want := matgen.RandomVector(a.N, 17)
	b := make([]float64, a.N)
	a.MulVec(want, b)
	type solverFn struct {
		name string
		run  func(x []float64) error
	}
	bj, err := precond.NewBlockJacobi(a, 25)
	if err != nil {
		t.Fatal(err)
	}
	solvers := []solverFn{
		{"CG", func(x []float64) error { _, e := CG(a, b, x, Options{Tol: 1e-12}); return e }},
		{"PCG", func(x []float64) error { _, e := PCG(a, bj, b, x, Options{Tol: 1e-12}); return e }},
		{"BiCGStab", func(x []float64) error { _, e := BiCGStab(a, b, x, Options{Tol: 1e-12}); return e }},
		{"PBiCGStab", func(x []float64) error { _, e := PBiCGStab(a, bj, b, x, Options{Tol: 1e-12}); return e }},
		{"GMRES", func(x []float64) error {
			_, e := GMRES(a, b, x, GMRESOptions{Options: Options{Tol: 1e-12}, Restart: 40})
			return e
		}},
		{"PGMRES", func(x []float64) error {
			_, e := PGMRES(a, bj, b, x, GMRESOptions{Options: Options{Tol: 1e-12}, Restart: 40})
			return e
		}},
	}
	for _, s := range solvers {
		x := make([]float64, a.N)
		if err := s.run(x); err != nil {
			t.Fatalf("%s: %v", s.name, err)
		}
		for i := range x {
			if math.Abs(x[i]-want[i]) > 1e-6 {
				t.Fatalf("%s: x[%d] = %v, want %v", s.name, i, x[i], want[i])
			}
		}
	}
}

func TestArnoldiRecoveryRelation(t *testing.T) {
	// §3.1.3: any Arnoldi vector is recoverable from the Hessenberg
	// matrix and the other vectors — the paper's GMRES redundancy.
	a := matgen.Poisson2D(12, 12)
	g := matgen.RandomVector(a.N, 21)
	st := BuildArnoldi(a, g, 15)
	if st.Steps < 10 {
		t.Fatalf("Arnoldi stopped early at %d", st.Steps)
	}
	out := make([]float64, a.N)
	for l := 1; l <= st.Steps; l++ {
		if st.H.At(l, l-1) == 0 {
			continue
		}
		if !st.RecoverArnoldiVector(a, l, out) {
			t.Fatalf("recovery of v_%d failed", l)
		}
		for i := range out {
			if math.Abs(out[i]-st.V[l][i]) > 1e-9 {
				t.Fatalf("v_%d[%d] = %v, want %v", l, i, out[i], st.V[l][i])
			}
		}
	}
}

func TestArnoldiRecoveryRejectsBadIndex(t *testing.T) {
	a := matgen.Poisson2D(6, 6)
	g := matgen.Ones(a.N)
	st := BuildArnoldi(a, g, 5)
	out := make([]float64, a.N)
	if st.RecoverArnoldiVector(a, 0, out) {
		t.Fatal("v_0 is not recoverable from the relation")
	}
	if st.RecoverArnoldiVector(a, st.Steps+1, out) {
		t.Fatal("recovered nonexistent vector")
	}
}

func TestArnoldiOrthonormalBasis(t *testing.T) {
	a := matgen.Poisson2D(10, 10)
	g := matgen.RandomVector(a.N, 23)
	st := BuildArnoldi(a, g, 12)
	for i := 0; i <= st.Steps; i++ {
		for j := 0; j <= st.Steps; j++ {
			d := sparse.Dot(st.V[i], st.V[j])
			want := 0.0
			if i == j {
				want = 1.0
			}
			if math.Abs(d-want) > 1e-8 {
				t.Fatalf("<v%d,v%d> = %v, want %v", i, j, d, want)
			}
		}
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}
	if o.tol() != 1e-10 {
		t.Fatalf("default tol = %v", o.tol())
	}
	if o.maxIter(100) != 1000 {
		t.Fatalf("default maxIter = %d", o.maxIter(100))
	}
	g := GMRESOptions{}
	if g.restart() != 30 {
		t.Fatalf("default restart = %d", g.restart())
	}
}
