package solver

import (
	"math"

	"repro/internal/precond"
	"repro/internal/sparse"
)

// GMRESOptions extends Options with the restart length m (Listing 4 uses
// cycles of m Arnoldi steps).
type GMRESOptions struct {
	Options
	// Restart is the Arnoldi cycle length m. Zero means 30.
	Restart int
}

func (o GMRESOptions) restart() int {
	if o.Restart > 0 {
		return o.Restart
	}
	return 30
}

// ArnoldiState exposes the inner state of one GMRES cycle so that the
// resilient variant in internal/core can verify and exploit the paper's
// §3.1.3 redundancy: any Arnoldi vector v_l (l >= 1) is recoverable from
// its predecessors and the Hessenberg column h_{*,l-1}.
type ArnoldiState struct {
	// V holds the m+1 Arnoldi basis vectors (rows).
	V [][]float64
	// H is the (m+1)×m upper-Hessenberg matrix, row-major.
	H *sparse.Dense
	// Steps is the number of completed Arnoldi steps in this cycle.
	Steps int
}

// RecoverArnoldiVector rebuilds V[l] for 1 <= l <= Steps from the relation
//
//	v_l = (A v_{l-1} - sum_{k<=l-1} h_{k,l-1} v_k) / h_{l,l-1}
//
// writing the result into out. It returns false when h_{l,l-1} vanishes
// (happy breakdown — the vector never existed).
func (s *ArnoldiState) RecoverArnoldiVector(a *sparse.CSR, l int, out []float64) bool {
	if l < 1 || l > s.Steps {
		return false
	}
	h := s.H.At(l, l-1)
	if h == 0 {
		return false
	}
	a.MulVec(s.V[l-1], out)
	for k := 0; k < l; k++ {
		sparse.Axpy(-s.H.At(k, l-1), s.V[k], out)
	}
	sparse.Scale(1/h, out)
	return true
}

// GMRES solves A x = b with restarted GMRES(m) (Listing 4). A need not be
// symmetric. x holds the initial guess on entry and the solution on
// return.
func GMRES(a *sparse.CSR, b, x []float64, opts GMRESOptions) (Result, error) {
	return gmres(a, nil, b, x, opts)
}

// PGMRES solves with left-preconditioned GMRES (Listing 7): the Arnoldi
// process runs on M^{-1}A and the residual test uses the true residual.
func PGMRES(a *sparse.CSR, m precond.Preconditioner, b, x []float64, opts GMRESOptions) (Result, error) {
	return gmres(a, m, b, x, opts)
}

func gmres(a *sparse.CSR, m precond.Preconditioner, b, x []float64, opts GMRESOptions) (Result, error) {
	n := a.N
	mm := opts.restart()
	tol := opts.tol()
	maxIter := opts.maxIter(n)

	bnorm := sparse.Norm2(b)
	if bnorm == 0 {
		bnorm = 1
	}
	// Preconditioned reference norm: convergence is tested on the
	// preconditioned residual within a cycle, then on the true residual
	// between cycles.
	g := make([]float64, n)
	z := make([]float64, n)
	w := make([]float64, n)
	u := make([]float64, n)

	vv := make([][]float64, mm+1)
	for i := range vv {
		vv[i] = make([]float64, n)
	}
	h := sparse.NewDense(mm+1, mm)
	cs := make([]float64, mm)
	sn := make([]float64, mm)
	res := make([]float64, mm+1) // rotated rhs ||z|| e1

	totalIt := 0
	restarts := 0
	for totalIt < maxIter {
		// g = b - A x; z = M^{-1} g (z = g unpreconditioned).
		a.MulVec(x, g)
		sparse.Sub(b, g, g)
		if m != nil {
			m.Apply(g, z)
		} else {
			copy(z, g)
		}
		zeta := sparse.Norm2(z)
		trueRel := sparse.Norm2(g) / bnorm
		if opts.OnIteration != nil {
			opts.OnIteration(totalIt, trueRel)
		}
		if trueRel < tol || zeta == 0 {
			break
		}
		for i := range res {
			res[i] = 0
		}
		res[0] = zeta
		copy(vv[0], z)
		sparse.Scale(1/zeta, vv[0])

		// Arnoldi with modified Gram-Schmidt and Givens rotations.
		steps := 0
		for l := 0; l < mm && totalIt < maxIter; l++ {
			a.MulVec(vv[l], u)
			if m != nil {
				m.Apply(u, w)
			} else {
				copy(w, u)
			}
			for k := 0; k <= l; k++ {
				hk := sparse.Dot(w, vv[k])
				h.Set(k, l, hk)
				sparse.Axpy(-hk, vv[k], w)
			}
			wn := sparse.Norm2(w)
			h.Set(l+1, l, wn)
			steps = l + 1
			totalIt++
			if wn != 0 {
				copy(vv[l+1], w)
				sparse.Scale(1/wn, vv[l+1])
			}
			// Apply existing rotations to the new column.
			for k := 0; k < l; k++ {
				hkl, hk1l := h.At(k, l), h.At(k+1, l)
				h.Set(k, l, cs[k]*hkl+sn[k]*hk1l)
				h.Set(k+1, l, -sn[k]*hkl+cs[k]*hk1l)
			}
			// New rotation annihilating h[l+1][l].
			hll, hl1l := h.At(l, l), h.At(l+1, l)
			r := math.Hypot(hll, hl1l)
			if r == 0 {
				cs[l], sn[l] = 1, 0
			} else {
				cs[l], sn[l] = hll/r, hl1l/r
			}
			h.Set(l, l, r)
			h.Set(l+1, l, 0)
			res[l+1] = -sn[l] * res[l]
			res[l] = cs[l] * res[l]
			if opts.OnIteration != nil {
				opts.OnIteration(totalIt, math.Abs(res[l+1])/bnorm)
			}
			if math.Abs(res[l+1])/zeta < tol/10 || wn == 0 {
				break
			}
		}
		// Back-substitute y from the triangularized H, then update x.
		y := make([]float64, steps)
		for i := steps - 1; i >= 0; i-- {
			s := res[i]
			for j := i + 1; j < steps; j++ {
				s -= h.At(i, j) * y[j]
			}
			d := h.At(i, i)
			if d == 0 {
				return Result{Iterations: totalIt, Restarts: restarts}, ErrBreakdown
			}
			y[i] = s / d
		}
		for l := 0; l < steps; l++ {
			sparse.Axpy(y[l], vv[l], x)
		}
		restarts++
	}

	r, err := finish(a, b, x, bnorm, totalIt, tol)
	r.Restarts = restarts
	return r, err
}

// BuildArnoldi runs m plain Arnoldi steps on A starting from v0 = g/||g||
// and returns the state — used by tests and by the GMRES recovery logic in
// internal/core to validate the Hessenberg redundancy relation.
func BuildArnoldi(a *sparse.CSR, g []float64, m int) *ArnoldiState {
	n := a.N
	st := &ArnoldiState{
		V: make([][]float64, m+1),
		H: sparse.NewDense(m+1, m),
	}
	for i := range st.V {
		st.V[i] = make([]float64, n)
	}
	gn := sparse.Norm2(g)
	copy(st.V[0], g)
	sparse.Scale(1/gn, st.V[0])
	w := make([]float64, n)
	for l := 0; l < m; l++ {
		a.MulVec(st.V[l], w)
		for k := 0; k <= l; k++ {
			hk := sparse.Dot(w, st.V[k])
			st.H.Set(k, l, hk)
			sparse.Axpy(-hk, st.V[k], w)
		}
		wn := sparse.Norm2(w)
		st.H.Set(l+1, l, wn)
		st.Steps = l + 1
		if wn == 0 {
			break
		}
		copy(st.V[l+1], w)
		sparse.Scale(1/wn, st.V[l+1])
	}
	return st
}
