package dist

import (
	"math"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/solver"
	"repro/internal/sparse"
)

func TestSolvePipeCGMatchesSequential(t *testing.T) {
	a, b := distSystem()
	for _, ranks := range []int{1, 3, 4} {
		res, x, err := SolvePipeCG(a, b, ranks, baseCfg(core.MethodIdeal))
		if err != nil {
			t.Fatalf("ranks=%d: %v", ranks, err)
		}
		if !res.Converged {
			t.Fatalf("ranks=%d: not converged: %+v", ranks, res)
		}
		want := make([]float64, a.N)
		if _, err := solver.CG(a, b, want, solver.Options{Tol: 1e-9}); err != nil {
			t.Fatal(err)
		}
		for i := range x {
			if math.Abs(x[i]-want[i]) > 1e-6 {
				t.Fatalf("ranks=%d: x[%d] = %v, want %v", ranks, i, x[i], want[i])
			}
		}
	}
}

// TestPipeCGMatchesDistCGNoFault is the acceptance gate for the new
// registry capability: on no-fault runs the pipelined variant solves to
// the same tolerance as dist cg, with a comparable iteration count (the
// pipelined recurrence is mathematically equivalent in exact arithmetic).
func TestPipeCGMatchesDistCGNoFault(t *testing.T) {
	a, b := distSystem()
	cfg := baseCfg(core.MethodFEIR)
	ref, xRef, err := SolveCG(a, b, 4, cfg)
	if err != nil || !ref.Converged {
		t.Fatalf("dist cg: %+v err=%v", ref, err)
	}
	res, x, err := SolvePipeCG(a, b, 4, cfg)
	if err != nil || !res.Converged {
		t.Fatalf("pipecg: %+v err=%v", res, err)
	}
	if res.RelResidual > 1e-8 {
		t.Fatalf("pipecg residual %v", res.RelResidual)
	}
	var maxDiff float64
	for i := range x {
		if d := math.Abs(x[i] - xRef[i]); d > maxDiff {
			maxDiff = d
		}
	}
	if maxDiff > 1e-6 {
		t.Fatalf("pipecg and dist cg solutions diverge by %v", maxDiff)
	}
	// Rounding paths differ, but the pipelined recurrence must not need
	// substantially more iterations on a well-conditioned system.
	if res.Iterations > ref.Iterations*3/2+5 {
		t.Fatalf("pipecg took %d iterations vs cg %d", res.Iterations, ref.Iterations)
	}
}

// TestPipeCGBarrierMatchesOverlapBitwise: the overlapped graph defers
// only the reduction sums; it must produce the exact residual trace and
// solution of the barrier discipline.
func TestPipeCGBarrierMatchesOverlapBitwise(t *testing.T) {
	a, b := distSystem()
	run := func(barrier bool) ([]float64, []float64, core.Result) {
		cfg := baseCfg(core.MethodFEIR)
		cfg.Barrier = barrier
		var trace []float64
		cfg.OnIteration = func(it int, rel float64) { trace = append(trace, rel) }
		res, x, err := SolvePipeCG(a, b, 4, cfg)
		if err != nil || !res.Converged {
			t.Fatalf("barrier=%v: %+v err=%v", barrier, res, err)
		}
		return trace, x, res
	}
	tB, xB, rB := run(true)
	tO, xO, rO := run(false)
	if rB.Iterations != rO.Iterations || len(tB) != len(tO) {
		t.Fatalf("iteration counts differ: %d vs %d", rB.Iterations, rO.Iterations)
	}
	for i := range tB {
		if tB[i] != tO[i] {
			t.Fatalf("residual trace diverges at %d: %v vs %v", i, tB[i], tO[i])
		}
	}
	for i := range xB {
		if xB[i] != xO[i] {
			t.Fatalf("solutions diverge at %d: %v vs %v", i, xB[i], xO[i])
		}
	}
}

func TestPipeCGStormFEIR(t *testing.T) {
	a, b := asymmetricDistSPD(1000)
	base, xBase, err := SolvePipeCG(a, b, 4, baseCfg(core.MethodFEIR))
	if err != nil || !base.Converged {
		t.Fatalf("fault-free: %+v err=%v", base, err)
	}
	third := base.Iterations / 3
	if third < 1 {
		t.Fatalf("fault-free run too short: %+v", base)
	}
	for _, method := range []core.Method{core.MethodFEIR, core.MethodAFEIR} {
		cfg := baseCfg(method)
		cfg.Inject = injectOwned([]distInjection{
			{it: third, rank: 0, vec: "x", off: 1},
			{it: 2 * third, rank: 1, vec: "g", off: 2},
			{it: 2*third + 1, rank: 2, vec: "w", off: 0},
		})
		res, x, err := SolvePipeCG(a, b, 4, cfg)
		if err != nil {
			t.Fatalf("%v: %v", method, err)
		}
		if !res.Converged || res.RelResidual > 1e-8 {
			t.Fatalf("%v storm: %+v", method, res)
		}
		if res.Stats.FaultsSeen != 3 {
			t.Fatalf("%v: faults seen %d, want 3", method, res.Stats.FaultsSeen)
		}
		if res.Stats.RecoveredInverse == 0 {
			t.Fatalf("%v: expected exact x recoveries: %+v", method, res.Stats)
		}
		var maxDiff float64
		for i := range x {
			if d := math.Abs(x[i] - xBase[i]); d > maxDiff {
				maxDiff = d
			}
		}
		if maxDiff > 1e-6 {
			t.Fatalf("%v: solutions diverged by %v after exact recovery", method, maxDiff)
		}
	}
}

func TestPipeCGRejectsUnsupportedConfig(t *testing.T) {
	a, b := distSystem()
	cfg := baseCfg(core.MethodCheckpoint)
	if _, err := NewPipeCG(a, b, 2, cfg); err == nil || !strings.Contains(err.Error(), "checkpoint") {
		t.Fatalf("checkpoint not rejected: %v", err)
	}
	cfg = baseCfg(core.MethodFEIR)
	cfg.UsePrecond = true
	if _, err := NewPipeCG(a, b, 2, cfg); err == nil || !strings.Contains(err.Error(), "precond") {
		t.Fatalf("precond not rejected: %v", err)
	}
}

// asymmetricDistSPD builds the SPD cousin of asymmetricDist (symmetric
// off-diagonals) so the pipelined CG storm runs on CG-suitable data with
// the same page geometry (16 pages of 64 across 4 ranks).
func asymmetricDistSPD(n int) (*sparse.CSR, []float64) {
	var tr []sparse.Triplet
	for i := 0; i < n; i++ {
		tr = append(tr, sparse.Triplet{Row: i, Col: i, Val: 4})
		if i > 0 {
			tr = append(tr, sparse.Triplet{Row: i, Col: i - 1, Val: -1})
		}
		if i < n-1 {
			tr = append(tr, sparse.Triplet{Row: i, Col: i + 1, Val: -1})
		}
	}
	a := sparse.NewCSRFromTriplets(n, n, tr)
	want := make([]float64, n)
	for i := range want {
		want[i] = 1 + float64(i%7)/7
	}
	b := make([]float64, n)
	a.MulVec(want, b)
	return a, b
}
