package dist

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/shard"
	"repro/internal/solver"
	"repro/internal/sparse"
)

// Storm tests for the distributed solvers, mirroring
// internal/core/storm_test.go: randomized multi-error campaigns (1–5
// DUEs per run) across ranks and vectors, checking the end-to-end
// invariant — every run converges to the single-node tolerance with a
// verified true residual, with recovery staying rank-local plus halo.

// asymmetricDist builds a diagonally dominant non-symmetric test system
// (the core storm system) for the distributed BiCGStab and GMRES.
func asymmetricDist(n int) (*sparse.CSR, []float64) {
	var tr []sparse.Triplet
	for i := 0; i < n; i++ {
		tr = append(tr, sparse.Triplet{Row: i, Col: i, Val: 4})
		if i > 0 {
			tr = append(tr, sparse.Triplet{Row: i, Col: i - 1, Val: -1.4})
		}
		if i < n-1 {
			tr = append(tr, sparse.Triplet{Row: i, Col: i + 1, Val: -0.6})
		}
	}
	a := sparse.NewCSRFromTriplets(n, n, tr)
	want := make([]float64, n)
	for i := range want {
		want[i] = 1 + float64(i%7)/7
	}
	b := make([]float64, n)
	a.MulVec(want, b)
	return a, b
}

// distInjection schedules one poison: at iteration it, into the vec of
// rank (rank mod ranks), at page offset off within its owned range.
type distInjection struct {
	it   int
	rank int
	vec  string
	off  int
}

func injectOwned(inj []distInjection) func(it int, ranks []*shard.Rank) {
	return func(it int, ranks []*shard.Rank) {
		for _, e := range inj {
			if e.it == it {
				r := ranks[e.rank%len(ranks)]
				p := r.PLo + e.off%(r.PHi-r.PLo)
				r.Space.VectorByName(e.vec).Poison(p)
			}
		}
	}
}

// stormSchedule draws count injections over the given iteration window.
func stormSchedule(rng *rand.Rand, vectors []string, window, count int) []distInjection {
	inj := make([]distInjection, count)
	for i := range inj {
		inj[i] = distInjection{
			it:   1 + rng.Intn(window),
			rank: rng.Intn(8),
			vec:  vectors[rng.Intn(len(vectors))],
			off:  rng.Intn(64),
		}
	}
	return inj
}

func TestDistStormBiCGStab(t *testing.T) {
	a, b := asymmetricDist(1000) // 16 pages of 64 across 4 ranks
	base, _, err := SolveBiCGStab(a, b, 4, baseCfg(core.MethodFEIR))
	if err != nil || !base.Converged {
		t.Fatalf("fault-free run: %+v err=%v", base, err)
	}
	window := base.Iterations * 3 / 4
	if window < 2 {
		t.Fatalf("fault-free run too short for a storm: %+v", base)
	}
	vectors := []string{"x", "g", "d", "q", "s", "t"}
	for _, method := range []core.Method{core.MethodFEIR, core.MethodAFEIR} {
		for rate := 1; rate <= 5; rate++ {
			seed := int64(1000*int(method) + rate)
			rng := rand.New(rand.NewSource(seed))
			cfg := baseCfg(method)
			cfg.Inject = injectOwned(stormSchedule(rng, vectors, window, rate))
			res, _, err := SolveBiCGStab(a, b, 4, cfg)
			if err != nil {
				t.Fatalf("%v rate %d: %v", method, rate, err)
			}
			if !res.Converged {
				t.Fatalf("%v rate %d: not converged: %+v", method, rate, res)
			}
			if res.RelResidual > 1e-8 {
				t.Fatalf("%v rate %d: true residual %v", method, rate, res.RelResidual)
			}
			if res.Stats.FaultsSeen == 0 {
				t.Fatalf("%v rate %d: no faults seen", method, rate)
			}
		}
	}
}

func TestDistStormGMRES(t *testing.T) {
	a, b := asymmetricDist(1000)
	cfg := baseCfg(core.MethodFEIR)
	cfg.Restart = 20
	base, _, err := SolveGMRES(a, b, 4, cfg)
	if err != nil || !base.Converged {
		t.Fatalf("fault-free run: %+v err=%v", base, err)
	}
	window := base.Iterations * 3 / 4
	if window < 2 {
		t.Fatalf("fault-free run too short for a storm: %+v", base)
	}
	vectors := []string{"x", "g", "v0", "v1", "v3", "v7"}
	for _, method := range []core.Method{core.MethodFEIR, core.MethodAFEIR} {
		for rate := 1; rate <= 5; rate++ {
			seed := int64(2000*int(method) + rate)
			rng := rand.New(rand.NewSource(seed))
			cfg := baseCfg(method)
			cfg.Restart = 20
			cfg.Inject = injectOwned(stormSchedule(rng, vectors, window, rate))
			res, _, err := SolveGMRES(a, b, 4, cfg)
			if err != nil {
				t.Fatalf("%v rate %d: %v", method, rate, err)
			}
			if !res.Converged {
				t.Fatalf("%v rate %d: not converged: %+v", method, rate, res)
			}
			if res.RelResidual > 1e-8 {
				t.Fatalf("%v rate %d: true residual %v", method, rate, res.RelResidual)
			}
			if res.Stats.FaultsSeen == 0 {
				t.Fatalf("%v rate %d: no faults seen", method, rate)
			}
		}
	}
}

// TestDistMatchesSingleNodeTolerance is the acceptance gate: under no
// injections, the distributed BiCGStab and GMRES converge to the same
// relative-residual tolerance as their single-node counterparts.
func TestDistMatchesSingleNodeTolerance(t *testing.T) {
	a, b := asymmetricDist(1000)
	tol := 1e-9

	x := make([]float64, a.N)
	ref, err := solver.BiCGStab(a, b, x, solver.Options{Tol: tol})
	if err != nil {
		t.Fatal(err)
	}
	cfg := baseCfg(core.MethodIdeal)
	cfg.Tol = tol
	res, _, err := SolveBiCGStab(a, b, 3, cfg)
	if err != nil || !res.Converged {
		t.Fatalf("dist bicgstab: %+v err=%v", res, err)
	}
	if res.RelResidual > ref.RelResidual*100 && res.RelResidual > tol*10 {
		t.Fatalf("dist bicgstab residual %v vs single-node %v", res.RelResidual, ref.RelResidual)
	}

	x = make([]float64, a.N)
	refG, err := solver.GMRES(a, b, x, solver.GMRESOptions{Options: solver.Options{Tol: tol}, Restart: 20})
	if err != nil {
		t.Fatal(err)
	}
	cfg = baseCfg(core.MethodIdeal)
	cfg.Tol = tol
	cfg.Restart = 20
	res, _, err = SolveGMRES(a, b, 3, cfg)
	if err != nil || !res.Converged {
		t.Fatalf("dist gmres: %+v err=%v", res, err)
	}
	if res.RelResidual > refG.RelResidual*100 && res.RelResidual > tol*10 {
		t.Fatalf("dist gmres residual %v vs single-node %v", res.RelResidual, refG.RelResidual)
	}
}

// TestDistHaloPageDUE lands DUEs in halo (ghost) pages: pages a rank
// reads but does not own. The exchange discipline must heal them by
// re-import, with zero effect on exactness — the blast radius of §2.3.
func TestDistHaloPageDUE(t *testing.T) {
	a, b := distSystem()
	base, _, err := SolveCG(a, b, 4, baseCfg(core.MethodFEIR))
	if err != nil || !base.Converged {
		t.Fatalf("fault-free: %+v err=%v", base, err)
	}
	cfg := baseCfg(core.MethodFEIR)
	cfg.Inject = func(it int, ranks []*shard.Rank) {
		if it != 12 && it != 30 {
			return
		}
		// Poison the first halo page of every rank that has one, in both
		// the exchanged vector (d) and an on-demand one (x).
		for _, r := range ranks {
			if len(r.Halo) == 0 {
				continue
			}
			if it == 12 {
				r.Space.VectorByName("d").Poison(r.Halo[0])
			} else {
				r.Space.VectorByName("x").Poison(r.Halo[0])
			}
		}
	}
	res, _, err := SolveCG(a, b, 4, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || res.RelResidual > 1e-8 {
		t.Fatalf("halo DUEs: %+v", res)
	}
	if res.Stats.FaultsSeen == 0 {
		t.Fatal("halo faults never became visible")
	}
	if res.Stats.Unrecovered != 0 {
		t.Fatalf("halo faults should never be unrecoverable: %+v", res.Stats)
	}
	// Ghost damage is invisible to the recurrence: same convergence rate.
	if d := res.Iterations - base.Iterations; d < -2 || d > 2 {
		t.Fatalf("%d iterations vs fault-free %d", res.Iterations, base.Iterations)
	}
}

// TestDistBiCGStabStormExactness: storms that only hit x and g must be
// repaired exactly (inverse/forward relations), preserving the solution.
func TestDistBiCGStabStormExactness(t *testing.T) {
	a, b := asymmetricDist(1000)
	base, xBase, err := SolveBiCGStab(a, b, 4, baseCfg(core.MethodFEIR))
	if err != nil || !base.Converged {
		t.Fatalf("fault-free: %+v err=%v", base, err)
	}
	third := base.Iterations / 3
	if third < 1 {
		t.Fatalf("fault-free run too short: %+v", base)
	}
	cfg := baseCfg(core.MethodFEIR)
	cfg.Inject = injectOwned([]distInjection{
		{it: third, rank: 0, vec: "x", off: 1},
		{it: 2 * third, rank: 1, vec: "g", off: 2},
		{it: 2*third + 1, rank: 2, vec: "x", off: 0},
	})
	res, x, err := SolveBiCGStab(a, b, 4, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || res.RelResidual > 1e-8 {
		t.Fatalf("storm: %+v", res)
	}
	if res.Stats.RecoveredInverse == 0 || res.Stats.RecoveredForward == 0 {
		t.Fatalf("expected exact recoveries: %+v", res.Stats)
	}
	var maxDiff float64
	for i := range x {
		if d := math.Abs(x[i] - xBase[i]); d > maxDiff {
			maxDiff = d
		}
	}
	if maxDiff > 1e-6 {
		t.Fatalf("solutions diverged by %v after exact recovery", maxDiff)
	}
}

// TestDistGMRESBasisRecovery damages live Arnoldi basis vectors mid-cycle
// and expects the Hessenberg redundancy to rebuild them rank-locally.
func TestDistGMRESBasisRecovery(t *testing.T) {
	a, b := asymmetricDist(1000)
	cfg := baseCfg(core.MethodFEIR)
	cfg.Restart = 20
	cfg.Inject = injectOwned([]distInjection{
		{it: 5, rank: 1, vec: "v1", off: 1},
		{it: 9, rank: 2, vec: "v3", off: 2},
	})
	res, _, err := SolveGMRES(a, b, 4, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || res.RelResidual > 1e-8 {
		t.Fatalf("basis recovery: %+v", res)
	}
	if res.Stats.RecoveredForward == 0 {
		t.Fatalf("expected Hessenberg basis rebuilds: %+v", res.Stats)
	}
}

// TestDistGMRESAbortedCycleMakesProgress regression-tests the aborted
// cycle path: a non-repairing method whose live basis keeps getting
// poisoned by an iteration-keyed hook must still advance the iteration
// counter (no livelock) and terminate within the budget.
func TestDistGMRESAbortedCycleMakesProgress(t *testing.T) {
	a, b := asymmetricDist(1000)
	cfg := baseCfg(core.MethodTrivial)
	cfg.Restart = 10
	cfg.MaxIter = 400
	cfg.Inject = injectOwned([]distInjection{
		{it: 3, rank: 0, vec: "v1", off: 1},
		{it: 3, rank: 1, vec: "x", off: 0},
	})
	res, _, err := SolveGMRES(a, b, 4, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations > cfg.MaxIter {
		t.Fatalf("iteration budget not honoured: %+v", res)
	}
	if res.Stats.FaultsSeen == 0 {
		t.Fatal("injections never fired")
	}
}

// TestDistPerRankStats checks the per-rank accounting surfaced to the
// CLI: faults land on specific ranks and are recovered there.
func TestDistPerRankStats(t *testing.T) {
	a, b := distSystem()
	s, err := NewCG(a, b, 4, baseCfg(core.MethodFEIR))
	if err != nil {
		t.Fatal(err)
	}
	s.cfg.Inject = func(it int, ranks []*shard.Rank) {
		if it == 10 {
			r := ranks[2]
			r.Space.VectorByName("x").Poison((r.PLo + r.PHi) / 2)
		}
	}
	res, _, err := s.Run()
	if err != nil || !res.Converged {
		t.Fatalf("%+v err=%v", res, err)
	}
	rs := s.RankStats()
	if len(rs) != 4 {
		t.Fatalf("rank stats for %d ranks", len(rs))
	}
	if rs[2].FaultsSeen != 1 || rs[2].RecoveredInverse == 0 {
		t.Fatalf("rank 2 stats: %+v", rs[2])
	}
	for i, st := range rs {
		if i != 2 && st.FaultsSeen != 0 {
			t.Fatalf("rank %d saw phantom faults: %+v", i, st)
		}
	}
}
