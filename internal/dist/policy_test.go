package dist

import (
	"testing"

	"repro/internal/core"
	"repro/internal/policy"
	"repro/internal/shard"
)

// An adaptive distributed CG: clean iterations move the method off
// FEIR's critical-path recovery latency, a mid-run burst of page losses
// feeds the controller's rate estimate back up, and the solve still
// converges to the true residual tolerance with every switch inside the
// resilient set.
func TestSolveCGAdaptivePolicy(t *testing.T) {
	a, b := distSystem()
	ctrl := policy.New(policy.Config{})
	cfg := baseCfg(core.MethodFEIR)
	cfg.Policy = ctrl
	cfg.Inject = func(it int, ranks []*shard.Rank) {
		if it >= 40 && it < 60 {
			r := ranks[it%len(ranks)]
			r.Space.VectorByName("x").Poison((r.PLo + r.PHi) / 2)
		}
	}
	res, _, err := SolveCG(a, b, 4, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || res.RelResidual > 1e-8 {
		t.Fatalf("adaptive dist CG: %+v", res)
	}
	decs := ctrl.Decisions()
	if res.Stats.PolicySwitches < 2 || len(decs) != res.Stats.PolicySwitches {
		t.Fatalf("PolicySwitches = %d, decisions = %d, want >= 2 and equal (%v)",
			res.Stats.PolicySwitches, len(decs), decs)
	}
	if decs[0].From != "FEIR" {
		t.Fatalf("first decision should leave FEIR: %v", decs[0])
	}
	for _, d := range decs {
		switch d.To {
		case "FEIR", "AFEIR", "Lossy":
		default:
			t.Fatalf("switched outside the resilient set: %v", d)
		}
	}
}

// A pinned construction (Checkpoint) never has its method switched — the
// controller may only retune the snapshot interval.
func TestSolveCGPolicyPinnedCheckpoint(t *testing.T) {
	a, b := distSystem()
	ctrl := policy.New(policy.Config{})
	cfg := baseCfg(core.MethodCheckpoint)
	cfg.CheckpointInterval = 20
	cfg.Policy = ctrl
	cfg.Inject = injectInto([]int{30})
	res, _, err := SolveCG(a, b, 4, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || res.RelResidual > 1e-8 {
		t.Fatalf("ckpt: %+v", res)
	}
	if res.Stats.PolicySwitches != 0 {
		t.Fatalf("checkpoint run switched methods: %+v", res.Stats)
	}
	if res.Stats.CheckpointsWritten == 0 {
		t.Fatalf("stats %+v", res.Stats)
	}
}
