// Package dist implements the distributed Krylov solvers of §3.4 — CG,
// BiCGStab and GMRES — as thin recurrences over the rank-sharded
// substrate of internal/shard. The substrate owns shard layout, per-rank
// fault domains, halo computation/exchange and allreduce-style scalar
// reduction (all as task graphs on one shared internal/taskrt pool); the
// solvers here own only the per-method recurrence and the per-method
// recovery policy, reusing the same core.Relations the single-node
// solvers apply.
//
// Resilience follows the single-node schemes: FEIR/AFEIR repair lost
// pages exactly through the g = b - A x / x = A⁻¹(b - g) relations
// (inverse repairs need only the halo, so recovery stays rank-local plus
// one exchange — the paper's observation that the recovery blast radius
// is bounded by the stencil), Lossy interpolates the iterate and
// restarts, Checkpoint (CG) rolls back to a periodic global snapshot,
// and the remaining methods blank lost pages and keep running. GMRES
// additionally rebuilds damaged basis vectors from its pristine
// Hessenberg copy, importing the one halo the relation needs.
package dist

import (
	"math"
	"time"

	"repro/internal/core"
	"repro/internal/defaults"
	"repro/internal/engine"
	"repro/internal/pagemem"
	"repro/internal/shard"
	"repro/internal/sparse"
	"repro/internal/taskrt"
)

// Config parametrises a distributed solve.
type Config struct {
	// Method is the resilience scheme, as in core.Config.
	Method core.Method
	// Workers is the shared task-pool size; 0 means one worker per rank.
	Workers int
	// PageDoubles is the fault/recovery granularity; 0 means 512.
	PageDoubles int
	// Tol is the relative residual threshold; 0 means 1e-10.
	Tol float64
	// MaxIter bounds iterations; 0 means 10*n.
	MaxIter int
	// CheckpointInterval is the snapshot period in iterations for
	// MethodCheckpoint (CG only); 0 means 100.
	CheckpointInterval int
	// Restart is the GMRES restart length; 0 means 30.
	Restart int
	// BasisK is the s-step basis size of the communication-avoiding CG
	// (cacg): each outer step performs BasisK SpMV supersteps and exactly
	// one global reduction. 0 means 4.
	BasisK int
	// UsePrecond enables the block-Jacobi preconditioned variant (PCG,
	// PBiCGStab, PGMRES). Blocks coincide with pages and never cross rank
	// boundaries, so application and recovery stay rank-local (§5.1).
	UsePrecond bool
	// Barrier forces the pre-overlap superstep discipline on solvers that
	// support communication overlap (CG, PipeCG): every halo exchange at a
	// full barrier before any SpMV row runs. Default (false) overlaps the
	// exchange with interior rows and gates boundary rows on the ghost
	// pages they read (shard.OverlapStep); on no-fault runs the two paths
	// are bitwise identical, and the storm tests pin their recovery counts
	// to each other. Kept as the BENCH_dist.json comparison baseline.
	Barrier bool
	// Inject, when non-nil, is called once per iteration with the ranks —
	// the hook deterministic experiments use to drive injections into
	// chosen fault domains and pages.
	Inject func(it int, ranks []*shard.Rank)
	// OnIteration, when non-nil, receives the recurrence residual trace.
	OnIteration func(it int, relRes float64)
	// RT, when non-nil, is an externally owned task pool (typically
	// taskrt.Shared) the substrate submits to but never closes. nil keeps
	// the historical private pool per substrate.
	RT *taskrt.Runtime
	// Blocks, when non-nil, is a prefactorized diagonal-block cache shared
	// across substrates for the same operator; mismatches are rejected.
	Blocks *sparse.BlockSolverCache
	// Cancelled, when non-nil, is polled at iteration boundaries; when it
	// reports true the solve stops and Run returns core.ErrCancelled.
	Cancelled func() bool
	// Policy, when non-nil, is consulted at iteration fixpoints with the
	// fault/SDC events observed across every rank's fault domain since the
	// last call. FEIR/AFEIR-constructed solvers may be switched across
	// FEIR ↔ AFEIR ↔ Lossy (their boundary code reads Method per call);
	// Checkpoint runs keep their method but have CheckpointInterval
	// retuned. See internal/policy for the model-driven controller.
	Policy core.ResiliencePolicy
}

func (c Config) pageDoubles() int { return defaults.PageDoublesOr(c.PageDoubles) }

func (c Config) tol() float64 { return defaults.TolOr(c.Tol) }

func (c Config) maxIter(n int) int { return defaults.MaxIterOr(c.MaxIter, n) }

func (c Config) ckptInterval() int { return defaults.CheckpointIntervalOr(c.CheckpointInterval) }

func (c Config) restart() int { return defaults.GMRESRestartOr(c.Restart) }

func (c Config) basisK() int { return defaults.BasisKOr(c.BasisK) }

// base carries the state shared by all three distributed solvers.
type base struct {
	sub        *shard.Substrate
	cfg        Config
	stats      core.Stats // coordinator-side counters (restarts, rollbacks, …)
	dynamic    []*pagemem.Vector
	polEvents  int64         // fault+SDC total at the last policy call
	polAllowed []core.Method // runtime switch set for cfg.Policy
}

func (b *base) setup(a *sparse.CSR, rhs []float64, ranks int, cfg Config, spd bool) error {
	sub, err := shard.NewOpts(a, rhs, ranks, cfg.pageDoubles(), cfg.Workers, spd,
		shard.Options{RT: cfg.RT, Blocks: cfg.Blocks})
	if err != nil {
		return err
	}
	if cfg.UsePrecond {
		if err := sub.EnablePrecond(); err != nil {
			sub.Close()
			return err
		}
	}
	b.sub = sub
	b.cfg = cfg
	b.polAllowed = core.AllowedPolicySwitches(cfg.Method)
	return nil
}

// applyPolicy consults cfg.Policy at an iteration fixpoint with the
// events observed across every rank's fault domain since the last call,
// applying any method switch (FEIR ↔ AFEIR ↔ Lossy for resilient
// constructions; the unguarded phases make the swap safe at any
// boundary) and checkpoint-interval retune the controller returns.
func (b *base) applyPolicy(it int) {
	if b.cfg.Policy == nil {
		return
	}
	var events int64
	for _, sp := range b.sub.Spaces() {
		events += sp.FaultCount() + sp.SDCDetected()
	}
	newEvents := int(events - b.polEvents)
	b.polEvents = events
	m, ckIv := b.cfg.Policy.Decide(it, newEvents, b.cfg.Method, b.polAllowed)
	if m != b.cfg.Method {
		for _, a := range b.polAllowed {
			if a == m {
				b.cfg.Method = m
				b.stats.PolicySwitches++
				break
			}
		}
	}
	if b.cfg.Method == core.MethodCheckpoint && ckIv > 0 {
		b.cfg.CheckpointInterval = ckIv
	}
}

// track registers every rank copy of the vectors as injection targets.
func (b *base) track(vs ...*shard.Vec) {
	for _, v := range vs {
		for _, rv := range v.R {
			b.dynamic = append(b.dynamic, rv)
		}
	}
}

// Spaces returns the per-rank fault domains (the injection surface).
func (b *base) Spaces() []*pagemem.Space { return b.sub.Spaces() }

// Ranks exposes the substrate's ranks (layout, halo, per-rank stats).
func (b *base) Ranks() []*shard.Rank { return b.sub.Ranks }

// DynamicVectors lists every rank copy of the protected vectors (§5.3):
// injections may land in owned shards, halo pages or unused ghost pages.
func (b *base) DynamicVectors() []*pagemem.Vector { return b.dynamic }

// RankStats returns a snapshot of each rank's resilience counters.
func (b *base) RankStats() []core.Stats { return b.sub.RankStats() }

// Reductions reports how many global reduction supersteps the substrate
// performed — the communication metric the s-step variant exists to
// shrink. Valid after Run returned.
func (b *base) Reductions() int64 { return b.sub.Reductions() }

func (b *base) inject(it int) {
	if b.cfg.Inject != nil {
		b.cfg.Inject(it, b.sub.Ranks)
	}
}

func (b *base) finish(it int, converged bool, start time.Time, x *shard.Vec) (core.Result, []float64) {
	xg := make([]float64, b.sub.A.N)
	b.sub.Gather(x, xg)
	st := b.sub.Stats()
	st.Add(b.stats)
	return core.Result{
		Converged:   converged,
		Iterations:  it,
		RelResidual: b.sub.TrueResidual(x),
		Elapsed:     time.Since(start),
		Stats:       st,
		WorkerTimes: b.sub.RT.WorkerTimes(),
	}, xg
}

// recoverXG runs the residual/iterate relations to a fixpoint across
// ranks: g pages by the forward g = b - A x, x pages by the rank-local
// inverse over the diagonal block plus the halo. Each pass starts with a
// strict x exchange so the local relation guards see the global failure
// map; repairs then run rank-parallel per the method's discipline.
// Returns false when x or g pages stay unrecovered.
func recoverXG(sub *shard.Substrate, method core.Method, x, g *shard.Vec) bool {
	failed := func() bool {
		for _, r := range sub.Ranks {
			if len(r.OwnedFailed(x)) > 0 || len(r.OwnedFailed(g)) > 0 {
				return true
			}
		}
		return false
	}
	for pass := 0; pass < 4 && failed(); pass++ {
		sub.Exchange(x, true)
		progress := make([]bool, len(sub.Ranks))
		sub.Recover(method, "xg", func(r *shard.Rank) {
			gV := engine.Vec{V: g.Of(r)}
			xV := engine.Vec{V: x.Of(r)}
			for _, p := range r.OwnedFailed(g) {
				if r.Rel.ForwardResidual(gV, 0, xV, 0, p) {
					progress[r.ID] = true
				}
			}
			for _, p := range r.OwnedFailed(x) {
				if g.Of(r).Failed(p) {
					continue
				}
				if r.Rel.InverseIterate(xV, 0, gV, 0, p) {
					progress[r.ID] = true
				}
			}
		})
		any := false
		for _, p := range progress {
			any = any || p
		}
		if !any {
			break
		}
	}
	sub.HealGhosts()
	return !failed()
}

// blankOwned remaps and clears every failed owned page of the vectors,
// counting them as unrecovered when count is true.
func blankOwned(sub *shard.Substrate, count bool, vs ...*shard.Vec) {
	for _, r := range sub.Ranks {
		for _, v := range vs {
			for _, p := range r.OwnedFailed(v) {
				v.Of(r).Remap(p)
				v.Of(r).MarkRecovered(p)
				if count {
					r.Stats.Unrecovered++
				}
			}
		}
	}
}

func relFromEps(eps, bnorm float64) float64 {
	return math.Sqrt(math.Max(eps, 0)) / bnorm
}

func isNaN(v float64) bool { return math.IsNaN(v) }

// ---------------------------------------------------------------------
// Distributed CG.
// ---------------------------------------------------------------------

// CG is the rank-partitioned resilient Conjugate Gradient on the shard
// substrate. With Config.UsePrecond it runs the paper's block-Jacobi PCG:
// the protected preconditioned residual z = M⁻¹ g is rank-local to
// produce (block diagonality) and rank-local to recover (partial
// application from g, §3.2), so preconditioning adds no halo traffic.
type CG struct {
	base
	x, g, d, q *shard.Vec
	z          *shard.Vec // preconditioned residual (UsePrecond), else nil

	epsGG          float64
	rho            float64 // <z, g> (preconditioned only)
	beta           float64
	restartPending bool

	// Prepared communication-overlapping steady-state graph (nil when
	// cfg.Barrier): stepA fuses the d-update, the d halo import, the
	// interior/boundary q = A d rows and the <d,q> reduction into one
	// superstep; stepB replays the x/g update with the fused <g,g>. Their
	// bodies read stepBeta/stepAlpha, so replay allocates nothing.
	stepA               *shard.OverlapStep
	stepB               *shard.PreparedRankOp
	stepBeta, stepAlpha float64

	haveCkpt     bool
	ckX, ckD     []float64
	ckBeta       float64
	lastCkptIter int
}

// NewCG builds a distributed CG over the given number of ranks.
func NewCG(a *sparse.CSR, rhs []float64, ranks int, cfg Config) (*CG, error) {
	s := &CG{}
	if err := s.setup(a, rhs, ranks, cfg, true); err != nil {
		return nil, err
	}
	s.x = s.sub.AddVector("x")
	s.g = s.sub.AddVector("g")
	s.d = s.sub.AddVector("d")
	s.q = s.sub.AddVector("q")
	s.track(s.x, s.g, s.d, s.q)
	if cfg.UsePrecond {
		s.z = s.sub.AddVector("z")
		s.track(s.z)
	}
	return s, nil
}

// SolveCG runs a rank-partitioned resilient CG on A x = b with the given
// number of ranks. It returns the aggregate result and the solution.
func SolveCG(a *sparse.CSR, b []float64, ranks int, cfg Config) (core.Result, []float64, error) {
	s, err := NewCG(a, b, ranks, cfg)
	if err != nil {
		return core.Result{}, nil, err
	}
	return s.Run()
}

// Run executes the solve. It may be called once; the substrate's task
// pool is released on return.
func (s *CG) Run() (core.Result, []float64, error) {
	defer s.sub.Close()
	s.sub.RT.ResetTimes() // exclude construction-to-launch idle from Table 3
	start := time.Now()
	sub := s.sub
	tol := s.cfg.tol()
	maxIter := s.cfg.maxIter(sub.A.N)

	if !s.cfg.Barrier {
		// Prepare the overlapped steady-state graph once: same kernels,
		// same per-page partial slots and the same coordinator sum order
		// as the barrier path, so no-fault runs agree bitwise.
		src := s.g
		if s.z != nil {
			src = s.z
		}
		s.stepA = sub.NewOverlapStep("d|q,<d,q>", s.d, s.q, func(r *shard.Rank, p, lo, hi int) {
			if s.stepBeta == 0 {
				copy(s.d.Of(r).Data[lo:hi], src.Of(r).Data[lo:hi])
			} else {
				sparse.XpbyRange(src.Of(r).Data, s.stepBeta, s.d.Of(r).Data, lo, hi)
			}
		}, true, false)
		s.stepB = sub.PrepareRankOpDot("xg,<g,g>", func(r *shard.Rank, p, lo, hi int) float64 {
			sparse.AxpyRange(s.stepAlpha, s.d.Of(r).Data, s.x.Of(r).Data, lo, hi)
			return sparse.AxpyDotRange(-s.stepAlpha, s.q.Of(r).Data, s.g.Of(r).Data, lo, hi)
		})
	}

	// x = 0, g = b, d = g (or z = M⁻¹g) via the beta=0 first step.
	sub.RankOp("init", func(r *shard.Rank, p, lo, hi int) {
		copy(s.g.Of(r).Data[lo:hi], sub.B[lo:hi])
	})
	if s.z != nil {
		sub.ApplyPrecondOwned("z", s.g, s.z)
		s.rho = sub.Dot("<z,g>", s.z, s.g)
	}
	s.epsGG = sub.Dot("gg", s.g, s.g)
	s.beta = 0
	s.restartPending = true

	var it int
	converged := false
	for it = 0; it < maxIter; it++ {
		if s.cfg.Cancelled != nil && s.cfg.Cancelled() {
			res, x := s.finish(it, false, start, s.x)
			return res, x, core.ErrCancelled
		}
		s.applyPolicy(it)
		rel := relFromEps(s.epsGG, sub.Bnorm)
		if s.cfg.OnIteration != nil {
			s.cfg.OnIteration(it, rel)
		}
		if rel < tol {
			if sub.TrueResidual(s.x) < tol*10 {
				converged = true
				break
			}
			s.restartFromX() // recurrence lied: rebuild and keep going
			s.stats.Restarts++
			continue
		}
		s.inject(it)
		if !s.boundary() {
			continue // restart-style recovery consumed the iteration
		}
		if s.cfg.Method == core.MethodCheckpoint && (it-s.lastCkptIter >= s.cfg.ckptInterval() || !s.haveCkpt) {
			s.writeCheckpoint(it)
		}

		// d = src + beta d on owned pages, src the (preconditioned)
		// residual.
		beta := s.beta
		if s.restartPending {
			beta = 0
		}
		var dq float64
		if s.stepA != nil {
			// Overlapped: the d-update, d halo import, interior/boundary
			// q = A d rows and the <d,q> reduction run as one gated task
			// graph — interior rows compute while ghost pages are still
			// in flight (Fig 2b's asynchrony applied to communication).
			s.stepBeta = beta
			dq, _ = s.stepA.Run()
		} else {
			src := s.g
			if s.z != nil {
				src = s.z
			}
			sub.RankOp("d", func(r *shard.Rank, p, lo, hi int) {
				if beta == 0 {
					copy(s.d.Of(r).Data[lo:hi], src.Of(r).Data[lo:hi])
				} else {
					sparse.XpbyRange(src.Of(r).Data, beta, s.d.Of(r).Data, lo, hi)
				}
			})
			// Halo exchange of d, then the fused q = A d with the <d,q>
			// reduction riding the SpMV's pass — the §3.4 communication/
			// computation pattern with one superstep fewer.
			dq = sub.SpMVDot("q,<d,q>", s.d, s.q)
		}
		num := s.epsGG
		if s.z != nil {
			num = s.rho
		}
		alpha := 0.0
		if dq != 0 && !isNaN(dq) && !isNaN(num) {
			alpha = num / dq
		}

		// x += alpha d ; g -= alpha q fused with <g,g> ; [z = M⁻¹g ; <z,g>].
		var gg float64
		if s.stepB != nil {
			s.stepAlpha = alpha
			gg = s.stepB.RunDot()
		} else {
			gg = sub.RankOpDot("xg,<g,g>", func(r *shard.Rank, p, lo, hi int) float64 {
				sparse.AxpyRange(alpha, s.d.Of(r).Data, s.x.Of(r).Data, lo, hi)
				return sparse.AxpyDotRange(-alpha, s.q.Of(r).Data, s.g.Of(r).Data, lo, hi)
			})
		}
		if s.z != nil {
			sub.ApplyPrecondOwned("z", s.g, s.z)
			zg := sub.Dot("<z,g>", s.z, s.g)
			if s.rho != 0 && !isNaN(zg) {
				s.beta = zg / s.rho
			} else {
				s.beta = 0
			}
			s.rho = zg
		} else if s.epsGG != 0 && !isNaN(gg) {
			s.beta = gg / s.epsGG
		} else {
			s.beta = 0
		}
		s.epsGG = gg
		s.restartPending = false
	}

	res, x := s.finish(it, converged, start, s.x)
	return res, x, nil
}

// restartFromX rebuilds the whole recurrence from the owned iterate
// shards: blank any failed x pages, g = b - A x (with an x halo
// exchange), d rebuilt from g on the next iteration via beta = 0.
func (s *CG) restartFromX() {
	blankOwned(s.sub, true, s.x)
	for _, r := range s.sub.Ranks {
		r.Space.ClearAll()
	}
	s.sub.ResidualFromX(s.x, s.g)
	if s.z != nil {
		s.sub.ApplyPrecondOwned("z", s.g, s.z)
		s.rho = s.sub.Dot("<z,g>", s.z, s.g)
	}
	s.epsGG = s.sub.Dot("gg", s.g, s.g)
	s.restartPending = true
}

// writeCheckpoint snapshots the global iterate and direction (§4.2: "the
// minimum to allow rolling back") plus the β scalar.
func (s *CG) writeCheckpoint(it int) {
	if s.ckX == nil {
		s.ckX = make([]float64, s.sub.A.N)
		s.ckD = make([]float64, s.sub.A.N)
	}
	s.sub.Gather(s.x, s.ckX)
	s.sub.Gather(s.d, s.ckD)
	s.ckBeta = s.beta
	s.haveCkpt = true
	s.lastCkptIter = it
	s.stats.CheckpointsWritten++
}

// rollback restores the snapshot (or restarts from scratch when none
// exists) and rebuilds the derived state.
func (s *CG) rollback() {
	for _, r := range s.sub.Ranks {
		r.Space.ClearAll()
	}
	if !s.haveCkpt {
		s.sub.RankOp("zero", func(r *shard.Rank, p, lo, hi int) {
			xd := s.x.Of(r).Data
			for i := lo; i < hi; i++ {
				xd[i] = 0
			}
		})
		s.restartFromX()
	} else {
		s.sub.Scatter(s.ckX, s.x)
		s.sub.Scatter(s.ckD, s.d)
		s.sub.ResidualFromX(s.x, s.g)
		if s.z != nil {
			s.sub.ApplyPrecondOwned("z", s.g, s.z)
			s.rho = s.sub.Dot("<z,g>", s.z, s.g)
		}
		s.epsGG = s.sub.Dot("gg", s.g, s.g)
		s.beta = s.ckBeta
		s.restartPending = false
	}
	s.stats.Rollbacks++
}

// boundary applies pending losses on every rank and resolves them per the
// configured method. Returns false when a restart/rollback consumed the
// iteration. Leaving a boundary no page is failed (the phases themselves
// run unguarded, like the single-node GMRES discipline).
func (s *CG) boundary() bool {
	sub := s.sub
	sub.ApplyPending()
	if !sub.AnyFault() {
		return true
	}
	sub.HealGhosts() // ghost damage heals by re-import
	if !sub.OwnedFault() {
		return true
	}
	switch s.cfg.Method {
	case core.MethodFEIR, core.MethodAFEIR:
		if s.exactRecover() {
			return true
		}
		s.restartFromX()
		s.stats.Restarts++
		return false
	case core.MethodLossy:
		s.lossyRestart()
		return false
	case core.MethodCheckpoint:
		s.rollback()
		return false
	default:
		// Blank-page forward recovery: keep running.
		if s.z != nil {
			blankOwned(sub, false, s.z)
		}
		blankOwned(sub, false, s.x, s.g, s.d, s.q)
		return true
	}
}

// exactRecover runs the FEIR relations across ranks to a fixpoint:
// q and d heal by overwrite (they are rebuilt every iteration from g and
// the halo under a forced beta=0 step), g pages by the forward relation
// g = b - A x, x pages by the rank-local inverse over the halo.
// Returns false if any page stays unrecovered.
func (s *CG) exactRecover() bool {
	// d is rebuilt from g at the next phase under a forced beta=0 step
	// (exact restart of the direction, not of the iterate); q likewise.
	for _, r := range s.sub.Ranks {
		redirect := false
		for _, v := range []*shard.Vec{s.d, s.q} {
			for _, p := range r.OwnedFailed(v) {
				v.Of(r).Remap(p)
				v.Of(r).MarkRecovered(p)
				redirect = true
			}
		}
		if redirect {
			s.restartPending = true
		}
	}
	if !recoverXG(s.sub, s.cfg.Method, s.x, s.g) {
		return false
	}
	if s.z != nil {
		// z = M⁻¹ g by rank-local partial application (§3.2); g's owned
		// pages are all current after recoverXG succeeded.
		s.sub.RecoverPrecondOwned(s.cfg.Method, "z", s.z, s.g)
	}
	return !s.sub.OwnedFault()
}

// lossyRestart interpolates lost iterate pages with the block-Jacobi step
// on the gathered iterate and restarts (§4.3).
func (s *CG) lossyRestart() {
	if n := s.sub.LossyInterpolateOwned(s.x); n > 0 {
		s.stats.LossyInterpolations += n
	}
	s.restartFromX()
	s.stats.Restarts++
}
