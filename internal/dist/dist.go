// Package dist is the rank-sharded layer of §3.4: a functional model of
// the paper's MPI+tasks hybrid where the matrix rows are partitioned into
// contiguous page ranges ("ranks"), each rank owns a private fault domain
// (its own pagemem.Space) for its shard of the Krylov vectors, and every
// SpMV is preceded by a halo exchange of exactly the off-rank pages the
// rank's rows read — the read set computed by core.PageConnectivity. Rank
// work runs as tasks on a shared internal/taskrt pool (one task per rank
// per phase), with the coordinator playing the role of the allreduce.
//
// Resilience follows the single-node schemes: FEIR/AFEIR repair lost
// pages exactly through the g = b - A x / x = A⁻¹(b - g) relations
// (inverse repairs need only the halo, so recovery stays rank-local plus
// one exchange — the paper's observation that the recovery blast radius
// is bounded by the stencil), Lossy interpolates the iterate and
// restarts, Checkpoint rolls back to a periodic global snapshot, and the
// remaining methods blank lost pages and keep running.
package dist

import (
	"fmt"
	"math"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/pagemem"
	"repro/internal/sparse"
	"repro/internal/taskrt"
)

// Config parametrises a distributed solve.
type Config struct {
	// Method is the resilience scheme, as in core.Config.
	Method core.Method
	// Workers is the shared task-pool size; 0 means one worker per rank.
	Workers int
	// PageDoubles is the fault/recovery granularity; 0 means 512.
	PageDoubles int
	// Tol is the relative residual threshold; 0 means 1e-10.
	Tol float64
	// MaxIter bounds iterations; 0 means 10*n.
	MaxIter int
	// CheckpointInterval is the snapshot period in iterations for
	// MethodCheckpoint; 0 means 100.
	CheckpointInterval int
	// Inject, when non-nil, is called once per iteration with the
	// per-rank fault domains — the hook experiments.ValidateDistributed
	// uses to drive deterministic injections.
	Inject func(it int, spaces []*pagemem.Space)
	// OnIteration, when non-nil, receives the recurrence residual trace.
	OnIteration func(it int, relRes float64)
}

func (c Config) pageDoubles() int {
	if c.PageDoubles > 0 {
		return c.PageDoubles
	}
	return 512
}

func (c Config) tol() float64 {
	if c.Tol > 0 {
		return c.Tol
	}
	return 1e-10
}

func (c Config) maxIter(n int) int {
	if c.MaxIter > 0 {
		return c.MaxIter
	}
	return 10 * n
}

func (c Config) ckptInterval() int {
	if c.CheckpointInterval > 0 {
		return c.CheckpointInterval
	}
	return 100
}

// rank is one shard: a contiguous page range of the global vectors, with
// its own fault domain over the owned elements and full-length ghost
// buffers holding the halo imported from other ranks.
type rank struct {
	id       int
	pLo, pHi int // owned global pages
	lo, hi   int // owned global elements
	space    *pagemem.Space
	x, g, d  *pagemem.Vector // owned shards (local page index = global - pLo)
	q        *pagemem.Vector
	// Ghost buffers indexed GLOBALLY: the owned range plus the halo
	// pages listed in halo are valid after an exchange.
	xGhost, dGhost []float64
	scratch        []float64 // one global-length buffer for SpMV targets
	halo           []int     // off-rank global pages this rank's rows read
	dqPart, ggPart float64
}

// localPage converts a global page index to the rank's space index.
func (r *rank) localPage(p int) int { return p - r.pLo }

// SolveCG runs a rank-partitioned resilient CG on A x = b with the given
// number of ranks. It returns the aggregate result and the solution.
func SolveCG(a *sparse.CSR, b []float64, ranks int, cfg Config) (core.Result, []float64, error) {
	if a.N != a.M {
		return core.Result{}, nil, fmt.Errorf("dist: non-square matrix %dx%d", a.N, a.M)
	}
	if len(b) != a.N {
		return core.Result{}, nil, fmt.Errorf("dist: rhs length %d for n=%d", len(b), a.N)
	}
	if ranks < 1 {
		ranks = 1
	}
	start := time.Now()
	layout := sparse.BlockLayout{N: a.N, BlockSize: cfg.pageDoubles()}
	np := layout.NumBlocks()
	if ranks > np {
		ranks = np
	}
	conn := core.PageConnectivity(a, layout)
	blocks := sparse.NewBlockSolverCache(a, layout, true)

	// Page ownership: the same strip-mining the engine uses for chunks.
	parts := engine.ChunkRanges(np, ranks)
	owner := make([]int, np)
	rs := make([]*rank, len(parts))
	for id, pr := range parts {
		lo, _ := layout.Range(pr[0])
		hi := a.N
		if pr[1] < np {
			hi, _ = layout.Range(pr[1])
		}
		r := &rank{id: id, pLo: pr[0], pHi: pr[1], lo: lo, hi: hi}
		r.space = pagemem.NewSpace(hi-lo, cfg.pageDoubles())
		r.x = r.space.AddVector("x")
		r.g = r.space.AddVector("g")
		r.d = r.space.AddVector("d")
		r.q = r.space.AddVector("q")
		r.xGhost = make([]float64, a.N)
		r.dGhost = make([]float64, a.N)
		r.scratch = make([]float64, a.N)
		for p := pr[0]; p < pr[1]; p++ {
			owner[p] = id
		}
		rs[id] = r
	}
	// Halo sets: every off-rank page read by an owned row.
	for _, r := range rs {
		seen := map[int]bool{}
		for p := r.pLo; p < r.pHi; p++ {
			for _, j := range conn[p] {
				if (j < r.pLo || j >= r.pHi) && !seen[j] {
					seen[j] = true
					r.halo = append(r.halo, j)
				}
			}
		}
	}
	spaces := make([]*pagemem.Space, len(rs))
	for i, r := range rs {
		spaces[i] = r.space
	}

	workers := cfg.Workers
	if workers <= 0 {
		workers = len(rs)
	}
	rt := taskrt.New(workers)
	defer rt.Close()

	s := &cgSolver{
		a: a, b: b, layout: layout, np: np, conn: conn, blocks: blocks,
		owner: owner, ranks: rs, rt: rt, cfg: cfg,
	}
	s.bnorm = sparse.Norm2(b)
	if s.bnorm == 0 {
		s.bnorm = 1
	}
	res, x, err := s.run(start)
	res.WorkerTimes = rt.WorkerTimes()
	return res, x, err
}

type cgSolver struct {
	a      *sparse.CSR
	b      []float64
	bnorm  float64
	layout sparse.BlockLayout
	np     int
	conn   [][]int
	blocks *sparse.BlockSolverCache
	owner  []int
	ranks  []*rank
	rt     *taskrt.Runtime
	cfg    Config
	stats  core.Stats

	epsGG float64
	beta  float64

	// Checkpoint snapshot (global).
	haveCkpt     bool
	ckX, ckD     []float64
	ckBeta       float64
	lastCkptIter int

	restartPending bool
}

// forEachRank runs fn(r) as one task per rank and waits — the BSP
// superstep primitive.
func (s *cgSolver) forEachRank(label string, fn func(r *rank)) {
	hs := make([]*taskrt.Handle, 0, len(s.ranks))
	for _, r := range s.ranks {
		r := r
		hs = append(hs, s.rt.Submit(taskrt.TaskSpec{Label: fmt.Sprintf("rank%d:%s", r.id, label), Run: func(int) {
			fn(r)
		}}))
	}
	s.rt.WaitAll(hs)
}

// exchange imports, for every rank, its halo pages of the given shard
// vector into the rank's ghost buffer (after copying its own range in).
// pick selects the shard and ghost of a rank. It must run at a barrier:
// owners' shards are quiescent.
func (s *cgSolver) exchange(label string, pick func(r *rank) (*pagemem.Vector, []float64)) {
	s.forEachRank("xch:"+label, func(r *rank) {
		own, ghost := pick(r)
		copy(ghost[r.lo:r.hi], own.Data)
		for _, p := range r.halo {
			o := s.ranks[s.owner[p]]
			shard, _ := pick(o)
			lo, hi := s.layout.Range(p)
			copy(ghost[lo:hi], shard.Data[lo-o.lo:hi-o.lo])
		}
	})
}

func (s *cgSolver) run(start time.Time) (core.Result, []float64, error) {
	tol := s.cfg.tol()
	maxIter := s.cfg.maxIter(s.a.N)

	// x = 0, g = b, d = g via the beta=0 first step.
	s.forEachRank("init", func(r *rank) {
		copy(r.g.Data, s.b[r.lo:r.hi])
	})
	s.epsGG = s.allreduceGG()
	s.beta = 0
	s.restartPending = true

	var it int
	converged := false
	for it = 0; it < maxIter; it++ {
		rel := relFromEps(s.epsGG, s.bnorm)
		if s.cfg.OnIteration != nil {
			s.cfg.OnIteration(it, rel)
		}
		if rel < tol {
			if s.trueResidual() < tol*10 {
				converged = true
				break
			}
			s.restartFromX() // recurrence lied: rebuild and keep going
			s.stats.Restarts++
			continue
		}
		if s.cfg.Inject != nil {
			s.cfg.Inject(it, s.spaces())
		}
		if !s.boundary() {
			continue // restart-style recovery consumed the iteration
		}
		if s.cfg.Method == core.MethodCheckpoint && (it-s.lastCkptIter >= s.cfg.ckptInterval() || !s.haveCkpt) {
			s.writeCheckpoint(it)
		}

		// d = g + beta d on owned pages.
		beta := s.beta
		if s.restartPending {
			beta = 0
		}
		s.forEachRank("d", func(r *rank) {
			if beta == 0 {
				copy(r.d.Data, r.g.Data)
			} else {
				sparse.Xpby(r.g.Data, beta, r.d.Data)
			}
		})
		// Halo exchange of d, then q = A d on owned rows and the <d,q>
		// partial — the §3.4 communication/computation pattern.
		s.exchange("d", func(r *rank) (*pagemem.Vector, []float64) { return r.d, r.dGhost })
		s.forEachRank("q", func(r *rank) {
			s.a.MulVecRange(r.dGhost, r.scratch, r.lo, r.hi)
			copy(r.q.Data, r.scratch[r.lo:r.hi])
			r.dqPart = sparse.DotRange(r.dGhost, r.scratch, r.lo, r.hi)
		})
		dq := 0.0
		for _, r := range s.ranks {
			dq += r.dqPart
		}
		alpha := 0.0
		if dq != 0 && !isNaN(dq) && !isNaN(s.epsGG) {
			alpha = s.epsGG / dq
		}

		// x += alpha d ; g -= alpha q ; <g,g> partial.
		s.forEachRank("xg", func(r *rank) {
			sparse.Axpy(alpha, r.d.Data, r.x.Data)
			sparse.Axpy(-alpha, r.q.Data, r.g.Data)
			r.ggPart = sparse.Dot(r.g.Data, r.g.Data)
		})
		gg := 0.0
		for _, r := range s.ranks {
			gg += r.ggPart
		}
		if s.epsGG != 0 && !isNaN(gg) {
			s.beta = gg / s.epsGG
		} else {
			s.beta = 0
		}
		s.epsGG = gg
		s.restartPending = false
	}

	x := s.gatherX()
	res := core.Result{
		Converged:   converged,
		Iterations:  it,
		RelResidual: s.trueResidual(),
		Elapsed:     time.Since(start),
		Stats:       s.stats,
	}
	return res, x, nil
}

func (s *cgSolver) spaces() []*pagemem.Space {
	out := make([]*pagemem.Space, len(s.ranks))
	for i, r := range s.ranks {
		out[i] = r.space
	}
	return out
}

func relFromEps(eps, bnorm float64) float64 {
	return math.Sqrt(math.Max(eps, 0)) / bnorm
}

// gatherX assembles the global iterate from the owned shards.
func (s *cgSolver) gatherX() []float64 {
	x := make([]float64, s.a.N)
	for _, r := range s.ranks {
		copy(x[r.lo:r.hi], r.x.Data)
	}
	return x
}

// trueResidual computes ||b - A x|| / ||b|| from the gathered iterate.
func (s *cgSolver) trueResidual() float64 {
	x := s.gatherX()
	res := make([]float64, s.a.N)
	s.a.MulVec(x, res)
	sparse.Sub(s.b, res, res)
	return sparse.Norm2(res) / s.bnorm
}

func (s *cgSolver) allreduceGG() float64 {
	s.forEachRank("gg", func(r *rank) {
		r.ggPart = sparse.Dot(r.g.Data, r.g.Data)
	})
	gg := 0.0
	for _, r := range s.ranks {
		gg += r.ggPart
	}
	return gg
}

// restartFromX rebuilds the whole recurrence from the owned iterate
// shards: blank any failed x pages, g = b - A x (with an x halo
// exchange), d rebuilt from g on the next iteration via beta = 0.
func (s *cgSolver) restartFromX() {
	for _, r := range s.ranks {
		for _, p := range r.x.FailedPages() {
			r.x.Remap(p)
			s.stats.Unrecovered++
		}
		r.space.ClearAll()
	}
	s.exchange("x", func(r *rank) (*pagemem.Vector, []float64) { return r.x, r.xGhost })
	s.forEachRank("g=b-Ax", func(r *rank) {
		s.a.MulVecRange(r.xGhost, r.scratch, r.lo, r.hi)
		for i := r.lo; i < r.hi; i++ {
			r.g.Data[i-r.lo] = s.b[i] - r.scratch[i]
		}
	})
	s.epsGG = s.allreduceGG()
	s.restartPending = true
}

// writeCheckpoint snapshots the global iterate and direction (§4.2: "the
// minimum to allow rolling back") plus the β scalar.
func (s *cgSolver) writeCheckpoint(it int) {
	if s.ckX == nil {
		s.ckX = make([]float64, s.a.N)
		s.ckD = make([]float64, s.a.N)
	}
	for _, r := range s.ranks {
		copy(s.ckX[r.lo:r.hi], r.x.Data)
		copy(s.ckD[r.lo:r.hi], r.d.Data)
	}
	s.ckBeta = s.beta
	s.haveCkpt = true
	s.lastCkptIter = it
	s.stats.CheckpointsWritten++
}

// rollback restores the snapshot (or restarts from scratch when none
// exists) and rebuilds the derived state.
func (s *cgSolver) rollback() {
	for _, r := range s.ranks {
		r.space.ClearAll()
	}
	if !s.haveCkpt {
		s.forEachRank("zero", func(r *rank) {
			for i := range r.x.Data {
				r.x.Data[i] = 0
			}
		})
		s.restartFromX()
	} else {
		s.forEachRank("restore", func(r *rank) {
			copy(r.x.Data, s.ckX[r.lo:r.hi])
			copy(r.d.Data, s.ckD[r.lo:r.hi])
		})
		s.exchange("x", func(r *rank) (*pagemem.Vector, []float64) { return r.x, r.xGhost })
		s.forEachRank("g=b-Ax", func(r *rank) {
			s.a.MulVecRange(r.xGhost, r.scratch, r.lo, r.hi)
			for i := r.lo; i < r.hi; i++ {
				r.g.Data[i-r.lo] = s.b[i] - r.scratch[i]
			}
		})
		s.epsGG = s.allreduceGG()
		s.beta = s.ckBeta
		s.restartPending = false
	}
	s.stats.Rollbacks++
}

// boundary applies pending losses on every rank and resolves them per the
// configured method. Returns false when a restart/rollback consumed the
// iteration. Leaving a boundary no page is failed (the phases themselves
// run unguarded, like the single-node GMRES discipline).
func (s *cgSolver) boundary() bool {
	faults := 0
	for _, r := range s.ranks {
		faults += len(r.space.ScramblePending())
	}
	s.stats.FaultsSeen += faults
	anyFault := false
	for _, r := range s.ranks {
		if r.space.AnyFault() {
			anyFault = true
			break
		}
	}
	if !anyFault {
		return true
	}
	switch s.cfg.Method {
	case core.MethodFEIR, core.MethodAFEIR:
		if s.exactRecover() {
			return true
		}
		s.restartFromX()
		s.stats.Restarts++
		return false
	case core.MethodLossy:
		s.lossyRestart()
		return false
	case core.MethodCheckpoint:
		s.rollback()
		return false
	default:
		// Blank-page forward recovery: keep running.
		for _, r := range s.ranks {
			for _, v := range r.space.Vectors() {
				for _, p := range v.FailedPages() {
					v.Remap(p)
					v.MarkRecovered(p)
				}
			}
		}
		return true
	}
}

// exactRecover runs the FEIR relations across ranks to a fixpoint:
// q and d heal by overwrite (they are rebuilt every iteration from g and
// the halo), g pages by the forward relation g = b - A x, x pages by the
// rank-local inverse A_pp x_p = b_p - g_p - Σ A_pj x_j over the halo.
// Returns false if any page stays unrecovered.
func (s *cgSolver) exactRecover() bool {
	// d is rebuilt from g at the next phase under a forced beta=0 step
	// (exact restart of the direction, not of the iterate); q likewise.
	for _, r := range s.ranks {
		redirect := false
		for _, v := range []*pagemem.Vector{r.d, r.q} {
			for _, p := range v.FailedPages() {
				v.Remap(p)
				v.MarkRecovered(p)
				redirect = true
			}
		}
		if redirect {
			s.restartPending = true
		}
	}
	// Fixpoint over the g/x relations, with a fresh x halo each pass.
	for pass := 0; pass < 4; pass++ {
		s.exchange("x", func(r *rank) (*pagemem.Vector, []float64) { return r.x, r.xGhost })
		// Global failure map of x pages for halo guards.
		xFailed := make([]bool, s.np)
		for _, r := range s.ranks {
			for _, p := range r.x.FailedPages() {
				xFailed[r.pLo+p] = true
			}
		}
		// Repairs are rank-local but run here on the coordinator: they
		// mutate the shared statistics, and boundary recovery is off the
		// steady-state critical path.
		progress := false
		for _, r := range s.ranks {
			for _, lp := range r.g.FailedPages() {
				p := r.pLo + lp
				ok := true
				for _, j := range s.conn[p] {
					if xFailed[j] {
						ok = false
						break
					}
				}
				if !ok {
					continue
				}
				lo, hi := s.layout.Range(p)
				s.a.MulVecRange(r.xGhost, r.scratch, lo, hi)
				for i := lo; i < hi; i++ {
					r.g.Data[i-r.lo] = s.b[i] - r.scratch[i]
				}
				r.g.MarkRecovered(lp)
				s.stats.RecoveredForward++
				progress = true
			}
			for _, lp := range r.x.FailedPages() {
				p := r.pLo + lp
				if r.g.Failed(lp) {
					continue
				}
				ok := true
				for _, j := range s.conn[p] {
					if j != p && xFailed[j] {
						ok = false
						break
					}
				}
				if !ok {
					continue
				}
				lo, hi := s.layout.Range(p)
				buf := r.scratch[:hi-lo]
				s.a.MulVecRangeExcludingCols(r.xGhost, buf, lo, hi, lo, hi)
				for i := lo; i < hi; i++ {
					buf[i-lo] = s.b[i] - r.g.Data[i-r.lo] - buf[i-lo]
				}
				if err := s.blocks.SolveDiagBlock(p, buf); err != nil {
					continue
				}
				copy(r.x.Data[lo-r.lo:hi-r.lo], buf)
				r.x.MarkRecovered(lp)
				s.stats.RecoveredInverse++
				progress = true
			}
		}
		left := false
		for _, r := range s.ranks {
			if r.space.AnyFault() {
				left = true
				break
			}
		}
		if !left {
			return true
		}
		if !progress {
			return false
		}
	}
	for _, r := range s.ranks {
		if r.space.AnyFault() {
			return false
		}
	}
	return true
}

// lossyRestart interpolates lost iterate pages with the block-Jacobi step
// on the gathered iterate and restarts (§4.3).
func (s *cgSolver) lossyRestart() {
	x := s.gatherX()
	var failed []int
	for _, r := range s.ranks {
		for _, lp := range r.x.FailedPages() {
			failed = append(failed, r.pLo+lp)
		}
	}
	if len(failed) > 0 && core.LossyInterpolate(s.a, s.layout, s.blocks, s.b, x, failed) {
		s.stats.LossyInterpolations += len(failed)
		for _, r := range s.ranks {
			copy(r.x.Data, x[r.lo:r.hi])
			for _, lp := range r.x.FailedPages() {
				r.x.MarkRecovered(lp)
			}
		}
	}
	s.restartFromX()
	s.stats.Restarts++
}

func isNaN(v float64) bool { return math.IsNaN(v) }
