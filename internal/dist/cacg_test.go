package dist

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/shard"
	"repro/internal/solver"
)

func TestCACGMatchesSequential(t *testing.T) {
	a, b := distSystem()
	want := make([]float64, a.N)
	if _, err := solver.CG(a, b, want, solver.Options{Tol: 1e-9}); err != nil {
		t.Fatal(err)
	}
	for _, ranks := range []int{1, 3, 4} {
		res, x, err := SolveCACG(a, b, ranks, baseCfg(core.MethodIdeal))
		if err != nil {
			t.Fatalf("ranks=%d: %v", ranks, err)
		}
		if !res.Converged {
			t.Fatalf("ranks=%d: not converged: %+v", ranks, res)
		}
		for i := range x {
			if math.Abs(x[i]-want[i]) > 1e-6 {
				t.Fatalf("ranks=%d: x[%d] = %v, want %v", ranks, i, x[i], want[i])
			}
		}
	}
}

// TestCACGToleranceEqualsDistCG: on the fig-5 class problem cacg reaches
// the same tolerance as distributed CG for every supported basis size —
// the communication saving must not cost convergence.
func TestCACGToleranceEqualsDistCG(t *testing.T) {
	a, b := distSystem()
	ref, _, err := SolveCG(a, b, 4, baseCfg(core.MethodIdeal))
	if err != nil || !ref.Converged {
		t.Fatalf("cg reference: %+v err=%v", ref, err)
	}
	for _, k := range []int{1, 2, 4, 8} {
		cfg := baseCfg(core.MethodIdeal)
		cfg.BasisK = k
		res, _, err := SolveCACG(a, b, 4, cfg)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if !res.Converged || res.RelResidual > 1e-8 {
			t.Fatalf("k=%d: %+v (cg: rel=%v)", k, res, ref.RelResidual)
		}
	}
}

// TestCACGReductionBudget pins the headline claim: the steady state
// spends exactly one global reduction superstep per outer step, so a
// whole solve stays within ⌈iters/k⌉ plus one reduction per restart-
// style recovery plus a small constant (init γ and the true-residual
// confirmations), for every basis size.
func TestCACGReductionBudget(t *testing.T) {
	a, b := distSystem()
	for _, k := range []int{2, 4, 8} {
		cfg := baseCfg(core.MethodIdeal)
		cfg.BasisK = k
		s, err := NewCACG(a, b, 4, cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, _, err := s.Run()
		if err != nil || !res.Converged {
			t.Fatalf("k=%d: %+v err=%v", k, res, err)
		}
		outer := (res.Iterations + k - 1) / k
		budget := int64(outer + res.Stats.Restarts + 4)
		if got := s.Reductions(); got > budget {
			t.Fatalf("k=%d: %d reductions exceeds budget %d (outer=%d restarts=%d)",
				k, got, budget, outer, res.Stats.Restarts)
		}
		if got := s.Reductions(); got >= int64(res.Iterations) {
			t.Fatalf("k=%d: %d reductions for %d iterations — no communication saving",
				k, got, res.Iterations)
		}
	}
}

// TestCACGBarrierMatchesOverlapBitwise: the k overlapped basis supersteps
// must reproduce the barrier path's residual trace and solution bitwise,
// like CG's overlap path.
func TestCACGBarrierMatchesOverlapBitwise(t *testing.T) {
	a, b := distSystem()
	run := func(barrier bool) ([]float64, []float64, core.Result) {
		cfg := baseCfg(core.MethodFEIR)
		cfg.Barrier = barrier
		var trace []float64
		cfg.OnIteration = func(it int, rel float64) { trace = append(trace, rel) }
		res, x, err := SolveCACG(a, b, 4, cfg)
		if err != nil || !res.Converged {
			t.Fatalf("barrier=%v: %+v err=%v", barrier, res, err)
		}
		return trace, x, res
	}
	tB, xB, rB := run(true)
	tO, xO, rO := run(false)
	if rB.Iterations != rO.Iterations {
		t.Fatalf("iterations differ: %d vs %d", rB.Iterations, rO.Iterations)
	}
	for i := range tB {
		if tB[i] != tO[i] {
			t.Fatalf("residual trace diverges at outer step %d: %v vs %v", i, tB[i], tO[i])
		}
	}
	for i := range xB {
		if xB[i] != xO[i] {
			t.Fatalf("solutions diverge at %d: %v vs %v", i, xB[i], xO[i])
		}
	}
}

// cacgStormSchedule draws count injections aligned to cacg's outer-step
// boundaries (the Inject hook fires once per outer step, at iteration
// multiples of k).
func cacgStormSchedule(rng *rand.Rand, vectors []string, window, k, count int) []distInjection {
	steps := window / k
	if steps < 1 {
		steps = 1
	}
	inj := make([]distInjection, count)
	for i := range inj {
		inj[i] = distInjection{
			it:   k * (1 + rng.Intn(steps)),
			rank: rng.Intn(8),
			vec:  vectors[rng.Intn(len(vectors))],
			off:  rng.Intn(64),
		}
	}
	return inj
}

// TestCACGStormMatchesBarrier: randomized 1–5 DUE campaigns into the
// protected pair, the basis tail and the direction blocks, FEIR and
// AFEIR — the overlapped path must reproduce the barrier path's recovery
// counts, iterations and residuals exactly, and both must converge like
// distributed CG does under fire.
func TestCACGStormMatchesBarrier(t *testing.T) {
	a, b := distSystem()
	const k = 4
	probe := func() core.Result {
		cfg := baseCfg(core.MethodFEIR)
		cfg.BasisK = k
		res, _, err := SolveCACG(a, b, 4, cfg)
		if err != nil || !res.Converged {
			t.Fatalf("fault-free run: %+v err=%v", res, err)
		}
		return res
	}()
	window := probe.Iterations * 3 / 4
	if window < 2*k {
		t.Fatalf("fault-free run too short for a storm: %+v", probe)
	}
	vectors := []string{"x", "g", "v2", "p0", "ap1"}
	for _, method := range []core.Method{core.MethodFEIR, core.MethodAFEIR} {
		for rate := 1; rate <= 5; rate++ {
			seed := int64(9000*int(method) + rate)
			inj := cacgStormSchedule(rand.New(rand.NewSource(seed)), vectors, window, k, rate)
			run := func(barrier bool) core.Result {
				cfg := baseCfg(method)
				cfg.BasisK = k
				cfg.Barrier = barrier
				cfg.Inject = injectOwned(inj)
				res, _, err := SolveCACG(a, b, 4, cfg)
				if err != nil {
					t.Fatalf("%v rate %d barrier=%v: %v", method, rate, barrier, err)
				}
				if !res.Converged || res.RelResidual > 1e-8 {
					t.Fatalf("%v rate %d barrier=%v: %+v", method, rate, barrier, res)
				}
				return res
			}
			rB := run(true)
			rO := run(false)
			if rB.Iterations != rO.Iterations {
				t.Fatalf("%v rate %d: iterations %d vs %d", method, rate, rB.Iterations, rO.Iterations)
			}
			if !statsEqual(rB.Stats, rO.Stats) {
				t.Fatalf("%v rate %d: stats diverge\nbarrier: %+v\noverlap: %+v", method, rate, rB.Stats, rO.Stats)
			}
			if rO.Stats.FaultsSeen == 0 {
				t.Fatalf("%v rate %d: no faults seen", method, rate)
			}
			if d := math.Abs(rB.RelResidual - rO.RelResidual); d > 1e-12*(1+rB.RelResidual) {
				t.Fatalf("%v rate %d: residuals %v vs %v", method, rate, rB.RelResidual, rO.RelResidual)
			}
		}
	}
}

// cacgMidBasisInjection lands count DUEs from inside the basis-building
// SpMV supersteps while their tasks are in flight: alternating between a
// halo (ghost) page of the basis vector being exchanged and a boundary-
// row output page of the one being produced.
func cacgMidBasisInjection(s *CACG, count int) *int {
	fires := 0
	seen := 0
	s.sub.TestHook = func(stage string) {
		if stage != "spmv" && !strings.HasPrefix(stage, "overlap:") {
			return
		}
		fires++ // k firings per outer step, both disciplines
		if fires%5 != 0 || seen >= count {
			return
		}
		var target *shard.Rank
		for _, r := range s.sub.Ranks {
			if r.ID == (fires/5)%len(s.sub.Ranks) && len(r.Halo) > 0 && len(r.Boundary) > 0 {
				target = r
			}
		}
		if target == nil {
			return
		}
		j := 1 + seen%(s.k-1) // basis tail vector v[j]
		if seen%2 == 0 {
			s.v[j].Of(target).Poison(target.Halo[0]) // in-flight ghost page
		} else {
			s.v[j+1].Of(target).Poison(target.Boundary[0]) // in-flight output
		}
		seen++
	}
	return &seen
}

// TestCACGMidBasisDUEs: DUEs raised while a mid-basis SpMV superstep is
// in flight — ghost pages of v_j being exchanged and boundary outputs of
// v_{j+1} being produced — must yield exactly the barrier path's
// recovery counts and residuals, for FEIR and AFEIR at 1–5 DUEs.
func TestCACGMidBasisDUEs(t *testing.T) {
	a, b := distSystem()
	for _, method := range []core.Method{core.MethodFEIR, core.MethodAFEIR} {
		for count := 1; count <= 5; count++ {
			run := func(barrier bool) core.Result {
				cfg := baseCfg(method)
				cfg.BasisK = 4
				cfg.Barrier = barrier
				s, err := NewCACG(a, b, 4, cfg)
				if err != nil {
					t.Fatal(err)
				}
				injected := cacgMidBasisInjection(s, count)
				res, _, err := s.Run()
				if err != nil {
					t.Fatalf("%v count %d barrier=%v: %v", method, count, barrier, err)
				}
				if !res.Converged || res.RelResidual > 1e-8 {
					t.Fatalf("%v count %d barrier=%v: %+v", method, count, barrier, res)
				}
				if *injected == 0 {
					t.Fatalf("%v count %d barrier=%v: no mid-basis DUE landed", method, count, barrier)
				}
				return res
			}
			rB := run(true)
			rO := run(false)
			if rB.Iterations != rO.Iterations {
				t.Fatalf("%v count %d: iterations %d vs %d", method, count, rB.Iterations, rO.Iterations)
			}
			if !statsEqual(rB.Stats, rO.Stats) {
				t.Fatalf("%v count %d: stats diverge\nbarrier: %+v\noverlap: %+v", method, count, rB.Stats, rO.Stats)
			}
			if rO.Stats.FaultsSeen == 0 {
				t.Fatalf("%v count %d: faults invisible", method, count)
			}
			if d := math.Abs(rB.RelResidual - rO.RelResidual); d > 1e-12*(1+rB.RelResidual) {
				t.Fatalf("%v count %d: residuals %v vs %v", method, count, rB.RelResidual, rO.RelResidual)
			}
		}
	}
}

// TestCACGRejectsUnsupportedConfig: the block recurrence must refuse
// loudly what it cannot honor.
func TestCACGRejectsUnsupportedConfig(t *testing.T) {
	a, b := distSystem()
	if _, err := NewCACG(a, b, 4, baseCfg(core.MethodCheckpoint)); err == nil {
		t.Fatal("checkpoint accepted")
	}
	cfg := baseCfg(core.MethodIdeal)
	cfg.UsePrecond = true
	if _, err := NewCACG(a, b, 4, cfg); err == nil {
		t.Fatal("precond accepted")
	}
	cfg = baseCfg(core.MethodIdeal)
	cfg.BasisK = 9
	if _, err := NewCACG(a, b, 4, cfg); err == nil {
		t.Fatal("oversized basis accepted")
	}
}
