package dist

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/matgen"
	"repro/internal/shard"
	"repro/internal/solver"
	"repro/internal/sparse"
)

func distSystem() (*sparse.CSR, []float64) {
	a := matgen.Poisson2D(40, 40) // n = 1600, 25 pages of 64
	b := matgen.RandomVector(a.N, 7)
	return a, b
}

func baseCfg(m core.Method) Config {
	return Config{Method: m, PageDoubles: 64, Tol: 1e-9, MaxIter: 20000}
}

func TestSolveCGMatchesSequential(t *testing.T) {
	a, b := distSystem()
	for _, ranks := range []int{1, 3, 4} {
		res, x, err := SolveCG(a, b, ranks, baseCfg(core.MethodIdeal))
		if err != nil {
			t.Fatalf("ranks=%d: %v", ranks, err)
		}
		if !res.Converged {
			t.Fatalf("ranks=%d: not converged: %+v", ranks, res)
		}
		want := make([]float64, a.N)
		if _, err := solver.CG(a, b, want, solver.Options{Tol: 1e-9}); err != nil {
			t.Fatal(err)
		}
		for i := range x {
			if math.Abs(x[i]-want[i]) > 1e-6 {
				t.Fatalf("ranks=%d: x[%d] = %v, want %v", ranks, i, x[i], want[i])
			}
		}
	}
}

// injectInto schedules one x-page poison per listed iteration, each into
// an owned page of a distinct rank.
func injectInto(iters []int) func(it int, ranks []*shard.Rank) {
	return func(it int, ranks []*shard.Rank) {
		for k, at := range iters {
			if it == at {
				r := ranks[k%len(ranks)]
				r.Space.VectorByName("x").Poison((r.PLo + r.PHi) / 2)
			}
		}
	}
}

func TestSolveCGFEIRRecoversExactly(t *testing.T) {
	a, b := distSystem()
	base, _, err := SolveCG(a, b, 4, baseCfg(core.MethodFEIR))
	if err != nil {
		t.Fatal(err)
	}
	cfg := baseCfg(core.MethodFEIR)
	cfg.Inject = injectInto([]int{10, 25, 40})
	res, _, err := SolveCG(a, b, 4, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || res.RelResidual > 1e-8 {
		t.Fatalf("FEIR: %+v", res)
	}
	if res.Stats.FaultsSeen != 3 {
		t.Fatalf("faults seen %d, want 3", res.Stats.FaultsSeen)
	}
	if res.Stats.RecoveredInverse == 0 {
		t.Fatalf("expected inverse x recoveries: %+v", res.Stats)
	}
	// Exact recovery preserves the convergence rate.
	if d := res.Iterations - base.Iterations; d < -2 || d > 2 {
		t.Fatalf("%d iterations vs fault-free %d", res.Iterations, base.Iterations)
	}
}

func TestSolveCGCheckpointRollsBack(t *testing.T) {
	a, b := distSystem()
	cfg := baseCfg(core.MethodCheckpoint)
	cfg.CheckpointInterval = 20
	cfg.Inject = injectInto([]int{30})
	res, _, err := SolveCG(a, b, 4, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || res.RelResidual > 1e-8 {
		t.Fatalf("ckpt: %+v", res)
	}
	if res.Stats.Rollbacks == 0 || res.Stats.CheckpointsWritten == 0 {
		t.Fatalf("stats %+v", res.Stats)
	}
}

func TestSolveCGLossyRestarts(t *testing.T) {
	a, b := distSystem()
	cfg := baseCfg(core.MethodLossy)
	cfg.Inject = injectInto([]int{30})
	res, _, err := SolveCG(a, b, 4, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || res.RelResidual > 1e-8 {
		t.Fatalf("lossy: %+v", res)
	}
	if res.Stats.LossyInterpolations == 0 || res.Stats.Restarts == 0 {
		t.Fatalf("stats %+v", res.Stats)
	}
}

func TestSolveCGValidation(t *testing.T) {
	a, b := distSystem()
	if _, _, err := SolveCG(a, b[:10], 2, baseCfg(core.MethodIdeal)); err == nil {
		t.Fatal("accepted bad rhs")
	}
	rect := sparse.NewCSRFromTriplets(2, 3, []sparse.Triplet{{Row: 0, Col: 0, Val: 1}})
	if _, _, err := SolveCG(rect, []float64{1, 2}, 2, baseCfg(core.MethodIdeal)); err == nil {
		t.Fatal("accepted non-square matrix")
	}
}
