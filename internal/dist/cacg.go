// Communication-avoiding s-step CG (Chronopoulos & Gear's block
// recurrence on the shard substrate): each outer step performs k
// back-to-back halo-overlapped SpMV supersteps to grow the monomial
// Krylov basis K = [r, Ar, …, A^k r], then folds EVERY inner product the
// step needs — the basis Gram block G = KᵀK and the coupling blocks
// KᵀP, KᵀAP against the previous directions — into ONE global block
// reduction (shard.PreparedRankOpDotBlock). The coordinator recurrences
// then produce the direction-combination matrix B, the step coefficients
// a = W⁻¹ Pᵀr and the residual-norm recurrence without touching the
// vectors again, and a single fused pass (sparse.CACGUpdateRange)
// advances x, r and the direction block in place. Classic CG spends 2
// reductions per iteration, pipecg 1; cacg spends 1 per k iterations.
//
// The monomial basis is the communication-optimal and conditioning-worst
// choice, so the step is guarded twice: the Gram factorization degrades
// to a truncated Cholesky (fewer directions this step, β=0 restart next
// step) rather than dividing by a broken pivot, and the residual-norm
// recurrence is cross-checked each outer step against the exact <r,r>
// the next Gram block delivers for free — on drift the residual is
// replaced (r = b - A x) and the directions restart. Neither guard costs
// a reduction superstep.
//
// Faults follow the CG/pipecg discipline: the protected pair (x, r) is
// repaired exactly through the Table 1 relations (recoverXG); the basis
// and direction blocks are transient and restart with β = 0 — an exact
// restart of the directions, not of the iterate.
package dist

import (
	"fmt"
	"math"
	"time"

	"repro/internal/core"
	"repro/internal/shard"
	"repro/internal/sparse"
)

// cacgDriftRel is the relative mismatch between the recurrence residual
// norm and the exact <r,r> (free in the next Gram block) beyond which
// the residual is replaced.
const cacgDriftRel = 1e-6

// CACG is the communication-avoiding s-step CG on the shard substrate.
type CACG struct {
	base
	k    int          // basis size: inner iterations per outer step
	x, r *shard.Vec   // protected iterate pair (r named g for x/g tooling)
	v    []*shard.Vec // Krylov basis; v[0] aliases r
	pd   []*shard.Vec // direction block P, k columns
	apd  []*shard.Vec // its A-image AP

	gamma          float64 // <r,r>: recurrence value, cross-checked per step
	restartPending bool    // next step builds P = K_s fresh (β = 0)

	// Coordinator state carried across outer steps: W = PᵀAP and its
	// Cholesky factor (solves the next step's B columns), Z = APᵀAP for
	// the residual-norm recurrence. Row-major k×k.
	wp, zp []float64
	wchol  *sparse.Cholesky

	stepV []*shard.OverlapStep // v[j+1] = A v[j]; nil when cfg.Barrier
	gram  *shard.PreparedRankOpDotBlock
	stepU *shard.PreparedRankOp

	cols  [][][]float64 // per rank: [v0..vk, P0..Pk-1, AP0..APk-1] data
	gbuf  []float64     // Gram block destination: G | KᵀP | KᵀAP
	nG    int           // symmetric G entries: (k+1)(k+2)/2
	gPos  []int         // row offsets into the packed upper triangle
	uA    []float64     // step coefficients read by the update closure
	uB    []float64     // B, column-major b[l*k+j]; read when uHasB
	uHasB bool
}

// NewCACG builds a communication-avoiding distributed CG over the given
// number of ranks. The block recurrence has no checkpoint rollback or
// preconditioned variant.
func NewCACG(a *sparse.CSR, rhs []float64, ranks int, cfg Config) (*CACG, error) {
	if cfg.Method == core.MethodCheckpoint {
		return nil, fmt.Errorf("dist: cacg has no checkpoint rollback (use cg)")
	}
	if cfg.UsePrecond {
		return nil, fmt.Errorf("dist: cacg has no preconditioned variant")
	}
	k := cfg.basisK()
	if k > sparse.MaxCACGBasis {
		return nil, fmt.Errorf("dist: cacg basis size %d out of range [1, %d]", k, sparse.MaxCACGBasis)
	}
	s := &CACG{k: k}
	if err := s.setup(a, rhs, ranks, cfg, true); err != nil {
		return nil, err
	}
	s.x = s.sub.AddVector("x")
	s.r = s.sub.AddVector("g") // residual: named g so shared x/g tooling applies
	s.v = make([]*shard.Vec, k+1)
	s.v[0] = s.r
	for j := 1; j <= k; j++ {
		s.v[j] = s.sub.AddVector(fmt.Sprintf("v%d", j))
	}
	s.pd = make([]*shard.Vec, k)
	s.apd = make([]*shard.Vec, k)
	for j := 0; j < k; j++ {
		s.pd[j] = s.sub.AddVector(fmt.Sprintf("p%d", j))
		s.apd[j] = s.sub.AddVector(fmt.Sprintf("ap%d", j))
	}
	s.track(s.x, s.r)
	s.track(s.v[1:]...)
	s.track(s.pd...)
	s.track(s.apd...)

	s.wp = make([]float64, k*k)
	s.zp = make([]float64, k*k)
	s.uA = make([]float64, k)
	s.uB = make([]float64, k*k)
	s.nG = (k + 1) * (k + 2) / 2
	s.gPos = make([]int, k+1)
	for i, off := 0, 0; i <= k; i++ {
		s.gPos[i] = off - i // gAt(i,j) = gbuf[gPos[i]+j] for j >= i
		off += k + 1 - i
	}
	return s, nil
}

// SolveCACG runs the communication-avoiding distributed CG on A x = b.
func SolveCACG(a *sparse.CSR, b []float64, ranks int, cfg Config) (core.Result, []float64, error) {
	s, err := NewCACG(a, b, ranks, cfg)
	if err != nil {
		return core.Result{}, nil, err
	}
	return s.Run()
}

// BasisK reports the resolved basis size.
func (s *CACG) BasisK() int { return s.k }

// gAt reads the symmetric basis Gram entry <v_i, v_j>.
func (s *CACG) gAt(i, j int) float64 {
	if i > j {
		i, j = j, i
	}
	return s.gbuf[s.gPos[i]+j]
}

// c1At reads <v_i, P_j>; c2At reads <v_i, AP_j>.
func (s *CACG) c1At(i, j int) float64 { return s.gbuf[s.nG+i*s.k+j] }
func (s *CACG) c2At(i, j int) float64 { return s.gbuf[s.nG+(s.k+1)*s.k+i*s.k+j] }

// prepare builds the replayable graphs once: the per-rank column table,
// the Gram block superstep and the fused update.
func (s *CACG) prepare() {
	sub, k := s.sub, s.k
	nc := 3*k + 1
	s.cols = make([][][]float64, len(sub.Ranks))
	for ri, r := range sub.Ranks {
		cs := make([][]float64, nc)
		for j := 0; j <= k; j++ {
			cs[j] = s.v[j].Of(r).Data
		}
		for j := 0; j < k; j++ {
			cs[k+1+j] = s.pd[j].Of(r).Data
			cs[2*k+1+j] = s.apd[j].Of(r).Data
		}
		s.cols[ri] = cs
	}

	pairs := make([][2]int32, 0, s.nG+2*(k+1)*k)
	for i := 0; i <= k; i++ {
		for j := i; j <= k; j++ {
			pairs = append(pairs, [2]int32{int32(i), int32(j)})
		}
	}
	for blk := 0; blk < 2; blk++ { // KᵀP then KᵀAP
		for i := 0; i <= k; i++ {
			for j := 0; j < k; j++ {
				pairs = append(pairs, [2]int32{int32(i), int32((blk+1)*k + 1 + j)})
			}
		}
	}
	s.gbuf = make([]float64, len(pairs))
	s.gram = sub.PrepareRankOpDotBlock("gram", len(pairs), func(r *shard.Rank, p, lo, hi int, out []float64) {
		sparse.PairDotsRange(s.cols[r.ID], pairs, out, lo, hi)
	})

	// The fused update's rr partial is deliberately never summed in the
	// steady state: the recurrence plus the next Gram's exact <r,r> cover
	// the drift check without an extra reduction superstep.
	s.stepU = sub.PrepareRankOpDot("caupd", func(r *shard.Rank, p, lo, hi int) float64 {
		cs := s.cols[r.ID]
		var b []float64
		if s.uHasB {
			b = s.uB
		}
		return sparse.CACGUpdateRange(cs[:k+1], cs[k+1:2*k+1], cs[2*k+1:], b, s.uA,
			s.x.Of(r).Data, s.r.Of(r).Data, lo, hi)
	})
}

// Run executes the solve. It may be called once; the substrate's task
// pool is released on return.
func (s *CACG) Run() (core.Result, []float64, error) {
	defer s.sub.Close()
	s.sub.RT.ResetTimes()
	start := time.Now()
	sub := s.sub
	tol := s.cfg.tol()
	maxIter := s.cfg.maxIter(sub.A.N)
	k := s.k

	if !s.cfg.Barrier {
		s.stepV = make([]*shard.OverlapStep, k)
		for j := 0; j < k; j++ {
			s.stepV[j] = sub.NewOverlapStep(fmt.Sprintf("v%d=Av%d", j+1, j),
				s.v[j], s.v[j+1], nil, false, false)
		}
	}
	s.prepare()

	// x = 0, r = b, γ = <r,r>.
	sub.RankOp("init", func(r *shard.Rank, p, lo, hi int) {
		copy(s.r.Of(r).Data[lo:hi], sub.B[lo:hi])
	})
	s.gamma = sub.Dot("<r,r>", s.r, s.r)
	s.restartPending = true

	m := make([]float64, k)
	u := make([]float64, k)
	wm := make([]float64, k*k)
	zm := make([]float64, k*k)
	rhs := make([]float64, k)

	var it int
	converged := false
	for it = 0; it < maxIter; it += k {
		if s.cfg.Cancelled != nil && s.cfg.Cancelled() {
			res, x := s.finish(it, false, start, s.x)
			return res, x, core.ErrCancelled
		}
		rel := relFromEps(s.gamma, sub.Bnorm)
		if s.cfg.OnIteration != nil {
			s.cfg.OnIteration(it, rel)
		}
		if rel < tol {
			if sub.TrueResidual(s.x) < tol*10 {
				converged = true
				break
			}
			s.restartFromX()
			s.stats.Restarts++
			continue
		}
		s.inject(it)
		if !s.boundary() {
			continue // restart-style recovery consumed the outer step
		}

		// k back-to-back overlapped SpMV supersteps grow the basis off the
		// live residual (v0 ≡ r): each step's halo import runs under its
		// own interior rows, and no reduction separates them.
		for j := 0; j < k; j++ {
			if s.stepV != nil {
				s.stepV[j].Run()
			} else {
				sub.SpMV("v=Av", s.v[j], s.v[j+1])
			}
		}

		// The one reduction superstep of the outer step: G, KᵀP, KᵀAP.
		for i := range s.gbuf {
			s.gbuf[i] = 0
		}
		missing := s.gram.Run(s.gbuf)
		actual := s.gAt(0, 0) // exact <r,r> at basis time, free
		if missing > 0 || isNaN(actual) {
			s.restartFromX()
			s.stats.Restarts++
			continue
		}
		if !s.restartPending {
			// Drift guard: the recurrence γ must match the exact <r,r>.
			if d := math.Abs(actual - s.gamma); d > cacgDriftRel*math.Max(math.Abs(actual), math.Abs(s.gamma)) {
				// Residual replacement: r = b - A x, directions restart.
				// The basis just built came from the drifted r, so the
				// step is abandoned; no reduction superstep is spent.
				sub.ResidualFromX(s.x, s.r)
				s.gamma = actual
				s.restartPending = true
				s.stats.Restarts++
				continue
			}
		}
		s.gamma = actual

		// B: make the new directions A-conjugate to the previous block,
		// column l solving W_prev B_l = -(K_sᵀAP_prev)_l via the carried
		// Cholesky factor. A restart (β = 0) drops the coupling entirely.
		s.uHasB = !s.restartPending && s.wchol != nil
		if s.uHasB {
			for l := 0; l < k; l++ {
				for j := 0; j < k; j++ {
					rhs[j] = -s.c2At(l, j)
				}
				s.wchol.Solve(rhs)
				copy(s.uB[l*k:(l+1)*k], rhs)
			}
		}

		// Coordinator recurrences, all from the one Gram block:
		//   m = Pᵀr,  u = APᵀr,  W = PᵀAP,  Z = APᵀAP
		// with P = K_s + P_prev B and AP = K_shift + AP_prev B.
		for l := 0; l < k; l++ {
			mv := s.gAt(l, 0)
			uv := s.gAt(0, l+1)
			if s.uHasB {
				for j := 0; j < k; j++ {
					mv += s.uB[l*k+j] * s.c1At(0, j)
					uv += s.uB[l*k+j] * s.c2At(0, j)
				}
			}
			m[l], u[l] = mv, uv
		}
		for l := 0; l < k; l++ {
			for t := 0; t < k; t++ {
				wv := s.gAt(l, t+1)
				zv := s.gAt(l+1, t+1)
				if s.uHasB {
					for j := 0; j < k; j++ {
						wv += s.c2At(l, j)*s.uB[t*k+j] + s.uB[l*k+j]*s.c1At(t+1, j)
						zv += s.c2At(l+1, j)*s.uB[t*k+j] + s.uB[l*k+j]*s.c2At(t+1, j)
					}
					for j := 0; j < k; j++ {
						bl := s.uB[l*k+j]
						for q := 0; q < k; q++ {
							wv += bl * s.wp[j*k+q] * s.uB[t*k+q]
							zv += bl * s.zp[j*k+q] * s.uB[t*k+q]
						}
					}
				}
				wm[l*k+t] = wv
				zm[l*k+t] = zv
			}
		}
		// W and Z are symmetric in exact arithmetic; symmetrize so the
		// Cholesky sees one consistent matrix.
		for l := 0; l < k; l++ {
			for t := l + 1; t < k; t++ {
				av := 0.5 * (wm[l*k+t] + wm[t*k+l])
				wm[l*k+t], wm[t*k+l] = av, av
				av = 0.5 * (zm[l*k+t] + zm[t*k+l])
				zm[l*k+t], zm[t*k+l] = av, av
			}
		}

		// a = W⁻¹ m, guarding the factorization: when a pivot of the
		// (monomial-basis) W goes non-positive, truncate to the leading
		// directions that still factor instead of dividing by noise.
		c := k
		var chol *sparse.Cholesky
		for ; c > 0; c-- {
			d := sparse.NewDense(c, c)
			for l := 0; l < c; l++ {
				copy(d.Data[l*c:(l+1)*c], wm[l*k:l*k+c])
			}
			if ch, err := sparse.NewCholesky(d); err == nil {
				chol = ch
				break
			}
		}
		bad := chol == nil
		for l := 0; l < c && !bad; l++ {
			bad = isNaN(m[l])
		}
		if bad {
			s.restartFromX()
			s.stats.Restarts++
			continue
		}
		copy(s.uA[:c], m[:c])
		chol.Solve(s.uA[:c])
		for l := c; l < k; l++ {
			s.uA[l] = 0
		}

		// Residual-norm recurrence: <r',r'> = <r,r> - 2 aᵀu + aᵀZ a.
		rr := actual
		for l := 0; l < k; l++ {
			rr -= 2 * s.uA[l] * u[l]
		}
		for l := 0; l < k; l++ {
			for t := 0; t < k; t++ {
				rr += s.uA[l] * zm[l*k+t] * s.uA[t]
			}
		}

		// One fused pass advances x, r and writes the new P/AP block.
		s.stepU.Run()

		copy(s.wp, wm)
		copy(s.zp, zm)
		if c == k {
			s.wchol = chol
			s.restartPending = false
		} else {
			// Truncated step: the directions kept their full-rank write
			// but conjugacy is suspect; restart them next step.
			s.wchol = nil
			s.restartPending = true
		}
		if isNaN(rr) {
			s.restartFromX()
			s.stats.Restarts++
			continue
		}
		s.gamma = math.Max(rr, 0) // ≤ 0: converged-to-roundoff, let the true-residual check decide
	}

	res, x := s.finish(it, converged, start, s.x)
	return res, x, nil
}

// transients lists the vectors that restart with β = 0 instead of being
// repaired: the basis tail and both direction blocks.
func (s *CACG) transients() []*shard.Vec {
	vs := make([]*shard.Vec, 0, 3*s.k)
	vs = append(vs, s.v[1:]...)
	vs = append(vs, s.pd...)
	vs = append(vs, s.apd...)
	return vs
}

// restartFromX rebuilds the recurrence from the owned iterate shards:
// blank any failed x pages, r = b - A x with the fused <r,r>, directions
// restart with β = 0.
func (s *CACG) restartFromX() {
	blankOwned(s.sub, true, s.x)
	for _, r := range s.sub.Ranks {
		r.Space.ClearAll()
	}
	s.gamma = s.sub.ResidualFromXDot(s.x, s.r)
	s.restartPending = true
	s.wchol = nil
}

// boundary applies pending losses and resolves them per the configured
// method, mirroring CG's discipline. Returns false when a restart
// consumed the outer step.
func (s *CACG) boundary() bool {
	sub := s.sub
	sub.ApplyPending()
	if !sub.AnyFault() {
		return true
	}
	sub.HealGhosts()
	if !sub.OwnedFault() {
		return true
	}
	switch s.cfg.Method {
	case core.MethodFEIR, core.MethodAFEIR:
		if s.exactRecover() {
			return true
		}
		s.restartFromX()
		s.stats.Restarts++
		return false
	case core.MethodLossy:
		if n := sub.LossyInterpolateOwned(s.x); n > 0 {
			s.stats.LossyInterpolations += n
		}
		s.restartFromX()
		s.stats.Restarts++
		return false
	default:
		// Blank-page forward recovery: keep running; the drift guard and
		// the true-residual safety check catch a lying recurrence.
		blankOwned(sub, false, s.x, s.r)
		blankOwned(sub, false, s.transients()...)
		s.restartPending = true
		return true
	}
}

// exactRecover repairs the protected pair (x, r) exactly through the
// g = b - A x relations; the basis and direction blocks are transient —
// they blank and restart with β = 0, so the repair is exact in the CG
// sense (the iterate is untouched by the directions' restart).
func (s *CACG) exactRecover() bool {
	for _, r := range s.sub.Ranks {
		for _, v := range s.transients() {
			for _, p := range v.Of(r).FailedPages() {
				if !r.Owns(p) {
					continue
				}
				v.Of(r).Remap(p)
				v.Of(r).MarkRecovered(p)
			}
		}
	}
	if !recoverXG(s.sub, s.cfg.Method, s.x, s.r) {
		return false
	}
	if s.sub.OwnedFault() {
		return false
	}
	// γ is stale after any repair; one recovery reduction refreshes it,
	// and the directions restart.
	s.gamma = s.sub.Dot("<r,r>", s.r, s.r)
	s.restartPending = true
	s.wchol = nil
	return true
}
