package dist

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/shard"
)

// Storm coverage for the communication-overlapping path: the overlapped
// Exchange/SpMV superstep must be observationally identical to the
// barrier path under fire — same recovery counts, same iteration counts,
// same residuals — including DUEs landed in halo pages and boundary-row
// outputs WHILE the superstep is in flight (via shard.Substrate.TestHook,
// which fires between task submission and the coordinator's wait).

// statsEqual compares the recovery counters that must not depend on the
// superstep discipline.
func statsEqual(a, b core.Stats) bool {
	return a.FaultsSeen == b.FaultsSeen &&
		a.RecoveredInverse == b.RecoveredInverse &&
		a.RecoveredForward == b.RecoveredForward &&
		a.Unrecovered == b.Unrecovered &&
		a.Restarts == b.Restarts
}

// TestCGOverlapMatchesBarrierBitwise: without faults the overlapped CG
// reproduces the barrier CG's residual trace and solution bitwise (same
// kernels, same partial slots, same sum order).
func TestCGOverlapMatchesBarrierBitwise(t *testing.T) {
	a, b := distSystem()
	run := func(barrier bool) ([]float64, []float64, core.Result) {
		cfg := baseCfg(core.MethodFEIR)
		cfg.Barrier = barrier
		var trace []float64
		cfg.OnIteration = func(it int, rel float64) { trace = append(trace, rel) }
		res, x, err := SolveCG(a, b, 4, cfg)
		if err != nil || !res.Converged {
			t.Fatalf("barrier=%v: %+v err=%v", barrier, res, err)
		}
		return trace, x, res
	}
	tB, xB, rB := run(true)
	tO, xO, rO := run(false)
	if rB.Iterations != rO.Iterations {
		t.Fatalf("iterations differ: %d vs %d", rB.Iterations, rO.Iterations)
	}
	for i := range tB {
		if tB[i] != tO[i] {
			t.Fatalf("residual trace diverges at iteration %d: %v vs %v", i, tB[i], tO[i])
		}
	}
	for i := range xB {
		if xB[i] != xO[i] {
			t.Fatalf("solutions diverge at %d: %v vs %v", i, xB[i], xO[i])
		}
	}
}

// TestCGOverlapStormMatchesBarrier: randomized 1–5 DUE campaigns into
// owned pages of x/g/d/q (exercising strict-exchange recovery fixpoints
// and non-strict rebuild healing), FEIR and AFEIR — recovery counts,
// iterations and residuals must match the barrier path exactly.
func TestCGOverlapStormMatchesBarrier(t *testing.T) {
	a, b := distSystem()
	probe, _, err := SolveCG(a, b, 4, baseCfg(core.MethodFEIR))
	if err != nil || !probe.Converged {
		t.Fatalf("fault-free run: %+v err=%v", probe, err)
	}
	window := probe.Iterations * 3 / 4
	if window < 2 {
		t.Fatalf("fault-free run too short for a storm: %+v", probe)
	}
	vectors := []string{"x", "g", "d", "q"}
	for _, method := range []core.Method{core.MethodFEIR, core.MethodAFEIR} {
		for rate := 1; rate <= 5; rate++ {
			seed := int64(7000*int(method) + rate)
			inj := stormSchedule(rand.New(rand.NewSource(seed)), vectors, window, rate)
			run := func(barrier bool) core.Result {
				cfg := baseCfg(method)
				cfg.Barrier = barrier
				cfg.Inject = injectOwned(inj)
				res, _, err := SolveCG(a, b, 4, cfg)
				if err != nil {
					t.Fatalf("%v rate %d barrier=%v: %v", method, rate, barrier, err)
				}
				if !res.Converged || res.RelResidual > 1e-8 {
					t.Fatalf("%v rate %d barrier=%v: %+v", method, rate, barrier, res)
				}
				return res
			}
			rB := run(true)
			rO := run(false)
			if rB.Iterations != rO.Iterations {
				t.Fatalf("%v rate %d: iterations %d vs %d", method, rate, rB.Iterations, rO.Iterations)
			}
			if !statsEqual(rB.Stats, rO.Stats) {
				t.Fatalf("%v rate %d: stats diverge\nbarrier: %+v\noverlap: %+v", method, rate, rB.Stats, rO.Stats)
			}
			if d := math.Abs(rB.RelResidual - rO.RelResidual); d > 1e-12*(1+rB.RelResidual) {
				t.Fatalf("%v rate %d: residuals %v vs %v", method, rate, rB.RelResidual, rO.RelResidual)
			}
			if rO.Stats.FaultsSeen == 0 {
				t.Fatalf("%v rate %d: no faults seen", method, rate)
			}
		}
	}
}

// midFlightInjection lands count DUEs from inside the SpMV superstep
// while its tasks are in flight: alternating between a halo (ghost) page
// of d and a boundary-row output page of q on a rotating rank.
func midFlightInjection(s *CG, count int) *int {
	fires := 0
	seen := 0
	s.sub.TestHook = func(stage string) {
		// One firing per iteration's SpMV superstep, both disciplines.
		if stage != "spmv" && !strings.HasPrefix(stage, "overlap:") {
			return
		}
		fires++
		if fires%4 != 0 || seen >= count {
			return
		}
		var target *shard.Rank
		for _, r := range s.sub.Ranks {
			if r.ID == (fires/4)%len(s.sub.Ranks) && len(r.Halo) > 0 && len(r.Boundary) > 0 {
				target = r
			}
		}
		if target == nil {
			return
		}
		if seen%2 == 0 {
			s.d.Of(target).Poison(target.Halo[0]) // in-flight ghost page
		} else {
			s.q.Of(target).Poison(target.Boundary[0]) // in-flight boundary output
		}
		seen++
	}
	return &seen
}

// TestCGOverlapMidFlightDUEs: DUEs raised while the overlapped
// Exchange/SpMV superstep is in flight — into halo pages of the
// exchanged vector and into boundary-row output pages — must yield
// exactly the barrier path's recovery counts and residuals, for FEIR and
// AFEIR at 1–5 DUEs.
func TestCGOverlapMidFlightDUEs(t *testing.T) {
	a, b := distSystem()
	for _, method := range []core.Method{core.MethodFEIR, core.MethodAFEIR} {
		for count := 1; count <= 5; count++ {
			run := func(barrier bool) core.Result {
				cfg := baseCfg(method)
				cfg.Barrier = barrier
				s, err := NewCG(a, b, 4, cfg)
				if err != nil {
					t.Fatal(err)
				}
				injected := midFlightInjection(s, count)
				res, _, err := s.Run()
				if err != nil {
					t.Fatalf("%v count %d barrier=%v: %v", method, count, barrier, err)
				}
				if !res.Converged || res.RelResidual > 1e-8 {
					t.Fatalf("%v count %d barrier=%v: %+v", method, count, barrier, res)
				}
				if *injected == 0 {
					t.Fatalf("%v count %d barrier=%v: no mid-flight DUE landed", method, count, barrier)
				}
				return res
			}
			rB := run(true)
			rO := run(false)
			if rB.Iterations != rO.Iterations {
				t.Fatalf("%v count %d: iterations %d vs %d", method, count, rB.Iterations, rO.Iterations)
			}
			if !statsEqual(rB.Stats, rO.Stats) {
				t.Fatalf("%v count %d: stats diverge\nbarrier: %+v\noverlap: %+v", method, count, rB.Stats, rO.Stats)
			}
			if rO.Stats.FaultsSeen == 0 {
				t.Fatalf("%v count %d: faults invisible", method, count)
			}
			if d := math.Abs(rB.RelResidual - rO.RelResidual); d > 1e-12*(1+rB.RelResidual) {
				t.Fatalf("%v count %d: residuals %v vs %v", method, count, rB.RelResidual, rO.RelResidual)
			}
		}
	}
}
