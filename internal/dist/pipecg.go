// Pipelined distributed CG (Ghysels & Vanroose): the communication-
// avoiding variant with a SINGLE fused reduction point per iteration,
// whose sum the coordinator performs while the next SpMV's task graph is
// already in flight — the paper's asynchrony (Fig 2b) applied to the
// allreduce itself. The recurrence keeps the auxiliary vectors
//
//	w = A r,  s = A p,  z = A s
//
// so the two inner products γ = <r,r> and δ = <w,r> ride the one fused
// vector-update pass (sparse.PipeCGUpdateRange) and the SpMV q = A w is
// the only communication superstep. Faults are repaired exactly for the
// iterate pair (x, r) through the same Table 1 relations as CG; w is
// rebuilt from its invariant w = A r, and the direction recurrences
// (p, s, z) restart with β = 0 — an exact restart of the direction, not
// of the iterate, mirroring CG's d/q handling.
package dist

import (
	"time"

	"fmt"

	"repro/internal/core"
	"repro/internal/shard"
	"repro/internal/sparse"
)

// PipeCG is the pipelined rank-partitioned CG on the shard substrate.
type PipeCG struct {
	base
	x, r, w, p, sv, z, q *shard.Vec

	gamma, gammaOld float64 // <r,r> current and previous
	delta           float64 // <w,r>
	alphaOld        float64
	restartPending  bool
	haveFused       bool // γ/δ partials await their deferred sum

	stepQ         *shard.OverlapStep    // q = A w, halo overlapped (nil: Barrier)
	stepU         *shard.PreparedRankOp // fused update + γ/δ partials
	updFn         func(r *shard.Rank, p, lo, hi int) (float64, float64)
	uAlpha, uBeta float64
}

// NewPipeCG builds a pipelined distributed CG over the given number of
// ranks. The pipelined recurrence has no checkpoint rollback or
// preconditioned variant.
func NewPipeCG(a *sparse.CSR, rhs []float64, ranks int, cfg Config) (*PipeCG, error) {
	if cfg.Method == core.MethodCheckpoint {
		return nil, fmt.Errorf("dist: pipecg has no checkpoint rollback (use cg)")
	}
	if cfg.UsePrecond {
		return nil, fmt.Errorf("dist: pipecg has no preconditioned variant")
	}
	s := &PipeCG{}
	if err := s.setup(a, rhs, ranks, cfg, true); err != nil {
		return nil, err
	}
	s.x = s.sub.AddVector("x")
	s.r = s.sub.AddVector("g") // residual: named g so shared x/g tooling applies
	s.w = s.sub.AddVector("w")
	s.p = s.sub.AddVector("p")
	s.sv = s.sub.AddVector("s")
	s.z = s.sub.AddVector("z")
	s.q = s.sub.AddVector("q")
	s.track(s.x, s.r, s.w, s.p, s.sv, s.z, s.q)
	return s, nil
}

// SolvePipeCG runs the pipelined distributed CG on A x = b.
func SolvePipeCG(a *sparse.CSR, b []float64, ranks int, cfg Config) (core.Result, []float64, error) {
	s, err := NewPipeCG(a, b, ranks, cfg)
	if err != nil {
		return core.Result{}, nil, err
	}
	return s.Run()
}

// Run executes the solve. It may be called once; the substrate's task
// pool is released on return.
func (s *PipeCG) Run() (core.Result, []float64, error) {
	defer s.sub.Close()
	s.sub.RT.ResetTimes()
	start := time.Now()
	sub := s.sub
	tol := s.cfg.tol()
	maxIter := s.cfg.maxIter(sub.A.N)

	if !s.cfg.Barrier {
		s.stepQ = sub.NewOverlapStep("q=Aw", s.w, s.q, nil, false, false)
	}
	s.updFn = func(r *shard.Rank, p, lo, hi int) (float64, float64) {
		return sparse.PipeCGUpdateRange(s.uAlpha, s.uBeta,
			s.q.Of(r).Data, s.z.Of(r).Data, s.w.Of(r).Data, s.sv.Of(r).Data,
			s.r.Of(r).Data, s.p.Of(r).Data, s.x.Of(r).Data, lo, hi)
	}
	s.stepU = sub.PrepareRankOpDot2("pipeupd", s.updFn)

	// x = 0, r = b, w = A r, γ = <r,r>, δ = <w,r>; p/s/z build with β=0.
	sub.RankOp("init", func(r *shard.Rank, p, lo, hi int) {
		copy(s.r.Of(r).Data[lo:hi], sub.B[lo:hi])
	})
	s.refreshScalars()
	s.restartPending = true

	var it int
	converged := false
	for it = 0; it < maxIter; it++ {
		if s.cfg.Cancelled != nil && s.cfg.Cancelled() {
			res, x := s.finish(it, false, start, s.x)
			return res, x, core.ErrCancelled
		}
		s.inject(it)
		if !s.boundary() {
			continue // restart-style recovery consumed the iteration
		}

		// Issue the q = A w superstep, then sum last iteration's fused
		// γ/δ partials while its halo import and interior rows run — the
		// pipelined allreduce/SpMV overlap. (The convergence test of the
		// pipelined method inherently trails the SpMV issue by design:
		// γ completes under the SpMV it overlaps.)
		if s.stepQ != nil {
			s.stepQ.Start()
		} else {
			sub.SpMV("q=Aw", s.w, s.q)
		}
		if s.haveFused {
			s.gamma, s.delta = s.stepU.Sums2()
			s.haveFused = false
		}
		rel := relFromEps(s.gamma, sub.Bnorm)
		if s.cfg.OnIteration != nil {
			s.cfg.OnIteration(it, rel)
		}
		if rel < tol {
			if s.stepQ != nil {
				s.stepQ.Finish() // drain before gathering/restarting
			}
			if sub.TrueResidual(s.x) < tol*10 {
				converged = true
				break
			}
			s.restartFromX()
			s.stats.Restarts++
			continue
		}

		beta := 0.0
		alpha := 0.0
		if s.restartPending {
			if s.delta != 0 && !isNaN(s.delta) && !isNaN(s.gamma) {
				alpha = s.gamma / s.delta
			}
		} else {
			if s.gammaOld != 0 && !isNaN(s.gamma) {
				beta = s.gamma / s.gammaOld
			}
			den := s.delta - beta*s.gamma/s.alphaOld
			if den != 0 && !isNaN(den) {
				alpha = s.gamma / den
			}
		}
		if alpha == 0 || isNaN(alpha) {
			// Scalar breakdown: rebuild the recurrence from the iterate.
			if s.stepQ != nil {
				s.stepQ.Finish()
			}
			s.restartFromX()
			s.stats.Restarts++
			continue
		}
		if s.stepQ != nil {
			s.stepQ.Finish()
		}

		// One fused pass: z/s/p recurrences, x/r/w updates, γ/δ partials.
		// The sums are deferred to the next iteration's SpMV window.
		s.uAlpha, s.uBeta = alpha, beta
		s.stepU.Run()
		s.haveFused = true
		s.gammaOld, s.alphaOld = s.gamma, alpha
		s.restartPending = false
	}

	res, x := s.finish(it, converged, start, s.x)
	return res, x, nil
}

// refreshScalars recomputes γ and δ from the vectors (init and recovery;
// the steady state carries them as fused update partials instead).
func (s *PipeCG) refreshScalars() {
	s.sub.SpMV("w=Ar", s.r, s.w)
	s.gamma = s.sub.Dot("<r,r>", s.r, s.r)
	s.delta = s.sub.Dot("<w,r>", s.w, s.r)
	s.haveFused = false
}

// restartFromX rebuilds the whole recurrence from the owned iterate
// shards: blank any failed x pages, r = b - A x, w = A r, directions
// restart with β = 0.
func (s *PipeCG) restartFromX() {
	blankOwned(s.sub, true, s.x)
	for _, r := range s.sub.Ranks {
		r.Space.ClearAll()
	}
	s.sub.ResidualFromX(s.x, s.r)
	s.refreshScalars()
	s.restartPending = true
}

// boundary applies pending losses and resolves them per the configured
// method, mirroring CG's discipline. Returns false when a restart
// consumed the iteration.
func (s *PipeCG) boundary() bool {
	sub := s.sub
	sub.ApplyPending()
	if !sub.AnyFault() {
		return true
	}
	sub.HealGhosts()
	if !sub.OwnedFault() {
		return true
	}
	switch s.cfg.Method {
	case core.MethodFEIR, core.MethodAFEIR:
		if s.exactRecover() {
			return true
		}
		s.restartFromX()
		s.stats.Restarts++
		return false
	case core.MethodLossy:
		if n := sub.LossyInterpolateOwned(s.x); n > 0 {
			s.stats.LossyInterpolations += n
		}
		s.restartFromX()
		s.stats.Restarts++
		return false
	default:
		// Blank-page forward recovery: keep running; the true-residual
		// safety check catches a lying recurrence, as in CG.
		blankOwned(sub, false, s.x, s.r, s.w, s.p, s.sv, s.z, s.q)
		return true
	}
}

// exactRecover repairs the iterate pair (x, r) exactly through the
// g = b - A x relations, rebuilds w from its invariant w = A r, and
// restarts the direction recurrences (p, s, z — and the transient q)
// with β = 0. The iterate is untouched by the directions' restart, so
// the repair is exact in the CG sense.
func (s *PipeCG) exactRecover() bool {
	for _, r := range s.sub.Ranks {
		for _, v := range []*shard.Vec{s.p, s.sv, s.z, s.q} {
			for _, p := range v.Of(r).FailedPages() {
				if !r.Owns(p) {
					continue
				}
				v.Of(r).Remap(p)
				v.Of(r).MarkRecovered(p)
			}
		}
	}
	if !recoverXG(s.sub, s.cfg.Method, s.x, s.r) {
		return false
	}
	// Damaged w pages count as forward repairs: refreshScalars below
	// rebuilds the whole w = A r invariant from the recovered r.
	for _, r := range s.sub.Ranks {
		for _, p := range r.OwnedFailed(s.w) {
			s.w.Of(r).Remap(p)
			s.w.Of(r).MarkRecovered(p)
			r.Stats.RecoveredForward++
		}
	}
	if s.sub.OwnedFault() {
		return false
	}
	// γ/δ are stale after any repair; rebuild w = A r and the scalars,
	// and restart the directions.
	s.refreshScalars()
	s.restartPending = true
	return true
}
