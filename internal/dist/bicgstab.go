package dist

import (
	"fmt"

	"time"

	"repro/internal/core"
	"repro/internal/shard"
	"repro/internal/sparse"
)

// BiCGStab is the rank-partitioned resilient BiCGStab on the shard
// substrate (Listing 3 over §3.4's layout). The shadow residual r̂0 lives
// in reliable coordinator memory (§2.1); s, t and q are regenerated every
// iteration, so their losses heal by overwrite; x and g repair exactly
// through the conserved g = b - A x pair (LU diagonal blocks: A may be
// non-SPD), each inverse needing only the rank's halo. A loss in the
// carried direction d falls back to an exact restart from the repaired
// iterate — the BSP supersteps keep no old-q pairing to invert, unlike
// the double-buffered single-node solver.
// With Config.UsePrecond it runs the preconditioned BiCGStab (Listing 6):
// d̂ = M⁻¹ d and ŝ = M⁻¹ s are produced rank-locally (block diagonality,
// no halo), the matvecs become q = A d̂ / t = A ŝ and the update
// x += α d̂ + ω ŝ; g remains the true residual, so the x/g recovery
// relations are untouched, and d̂/ŝ — like s, t and q — are regenerated
// every iteration, healing by overwrite.
type BiCGStab struct {
	base
	x, g, d, q, s, t *shard.Vec
	dhat, shat       *shard.Vec // preconditioned directions (UsePrecond)
	rhat             []float64  // reliable constant memory

	rho   float64
	epsGG float64
}

// NewBiCGStab builds a distributed BiCGStab over the given number of
// ranks. MethodCheckpoint is not supported (no snapshot protocol for the
// non-symmetric recurrence); every other method applies.
func NewBiCGStab(a *sparse.CSR, rhs []float64, ranks int, cfg Config) (*BiCGStab, error) {
	if cfg.Method == core.MethodCheckpoint {
		return nil, fmt.Errorf("dist: BiCGStab does not support %v", cfg.Method)
	}
	s := &BiCGStab{}
	if err := s.setup(a, rhs, ranks, cfg, false); err != nil {
		return nil, err
	}
	s.x = s.sub.AddVector("x")
	s.g = s.sub.AddVector("g")
	s.d = s.sub.AddVector("d")
	s.q = s.sub.AddVector("q")
	s.s = s.sub.AddVector("s")
	s.t = s.sub.AddVector("t")
	s.rhat = make([]float64, a.N)
	s.track(s.x, s.g, s.d, s.q, s.s, s.t)
	if cfg.UsePrecond {
		s.dhat = s.sub.AddVector("dh")
		s.shat = s.sub.AddVector("sh")
		s.track(s.dhat, s.shat)
	}
	return s, nil
}

// SolveBiCGStab runs a rank-partitioned resilient BiCGStab on A x = b.
func SolveBiCGStab(a *sparse.CSR, b []float64, ranks int, cfg Config) (core.Result, []float64, error) {
	s, err := NewBiCGStab(a, b, ranks, cfg)
	if err != nil {
		return core.Result{}, nil, err
	}
	return s.Run()
}

// Run executes the solve. It may be called once; the substrate's task
// pool is released on return.
func (s *BiCGStab) Run() (core.Result, []float64, error) {
	defer s.sub.Close()
	s.sub.RT.ResetTimes() // exclude construction-to-launch idle from Table 3
	start := time.Now()
	sub := s.sub
	tol := s.cfg.tol()
	maxIter := s.cfg.maxIter(sub.A.N)

	// x = 0: g = r̂0 = d = b.
	sub.RankOp("init", func(r *shard.Rank, p, lo, hi int) {
		copy(s.g.Of(r).Data[lo:hi], sub.B[lo:hi])
		copy(s.d.Of(r).Data[lo:hi], sub.B[lo:hi])
	})
	copy(s.rhat, sub.B)
	s.rho = sub.DotReliable("<g,r>", s.g, s.rhat)
	s.epsGG = s.rho // r̂0 = g

	var it int
	converged := false
	for it = 0; it < maxIter; it++ {
		if s.cfg.Cancelled != nil && s.cfg.Cancelled() {
			res, x := s.finish(it, false, start, s.x)
			return res, x, core.ErrCancelled
		}
		s.applyPolicy(it)
		rel := relFromEps(s.epsGG, sub.Bnorm)
		if s.cfg.OnIteration != nil {
			s.cfg.OnIteration(it, rel)
		}
		if rel < tol {
			if sub.TrueResidual(s.x) < tol*10 {
				converged = true
				break
			}
			s.restartFromX()
			s.stats.Restarts++
			continue
		}
		s.inject(it)
		if !s.boundary() {
			continue
		}

		// Phase 1: [d̂ = M⁻¹d,] q = A d̂ (halo exchange inside) fused with
		// the <q, r̂> reduction.
		qSrc := s.d
		if s.dhat != nil {
			sub.ApplyPrecondOwned("dh", s.d, s.dhat)
			qSrc = s.dhat
		}
		qr := sub.SpMVDotReliable("q,<q,r>", qSrc, s.q, s.rhat)
		if qr == 0 || isNaN(qr) || isNaN(s.rho) {
			if !sub.AnyFault() {
				res, x := s.finish(it, converged, start, s.x)
				return res, x, core.ErrRecurrenceBreakdown
			}
			s.restartFromX()
			s.stats.Restarts++
			continue
		}
		alpha := s.rho / qr

		// Phase 2: s = g - α q, [ŝ = M⁻¹s,] t = A ŝ, <t,t>, <t,s>.
		sub.RankOp("s", func(r *shard.Rank, p, lo, hi int) {
			sparse.XpbyOutRange(s.g.Of(r).Data, -alpha, s.q.Of(r).Data, s.s.Of(r).Data, lo, hi)
		})
		// t = A ŝ fused with <t,t> (and, unpreconditioned, <t,s>: the SpMV
		// input IS s there, so both reductions ride the same pass).
		tSrc := s.s
		var tt, ts float64
		if s.shat != nil {
			sub.ApplyPrecondOwned("sh", s.s, s.shat)
			tSrc = s.shat
			tt = sub.SpMVNorm("t,<t,t>", tSrc, s.t)
			ts = sub.Dot("<t,s>", s.t, s.s)
		} else {
			ts, tt = sub.SpMVDot2("t,<t,s>,<t,t>", s.s, s.t)
		}
		if tt == 0 {
			if isNaN(ts) || sub.AnyFault() {
				s.restartFromX()
				s.stats.Restarts++
				continue
			}
			// Lucky breakdown: s is already the residual of the updated x.
			sub.RankOp("x", func(r *shard.Rank, p, lo, hi int) {
				sparse.AxpyRange(alpha, qSrc.Of(r).Data, s.x.Of(r).Data, lo, hi)
				copy(s.g.Of(r).Data[lo:hi], s.s.Of(r).Data[lo:hi])
			})
			it++
			converged = sub.TrueResidual(s.x) < tol*10
			break
		}
		omega := ts / tt

		// Phase 3: x += α d̂ + ω ŝ ; g = s - ω t fused with <g,r̂> and <g,g>
		// in the same pass over the updated g.
		rhoNew, gg := sub.RankOpDot2("xg,<g,r>,<g,g>", func(r *shard.Rank, p, lo, hi int) (float64, float64) {
			sparse.Axpy2Range(alpha, qSrc.Of(r).Data, omega, tSrc.Of(r).Data, s.x.Of(r).Data, lo, hi)
			return sparse.XpbyDotNormRange(s.s.Of(r).Data, -omega, s.t.Of(r).Data, s.g.Of(r).Data, s.rhat, lo, hi)
		})
		s.epsGG = gg
		// rhoNew == 0 is a breakdown too (a zero ρ carried forward stalls
		// the next α) — unless the residual already converged.
		if core.RhoBoundaryBreakdown(s.rho, omega, rhoNew, gg, sub.Bnorm, tol) {
			if !sub.AnyFault() {
				res, x := s.finish(it, converged, start, s.x)
				return res, x, core.ErrRecurrenceBreakdown
			}
			s.restartFromX()
			s.stats.Restarts++
			continue
		}
		beta := rhoNew / s.rho * alpha / omega

		// Phase 4: d = g + β (d - ω q).
		sub.RankOp("d", func(r *shard.Rank, p, lo, hi int) {
			sparse.XpbyzOutRange(s.g.Of(r).Data, beta, s.d.Of(r).Data, omega, s.q.Of(r).Data, s.d.Of(r).Data, lo, hi)
		})
		s.rho = rhoNew
	}

	res, x := s.finish(it, converged, start, s.x)
	return res, x, nil
}

// restartFromX rebuilds the whole recurrence from the owned iterate
// shards: blank any failed x pages, g = b - A x, r̂0 = g, d = g,
// ρ = <g,g>.
func (s *BiCGStab) restartFromX() {
	blankOwned(s.sub, true, s.x)
	for _, r := range s.sub.Ranks {
		r.Space.ClearAll()
	}
	s.sub.ResidualFromX(s.x, s.g)
	s.sub.Gather(s.g, s.rhat)
	s.sub.RankOp("d=g", func(r *shard.Rank, p, lo, hi int) {
		copy(s.d.Of(r).Data[lo:hi], s.g.Of(r).Data[lo:hi])
	})
	s.rho = s.sub.DotReliable("<g,r>", s.g, s.rhat)
	s.epsGG = s.rho
}

// boundary applies pending losses and resolves them per the method.
// Returns false when a restart consumed the iteration.
func (s *BiCGStab) boundary() bool {
	sub := s.sub
	sub.ApplyPending()
	if !sub.AnyFault() {
		return true
	}
	sub.HealGhosts()
	if !sub.OwnedFault() {
		return true
	}
	switch s.cfg.Method {
	case core.MethodFEIR, core.MethodAFEIR:
		// q, s and t (and d̂/ŝ) are regenerated every iteration: heal by
		// overwrite.
		blankOwned(sub, false, s.q, s.s, s.t)
		if s.dhat != nil {
			blankOwned(sub, false, s.dhat, s.shat)
		}
		dDamaged := false
		for _, r := range sub.Ranks {
			if len(r.OwnedFailed(s.d)) > 0 {
				dDamaged = true
				break
			}
		}
		if recoverXG(sub, s.cfg.Method, s.x, s.g) && !dDamaged {
			return true
		}
		// The carried direction (or related x/g data) is gone: exact
		// restart from the repaired iterate.
		s.restartFromX()
		s.stats.Restarts++
		return false
	case core.MethodLossy:
		if n := sub.LossyInterpolateOwned(s.x); n > 0 {
			s.stats.LossyInterpolations += n
		}
		s.restartFromX()
		s.stats.Restarts++
		return false
	default:
		blankOwned(sub, false, s.x, s.g, s.d, s.q, s.s, s.t)
		if s.dhat != nil {
			blankOwned(sub, false, s.dhat, s.shat)
		}
		return true
	}
}
