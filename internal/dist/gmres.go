package dist

import (
	"fmt"
	"math"
	"time"

	"repro/internal/core"
	"repro/internal/shard"
	"repro/internal/sparse"
)

// GMRES is the rank-partitioned resilient restarted GMRES(m) on the
// shard substrate (Listing 4 over §3.4's layout). Every Arnoldi step is a
// superstep: exchange the newest basis vector's halo, SpMV on owned
// rows, then modified Gram–Schmidt with Partial-backed allreduces. The
// basis is recoverable from the pristine Hessenberg copy
//
//	v_l = (A v_{l-1} - Σ_{k<l} h_{k,l-1} v_k) / h_{l,l-1}
//
// where the only non-local read, A v_{l-1} on the lost page, needs
// exactly the halo the substrate already tracks — so basis repair, like
// the x/g relations, stays rank-local plus one exchange. Damage no
// relation can repair aborts the cycle: lost pages are blanked and the
// next cycle rebuilds the basis from the (repaired or degraded) iterate.
//
// With Config.UsePrecond it runs left-preconditioned GMRES on
// M⁻¹ A x = M⁻¹ b: the protected preconditioned residual z = M⁻¹ g
// starts each cycle, every Arnoldi step applies the block-diagonal M⁻¹ to
// the SpMV scratch rank-locally, and the Hessenberg rebuild gains a
// per-page partial application — preconditioning adds no halo traffic,
// and convergence is still declared on the true residual.
type GMRES struct {
	base
	x, g *shard.Vec
	z    *shard.Vec // preconditioned residual (UsePrecond), else nil
	v    []*shard.Vec
	w    [][]float64   // per-rank unprotected step scratch
	h    *sparse.Dense // working copy, Givens-rotated
	hCpy *sparse.Dense // pristine H, the redundancy store (reliable)

	zeta float64
	// gCurrent reports whether g still equals b - A x: true from
	// ResidualFromX until the end-of-cycle x update. The x/g relations
	// only apply while it holds; afterwards a lost x page is exactly
	// unrecoverable (the old iterate is gone) and is blanked instead.
	gCurrent bool
}

// NewGMRES builds a distributed GMRES(m) over the given number of ranks.
// MethodCheckpoint is not supported; every other method applies.
func NewGMRES(a *sparse.CSR, rhs []float64, ranks int, cfg Config) (*GMRES, error) {
	if cfg.Method == core.MethodCheckpoint {
		return nil, fmt.Errorf("dist: GMRES does not support %v", cfg.Method)
	}
	s := &GMRES{}
	if err := s.setup(a, rhs, ranks, cfg, false); err != nil {
		return nil, err
	}
	m := cfg.restart()
	s.x = s.sub.AddVector("x")
	s.g = s.sub.AddVector("g")
	s.v = make([]*shard.Vec, m+1)
	for i := range s.v {
		s.v[i] = s.sub.AddVector(fmt.Sprintf("v%d", i))
	}
	s.w = make([][]float64, len(s.sub.Ranks))
	for i := range s.w {
		s.w[i] = make([]float64, a.N)
	}
	s.h = sparse.NewDense(m+1, m)
	s.hCpy = sparse.NewDense(m+1, m)
	s.track(s.x, s.g)
	if cfg.UsePrecond {
		s.z = s.sub.AddVector("z")
		s.track(s.z)
	}
	s.track(s.v...)
	return s, nil
}

// SolveGMRES runs a rank-partitioned resilient GMRES(m) on A x = b.
func SolveGMRES(a *sparse.CSR, b []float64, ranks int, cfg Config) (core.Result, []float64, error) {
	s, err := NewGMRES(a, b, ranks, cfg)
	if err != nil {
		return core.Result{}, nil, err
	}
	return s.Run()
}

// Run executes the solve. It may be called once; the substrate's task
// pool is released on return.
func (s *GMRES) Run() (core.Result, []float64, error) {
	defer s.sub.Close()
	s.sub.RT.ResetTimes() // exclude construction-to-launch idle from Table 3
	start := time.Now()
	sub := s.sub
	tol := s.cfg.tol()
	maxIter := s.cfg.maxIter(sub.A.N)
	m := s.cfg.restart()

	cs := make([]float64, m)
	sn := make([]float64, m)
	res := make([]float64, m+1)
	y := make([]float64, m)

	totalIt := 0
	converged := false
	for totalIt < maxIter {
		if s.cfg.Cancelled != nil && s.cfg.Cancelled() {
			result, x := s.finish(totalIt, false, start, s.x)
			return result, x, core.ErrCancelled
		}
		s.boundary(-1) // cycle start: no live basis yet
		// Fused residual rebuild: <g,g> rides the g = b - A x pass.
		gg := sub.ResidualFromXDot(s.x, s.g)
		s.gCurrent = true
		trueRel := math.Sqrt(math.Max(gg, 0)) / sub.Bnorm
		if s.cfg.OnIteration != nil {
			s.cfg.OnIteration(totalIt, trueRel)
		}
		if trueRel < tol {
			converged = true
			break
		}
		// The Arnoldi start vector: g, or the preconditioned residual
		// z = M⁻¹ g (rank-local full overwrite, so the rebuild heals z).
		src := s.g
		if s.z != nil {
			sub.ApplyPrecondOwned("z", s.g, s.z)
			src = s.z
			s.zeta = math.Sqrt(math.Max(sub.Dot("<z,z>", s.z, s.z), 0))
		} else {
			s.zeta = math.Sqrt(gg)
		}
		zeta := s.zeta
		sub.RankOp("v0", func(r *shard.Rank, p, lo, hi int) {
			gd := src.Of(r).Data
			vd := s.v[0].Of(r).Data
			for i := lo; i < hi; i++ {
				vd[i] = gd[i] / zeta
			}
		})
		for i := range res {
			res[i] = 0
		}
		res[0] = s.zeta

		steps := 0
		aborted := false
		for l := 0; l < m && totalIt < maxIter; l++ {
			s.applyPolicy(totalIt)
			s.inject(totalIt)
			if !s.boundary(l) { // Arnoldi-step boundary: repair before use
				aborted = true
				break
			}
			// w = A v_l on owned rows, after a halo exchange of v_l;
			// preconditioned, w = M⁻¹ A v_l with the block-diagonal M⁻¹
			// applied rank-locally in place.
			sub.Exchange(s.v[l], false)
			sub.RankOp("w", func(r *shard.Rank, p, lo, hi int) {
				sub.A.MulVecRange(s.v[l].Of(r).Data, s.w[r.ID], lo, hi)
				if s.z != nil {
					_ = sub.Pre.ApplyBlock(p, s.w[r.ID], s.w[r.ID])
				}
			})
			// Modified Gram-Schmidt: each h_{k,l} is a Partial-backed
			// allreduce followed by an owned-range axpy; the LAST axpy is
			// fused with the normalisation norm <w,w>, saving one pass.
			var wn2 float64
			for k := 0; k <= l; k++ {
				hk := sub.DotMixed("<w,v>", s.w, s.v[k])
				s.h.Set(k, l, hk)
				s.hCpy.Set(k, l, hk) // redundancy store
				if k == l {
					wn2 = sub.RankOpDot("w-hv,<w,w>", func(r *shard.Rank, p, lo, hi int) float64 {
						return sparse.AxpyDotRange(-hk, s.v[k].Of(r).Data, s.w[r.ID], lo, hi)
					})
				} else {
					sub.RankOp("w-hv", func(r *shard.Rank, p, lo, hi int) {
						sparse.AxpyRange(-hk, s.v[k].Of(r).Data, s.w[r.ID], lo, hi)
					})
				}
			}
			wn := math.Sqrt(math.Max(wn2, 0))
			s.h.Set(l+1, l, wn)
			s.hCpy.Set(l+1, l, wn)
			steps = l + 1
			totalIt++
			if wn != 0 {
				sub.RankOp("v+", func(r *shard.Rank, p, lo, hi int) {
					vd := s.v[l+1].Of(r).Data
					for i := lo; i < hi; i++ {
						vd[i] = s.w[r.ID][i] / wn
					}
				})
			}
			for k := 0; k < l; k++ {
				hkl, hk1l := s.h.At(k, l), s.h.At(k+1, l)
				s.h.Set(k, l, cs[k]*hkl+sn[k]*hk1l)
				s.h.Set(k+1, l, -sn[k]*hkl+cs[k]*hk1l)
			}
			hll, hl1l := s.h.At(l, l), s.h.At(l+1, l)
			rr := math.Hypot(hll, hl1l)
			if rr == 0 {
				cs[l], sn[l] = 1, 0
			} else {
				cs[l], sn[l] = hll/rr, hl1l/rr
			}
			s.h.Set(l, l, rr)
			s.h.Set(l+1, l, 0)
			res[l+1] = -sn[l] * res[l]
			res[l] = cs[l] * res[l]
			if s.cfg.OnIteration != nil {
				s.cfg.OnIteration(totalIt, math.Abs(res[l+1])/sub.Bnorm)
			}
			if math.Abs(res[l+1])/s.zeta < tol/10 || wn == 0 {
				break
			}
		}
		if aborted {
			// The cycle's basis is compromised: restart it from the
			// (repaired or blanked) iterate without applying the update.
			// The aborted step still consumes an iteration so the solve
			// makes forward progress (and iteration-keyed injection hooks
			// don't re-fire at a frozen count).
			s.stats.Restarts++
			totalIt++
			continue
		}
		if !s.boundary(steps) {
			s.stats.Restarts++
			totalIt++
			continue
		}
		// y = R⁻¹ (rotated rhs); x += Σ y_l v_l.
		breakdown := false
		for i := steps - 1; i >= 0; i-- {
			sum := res[i]
			for j := i + 1; j < steps; j++ {
				sum -= s.h.At(i, j) * y[j]
			}
			d := s.h.At(i, i)
			if d == 0 {
				breakdown = true
				break
			}
			y[i] = sum / d
		}
		if breakdown {
			result, x := s.finish(totalIt, converged, start, s.x)
			return result, x, core.ErrRecurrenceBreakdown
		}
		sub.RankOp("x+", func(r *shard.Rank, p, lo, hi int) {
			xd := s.x.Of(r).Data
			for l := 0; l < steps; l++ {
				sparse.AxpyRange(y[l], s.v[l].Of(r).Data, xd, lo, hi)
			}
		})
		s.gCurrent = false
	}

	result, x := s.finish(totalIt, converged, start, s.x)
	return result, x, nil
}

// boundary applies pending losses with all workers quiescent and resolves
// every failed page before the next step reads it: exact repairs for
// FEIR/AFEIR, iterate interpolation for Lossy, blank pages otherwise.
// steps is the number of live basis vectors minus one (-1 at cycle start:
// nothing live but x). Returns false when the cycle must be aborted.
func (s *GMRES) boundary(steps int) bool {
	sub := s.sub
	sub.ApplyPending()
	if !sub.AnyFault() {
		return true
	}
	sub.HealGhosts()
	if !sub.OwnedFault() {
		return true
	}
	switch s.cfg.Method {
	case core.MethodFEIR, core.MethodAFEIR:
		s.repair(steps)
	case core.MethodLossy:
		if n := sub.LossyInterpolateOwned(s.x); n > 0 {
			s.stats.LossyInterpolations += n
		}
	}
	// Unused basis slots will be overwritten before any read: blank them
	// (at cycle start, steps is -1 and that is the whole basis).
	for l := steps + 1; l < len(s.v); l++ {
		blankOwned(sub, false, s.v[l])
	}
	if !sub.OwnedFault() {
		return true
	}
	// Unrecoverable related data: blank it and abort the cycle (the next
	// cycle rebuilds the basis from x anyway).
	vs := []*shard.Vec{s.x, s.g}
	if s.z != nil {
		vs = append(vs, s.z)
	}
	blankOwned(sub, true, append(vs, s.v...)...)
	return false
}

// repair runs the §3.1.3 relations to a fixpoint across ranks: the x/g
// pair, v_0 = g/ζ, and the Hessenberg redundancy for v_1..v_steps, each
// basis rebuild importing the one v_{l-1} halo it needs.
func (s *GMRES) repair(steps int) {
	sub := s.sub
	if s.gCurrent {
		recoverXG(sub, s.cfg.Method, s.x, s.g)
		if s.z != nil {
			// z = M⁻¹ g by rank-local partial application (§3.2).
			sub.RecoverPrecondOwned(s.cfg.Method, "z", s.z, s.g)
		}
	} else {
		// g is stale (x was updated since the last residual rebuild): a
		// lost x page has no relation left and is blanked; the stale g
		// (and z) is about to be overwritten anyway.
		blankOwned(sub, true, s.x)
		blankOwned(sub, false, s.g)
		if s.z != nil {
			blankOwned(sub, false, s.z)
		}
	}
	// v_0 = z/ζ preconditioned, g/ζ otherwise.
	v0src := s.g
	if s.z != nil {
		v0src = s.z
	}
	if steps >= 0 && s.zeta != 0 {
		zeta := s.zeta
		sub.Recover(s.cfg.Method, "v0", func(r *shard.Rank) {
			for _, p := range r.OwnedFailed(s.v[0]) {
				if v0src.Of(r).Failed(p) {
					continue
				}
				lo, hi := sub.Layout.Range(p)
				gd := v0src.Of(r).Data
				vd := s.v[0].Of(r).Data
				for i := lo; i < hi; i++ {
					vd[i] = gd[i] / zeta
				}
				s.v[0].Of(r).MarkRecovered(p)
				r.Stats.RecoveredForward++
			}
		})
	}
	for l := 1; l <= steps; l++ {
		vl := s.v[l]
		damaged := false
		for _, r := range sub.Ranks {
			if len(r.OwnedFailed(vl)) > 0 {
				damaged = true
				break
			}
		}
		if !damaged {
			continue
		}
		hll := s.hCpy.At(l, l-1)
		if hll == 0 {
			continue
		}
		l := l
		// A fresh strict exchange of v_{l-1}: its halo may postdate the
		// damage, and a failed owner page must veto the rebuild.
		sub.Exchange(s.v[l-1], true)
		sub.Recover(s.cfg.Method, fmt.Sprintf("v%d", l), func(r *shard.Rank) {
			prev := s.v[l-1].Of(r)
			for _, p := range r.OwnedFailed(vl) {
				if prev.AnyFailedInPages(sub.Conn[p]) {
					continue
				}
				bad := false
				for k := 0; k < l; k++ {
					if s.v[k].Of(r).Failed(p) {
						bad = true
						break
					}
				}
				if bad {
					continue
				}
				lo, hi := sub.Layout.Range(p)
				buf := make([]float64, hi-lo)
				sub.A.MulVecRangeExcludingCols(prev.Data, buf, lo, hi, 0, 0)
				if s.z != nil {
					// Left preconditioning: the Arnoldi operator is
					// M⁻¹ A; the rebuilt rows get the rank-local
					// partial application too.
					if sub.Pre.SolveBlockInPlace(p, buf) != nil {
						continue
					}
					r.Stats.PrecondPartialApplies++
				}
				for k := 0; k < l; k++ {
					hk := s.hCpy.At(k, l-1)
					if hk == 0 {
						continue
					}
					vk := s.v[k].Of(r).Data
					for i := lo; i < hi; i++ {
						buf[i-lo] -= hk * vk[i]
					}
				}
				vd := vl.Of(r).Data
				for i := lo; i < hi; i++ {
					vd[i] = buf[i-lo] / hll
				}
				vl.Of(r).MarkRecovered(p)
				r.Stats.RecoveredForward++
			}
		})
	}
	sub.HealGhosts()
}
