package dist

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/matgen"
	"repro/internal/sparse"
)

func precondCfg(m core.Method) Config {
	cfg := baseCfg(m)
	cfg.UsePrecond = true
	return cfg
}

// spdDist builds an SPD system with cross-page coupling for the
// preconditioned distributed CG.
func spdDist() (*sparse.CSR, []float64) {
	a := matgen.Poisson2D(32, 32)
	return a, matgen.Ones(a.N)
}

// TestDistPrecondFewerIterations pins the distributed -precond contract
// for all three solvers: preconditioned runs converge in strictly fewer
// iterations than unpreconditioned ones on the same shards.
func TestDistPrecondFewerIterations(t *testing.T) {
	type launch func(precond bool) (core.Result, error)
	aSPD, bSPD := spdDist()
	aG, bG := asymmetricDist(1000)
	cases := []struct {
		name string
		run  launch
	}{
		{"cg", func(precond bool) (core.Result, error) {
			cfg := baseCfg(core.MethodFEIR)
			cfg.UsePrecond = precond
			res, _, err := SolveCG(aSPD, bSPD, 4, cfg)
			return res, err
		}},
		{"bicgstab", func(precond bool) (core.Result, error) {
			cfg := baseCfg(core.MethodFEIR)
			cfg.UsePrecond = precond
			res, _, err := SolveBiCGStab(aG, bG, 4, cfg)
			return res, err
		}},
		{"gmres", func(precond bool) (core.Result, error) {
			cfg := baseCfg(core.MethodFEIR)
			cfg.UsePrecond = precond
			cfg.Restart = 20
			res, _, err := SolveGMRES(aG, bG, 4, cfg)
			return res, err
		}},
	}
	for _, c := range cases {
		iters := map[bool]int{}
		for _, precond := range []bool{false, true} {
			res, err := c.run(precond)
			if err != nil {
				t.Fatalf("%s precond=%v: %v", c.name, precond, err)
			}
			if !res.Converged {
				t.Fatalf("%s precond=%v: not converged: %+v", c.name, precond, res)
			}
			if res.RelResidual > 1e-8 {
				t.Fatalf("%s precond=%v: residual %v", c.name, precond, res.RelResidual)
			}
			iters[precond] = res.Iterations
		}
		if iters[true] >= iters[false] {
			t.Fatalf("%s: preconditioned run not faster (%d vs %d iterations)", c.name, iters[true], iters[false])
		}
	}
}

// TestDistStormPrecondCG storms the preconditioned distributed CG across
// every protected vector, including the preconditioned residual z.
func TestDistStormPrecondCG(t *testing.T) {
	a, b := spdDist()
	base, _, err := SolveCG(a, b, 4, precondCfg(core.MethodFEIR))
	if err != nil || !base.Converged {
		t.Fatalf("fault-free run: %+v err=%v", base, err)
	}
	window := base.Iterations * 3 / 4
	if window < 2 {
		t.Fatalf("fault-free run too short for a storm: %+v", base)
	}
	vectors := []string{"x", "g", "d", "q", "z"}
	for _, method := range []core.Method{core.MethodFEIR, core.MethodAFEIR} {
		for rate := 1; rate <= 5; rate++ {
			seed := int64(3000*int(method) + rate)
			rng := rand.New(rand.NewSource(seed))
			cfg := precondCfg(method)
			cfg.Inject = injectOwned(stormSchedule(rng, vectors, window, rate))
			res, _, err := SolveCG(a, b, 4, cfg)
			if err != nil {
				t.Fatalf("%v rate %d: %v", method, rate, err)
			}
			if !res.Converged {
				t.Fatalf("%v rate %d: not converged: %+v", method, rate, res)
			}
			if res.RelResidual > 1e-8 {
				t.Fatalf("%v rate %d: true residual %v", method, rate, res.RelResidual)
			}
			if res.Stats.FaultsSeen == 0 {
				t.Fatalf("%v rate %d: no faults seen", method, rate)
			}
		}
	}
}

// TestDistStormPrecondBiCGStab storms the preconditioned distributed
// BiCGStab, covering d̂/ŝ alongside the carried vectors.
func TestDistStormPrecondBiCGStab(t *testing.T) {
	a, b := asymmetricDist(1000)
	base, _, err := SolveBiCGStab(a, b, 4, precondCfg(core.MethodFEIR))
	if err != nil || !base.Converged {
		t.Fatalf("fault-free run: %+v err=%v", base, err)
	}
	window := base.Iterations * 3 / 4
	if window < 2 {
		t.Fatalf("fault-free run too short for a storm: %+v", base)
	}
	vectors := []string{"x", "g", "d", "q", "s", "t", "dh", "sh"}
	for _, method := range []core.Method{core.MethodFEIR, core.MethodAFEIR} {
		for rate := 1; rate <= 5; rate++ {
			seed := int64(4000*int(method) + rate)
			rng := rand.New(rand.NewSource(seed))
			cfg := precondCfg(method)
			cfg.Inject = injectOwned(stormSchedule(rng, vectors, window, rate))
			res, _, err := SolveBiCGStab(a, b, 4, cfg)
			if err != nil {
				t.Fatalf("%v rate %d: %v", method, rate, err)
			}
			if !res.Converged {
				t.Fatalf("%v rate %d: not converged: %+v", method, rate, res)
			}
			if res.RelResidual > 1e-8 {
				t.Fatalf("%v rate %d: true residual %v", method, rate, res.RelResidual)
			}
			if res.Stats.FaultsSeen == 0 {
				t.Fatalf("%v rate %d: no faults seen", method, rate)
			}
		}
	}
}

// TestDistStormPrecondGMRES storms the preconditioned distributed GMRES,
// covering z alongside the x/g pair and the basis.
func TestDistStormPrecondGMRES(t *testing.T) {
	a, b := asymmetricDist(1000)
	cfg0 := precondCfg(core.MethodFEIR)
	cfg0.Restart = 20
	base, _, err := SolveGMRES(a, b, 4, cfg0)
	if err != nil || !base.Converged {
		t.Fatalf("fault-free run: %+v err=%v", base, err)
	}
	window := base.Iterations * 3 / 4
	if window < 2 {
		t.Fatalf("fault-free run too short for a storm: %+v", base)
	}
	vectors := []string{"x", "g", "z", "v0", "v1", "v3", "v7"}
	for _, method := range []core.Method{core.MethodFEIR, core.MethodAFEIR} {
		for rate := 1; rate <= 5; rate++ {
			seed := int64(6000*int(method) + rate)
			rng := rand.New(rand.NewSource(seed))
			cfg := precondCfg(method)
			cfg.Restart = 20
			cfg.Inject = injectOwned(stormSchedule(rng, vectors, window, rate))
			res, _, err := SolveGMRES(a, b, 4, cfg)
			if err != nil {
				t.Fatalf("%v rate %d: %v", method, rate, err)
			}
			if !res.Converged {
				t.Fatalf("%v rate %d: not converged: %+v", method, rate, res)
			}
			if res.RelResidual > 1e-8 {
				t.Fatalf("%v rate %d: true residual %v", method, rate, res.RelResidual)
			}
			if res.Stats.FaultsSeen == 0 {
				t.Fatalf("%v rate %d: no faults seen", method, rate)
			}
		}
	}
}
