package policy

import (
	"testing"

	"repro/internal/core"
)

var fullSet = []core.Method{core.MethodFEIR, core.MethodAFEIR, core.MethodLossy}

// At zero observed rate and 1024 modelled cores, FEIR's 3.5 ms critical-
// path recovery latency is a first-order per-iteration cost; the
// controller must move off FEIR immediately.
func TestSwitchesOffCriticalPathAtZeroRate(t *testing.T) {
	c := New(Config{})
	m, _ := c.Decide(0, 0, core.MethodFEIR, fullSet)
	if m == core.MethodFEIR {
		t.Fatalf("controller kept FEIR at zero rate; want a cheaper method")
	}
	if c.Switches() != 1 {
		t.Fatalf("Switches = %d, want 1", c.Switches())
	}
	if len(c.Decisions()) != 1 || c.Decisions()[0].From != "FEIR" {
		t.Fatalf("decision log = %+v", c.Decisions())
	}
}

// A sustained error storm drives the EWMA up; at ~1 event/iteration the
// AFEIR damage model predicts a quadratic iteration blow-up and the
// controller must fall back to critical-path FEIR.
func TestSwitchesToFEIRUnderStorm(t *testing.T) {
	c := New(Config{})
	cur := core.MethodAFEIR
	for it := 0; it < 60; it++ {
		m, _ := c.Decide(it, 1, cur, fullSet)
		cur = m
	}
	if cur != core.MethodFEIR {
		t.Fatalf("method after storm = %v, want FEIR (rate=%.3f)", cur, c.Rate())
	}
}

// The hold distance bounds switch frequency even when the predicted
// ranking flips every iteration.
func TestHoldPreventsFlapping(t *testing.T) {
	c := New(Config{HoldIters: 10})
	cur := core.MethodAFEIR
	var switches []int
	for it := 0; it < 100; it++ {
		// Alternate long quiet stretches with dense bursts so the
		// model's preferred method keeps changing.
		ev := 0
		if (it/5)%2 == 0 {
			ev = 3
		}
		m, _ := c.Decide(it, ev, cur, fullSet)
		if m != cur {
			switches = append(switches, it)
			cur = m
		}
	}
	for i := 1; i < len(switches); i++ {
		if switches[i]-switches[i-1] < 10 {
			t.Fatalf("switches %v violate the 10-iteration hold", switches)
		}
	}
}

// The returned method must always come from the allowed set; a pinned run
// (singleton set) never moves.
func TestRespectsAllowedSet(t *testing.T) {
	c := New(Config{})
	for it := 0; it < 20; it++ {
		m, _ := c.Decide(it, it%3, core.MethodLossy, []core.Method{core.MethodLossy})
		if m != core.MethodLossy {
			t.Fatalf("pinned run switched to %v", m)
		}
	}
	if c.Switches() != 0 {
		t.Fatalf("Switches = %d on a pinned run", c.Switches())
	}
}

// Checkpoint runs get a Young/Daly interval that tightens as the observed
// rate grows.
func TestCheckpointIntervalTightensWithRate(t *testing.T) {
	quiet := New(Config{})
	var ivQuiet int
	for it := 0; it < 30; it++ {
		_, ivQuiet = quiet.Decide(it, 0, core.MethodCheckpoint, []core.Method{core.MethodCheckpoint})
	}
	stormy := New(Config{})
	var ivStorm int
	for it := 0; it < 30; it++ {
		_, ivStorm = stormy.Decide(it, 2, core.MethodCheckpoint, []core.Method{core.MethodCheckpoint})
	}
	if ivQuiet <= 0 || ivStorm <= 0 {
		t.Fatalf("non-positive intervals: quiet=%d storm=%d", ivQuiet, ivStorm)
	}
	if ivStorm >= ivQuiet {
		t.Fatalf("interval did not tighten: quiet=%d storm=%d", ivQuiet, ivStorm)
	}
	if len(stormy.Decisions()) == 0 {
		t.Fatalf("no retune decisions logged")
	}
}

// The EWMA decays after a burst ends, and the decision log stays within
// its cap under adversarial flapping.
func TestRateDecayAndLogCap(t *testing.T) {
	c := New(Config{Gain: 0.2, MaxDecisions: 4, HoldIters: 1, Hysteresis: 0.01})
	cur := core.MethodFEIR
	for it := 0; it < 200; it++ {
		ev := 0
		if it < 20 {
			ev = 5
		}
		m, _ := c.Decide(it, ev, cur, fullSet)
		cur = m
	}
	if c.Rate() > 0.01 {
		t.Fatalf("rate did not decay: %.4f", c.Rate())
	}
	if len(c.Decisions()) > 4 {
		t.Fatalf("decision log %d exceeds cap 4", len(c.Decisions()))
	}
}
