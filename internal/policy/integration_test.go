package policy

import (
	"testing"

	"repro/internal/core"
	"repro/internal/inject"
	"repro/internal/matgen"
	"repro/internal/sparse"
)

// End-to-end adaptive run: a CG constructed as FEIR under a scripted error
// ramp (quiet, then a dense mixed DUE/SDC storm). The controller must move
// off FEIR while the run is clean, fall back to a storm-proof method when
// the rate ramps up, and the solve must still converge to the true
// residual tolerance.
func TestAdaptiveCGUnderScriptedRamp(t *testing.T) {
	a := matgen.Poisson2D(40, 40)
	b := matgen.RandomVector(a.N, 42)

	ctrl := New(Config{})
	cfg := core.Config{
		Method:      core.MethodFEIR,
		Workers:     4,
		PageDoubles: 64,
		Tol:         1e-10,
		MaxIter:     20000,
		ABFT:        true,
		Policy:      ctrl,
	}
	cg, err := core.NewCG(a, b, cfg)
	if err != nil {
		t.Fatal(err)
	}
	plan := inject.Schedule{
		Phases: []inject.RatePhase{
			{FromIteration: 0, MeanIters: 0},                    // quiet: the model should drop FEIR's latency
			{FromIteration: 30, MeanIters: 2, SDCFraction: 0.3}, // storm: exact recovery must win again
		},
		Seed:    9,
		Targets: cg.DynamicVectors(),
	}.Compile(400)
	plan.Start()
	cg.SetOnIteration(func(it int, rel float64) { plan.Tick(it) })

	res, err := cg.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || res.RelResidual > 1e-8 {
		t.Fatalf("adaptive run: converged=%v rel=%v stats=%+v", res.Converged, res.RelResidual, res.Stats)
	}
	if res.Stats.PolicySwitches < 2 {
		t.Fatalf("PolicySwitches = %d, want >= 2 (decisions: %v)", res.Stats.PolicySwitches, ctrl.Decisions())
	}
	decs := ctrl.Decisions()
	if len(decs) != res.Stats.PolicySwitches {
		t.Fatalf("decision log %d entries vs %d switches", len(decs), res.Stats.PolicySwitches)
	}
	if decs[0].From != "FEIR" {
		t.Fatalf("first decision should leave FEIR: %v", decs[0])
	}
	last := decs[len(decs)-1]
	if last.To != "FEIR" && last.To != "AFEIR" {
		t.Fatalf("storm should end on an exact-recovery method, got %v", last)
	}
	if res.Stats.SDCDetected == 0 {
		t.Fatalf("no SDC detections under a 30%% flip storm: %+v", res.Stats)
	}
	if plan.Fired() == 0 {
		t.Fatalf("plan fired nothing")
	}
}

// An adaptive BiCGStab run switches only between the two exact-recovery
// schedulings (FEIR <-> AFEIR) and stays correct.
func TestAdaptiveBiCGStabSwitchSet(t *testing.T) {
	// Diagonally dominant non-symmetric tridiagonal system.
	n := 900
	var tr []sparse.Triplet
	for i := 0; i < n; i++ {
		tr = append(tr, sparse.Triplet{Row: i, Col: i, Val: 4})
		if i > 0 {
			tr = append(tr, sparse.Triplet{Row: i, Col: i - 1, Val: -1.4})
		}
		if i < n-1 {
			tr = append(tr, sparse.Triplet{Row: i, Col: i + 1, Val: -0.6})
		}
	}
	a := sparse.NewCSRFromTriplets(n, n, tr)
	b := matgen.RandomVector(n, 3)
	ctrl := New(Config{})
	cfg := core.Config{
		Method:      core.MethodFEIR,
		Workers:     4,
		PageDoubles: 64,
		Tol:         1e-9,
		MaxIter:     20000,
		Policy:      ctrl,
	}
	sv, err := core.NewBiCGStab(a, b, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, _, err := sv.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("adaptive BiCGStab did not converge: %+v", res)
	}
	for _, d := range ctrl.Decisions() {
		if d.To != "FEIR" && d.To != "AFEIR" {
			t.Fatalf("BiCGStab switched outside its safe set: %v", d)
		}
	}
	if res.Stats.PolicySwitches < 1 {
		t.Fatalf("clean run at 1024 modelled cores should drop FEIR's latency: %+v", res.Stats)
	}
}
