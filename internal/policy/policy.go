// Package policy implements the adaptive resilience controller: an online
// estimator of the observed fault rate (DUE poisons + ABFT silent-error
// detections) coupled to the perfmodel cost model, deciding at iteration
// fixpoints which resilience method the NEXT iterations should run and how
// often a checkpointing run should write.
//
// The paper's §5 evaluation shows no single method dominates: FEIR's
// critical-path recovery latency makes it the slowest fault-free choice at
// scale but the most robust under error storms, while AFEIR's overlapped
// recoveries are nearly free until lost reduction contributions compound
// quadratically with the error count (§5.4), and Lossy Restart is cheapest
// of all when nothing fails. The controller closes that loop: it tracks an
// exponentially-weighted error rate from the solver's own fault counters,
// asks the calibrated model which allowed method minimises the predicted
// remaining run time at that rate, and switches only when the predicted
// win clears a hysteresis margin and a minimum hold distance — the solver
// applies the decision at its next quiescent fixpoint.
package policy

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/perfmodel"
)

// Config parametrises the controller. The zero value selects calibrated
// defaults throughout.
type Config struct {
	// Model is the analytic cost model; nil means perfmodel.New().
	Model *perfmodel.Model
	// Cores is the MODELLED core count the method ranking assumes. The
	// default is 1024 — the paper's §5.5 regime where the per-iteration
	// resilience latencies are a first-order cost and the method choice
	// genuinely matters. (At single-socket scale every method costs the
	// same and the controller would never move.)
	Cores int
	// Gain is the EWMA gain applied to the per-iteration event count;
	// 0 means 0.08 (≈ a 12-iteration memory).
	Gain float64
	// Hysteresis is the minimum predicted relative win before a switch;
	// 0 means 0.05 (5 %).
	Hysteresis float64
	// HoldIters is the minimum distance between switches; 0 means 8.
	HoldIters int
	// Horizon converts the per-iteration rate into the errors-per-run the
	// damage model expects; 0 means Model.Problem.Iterations.
	Horizon int
	// MaxDecisions caps the in-memory decision log; 0 means 256.
	MaxDecisions int
}

func (c Config) gain() float64 {
	if c.Gain > 0 {
		return c.Gain
	}
	return 0.08
}

func (c Config) hysteresis() float64 {
	if c.Hysteresis > 0 {
		return c.Hysteresis
	}
	return 0.05
}

func (c Config) holdIters() int {
	if c.HoldIters > 0 {
		return c.HoldIters
	}
	return 8
}

func (c Config) maxDecisions() int {
	if c.MaxDecisions > 0 {
		return c.MaxDecisions
	}
	return 256
}

// Decision records one applied controller action.
type Decision struct {
	// Iteration is the fixpoint at which the decision was taken.
	Iteration int `json:"iteration"`
	// Rate is the EWMA error rate (events/iteration) at that point.
	Rate float64 `json:"rate"`
	// From and To are the method names before and after the switch.
	From string `json:"from"`
	To   string `json:"to"`
	// CkptInterval is the retuned checkpoint interval (iterations), 0 for
	// method switches.
	CkptInterval int `json:"ckpt_interval,omitempty"`
}

// String renders the decision for per-run reports.
func (d Decision) String() string {
	if d.CkptInterval > 0 {
		return fmt.Sprintf("it=%d rate=%.4f ckpt-interval=%d", d.Iteration, d.Rate, d.CkptInterval)
	}
	return fmt.Sprintf("it=%d rate=%.4f %s->%s", d.Iteration, d.Rate, d.From, d.To)
}

// Controller is the adaptive resilience policy. It implements
// core.ResiliencePolicy. A Controller belongs to ONE solver run loop at a
// time (Decide mutates estimator state); build one per concurrent run.
type Controller struct {
	cfg   Config
	model *perfmodel.Model
	cores int

	rate       float64
	lastSwitch int
	started    bool
	switches   int
	lastCkptIv int
	decisions  []Decision
}

var _ core.ResiliencePolicy = (*Controller)(nil)

// New builds a controller from cfg (zero value: calibrated defaults).
func New(cfg Config) *Controller {
	m := cfg.Model
	if m == nil {
		m = perfmodel.New()
	}
	cores := cfg.Cores
	if cores <= 0 {
		cores = 1024
	}
	return &Controller{cfg: cfg, model: m, cores: cores}
}

// Rate returns the current EWMA error rate in events per iteration.
func (c *Controller) Rate() float64 { return c.rate }

// Switches returns the number of method switches applied so far.
func (c *Controller) Switches() int { return c.switches }

// Decisions returns the applied decisions (switches and checkpoint
// retunes), oldest first, capped at Config.MaxDecisions.
func (c *Controller) Decisions() []Decision { return c.decisions }

// Decide implements core.ResiliencePolicy: fold the newly observed events
// into the rate estimate, rank the allowed methods under the model at the
// estimated errors-per-run, and return the winner when it clears the
// hysteresis and hold thresholds (cur otherwise). For checkpoint runs
// (len(allowed)==1 and cur==MethodCheckpoint) it instead retunes the
// Young/Daly interval to the observed rate.
func (c *Controller) Decide(it, newEvents int, cur core.Method, allowed []core.Method) (core.Method, int) {
	g := c.cfg.gain()
	c.rate = (1-g)*c.rate + g*float64(newEvents)
	if !c.started {
		c.started = true
		c.lastSwitch = it - c.cfg.holdIters() // allow an immediate first switch
	}

	if cur == core.MethodCheckpoint {
		iv := c.model.OptimalCheckpointInterval(c.cores, c.rate)
		if iv != c.lastCkptIv {
			c.lastCkptIv = iv
			c.record(Decision{Iteration: it, Rate: c.rate, From: cur.String(), To: cur.String(), CkptInterval: iv})
		}
		return cur, iv
	}
	if len(allowed) < 2 {
		return cur, 0
	}

	horizon := c.cfg.Horizon
	if horizon <= 0 {
		horizon = c.model.Problem.Iterations
	}
	errsPerRun := c.rate * float64(horizon)

	best, bestT := cur, c.model.RunTimeF(cur, c.cores, errsPerRun)
	curT := bestT
	for _, m := range allowed {
		if m == cur {
			continue
		}
		if t := c.model.RunTimeF(m, c.cores, errsPerRun); t < bestT {
			best, bestT = m, t
		}
	}
	if best == cur || curT <= bestT*(1+c.cfg.hysteresis()) || it-c.lastSwitch < c.cfg.holdIters() {
		return cur, 0
	}
	c.lastSwitch = it
	c.switches++
	c.record(Decision{Iteration: it, Rate: c.rate, From: cur.String(), To: best.String()})
	return best, 0
}

func (c *Controller) record(d Decision) {
	if len(c.decisions) >= c.cfg.maxDecisions() {
		return
	}
	c.decisions = append(c.decisions, d)
}
