package sparse

import (
	"math/rand"
	"testing"
)

func randCols(m, n int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	cols := make([][]float64, m)
	for j := range cols {
		cols[j] = make([]float64, n)
		for i := range cols[j] {
			cols[j][i] = rng.NormFloat64()
		}
	}
	return cols
}

// TestPairDotsMatchesDotRange pins PairDotsRange bitwise against one
// DotRange call per pair, on both the gathered fast path and the
// wide-column fallback.
func TestPairDotsMatchesDotRange(t *testing.T) {
	for _, m := range []int{3, 13, pairDotsMaxCols + 5} {
		n := 500
		cols := randCols(m, n, int64(m))
		rng := rand.New(rand.NewSource(int64(m) * 7))
		var pairs [][2]int32
		for k := 0; k < 2*m; k++ {
			pairs = append(pairs, [2]int32{int32(rng.Intn(m)), int32(rng.Intn(m))})
		}
		for _, rr := range [][2]int{{0, n}, {17, 431}, {n - 1, n}} {
			lo, hi := rr[0], rr[1]
			out := make([]float64, len(pairs))
			PairDotsRange(cols, pairs, out, lo, hi)
			for k, pr := range pairs {
				want := DotRange(cols[pr[0]], cols[pr[1]], lo, hi)
				if out[k] != want {
					t.Fatalf("m=%d [%d,%d) pair %d (%d,%d): %v vs %v",
						m, lo, hi, k, pr[0], pr[1], out[k], want)
				}
			}
		}
	}
}

// cacgUpdateUnfused is the naive composition CACGUpdateRange fuses: copy,
// per-column axpys, then DotRange — the bitwise reference.
func cacgUpdateUnfused(kc, pc, apc [][]float64, b, a []float64, x, r []float64, lo, hi int) float64 {
	s := len(pc)
	n := len(x)
	// Snapshot K[0] in case it aliases r (the fused kernel reads each
	// element before writing it; the composition must see the same data).
	k0 := append([]float64(nil), kc[0]...)
	kcols := append([][]float64{k0}, kc[1:]...)
	pn := make([][]float64, s)
	apn := make([][]float64, s)
	for l := 0; l < s; l++ {
		pn[l] = make([]float64, n)
		apn[l] = make([]float64, n)
		copy(pn[l][lo:hi], kcols[l][lo:hi])
		copy(apn[l][lo:hi], kcols[l+1][lo:hi])
		if b != nil {
			for j := 0; j < s; j++ {
				AxpyRange(b[l*s+j], pc[j], pn[l], lo, hi)
				AxpyRange(b[l*s+j], apc[j], apn[l], lo, hi)
			}
		}
	}
	for l := 0; l < s; l++ {
		AxpyRange(a[l], pn[l], x, lo, hi)
		AxpyRange(-a[l], apn[l], r, lo, hi)
	}
	for l := 0; l < s; l++ {
		copy(pc[l][lo:hi], pn[l][lo:hi])
		copy(apc[l][lo:hi], apn[l][lo:hi])
	}
	return DotRange(r, r, lo, hi)
}

func TestCACGUpdateMatchesUnfused(t *testing.T) {
	n := 300
	for _, s := range []int{1, 2, 4, 8} {
		for _, withB := range []bool{false, true} {
			for _, alias := range []bool{false, true} {
				seed := int64(s*100 + 17)
				kc := randCols(s+1, n, seed)
				pcF, pcU := randCols(s, n, seed+1), randCols(s, n, seed+1)
				apF, apU := randCols(s, n, seed+2), randCols(s, n, seed+2)
				xF, xU := randVec(n, seed+3), randVec(n, seed+3)
				rF, rU := randVec(n, seed+4), randVec(n, seed+4)
				kcF := kc
				kcU := randCols(s+1, n, seed) // fresh identical copy
				if alias {
					// K[0] IS the residual, as in the solver steady state.
					kcF = append([][]float64{rF}, kc[1:]...)
					kcU = append([][]float64{rU}, kcU[1:]...)
				}
				var bm []float64
				if withB {
					rng := rand.New(rand.NewSource(seed + 5))
					bm = make([]float64, s*s)
					for i := range bm {
						bm[i] = rng.NormFloat64()
					}
				}
				av := randVec(s, seed+6)
				lo, hi := 13, n-29
				rrF := CACGUpdateRange(kcF, pcF, apF, bm, av, xF, rF, lo, hi)
				rrU := cacgUpdateUnfused(kcU, pcU, apU, bm, av, xU, rU, lo, hi)
				// The unfused rr covers [lo,hi) of the updated r only when
				// r is compared over the same range.
				if rrF != DotRange(rF, rF, lo, hi) {
					t.Fatalf("s=%d b=%v alias=%v: fused rr %v != recomputed %v",
						s, withB, alias, rrF, DotRange(rF, rF, lo, hi))
				}
				if rrF != rrU {
					t.Fatalf("s=%d b=%v alias=%v: rr %v vs %v", s, withB, alias, rrF, rrU)
				}
				for i := lo; i < hi; i++ {
					if xF[i] != xU[i] {
						t.Fatalf("s=%d b=%v alias=%v: x[%d] %v vs %v", s, withB, alias, i, xF[i], xU[i])
					}
					if rF[i] != rU[i] {
						t.Fatalf("s=%d b=%v alias=%v: r[%d] %v vs %v", s, withB, alias, i, rF[i], rU[i])
					}
					for l := 0; l < s; l++ {
						if pcF[l][i] != pcU[l][i] || apF[l][i] != apU[l][i] {
							t.Fatalf("s=%d b=%v alias=%v: P/AP[%d][%d] mismatch", s, withB, alias, l, i)
						}
					}
				}
				// Outside the range nothing moves.
				if xF[0] != xU[0] || rF[n-1] != rU[n-1] {
					t.Fatalf("s=%d: out-of-range elements touched", s)
				}
			}
		}
	}
}
