package sparse

import (
	"math"
	"math/rand"
	"testing"
)

// smallTestMatrix builds the 4x4 SPD matrix
//
//	[ 4 -1  0  0]
//	[-1  4 -1  0]
//	[ 0 -1  4 -1]
//	[ 0  0 -1  4]
func smallTestMatrix() *CSR {
	var tr []Triplet
	for i := 0; i < 4; i++ {
		tr = append(tr, Triplet{i, i, 4})
		if i > 0 {
			tr = append(tr, Triplet{i, i - 1, -1})
		}
		if i < 3 {
			tr = append(tr, Triplet{i, i + 1, -1})
		}
	}
	return NewCSRFromTriplets(4, 4, tr)
}

// randomSparse builds a random n×n strictly diagonally dominant matrix.
func randomSparse(n int, nnzPerRow int, rng *rand.Rand) *CSR {
	var tr []Triplet
	for i := 0; i < n; i++ {
		rowSum := 0.0
		for k := 0; k < nnzPerRow; k++ {
			j := rng.Intn(n)
			if j == i {
				continue
			}
			v := rng.NormFloat64()
			tr = append(tr, Triplet{i, j, v})
			rowSum += math.Abs(v)
		}
		tr = append(tr, Triplet{i, i, rowSum + 1 + rng.Float64()})
	}
	return NewCSRFromTriplets(n, n, tr)
}

func TestCSRAssembly(t *testing.T) {
	a := smallTestMatrix()
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if a.NNZ() != 10 {
		t.Fatalf("NNZ = %d, want 10", a.NNZ())
	}
	if a.At(0, 0) != 4 || a.At(1, 0) != -1 || a.At(0, 3) != 0 {
		t.Fatal("At returned wrong values")
	}
}

func TestCSRDuplicateTripletsSummed(t *testing.T) {
	a := NewCSRFromTriplets(2, 2, []Triplet{{0, 0, 1}, {0, 0, 2}, {1, 1, 5}})
	if a.At(0, 0) != 3 {
		t.Fatalf("duplicate sum = %v, want 3", a.At(0, 0))
	}
	if a.NNZ() != 2 {
		t.Fatalf("NNZ = %d, want 2", a.NNZ())
	}
}

func TestCSROutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewCSRFromTriplets(2, 2, []Triplet{{2, 0, 1}})
}

func TestMulVec(t *testing.T) {
	a := smallTestMatrix()
	x := []float64{1, 2, 3, 4}
	y := make([]float64, 4)
	a.MulVec(x, y)
	want := []float64{4 - 2, -1 + 8 - 3, -2 + 12 - 4, -3 + 16}
	for i := range y {
		if !almostEqual(y[i], want[i], 1e-15) {
			t.Fatalf("MulVec[%d] = %v, want %v", i, y[i], want[i])
		}
	}
}

func TestMulVecRangeMatchesFull(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := randomSparse(200, 6, rng)
	x := make([]float64, 200)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	full := make([]float64, 200)
	a.MulVec(x, full)
	part := make([]float64, 200)
	for lo := 0; lo < 200; lo += 37 {
		hi := lo + 37
		if hi > 200 {
			hi = 200
		}
		a.MulVecRange(x, part, lo, hi)
	}
	for i := range full {
		if !almostEqual(full[i], part[i], 1e-14) {
			t.Fatalf("row %d: full %v != strip-mined %v", i, full[i], part[i])
		}
	}
}

func TestMulVecRangeExcludingCols(t *testing.T) {
	a := smallTestMatrix()
	x := []float64{1, 2, 3, 4}
	y := make([]float64, 4)
	// Exclude columns [1,3): contributions from x[1], x[2] dropped.
	a.MulVecRangeExcludingCols(x, y, 0, 4, 1, 3)
	want := []float64{4, -1, -4, 16}
	for i := range y {
		if !almostEqual(y[i], want[i], 1e-15) {
			t.Fatalf("excl[%d] = %v, want %v", i, y[i], want[i])
		}
	}
}

func TestMulVecRangeExcludingColsIdentityWhenEmpty(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randomSparse(100, 5, rng)
	x := make([]float64, 100)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	y1 := make([]float64, 100)
	y2 := make([]float64, 100)
	a.MulVec(x, y1)
	a.MulVecRangeExcludingCols(x, y2, 0, 100, 0, 0) // empty exclusion
	for i := range y1 {
		if y1[i] != y2[i] {
			t.Fatalf("row %d differs with empty exclusion", i)
		}
	}
}

func TestMulVecRangeExcludingBlocks(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := randomSparse(120, 7, rng)
	x := make([]float64, 120)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	// Excluding blocks [10,20) and [50,60) must equal full minus those columns' contributions.
	got := make([]float64, 120)
	a.MulVecRangeExcludingBlocks(x, got, 0, 120, [][2]int{{10, 20}, {50, 60}})
	want := make([]float64, 120)
	xMasked := append([]float64(nil), x...)
	for i := 10; i < 20; i++ {
		xMasked[i] = 0
	}
	for i := 50; i < 60; i++ {
		xMasked[i] = 0
	}
	a.MulVec(xMasked, want)
	for i := range got {
		if !almostEqual(got[i], want[i], 1e-13) {
			t.Fatalf("row %d: got %v want %v", i, got[i], want[i])
		}
	}
}

func TestDiagBlockAndBlock(t *testing.T) {
	a := smallTestMatrix()
	d := a.DiagBlock(1, 3)
	if d.Rows != 2 || d.Cols != 2 {
		t.Fatalf("DiagBlock dims %dx%d", d.Rows, d.Cols)
	}
	if d.At(0, 0) != 4 || d.At(0, 1) != -1 || d.At(1, 0) != -1 || d.At(1, 1) != 4 {
		t.Fatalf("DiagBlock values wrong: %+v", d.Data)
	}
	b := a.Block(0, 2, 2, 4)
	if b.At(0, 0) != 0 || b.At(1, 0) != -1 || b.At(1, 1) != 0 {
		t.Fatalf("Block values wrong: %+v", b.Data)
	}
}

func TestDiag(t *testing.T) {
	a := smallTestMatrix()
	d := a.Diag()
	for i, v := range d {
		if v != 4 {
			t.Fatalf("Diag[%d] = %v", i, v)
		}
	}
}

func TestIsSymmetric(t *testing.T) {
	if !smallTestMatrix().IsSymmetric(1e-14) {
		t.Fatal("tridiagonal matrix should be symmetric")
	}
	asym := NewCSRFromTriplets(2, 2, []Triplet{{0, 0, 1}, {0, 1, 2}, {1, 1, 1}})
	if asym.IsSymmetric(1e-14) {
		t.Fatal("asymmetric matrix flagged symmetric")
	}
}

func TestTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := randomSparse(50, 4, rng)
	at := a.Transpose()
	if err := at.Validate(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			j := a.Cols[k]
			if at.At(j, i) != a.Vals[k] {
				t.Fatalf("transpose mismatch at (%d,%d)", i, j)
			}
		}
	}
	// Double transpose is identity.
	att := at.Transpose()
	for i := range a.Vals {
		if att.Vals[i] != a.Vals[i] || att.Cols[i] != a.Cols[i] {
			t.Fatal("double transpose differs")
		}
	}
}

func TestClone(t *testing.T) {
	a := smallTestMatrix()
	b := a.Clone()
	b.Vals[0] = 99
	if a.Vals[0] == 99 {
		t.Fatal("Clone aliases original")
	}
}

func TestOffBlockRowAbsSum(t *testing.T) {
	a := smallTestMatrix()
	// Row 1 has entries -1 (col 0), 4 (col 1), -1 (col 2). Off block [1,2): |−1|+|−1| = 2.
	if got := a.OffBlockRowAbsSum(1, 1, 2); got != 2 {
		t.Fatalf("OffBlockRowAbsSum = %v, want 2", got)
	}
	// Whole row inside the block -> 0.
	if got := a.OffBlockRowAbsSum(1, 0, 4); got != 0 {
		t.Fatalf("OffBlockRowAbsSum = %v, want 0", got)
	}
}

func TestRowNNZ(t *testing.T) {
	a := smallTestMatrix()
	if a.RowNNZ(0) != 2 || a.RowNNZ(1) != 3 {
		t.Fatalf("RowNNZ = %d,%d", a.RowNNZ(0), a.RowNNZ(1))
	}
}

func TestValidateDetectsCorruption(t *testing.T) {
	a := smallTestMatrix()
	a.Cols[0], a.Cols[1] = a.Cols[1], a.Cols[0] // break ordering
	if err := a.Validate(); err == nil {
		t.Fatal("Validate missed unsorted columns")
	}
}
