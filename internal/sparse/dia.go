package sparse

// Diagonal (DIA) kernel shadow: stencil and banded matrices — the
// paper's whole workload family — concentrate their nonzeros on a
// handful of diagonals. Storing those diagonals as dense padded arrays
// lets the SpMV kernels stream values in long contiguous loops with NO
// index loads and NO gather indirection, which on memory-bound
// iterations is worth 30-50% of the whole SpMV. The shadow is built by
// BuildIndex32 when the matrix is square and its distinct offsets are
// few enough that the padding wastes at most half the storage
// (maxDiaOffsets / diaWasteFactor); every other matrix keeps the CSR
// kernels. Rows are processed in blocks so the y window stays
// cache-resident across the per-diagonal streams.
//
// Exactness: diagonals are processed in ascending offset order, which is
// exactly the ascending column order of the CSR rows, so the per-row
// accumulation order is identical and results match the CSR kernels
// bitwise (padded zero entries contribute +0.0 to the running sum).
// Caveat inherited from the padding: a padded slot multiplies 0 by an
// x element the CSR row never reads, so a non-finite value THERE would
// produce NaN. The solvers never feed non-finite data to an SpMV —
// faults are repaired or blanked at the phase boundary before any
// matvec — and the engine's reductions guard with HasNonFinite anyway.

const (
	maxDiaOffsets  = 32
	diaWasteFactor = 2
	diaBlock       = 1024 // rows per block: keeps the y window L1-hot
)

// buildDIA populates the diagonal shadow, or clears it when the matrix
// does not qualify.
func (a *CSR) buildDIA() {
	a.diaOffs, a.diaVals = nil, nil
	if a.N != a.M || a.N == 0 || len(a.Vals) == 0 {
		return
	}
	seen := make(map[int]struct{}, maxDiaOffsets+1)
	for i := 0; i < a.N; i++ {
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			o := a.Cols[k] - i
			if _, ok := seen[o]; !ok {
				seen[o] = struct{}{}
				if len(seen) > maxDiaOffsets {
					return
				}
			}
		}
	}
	if len(seen)*a.N > diaWasteFactor*len(a.Vals) {
		return
	}
	offs := make([]int, 0, len(seen))
	for o := range seen {
		offs = append(offs, o)
	}
	// Ascending offsets == ascending in-row column order: bitwise parity
	// with the CSR accumulation.
	for i := 1; i < len(offs); i++ {
		for j := i; j > 0 && offs[j] < offs[j-1]; j-- {
			offs[j], offs[j-1] = offs[j-1], offs[j]
		}
	}
	idx := make(map[int]int, len(offs))
	for d, o := range offs {
		idx[o] = d
	}
	vals := make([][]float64, len(offs))
	for d := range vals {
		vals[d] = make([]float64, a.N)
	}
	for i := 0; i < a.N; i++ {
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			vals[idx[a.Cols[k]-i]][i] = a.Vals[k]
		}
	}
	a.diaOffs, a.diaVals = offs, vals
}

// diaBlockMul computes y[b0:b1] = (A*x)[b0:b1] by streaming each
// diagonal across the block. y stays cache-hot, and each inner loop is
// a contiguous bounds-check-free stream.
//
//due:hotpath
func (a *CSR) diaBlockMul(x, y []float64, b0, b1, n int) {
	yb := y[b0:b1]
	for i := range yb {
		yb[i] = 0
	}
	for d, o := range a.diaOffs {
		i0, i1 := b0, b1
		if o < 0 && -o > i0 {
			i0 = -o
		}
		if o > 0 && n-o < i1 {
			i1 = n - o
		}
		if i0 >= i1 {
			continue
		}
		vv := a.diaVals[d][i0:i1]
		xx := x[i0+o : i1+o : i1+o]
		yy := y[i0:i1:i1]
		for k, v := range vv {
			yy[k] += v * xx[k]
		}
	}
}

// mulVecRangeDIA computes y[lo:hi] = (A*x)[lo:hi] from the diagonal
// shadow.
//
//due:hotpath
func (a *CSR) mulVecRangeDIA(x, y []float64, lo, hi int) {
	n := a.N
	for b0 := lo; b0 < hi; b0 += diaBlock {
		b1 := b0 + diaBlock
		if b1 > hi {
			b1 = hi
		}
		a.diaBlockMul(x, y, b0, b1, n)
	}
}

// mulVecDotRangeDIA is the fused variant: the dot partials are taken in
// a short second pass over each block while it is still L1-hot, in the
// same ascending-row order as the CSR fused kernel.
//
//due:hotpath
func (a *CSR) mulVecDotRangeDIA(x, y []float64, lo, hi int) (xy, yy float64) {
	n := a.N
	for b0 := lo; b0 < hi; b0 += diaBlock {
		b1 := b0 + diaBlock
		if b1 > hi {
			b1 = hi
		}
		a.diaBlockMul(x, y, b0, b1, n)
		xb := x[b0:b1]
		yb := y[b0:b1:b1]
		for i, v := range xb {
			u := yb[i]
			xy += v * u
			yy += u * u
		}
	}
	return xy, yy
}

// mulVecDotVecRangeDIA fuses the <y, w> partial instead.
//
//due:hotpath
func (a *CSR) mulVecDotVecRangeDIA(x, y, w []float64, lo, hi int) (wy float64) {
	n := a.N
	for b0 := lo; b0 < hi; b0 += diaBlock {
		b1 := b0 + diaBlock
		if b1 > hi {
			b1 = hi
		}
		a.diaBlockMul(x, y, b0, b1, n)
		wb := w[b0:b1]
		yb := y[b0:b1:b1]
		for i, v := range wb {
			wy += yb[i] * v
		}
	}
	return wy
}
