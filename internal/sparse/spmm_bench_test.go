package sparse

import (
	"fmt"
	"testing"
)

// stencil27 builds the nx^3 27-point stencil with a DIA shadow — the
// qa8fm-analogue shape the serving bench solves.
func stencil27(nx int) *CSR {
	n := nx * nx * nx
	var tr []Triplet
	idx := func(i, j, k int) int { return (i*nx+j)*nx + k }
	for i := 0; i < nx; i++ {
		for j := 0; j < nx; j++ {
			for k := 0; k < nx; k++ {
				r := idx(i, j, k)
				for di := -1; di <= 1; di++ {
					for dj := -1; dj <= 1; dj++ {
						for dk := -1; dk <= 1; dk++ {
							ii, jj, kk := i+di, j+dj, k+dk
							if ii < 0 || jj < 0 || kk < 0 || ii >= nx || jj >= nx || kk >= nx {
								continue
							}
							v := -1.0
							if di == 0 && dj == 0 && dk == 0 {
								v = 27.0
							}
							tr = append(tr, Triplet{Row: r, Col: idx(ii, jj, kk), Val: v})
						}
					}
				}
			}
		}
	}
	return NewCSRFromTriplets(n, n, tr)
}

func BenchmarkSpMMvsSpMV(b *testing.B) {
	a := stencil27(16)
	b.Logf("shadow=%s n=%d nnz=%d", a.ShadowName(), a.N, a.NNZ())
	for _, w := range []int{1, 4, 8} {
		x := make([]float64, a.N*w)
		y := make([]float64, a.N*w)
		xs := make([]float64, a.N)
		ys := make([]float64, a.N)
		for i := range x {
			x[i] = float64(i%13) * 0.25
		}
		for i := range xs {
			xs[i] = float64(i%13) * 0.25
		}
		b.Run(fmt.Sprintf("spmv-x%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for j := 0; j < w; j++ {
					a.MulVecRange(xs, ys, 0, a.N)
				}
			}
		})
		b.Run(fmt.Sprintf("spmm-w%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				a.MulMatRange(x, y, w, 0, a.N)
			}
		})
	}
}
