// Fused hot-path kernels: each combines a vector-producing operation with
// the reduction(s) that immediately consume its output, so the solvers'
// steady-state iterations touch every cache line once instead of twice or
// three times. Every fused kernel performs the exact same floating-point
// operations in the exact same order as its unfused composition (the
// producing kernel followed by DotRange over the produced values), so the
// results agree bitwise — the property tests in fused_test.go pin this
// down to 1 ulp-scale tolerance.
package sparse

// MulVecDotRange computes y[lo:hi] = (A*x)[lo:hi] fused with the partial
// inner products over the produced rows: xy = Σ x[i]·y[i] and
// yy = Σ y[i]·y[i] for i in [lo, hi). It is the CG phase-1 kernel
// (q = A d with <d,q>) and, with x the BiCGStab intermediate s, the
// phase-2 kernel (t = A s with <t,s> and <t,t>).
//
//due:hotpath
func (a *CSR) MulVecDotRange(x, y []float64, lo, hi int) (xy, yy float64) {
	if a.diaOffs != nil {
		return a.mulVecDotRangeDIA(x, y, lo, hi)
	}
	if a.sellPtr != nil {
		return a.mulVecDotRangeSELL(x, y, lo, hi)
	}
	if a.cols32 != nil {
		return a.mulVecDotRange32(x, y, lo, hi)
	}
	rp := a.RowPtr
	for i := lo; i < hi; i++ {
		// Slice the row span once: the inner loop then runs without
		// re-checking RowPtr-derived bounds on every nonzero.
		row := rp[i]
		cols := a.Cols[row:rp[i+1]]
		vals := a.Vals[row:rp[i+1]]
		var s float64
		for k, c := range cols {
			s += vals[k] * x[c]
		}
		y[i] = s
		xy += x[i] * s
		yy += s * s
	}
	return xy, yy
}

//due:hotpath
func (a *CSR) mulVecDotRange32(x, y []float64, lo, hi int) (xy, yy float64) {
	rp := a.rowPtr32
	for i := lo; i < hi; i++ {
		row := rp[i]
		cols := a.cols32[row:rp[i+1]]
		vals := a.Vals[row:rp[i+1]]
		var s float64
		for k, c := range cols {
			s += vals[k] * x[c]
		}
		y[i] = s
		xy += x[i] * s
		yy += s * s
	}
	return xy, yy
}

// MulVecDotVecRange computes y[lo:hi] = (A*x)[lo:hi] fused with the
// partial inner product wy = Σ y[i]·w[i] against a third vector — the
// BiCGStab phase-1 kernel q = A d̂ with <q, r̂0> (the shadow residual lives
// in reliable memory, so it is a plain slice).
//
//due:hotpath
func (a *CSR) MulVecDotVecRange(x, y, w []float64, lo, hi int) (wy float64) {
	if a.diaOffs != nil {
		return a.mulVecDotVecRangeDIA(x, y, w, lo, hi)
	}
	if a.sellPtr != nil {
		return a.mulVecDotVecRangeSELL(x, y, w, lo, hi)
	}
	if a.cols32 != nil {
		return a.mulVecDotVecRange32(x, y, w, lo, hi)
	}
	rp := a.RowPtr
	for i := lo; i < hi; i++ {
		row := rp[i]
		cols := a.Cols[row:rp[i+1]]
		vals := a.Vals[row:rp[i+1]]
		var s float64
		for k, c := range cols {
			s += vals[k] * x[c]
		}
		y[i] = s
		wy += s * w[i]
	}
	return wy
}

//due:hotpath
func (a *CSR) mulVecDotVecRange32(x, y, w []float64, lo, hi int) (wy float64) {
	rp := a.rowPtr32
	for i := lo; i < hi; i++ {
		row := rp[i]
		cols := a.cols32[row:rp[i+1]]
		vals := a.Vals[row:rp[i+1]]
		var s float64
		for k, c := range cols {
			s += vals[k] * x[c]
		}
		y[i] = s
		wy += s * w[i]
	}
	return wy
}

// AxpyDotRange computes y[lo:hi] += alpha*x[lo:hi] fused with the partial
// squared norm Σ y[i]·y[i] of the updated values — the CG phase-2 kernel
// g -= α q with ε = <g,g>, and the GMRES kernel for the last
// orthogonalisation update fused with the Arnoldi normalisation norm.
//
//due:hotpath
func AxpyDotRange(alpha float64, x, y []float64, lo, hi int) (yy float64) {
	xs := x[lo:hi]
	ys := y[lo:hi:hi]
	for i, v := range xs {
		u := ys[i] + alpha*v
		ys[i] = u
		yy += u * u
	}
	return yy
}

// XpbyNormRange computes out[lo:hi] = x[lo:hi] + beta*y[lo:hi] fused with
// the partial squared norm Σ out[i]·out[i] of the produced values.
//
//due:hotpath
func XpbyNormRange(x []float64, beta float64, y, out []float64, lo, hi int) (oo float64) {
	xs := x[lo:hi]
	ys := y[lo:hi:hi]
	os := out[lo:hi:hi]
	for i, v := range xs {
		u := v + beta*ys[i]
		os[i] = u
		oo += u * u
	}
	return oo
}

// PipeCGUpdateRange is the whole vector phase of one pipelined-CG
// iteration (Ghysels & Vanroose) fused into a single pass:
//
//	z = q + β z ;  s = w + β s ;  p = r + β p
//	x += α p    ;  r -= α s    ;  w -= α z
//	γ = Σ r[i]·r[i] ;  δ = Σ w[i]·r[i]
//
// over [lo, hi), returning the partial γ and δ of the updated values —
// the one reduction point of the pipelined iteration rides the update's
// own pass, and its sum overlaps the next SpMV. Element-wise the
// operations are independent, so the per-element interleaving produces
// bitwise the same values as the six unfused Xpby/Axpy passes followed by
// two DotRange passes (pinned by TestPipeCGUpdateMatchesUnfused).
//
//due:hotpath
func PipeCGUpdateRange(alpha, beta float64, q, z, w, s, r, p, x []float64, lo, hi int) (gamma, delta float64) {
	qs := q[lo:hi]
	zs := z[lo:hi:hi]
	ws := w[lo:hi:hi]
	ss := s[lo:hi:hi]
	rs := r[lo:hi:hi]
	ps := p[lo:hi:hi]
	xs := x[lo:hi:hi]
	for i, qv := range qs {
		zi := qv + beta*zs[i]
		zs[i] = zi
		si := ws[i] + beta*ss[i]
		ss[i] = si
		pi := rs[i] + beta*ps[i]
		ps[i] = pi
		xs[i] += alpha * pi
		ri := rs[i] - alpha*si
		rs[i] = ri
		wi := ws[i] - alpha*zi
		ws[i] = wi
		gamma += ri * ri
		delta += wi * ri
	}
	return gamma, delta
}

// XpbyDotNormRange is XpbyNormRange additionally fused with the partial
// inner product Σ out[i]·w[i] against a third vector — the BiCGStab
// phase-3 kernel g = s - ω t with both <g, r̂0> and <g, g> in one pass.
//
//due:hotpath
func XpbyDotNormRange(x []float64, beta float64, y, out, w []float64, lo, hi int) (ow, oo float64) {
	xs := x[lo:hi]
	ys := y[lo:hi:hi]
	os := out[lo:hi:hi]
	ws := w[lo:hi:hi]
	for i, v := range xs {
		u := v + beta*ys[i]
		os[i] = u
		ow += u * ws[i]
		oo += u * u
	}
	return ow, oo
}
