package sparse

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	if a == b {
		return true
	}
	d := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	return d <= tol*math.Max(scale, 1)
}

func TestDot(t *testing.T) {
	x := []float64{1, 2, 3}
	y := []float64{4, -5, 6}
	if got := Dot(x, y); got != 1*4-2*5+3*6 {
		t.Fatalf("Dot = %v, want 12", got)
	}
}

func TestDotEmpty(t *testing.T) {
	if got := Dot(nil, nil); got != 0 {
		t.Fatalf("Dot(nil,nil) = %v, want 0", got)
	}
}

func TestDotMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	Dot([]float64{1}, []float64{1, 2})
}

func TestDotRangeSumsToDot(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x := make([]float64, 1000)
	y := make([]float64, 1000)
	for i := range x {
		x[i], y[i] = rng.NormFloat64(), rng.NormFloat64()
	}
	var s float64
	for lo := 0; lo < len(x); lo += 137 {
		hi := lo + 137
		if hi > len(x) {
			hi = len(x)
		}
		s += DotRange(x, y, lo, hi)
	}
	if !almostEqual(s, Dot(x, y), 1e-12) {
		t.Fatalf("partial dots %v != full dot %v", s, Dot(x, y))
	}
}

func TestAxpy(t *testing.T) {
	x := []float64{1, 2, 3}
	y := []float64{10, 20, 30}
	Axpy(2, x, y)
	want := []float64{12, 24, 36}
	for i := range y {
		if y[i] != want[i] {
			t.Fatalf("Axpy[%d] = %v, want %v", i, y[i], want[i])
		}
	}
}

func TestAxpyRangeOnlyTouchesRange(t *testing.T) {
	x := []float64{1, 1, 1, 1}
	y := []float64{0, 0, 0, 0}
	AxpyRange(5, x, y, 1, 3)
	want := []float64{0, 5, 5, 0}
	for i := range y {
		if y[i] != want[i] {
			t.Fatalf("AxpyRange[%d] = %v, want %v", i, y[i], want[i])
		}
	}
}

func TestXpbyMatchesFormula(t *testing.T) {
	x := []float64{1, 2}
	y := []float64{3, 4}
	Xpby(x, 10, y)
	if y[0] != 31 || y[1] != 42 {
		t.Fatalf("Xpby = %v, want [31 42]", y)
	}
}

func TestXpbyOutLeavesInputs(t *testing.T) {
	x := []float64{1, 2}
	y := []float64{3, 4}
	out := make([]float64, 2)
	XpbyOut(x, 2, y, out)
	if out[0] != 7 || out[1] != 10 {
		t.Fatalf("XpbyOut = %v, want [7 10]", out)
	}
	if x[0] != 1 || y[0] != 3 {
		t.Fatal("XpbyOut modified inputs")
	}
}

func TestAxpy2MatchesTwoAxpys(t *testing.T) {
	x1 := []float64{1, 2}
	x2 := []float64{3, 4}
	y := []float64{10, 20}
	Axpy2(2, x1, 3, x2, y) // y += 2*x1 + 3*x2
	if y[0] != 21 || y[1] != 36 {
		t.Fatalf("Axpy2 = %v, want [21 36]", y)
	}
	out := []float64{9, 9, 9}
	Axpy2Range(1, []float64{1, 1, 1}, 1, []float64{2, 2, 2}, out, 1, 2)
	if out[0] != 9 || out[1] != 12 || out[2] != 9 {
		t.Fatalf("Axpy2Range = %v", out)
	}
}

func TestXpbyzOut(t *testing.T) {
	x := []float64{1, 2}
	y := []float64{3, 4}
	z := []float64{5, 6}
	out := make([]float64, 2)
	XpbyzOut(x, 2, y, 0.5, z, out) // out = x + 2*(y - 0.5*z)
	if out[0] != 2 || out[1] != 4 {
		t.Fatalf("XpbyzOut = %v, want [2 4]", out)
	}
	// Aliased out == y: the BiCGStab in-place direction update
	// d = g + beta*(d - omega*q) must stay elementwise-safe.
	d := []float64{3, 4}
	XpbyzOut(x, 2, d, 0.5, z, d)
	if d[0] != 2 || d[1] != 4 {
		t.Fatalf("aliased XpbyzOut = %v, want [2 4]", d)
	}
}

func TestXpbyOutRange(t *testing.T) {
	x := []float64{1, 1, 1}
	y := []float64{2, 2, 2}
	out := []float64{9, 9, 9}
	XpbyOutRange(x, 3, y, out, 1, 2)
	if out[0] != 9 || out[1] != 7 || out[2] != 9 {
		t.Fatalf("XpbyOutRange = %v", out)
	}
}

func TestNorm2(t *testing.T) {
	if got := Norm2([]float64{3, 4}); !almostEqual(got, 5, 1e-15) {
		t.Fatalf("Norm2 = %v, want 5", got)
	}
}

func TestNorm2Zero(t *testing.T) {
	if got := Norm2([]float64{0, 0, 0}); got != 0 {
		t.Fatalf("Norm2 zeros = %v", got)
	}
	if got := Norm2(nil); got != 0 {
		t.Fatalf("Norm2 nil = %v", got)
	}
}

func TestNorm2NoOverflow(t *testing.T) {
	big := math.MaxFloat64 / 2
	got := Norm2([]float64{big, big})
	if math.IsInf(got, 0) || math.IsNaN(got) {
		t.Fatalf("Norm2 overflowed: %v", got)
	}
	want := big * math.Sqrt2
	if !almostEqual(got, want, 1e-14) {
		t.Fatalf("Norm2 = %v, want %v", got, want)
	}
}

func TestNorm2NaN(t *testing.T) {
	if got := Norm2([]float64{1, math.NaN()}); !math.IsNaN(got) {
		t.Fatalf("Norm2 with NaN = %v, want NaN", got)
	}
}

func TestNormInf(t *testing.T) {
	if got := NormInf([]float64{-7, 3, 5}); got != 7 {
		t.Fatalf("NormInf = %v, want 7", got)
	}
}

func TestSubAdd(t *testing.T) {
	a := []float64{5, 6}
	b := []float64{1, 2}
	out := make([]float64, 2)
	Sub(a, b, out)
	if out[0] != 4 || out[1] != 4 {
		t.Fatalf("Sub = %v", out)
	}
	Add(a, b, out)
	if out[0] != 6 || out[1] != 8 {
		t.Fatalf("Add = %v", out)
	}
}

func TestHasNonFinite(t *testing.T) {
	if HasNonFinite([]float64{1, 2, 3}) {
		t.Fatal("finite slice flagged")
	}
	if !HasNonFinite([]float64{1, math.NaN()}) {
		t.Fatal("NaN not flagged")
	}
	if !HasNonFinite([]float64{math.Inf(-1)}) {
		t.Fatal("-Inf not flagged")
	}
}

func TestScaleFillCopy(t *testing.T) {
	x := []float64{1, 2}
	Scale(3, x)
	if x[0] != 3 || x[1] != 6 {
		t.Fatalf("Scale = %v", x)
	}
	Fill(x, 7)
	if x[0] != 7 || x[1] != 7 {
		t.Fatalf("Fill = %v", x)
	}
	y := make([]float64, 2)
	Copy(y, x)
	if y[0] != 7 || y[1] != 7 {
		t.Fatalf("Copy = %v", y)
	}
}

// Property: Dot is symmetric and bilinear in the first argument.
func TestDotPropertySymmetry(t *testing.T) {
	f := func(a, b []float64) bool {
		n := len(a)
		if len(b) < n {
			n = len(b)
		}
		a, b = a[:n], b[:n]
		d1, d2 := Dot(a, b), Dot(b, a)
		return (math.IsNaN(d1) && math.IsNaN(d2)) || d1 == d2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Norm2(x)^2 ≈ Dot(x,x) for well-scaled inputs.
func TestNorm2PropertyMatchesDot(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(200)
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		n2 := Norm2(x)
		if !almostEqual(n2*n2, Dot(x, x), 1e-12) {
			t.Fatalf("Norm2^2 = %v, Dot = %v", n2*n2, Dot(x, x))
		}
	}
}
