package sparse

import (
	"math/rand"
	"testing"
)

// randShortRowCSR builds a square matrix with 3..12 random columns per
// row (diagonal always present): short-rowed and diagonally unstructured,
// the family the SELL-C-σ shadow exists for.
func randShortRowCSR(n int, seed int64) *CSR {
	rng := rand.New(rand.NewSource(seed))
	var tr []Triplet
	for i := 0; i < n; i++ {
		tr = append(tr, Triplet{i, i, 4 + rng.Float64()})
		extra := 2 + rng.Intn(10)
		for k := 0; k < extra; k++ {
			j := rng.Intn(n)
			tr = append(tr, Triplet{i, j, rng.NormFloat64()})
		}
	}
	return NewCSRFromTriplets(n, n, tr)
}

func randVec(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}

func TestSELLSelection(t *testing.T) {
	if got := randShortRowCSR(1000, 1).ShadowName(); got != "sell" {
		t.Fatalf("random short-row matrix: shadow %q, want sell", got)
	}
	// Stencils keep the DIA shadow.
	nx := 40
	var st []Triplet
	for i := 0; i < nx*nx; i++ {
		st = append(st, Triplet{i, i, 4})
		for _, j := range []int{i - nx, i - 1, i + 1, i + nx} {
			if j >= 0 && j < nx*nx {
				st = append(st, Triplet{i, j, -1})
			}
		}
	}
	if got := NewCSRFromTriplets(nx*nx, nx*nx, st).ShadowName(); got != "dia" {
		t.Fatalf("stencil: shadow %q, want dia", got)
	}
	// Matrices below the size floor stay on the narrow-index CSR path.
	if got := randShortRowCSR(100, 2).ShadowName(); got == "sell" {
		t.Fatalf("small matrix selected sell")
	}
	// Long rows (avg > sellMaxAvgRow) keep the row-major kernel.
	rng := rand.New(rand.NewSource(3))
	var tr []Triplet
	n := 600
	for i := 0; i < n; i++ {
		for k := 0; k < 40; k++ {
			tr = append(tr, Triplet{i, rng.Intn(n), 1 + rng.Float64()})
		}
	}
	if got := NewCSRFromTriplets(n, n, tr).ShadowName(); got == "sell" {
		t.Fatalf("long-row matrix selected sell")
	}
}

// TestSELLMatchesCSRBitwise pins the SELL kernels bitwise against both
// CSR tiers on full, page-aligned and misaligned ranges, across sizes
// that exercise partial windows and partial chunks.
func TestSELLMatchesCSRBitwise(t *testing.T) {
	for _, n := range []int{512, 513, 1000, 1289} {
		for seed := int64(0); seed < 3; seed++ {
			a := randShortRowCSR(n, 100+seed)
			if a.ShadowName() != "sell" {
				t.Fatalf("n=%d seed=%d: shadow %q", n, seed, a.ShadowName())
			}
			ref32 := a.Clone()
			ref32.DisableShadow("sell")
			refWide := a.Clone()
			refWide.DisableShadow("sell")
			refWide.DisableShadow("int32")
			x := randVec(n, 200+seed)
			w := randVec(n, 300+seed)
			ranges := [][2]int{{0, n}, {0, 64}, {64, 128}, {17, n - 23}, {n - 1, n}, {255, 257}}
			for _, rr := range ranges {
				lo, hi := rr[0], rr[1]
				if hi > n {
					hi = n
				}
				if lo >= hi {
					continue
				}
				got, want, wide := make([]float64, n), make([]float64, n), make([]float64, n)
				a.MulVecRange(x, got, lo, hi)
				ref32.MulVecRange(x, want, lo, hi)
				refWide.MulVecRange(x, wide, lo, hi)
				for i := lo; i < hi; i++ {
					if got[i] != want[i] || got[i] != wide[i] {
						t.Fatalf("n=%d seed=%d [%d,%d): row %d sell=%v csr32=%v csr=%v",
							n, seed, lo, hi, i, got[i], want[i], wide[i])
					}
				}
				gxy, gyy := a.MulVecDotRange(x, got, lo, hi)
				wxy, wyy := ref32.MulVecDotRange(x, want, lo, hi)
				if gxy != wxy || gyy != wyy {
					t.Fatalf("n=%d seed=%d [%d,%d): fused dots (%v,%v) vs (%v,%v)",
						n, seed, lo, hi, gxy, gyy, wxy, wyy)
				}
				gwy := a.MulVecDotVecRange(x, got, w, lo, hi)
				wwy := ref32.MulVecDotVecRange(x, want, w, lo, hi)
				if gwy != wwy {
					t.Fatalf("n=%d seed=%d [%d,%d): fused vec dot %v vs %v",
						n, seed, lo, hi, gwy, wwy)
				}
			}
		}
	}
}

// TestSELLRecoveryPathsUnperturbed: the exclusion kernels recovery uses
// (MulVecRangeExcludingCols/Blocks) read the wide arrays, which the SELL
// shadow must leave untouched — a recovery-style exclusion sweep on the
// shadowed matrix is bitwise the sweep on a shadow-free clone, and the
// shadowed SpMV around the healed region agrees too.
func TestSELLRecoveryPathsUnperturbed(t *testing.T) {
	n := 1000
	a := randShortRowCSR(n, 7)
	if a.ShadowName() != "sell" {
		t.Fatalf("shadow %q", a.ShadowName())
	}
	bare := a.Clone()
	bare.DisableShadow("sell")
	bare.DisableShadow("int32")
	x := randVec(n, 8)
	lo, hi := 128, 192 // the "failed page" rows
	got := make([]float64, hi-lo)
	want := make([]float64, hi-lo)
	a.MulVecRangeExcludingCols(x, got, lo, hi, 256, 320)
	bare.MulVecRangeExcludingCols(x, want, lo, hi, 256, 320)
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("ExcludingCols row %d: %v vs %v", lo+i, got[i], want[i])
		}
	}
	ex := [][2]int{{256, 320}, {600, 664}, {64, 128}}
	a.MulVecRangeExcludingBlocks(x, got, lo, hi, ex)
	bare.MulVecRangeExcludingBlocks(x, want, lo, hi, ex)
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("ExcludingBlocks row %d: %v vs %v", lo+i, got[i], want[i])
		}
	}
	// Post-heal SpMV over the failed page's rows.
	gy, wy := make([]float64, n), make([]float64, n)
	a.MulVecRange(x, gy, lo, hi)
	bare.MulVecRange(x, wy, lo, hi)
	for i := lo; i < hi; i++ {
		if gy[i] != wy[i] {
			t.Fatalf("post-heal row %d: %v vs %v", i, gy[i], wy[i])
		}
	}
}
