package sparse

// SpMM range kernels: the multi-RHS analogue of MulVecRange for the
// batched solve path. A multivector of width b is stored interleaved
// (column-major-by-row): element (i, j) lives at x[i*b+j], so one matrix
// row touches one contiguous b-wide slab per nonzero and the kernels
// read A — the memory-bandwidth bottleneck of the whole iteration —
// exactly once for all b right-hand sides.
//
// Exactness: for every column j the accumulation visits the same
// nonzeros in the same order as the corresponding SpMV kernel, starting
// from the same +0.0, so each column of the result is bitwise equal to
// an independent MulVecRange over that column (property-tested across
// all four shadows in spmm_test.go). That parity is what lets BatchCG
// reproduce b unbatched CG trajectories per column.
//
// MaxBatchWidth caps b so the SELL kernel's chunk accumulator and the
// engine's per-page partial rows can live in fixed-size stack arrays —
// the batched kernels allocate nothing, like every other hot kernel.

// MaxBatchWidth is the largest supported multivector width. Widths
// beyond this see diminishing bandwidth amortization anyway (the x slabs
// start evicting A's stream from cache).
const MaxBatchWidth = 8

// MulMatRange computes rows [lo, hi) of the product of A with the
// interleaved n-by-b multivector x, writing into the same layout in y:
// y[i*b+j] = sum_k A[i][k] * x[k*b+j]. Dispatches across the same
// shadow tiers as MulVecRange.
//
//due:hotpath
func (a *CSR) MulMatRange(x, y []float64, b, lo, hi int) {
	if b == 1 {
		a.MulVecRange(x, y, lo, hi)
		return
	}
	if a.diaOffs != nil {
		a.mulMatRangeDIA(x, y, b, lo, hi)
		return
	}
	if a.sellPtr != nil {
		a.mulMatRangeSELL(x, y, b, lo, hi)
		return
	}
	if a.cols32 != nil {
		a.mulMatRange32(x, y, b, lo, hi)
		return
	}
	rp := a.RowPtr
	for i := lo; i < hi; i++ {
		row := rp[i]
		cols := a.Cols[row:rp[i+1]]
		vals := a.Vals[row:rp[i+1]]
		yr := y[i*b : i*b+b : i*b+b]
		for j := range yr {
			yr[j] = 0
		}
		for k, c := range cols {
			v := vals[k]
			xr := x[c*b : c*b+b : c*b+b]
			for j, xv := range xr {
				yr[j] += v * xv
			}
		}
	}
}

//due:hotpath
func (a *CSR) mulMatRange32(x, y []float64, b, lo, hi int) {
	switch b {
	case 4:
		a.mulMatRange32W4(x, y, lo, hi)
		return
	case 8:
		a.mulMatRange32W8(x, y, lo, hi)
		return
	}
	rp := a.rowPtr32
	for i := lo; i < hi; i++ {
		row := rp[i]
		cols := a.cols32[row:rp[i+1]]
		vals := a.Vals[row:rp[i+1]]
		yr := y[i*b : i*b+b : i*b+b]
		for j := range yr {
			yr[j] = 0
		}
		for k, c := range cols {
			v := vals[k]
			ci := int(c) * b
			xr := x[ci : ci+b : ci+b]
			for j, xv := range xr {
				yr[j] += v * xv
			}
		}
	}
}

// mulMatRange32W4/W8 are the width-specialized tiers: with b a compile-
// time constant the slab becomes a fixed-size array access — one bounds
// check per nonzero instead of per element, and a fully unrolled
// accumulate. Column j's adds keep the exact in-row order of the
// generic loop, so the bitwise-parity invariant is untouched.
//
//due:hotpath
func (a *CSR) mulMatRange32W4(x, y []float64, lo, hi int) {
	const b = 4
	rp := a.rowPtr32
	for i := lo; i < hi; i++ {
		row := rp[i]
		cols := a.cols32[row:rp[i+1]]
		vals := a.Vals[row:rp[i+1]]
		var acc [b]float64
		for k, c := range cols {
			v := vals[k]
			xr := (*[b]float64)(x[int(c)*b:])
			acc[0] += v * xr[0]
			acc[1] += v * xr[1]
			acc[2] += v * xr[2]
			acc[3] += v * xr[3]
		}
		*(*[b]float64)(y[i*b:]) = acc
	}
}

//due:hotpath
func (a *CSR) mulMatRange32W8(x, y []float64, lo, hi int) {
	const b = 8
	rp := a.rowPtr32
	for i := lo; i < hi; i++ {
		row := rp[i]
		cols := a.cols32[row:rp[i+1]]
		vals := a.Vals[row:rp[i+1]]
		var acc [b]float64
		for k, c := range cols {
			v := vals[k]
			xr := (*[b]float64)(x[int(c)*b:])
			acc[0] += v * xr[0]
			acc[1] += v * xr[1]
			acc[2] += v * xr[2]
			acc[3] += v * xr[3]
			acc[4] += v * xr[4]
			acc[5] += v * xr[5]
			acc[6] += v * xr[6]
			acc[7] += v * xr[7]
		}
		*(*[b]float64)(y[i*b:]) = acc
	}
}

// diaBlockMulMat is diaBlockMul over an interleaved multivector: zero the
// y block, then stream each diagonal (ascending offsets == ascending
// in-row column order, the bitwise-parity invariant) across it.
//
//due:hotpath
func (a *CSR) diaBlockMulMat(x, y []float64, b, b0, b1, n int) {
	switch b {
	case 4:
		a.diaBlockMulMat4(x, y, b0, b1, n)
		return
	case 8:
		a.diaBlockMulMat8(x, y, b0, b1, n)
		return
	}
	yb := y[b0*b : b1*b]
	for i := range yb {
		yb[i] = 0
	}
	for d, o := range a.diaOffs {
		i0, i1 := b0, b1
		if o < 0 && -o > i0 {
			i0 = -o
		}
		if o > 0 && n-o < i1 {
			i1 = n - o
		}
		if i0 >= i1 {
			continue
		}
		vv := a.diaVals[d][i0:i1]
		xx := x[(i0+o)*b : (i1+o)*b : (i1+o)*b]
		yy := y[i0*b : i1*b : i1*b]
		for k, v := range vv {
			xr := xx[k*b : k*b+b : k*b+b]
			yr := yy[k*b : k*b+b : k*b+b]
			for j, xv := range xr {
				yr[j] += v * xv
			}
		}
	}
}

// diaBlockMulMat4/8 are the width-specialized diagonal streams: fixed-
// size array views give one bounds check per diagonal element and an
// unrolled slab update, preserving per-column add order exactly.
//
//due:hotpath
func (a *CSR) diaBlockMulMat4(x, y []float64, b0, b1, n int) {
	const b = 4
	yb := y[b0*b : b1*b]
	for i := range yb {
		yb[i] = 0
	}
	for d, o := range a.diaOffs {
		i0, i1 := b0, b1
		if o < 0 && -o > i0 {
			i0 = -o
		}
		if o > 0 && n-o < i1 {
			i1 = n - o
		}
		if i0 >= i1 {
			continue
		}
		vv := a.diaVals[d][i0:i1]
		xx := x[(i0+o)*b:]
		yy := y[i0*b:]
		for k, v := range vv {
			xr := (*[b]float64)(xx[k*b:])
			yr := (*[b]float64)(yy[k*b:])
			yr[0] += v * xr[0]
			yr[1] += v * xr[1]
			yr[2] += v * xr[2]
			yr[3] += v * xr[3]
		}
	}
}

//due:hotpath
func (a *CSR) diaBlockMulMat8(x, y []float64, b0, b1, n int) {
	const b = 8
	yb := y[b0*b : b1*b]
	for i := range yb {
		yb[i] = 0
	}
	for d, o := range a.diaOffs {
		i0, i1 := b0, b1
		if o < 0 && -o > i0 {
			i0 = -o
		}
		if o > 0 && n-o < i1 {
			i1 = n - o
		}
		if i0 >= i1 {
			continue
		}
		vv := a.diaVals[d][i0:i1]
		xx := x[(i0+o)*b:]
		yy := y[i0*b:]
		for k, v := range vv {
			xr := (*[b]float64)(xx[k*b:])
			yr := (*[b]float64)(yy[k*b:])
			yr[0] += v * xr[0]
			yr[1] += v * xr[1]
			yr[2] += v * xr[2]
			yr[3] += v * xr[3]
			yr[4] += v * xr[4]
			yr[5] += v * xr[5]
			yr[6] += v * xr[6]
			yr[7] += v * xr[7]
		}
	}
}

//due:hotpath
func (a *CSR) mulMatRangeDIA(x, y []float64, b, lo, hi int) {
	n := a.N
	for b0 := lo; b0 < hi; b0 += diaBlock {
		b1 := b0 + diaBlock
		if b1 > hi {
			b1 = hi
		}
		a.diaBlockMulMat(x, y, b, b0, b1, n)
	}
}

// sellChunkMat accumulates the per-lane row slabs of chunk c into acc
// (lane l, column j at acc[l*b+j]): the dense sweep / guarded ragged
// tail structure of sellChunk with a b-wide inner slab. Per (lane,
// column) the adds happen in j-slot order — the scalar kernel's order.
//
//due:hotpath
func (a *CSR) sellChunkMat(x []float64, c, b int, acc *[sellC * MaxBatchWidth]float64) {
	base := int(a.sellPtr[c])
	width := (int(a.sellPtr[c+1]) - base) / sellC
	lens := a.sellLens[c*sellC : (c+1)*sellC]
	minL := int(a.sellMin[c])
	vals := a.sellVals[base : base+width*sellC]
	cols := a.sellCols[base : base+width*sellC]
	av := acc[: sellC*b : sellC*b]
	for l := range av {
		av[l] = 0
	}
	k := 0
	for j := 0; j < minL; j++ {
		for l := 0; l < sellC; l++ {
			v := vals[k]
			ci := int(cols[k]) * b
			xr := x[ci : ci+b : ci+b]
			ar := av[l*b : l*b+b : l*b+b]
			for jb, xv := range xr {
				ar[jb] += v * xv
			}
			k++
		}
	}
	for j := minL; j < width; j++ {
		for l := 0; l < sellC; l++ {
			if int32(j) < lens[l] {
				v := vals[k]
				ci := int(cols[k]) * b
				xr := x[ci : ci+b : ci+b]
				ar := av[l*b : l*b+b : l*b+b]
				for jb, xv := range xr {
					ar[jb] += v * xv
				}
			}
			k++
		}
	}
}

//due:hotpath
func (a *CSR) mulMatRangeSELL(x, y []float64, b, lo, hi int) {
	w0, w1 := lo/sellSigma, (hi-1)/sellSigma
	for w := w0; w <= w1; w++ {
		wlo, whi := w*sellSigma, (w+1)*sellSigma
		if whi > a.N {
			whi = a.N
		}
		full := lo <= wlo && whi <= hi
		for c := int(a.sellWin[w]); c < int(a.sellWin[w+1]); c++ {
			var acc [sellC * MaxBatchWidth]float64
			a.sellChunkMat(x, c, b, &acc)
			rows := a.sellRows[c*sellC : (c+1)*sellC]
			if full {
				for l, r := range rows {
					if r >= 0 {
						copy(y[int(r)*b:int(r)*b+b], acc[l*b:l*b+b])
					}
				}
				continue
			}
			for l, r := range rows {
				if ri := int(r); r >= 0 && ri >= lo && ri < hi {
					copy(y[ri*b:ri*b+b], acc[l*b:l*b+b])
				}
			}
		}
	}
}

// MulMatDotRange is the fused SpMM + per-column block-dot kernel, the
// batch analogue of MulVecDotRange: on top of y[lo:hi) = (A·x)[lo:hi) it
// accumulates, per column j, xy[j] += <x_j, y_j> and yy[j] += <y_j, y_j>
// over the range. Callers pass zeroed (or partial-sum) xy/yy of length
// b. Each column's reduction order matches the scalar fused kernel.
//
//due:hotpath
func (a *CSR) MulMatDotRange(x, y []float64, b, lo, hi int, xy, yy []float64) {
	if a.diaOffs != nil {
		a.mulMatDotRangeDIA(x, y, b, lo, hi, xy, yy)
		return
	}
	if a.sellPtr != nil {
		a.mulMatDotRangeSELL(x, y, b, lo, hi, xy, yy)
		return
	}
	if a.cols32 != nil {
		a.mulMatDotRange32(x, y, b, lo, hi, xy, yy)
		return
	}
	rp := a.RowPtr
	xys := xy[:b:b]
	yys := yy[:b:b]
	for i := lo; i < hi; i++ {
		row := rp[i]
		cols := a.Cols[row:rp[i+1]]
		vals := a.Vals[row:rp[i+1]]
		yr := y[i*b : i*b+b : i*b+b]
		for j := range yr {
			yr[j] = 0
		}
		for k, c := range cols {
			v := vals[k]
			xr := x[c*b : c*b+b : c*b+b]
			for j, xv := range xr {
				yr[j] += v * xv
			}
		}
		xi := x[i*b : i*b+b : i*b+b]
		for j, u := range yr {
			xys[j] += xi[j] * u
			yys[j] += u * u
		}
	}
}

//due:hotpath
func (a *CSR) mulMatDotRange32(x, y []float64, b, lo, hi int, xy, yy []float64) {
	rp := a.rowPtr32
	xys := xy[:b:b]
	yys := yy[:b:b]
	for i := lo; i < hi; i++ {
		row := rp[i]
		cols := a.cols32[row:rp[i+1]]
		vals := a.Vals[row:rp[i+1]]
		yr := y[i*b : i*b+b : i*b+b]
		for j := range yr {
			yr[j] = 0
		}
		for k, c := range cols {
			v := vals[k]
			ci := int(c) * b
			xr := x[ci : ci+b : ci+b]
			for j, xv := range xr {
				yr[j] += v * xv
			}
		}
		xi := x[i*b : i*b+b : i*b+b]
		for j, u := range yr {
			xys[j] += xi[j] * u
			yys[j] += u * u
		}
	}
}

// mulMatDotRangeDIA takes the per-column partials in a second pass over
// each block while it is still L1-hot, in ascending-row order — the
// fused-kernel discipline shared with the scalar DIA shadow.
//
//due:hotpath
func (a *CSR) mulMatDotRangeDIA(x, y []float64, b, lo, hi int, xy, yy []float64) {
	n := a.N
	xys := xy[:b:b]
	yys := yy[:b:b]
	for b0 := lo; b0 < hi; b0 += diaBlock {
		b1 := b0 + diaBlock
		if b1 > hi {
			b1 = hi
		}
		a.diaBlockMulMat(x, y, b, b0, b1, n)
		xb := x[b0*b : b1*b]
		yb := y[b0*b : b1*b : b1*b]
		j := 0 // rolling column slot: avoids a div per element
		for i, v := range xb {
			u := yb[i]
			xys[j] += v * u
			yys[j] += u * u
			if j++; j == b {
				j = 0
			}
		}
	}
}

//due:hotpath
func (a *CSR) mulMatDotRangeSELL(x, y []float64, b, lo, hi int, xy, yy []float64) {
	w0, w1 := lo/sellSigma, (hi-1)/sellSigma
	xys := xy[:b:b]
	yys := yy[:b:b]
	for w := w0; w <= w1; w++ {
		wlo, whi := w*sellSigma, (w+1)*sellSigma
		if whi > a.N {
			whi = a.N
		}
		b0, b1 := max(lo, wlo), min(hi, whi)
		a.mulMatRangeSELL(x, y, b, b0, b1)
		xb := x[b0*b : b1*b]
		yb := y[b0*b : b1*b : b1*b]
		j := 0 // rolling column slot: avoids a div per element
		for i, v := range xb {
			u := yb[i]
			xys[j] += v * u
			yys[j] += u * u
			if j++; j == b {
				j = 0
			}
		}
	}
}

// MulMatRangeExcludingCols is the recovery-side SpMM: for rows in
// [lo, hi) it computes the product excluding columns [exLo, exHi), into
// the COMPACT interleaved output y[(i-lo)*b+j]. The batch analogue of
// MulVecRangeExcludingCols, used to rebuild the off-block right-hand
// sides of the forward/inverse relations for all b columns in one sweep
// of A's rows. Generic arrays only — recovery runs off the hot path.
//
//due:hotpath
func (a *CSR) MulMatRangeExcludingCols(x, y []float64, b, lo, hi, exLo, exHi int) {
	rp := a.RowPtr
	for i := lo; i < hi; i++ {
		row := rp[i]
		cols := a.Cols[row:rp[i+1]]
		vals := a.Vals[row:rp[i+1]]
		yr := y[(i-lo)*b : (i-lo)*b+b : (i-lo)*b+b]
		for j := range yr {
			yr[j] = 0
		}
		for k, c := range cols {
			if c >= exLo && c < exHi {
				continue
			}
			v := vals[k]
			xr := x[c*b : c*b+b : c*b+b]
			for j, xv := range xr {
				yr[j] += v * xv
			}
		}
	}
}
