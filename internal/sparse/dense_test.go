package sparse

import (
	"math"
	"math/rand"
	"testing"
)

// randomSPDDense builds a random dense SPD matrix M = Bᵀ B + n·I.
func randomSPDDense(n int, rng *rand.Rand) *Dense {
	b := NewDense(n, n)
	for i := range b.Data {
		b.Data[i] = rng.NormFloat64()
	}
	m := NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var s float64
			for k := 0; k < n; k++ {
				s += b.At(k, i) * b.At(k, j)
			}
			m.Set(i, j, s)
		}
	}
	for i := 0; i < n; i++ {
		m.Add(i, i, float64(n))
	}
	return m
}

func TestCholeskySolve(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 5, 17, 64} {
		m := randomSPDDense(n, rng)
		want := make([]float64, n)
		for i := range want {
			want[i] = rng.NormFloat64()
		}
		b := make([]float64, n)
		m.MulVec(want, b)
		c, err := NewCholesky(m)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		c.Solve(b)
		for i := range b {
			if !almostEqual(b[i], want[i], 1e-9) {
				t.Fatalf("n=%d: x[%d] = %v, want %v", n, i, b[i], want[i])
			}
		}
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	m := NewDense(2, 2)
	m.Set(0, 0, 1)
	m.Set(1, 1, -1)
	if _, err := NewCholesky(m); err == nil {
		t.Fatal("Cholesky accepted indefinite matrix")
	}
}

func TestCholeskyRejectsNonSquare(t *testing.T) {
	if _, err := NewCholesky(NewDense(2, 3)); err == nil {
		t.Fatal("Cholesky accepted non-square")
	}
}

func TestLUSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{1, 3, 10, 40} {
		m := NewDense(n, n)
		for i := range m.Data {
			m.Data[i] = rng.NormFloat64()
		}
		for i := 0; i < n; i++ {
			m.Add(i, i, float64(2*n)) // well-conditioned
		}
		want := make([]float64, n)
		for i := range want {
			want[i] = rng.NormFloat64()
		}
		b := make([]float64, n)
		m.MulVec(want, b)
		f, err := NewLU(m)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		got := f.Solve(b)
		for i := range got {
			if !almostEqual(got[i], want[i], 1e-9) {
				t.Fatalf("n=%d: x[%d] = %v, want %v", n, i, got[i], want[i])
			}
		}
	}
}

func TestLUPivots(t *testing.T) {
	// Zero on the (0,0) entry requires pivoting.
	m := NewDense(2, 2)
	m.Set(0, 0, 0)
	m.Set(0, 1, 1)
	m.Set(1, 0, 1)
	m.Set(1, 1, 0)
	f, err := NewLU(m)
	if err != nil {
		t.Fatal(err)
	}
	x := f.Solve([]float64{3, 5})
	if !almostEqual(x[0], 5, 1e-14) || !almostEqual(x[1], 3, 1e-14) {
		t.Fatalf("x = %v, want [5 3]", x)
	}
}

func TestLUSingular(t *testing.T) {
	m := NewDense(2, 2)
	m.Set(0, 0, 1)
	m.Set(0, 1, 2)
	m.Set(1, 0, 2)
	m.Set(1, 1, 4)
	if _, err := NewLU(m); err == nil {
		t.Fatal("LU accepted singular matrix")
	}
}

func TestLUDet(t *testing.T) {
	m := NewDense(2, 2)
	m.Set(0, 0, 2)
	m.Set(0, 1, 1)
	m.Set(1, 0, 1)
	m.Set(1, 1, 3)
	f, err := NewLU(m)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(f.Det(), 5, 1e-12) {
		t.Fatalf("Det = %v, want 5", f.Det())
	}
}

func TestQRLeastSquaresExact(t *testing.T) {
	// Square nonsingular system: least squares equals exact solve.
	rng := rand.New(rand.NewSource(3))
	n := 12
	m := NewDense(n, n)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	for i := 0; i < n; i++ {
		m.Add(i, i, float64(2*n))
	}
	want := make([]float64, n)
	for i := range want {
		want[i] = rng.NormFloat64()
	}
	b := make([]float64, n)
	m.MulVec(want, b)
	q, err := NewQR(m)
	if err != nil {
		t.Fatal(err)
	}
	got, err := q.SolveLeastSquares(b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if !almostEqual(got[i], want[i], 1e-8) {
			t.Fatalf("x[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestQROverdetermined(t *testing.T) {
	// Fit y = 2x + 1 with noise-free data: residual zero.
	xs := []float64{0, 1, 2, 3, 4}
	m := NewDense(len(xs), 2)
	b := make([]float64, len(xs))
	for i, x := range xs {
		m.Set(i, 0, x)
		m.Set(i, 1, 1)
		b[i] = 2*x + 1
	}
	q, err := NewQR(m)
	if err != nil {
		t.Fatal(err)
	}
	coef, err := q.SolveLeastSquares(b)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(coef[0], 2, 1e-12) || !almostEqual(coef[1], 1, 1e-12) {
		t.Fatalf("coef = %v, want [2 1]", coef)
	}
}

func TestQRResidualOrthogonality(t *testing.T) {
	// The least-squares residual must be orthogonal to the column space.
	rng := rand.New(rand.NewSource(4))
	m, n := 20, 6
	a := NewDense(m, n)
	for i := range a.Data {
		a.Data[i] = rng.NormFloat64()
	}
	b := make([]float64, m)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	q, err := NewQR(a)
	if err != nil {
		t.Fatal(err)
	}
	x, err := q.SolveLeastSquares(b)
	if err != nil {
		t.Fatal(err)
	}
	ax := make([]float64, m)
	a.MulVec(x, ax)
	res := make([]float64, m)
	Sub(b, ax, res)
	// Aᵀ r should be ~ 0.
	for j := 0; j < n; j++ {
		var s float64
		for i := 0; i < m; i++ {
			s += a.At(i, j) * res[i]
		}
		if math.Abs(s) > 1e-10 {
			t.Fatalf("column %d not orthogonal to residual: %v", j, s)
		}
	}
}

func TestQRRejectsUnderdetermined(t *testing.T) {
	if _, err := NewQR(NewDense(2, 3)); err == nil {
		t.Fatal("QR accepted m < n")
	}
}

func TestFactorizeBlockPrefersCholeskyThenFallsBack(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	spd := randomSPDDense(8, rng)
	s, err := FactorizeBlock(spd, true)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.(cholSolver); !ok {
		t.Fatalf("SPD block solver is %T, want cholSolver", s)
	}
	// Non-symmetric block with spd=true must fall back to LU.
	m := NewDense(2, 2)
	m.Set(0, 0, 0)
	m.Set(0, 1, 1)
	m.Set(1, 0, 1)
	m.Set(1, 1, 0)
	s, err = FactorizeBlock(m, true)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.(luSolver); !ok {
		t.Fatalf("indefinite block solver is %T, want luSolver", s)
	}
	// Singular block falls all the way to QR.
	sing := NewDense(2, 2)
	sing.Set(0, 0, 1)
	sing.Set(0, 1, 1)
	sing.Set(1, 0, 1)
	sing.Set(1, 1, 1)
	s, err = FactorizeBlock(sing, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.(qrSolver); !ok {
		t.Fatalf("singular block solver is %T, want qrSolver", s)
	}
}

func TestBlockSolverSolveInPlaceAgreement(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	n := 16
	spd := randomSPDDense(n, rng)
	want := make([]float64, n)
	for i := range want {
		want[i] = rng.NormFloat64()
	}
	rhs := make([]float64, n)
	spd.MulVec(want, rhs)
	for _, claim := range []bool{true, false} {
		r := append([]float64(nil), rhs...)
		s, err := FactorizeBlock(spd, claim)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.SolveInPlace(r); err != nil {
			t.Fatal(err)
		}
		for i := range r {
			if !almostEqual(r[i], want[i], 1e-8) {
				t.Fatalf("spd=%v x[%d] = %v, want %v", claim, i, r[i], want[i])
			}
		}
	}
}

func TestDenseMulVec(t *testing.T) {
	m := NewDense(2, 3)
	// [1 2 3; 4 5 6] * [1 1 1] = [6 15]
	copy(m.Data, []float64{1, 2, 3, 4, 5, 6})
	y := make([]float64, 2)
	m.MulVec([]float64{1, 1, 1}, y)
	if y[0] != 6 || y[1] != 15 {
		t.Fatalf("MulVec = %v", y)
	}
}
