package sparse

// Batch vector kernels over interleaved multivectors (element (i, j) of
// a width-b multivector at x[i*b+j]): the per-column-coefficient
// analogues of the scalar range kernels, used by the batched CG
// recurrences. Per column j each kernel performs the same floating-point
// operations in the same ascending-row order as its scalar counterpart,
// so a batched recurrence with coefficients (alpha[j], beta[j]) is
// bitwise equal to b independent scalar recurrences. Ranges are ROW
// ranges [lo, hi), not element ranges.

// BatchXpbyOutRange computes, per row i in [lo, hi) and column j,
// out[i*b+j] = x[i*b+j] + beta[j]*y[i*b+j]. A column with beta[j] == 0
// takes the copy path instead — bitwise the scalar restart path, and
// safe against non-finite garbage in a retired column's y.
//
//due:hotpath
func BatchXpbyOutRange(x []float64, beta []float64, y, out []float64, b, lo, hi int) {
	xs := x[lo*b : hi*b]
	ys := y[lo*b : hi*b : hi*b]
	os := out[lo*b : hi*b : hi*b]
	bs := beta[:b:b]
	j := 0 // rolling column slot: avoids a div per element
	for i, v := range xs {
		if bj := bs[j]; bj != 0 {
			os[i] = v + bj*ys[i]
		} else {
			os[i] = v
		}
		if j++; j == b {
			j = 0
		}
	}
}

// BatchAxpyRange computes y[i*b+j] += alpha[j]*x[i*b+j] for rows in
// [lo, hi).
//
//due:hotpath
func BatchAxpyRange(alpha []float64, x, y []float64, b, lo, hi int) {
	xs := x[lo*b : hi*b]
	ys := y[lo*b : hi*b : hi*b]
	as := alpha[:b:b]
	j := 0 // rolling column slot: avoids a div per element
	for i, v := range xs {
		ys[i] += as[j] * v
		if j++; j == b {
			j = 0
		}
	}
}

// BatchAxpyDotRange fuses the per-column axpy with the per-column
// squared-norm partial of the UPDATED values: for rows in [lo, hi),
// y[i*b+j] += alpha[j]*x[i*b+j] and yy[j] accumulates the new y² — the
// batch analogue of AxpyDotRange (the resilient residual update).
//
//due:hotpath
func BatchAxpyDotRange(alpha []float64, x, y []float64, b, lo, hi int, yy []float64) {
	xs := x[lo*b : hi*b]
	ys := y[lo*b : hi*b : hi*b]
	as := alpha[:b:b]
	yys := yy[:b:b]
	j := 0 // rolling column slot: avoids a div per element
	for i, v := range xs {
		u := ys[i] + as[j]*v
		ys[i] = u
		yys[j] += u * u
		if j++; j == b {
			j = 0
		}
	}
}

// BatchDotRange accumulates the per-column partial inner products of two
// interleaved multivectors over rows [lo, hi): out[j] += <x_j, y_j>.
//
//due:hotpath
func BatchDotRange(x, y []float64, b, lo, hi int, out []float64) {
	xs := x[lo*b : hi*b]
	ys := y[lo*b : hi*b : hi*b]
	os := out[:b:b]
	j := 0 // rolling column slot: avoids a div per element
	for i, v := range xs {
		os[j] += v * ys[i]
		if j++; j == b {
			j = 0
		}
	}
}

// GatherColumn extracts column j of an interleaved width-b multivector
// into dst (one element per row).
func GatherColumn(x []float64, b, j int, dst []float64) {
	for i := range dst {
		dst[i] = x[i*b+j]
	}
}

// ScatterColumn writes src (one element per row) into column j of an
// interleaved width-b multivector.
func ScatterColumn(src []float64, x []float64, b, j int) {
	for i, v := range src {
		x[i*b+j] = v
	}
}
