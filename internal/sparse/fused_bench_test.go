package sparse

import (
	"math/rand"
	"testing"
)

// The fused-vs-unfused microbenchmarks: each fused kernel against the
// exact composition it replaces, on a Poisson-like banded matrix sized so
// the vectors spill the L2 cache (where the single-pass structure pays).
// Run with -benchmem: the kernels themselves must never allocate.

const benchN = 1 << 16

func benchMatrix(n int) *CSR {
	// Pentadiagonal band: ~5 nnz/row like the 2D stencil analogues.
	var tr []Triplet
	for i := 0; i < n; i++ {
		tr = append(tr, Triplet{i, i, 4})
		for _, off := range []int{-2, -1, 1, 2} {
			if j := i + off; j >= 0 && j < n {
				tr = append(tr, Triplet{i, j, -1})
			}
		}
	}
	return NewCSRFromTriplets(n, n, tr)
}

func benchVec(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}

// Kernel-path attribution: the same pentadiagonal SpMV through the three
// dispatch tiers (generic wide-index CSR, narrow-index CSR, diagonal
// shadow). benchMatrix qualifies for the DIA shadow, so the *ThenDots /
// *Fused benchmarks below measure the best path; these isolate each tier.
func BenchmarkSpMVGeneric(b *testing.B) {
	a := benchMatrix(benchN)
	g := &CSR{N: a.N, M: a.M, RowPtr: a.RowPtr, Cols: a.Cols, Vals: a.Vals} // no shadows
	x, y := benchVec(benchN, 1), make([]float64, benchN)
	b.SetBytes(int64(8 * benchN))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.MulVecRange(x, y, 0, benchN)
	}
}

func BenchmarkSpMVIndex32(b *testing.B) {
	a := benchMatrix(benchN)
	c := &CSR{N: a.N, M: a.M, RowPtr: a.RowPtr, Cols: a.Cols, Vals: a.Vals}
	c.cols32, c.rowPtr32 = a.cols32, a.rowPtr32 // narrow indices, no DIA
	x, y := benchVec(benchN, 1), make([]float64, benchN)
	b.SetBytes(int64(8 * benchN))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.MulVecRange(x, y, 0, benchN)
	}
}

func BenchmarkSpMVDIA(b *testing.B) {
	a := benchMatrix(benchN) // pentadiagonal: dispatches to the DIA shadow
	x, y := benchVec(benchN, 1), make([]float64, benchN)
	b.SetBytes(int64(8 * benchN))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.MulVecRange(x, y, 0, benchN)
	}
}

func BenchmarkSpMVThenDots(b *testing.B) {
	a := benchMatrix(benchN)
	x, y := benchVec(benchN, 1), make([]float64, benchN)
	b.SetBytes(int64(8 * benchN))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.MulVecRange(x, y, 0, benchN)
		sinkF = DotRange(x, y, 0, benchN)
		sinkF += DotRange(y, y, 0, benchN)
	}
}

func BenchmarkSpMVDotFused(b *testing.B) {
	a := benchMatrix(benchN)
	x, y := benchVec(benchN, 1), make([]float64, benchN)
	b.SetBytes(int64(8 * benchN))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		xy, yy := a.MulVecDotRange(x, y, 0, benchN)
		sinkF = xy + yy
	}
}

func BenchmarkAxpyThenDot(b *testing.B) {
	x, y := benchVec(benchN, 1), benchVec(benchN, 2)
	b.SetBytes(int64(8 * benchN))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		AxpyRange(1e-9, x, y, 0, benchN)
		sinkF = DotRange(y, y, 0, benchN)
	}
}

func BenchmarkAxpyDotFused(b *testing.B) {
	x, y := benchVec(benchN, 1), benchVec(benchN, 2)
	b.SetBytes(int64(8 * benchN))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sinkF = AxpyDotRange(1e-9, x, y, 0, benchN)
	}
}

func BenchmarkXpbyThenDots(b *testing.B) {
	x, y, w := benchVec(benchN, 1), benchVec(benchN, 2), benchVec(benchN, 3)
	out := make([]float64, benchN)
	b.SetBytes(int64(8 * benchN))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		XpbyOutRange(x, -0.5, y, out, 0, benchN)
		sinkF = DotRange(out, w, 0, benchN)
		sinkF += DotRange(out, out, 0, benchN)
	}
}

func BenchmarkXpbyDotNormFused(b *testing.B) {
	x, y, w := benchVec(benchN, 1), benchVec(benchN, 2), benchVec(benchN, 3)
	out := make([]float64, benchN)
	b.SetBytes(int64(8 * benchN))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ow, oo := XpbyDotNormRange(x, -0.5, y, out, w, 0, benchN)
		sinkF = ow + oo
	}
}

func BenchmarkExcludingBlocks(b *testing.B) {
	a := benchMatrix(benchN)
	x := benchVec(benchN, 1)
	out := make([]float64, 512)
	// Five excluded pages, unsorted — the multi-DUE recovery shape.
	exclude := [][2]int{{4096, 4608}, {512, 1024}, {60000, 60512}, {2048, 2560}, {9000, 9512}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.MulVecRangeExcludingBlocks(x, out, 1024, 1536, exclude)
	}
}

var sinkF float64
