package sparse

import (
	"math/rand"
	"testing"
)

func TestBlockLayout(t *testing.T) {
	b := BlockLayout{N: 10, BlockSize: 4}
	if b.NumBlocks() != 3 {
		t.Fatalf("NumBlocks = %d, want 3", b.NumBlocks())
	}
	cases := []struct{ i, lo, hi int }{{0, 0, 4}, {1, 4, 8}, {2, 8, 10}}
	for _, c := range cases {
		lo, hi := b.Range(c.i)
		if lo != c.lo || hi != c.hi {
			t.Fatalf("Range(%d) = [%d,%d), want [%d,%d)", c.i, lo, hi, c.lo, c.hi)
		}
	}
	if b.BlockOf(0) != 0 || b.BlockOf(3) != 0 || b.BlockOf(4) != 1 || b.BlockOf(9) != 2 {
		t.Fatal("BlockOf wrong")
	}
}

func TestBlockLayoutEmpty(t *testing.T) {
	b := BlockLayout{N: 0, BlockSize: 4}
	if b.NumBlocks() != 0 {
		t.Fatalf("NumBlocks = %d, want 0", b.NumBlocks())
	}
}

func TestBlockLayoutExactMultiple(t *testing.T) {
	b := BlockLayout{N: 8, BlockSize: 4}
	if b.NumBlocks() != 2 {
		t.Fatalf("NumBlocks = %d, want 2", b.NumBlocks())
	}
	lo, hi := b.Range(1)
	if lo != 4 || hi != 8 {
		t.Fatalf("Range(1) = [%d,%d)", lo, hi)
	}
}

// spdSparse builds a symmetric positive definite sparse matrix: a 1-D
// Laplacian with a diagonal shift.
func spdSparse(n int) *CSR {
	var tr []Triplet
	for i := 0; i < n; i++ {
		tr = append(tr, Triplet{i, i, 4})
		if i > 0 {
			tr = append(tr, Triplet{i, i - 1, -1})
		}
		if i < n-1 {
			tr = append(tr, Triplet{i, i + 1, -1})
		}
	}
	return NewCSRFromTriplets(n, n, tr)
}

func TestBlockSolverCacheSolvesBlockSystem(t *testing.T) {
	n, bs := 64, 16
	a := spdSparse(n)
	layout := BlockLayout{N: n, BlockSize: bs}
	cache := NewBlockSolverCache(a, layout, true)

	rng := rand.New(rand.NewSource(1))
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	// For block 1: rhs = A_11 * x_1. Solving must return x_1.
	lo, hi := layout.Range(1)
	blk := a.DiagBlock(lo, hi)
	rhs := make([]float64, hi-lo)
	blk.MulVec(x[lo:hi], rhs)
	if err := cache.SolveDiagBlock(1, rhs); err != nil {
		t.Fatal(err)
	}
	for i := range rhs {
		if !almostEqual(rhs[i], x[lo+i], 1e-10) {
			t.Fatalf("block solve x[%d] = %v, want %v", i, rhs[i], x[lo+i])
		}
	}
}

func TestBlockSolverCacheCachesAndPrefactorizes(t *testing.T) {
	n, bs := 32, 8
	a := spdSparse(n)
	cache := NewBlockSolverCache(a, BlockLayout{N: n, BlockSize: bs}, true)
	if err := cache.Prefactorize(); err != nil {
		t.Fatal(err)
	}
	if len(cache.cache) != 4 {
		t.Fatalf("cache size = %d, want 4", len(cache.cache))
	}
	s1, err := cache.Solver(2)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := cache.Solver(2)
	if err != nil {
		t.Fatal(err)
	}
	if s1 != s2 {
		t.Fatal("Solver not cached")
	}
}

func TestSolveCoupledBlocksRecoversExactly(t *testing.T) {
	// Full-rank SPD matrix; losing two adjacent blocks and solving the
	// coupled system must reproduce the lost entries exactly, because the
	// relation g = b - Ax holds with g known.
	n, bs := 48, 8
	a := spdSparse(n)
	layout := BlockLayout{N: n, BlockSize: bs}
	cache := NewBlockSolverCache(a, layout, true)

	rng := rand.New(rand.NewSource(9))
	xTrue := make([]float64, n)
	for i := range xTrue {
		xTrue[i] = rng.NormFloat64()
	}
	b := make([]float64, n)
	a.MulVec(xTrue, b) // so that g = b - A x = 0 for xTrue

	// Lose blocks 2 and 3 of x. Build rhs_i = b_i - 0 - sum_{j not in failed} A_ij x_j.
	failed := []int{3, 2} // deliberately unsorted
	var rhs []float64
	exclude := [][2]int{}
	for _, fb := range []int{2, 3} {
		lo, hi := layout.Range(fb)
		exclude = append(exclude, [2]int{lo, hi})
	}
	for _, fb := range []int{2, 3} {
		lo, hi := layout.Range(fb)
		part := make([]float64, hi-lo)
		a.MulVecRangeExcludingBlocks(xTrue, part, lo, hi, exclude)
		for i := lo; i < hi; i++ {
			part[i-lo] = b[i] - part[i-lo]
		}
		rhs = append(rhs, part...)
	}
	order, err := cache.SolveCoupledBlocks(failed, rhs)
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != 2 || order[1] != 3 {
		t.Fatalf("order = %v, want [2 3]", order)
	}
	off := 0
	for _, fb := range order {
		lo, hi := layout.Range(fb)
		for i := lo; i < hi; i++ {
			if !almostEqual(rhs[off+i-lo], xTrue[i], 1e-9) {
				t.Fatalf("coupled recovery x[%d] = %v, want %v", i, rhs[off+i-lo], xTrue[i])
			}
		}
		off += hi - lo
	}
}

func TestSolveCoupledBlocksRejectsBadInput(t *testing.T) {
	a := spdSparse(16)
	cache := NewBlockSolverCache(a, BlockLayout{N: 16, BlockSize: 4}, true)
	if _, err := cache.SolveCoupledBlocks(nil, nil); err == nil {
		t.Fatal("accepted empty block list")
	}
	if _, err := cache.SolveCoupledBlocks([]int{1, 1}, make([]float64, 8)); err == nil {
		t.Fatal("accepted duplicate blocks")
	}
	if _, err := cache.SolveCoupledBlocks([]int{0}, make([]float64, 3)); err == nil {
		t.Fatal("accepted wrong rhs dimension")
	}
}

func TestSolveCoupledBlocksThreeBlocks(t *testing.T) {
	n, bs := 60, 10
	a := spdSparse(n)
	layout := BlockLayout{N: n, BlockSize: bs}
	cache := NewBlockSolverCache(a, layout, true)
	rng := rand.New(rand.NewSource(21))
	xTrue := make([]float64, n)
	for i := range xTrue {
		xTrue[i] = rng.NormFloat64()
	}
	b := make([]float64, n)
	a.MulVec(xTrue, b)
	blocks := []int{0, 2, 5}
	var exclude [][2]int
	for _, fb := range blocks {
		lo, hi := layout.Range(fb)
		exclude = append(exclude, [2]int{lo, hi})
	}
	var rhs []float64
	for _, fb := range blocks {
		lo, hi := layout.Range(fb)
		part := make([]float64, hi-lo)
		a.MulVecRangeExcludingBlocks(xTrue, part, lo, hi, exclude)
		for i := lo; i < hi; i++ {
			part[i-lo] = b[i] - part[i-lo]
		}
		rhs = append(rhs, part...)
	}
	order, err := cache.SolveCoupledBlocks(blocks, rhs)
	if err != nil {
		t.Fatal(err)
	}
	off := 0
	for _, fb := range order {
		lo, hi := layout.Range(fb)
		for i := lo; i < hi; i++ {
			if !almostEqual(rhs[off+i-lo], xTrue[i], 1e-8) {
				t.Fatalf("3-block recovery x[%d] = %v, want %v", i, rhs[off+i-lo], xTrue[i])
			}
		}
		off += hi - lo
	}
}
