package sparse

// SELL-C-σ kernel shadow: the sliced-ELLPACK layout (Kreutzer et al.) for
// short-row matrices whose nonzeros do NOT sit on a handful of diagonals
// (unstructured meshes, graph Laplacians) — the family the DIA shadow
// rejects. Rows are sorted by descending length inside windows of σ rows,
// then packed in chunks of C rows stored column-major: the SpMV inner
// loop walks C lanes at a time over contiguous value/index streams with
// no per-row slice headers and no per-row loop setup, which is where the
// row-major CSR kernel loses its time when rows are short. The shadow is
// built by BuildIndex32 when the matrix is square, large enough to be
// memory-bound, short-rowed on average and padded by at most 25%
// (sellMinRows / sellMaxAvgRow / sellWasteNum below — thresholds set from
// the kernels microbench so the shadow is only selected where it beats
// the narrow-index CSR kernel); DIA still wins whenever it qualifies.
//
// Exactness: each row's nonzeros occupy consecutive j-slots of its lane
// in original CSR (ascending-column) order, and the lane accumulator adds
// them in j order, so the per-row accumulation order is identical to the
// CSR kernels and the produced values match bitwise. Padding slots are
// only ever accumulated into lanes that have no backing row (their sums
// are discarded, never stored), and real lanes are guarded by their row
// length in the ragged tail — a padded +0.0 product can therefore never
// perturb a real row's sum (unlike zero-padding schemes, which break
// bitwise parity when a partial sum is -0.0). The fused dot variants take
// their partials in a second ascending-row pass over the window while it
// is still cache-hot, exactly like the DIA shadow, preserving the CSR
// reduction order bitwise.

const (
	sellC       = 8   // chunk height: lanes per chunk
	sellSigma   = 256 // sorting window, in rows
	sellMinRows = 512 // below this the matrix is cache-resident anyway
	// Average nonzeros per row above which the per-row overhead the layout
	// amortises is already negligible in the row-major kernel.
	sellMaxAvgRow = 32
	// Padding budget: padded slots may exceed nnz by at most 1/4.
	sellWasteDen = 4
)

// buildSELL populates the SELL-C-σ shadow, or clears it when the matrix
// does not qualify. Must run after buildDIA and the narrow-index build:
// DIA wins when both qualify, and the packed column indices reuse the
// int32 range check.
func (a *CSR) buildSELL() {
	a.sellPtr, a.sellWin = nil, nil
	a.sellRows, a.sellLens, a.sellMin = nil, nil, nil
	a.sellVals, a.sellCols = nil, nil
	if a.diaOffs != nil || a.cols32 == nil {
		return
	}
	n := a.N
	nnz := len(a.Vals)
	if a.N != a.M || n < sellMinRows || nnz == 0 || nnz/n > sellMaxAvgRow {
		return
	}

	nw := (n + sellSigma - 1) / sellSigma
	order := make([]int32, n)
	for i := range order {
		order[i] = int32(i)
	}
	rowLen := func(i int32) int { return a.RowPtr[i+1] - a.RowPtr[i] }
	// Per-window insertion sort by (length desc, row asc): windows are
	// small and near-sorted inputs (constant-stencil rows) cost O(σ).
	for w := 0; w < nw; w++ {
		wlo, whi := w*sellSigma, (w+1)*sellSigma
		if whi > n {
			whi = n
		}
		win := order[wlo:whi]
		for i := 1; i < len(win); i++ {
			for j := i; j > 0; j-- {
				lj, lp := rowLen(win[j]), rowLen(win[j-1])
				if lj < lp || (lj == lp && win[j] > win[j-1]) {
					break
				}
				win[j], win[j-1] = win[j-1], win[j]
			}
		}
	}

	// Size pass: chunk widths are the first (longest) lane of each chunk.
	numChunks := 0
	padded := 0
	for w := 0; w < nw; w++ {
		wlo, whi := w*sellSigma, (w+1)*sellSigma
		if whi > n {
			whi = n
		}
		for c := wlo; c < whi; c += sellC {
			padded += rowLen(order[c]) * sellC
			numChunks++
		}
	}
	if padded > nnz+nnz/sellWasteDen {
		return
	}

	a.sellPtr = make([]int32, numChunks+1)
	a.sellWin = make([]int32, nw+1)
	a.sellRows = make([]int32, numChunks*sellC)
	a.sellLens = make([]int32, numChunks*sellC)
	a.sellMin = make([]int32, numChunks)
	a.sellVals = make([]float64, padded)
	a.sellCols = make([]int32, padded)

	chunk, cursor := 0, 0
	for w := 0; w < nw; w++ {
		a.sellWin[w] = int32(chunk)
		wlo, whi := w*sellSigma, (w+1)*sellSigma
		if whi > n {
			whi = n
		}
		for c := wlo; c < whi; c += sellC {
			lanes := order[c:min(c+sellC, whi)]
			width := rowLen(lanes[0])
			minL := rowLen(lanes[len(lanes)-1]) // window sorted desc
			a.sellPtr[chunk] = int32(cursor)
			a.sellMin[chunk] = int32(minL)
			for l := 0; l < sellC; l++ {
				li := chunk*sellC + l
				if l >= len(lanes) {
					a.sellRows[li], a.sellLens[li] = -1, 0
					continue
				}
				row := lanes[l]
				a.sellRows[li] = row
				a.sellLens[li] = int32(rowLen(row))
				base := a.RowPtr[row]
				for j := 0; j < rowLen(row); j++ {
					a.sellVals[cursor+j*sellC+l] = a.Vals[base+j]
					a.sellCols[cursor+j*sellC+l] = a.cols32[base+j]
				}
			}
			cursor += width * sellC
			chunk++
		}
	}
	a.sellPtr[numChunks] = int32(cursor)
	a.sellWin[nw] = int32(numChunks)
}

// sellChunk accumulates the per-lane row sums of chunk c into acc: a
// dense unguarded sweep up to the chunk's shortest real row, then a
// length-guarded ragged tail. Lanes without a backing row accumulate
// padding slots (0·x[0]) that the callers never store.
//
//due:hotpath
func (a *CSR) sellChunk(x []float64, c int, acc *[sellC]float64) {
	base := int(a.sellPtr[c])
	width := (int(a.sellPtr[c+1]) - base) / sellC
	lens := a.sellLens[c*sellC : (c+1)*sellC]
	minL := int(a.sellMin[c])
	vals := a.sellVals[base : base+width*sellC]
	cols := a.sellCols[base : base+width*sellC]
	for l := range acc {
		acc[l] = 0
	}
	k := 0
	for j := 0; j < minL; j++ {
		for l := 0; l < sellC; l++ {
			acc[l] += vals[k] * x[cols[k]]
			k++
		}
	}
	for j := minL; j < width; j++ {
		for l := 0; l < sellC; l++ {
			if int32(j) < lens[l] {
				acc[l] += vals[k] * x[cols[k]]
			}
			k++
		}
	}
}

// mulVecRangeSELL computes y[lo:hi] = (A*x)[lo:hi] from the SELL shadow.
// Chunks never cross a σ window, so only the windows at the range
// boundaries need the per-lane row-range guard on the scatter.
//
//due:hotpath
func (a *CSR) mulVecRangeSELL(x, y []float64, lo, hi int) {
	w0, w1 := lo/sellSigma, (hi-1)/sellSigma
	for w := w0; w <= w1; w++ {
		wlo, whi := w*sellSigma, (w+1)*sellSigma
		if whi > a.N {
			whi = a.N
		}
		full := lo <= wlo && whi <= hi
		for c := int(a.sellWin[w]); c < int(a.sellWin[w+1]); c++ {
			var acc [sellC]float64
			a.sellChunk(x, c, &acc)
			rows := a.sellRows[c*sellC : (c+1)*sellC]
			if full {
				for l, r := range rows {
					if r >= 0 {
						y[r] = acc[l]
					}
				}
				continue
			}
			for l, r := range rows {
				if ri := int(r); r >= 0 && ri >= lo && ri < hi {
					y[ri] = acc[l]
				}
			}
		}
	}
}

// mulVecDotRangeSELL is the fused variant: the dot partials are taken in
// a short ascending-row pass over each window while it is still hot — the
// same discipline (and bitwise the same reduction order) as the DIA and
// CSR fused kernels.
//
//due:hotpath
func (a *CSR) mulVecDotRangeSELL(x, y []float64, lo, hi int) (xy, yy float64) {
	w0, w1 := lo/sellSigma, (hi-1)/sellSigma
	for w := w0; w <= w1; w++ {
		wlo, whi := w*sellSigma, (w+1)*sellSigma
		if whi > a.N {
			whi = a.N
		}
		b0, b1 := max(lo, wlo), min(hi, whi)
		a.mulVecRangeSELL(x, y, b0, b1)
		xb := x[b0:b1]
		yb := y[b0:b1:b1]
		for i, v := range xb {
			u := yb[i]
			xy += v * u
			yy += u * u
		}
	}
	return xy, yy
}

// mulVecDotVecRangeSELL fuses the <y, w> partial instead.
//
//due:hotpath
func (a *CSR) mulVecDotVecRangeSELL(x, y, w []float64, lo, hi int) (wy float64) {
	w0, w1 := lo/sellSigma, (hi-1)/sellSigma
	for wi := w0; wi <= w1; wi++ {
		wlo, whi := wi*sellSigma, (wi+1)*sellSigma
		if whi > a.N {
			whi = a.N
		}
		b0, b1 := max(lo, wlo), min(hi, whi)
		a.mulVecRangeSELL(x, y, b0, b1)
		wb := w[b0:b1]
		yb := y[b0:b1:b1]
		for i, v := range wb {
			wy += yb[i] * v
		}
	}
	return wy
}

// ShadowName reports which kernel shadow MulVecRange dispatches to:
// "dia", "sell", "csr32" or "csr".
func (a *CSR) ShadowName() string {
	switch {
	case a.diaOffs != nil:
		return "dia"
	case a.sellPtr != nil:
		return "sell"
	case a.cols32 != nil:
		return "csr32"
	default:
		return "csr"
	}
}

// DisableShadow drops the named shadow ("dia", "sell" or "int32") so
// benchmarks and tests can compare dispatch tiers on the same matrix.
// Dropping "dia" does not resurrect a SELL shadow the DIA build
// suppressed; call BuildIndex32 variants by hand for that.
func (a *CSR) DisableShadow(name string) {
	switch name {
	case "dia":
		a.diaOffs, a.diaVals = nil, nil
	case "sell":
		a.sellPtr, a.sellWin = nil, nil
		a.sellRows, a.sellLens, a.sellMin = nil, nil, nil
		a.sellVals, a.sellCols = nil, nil
	case "int32":
		a.cols32, a.rowPtr32 = nil, nil
	}
}
