package sparse

import "testing"

func benchSpMV(b *testing.B, a *CSR) {
	x := randVec(a.N, 1)
	y := make([]float64, a.N)
	b.SetBytes(int64(a.NNZ() * 12))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.MulVecRange(x, y, 0, a.N)
	}
}

func BenchmarkSpMVShortRowSELL(b *testing.B) {
	a := randShortRowCSR(40000, 1)
	if a.ShadowName() != "sell" {
		b.Fatalf("shadow %s", a.ShadowName())
	}
	benchSpMV(b, a)
}

func BenchmarkSpMVShortRowCSR32(b *testing.B) {
	a := randShortRowCSR(40000, 1)
	a.DisableShadow("sell")
	benchSpMV(b, a)
}
