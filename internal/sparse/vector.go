// Package sparse provides the sparse and dense linear-algebra substrate for
// the resilient Krylov solvers: CSR matrices with row-range kernels suitable
// for strip-mined task decomposition, dense direct solvers for page-sized
// diagonal blocks (Cholesky, LU, QR least squares), and the vector kernels
// (dot, axpy, norms) that iterative solvers are made of.
//
// Everything operates on plain []float64 so that callers can alias pages of
// a larger allocation without copies, which is what the page-level fault
// model in internal/pagemem requires.
package sparse

import (
	"fmt"
	"math"
)

// Dot returns the inner product <x, y>. The slices must have equal length.
func Dot(x, y []float64) float64 {
	if len(x) != len(y) {
		panic(fmt.Sprintf("sparse: Dot length mismatch %d != %d", len(x), len(y)))
	}
	var s float64
	for i, v := range x {
		s += v * y[i]
	}
	return s
}

// DotRange returns the partial inner product over the half-open index range
// [lo, hi). It is the strip-mined building block for task-level reductions.
// (The hot range kernels reslice once so the inner loops run bounds-check
// free.)
//
//due:hotpath
func DotRange(x, y []float64, lo, hi int) float64 {
	xs := x[lo:hi]
	ys := y[lo:hi:hi]
	var s float64
	for i, v := range xs {
		s += v * ys[i]
	}
	return s
}

// Axpy computes y += alpha*x in place.
func Axpy(alpha float64, x, y []float64) {
	if len(x) != len(y) {
		panic(fmt.Sprintf("sparse: Axpy length mismatch %d != %d", len(x), len(y)))
	}
	for i, v := range x {
		y[i] += alpha * v
	}
}

// AxpyRange computes y[lo:hi] += alpha*x[lo:hi].
//
//due:hotpath
func AxpyRange(alpha float64, x, y []float64, lo, hi int) {
	xs := x[lo:hi]
	ys := y[lo:hi]
	for i, v := range xs {
		ys[i] += alpha * v
	}
}

// Xpby computes y = x + beta*y in place (the CG direction update d = g + beta*d).
func Xpby(x []float64, beta float64, y []float64) {
	if len(x) != len(y) {
		panic(fmt.Sprintf("sparse: Xpby length mismatch %d != %d", len(x), len(y)))
	}
	for i, v := range x {
		y[i] = v + beta*y[i]
	}
}

// XpbyRange computes y[lo:hi] = x[lo:hi] + beta*y[lo:hi].
//
//due:hotpath
func XpbyRange(x []float64, beta float64, y []float64, lo, hi int) {
	xs := x[lo:hi]
	ys := y[lo:hi]
	for i, v := range xs {
		ys[i] = v + beta*ys[i]
	}
}

// XpbyOut computes out = x + beta*y, leaving x and y untouched. It is the
// double-buffered direction update of Listing 2: d1 = g + beta*d2.
func XpbyOut(x []float64, beta float64, y, out []float64) {
	if len(x) != len(y) || len(x) != len(out) {
		panic("sparse: XpbyOut length mismatch")
	}
	for i, v := range x {
		out[i] = v + beta*y[i]
	}
}

// XpbyOutRange computes out[lo:hi] = x[lo:hi] + beta*y[lo:hi].
//
//due:hotpath
func XpbyOutRange(x []float64, beta float64, y, out []float64, lo, hi int) {
	xs := x[lo:hi]
	ys := y[lo:hi:hi]
	os := out[lo:hi:hi]
	for i, v := range xs {
		os[i] = v + beta*ys[i]
	}
}

// Axpy2 computes y += a1*x1 + a2*x2 in place (the BiCGStab iterate update
// x += αd + ωs).
func Axpy2(a1 float64, x1 []float64, a2 float64, x2, y []float64) {
	if len(x1) != len(y) || len(x2) != len(y) {
		panic("sparse: Axpy2 length mismatch")
	}
	Axpy2Range(a1, x1, a2, x2, y, 0, len(y))
}

// Axpy2Range computes y[lo:hi] += a1*x1[lo:hi] + a2*x2[lo:hi].
//
//due:hotpath
func Axpy2Range(a1 float64, x1 []float64, a2 float64, x2, y []float64, lo, hi int) {
	x1s := x1[lo:hi]
	x2s := x2[lo:hi:hi]
	ys := y[lo:hi:hi]
	for i, v := range x1s {
		ys[i] += a1*v + a2*x2s[i]
	}
}

// XpbyzOut computes out = x + beta*(y - omega*z), leaving the inputs
// untouched (the BiCGStab direction update d = g + β(d' - ωq)).
func XpbyzOut(x []float64, beta float64, y []float64, omega float64, z, out []float64) {
	if len(x) != len(y) || len(x) != len(z) || len(x) != len(out) {
		panic("sparse: XpbyzOut length mismatch")
	}
	XpbyzOutRange(x, beta, y, omega, z, out, 0, len(out))
}

// XpbyzOutRange computes out[lo:hi] = x[lo:hi] + beta*(y[lo:hi] - omega*z[lo:hi]).
//
//due:hotpath
func XpbyzOutRange(x []float64, beta float64, y []float64, omega float64, z, out []float64, lo, hi int) {
	xs := x[lo:hi]
	ys := y[lo:hi:hi]
	zs := z[lo:hi:hi]
	os := out[lo:hi:hi]
	for i, v := range xs {
		os[i] = v + beta*(ys[i]-omega*zs[i])
	}
}

// Scale multiplies x by alpha in place.
func Scale(alpha float64, x []float64) {
	for i := range x {
		x[i] *= alpha
	}
}

// Copy copies src into dst; the slices must have equal length.
func Copy(dst, src []float64) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("sparse: Copy length mismatch %d != %d", len(dst), len(src)))
	}
	copy(dst, src)
}

// Fill sets every element of x to v.
func Fill(x []float64, v float64) {
	for i := range x {
		x[i] = v
	}
}

// Norm2 returns the Euclidean norm of x, guarding against overflow for
// large vectors by scaling with the max magnitude.
func Norm2(x []float64) float64 {
	var maxAbs float64
	for _, v := range x {
		if a := math.Abs(v); a > maxAbs {
			maxAbs = a
		}
	}
	if maxAbs == 0 || math.IsInf(maxAbs, 0) || math.IsNaN(maxAbs) {
		if maxAbs == 0 {
			return 0
		}
		return math.NaN()
	}
	var s float64
	for _, v := range x {
		r := v / maxAbs
		s += r * r
	}
	return maxAbs * math.Sqrt(s)
}

// NormInf returns the maximum absolute element of x.
func NormInf(x []float64) float64 {
	var m float64
	for _, v := range x {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}

// Sub computes out = a - b elementwise.
func Sub(a, b, out []float64) {
	if len(a) != len(b) || len(a) != len(out) {
		panic("sparse: Sub length mismatch")
	}
	for i := range a {
		out[i] = a[i] - b[i]
	}
}

// Add computes out = a + b elementwise.
func Add(a, b, out []float64) {
	if len(a) != len(b) || len(a) != len(out) {
		panic("sparse: Add length mismatch")
	}
	for i := range a {
		out[i] = a[i] + b[i]
	}
}

// HasNonFinite reports whether x contains a NaN or Inf value. Reduction
// tasks use it to refuse contributions from poisoned pages (§3.3.2 of the
// paper: a floating point accumulation can be irremediably corrupted by
// adding +/-Inf or NaN).
func HasNonFinite(x []float64) bool {
	for _, v := range x {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return true
		}
	}
	return false
}
