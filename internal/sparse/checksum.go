// ABFT page checksums for silent-error (SDC) coverage: the DUE model of
// the paper assumes the hardware flags every error, but a silent bit flip
// corrupts data without raising any fault bit. The checksum-carrying
// kernel variants below compute, in the same pass that produces a page,
// the XOR of the raw float64 bit patterns of the produced range. XOR over
// bits (rather than a floating-point sum) is order-independent and
// detects EVERY single-bit flip exactly — a rounding checksum could
// absorb low-mantissa flips — and it costs no floating-point operations,
// so the produced values are bitwise identical to the plain kernels'
// (checksum_test.go pins this).
//
// Consumers verify a page's stored checksum before reading it
// (pagemem.Vector.VerifyChecksum): a mismatch turns the silent flip into
// an ordinary page Poison that the existing exact FEIR/AFEIR relations
// recover. Verification re-streams only the one 4 KiB page the kernel is
// about to read anyway, so it adds no extra sweep over the vector.
package sparse

import "math"

// ChecksumRange returns the XOR of the IEEE-754 bit patterns of
// x[lo:hi] — the ABFT page checksum of an already-produced range (used
// when the producing kernel, e.g. the shadow-dispatched SpMV, cannot
// carry the fold itself; the page is still cache-hot).
//
//due:hotpath
func ChecksumRange(x []float64, lo, hi int) uint64 {
	xs := x[lo:hi]
	var ck uint64
	for _, v := range xs {
		ck ^= math.Float64bits(v)
	}
	return ck
}

// CopyChecksumRange copies src[lo:hi] into dst[lo:hi] and returns the
// page checksum of the copied values — the checksum-carrying beta=0
// direction update d = g.
//
//due:hotpath
func CopyChecksumRange(dst, src []float64, lo, hi int) uint64 {
	ss := src[lo:hi]
	ds := dst[lo:hi:hi]
	var ck uint64
	for i, v := range ss {
		ds[i] = v
		ck ^= math.Float64bits(v)
	}
	return ck
}

// XpbyOutChecksumRange computes out[lo:hi] = x[lo:hi] + beta*y[lo:hi]
// and returns the page checksum of the produced values — the
// checksum-carrying double-buffered direction update of Listing 2.
// The arithmetic is identical to XpbyOutRange.
//
//due:hotpath
func XpbyOutChecksumRange(x []float64, beta float64, y, out []float64, lo, hi int) uint64 {
	xs := x[lo:hi]
	ys := y[lo:hi:hi]
	os := out[lo:hi:hi]
	var ck uint64
	for i, v := range xs {
		u := v + beta*ys[i]
		os[i] = u
		ck ^= math.Float64bits(u)
	}
	return ck
}

// AxpyChecksumRange computes y[lo:hi] += alpha*x[lo:hi] and returns the
// page checksum of the updated values — the checksum-carrying iterate
// update x += α d. The arithmetic is identical to AxpyRange.
//
//due:hotpath
func AxpyChecksumRange(alpha float64, x, y []float64, lo, hi int) uint64 {
	xs := x[lo:hi]
	ys := y[lo:hi:hi]
	var ck uint64
	for i, v := range xs {
		u := ys[i] + alpha*v
		ys[i] = u
		ck ^= math.Float64bits(u)
	}
	return ck
}

// AxpyDotChecksumRange computes y[lo:hi] += alpha*x[lo:hi] fused with
// the partial squared norm of the updated values AND their page
// checksum — the checksum-carrying CG phase-2 kernel g -= α q with
// ε = <g,g>. The arithmetic is identical to AxpyDotRange.
//
//due:hotpath
func AxpyDotChecksumRange(alpha float64, x, y []float64, lo, hi int) (yy float64, ck uint64) {
	xs := x[lo:hi]
	ys := y[lo:hi:hi]
	for i, v := range xs {
		u := ys[i] + alpha*v
		ys[i] = u
		yy += u * u
		ck ^= math.Float64bits(u)
	}
	return yy, ck
}
