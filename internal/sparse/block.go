package sparse

import (
	"fmt"
	"sort"
)

// BlockLayout describes the partition of an n-vector into contiguous blocks
// of a fixed size (the memory-page granularity of the fault model: 512
// float64 per 4 KiB page). The last block may be shorter.
type BlockLayout struct {
	N         int // vector length
	BlockSize int // elements per block
}

// NumBlocks returns the number of blocks covering the vector.
func (b BlockLayout) NumBlocks() int {
	if b.N == 0 {
		return 0
	}
	return (b.N + b.BlockSize - 1) / b.BlockSize
}

// Range returns the half-open element range [lo, hi) of block i.
func (b BlockLayout) Range(i int) (lo, hi int) {
	lo = i * b.BlockSize
	hi = lo + b.BlockSize
	if hi > b.N {
		hi = b.N
	}
	if lo > b.N {
		lo = b.N
	}
	return lo, hi
}

// BlockOf returns the block index containing element e.
func (b BlockLayout) BlockOf(e int) int { return e / b.BlockSize }

// BlockSolverCache lazily factorizes and caches diagonal-block solvers for
// a fixed matrix and block layout. The paper notes that with a block-Jacobi
// preconditioner whose block size coincides with the page size, these
// factorizations are already available for free (§5.1); this cache plays
// that role for the unpreconditioned solver too.
type BlockSolverCache struct {
	A      *CSR
	Layout BlockLayout
	SPD    bool
	cache  map[int]BlockSolver
}

// NewBlockSolverCache creates an empty cache for the given operator.
func NewBlockSolverCache(a *CSR, layout BlockLayout, spd bool) *BlockSolverCache {
	return &BlockSolverCache{A: a, Layout: layout, SPD: spd, cache: make(map[int]BlockSolver)}
}

// Solver returns the factorized solver for diagonal block i, computing and
// caching it on first use.
func (c *BlockSolverCache) Solver(i int) (BlockSolver, error) {
	if s, ok := c.cache[i]; ok {
		if s == nil {
			return nil, fmt.Errorf("sparse: diagonal block %d is not factorizable", i)
		}
		return s, nil
	}
	lo, hi := c.Layout.Range(i)
	if lo >= hi {
		return nil, fmt.Errorf("sparse: empty block %d", i)
	}
	s, err := FactorizeBlock(c.A.DiagBlock(lo, hi), c.SPD)
	if err != nil {
		return nil, fmt.Errorf("sparse: factorizing diagonal block %d: %w", i, err)
	}
	c.cache[i] = s
	return s, nil
}

// Prefactorize eagerly factorizes all diagonal blocks (what a block-Jacobi
// preconditioner setup would have done anyway).
func (c *BlockSolverCache) Prefactorize() error {
	for i := 0; i < c.Layout.NumBlocks(); i++ {
		if _, err := c.Solver(i); err != nil {
			return err
		}
	}
	return nil
}

// PrefactorizeLenient factorizes every diagonal block up front, caching
// successes and remembering failures, so all later Solver lookups are
// read-only (safe for concurrent recovery tasks). Unlike Prefactorize it
// never fails: a block that cannot be factorized keeps returning its
// error from SolveDiagBlock, and callers fall back to restart-style
// recovery exactly as with lazy factorization.
func (c *BlockSolverCache) PrefactorizeLenient() {
	for i := 0; i < c.Layout.NumBlocks(); i++ {
		if _, err := c.Solver(i); err != nil {
			c.cache[i] = nil // remembered failure keeps lookups read-only
		}
	}
}

// SolveDiagBlock solves A_ii * x_i = rhs for block i in place.
func (c *BlockSolverCache) SolveDiagBlock(i int, rhs []float64) error {
	s, err := c.Solver(i)
	if err != nil {
		return err
	}
	return s.SolveInPlace(rhs)
}

// SolveCoupledBlocks solves the combined system of §2.4 for several failed
// blocks of the same vector simultaneously:
//
//	[ A_ii A_ij ] [x_i]   [rhs_i]
//	[ A_ji A_jj ] [x_j] = [rhs_j]
//
// generalized to any number of blocks. blocks must be distinct; rhs is the
// concatenation of the per-block right-hand sides in the order of blocks
// (after sorting ascending). On return rhs holds the concatenated solution,
// in sorted block order; the returned permutation maps position -> block id.
func (c *BlockSolverCache) SolveCoupledBlocks(blocks []int, rhs []float64) ([]int, error) {
	if len(blocks) == 0 {
		return nil, fmt.Errorf("sparse: SolveCoupledBlocks with no blocks")
	}
	sorted := append([]int(nil), blocks...)
	sort.Ints(sorted)
	for i := 1; i < len(sorted); i++ {
		if sorted[i] == sorted[i-1] {
			return nil, fmt.Errorf("sparse: duplicate block %d", sorted[i])
		}
	}
	// Total dimension and offsets.
	offs := make([]int, len(sorted)+1)
	for k, b := range sorted {
		lo, hi := c.Layout.Range(b)
		offs[k+1] = offs[k] + (hi - lo)
	}
	dim := offs[len(sorted)]
	if len(rhs) != dim {
		return nil, fmt.Errorf("sparse: coupled rhs dim %d want %d", len(rhs), dim)
	}
	// Assemble the dense coupled operator.
	m := NewDense(dim, dim)
	for ki, bi := range sorted {
		rlo, rhi := c.Layout.Range(bi)
		for kj, bj := range sorted {
			clo, chi := c.Layout.Range(bj)
			sub := c.A.Block(rlo, rhi, clo, chi)
			for r := 0; r < sub.Rows; r++ {
				for cc := 0; cc < sub.Cols; cc++ {
					v := sub.At(r, cc)
					if v != 0 {
						m.Set(offs[ki]+r, offs[kj]+cc, v)
					}
				}
			}
		}
	}
	solver, err := FactorizeBlock(m, c.SPD)
	if err != nil {
		return nil, fmt.Errorf("sparse: coupled factorization of %d blocks: %w", len(sorted), err)
	}
	if err := solver.SolveInPlace(rhs); err != nil {
		return nil, err
	}
	return sorted, nil
}
