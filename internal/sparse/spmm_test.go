package sparse

import (
	"math"
	"math/rand"
	"testing"
)

// The batched-solve contract: every SpMM kernel and every batch vector
// kernel is bitwise equal, per column, to its scalar composition. These
// property tests sweep all four dispatch shadows and widths 1..MaxBatchWidth.

// batchShadowMatrices builds one qualifying matrix per dispatch tier.
func batchShadowMatrices(t *testing.T) map[string]*CSR {
	t.Helper()
	nx := 40
	var st []Triplet
	for i := 0; i < nx*nx; i++ {
		st = append(st, Triplet{i, i, 4})
		for _, j := range []int{i - nx, i - 1, i + 1, i + nx} {
			if j >= 0 && j < nx*nx {
				st = append(st, Triplet{i, j, -1})
			}
		}
	}
	dia := NewCSRFromTriplets(nx*nx, nx*nx, st)
	sell := randShortRowCSR(1000, 7)
	csr32 := randShortRowCSR(1000, 7)
	csr32.DisableShadow("sell")
	csr := randShortRowCSR(1000, 7)
	csr.DisableShadow("sell")
	csr.DisableShadow("int32")
	m := map[string]*CSR{"dia": dia, "sell": sell, "csr32": csr32, "csr": csr}
	for want, a := range m {
		if got := a.ShadowName(); got != want {
			t.Fatalf("shadow %q selected for the %q fixture", got, want)
		}
	}
	return m
}

func randMultiVec(n, b int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	v := make([]float64, n*b)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}

func bitsEqual(a, b float64) bool {
	return math.Float64bits(a) == math.Float64bits(b)
}

// testRanges returns row ranges exercising interior, boundary and
// window/chunk-straddling cases.
func testRanges(n int) [][2]int {
	return [][2]int{{0, n}, {0, n / 3}, {n / 3, 2*n/3 + 5}, {n - 7, n}, {129, 517}}
}

func TestMulMatRangeBitwisePerColumn(t *testing.T) {
	for name, a := range batchShadowMatrices(t) {
		n := a.N
		for b := 1; b <= MaxBatchWidth; b++ {
			x := randMultiVec(n, b, int64(100+b))
			y := make([]float64, n*b)
			xcol := make([]float64, n)
			ycol := make([]float64, n)
			for _, r := range testRanges(n) {
				lo, hi := r[0], r[1]
				Fill(y, math.NaN())
				a.MulMatRange(x, y, b, lo, hi)
				for j := 0; j < b; j++ {
					GatherColumn(x, b, j, xcol)
					Fill(ycol, math.NaN())
					a.MulVecRange(xcol, ycol, lo, hi)
					for i := lo; i < hi; i++ {
						if !bitsEqual(y[i*b+j], ycol[i]) {
							t.Fatalf("%s b=%d [%d,%d) col %d row %d: %v != %v",
								name, b, lo, hi, j, i, y[i*b+j], ycol[i])
						}
					}
				}
			}
		}
	}
}

func TestMulMatDotRangeBitwisePerColumn(t *testing.T) {
	for name, a := range batchShadowMatrices(t) {
		n := a.N
		for _, b := range []int{1, 2, 3, 5, 8} {
			x := randMultiVec(n, b, int64(200+b))
			y := make([]float64, n*b)
			xcol := make([]float64, n)
			ycol := make([]float64, n)
			xy := make([]float64, b)
			yy := make([]float64, b)
			for _, r := range testRanges(n) {
				lo, hi := r[0], r[1]
				Fill(xy, 0)
				Fill(yy, 0)
				a.MulMatDotRange(x, y, b, lo, hi, xy, yy)
				for j := 0; j < b; j++ {
					GatherColumn(x, b, j, xcol)
					wantXY, wantYY := a.MulVecDotRange(xcol, ycol, lo, hi)
					if !bitsEqual(xy[j], wantXY) || !bitsEqual(yy[j], wantYY) {
						t.Fatalf("%s b=%d [%d,%d) col %d partials (%v,%v) != (%v,%v)",
							name, b, lo, hi, j, xy[j], yy[j], wantXY, wantYY)
					}
					for i := lo; i < hi; i++ {
						if !bitsEqual(y[i*b+j], ycol[i]) {
							t.Fatalf("%s b=%d col %d row %d: fused y mismatch", name, b, j, i)
						}
					}
				}
			}
		}
	}
}

func TestMulMatRangeExcludingColsBitwisePerColumn(t *testing.T) {
	a := randShortRowCSR(600, 9)
	n := a.N
	for _, b := range []int{1, 3, 8} {
		x := randMultiVec(n, b, int64(300+b))
		xcol := make([]float64, n)
		for _, r := range [][2]int{{0, 64}, {128, 256}, {n - 64, n}} {
			lo, hi := r[0], r[1]
			y := make([]float64, (hi-lo)*b)
			ycol := make([]float64, hi-lo)
			for _, ex := range [][2]int{{0, 0}, {lo, hi}, {0, n / 2}} {
				a.MulMatRangeExcludingCols(x, y, b, lo, hi, ex[0], ex[1])
				for j := 0; j < b; j++ {
					GatherColumn(x, b, j, xcol)
					a.MulVecRangeExcludingCols(xcol, ycol, lo, hi, ex[0], ex[1])
					for i := 0; i < hi-lo; i++ {
						if !bitsEqual(y[i*b+j], ycol[i]) {
							t.Fatalf("b=%d [%d,%d) ex=%v col %d row %d: %v != %v",
								b, lo, hi, ex, j, i, y[i*b+j], ycol[i])
						}
					}
				}
			}
		}
	}
}

func TestBatchVectorKernelsBitwisePerColumn(t *testing.T) {
	n := 700
	for _, b := range []int{1, 2, 4, 8} {
		x := randMultiVec(n, b, int64(400+b))
		y := randMultiVec(n, b, int64(500+b))
		alpha := make([]float64, b)
		beta := make([]float64, b)
		rng := rand.New(rand.NewSource(int64(600 + b)))
		for j := range alpha {
			alpha[j] = rng.NormFloat64()
			beta[j] = rng.NormFloat64()
		}
		// Zero coefficients in some columns: the retired-column path.
		alpha[0], beta[b-1] = 0, 0

		xc := make([]float64, n)
		yc := make([]float64, n)
		oc := make([]float64, n)
		lo, hi := 33, n-15

		out := make([]float64, n*b)
		BatchXpbyOutRange(x, beta, y, out, b, lo, hi)
		for j := 0; j < b; j++ {
			GatherColumn(x, b, j, xc)
			GatherColumn(y, b, j, yc)
			if beta[j] == 0 {
				copy(oc[lo:hi], xc[lo:hi])
			} else {
				XpbyOutRange(xc, beta[j], yc, oc, lo, hi)
			}
			for i := lo; i < hi; i++ {
				if !bitsEqual(out[i*b+j], oc[i]) {
					t.Fatalf("BatchXpbyOutRange b=%d col %d row %d", b, j, i)
				}
			}
		}

		y2 := append([]float64(nil), y...)
		BatchAxpyRange(alpha, x, y2, b, lo, hi)
		for j := 0; j < b; j++ {
			GatherColumn(x, b, j, xc)
			GatherColumn(y, b, j, yc)
			AxpyRange(alpha[j], xc, yc, lo, hi)
			for i := lo; i < hi; i++ {
				if !bitsEqual(y2[i*b+j], yc[i]) {
					t.Fatalf("BatchAxpyRange b=%d col %d row %d", b, j, i)
				}
			}
		}

		y3 := append([]float64(nil), y...)
		yy := make([]float64, b)
		BatchAxpyDotRange(alpha, x, y3, b, lo, hi, yy)
		for j := 0; j < b; j++ {
			GatherColumn(x, b, j, xc)
			GatherColumn(y, b, j, yc)
			want := AxpyDotRange(alpha[j], xc, yc, lo, hi)
			if !bitsEqual(yy[j], want) {
				t.Fatalf("BatchAxpyDotRange b=%d col %d partial %v != %v", b, j, yy[j], want)
			}
			for i := lo; i < hi; i++ {
				if !bitsEqual(y3[i*b+j], yc[i]) {
					t.Fatalf("BatchAxpyDotRange b=%d col %d row %d", b, j, i)
				}
			}
		}

		dots := make([]float64, b)
		BatchDotRange(x, y, b, lo, hi, dots)
		for j := 0; j < b; j++ {
			GatherColumn(x, b, j, xc)
			GatherColumn(y, b, j, yc)
			if want := DotRange(xc, yc, lo, hi); !bitsEqual(dots[j], want) {
				t.Fatalf("BatchDotRange b=%d col %d: %v != %v", b, j, dots[j], want)
			}
		}
	}
}

func TestGatherScatterColumnRoundTrip(t *testing.T) {
	n, b := 53, 5
	x := randMultiVec(n, b, 1)
	col := make([]float64, n)
	x2 := make([]float64, n*b)
	for j := 0; j < b; j++ {
		GatherColumn(x, b, j, col)
		ScatterColumn(col, x2, b, j)
	}
	for i := range x {
		if !bitsEqual(x[i], x2[i]) {
			t.Fatalf("round trip mismatch at %d", i)
		}
	}
}
