package sparse

import (
	"errors"
	"fmt"
	"math"
	"sync/atomic"
)

// ErrSingular is returned when a factorization meets an (effectively)
// singular pivot and the direct solve cannot proceed.
var ErrSingular = errors.New("sparse: matrix is singular to working precision")

// Dense is a row-major dense matrix. It is used for page-sized diagonal
// blocks (typically 512×512) extracted from the sparse operator, and for
// the small Hessenberg systems of GMRES.
type Dense struct {
	Rows, Cols int
	Data       []float64 // len Rows*Cols, row-major
}

// NewDense allocates a zeroed rows×cols dense matrix.
func NewDense(rows, cols int) *Dense {
	return &Dense{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// At returns element (i, j).
func (d *Dense) At(i, j int) float64 { return d.Data[i*d.Cols+j] }

// Set assigns element (i, j).
func (d *Dense) Set(i, j int, v float64) { d.Data[i*d.Cols+j] = v }

// Add accumulates v into element (i, j).
func (d *Dense) Add(i, j int, v float64) { d.Data[i*d.Cols+j] += v }

// Clone returns a deep copy.
func (d *Dense) Clone() *Dense {
	c := NewDense(d.Rows, d.Cols)
	copy(c.Data, d.Data)
	return c
}

// MulVec computes y = D*x for the dense matrix.
func (d *Dense) MulVec(x, y []float64) {
	if len(x) != d.Cols || len(y) != d.Rows {
		panic(fmt.Sprintf("sparse: Dense.MulVec dims x=%d y=%d for %dx%d", len(x), len(y), d.Rows, d.Cols))
	}
	for i := 0; i < d.Rows; i++ {
		row := d.Data[i*d.Cols : (i+1)*d.Cols]
		var s float64
		for j, v := range row {
			s += v * x[j]
		}
		y[i] = s
	}
}

// ----------------------------------------------------------------------
// Cholesky factorization: for SPD diagonal blocks (the paper's common case,
// §2.3 — "if we know that a diagonal block is non-singular, e.g. when A is
// SPD, we solve the inverse block relations with a direct solver").
// ----------------------------------------------------------------------

// Cholesky holds the lower-triangular factor L with A = L*Lᵀ.
type Cholesky struct {
	n int
	l []float64 // row-major lower triangle (full storage for simplicity)
}

// NewCholesky factorizes the SPD matrix a. It returns ErrSingular when a
// pivot is non-positive (a is not positive definite to working precision).
func NewCholesky(a *Dense) (*Cholesky, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("sparse: Cholesky of non-square %dx%d", a.Rows, a.Cols)
	}
	n := a.Rows
	l := make([]float64, n*n)
	copy(l, a.Data)
	for j := 0; j < n; j++ {
		d := l[j*n+j]
		for k := 0; k < j; k++ {
			d -= l[j*n+k] * l[j*n+k]
		}
		if d <= 0 || math.IsNaN(d) {
			return nil, ErrSingular
		}
		d = math.Sqrt(d)
		l[j*n+j] = d
		for i := j + 1; i < n; i++ {
			s := l[i*n+j]
			for k := 0; k < j; k++ {
				s -= l[i*n+k] * l[j*n+k]
			}
			l[i*n+j] = s / d
		}
	}
	// Zero the strict upper triangle so the factor is clean.
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			l[i*n+j] = 0
		}
	}
	return &Cholesky{n: n, l: l}, nil
}

// N returns the block dimension.
func (c *Cholesky) N() int { return c.n }

// Solve solves A*x = b in place: b is overwritten with x.
func (c *Cholesky) Solve(b []float64) {
	n := c.n
	if len(b) != n {
		panic(fmt.Sprintf("sparse: Cholesky.Solve dim %d want %d", len(b), n))
	}
	l := c.l
	// Forward substitution L*y = b.
	for i := 0; i < n; i++ {
		s := b[i]
		for k := 0; k < i; k++ {
			s -= l[i*n+k] * b[k]
		}
		b[i] = s / l[i*n+i]
	}
	// Back substitution Lᵀ*x = y.
	for i := n - 1; i >= 0; i-- {
		s := b[i]
		for k := i + 1; k < n; k++ {
			s -= l[k*n+i] * b[k]
		}
		b[i] = s / l[i*n+i]
	}
}

// ----------------------------------------------------------------------
// LU with partial pivoting: for non-symmetric diagonal blocks (BiCGStab /
// GMRES operate on general matrices).
// ----------------------------------------------------------------------

// LU holds a PA = LU factorization with partial pivoting.
type LU struct {
	n    int
	lu   []float64
	piv  []int
	sign int
}

// NewLU factorizes a general square matrix with partial pivoting.
func NewLU(a *Dense) (*LU, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("sparse: LU of non-square %dx%d", a.Rows, a.Cols)
	}
	n := a.Rows
	lu := make([]float64, n*n)
	copy(lu, a.Data)
	piv := make([]int, n)
	for i := range piv {
		piv[i] = i
	}
	sign := 1
	for k := 0; k < n; k++ {
		// Pivot search.
		p, maxAbs := k, math.Abs(lu[k*n+k])
		for i := k + 1; i < n; i++ {
			if a := math.Abs(lu[i*n+k]); a > maxAbs {
				p, maxAbs = i, a
			}
		}
		if maxAbs == 0 || math.IsNaN(maxAbs) {
			return nil, ErrSingular
		}
		if p != k {
			for j := 0; j < n; j++ {
				lu[k*n+j], lu[p*n+j] = lu[p*n+j], lu[k*n+j]
			}
			piv[k], piv[p] = piv[p], piv[k]
			sign = -sign
		}
		d := lu[k*n+k]
		for i := k + 1; i < n; i++ {
			m := lu[i*n+k] / d
			lu[i*n+k] = m
			for j := k + 1; j < n; j++ {
				lu[i*n+j] -= m * lu[k*n+j]
			}
		}
	}
	return &LU{n: n, lu: lu, piv: piv, sign: sign}, nil
}

// Solve solves A*x = b; x is returned in a new slice, b is untouched.
func (f *LU) Solve(b []float64) []float64 {
	n := f.n
	if len(b) != n {
		panic(fmt.Sprintf("sparse: LU.Solve dim %d want %d", len(b), n))
	}
	x := make([]float64, n)
	for i := 0; i < n; i++ {
		x[i] = b[f.piv[i]]
	}
	lu := f.lu
	for i := 0; i < n; i++ {
		s := x[i]
		for k := 0; k < i; k++ {
			s -= lu[i*n+k] * x[k]
		}
		x[i] = s
	}
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for k := i + 1; k < n; k++ {
			s -= lu[i*n+k] * x[k]
		}
		x[i] = s / lu[i*n+i]
	}
	return x
}

// Det returns the determinant of the factorized matrix.
func (f *LU) Det() float64 {
	d := float64(f.sign)
	for i := 0; i < f.n; i++ {
		d *= f.lu[i*f.n+i]
	}
	return d
}

// ----------------------------------------------------------------------
// Householder QR: least-squares solves for (possibly) singular diagonal
// blocks, as Agullo et al. propose for recover-restart interpolation and as
// the paper adopts for non-SPD blocks (§2.3).
// ----------------------------------------------------------------------

// QR holds a Householder QR factorization of an m×n matrix with m >= n.
type QR struct {
	m, n int
	qr   []float64 // packed factors: R in upper triangle, v's below
	tau  []float64
}

// NewQR factorizes a (m >= n required).
func NewQR(a *Dense) (*QR, error) {
	m, n := a.Rows, a.Cols
	if m < n {
		return nil, fmt.Errorf("sparse: QR needs rows >= cols, got %dx%d", m, n)
	}
	qr := make([]float64, m*n)
	copy(qr, a.Data)
	tau := make([]float64, n)
	for k := 0; k < n; k++ {
		// Householder vector for column k below the diagonal.
		var norm float64
		for i := k; i < m; i++ {
			norm = math.Hypot(norm, qr[i*n+k])
		}
		if norm == 0 {
			tau[k] = 0
			continue
		}
		if qr[k*n+k] < 0 {
			norm = -norm
		}
		for i := k; i < m; i++ {
			qr[i*n+k] /= norm
		}
		qr[k*n+k] += 1
		// Apply transform to remaining columns.
		for j := k + 1; j < n; j++ {
			var s float64
			for i := k; i < m; i++ {
				s += qr[i*n+k] * qr[i*n+j]
			}
			s = -s / qr[k*n+k]
			for i := k; i < m; i++ {
				qr[i*n+j] += s * qr[i*n+k]
			}
		}
		// Layout: the Householder vector v (with v1 on the diagonal) stays
		// in column k at and below the diagonal; R's diagonal entry -norm
		// is stashed in tau[k] (the strict upper triangle already holds R).
		tau[k] = -norm
	}
	return &QR{m: m, n: n, qr: qr, tau: tau}, nil
}

// SolveLeastSquares returns argmin_x ||A x - b||₂. When a diagonal entry of
// R is (near) zero the corresponding component is set to zero (minimum-norm
// flavoured fallback) and no error is raised unless the whole system is
// degenerate.
func (q *QR) SolveLeastSquares(b []float64) ([]float64, error) {
	m, n := q.m, q.n
	if len(b) != m {
		return nil, fmt.Errorf("sparse: QR.Solve dim %d want %d", len(b), m)
	}
	y := append([]float64(nil), b...)
	// Apply Qᵀ to b. For each Householder reflector k with v stored in
	// column k (v1 on the diagonal):
	for k := 0; k < n; k++ {
		v1 := q.qr[k*n+k]
		if v1 == 0 {
			continue
		}
		var s float64
		s += v1 * y[k]
		for i := k + 1; i < m; i++ {
			s += q.qr[i*n+k] * y[i]
		}
		s = -s / v1
		y[k] += s * v1
		for i := k + 1; i < m; i++ {
			y[i] += s * q.qr[i*n+k]
		}
	}
	// Back-substitute R x = y[:n]. R's strict upper part lives above the
	// diagonal of qr; the diagonal is in tau.
	x := make([]float64, n)
	allZero := true
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for j := i + 1; j < n; j++ {
			s -= q.qr[i*n+j] * x[j]
		}
		d := q.tau[i]
		if math.Abs(d) < 1e-300 {
			x[i] = 0
			continue
		}
		allZero = false
		x[i] = s / d
	}
	if allZero && n > 0 {
		return nil, ErrSingular
	}
	return x, nil
}

// BlockSolver abstracts a factorized diagonal block used by recoveries:
// Cholesky for SPD blocks, LU otherwise, QR least-squares as the fallback.
type BlockSolver interface {
	// SolveInPlace solves Block*x = rhs, overwriting rhs with x.
	SolveInPlace(rhs []float64) error
}

type cholSolver struct{ c *Cholesky }

func (s cholSolver) SolveInPlace(rhs []float64) error { s.c.Solve(rhs); return nil }

type luSolver struct{ f *LU }

func (s luSolver) SolveInPlace(rhs []float64) error {
	x := s.f.Solve(rhs)
	copy(rhs, x)
	return nil
}

type qrSolver struct{ q *QR }

func (s qrSolver) SolveInPlace(rhs []float64) error {
	x, err := s.q.SolveLeastSquares(rhs)
	if err != nil {
		return err
	}
	copy(rhs, x)
	return nil
}

// factorizations counts every diagonal-block factorization performed by
// the process — the setup cost the operator-context cache exists to
// amortise. Tests pin "zero factorizations after warmup" against it.
var factorizations atomic.Int64

// FactorizationCount returns the number of diagonal-block factorizations
// performed by this process so far.
func FactorizationCount() int64 { return factorizations.Load() }

// FactorizeBlock builds a BlockSolver for a dense diagonal block, trying
// Cholesky when spd is claimed, then LU, then QR least squares, mirroring
// the paper's §2.3 strategy.
func FactorizeBlock(block *Dense, spd bool) (BlockSolver, error) {
	factorizations.Add(1)
	if spd {
		if c, err := NewCholesky(block); err == nil {
			return cholSolver{c}, nil
		}
	}
	if f, err := NewLU(block); err == nil {
		return luSolver{f}, nil
	}
	q, err := NewQR(block)
	if err != nil {
		return nil, err
	}
	return qrSolver{q}, nil
}
