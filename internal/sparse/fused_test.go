package sparse

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// ulpTol reports whether got equals want to within a few ulps of the
// magnitudes involved. The fused kernels perform the same operations in
// the same order as their unfused compositions, so they should in fact
// agree bitwise; the tolerance only shields the assertion from a future
// reassociating rewrite of either side.
func ulpTol(got, want float64) bool {
	if math.IsNaN(got) || math.IsNaN(want) {
		return math.IsNaN(got) == math.IsNaN(want)
	}
	scale := math.Max(math.Abs(got), math.Abs(want))
	if scale == 0 {
		return got == want
	}
	ulp := math.Nextafter(scale, math.Inf(1)) - scale
	return math.Abs(got-want) <= 4*ulp
}

// randRange draws a half-open subrange of [0, n).
func randRange(rng *rand.Rand, n int) (int, int) {
	lo := rng.Intn(n)
	hi := lo + rng.Intn(n-lo) + 1
	return lo, hi
}

// Property: MulVecDotRange ≡ MulVecRange followed by DotRange twice.
func TestPropertyMulVecDotRangeEquivalence(t *testing.T) {
	f := func(mv matrixAndVec, seed int64) bool {
		a, x := mv.A, mv.X
		rng := rand.New(rand.NewSource(seed))
		lo, hi := randRange(rng, a.N)

		want := make([]float64, a.N)
		a.MulVecRange(x, want, lo, hi)
		wantXY := DotRange(x, want, lo, hi)
		wantYY := DotRange(want, want, lo, hi)

		got := make([]float64, a.N)
		xy, yy := a.MulVecDotRange(x, got, lo, hi)
		for i := lo; i < hi; i++ {
			if got[i] != want[i] {
				return false
			}
		}
		return ulpTol(xy, wantXY) && ulpTol(yy, wantYY)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: MulVecDotVecRange ≡ MulVecRange followed by DotRange vs w.
func TestPropertyMulVecDotVecRangeEquivalence(t *testing.T) {
	f := func(mv matrixAndVec, seed int64) bool {
		a, x := mv.A, mv.X
		rng := rand.New(rand.NewSource(seed))
		lo, hi := randRange(rng, a.N)
		w := make([]float64, a.N)
		for i := range w {
			w[i] = rng.NormFloat64()
		}

		want := make([]float64, a.N)
		a.MulVecRange(x, want, lo, hi)
		wantWY := DotRange(want, w, lo, hi)

		got := make([]float64, a.N)
		wy := a.MulVecDotVecRange(x, got, w, lo, hi)
		for i := lo; i < hi; i++ {
			if got[i] != want[i] {
				return false
			}
		}
		return ulpTol(wy, wantWY)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: AxpyDotRange ≡ AxpyRange followed by DotRange(y, y).
func TestPropertyAxpyDotRangeEquivalence(t *testing.T) {
	f := func(mv matrixAndVec, a8 int8, seed int64) bool {
		x := mv.X
		n := len(x)
		alpha := float64(a8) / 16
		rng := rand.New(rand.NewSource(seed))
		lo, hi := randRange(rng, n)
		y0 := make([]float64, n)
		for i := range y0 {
			y0[i] = rng.NormFloat64()
		}

		want := append([]float64(nil), y0...)
		AxpyRange(alpha, x, want, lo, hi)
		wantYY := DotRange(want, want, lo, hi)

		got := append([]float64(nil), y0...)
		yy := AxpyDotRange(alpha, x, got, lo, hi)
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return ulpTol(yy, wantYY)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: XpbyNormRange and XpbyDotNormRange ≡ XpbyOutRange followed by
// the corresponding DotRange reductions.
func TestPropertyXpbyNormRangeEquivalence(t *testing.T) {
	f := func(mv matrixAndVec, b8 int8, seed int64) bool {
		x := mv.X
		n := len(x)
		beta := float64(b8) / 16
		rng := rand.New(rand.NewSource(seed))
		lo, hi := randRange(rng, n)
		y := make([]float64, n)
		w := make([]float64, n)
		for i := range y {
			y[i] = rng.NormFloat64()
			w[i] = rng.NormFloat64()
		}

		want := make([]float64, n)
		XpbyOutRange(x, beta, y, want, lo, hi)
		wantOO := DotRange(want, want, lo, hi)
		wantOW := DotRange(want, w, lo, hi)

		out1 := make([]float64, n)
		oo := XpbyNormRange(x, beta, y, out1, lo, hi)
		out2 := make([]float64, n)
		ow, oo2 := XpbyDotNormRange(x, beta, y, out2, w, lo, hi)
		for i := lo; i < hi; i++ {
			if out1[i] != want[i] || out2[i] != want[i] {
				return false
			}
		}
		return ulpTol(oo, wantOO) && ulpTol(oo2, wantOO) && ulpTol(ow, wantOW)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: the merged-cursor MulVecRangeExcludingBlocks matches the
// brute-force per-nonzero scan on arbitrary (unsorted, overlapping, empty)
// exclude range sets.
func TestPropertyExcludingBlocksMergedCursor(t *testing.T) {
	f := func(mv matrixAndVec, seed int64) bool {
		a, x := mv.A, mv.X
		rng := rand.New(rand.NewSource(seed))
		nex := rng.Intn(5)
		exclude := make([][2]int, 0, nex)
		for e := 0; e < nex; e++ {
			lo := rng.Intn(a.N + 1)
			hi := lo + rng.Intn(a.N+1-lo)
			if rng.Intn(4) == 0 {
				lo = hi // deliberately empty range
			}
			exclude = append(exclude, [2]int{lo, hi})
		}
		rlo, rhi := randRange(rng, a.N)

		got := make([]float64, rhi-rlo)
		a.MulVecRangeExcludingBlocks(x, got, rlo, rhi, exclude)

		// Brute force reference (the pre-merge implementation).
		want := make([]float64, rhi-rlo)
		for i := rlo; i < rhi; i++ {
			var s float64
		scan:
			for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
				c := a.Cols[k]
				for _, ex := range exclude {
					if c >= ex[0] && c < ex[1] {
						continue scan
					}
				}
				s += a.Vals[k] * x[c]
			}
			want[i-rlo] = s
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestDIAShadowMatchesGenericCSR checks that the diagonal-shadow kernels
// agree with the generic CSR path on stencil-like matrices (where the
// shadow activates), over many random subranges.
func TestDIAShadowMatchesGenericCSR(t *testing.T) {
	n := 500
	var tr []Triplet
	for i := 0; i < n; i++ {
		tr = append(tr, Triplet{i, i, 4})
		for _, off := range []int{-25, -1, 1, 25} {
			if j := i + off; j >= 0 && j < n {
				tr = append(tr, Triplet{i, j, -1 - float64(off)/100})
			}
		}
	}
	a := NewCSRFromTriplets(n, n, tr)
	if a.diaOffs == nil {
		t.Fatal("diagonal shadow not built for a 5-diagonal matrix")
	}
	// A generic twin: same arrays, no shadows.
	g := &CSR{N: a.N, M: a.M, RowPtr: a.RowPtr, Cols: a.Cols, Vals: a.Vals}

	rng := rand.New(rand.NewSource(42))
	x := make([]float64, n)
	w := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
		w[i] = rng.NormFloat64()
	}
	for trial := 0; trial < 200; trial++ {
		lo, hi := randRange(rng, n)
		want := make([]float64, n)
		g.MulVecRange(x, want, lo, hi)
		wantXY := DotRange(x, want, lo, hi)
		wantYY := DotRange(want, want, lo, hi)
		wantWY := DotRange(want, w, lo, hi)

		got := make([]float64, n)
		a.MulVecRange(x, got, lo, hi)
		for i := lo; i < hi; i++ {
			if got[i] != want[i] {
				t.Fatalf("MulVecRange[%d]: dia=%v generic=%v", i, got[i], want[i])
			}
		}
		got2 := make([]float64, n)
		xy, yy := a.MulVecDotRange(x, got2, lo, hi)
		wy := a.MulVecDotVecRange(x, got2, w, lo, hi)
		for i := lo; i < hi; i++ {
			if got2[i] != want[i] {
				t.Fatalf("MulVecDotRange[%d]: dia=%v generic=%v", i, got2[i], want[i])
			}
		}
		if !ulpTol(xy, wantXY) || !ulpTol(yy, wantYY) || !ulpTol(wy, wantWY) {
			t.Fatalf("dots: got (%v,%v,%v) want (%v,%v,%v)", xy, yy, wy, wantXY, wantYY, wantWY)
		}
	}
}

// TestDIAShadowSkipsIrregularMatrices checks the shadow is not built
// when the diagonal count or padding waste disqualifies the matrix.
func TestDIAShadowSkipsIrregularMatrices(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 200
	var tr []Triplet
	for i := 0; i < n; i++ {
		tr = append(tr, Triplet{i, i, 4})
		for e := 0; e < 3; e++ {
			tr = append(tr, Triplet{i, rng.Intn(n), 1})
		}
	}
	a := NewCSRFromTriplets(n, n, tr)
	if a.diaOffs != nil {
		t.Fatal("diagonal shadow built for a random-pattern matrix")
	}
}

func TestMergeRanges(t *testing.T) {
	cases := []struct {
		in, want [][2]int
	}{
		{nil, nil},
		{[][2]int{{3, 3}}, nil},
		{[][2]int{{1, 4}}, [][2]int{{1, 4}}},
		{[][2]int{{5, 9}, {1, 4}}, [][2]int{{1, 4}, {5, 9}}},
		// Touching {1,4}+{4,6} coalesce, then {5,10} overlaps the merged
		// {1,6}: one {1,10} survives; the empty {8,8} is dropped.
		{[][2]int{{1, 4}, {4, 6}, {8, 8}, {5, 10}}, [][2]int{{1, 10}}},
		{[][2]int{{2, 5}, {7, 9}}, [][2]int{{2, 5}, {7, 9}}},
	}
	for _, c := range cases {
		got := mergeRanges(c.in)
		if len(got) != len(c.want) {
			t.Fatalf("mergeRanges(%v) = %v, want %v", c.in, got, c.want)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Fatalf("mergeRanges(%v) = %v, want %v", c.in, got, c.want)
			}
		}
	}
}

// Property: PipeCGUpdateRange ≡ the six unfused Xpby/Axpy passes followed
// by the two DotRange reductions, bitwise on the vectors.
func TestPipeCGUpdateMatchesUnfused(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(96)
		lo, hi := randRange(rng, n)
		alpha := rng.NormFloat64()
		beta := rng.NormFloat64()
		if trial%5 == 0 {
			beta = 0 // the restart step
		}
		mk := func() []float64 {
			v := make([]float64, n)
			for i := range v {
				v[i] = rng.NormFloat64()
			}
			return v
		}
		q, z, w, s, r, p, x := mk(), mk(), mk(), mk(), mk(), mk(), mk()

		cp := func(v []float64) []float64 { return append([]float64(nil), v...) }
		z2, w2, s2, r2, p2, x2 := cp(z), cp(w), cp(s), cp(r), cp(p), cp(x)
		XpbyRange(q, beta, z2, lo, hi)
		XpbyRange(w2, beta, s2, lo, hi)
		XpbyRange(r2, beta, p2, lo, hi)
		AxpyRange(alpha, p2, x2, lo, hi)
		AxpyRange(-alpha, s2, r2, lo, hi)
		AxpyRange(-alpha, z2, w2, lo, hi)
		wantGamma := DotRange(r2, r2, lo, hi)
		wantDelta := DotRange(w2, r2, lo, hi)

		gamma, delta := PipeCGUpdateRange(alpha, beta, q, z, w, s, r, p, x, lo, hi)
		for i := lo; i < hi; i++ {
			if z[i] != z2[i] || w[i] != w2[i] || s[i] != s2[i] ||
				r[i] != r2[i] || p[i] != p2[i] || x[i] != x2[i] {
				t.Fatalf("trial %d: fused vectors diverge at %d", trial, i)
			}
		}
		if !ulpTol(gamma, wantGamma) || !ulpTol(delta, wantDelta) {
			t.Fatalf("trial %d: gamma/delta %v,%v want %v,%v", trial, gamma, delta, wantGamma, wantDelta)
		}
	}
}
