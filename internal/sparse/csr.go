package sparse

import (
	"fmt"
	"math"
	"sort"
)

// CSR is a sparse matrix in compressed sparse row format. Rows(i) spans
// Cols[RowPtr[i]:RowPtr[i+1]] with values Vals[RowPtr[i]:RowPtr[i+1]],
// column indices strictly increasing within a row.
type CSR struct {
	N      int // number of rows
	M      int // number of columns
	RowPtr []int
	Cols   []int
	Vals   []float64

	// cols32/rowPtr32 are narrow shadows of Cols/RowPtr used by the hot
	// SpMV kernels: halving the index streams from 8 to 4 bytes per
	// nonzero (and per row) cuts the dominant memory traffic of a
	// memory-bound iteration by ~15-25% on stencil-like matrices. Built
	// by the constructors (BuildIndex32 for hand-assembled matrices);
	// nil when the matrix exceeds int32 indexing or the shadow was never
	// built, in which case the kernels fall back to the wide arrays. The
	// matrix is treated as immutable after assembly — code that edits
	// Cols OR Vals in place must call BuildIndex32 again (the diagonal
	// shadow of dia.go copies values, not just indices).
	cols32   []int32
	rowPtr32 []int32

	// diaOffs/diaVals are the diagonal (DIA) kernel shadow for stencil
	// and banded matrices — see dia.go. Nil when the matrix does not
	// qualify; the kernels then use the narrow-index CSR path.
	diaOffs []int
	diaVals [][]float64

	// SELL-C-σ kernel shadow for short-row matrices the DIA shadow
	// rejects — see sellcs.go. sellPtr indexes chunks into the packed
	// column-major sellVals/sellCols streams; sellWin maps σ windows to
	// chunk ranges so row-range queries stay cheap; sellRows/sellLens
	// give each chunk lane its backing row and length; sellMin is the
	// chunk's unguarded dense depth. Nil when the matrix does not
	// qualify (or DIA won).
	sellPtr  []int32
	sellWin  []int32
	sellRows []int32
	sellLens []int32
	sellMin  []int32
	sellVals []float64
	sellCols []int32
}

// BuildIndex32 (re)builds the kernel shadows the hot SpMV kernels read:
// the narrow (int32) index arrays, the diagonal shadow of dia.go for
// stencil/banded matrices, and the SELL-C-σ shadow of sellcs.go for
// short-row matrices DIA rejects. Constructors call it automatically;
// hand-assembled matrices may call it to opt in. The narrow indices are
// skipped when the column count or the nonzero count does not fit in an
// int32.
func (a *CSR) BuildIndex32() {
	a.buildDIA()
	defer a.buildSELL()
	if a.M > (1<<31-1) || len(a.Cols) > (1<<31-1) {
		a.cols32, a.rowPtr32 = nil, nil
		return
	}
	if cap(a.cols32) < len(a.Cols) {
		a.cols32 = make([]int32, len(a.Cols))
	}
	a.cols32 = a.cols32[:len(a.Cols)]
	for k, c := range a.Cols {
		a.cols32[k] = int32(c)
	}
	if cap(a.rowPtr32) < len(a.RowPtr) {
		a.rowPtr32 = make([]int32, len(a.RowPtr))
	}
	a.rowPtr32 = a.rowPtr32[:len(a.RowPtr)]
	for i, p := range a.RowPtr {
		a.rowPtr32[i] = int32(p)
	}
}

// Triplet is a single (row, col, value) entry used to assemble matrices.
type Triplet struct {
	Row, Col int
	Val      float64
}

// NewCSRFromTriplets assembles an n×m CSR matrix from coordinate entries.
// Duplicate (row, col) entries are summed. Entries out of range panic.
func NewCSRFromTriplets(n, m int, entries []Triplet) *CSR {
	for _, t := range entries {
		if t.Row < 0 || t.Row >= n || t.Col < 0 || t.Col >= m {
			panic(fmt.Sprintf("sparse: triplet (%d,%d) out of range for %dx%d matrix", t.Row, t.Col, n, m))
		}
	}
	sorted := make([]Triplet, len(entries))
	copy(sorted, entries)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Row != sorted[j].Row {
			return sorted[i].Row < sorted[j].Row
		}
		return sorted[i].Col < sorted[j].Col
	})

	a := &CSR{N: n, M: m, RowPtr: make([]int, n+1)}
	a.Cols = make([]int, 0, len(sorted))
	a.Vals = make([]float64, 0, len(sorted))
	for i := 0; i < len(sorted); {
		t := sorted[i]
		v := t.Val
		j := i + 1
		for j < len(sorted) && sorted[j].Row == t.Row && sorted[j].Col == t.Col {
			v += sorted[j].Val
			j++
		}
		a.Cols = append(a.Cols, t.Col)
		a.Vals = append(a.Vals, v)
		a.RowPtr[t.Row+1]++
		i = j
	}
	for i := 0; i < n; i++ {
		a.RowPtr[i+1] += a.RowPtr[i]
	}
	a.BuildIndex32()
	return a
}

// NNZ returns the number of stored entries.
func (a *CSR) NNZ() int { return len(a.Vals) }

// Validate checks structural invariants: monotone RowPtr, sorted in-row
// columns, indices in range. It returns a descriptive error on violation.
func (a *CSR) Validate() error {
	if len(a.RowPtr) != a.N+1 {
		return fmt.Errorf("sparse: RowPtr length %d, want %d", len(a.RowPtr), a.N+1)
	}
	if a.RowPtr[0] != 0 {
		return fmt.Errorf("sparse: RowPtr[0] = %d, want 0", a.RowPtr[0])
	}
	if a.RowPtr[a.N] != len(a.Vals) || len(a.Cols) != len(a.Vals) {
		return fmt.Errorf("sparse: RowPtr[N]=%d Cols=%d Vals=%d inconsistent", a.RowPtr[a.N], len(a.Cols), len(a.Vals))
	}
	for i := 0; i < a.N; i++ {
		if a.RowPtr[i] > a.RowPtr[i+1] {
			return fmt.Errorf("sparse: RowPtr not monotone at row %d", i)
		}
		prev := -1
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			c := a.Cols[k]
			if c < 0 || c >= a.M {
				return fmt.Errorf("sparse: row %d column %d out of range", i, c)
			}
			if c <= prev {
				return fmt.Errorf("sparse: row %d columns not strictly increasing at %d", i, c)
			}
			prev = c
		}
	}
	return nil
}

// At returns the value at (i, j), zero when not stored.
func (a *CSR) At(i, j int) float64 {
	lo, hi := a.RowPtr[i], a.RowPtr[i+1]
	cols := a.Cols[lo:hi]
	k := sort.SearchInts(cols, j)
	if k < len(cols) && cols[k] == j {
		return a.Vals[lo+k]
	}
	return 0
}

// MulVec computes y = A*x.
func (a *CSR) MulVec(x, y []float64) {
	if len(x) != a.M || len(y) != a.N {
		panic(fmt.Sprintf("sparse: MulVec dims x=%d y=%d for %dx%d", len(x), len(y), a.N, a.M))
	}
	a.MulVecRange(x, y, 0, a.N)
}

// MulVecRange computes y[lo:hi] = (A*x)[lo:hi]: the row-block SpMV used by
// strip-mined tasks. It reads the whole x (lattice-like dependency in the
// paper's task graph) but writes only rows [lo, hi). The row span is
// sliced once per row so the inner loop runs without re-checking the
// RowPtr-derived bounds on every nonzero.
//
//due:hotpath
func (a *CSR) MulVecRange(x, y []float64, lo, hi int) {
	if a.diaOffs != nil {
		a.mulVecRangeDIA(x, y, lo, hi)
		return
	}
	if a.sellPtr != nil {
		a.mulVecRangeSELL(x, y, lo, hi)
		return
	}
	if a.cols32 != nil {
		a.mulVecRange32(x, y, lo, hi)
		return
	}
	rp := a.RowPtr
	for i := lo; i < hi; i++ {
		row := rp[i]
		cols := a.Cols[row:rp[i+1]]
		vals := a.Vals[row:rp[i+1]]
		var s float64
		for k, c := range cols {
			s += vals[k] * x[c]
		}
		y[i] = s
	}
}

//due:hotpath
func (a *CSR) mulVecRange32(x, y []float64, lo, hi int) {
	rp := a.rowPtr32
	for i := lo; i < hi; i++ {
		row := rp[i]
		cols := a.cols32[row:rp[i+1]]
		vals := a.Vals[row:rp[i+1]]
		var s float64
		for k, c := range cols {
			s += vals[k] * x[c]
		}
		y[i] = s
	}
}

// MulVecRangeExcludingCols computes, for rows in [lo, hi),
// y[i-lo] = sum over j outside [exLo, exHi) of A[i][j] * x[j].
// This is the off-block part of a block relation: the recovery right-hand
// side q_i - sum_{j != i} A_ij p_j is built with exclusion of the failed
// block's own columns. Output is compact: y needs only hi-lo elements.
//
//due:hotpath
func (a *CSR) MulVecRangeExcludingCols(x, y []float64, lo, hi, exLo, exHi int) {
	rp := a.RowPtr
	for i := lo; i < hi; i++ {
		row := rp[i]
		cols := a.Cols[row:rp[i+1]]
		vals := a.Vals[row:rp[i+1]]
		var s float64
		for k, c := range cols {
			if c >= exLo && c < exHi {
				continue
			}
			s += vals[k] * x[c]
		}
		y[i-lo] = s
	}
}

// MulVecRangeExcludingBlocks computes, for rows in [lo, hi),
// y[i-lo] = sum of A[i][j]*x[j] over columns j not inside any of the
// excluded half-open column ranges. Used for combined multi-error
// recoveries (§2.4). The ranges need not be sorted. Output is compact:
// y needs only hi-lo elements.
//
// The ranges are sorted and merged once per call; columns within a row are
// strictly increasing, so each row advances a single cursor through the
// merged ranges instead of scanning every exclude per nonzero — a
// multi-DUE recovery over k pages costs O(nnz + k log k), not O(nnz·k).
func (a *CSR) MulVecRangeExcludingBlocks(x, y []float64, lo, hi int, exclude [][2]int) {
	merged := mergeRanges(exclude)
	rp := a.RowPtr
	for i := lo; i < hi; i++ {
		row := rp[i]
		cols := a.Cols[row:rp[i+1]]
		vals := a.Vals[row:rp[i+1]]
		var s float64
		ex := 0
		for k, c := range cols {
			for ex < len(merged) && c >= merged[ex][1] {
				ex++
			}
			if ex < len(merged) && c >= merged[ex][0] {
				continue
			}
			s += vals[k] * x[c]
		}
		y[i-lo] = s
	}
}

// mergeRanges returns the half-open ranges sorted by start with
// overlapping or touching ranges coalesced. Empty ranges are dropped. The
// input is not modified.
func mergeRanges(ranges [][2]int) [][2]int {
	switch len(ranges) {
	case 0:
		return nil
	case 1:
		if ranges[0][0] >= ranges[0][1] {
			return nil
		}
		return ranges
	}
	sorted := make([][2]int, 0, len(ranges))
	for _, r := range ranges {
		if r[0] < r[1] {
			sorted = append(sorted, r)
		}
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i][0] < sorted[j][0] })
	out := sorted[:0]
	for _, r := range sorted {
		if n := len(out); n > 0 && r[0] <= out[n-1][1] {
			if r[1] > out[n-1][1] {
				out[n-1][1] = r[1]
			}
			continue
		}
		out = append(out, r)
	}
	return out
}

// DiagBlock extracts the dense diagonal block A[lo:hi, lo:hi] in row-major
// order. The returned Dense is (hi-lo)×(hi-lo).
func (a *CSR) DiagBlock(lo, hi int) *Dense {
	k := hi - lo
	d := NewDense(k, k)
	for i := lo; i < hi; i++ {
		end := a.RowPtr[i+1]
		for p := a.RowPtr[i]; p < end; p++ {
			c := a.Cols[p]
			if c >= lo && c < hi {
				d.Set(i-lo, c-lo, a.Vals[p])
			}
		}
	}
	return d
}

// Block extracts the dense sub-block A[rlo:rhi, clo:chi].
func (a *CSR) Block(rlo, rhi, clo, chi int) *Dense {
	d := NewDense(rhi-rlo, chi-clo)
	for i := rlo; i < rhi; i++ {
		end := a.RowPtr[i+1]
		for p := a.RowPtr[i]; p < end; p++ {
			c := a.Cols[p]
			if c >= clo && c < chi {
				d.Set(i-rlo, c-clo, a.Vals[p])
			}
		}
	}
	return d
}

// Diag returns a copy of the main diagonal.
func (a *CSR) Diag() []float64 {
	n := a.N
	if a.M < n {
		n = a.M
	}
	d := make([]float64, n)
	for i := 0; i < n; i++ {
		d[i] = a.At(i, i)
	}
	return d
}

// IsSymmetric reports whether the matrix equals its transpose within tol
// (relative to the larger magnitude of the compared pair).
func (a *CSR) IsSymmetric(tol float64) bool {
	if a.N != a.M {
		return false
	}
	for i := 0; i < a.N; i++ {
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			j := a.Cols[k]
			v, w := a.Vals[k], a.At(j, i)
			scale := math.Max(math.Abs(v), math.Abs(w))
			if scale == 0 {
				continue
			}
			if math.Abs(v-w) > tol*math.Max(scale, 1) {
				return false
			}
		}
	}
	return true
}

// Transpose returns a new CSR holding Aᵀ.
func (a *CSR) Transpose() *CSR {
	t := &CSR{N: a.M, M: a.N, RowPtr: make([]int, a.M+1)}
	t.Cols = make([]int, len(a.Cols))
	t.Vals = make([]float64, len(a.Vals))
	for _, c := range a.Cols {
		t.RowPtr[c+1]++
	}
	for i := 0; i < t.N; i++ {
		t.RowPtr[i+1] += t.RowPtr[i]
	}
	next := make([]int, t.N)
	copy(next, t.RowPtr[:t.N])
	for i := 0; i < a.N; i++ {
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			c := a.Cols[k]
			pos := next[c]
			t.Cols[pos] = i
			t.Vals[pos] = a.Vals[k]
			next[c]++
		}
	}
	t.BuildIndex32()
	return t
}

// Clone returns a deep copy of the matrix.
func (a *CSR) Clone() *CSR {
	b := &CSR{N: a.N, M: a.M}
	b.RowPtr = append([]int(nil), a.RowPtr...)
	b.Cols = append([]int(nil), a.Cols...)
	b.Vals = append([]float64(nil), a.Vals...)
	b.BuildIndex32()
	return b
}

// RowNNZ returns the number of stored entries in row i.
func (a *CSR) RowNNZ(i int) int { return a.RowPtr[i+1] - a.RowPtr[i] }

// OffBlockRowAbsSum returns sum_{j outside [lo,hi)} |A[i][j]| for row i.
// It is used to compute the contraction constant of Theorem 1.
func (a *CSR) OffBlockRowAbsSum(i, lo, hi int) float64 {
	var s float64
	for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
		c := a.Cols[k]
		if c >= lo && c < hi {
			continue
		}
		s += math.Abs(a.Vals[k])
	}
	return s
}
