// Kernels for the communication-avoiding s-step CG (internal/dist cacg):
// the batched pair-dot Gram kernel and the one-pass block update. Both
// follow the fused-kernel contract of this package — every floating-point
// operation happens in the exact order of the unfused composition, so
// results agree bitwise with the naive kernels (pinned in cacg_test.go).
package sparse

// pairDotsMaxCols bounds the per-element gather buffer of PairDotsRange;
// an s-step CG with s ≤ 8 touches at most 3s+1 = 25 columns.
const pairDotsMaxCols = 32

// PairDotsRange accumulates, for every pair (a, b) in pairs,
// out[k] += Σ_{i in [lo,hi)} cols[a][i]·cols[b][i] — the Gram-block
// kernel of the s-step CG: one pass over the basis/direction columns
// produces every inner product the coordinator recurrences need, instead
// of one DotRange pass per pair. Each out[k] accumulates in ascending-i
// order, bitwise identical to DotRange(cols[a], cols[b], lo, hi).
//
//due:hotpath
func PairDotsRange(cols [][]float64, pairs [][2]int32, out []float64, lo, hi int) {
	if len(cols) <= pairDotsMaxCols {
		var v [pairDotsMaxCols]float64
		for i := lo; i < hi; i++ {
			for j, c := range cols {
				v[j] = c[i]
			}
			for k, pr := range pairs {
				out[k] += v[pr[0]] * v[pr[1]]
			}
		}
		return
	}
	for i := lo; i < hi; i++ {
		for k, pr := range pairs {
			out[k] += cols[pr[0]][i] * cols[pr[1]][i]
		}
	}
}

// cacgMaxS bounds the per-element recurrence buffers of CACGUpdateRange.
const cacgMaxS = 8

// MaxCACGBasis is the largest s-step basis size the fused kernels
// support (3s+1 = 25 columns stays under the PairDotsRange gather
// buffer, and the monomial basis is numerically hopeless beyond it
// anyway).
const MaxCACGBasis = cacgMaxS

// CACGUpdateRange is the whole vector phase of one s-step CG outer step
// fused into a single pass over [lo, hi): with K the s+1 Krylov basis
// columns (K[0] may alias r — every read of element i happens before any
// write to it), P and AP the s previous direction columns and their
// A-images, B the s×s column-major direction-combination matrix and a the
// s step coefficients,
//
//	Pnew[l]  = K[l]   + Σ_j B[j + l·s]·P[j]     (B == nil: Pnew[l] = K[l])
//	APnew[l] = K[l+1] + Σ_j B[j + l·s]·AP[j]
//	x += Σ_l a[l]·Pnew[l] ;  r -= Σ_l a[l]·APnew[l]
//
// writing Pnew/APnew over P/AP in place and returning the partial
// rr = Σ r[i]² of the updated residual values, so the drift check can
// ride the update's own pass. Element-wise the operations are
// independent and ordered exactly as the unfused composition (copy, then
// per-j axpys, then per-l axpys, then DotRange), so the results agree
// bitwise — pinned by TestCACGUpdateMatchesUnfused.
//
//due:hotpath
func CACGUpdateRange(kc, pc, apc [][]float64, b, a []float64, x, r []float64, lo, hi int) (rr float64) {
	s := len(pc)
	var pn, apn [cacgMaxS]float64
	for i := lo; i < hi; i++ {
		for l := 0; l < s; l++ {
			pv := kc[l][i]
			av := kc[l+1][i]
			if b != nil {
				for j := 0; j < s; j++ {
					c := b[l*s+j]
					pv += c * pc[j][i]
					av += c * apc[j][i]
				}
			}
			pn[l] = pv
			apn[l] = av
		}
		xv := x[i]
		rv := r[i]
		for l := 0; l < s; l++ {
			xv += a[l] * pn[l]
			rv -= a[l] * apn[l]
		}
		x[i] = xv
		r[i] = rv
		for l := 0; l < s; l++ {
			pc[l][i] = pn[l]
			apc[l][i] = apn[l]
		}
		rr += rv * rv
	}
	return rr
}
