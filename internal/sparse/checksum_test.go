package sparse

import (
	"math"
	"math/rand"
	"testing"
)

func fill(rng *rand.Rand, n int) []float64 {
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	return x
}

// The checksum-carrying kernels must be BITWISE identical to the plain
// kernels they shadow on clean data: same loop body, same accumulation
// order, the checksum fold riding on register-resident values.
func TestChecksumKernelsBitwiseEqualPlain(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	const n = 777
	lo, hi := 13, 700
	x := fill(rng, n)
	y := fill(rng, n)
	alpha, beta := 1.37, -0.61

	// Xpby: out = x + beta*y.
	outP := make([]float64, n)
	outC := make([]float64, n)
	XpbyOutRange(x, beta, y, outP, lo, hi)
	ck := XpbyOutChecksumRange(x, beta, y, outC, lo, hi)
	for i := lo; i < hi; i++ {
		if math.Float64bits(outP[i]) != math.Float64bits(outC[i]) {
			t.Fatalf("Xpby bitwise mismatch at %d: % x vs % x", i, outP[i], outC[i])
		}
	}
	if got := ChecksumRange(outC, lo, hi); got != ck {
		t.Fatalf("Xpby checksum %x does not match recompute %x", ck, got)
	}

	// Copy.
	cpP := make([]float64, n)
	cpC := make([]float64, n)
	copy(cpP[lo:hi], x[lo:hi])
	ck = CopyChecksumRange(cpC, x, lo, hi)
	for i := lo; i < hi; i++ {
		if math.Float64bits(cpP[i]) != math.Float64bits(cpC[i]) {
			t.Fatalf("Copy bitwise mismatch at %d", i)
		}
	}
	if got := ChecksumRange(cpC, lo, hi); got != ck {
		t.Fatalf("Copy checksum mismatch")
	}

	// Axpy: y += alpha*x.
	yP := append([]float64(nil), y...)
	yC := append([]float64(nil), y...)
	AxpyRange(alpha, x, yP, lo, hi)
	ck = AxpyChecksumRange(alpha, x, yC, lo, hi)
	for i := range yP {
		if math.Float64bits(yP[i]) != math.Float64bits(yC[i]) {
			t.Fatalf("Axpy bitwise mismatch at %d", i)
		}
	}
	if got := ChecksumRange(yC, lo, hi); got != ck {
		t.Fatalf("Axpy checksum mismatch")
	}

	// AxpyDot: y += alpha*x fused with <y,y>.
	yP = append([]float64(nil), y...)
	yC = append([]float64(nil), y...)
	dotP := AxpyDotRange(alpha, x, yP, lo, hi)
	dotC, ck := AxpyDotChecksumRange(alpha, x, yC, lo, hi)
	if math.Float64bits(dotP) != math.Float64bits(dotC) {
		t.Fatalf("AxpyDot scalar mismatch: % x vs % x", dotP, dotC)
	}
	for i := range yP {
		if math.Float64bits(yP[i]) != math.Float64bits(yC[i]) {
			t.Fatalf("AxpyDot bitwise mismatch at %d", i)
		}
	}
	if got := ChecksumRange(yC, lo, hi); got != ck {
		t.Fatalf("AxpyDot checksum mismatch")
	}
}

// XOR of raw bit patterns detects EVERY single-bit flip: flipping any bit
// of any element changes exactly one bit of the checksum.
func TestChecksumDetectsEverySingleBitFlip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	const n = 96
	x := fill(rng, n)
	ck := ChecksumRange(x, 0, n)
	for elem := 0; elem < n; elem += 7 {
		for bit := uint(0); bit < 64; bit++ {
			x[elem] = math.Float64frombits(math.Float64bits(x[elem]) ^ (1 << bit))
			if got := ChecksumRange(x, 0, n); got == ck {
				t.Fatalf("flip of elem %d bit %d undetected", elem, bit)
			}
			x[elem] = math.Float64frombits(math.Float64bits(x[elem]) ^ (1 << bit))
		}
	}
	if got := ChecksumRange(x, 0, n); got != ck {
		t.Fatalf("restore failed")
	}
}

// The checksum is order-independent over the page (XOR is commutative), so
// a chunked producer may fold sub-ranges in any order.
func TestChecksumComposesOverSubranges(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const n = 512
	x := fill(rng, n)
	whole := ChecksumRange(x, 0, n)
	split := ChecksumRange(x, 300, n) ^ ChecksumRange(x, 0, 300)
	if whole != split {
		t.Fatalf("checksum not XOR-composable: %x vs %x", whole, split)
	}
}
