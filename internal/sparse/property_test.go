package sparse

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// genMatrix draws a random small diagonally dominant CSR matrix for
// property tests.
func genMatrix(rng *rand.Rand) *CSR {
	n := 2 + rng.Intn(30)
	return randomSparse(n, 1+rng.Intn(5), rng)
}

type matrixAndVec struct {
	A *CSR
	X []float64
}

// Generate implements quick.Generator.
func (matrixAndVec) Generate(rng *rand.Rand, _ int) reflect.Value {
	a := genMatrix(rng)
	x := make([]float64, a.N)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	return reflect.ValueOf(matrixAndVec{A: a, X: x})
}

// Property: SpMV is linear — A(ax + by) = a·Ax + b·Ay.
func TestPropertySpMVLinear(t *testing.T) {
	f := func(mv matrixAndVec, a8, b8 int8) bool {
		al, be := float64(a8)/16, float64(b8)/16
		a := mv.A
		x := mv.X
		y := make([]float64, a.N)
		for i := range y {
			y[i] = float64(i%7) - 3
		}
		lhsIn := make([]float64, a.N)
		for i := range lhsIn {
			lhsIn[i] = al*x[i] + be*y[i]
		}
		lhs := make([]float64, a.N)
		a.MulVec(lhsIn, lhs)
		ax := make([]float64, a.N)
		ay := make([]float64, a.N)
		a.MulVec(x, ax)
		a.MulVec(y, ay)
		for i := range lhs {
			want := al*ax[i] + be*ay[i]
			if !almostEqual(lhs[i], want, 1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: transpose is an involution preserving every entry.
func TestPropertyTransposeInvolution(t *testing.T) {
	f := func(mv matrixAndVec) bool {
		a := mv.A
		att := a.Transpose().Transpose()
		if att.N != a.N || att.NNZ() != a.NNZ() {
			return false
		}
		for i := range a.Vals {
			if att.Vals[i] != a.Vals[i] || att.Cols[i] != a.Cols[i] {
				return false
			}
		}
		return att.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: excluding zero columns changes nothing; excluding all columns
// yields zero.
func TestPropertyExclusionBounds(t *testing.T) {
	f := func(mv matrixAndVec) bool {
		a, x := mv.A, mv.X
		full := make([]float64, a.N)
		a.MulVec(x, full)
		none := make([]float64, a.N)
		a.MulVecRangeExcludingCols(x, none, 0, a.N, 0, 0)
		all := make([]float64, a.N)
		a.MulVecRangeExcludingCols(x, all, 0, a.N, 0, a.N)
		for i := range full {
			if !almostEqual(none[i], full[i], 1e-12) || all[i] != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: a diagonally dominant matrix's diagonal block solve is the
// inverse of the block's own multiplication.
func TestPropertyBlockSolveInverse(t *testing.T) {
	f := func(mv matrixAndVec, rawBS uint8) bool {
		a := mv.A
		bs := 1 + int(rawBS)%a.N
		layout := BlockLayout{N: a.N, BlockSize: bs}
		cache := NewBlockSolverCache(a, layout, false)
		for blk := 0; blk < layout.NumBlocks(); blk++ {
			lo, hi := layout.Range(blk)
			want := mv.X[lo:hi]
			rhs := make([]float64, hi-lo)
			a.DiagBlock(lo, hi).MulVec(want, rhs)
			if err := cache.SolveDiagBlock(blk, rhs); err != nil {
				return false
			}
			for i := range rhs {
				if !almostEqual(rhs[i], want[i], 1e-6) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: Norm2 satisfies the triangle inequality and scaling axioms.
func TestPropertyNormAxioms(t *testing.T) {
	f := func(xs, ys []float64, s8 int8) bool {
		n := len(xs)
		if len(ys) < n {
			n = len(ys)
		}
		x, y := xs[:n], ys[:n]
		for _, v := range append(append([]float64{}, x...), y...) {
			// Axioms only claimed where x+y itself cannot overflow.
			if math.IsNaN(v) || math.Abs(v) > 1e150 {
				return true
			}
		}
		sum := make([]float64, n)
		for i := range sum {
			sum[i] = x[i] + y[i]
		}
		if Norm2(sum) > Norm2(x)+Norm2(y)+1e-9*(1+Norm2(x)+Norm2(y)) {
			return false
		}
		sc := float64(s8) / 8
		scaled := make([]float64, n)
		for i := range scaled {
			scaled[i] = sc * x[i]
		}
		want := math.Abs(sc) * Norm2(x)
		return almostEqual(Norm2(scaled), want, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Cholesky of Bᵀ B + nI always succeeds and solves correctly.
func TestPropertyCholeskyOnGram(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(20)
		m := randomSPDDense(n, rng)
		want := make([]float64, n)
		for i := range want {
			want[i] = rng.NormFloat64()
		}
		rhs := make([]float64, n)
		m.MulVec(want, rhs)
		c, err := NewCholesky(m)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		c.Solve(rhs)
		for i := range rhs {
			if !almostEqual(rhs[i], want[i], 1e-7) {
				t.Fatalf("trial %d: x[%d] = %v, want %v", trial, i, rhs[i], want[i])
			}
		}
	}
}
