package taskrt

import (
	"sync/atomic"
	"testing"
)

// Steal-vs-global attribution benchmarks: identical task graphs on the
// work-stealing scheduler and the single-queue (pre-stealing) scheduler,
// plus the zero-allocation prepared-graph replay. Run with -benchmem.

func benchThroughput(b *testing.B, rt *Runtime) {
	defer rt.Close()
	var sink atomic.Int64
	const wave = 256
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < wave; j++ {
			rt.Submit(TaskSpec{Run: func(int) { sink.Add(1) }})
		}
		rt.Quiesce()
	}
	b.ReportMetric(float64(wave), "tasks/op")
}

func BenchmarkThroughputSteal(b *testing.B)  { benchThroughput(b, New(4)) }
func BenchmarkThroughputGlobal(b *testing.B) { benchThroughput(b, NewSingleQueue(4)) }

func benchFanChain(b *testing.B, rt *Runtime) {
	defer rt.Close()
	var sink atomic.Int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var prev *Handle
		for d := 0; d < 8; d++ {
			fan := rt.ParallelFor(1024, 4, "fan", []*Handle{prev}, 0, func(w, lo, hi int) {
				sink.Add(int64(hi - lo))
			})
			prev = rt.Submit(TaskSpec{Run: func(int) {}, After: fan})
		}
		rt.Wait(prev)
	}
}

func BenchmarkFanChainSteal(b *testing.B)  { benchFanChain(b, New(4)) }
func BenchmarkFanChainGlobal(b *testing.B) { benchFanChain(b, NewSingleQueue(4)) }

// BenchmarkResubmitIteration replays a prepared two-stage graph — the
// steady-state solver iteration shape. With -benchmem this must report
// 0 allocs/op.
func BenchmarkResubmitIteration(b *testing.B) {
	rt := New(4)
	defer rt.Close()
	var sink atomic.Int64
	a := make([]*Handle, 4)
	c := make([]*Handle, 4)
	for i := range a {
		a[i] = rt.NewTask(TaskSpec{Run: func(int) { sink.Add(1) }, Label: "a"})
		c[i] = rt.NewTask(TaskSpec{Run: func(int) { sink.Add(1) }, Label: "c"})
	}
	for i := 0; i < 10; i++ { // warm up rings and wait conds
		rt.ResubmitAll(a, nil)
		rt.ResubmitAll(c, a)
		rt.WaitAll(c)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rt.ResubmitAll(a, nil)
		rt.ResubmitAll(c, a)
		rt.WaitAll(c)
	}
}

// BenchmarkSubmitIteration is the same graph shape submitted the
// pre-reuse way: fresh handles and closures every round.
func BenchmarkSubmitIteration(b *testing.B) {
	rt := New(4)
	defer rt.Close()
	var sink atomic.Int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := make([]*Handle, 4)
		for j := range a {
			a[j] = rt.Submit(TaskSpec{Run: func(int) { sink.Add(1) }, Label: "a"})
		}
		c := make([]*Handle, 4)
		for j := range c {
			c[j] = rt.Submit(TaskSpec{Run: func(int) { sink.Add(1) }, Label: "c", After: a})
		}
		rt.WaitAll(c)
	}
}
