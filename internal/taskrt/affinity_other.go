//go:build !linux

package taskrt

import "errors"

// pinThreadToCPU is unavailable off Linux: the locked OS thread is the
// whole affinity story there.
func pinThreadToCPU(int) error { return errors.New("taskrt: cpu pinning unsupported on this platform") }
