// Package taskrt is a task-based dataflow runtime in the spirit of OmpSs
// (§3.3 of the paper): serial code is split into tasks scheduled
// asynchronously on a worker pool according to explicit dependencies, with
// task priorities so low-priority recovery tasks start only after the
// reduction tasks they overlap with (AFEIR, Fig 2b).
//
// Unlike OmpSs the dependencies are expressed directly as task handles
// rather than inferred from data annotations; the solver layer builds the
// same graph as the paper's Figure 1. The runtime keeps per-worker state
// clocks (useful / runtime / idle) so the Table 3 breakdown can be
// reproduced.
//
// Scheduling: each worker owns a FIFO run queue; default-priority tasks
// are pushed to the enqueuing worker's own queue (round-robin across
// queues for external submissions) and idle workers steal from their
// peers, so the steady-state hot path never contends on a single lock.
// Tasks with a non-zero priority flow through one shared priority heap:
// positive priorities preempt all queued default work, negative
// priorities (the overlapped recovery tasks) run only when a worker finds
// no default work anywhere — exactly the paper's "recovery tasks start
// after the reductions" discipline. NewSingleQueue builds the pre-stealing
// scheduler (everything through the shared heap) so benchmarks can
// attribute steal-vs-global effects.
//
// Handles are reusable: NewTask binds a task body without running it and
// Resubmit/ResubmitAll replay finished handles with fresh dependencies,
// so a solver's steady-state iteration re-issues its whole task graph
// with zero allocations. Completion waiting is lazily allocated (a
// sync.Cond created on the first Wait and kept across reuse) — tasks that
// nobody waits on cost nothing.
package taskrt

import (
	"container/heap"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Handle identifies a submitted task and can be used as a dependency for
// later tasks or waited upon. Handles returned by NewTask can be replayed
// with Resubmit once the previous run finished.
type Handle struct {
	rt       *Runtime
	priority int
	home     int // 1-based preferred worker queue; 0 = any
	label    string
	run      func(worker int)

	seq   uint64       // assigned per (re)submission: FIFO tie-break
	npred atomic.Int32 // outstanding dependencies + 1 registration guard
	doneA atomic.Bool  // fast-path mirror of done

	mu       sync.Mutex
	succs    []*Handle // capacity reused across resubmissions
	done     bool
	inflight bool
	cond     *sync.Cond // lazily created on first Wait, kept across reuse
}

// Label returns the diagnostic label of the task.
func (h *Handle) Label() string { return h.label }

// Done reports whether the most recent submission of the task finished.
func (h *Handle) Done() bool { return h.doneA.Load() }

// TaskSpec describes a task to submit.
type TaskSpec struct {
	// Run is the task body. The worker index (0..NumWorkers-1) is passed
	// in for per-worker scratch data. Must not be nil.
	Run func(worker int)
	// After lists tasks that must complete before this one starts. Nil
	// entries are ignored (convenient for optional graph edges).
	After []*Handle
	// Priority orders ready tasks: higher runs first. The paper gives
	// recovery tasks lower priority than reductions (§3.3.2).
	Priority int
	// Home is a placement hint: when non-zero, every (re)submission of
	// the task enqueues on worker Home-1's run queue instead of
	// round-robin or the releasing worker's queue (use HomeWorker to
	// encode a worker index). A task that touches the same pages every
	// superstep keeps its data resident in one worker's cache across
	// replays. It is a hint, not a bind: idle workers still steal, and
	// non-zero-priority tasks flow through the shared heap regardless.
	Home int
	// Label is a diagnostic name ("q", "<d,q>", "r1", ...).
	Label string
}

// HomeWorker encodes worker index w as a TaskSpec.Home value.
func HomeWorker(w int) int { return w + 1 }

// StateTimes is the cumulative per-worker time accounting used for the
// Table 3 breakdown: Useful (executing task bodies), Runtime (scheduler
// bookkeeping), Idle (waiting for work: load imbalance).
type StateTimes struct {
	Useful  time.Duration
	Runtime time.Duration
	Idle    time.Duration
}

// Total returns the sum of all states.
func (s StateTimes) Total() time.Duration { return s.Useful + s.Runtime + s.Idle }

// wq is one worker's FIFO run queue: a mutex-protected growable ring.
// The owner pops from the head; thieves steal from the head too — FIFO
// order preserves submission order among equal-priority tasks, matching
// the old single-heap scheduler's tie-break.
type wq struct {
	mu         sync.Mutex
	buf        []*Handle // len(buf) is a power of two
	head, tail uint64
	_          [40]byte // pad to a cache line: queues sit in one slice
}

func (q *wq) push(h *Handle) {
	q.mu.Lock()
	if n := uint64(len(q.buf)); q.tail-q.head == n {
		grown := make([]*Handle, max(16, 2*int(n)))
		for i := q.head; i < q.tail; i++ {
			grown[i&uint64(len(grown)-1)] = q.buf[i&(n-1)]
		}
		q.buf = grown
	}
	q.buf[q.tail&uint64(len(q.buf)-1)] = h
	q.tail++
	q.mu.Unlock()
}

func (q *wq) pop() *Handle {
	q.mu.Lock()
	if q.head == q.tail {
		q.mu.Unlock()
		return nil
	}
	i := q.head & uint64(len(q.buf)-1)
	h := q.buf[i]
	q.buf[i] = nil
	q.head++
	q.mu.Unlock()
	return h
}

// Runtime is a fixed-size worker pool executing dependency-ordered tasks.
type Runtime struct {
	workers    int
	singleMode bool // every task through the shared heap (pre-stealing)
	shared     bool // process-wide pool: Close drains instead of shutting down

	qs []wq // per-worker run queues (priority-0 tasks)

	gmu   sync.Mutex
	gheap taskHeap // tasks with non-zero priority (all tasks in singleMode)
	npos  atomic.Int64

	seq     atomic.Uint64
	avail   atomic.Int64 // queued-and-ready task count across all queues
	rr      atomic.Uint64
	pending atomic.Int64
	closed  atomic.Bool

	sleepMu   sync.Mutex
	sleepCond *sync.Cond
	sleepers  atomic.Int32 // updated under sleepMu

	qmu      sync.Mutex
	qcond    *sync.Cond
	qwaiters atomic.Int32 // updated under qmu

	procs int // GOMAXPROCS at construction: caps useful wake-ups

	times   []StateTimes
	timesMu []sync.Mutex

	panicOnce sync.Once
	panicked  atomic.Pointer[panicBox]
}

type panicBox struct{ v any }

// New creates a work-stealing runtime with the given number of workers
// (0 means runtime.GOMAXPROCS(0)) and starts them.
func New(workers int) *Runtime { return newRuntime(workers, false) }

// NewSingleQueue creates a runtime whose ready tasks all flow through one
// shared priority heap and whose waiters park instead of helping — the
// pre-work-stealing scheduler, kept so benchmarks can attribute
// steal+help-vs-global scheduling effects.
func NewSingleQueue(workers int) *Runtime { return newRuntime(workers, true) }

func newRuntime(workers int, single bool) *Runtime {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	rt := &Runtime{
		workers:    workers,
		singleMode: single,
		procs:      runtime.GOMAXPROCS(0),
		qs:         make([]wq, workers),
		times:      make([]StateTimes, workers),
		timesMu:    make([]sync.Mutex, workers),
	}
	rt.sleepCond = sync.NewCond(&rt.sleepMu)
	rt.qcond = sync.NewCond(&rt.qmu)
	pin := pinCPUs.Load()
	for w := 0; w < workers; w++ {
		w := w
		go func() {
			if pin {
				// Stable worker→thread→core identity: the goroutine stays
				// on one OS thread and that thread on one core, so the
				// Home-hint page locality survives the OS scheduler.
				runtime.LockOSThread()
				_ = pinThreadToCPU(w % runtime.NumCPU())
			}
			rt.worker(w)
		}()
	}
	return rt
}

// pinCPUs opts worker threads into OS-level core pinning (see
// EnableCPUPinning). Read once at construction.
var pinCPUs atomic.Bool

func init() {
	if os.Getenv("DUE_PIN_CPUS") == "1" {
		pinCPUs.Store(true)
	}
}

// EnableCPUPinning requests that runtimes constructed AFTER the call lock
// each worker goroutine to an OS thread and pin that thread to core
// (worker mod NumCPU) — the worker→core affinity leg of the Home-hint
// locality model. Default off (shared machines and CI runners schedule
// better unpinned); the DUE_PIN_CPUS=1 environment variable turns it on
// at process start. Pinning is best-effort: platforms without a
// sched_setaffinity equivalent keep only the thread lock.
func EnableCPUPinning(on bool) { pinCPUs.Store(on) }

// NumWorkers returns the pool size.
func (rt *Runtime) NumWorkers() int { return rt.workers }

// IsShared reports whether this runtime is the process-wide shared pool
// (see Shared), whose Close drains instead of shutting workers down.
func (rt *Runtime) IsShared() bool { return rt.shared }

var (
	sharedMu sync.Mutex
	sharedRT *Runtime
)

// Shared returns the process-wide shared worker pool, creating it with the
// given size (0 means GOMAXPROCS) on first call. Every later call returns
// the SAME pool regardless of the requested size: one process gets one
// pool, so concurrent solver instances never oversubscribe the machine
// with per-instance worker sets (the pre-serving bug: registry.New built
// a fresh pool per instance even when Workers matched an existing one).
// Close on the shared pool is a no-op; use CloseShared to actually shut
// it down (tests, process exit).
func Shared(workers int) *Runtime {
	sharedMu.Lock()
	defer sharedMu.Unlock()
	if sharedRT == nil || sharedRT.closed.Load() {
		sharedRT = newRuntime(workers, false)
		sharedRT.shared = true
	}
	return sharedRT
}

// SharedSize returns the worker count of the shared pool, or 0 when no
// shared pool exists yet — callers can report whether a Workers request
// was honoured or coalesced onto an existing pool.
func SharedSize() int {
	sharedMu.Lock()
	defer sharedMu.Unlock()
	if sharedRT == nil || sharedRT.closed.Load() {
		return 0
	}
	return sharedRT.workers
}

// CloseShared shuts the process-wide pool down (if one exists) after all
// submitted work completes. The next Shared call creates a fresh pool.
func CloseShared() {
	sharedMu.Lock()
	rt := sharedRT
	sharedRT = nil
	sharedMu.Unlock()
	if rt != nil {
		rt.shared = false
		rt.Close()
	}
}

// Submit schedules a task, returning its handle. Submitting after Close
// panics.
func (rt *Runtime) Submit(spec TaskSpec) *Handle {
	h := rt.NewTask(spec)
	rt.start(h, spec.After, -1, true)
	return h
}

// NewTask binds a task body without submitting it — the building block of
// prepared (replayed) task graphs. Run it with Resubmit. A never-submitted
// task counts as finished: using it as a dependency is a no-op edge.
func (rt *Runtime) NewTask(spec TaskSpec) *Handle {
	if spec.Run == nil {
		panic("taskrt: TaskSpec.Run is nil")
	}
	h := &Handle{rt: rt, priority: spec.Priority, home: spec.Home, label: spec.Label, run: spec.Run}
	h.done = true // a fresh prepared task counts as "finished": resubmittable
	h.doneA.Store(true)
	return h
}

// Resubmit replays a finished (or never-run) handle with fresh
// dependencies: same body, label and priority, zero allocations. It
// panics if the previous submission has not finished — waiting on the
// handle first is the caller's job.
func (rt *Runtime) Resubmit(h *Handle, after []*Handle) {
	rt.resubmitOne(h, after)
	rt.wake(1)
}

// ResubmitAll replays a batch of finished handles with one shared
// dependency list and a single wake-up pass — the batched steady-state
// submission of a whole chunked operation.
func (rt *Runtime) ResubmitAll(hs []*Handle, after []*Handle) {
	for _, h := range hs {
		rt.resubmitOne(h, after)
	}
	rt.wake(len(hs))
}

func (rt *Runtime) resubmitOne(h *Handle, after []*Handle) {
	if h.rt != rt {
		panic("taskrt: Resubmit of a task from a different runtime")
	}
	h.mu.Lock()
	if h.inflight {
		h.mu.Unlock()
		panic("taskrt: Resubmit of an in-flight task")
	}
	h.mu.Unlock()
	rt.start(h, after, -1, false)
}

// start registers h's dependencies and enqueues it when ready. enqWorker
// is the preferred run queue (-1: round-robin).
func (rt *Runtime) start(h *Handle, after []*Handle, enqWorker int, wake bool) {
	if rt.closed.Load() {
		panic("taskrt: Submit after Close")
	}
	for _, pred := range after {
		if pred != nil && pred.rt != rt {
			panic("taskrt: dependency from a different runtime")
		}
	}
	h.mu.Lock()
	h.done = false
	h.inflight = true
	h.doneA.Store(false)
	h.mu.Unlock()
	h.seq = rt.seq.Add(1)
	rt.pending.Add(1)
	// The extra +1 keeps h unready until registration completes, even if
	// every predecessor finishes mid-loop.
	h.npred.Store(1)
	for _, pred := range after {
		if pred == nil {
			continue
		}
		pred.mu.Lock()
		if !pred.done {
			pred.succs = append(pred.succs, h)
			h.npred.Add(1)
		}
		pred.mu.Unlock()
	}
	if h.npred.Add(-1) == 0 {
		rt.enqueue(h, enqWorker, wake)
	}
}

// enqueue places a ready task on a run queue. worker is the preferred
// queue (-1: round-robin across queues).
func (rt *Runtime) enqueue(h *Handle, worker int, wake bool) {
	if rt.singleMode || h.priority != 0 {
		rt.gmu.Lock()
		heap.Push(&rt.gheap, h)
		if h.priority > 0 {
			rt.npos.Add(1)
		}
		rt.gmu.Unlock()
	} else {
		if h.home > 0 {
			// Affinity hint: always land on the home queue, overriding
			// both round-robin and the releasing worker's locality.
			worker = (h.home - 1) % rt.workers
		} else if worker < 0 {
			worker = int(rt.rr.Add(1) % uint64(rt.workers))
		}
		rt.qs[worker].push(h)
	}
	rt.avail.Add(1)
	if wake {
		rt.wake(1)
	}
}

// help lets a waiting thread pop and execute ready tasks until done()
// holds or no work is ready. Helpers run with worker index 0 and their
// execution time accrues to worker 0's clock — the coordinator is a team
// member during a taskwait, as in OmpSs.
func (rt *Runtime) help(done func() bool) {
	var useful time.Duration
	for !done() {
		t := rt.tryPop(0)
		if t == nil {
			break
		}
		t0 := time.Now()
		rt.execute(t, 0)
		useful += time.Since(t0)
	}
	if useful > 0 {
		rt.timesMu[0].Lock()
		rt.times[0].Useful += useful
		rt.timesMu[0].Unlock()
	}
}

// wake rouses up to n sleeping workers. In stealing mode wake-ups are
// capped at GOMAXPROCS-1: the thread that will Wait on the work helps
// execute it (see help), so rousing more workers than there are spare
// processors only adds context-switch churn — on a single-processor
// host the whole graph runs inline in the waiter and the workers stay
// parked. The single-queue compatibility mode keeps the pre-stealing
// behaviour (no helping, so every wake-up is needed).
func (rt *Runtime) wake(n int) {
	if !rt.singleMode {
		if spare := rt.procs - 1; n > spare {
			n = spare
		}
	}
	if n <= 0 || rt.sleepers.Load() == 0 {
		return
	}
	rt.sleepMu.Lock()
	if n >= rt.workers {
		rt.sleepCond.Broadcast()
	} else {
		for i := 0; i < n; i++ {
			rt.sleepCond.Signal()
		}
	}
	rt.sleepMu.Unlock()
}

// tryPop finds the next task for worker w: positive-priority heap tasks
// first, then the worker's own queue, then stealing from peers, then the
// heap's leftovers (the negative-priority overlapped recoveries).
func (rt *Runtime) tryPop(w int) *Handle {
	if rt.npos.Load() > 0 {
		if h := rt.popGlobal(true); h != nil {
			return h
		}
	}
	if !rt.singleMode {
		if h := rt.qs[w].pop(); h != nil {
			rt.avail.Add(-1)
			return h
		}
		for i := 1; i < rt.workers; i++ {
			if h := rt.qs[(w+i)%rt.workers].pop(); h != nil {
				rt.avail.Add(-1)
				return h
			}
		}
	}
	return rt.popGlobal(false)
}

func (rt *Runtime) popGlobal(onlyPositive bool) *Handle {
	rt.gmu.Lock()
	if len(rt.gheap) == 0 || (onlyPositive && rt.gheap[0].priority <= 0) {
		rt.gmu.Unlock()
		return nil
	}
	h := heap.Pop(&rt.gheap).(*Handle)
	if h.priority > 0 {
		rt.npos.Add(-1)
	}
	rt.gmu.Unlock()
	rt.avail.Add(-1)
	return h
}

// Wait blocks until the most recent submission of the task has finished.
//
// A waiter does not just park: while the task is pending it HELPS — it
// pops and executes ready tasks itself (help-first taskwait, as in
// OmpSs/TBB). When cores are oversubscribed this collapses the dependent
// waves of an iteration into the waiting thread with no scheduler
// round-trips, and on free cores the coordinator simply contributes.
// Helpers run task bodies with worker index 0 (no task in this codebase
// keys scratch off the index) and their execution time accrues to worker
// 0's Useful clock — see help() — so Table 3 reads worker 0 as "worker 0
// plus the coordinating thread's team contribution".
func (rt *Runtime) Wait(h *Handle) {
	if !rt.singleMode { // the pre-stealing scheduler parked, faithfully
		rt.help(func() bool { return h.doneA.Load() })
	}
	if h.doneA.Load() {
		return
	}
	h.mu.Lock()
	if h.cond == nil {
		h.cond = sync.NewCond(&h.mu)
	}
	for !h.done {
		h.cond.Wait()
	}
	h.mu.Unlock()
}

// WaitAll blocks until all listed tasks have finished. Nil handles are
// ignored.
func (rt *Runtime) WaitAll(hs []*Handle) {
	for _, h := range hs {
		if h != nil {
			rt.Wait(h)
		}
	}
}

// Quiesce blocks until every submitted task has finished. It panics with
// the original value if any task panicked. Like Wait, it helps execute
// ready tasks before parking.
func (rt *Runtime) Quiesce() {
	if !rt.singleMode {
		rt.help(func() bool { return rt.pending.Load() == 0 })
	}
	if rt.pending.Load() > 0 {
		rt.qmu.Lock()
		rt.qwaiters.Add(1)
		for rt.pending.Load() > 0 {
			rt.qcond.Wait()
		}
		rt.qwaiters.Add(-1)
		rt.qmu.Unlock()
	}
	if p := rt.panicked.Load(); p != nil {
		panic(p.v)
	}
}

// Close shuts the workers down after all submitted work completes.
// The runtime cannot be reused. On the process-wide shared pool (see
// Shared) Close is a no-op: a solver that waited on its own handles has
// nothing left to drain, and a global Quiesce would barrier on every
// concurrent solve's work. Use CloseShared to really shut it down.
func (rt *Runtime) Close() {
	if rt.shared {
		return
	}
	rt.Quiesce()
	rt.closed.Store(true)
	rt.sleepMu.Lock()
	rt.sleepCond.Broadcast()
	rt.sleepMu.Unlock()
}

// WorkerTimes returns a snapshot of the cumulative per-worker state
// clocks.
func (rt *Runtime) WorkerTimes() []StateTimes {
	out := make([]StateTimes, rt.workers)
	for w := 0; w < rt.workers; w++ {
		rt.timesMu[w].Lock()
		out[w] = rt.times[w]
		rt.timesMu[w].Unlock()
	}
	return out
}

// TotalTimes sums the per-worker clocks.
func (rt *Runtime) TotalTimes() StateTimes {
	var t StateTimes
	for _, w := range rt.WorkerTimes() {
		t.Useful += w.Useful
		t.Runtime += w.Runtime
		t.Idle += w.Idle
	}
	return t
}

// ResetTimes zeroes the state clocks (between experiment phases).
func (rt *Runtime) ResetTimes() {
	for w := 0; w < rt.workers; w++ {
		rt.timesMu[w].Lock()
		rt.times[w] = StateTimes{}
		rt.timesMu[w].Unlock()
	}
}

// ParallelFor strip-mines the half-open range [0, n) into the given number
// of chunks and submits one task per chunk in a single batch (one
// registration pass and one wake-up, not one lock round-trip per chunk).
// fn receives the chunk's element range. Returns the handles of all chunk
// tasks; they share the given label.
func (rt *Runtime) ParallelFor(n, chunks int, label string, after []*Handle, priority int, fn func(worker, lo, hi int)) []*Handle {
	if chunks <= 0 {
		chunks = rt.workers
	}
	if chunks > n && n > 0 {
		chunks = n
	}
	handles := make([]*Handle, 0, chunks)
	for c := 0; c < chunks; c++ {
		lo := c * n / chunks
		hi := (c + 1) * n / chunks
		if lo >= hi {
			continue
		}
		h := rt.NewTask(TaskSpec{
			Run:      func(worker int) { fn(worker, lo, hi) },
			Priority: priority,
			Label:    label,
		})
		rt.start(h, after, -1, false)
		handles = append(handles, h)
	}
	rt.wake(len(handles))
	return handles
}

func (rt *Runtime) worker(w int) {
	var useful, overhead, idle time.Duration
	flush := func() {
		rt.timesMu[w].Lock()
		rt.times[w].Useful += useful
		rt.times[w].Runtime += overhead
		rt.times[w].Idle += idle
		rt.timesMu[w].Unlock()
		useful, overhead, idle = 0, 0, 0
	}
	for {
		tSched := time.Now()
		h := rt.tryPop(w)
		if h == nil {
			// Account the scan as scheduler time and the sleep as idle
			// (load imbalance).
			tIdle := time.Now()
			overhead += tIdle.Sub(tSched)
			exit := false
			rt.sleepMu.Lock()
			rt.sleepers.Add(1)
			for rt.avail.Load() == 0 && !rt.closed.Load() {
				rt.sleepCond.Wait()
			}
			rt.sleepers.Add(-1)
			exit = rt.closed.Load() && rt.avail.Load() == 0
			rt.sleepMu.Unlock()
			idle += time.Since(tIdle)
			if exit {
				flush()
				return
			}
			continue
		}
		tRun := time.Now()
		overhead += tRun.Sub(tSched)

		rt.execute(h, w)

		tDone := time.Now()
		useful += tDone.Sub(tRun)
		if useful+overhead+idle > time.Millisecond {
			flush()
		}
	}
}

func (rt *Runtime) execute(h *Handle, w int) {
	defer func() {
		if r := recover(); r != nil {
			rt.panicOnce.Do(func() {
				rt.panicked.Store(&panicBox{v: r})
			})
		}
		rt.finish(h, w)
	}()
	h.run(w)
}

func (rt *Runtime) finish(h *Handle, w int) {
	h.mu.Lock()
	h.done = true
	h.inflight = false
	h.doneA.Store(true)
	// Successor release runs under h.mu: once done is set, a concurrent
	// Resubmit could re-register edges into succs, and the truncation
	// below must not race with that. Queue pushes take no handle locks,
	// so there is no lock-order hazard.
	released := 0
	for i, s := range h.succs {
		if s.npred.Add(-1) == 0 {
			rt.enqueue(s, w, false)
			released++
		}
		h.succs[i] = nil
	}
	h.succs = h.succs[:0]
	if h.cond != nil {
		h.cond.Broadcast()
	}
	h.mu.Unlock()
	if released > 1 {
		rt.wake(released - 1) // this worker takes one itself
	} else if released == 1 && rt.sleepers.Load() > 0 {
		rt.wake(1)
	}
	if rt.pending.Add(-1) == 0 && rt.qwaiters.Load() > 0 {
		rt.qmu.Lock()
		rt.qcond.Broadcast()
		rt.qmu.Unlock()
	}
}

// taskHeap orders ready tasks by descending priority, then FIFO.
type taskHeap []*Handle

func (th taskHeap) Len() int { return len(th) }
func (th taskHeap) Less(i, j int) bool {
	if th[i].priority != th[j].priority {
		return th[i].priority > th[j].priority
	}
	return th[i].seq < th[j].seq
}
func (th taskHeap) Swap(i, j int) { th[i], th[j] = th[j], th[i] }
func (th *taskHeap) Push(x any)   { *th = append(*th, x.(*Handle)) }
func (th *taskHeap) Pop() any {
	old := *th
	n := len(old)
	x := old[n-1]
	old[n-1] = nil
	*th = old[:n-1]
	return x
}
