// Package taskrt is a task-based dataflow runtime in the spirit of OmpSs
// (§3.3 of the paper): serial code is split into tasks scheduled
// asynchronously on a worker pool according to explicit dependencies, with
// task priorities so low-priority recovery tasks start only after the
// reduction tasks they overlap with (AFEIR, Fig 2b).
//
// Unlike OmpSs the dependencies are expressed directly as task handles
// rather than inferred from data annotations; the solver layer builds the
// same graph as the paper's Figure 1. The runtime keeps per-worker state
// clocks (useful / runtime / idle) so the Table 3 breakdown can be
// reproduced.
package taskrt

import (
	"container/heap"
	"fmt"
	"runtime"
	"sync"
	"time"
)

// Handle identifies a submitted task and can be used as a dependency for
// later tasks or waited upon.
type Handle struct {
	rt       *Runtime
	seq      uint64
	priority int
	label    string
	run      func(worker int)

	// Guarded by rt.mu:
	npred int
	succs []*Handle
	done  bool

	doneCh chan struct{}
}

// Label returns the diagnostic label of the task.
func (h *Handle) Label() string { return h.label }

// TaskSpec describes a task to submit.
type TaskSpec struct {
	// Run is the task body. The worker index (0..NumWorkers-1) is passed
	// in for per-worker scratch data. Must not be nil.
	Run func(worker int)
	// After lists tasks that must complete before this one starts. Nil
	// entries are ignored (convenient for optional graph edges).
	After []*Handle
	// Priority orders ready tasks: higher runs first. The paper gives
	// recovery tasks lower priority than reductions (§3.3.2).
	Priority int
	// Label is a diagnostic name ("q", "<d,q>", "r1", ...).
	Label string
}

// StateTimes is the cumulative per-worker time accounting used for the
// Table 3 breakdown: Useful (executing task bodies), Runtime (scheduler
// bookkeeping), Idle (waiting for work: load imbalance).
type StateTimes struct {
	Useful  time.Duration
	Runtime time.Duration
	Idle    time.Duration
}

// Total returns the sum of all states.
func (s StateTimes) Total() time.Duration { return s.Useful + s.Runtime + s.Idle }

// Runtime is a fixed-size worker pool executing dependency-ordered tasks.
type Runtime struct {
	mu      sync.Mutex
	cond    *sync.Cond
	ready   taskHeap
	seq     uint64
	pending int // submitted but not finished
	closed  bool

	idleWaiters int
	quiescent   *sync.Cond // signalled when pending == 0

	workers int
	times   []StateTimes
	timesMu []sync.Mutex

	panicOnce sync.Once
	panicked  any
}

// New creates a runtime with the given number of workers (0 means
// runtime.GOMAXPROCS(0)) and starts them.
func New(workers int) *Runtime {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	rt := &Runtime{
		workers: workers,
		times:   make([]StateTimes, workers),
		timesMu: make([]sync.Mutex, workers),
	}
	rt.cond = sync.NewCond(&rt.mu)
	rt.quiescent = sync.NewCond(&rt.mu)
	for w := 0; w < workers; w++ {
		go rt.worker(w)
	}
	return rt
}

// NumWorkers returns the pool size.
func (rt *Runtime) NumWorkers() int { return rt.workers }

// Submit schedules a task, returning its handle. Submitting after Close
// panics.
func (rt *Runtime) Submit(spec TaskSpec) *Handle {
	if spec.Run == nil {
		panic("taskrt: TaskSpec.Run is nil")
	}
	h := &Handle{
		rt:       rt,
		priority: spec.Priority,
		label:    spec.Label,
		run:      spec.Run,
		doneCh:   make(chan struct{}),
	}
	for _, pred := range spec.After {
		if pred != nil && pred.rt != rt {
			panic("taskrt: dependency from a different runtime")
		}
	}
	rt.mu.Lock()
	if rt.closed {
		rt.mu.Unlock()
		panic("taskrt: Submit after Close")
	}
	rt.seq++
	h.seq = rt.seq
	rt.pending++
	for _, pred := range spec.After {
		if pred == nil {
			continue
		}
		if !pred.done {
			pred.succs = append(pred.succs, h)
			h.npred++
		}
	}
	if h.npred == 0 {
		heap.Push(&rt.ready, h)
		rt.cond.Signal()
	}
	rt.mu.Unlock()
	return h
}

// ParallelFor strip-mines the half-open range [0, n) into the given number
// of chunks and submits one task per chunk. fn receives the chunk's
// element range. Returns the handles of all chunk tasks.
func (rt *Runtime) ParallelFor(n, chunks int, label string, after []*Handle, priority int, fn func(worker, lo, hi int)) []*Handle {
	if chunks <= 0 {
		chunks = rt.workers
	}
	if chunks > n && n > 0 {
		chunks = n
	}
	handles := make([]*Handle, 0, chunks)
	for c := 0; c < chunks; c++ {
		lo := c * n / chunks
		hi := (c + 1) * n / chunks
		if lo >= hi {
			continue
		}
		handles = append(handles, rt.Submit(TaskSpec{
			Run:      func(worker int) { fn(worker, lo, hi) },
			After:    after,
			Priority: priority,
			Label:    fmt.Sprintf("%s[%d:%d]", label, lo, hi),
		}))
	}
	return handles
}

// Wait blocks until the given task has finished.
func (rt *Runtime) Wait(h *Handle) { <-h.doneCh }

// WaitAll blocks until all listed tasks have finished. Nil handles are
// ignored.
func (rt *Runtime) WaitAll(hs []*Handle) {
	for _, h := range hs {
		if h != nil {
			<-h.doneCh
		}
	}
}

// Quiesce blocks until every submitted task has finished. It panics with
// the original value if any task panicked.
func (rt *Runtime) Quiesce() {
	rt.mu.Lock()
	for rt.pending > 0 {
		rt.quiescent.Wait()
	}
	p := rt.panicked
	rt.mu.Unlock()
	if p != nil {
		panic(p)
	}
}

// Close shuts the workers down after all submitted work completes.
// The runtime cannot be reused.
func (rt *Runtime) Close() {
	rt.Quiesce()
	rt.mu.Lock()
	rt.closed = true
	rt.cond.Broadcast()
	rt.mu.Unlock()
}

// WorkerTimes returns a snapshot of the cumulative per-worker state
// clocks.
func (rt *Runtime) WorkerTimes() []StateTimes {
	out := make([]StateTimes, rt.workers)
	for w := 0; w < rt.workers; w++ {
		rt.timesMu[w].Lock()
		out[w] = rt.times[w]
		rt.timesMu[w].Unlock()
	}
	return out
}

// TotalTimes sums the per-worker clocks.
func (rt *Runtime) TotalTimes() StateTimes {
	var t StateTimes
	for _, w := range rt.WorkerTimes() {
		t.Useful += w.Useful
		t.Runtime += w.Runtime
		t.Idle += w.Idle
	}
	return t
}

// ResetTimes zeroes the state clocks (between experiment phases).
func (rt *Runtime) ResetTimes() {
	for w := 0; w < rt.workers; w++ {
		rt.timesMu[w].Lock()
		rt.times[w] = StateTimes{}
		rt.timesMu[w].Unlock()
	}
}

func (rt *Runtime) worker(w int) {
	var useful, overhead, idle time.Duration
	flush := func() {
		rt.timesMu[w].Lock()
		rt.times[w].Useful += useful
		rt.times[w].Runtime += overhead
		rt.times[w].Idle += idle
		rt.timesMu[w].Unlock()
		useful, overhead, idle = 0, 0, 0
	}
	for {
		tSched := time.Now()
		rt.mu.Lock()
		for rt.ready.Len() == 0 && !rt.closed {
			// Account the wait as idle (load imbalance).
			tIdle := time.Now()
			overhead += tIdle.Sub(tSched)
			rt.cond.Wait()
			tSched = time.Now()
			idle += tSched.Sub(tIdle)
		}
		if rt.ready.Len() == 0 && rt.closed {
			rt.mu.Unlock()
			flush()
			return
		}
		h := heap.Pop(&rt.ready).(*Handle)
		rt.mu.Unlock()
		tRun := time.Now()
		overhead += tRun.Sub(tSched)

		rt.execute(h, w)

		tDone := time.Now()
		useful += tDone.Sub(tRun)
		if useful+overhead+idle > time.Millisecond {
			flush()
		}
	}
}

func (rt *Runtime) execute(h *Handle, w int) {
	defer func() {
		if r := recover(); r != nil {
			rt.panicOnce.Do(func() {
				rt.mu.Lock()
				rt.panicked = r
				rt.mu.Unlock()
			})
		}
		rt.finish(h)
	}()
	h.run(w)
}

func (rt *Runtime) finish(h *Handle) {
	rt.mu.Lock()
	h.done = true
	for _, s := range h.succs {
		s.npred--
		if s.npred == 0 {
			heap.Push(&rt.ready, s)
			rt.cond.Signal()
		}
	}
	h.succs = nil
	rt.pending--
	if rt.pending == 0 {
		rt.quiescent.Broadcast()
	}
	rt.mu.Unlock()
	close(h.doneCh)
}

// taskHeap orders ready tasks by descending priority, then FIFO.
type taskHeap []*Handle

func (th taskHeap) Len() int { return len(th) }
func (th taskHeap) Less(i, j int) bool {
	if th[i].priority != th[j].priority {
		return th[i].priority > th[j].priority
	}
	return th[i].seq < th[j].seq
}
func (th taskHeap) Swap(i, j int) { th[i], th[j] = th[j], th[i] }
func (th *taskHeap) Push(x any)   { *th = append(*th, x.(*Handle)) }
func (th *taskHeap) Pop() any {
	old := *th
	n := len(old)
	x := old[n-1]
	old[n-1] = nil
	*th = old[:n-1]
	return x
}
