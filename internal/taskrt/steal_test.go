package taskrt

import (
	"sync"
	"sync/atomic"
	"testing"
)

// Tests for the work-stealing scheduler additions: handle reuse via
// NewTask/Resubmit, the single-queue compatibility mode, stealing
// correctness and the negative-priority (overlapped recovery) discipline.

func TestResubmitReusesHandle(t *testing.T) {
	rt := New(2)
	defer rt.Close()
	var count atomic.Int32
	h := rt.NewTask(TaskSpec{Run: func(int) { count.Add(1) }, Label: "reused"})
	for i := 0; i < 100; i++ {
		rt.Resubmit(h, nil)
		rt.Wait(h)
	}
	if count.Load() != 100 {
		t.Fatalf("ran %d times, want 100", count.Load())
	}
}

func TestResubmitGraphOrdering(t *testing.T) {
	rt := New(4)
	defer rt.Close()
	// A prepared two-stage graph replayed many times: stage B must always
	// observe stage A's write of the same round.
	var stage int32
	a := make([]*Handle, 4)
	b := make([]*Handle, 4)
	for i := range a {
		a[i] = rt.NewTask(TaskSpec{Run: func(int) { atomic.AddInt32(&stage, 1) }, Label: "a"})
		b[i] = rt.NewTask(TaskSpec{Run: func(int) {
			if atomic.LoadInt32(&stage)%4 != 0 {
				t.Error("b ran before all a tasks")
			}
		}, Label: "b"})
	}
	for round := 0; round < 200; round++ {
		rt.ResubmitAll(a, nil)
		rt.ResubmitAll(b, a)
		rt.WaitAll(b)
		if atomic.LoadInt32(&stage) != int32(4*(round+1)) {
			t.Fatalf("round %d: stage = %d", round, stage)
		}
	}
}

func TestResubmitInFlightPanics(t *testing.T) {
	rt := New(1)
	defer rt.Close()
	release := make(chan struct{})
	h := rt.NewTask(TaskSpec{Run: func(int) { <-release }})
	rt.Resubmit(h, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic resubmitting an in-flight task")
		}
		close(release)
		rt.Wait(h)
	}()
	rt.Resubmit(h, nil)
}

func TestNeverSubmittedDependencyIsNoOp(t *testing.T) {
	rt := New(2)
	defer rt.Close()
	idle := rt.NewTask(TaskSpec{Run: func(int) {}})
	var ran atomic.Bool
	h := rt.Submit(TaskSpec{Run: func(int) { ran.Store(true) }, After: []*Handle{idle}})
	rt.Wait(h)
	if !ran.Load() {
		t.Fatal("dependent on never-submitted task never ran")
	}
}

func TestStealingSpreadsWork(t *testing.T) {
	rt := New(4)
	defer rt.Close()
	// Submit a burst from outside the pool: round-robin spreads it over
	// the queues; stealing (or the helping waiter, on single-processor
	// hosts) must run every task exactly once.
	var byWorker [4]atomic.Int32
	for i := 0; i < 256; i++ {
		rt.Submit(TaskSpec{Run: func(w int) {
			for i := 0; i < 1000; i++ {
				_ = i * i
			}
			byWorker[w].Add(1)
		}})
	}
	rt.Quiesce()
	total := int32(0)
	for w := range byWorker {
		total += byWorker[w].Load()
	}
	if total != 256 {
		t.Fatalf("ran %d tasks, want 256", total)
	}
}

func TestSingleQueueModeRunsEverything(t *testing.T) {
	rt := NewSingleQueue(4)
	defer rt.Close()
	var sum atomic.Int64
	var prev *Handle
	for i := 0; i < 50; i++ {
		fan := rt.ParallelFor(64, 4, "fan", []*Handle{prev}, 0, func(w, lo, hi int) {
			sum.Add(int64(hi - lo))
		})
		prev = rt.Submit(TaskSpec{Run: func(int) {}, After: fan})
	}
	rt.Wait(prev)
	if sum.Load() != 50*64 {
		t.Fatalf("sum = %d, want %d", sum.Load(), 50*64)
	}
}

func TestNegativePriorityRunsAfterDefaultWork(t *testing.T) {
	rt := New(1)
	defer rt.Close()
	var order []string
	var mu sync.Mutex
	rec := func(name string) func(int) {
		return func(int) {
			mu.Lock()
			order = append(order, name)
			mu.Unlock()
		}
	}
	release := make(chan struct{})
	gate := rt.Submit(TaskSpec{Run: func(int) { <-release }})
	rt.Submit(TaskSpec{Run: rec("recovery"), Priority: -1, After: []*Handle{gate}})
	rt.Submit(TaskSpec{Run: rec("work1"), After: []*Handle{gate}})
	rt.Submit(TaskSpec{Run: rec("work2"), After: []*Handle{gate}})
	close(release)
	rt.Quiesce()
	mu.Lock()
	defer mu.Unlock()
	if len(order) != 3 || order[2] != "recovery" {
		t.Fatalf("order = %v, want recovery last", order)
	}
}

func TestResubmitZeroAllocs(t *testing.T) {
	rt := New(2)
	defer rt.Close()
	a := make([]*Handle, 2)
	b := make([]*Handle, 2)
	for i := range a {
		a[i] = rt.NewTask(TaskSpec{Run: func(int) {}, Label: "a"})
		b[i] = rt.NewTask(TaskSpec{Run: func(int) {}, Label: "b"})
	}
	iter := func() {
		rt.ResubmitAll(a, nil)
		rt.ResubmitAll(b, a)
		rt.WaitAll(b)
	}
	// Warm up lazily-allocated wait conds and queue rings.
	for i := 0; i < 10; i++ {
		iter()
	}
	if allocs := testing.AllocsPerRun(100, iter); allocs > 0 {
		t.Fatalf("steady-state resubmission allocates %.1f/op, want 0", allocs)
	}
}
