//go:build linux

package taskrt

import (
	"syscall"
	"unsafe"
)

// pinThreadToCPU binds the calling OS thread to the given CPU via raw
// sched_setaffinity (tid 0 = current thread). The caller must hold the
// thread with runtime.LockOSThread. Best-effort: an error leaves the
// thread where the scheduler put it.
func pinThreadToCPU(cpu int) error {
	var mask [16]uint64 // 1024-bit cpu_set_t
	if cpu < 0 || cpu >= len(mask)*64 {
		return syscall.EINVAL
	}
	mask[cpu/64] = 1 << (cpu % 64)
	_, _, errno := syscall.RawSyscall(syscall.SYS_SCHED_SETAFFINITY,
		0, uintptr(len(mask)*8), uintptr(unsafe.Pointer(&mask[0])))
	if errno != 0 {
		return errno
	}
	return nil
}
