package taskrt

import (
	"runtime"
	"sync/atomic"
	"testing"
)

// TestHomeRouting pins the queue-placement rule: a Home hint always lands
// the ready task on the home worker's queue (modulo pool size), and
// homeless tasks keep the releasing-worker / round-robin placement.
func TestHomeRouting(t *testing.T) {
	rt := &Runtime{workers: 3, qs: make([]wq, 3)}
	h := &Handle{rt: rt, home: HomeWorker(2)}
	rt.enqueue(h, -1, false)
	if got := rt.qs[2].pop(); got != h {
		t.Fatalf("homed task not on its queue")
	}
	// An over-range home wraps, so rank→worker assignment never needs to
	// know the pool size.
	h2 := &Handle{rt: rt, home: HomeWorker(7)}
	rt.enqueue(h2, 0, false)
	if got := rt.qs[1].pop(); got != h2 {
		t.Fatalf("home 7 mod 3 should land on queue 1")
	}
	// Home overrides the releasing worker's locality preference.
	h3 := &Handle{rt: rt, home: HomeWorker(0)}
	rt.enqueue(h3, 2, false)
	if got := rt.qs[0].pop(); got != h3 {
		t.Fatalf("home should override the releasing worker")
	}
	// No home: the releasing worker keeps its successor.
	h4 := &Handle{rt: rt}
	rt.enqueue(h4, 2, false)
	if got := rt.qs[2].pop(); got != h4 {
		t.Fatalf("homeless task should stay with the releasing worker")
	}
}

// TestHomeTasksExecute runs a homed prepared graph end to end across
// replays: hints must never affect completion, ordering or reuse.
func TestHomeTasksExecute(t *testing.T) {
	rt := New(4)
	defer rt.Close()
	const tasks = 8
	var order [tasks]atomic.Int64
	var clock atomic.Int64
	hs := make([]*Handle, tasks)
	for i := range hs {
		i := i
		hs[i] = rt.NewTask(TaskSpec{
			Label: "homed",
			Home:  HomeWorker(i), // wraps over the 4 workers
			Run:   func(int) { order[i].Store(clock.Add(1)) },
		})
	}
	for round := 0; round < 50; round++ {
		// Chain: each task depends on the previous, crossing home queues.
		for i, h := range hs {
			var dep []*Handle
			if i > 0 {
				dep = []*Handle{hs[i-1]}
			}
			rt.Resubmit(h, dep)
		}
		rt.WaitAll(hs)
		for i := 1; i < tasks; i++ {
			if order[i].Load() < order[i-1].Load() {
				t.Fatalf("round %d: task %d ran before its dependency", round, i)
			}
		}
	}
}

// TestCPUPinningSmoke exercises the pinning path: the syscall succeeds on
// Linux (on a throwaway locked thread, so no test thread keeps the
// narrowed mask), and a pinned runtime still runs work.
func TestCPUPinningSmoke(t *testing.T) {
	errc := make(chan error, 1)
	go func() {
		// No UnlockOSThread: the thread dies with the goroutine, taking
		// its narrowed affinity mask with it.
		runtime.LockOSThread()
		errc <- pinThreadToCPU(0)
	}()
	if err := <-errc; err != nil && runtime.GOOS == "linux" {
		t.Fatalf("pinThreadToCPU: %v", err)
	}

	EnableCPUPinning(true)
	defer EnableCPUPinning(false)
	rt := New(2)
	defer rt.Close()
	var ran atomic.Int64
	hs := make([]*Handle, 16)
	for i := range hs {
		hs[i] = rt.NewTask(TaskSpec{Label: "pinned", Home: HomeWorker(i), Run: func(int) { ran.Add(1) }})
	}
	rt.ResubmitAll(hs, nil)
	rt.WaitAll(hs)
	if ran.Load() != 16 {
		t.Fatalf("ran %d of 16", ran.Load())
	}
}
