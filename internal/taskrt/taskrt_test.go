package taskrt

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestSingleTaskRuns(t *testing.T) {
	rt := New(2)
	defer rt.Close()
	var ran atomic.Bool
	h := rt.Submit(TaskSpec{Run: func(int) { ran.Store(true) }, Label: "t"})
	rt.Wait(h)
	if !ran.Load() {
		t.Fatal("task did not run")
	}
	if h.Label() != "t" {
		t.Fatalf("label = %q", h.Label())
	}
}

func TestDependencyOrdering(t *testing.T) {
	rt := New(4)
	defer rt.Close()
	var order []int
	var mu sync.Mutex
	record := func(id int) func(int) {
		return func(int) {
			mu.Lock()
			order = append(order, id)
			mu.Unlock()
		}
	}
	a := rt.Submit(TaskSpec{Run: record(1)})
	b := rt.Submit(TaskSpec{Run: record(2), After: []*Handle{a}})
	c := rt.Submit(TaskSpec{Run: record(3), After: []*Handle{b}})
	rt.Wait(c)
	mu.Lock()
	defer mu.Unlock()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
}

func TestDiamondDependencies(t *testing.T) {
	rt := New(4)
	defer rt.Close()
	var stage atomic.Int32
	src := rt.Submit(TaskSpec{Run: func(int) { stage.Store(1) }})
	mid1 := rt.Submit(TaskSpec{Run: func(int) {
		if stage.Load() < 1 {
			t.Error("mid1 before src")
		}
	}, After: []*Handle{src}})
	mid2 := rt.Submit(TaskSpec{Run: func(int) {
		if stage.Load() < 1 {
			t.Error("mid2 before src")
		}
	}, After: []*Handle{src}})
	sink := rt.Submit(TaskSpec{Run: func(int) { stage.Store(2) }, After: []*Handle{mid1, mid2}})
	rt.Wait(sink)
	if stage.Load() != 2 {
		t.Fatal("sink did not run")
	}
}

func TestNilDependenciesIgnored(t *testing.T) {
	rt := New(2)
	defer rt.Close()
	h := rt.Submit(TaskSpec{Run: func(int) {}, After: []*Handle{nil, nil}})
	rt.Wait(h)
}

func TestDependencyOnFinishedTask(t *testing.T) {
	rt := New(2)
	defer rt.Close()
	a := rt.Submit(TaskSpec{Run: func(int) {}})
	rt.Wait(a)
	var ran atomic.Bool
	b := rt.Submit(TaskSpec{Run: func(int) { ran.Store(true) }, After: []*Handle{a}})
	rt.Wait(b)
	if !ran.Load() {
		t.Fatal("dependent on finished task never ran")
	}
}

func TestPriorityOrderingOnSingleWorker(t *testing.T) {
	rt := New(1)
	defer rt.Close()
	var order []string
	var mu sync.Mutex
	rec := func(name string) func(int) {
		return func(int) {
			mu.Lock()
			order = append(order, name)
			mu.Unlock()
		}
	}
	// Block the single worker so the queue builds up, then observe the
	// pop order: high priority first, FIFO among equals.
	release := make(chan struct{})
	gate := rt.Submit(TaskSpec{Run: func(int) { <-release }})
	rt.Submit(TaskSpec{Run: rec("low1"), Priority: 0, After: []*Handle{gate}})
	rt.Submit(TaskSpec{Run: rec("high"), Priority: 10, After: []*Handle{gate}})
	rt.Submit(TaskSpec{Run: rec("low2"), Priority: 0, After: []*Handle{gate}})
	close(release)
	rt.Quiesce()
	mu.Lock()
	defer mu.Unlock()
	if len(order) != 3 || order[0] != "high" || order[1] != "low1" || order[2] != "low2" {
		t.Fatalf("order = %v", order)
	}
}

func TestParallelForCoversRangeExactlyOnce(t *testing.T) {
	rt := New(4)
	defer rt.Close()
	n := 1000
	counts := make([]atomic.Int32, n)
	hs := rt.ParallelFor(n, 7, "pf", nil, 0, func(w, lo, hi int) {
		for i := lo; i < hi; i++ {
			counts[i].Add(1)
		}
	})
	rt.WaitAll(hs)
	for i := range counts {
		if c := counts[i].Load(); c != 1 {
			t.Fatalf("element %d covered %d times", i, c)
		}
	}
	if len(hs) != 7 {
		t.Fatalf("chunks = %d, want 7", len(hs))
	}
}

func TestParallelForMoreChunksThanElements(t *testing.T) {
	rt := New(2)
	defer rt.Close()
	var total atomic.Int32
	hs := rt.ParallelFor(3, 10, "pf", nil, 0, func(w, lo, hi int) {
		total.Add(int32(hi - lo))
	})
	rt.WaitAll(hs)
	if total.Load() != 3 {
		t.Fatalf("covered %d elements, want 3", total.Load())
	}
}

func TestParallelForZeroElements(t *testing.T) {
	rt := New(2)
	defer rt.Close()
	hs := rt.ParallelFor(0, 4, "pf", nil, 0, func(w, lo, hi int) {
		t.Error("task ran for empty range")
	})
	rt.WaitAll(hs)
	if len(hs) != 0 {
		t.Fatalf("handles = %d, want 0", len(hs))
	}
}

func TestQuiesceWaitsForAll(t *testing.T) {
	rt := New(4)
	defer rt.Close()
	var done atomic.Int32
	for i := 0; i < 100; i++ {
		rt.Submit(TaskSpec{Run: func(int) {
			time.Sleep(time.Microsecond)
			done.Add(1)
		}})
	}
	rt.Quiesce()
	if done.Load() != 100 {
		t.Fatalf("done = %d, want 100", done.Load())
	}
}

func TestNestedSubmission(t *testing.T) {
	rt := New(4)
	defer rt.Close()
	var leafRan atomic.Bool
	outer := rt.Submit(TaskSpec{Run: func(int) {
		inner := rt.Submit(TaskSpec{Run: func(int) { leafRan.Store(true) }})
		rt.Wait(inner)
	}})
	rt.Wait(outer)
	if !leafRan.Load() {
		t.Fatal("nested task did not run")
	}
}

func TestPanicPropagatesOnQuiesce(t *testing.T) {
	rt := New(2)
	rt.Submit(TaskSpec{Run: func(int) { panic("boom") }})
	defer func() {
		if r := recover(); r != "boom" {
			t.Fatalf("recovered %v, want boom", r)
		}
	}()
	rt.Quiesce()
}

func TestPanicDoesNotDeadlockDependents(t *testing.T) {
	rt := New(2)
	a := rt.Submit(TaskSpec{Run: func(int) { panic("x") }})
	b := rt.Submit(TaskSpec{Run: func(int) {}, After: []*Handle{a}})
	rt.Wait(b) // must not hang: a's failure still releases b
	func() {
		defer func() { recover() }()
		rt.Quiesce()
	}()
}

func TestWorkerTimesAccumulate(t *testing.T) {
	rt := New(2)
	defer rt.Close()
	rt.ParallelFor(8, 8, "sleep", nil, 0, func(w, lo, hi int) {
		time.Sleep(5 * time.Millisecond)
	})
	rt.Quiesce()
	total := rt.TotalTimes()
	if total.Useful < 20*time.Millisecond {
		t.Fatalf("Useful = %v, want >= 20ms", total.Useful)
	}
	rt.ResetTimes()
	total = rt.TotalTimes()
	if total.Useful != 0 || total.Idle != 0 || total.Runtime != 0 {
		t.Fatalf("ResetTimes left %+v", total)
	}
}

func TestSubmitAfterClosePanics(t *testing.T) {
	rt := New(1)
	rt.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic submitting after Close")
		}
	}()
	rt.Submit(TaskSpec{Run: func(int) {}})
}

func TestNilRunPanics(t *testing.T) {
	rt := New(1)
	defer rt.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on nil Run")
		}
	}()
	rt.Submit(TaskSpec{})
}

func TestCrossRuntimeDependencyPanics(t *testing.T) {
	rt1 := New(1)
	rt2 := New(1)
	defer rt1.Close()
	defer rt2.Close()
	blocker := make(chan struct{})
	h := rt1.Submit(TaskSpec{Run: func(int) { <-blocker }})
	defer close(blocker)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on cross-runtime dependency")
		}
	}()
	rt2.Submit(TaskSpec{Run: func(int) {}, After: []*Handle{h}})
}

func TestManyTasksStress(t *testing.T) {
	rt := New(8)
	defer rt.Close()
	var sum atomic.Int64
	var prev *Handle
	// A chain interleaved with fans: exercises both dependency paths.
	for i := 0; i < 200; i++ {
		fan := rt.ParallelFor(64, 4, "fan", []*Handle{prev}, 0, func(w, lo, hi int) {
			sum.Add(int64(hi - lo))
		})
		prev = rt.Submit(TaskSpec{Run: func(int) {}, After: fan, Label: "join"})
	}
	rt.Wait(prev)
	if sum.Load() != 200*64 {
		t.Fatalf("sum = %d, want %d", sum.Load(), 200*64)
	}
}

func TestDefaultWorkerCount(t *testing.T) {
	rt := New(0)
	defer rt.Close()
	if rt.NumWorkers() < 1 {
		t.Fatal("no workers")
	}
}
