package pagemem

import (
	"testing"

	"repro/internal/sparse"
)

func abftVector(t *testing.T) (*Space, *Vector) {
	t.Helper()
	s := NewSpace(1024, 256)
	v := s.AddVector("v")
	for i := range v.Data {
		v.Data[i] = float64(i) + 0.5
	}
	v.EnableChecksums()
	return s, v
}

func storeChecksum(v *Vector, p int) {
	lo, hi := v.PageRange(p)
	v.SetChecksum(p, sparse.ChecksumRange(v.Data, lo, hi))
}

// Verification of a clean page passes; a silent flip applied at the
// boundary turns the next verification into a Poison + detection.
func TestVerifyChecksumCatchesFlip(t *testing.T) {
	s, v := abftVector(t)
	storeChecksum(v, 2)
	if !v.VerifyChecksum(2) {
		t.Fatalf("clean page failed verification")
	}
	v.FlipBit(2, 10, 17)
	if !v.VerifyChecksum(2) {
		t.Fatalf("flip detected before the boundary applied it")
	}
	s.ApplySilentPending()
	if v.VerifyChecksum(2) {
		t.Fatalf("corrupted page passed verification")
	}
	if !v.Failed(2) {
		t.Fatalf("detection did not Poison the page")
	}
	if s.SDCDetected() != 1 || s.SDCInjected() != 1 {
		t.Fatalf("counters: detected=%d injected=%d", s.SDCDetected(), s.SDCInjected())
	}
	// Already-poisoned pages pass trivially: the DUE machinery owns them.
	if !v.VerifyChecksum(2) {
		t.Fatalf("poisoned page must not re-detect")
	}
}

// Pages without a stored checksum verify trivially (no false positives on
// never-produced data), and disabled vectors are inert.
func TestVerifyChecksumNoFalsePositives(t *testing.T) {
	s, v := abftVector(t)
	if !v.VerifyChecksum(0) {
		t.Fatalf("page without checksum failed verification")
	}
	plain := s.AddVector("plain")
	if plain.ChecksumsEnabled() {
		t.Fatalf("checksums enabled without EnableChecksums")
	}
	plain.FlipBit(1, 0, 3)
	s.ApplySilentPending()
	if !plain.VerifyChecksum(1) {
		t.Fatalf("disabled vector reported a detection")
	}
}

// Every content-replacing path — recovery, remap, poison — must forget the
// page's checksum so stale checksums can never misfire on rebuilt data.
func TestChecksumInvalidatedOnContentReplacement(t *testing.T) {
	_, v := abftVector(t)

	storeChecksum(v, 0)
	v.Poison(0)
	v.space.ScramblePending()
	v.Remap(0)
	v.MarkRecovered(0)
	if !v.VerifyChecksum(0) {
		t.Fatalf("stale checksum fired on recovered page")
	}

	// Restart-style: Poison then ClearAll WITHOUT MarkRecovered (the Lossy
	// path) — the Poison itself must have invalidated.
	storeChecksum(v, 1)
	v.Poison(1)
	lo, _ := v.PageRange(1)
	v.Data[lo] = 123.0 // interpolated replacement, no checksum kernel
	v.space.ClearAll()
	if !v.VerifyChecksum(1) {
		t.Fatalf("stale checksum survived a restart-style mask clear")
	}
}

// A DUE and a silent flip on the same page at the same boundary: the DUE
// scramble wins (flip applied first, then NaN overwrite), and the page is
// handled by the ordinary fault machinery.
func TestFlipAndDUESamePage(t *testing.T) {
	s, v := abftVector(t)
	storeChecksum(v, 3)
	v.FlipBit(3, 5, 9)
	v.Poison(3)
	s.ScramblePending()
	if !v.Failed(3) {
		t.Fatalf("page not failed")
	}
	if !v.VerifyChecksum(3) {
		t.Fatalf("failed page must verify trivially")
	}
}

// FlipBit bounds-panics on out-of-page elements and bad bit indices.
func TestFlipBitBounds(t *testing.T) {
	_, v := abftVector(t)
	for _, bad := range []func(){
		func() { v.FlipBit(0, -1, 0) },
		func() { v.FlipBit(0, 256, 0) },
		func() { v.FlipBit(0, 0, 64) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("no panic on out-of-bounds flip")
				}
			}()
			bad()
		}()
	}
}
