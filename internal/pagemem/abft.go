// ABFT extension of the page fault model: silent data corruption (SDC)
// and per-page checksums. A silent bit flip corrupts one element of one
// page WITHOUT setting any fault bit — the hardware never noticed.
// Checksum-carrying kernels (internal/sparse) store the XOR of the raw
// float64 bit patterns of each page they produce; consumers call
// VerifyChecksum before reading a page, and a mismatch is converted into
// an ordinary Poison, at which point the existing exact FEIR/AFEIR
// recovery machinery takes over.
//
// Injection follows the same two-phase race-free discipline as DUEs:
// FlipBit only enqueues the flip, and ApplySilentPending (called from
// ScramblePending, i.e. at task-phase boundaries where no task touches
// vector data) applies it — modelling corruption of data at rest.
package pagemem

import (
	"fmt"
	"math"
	"sync/atomic"

	"repro/internal/sparse"
)

// SilentFlip is one enqueued silent bit flip: element Elem (offset from
// the page start) of page Page of vector VecID gets bit Bit (0..63) of
// its IEEE-754 representation inverted.
type SilentFlip struct {
	VecID int
	Page  int
	Elem  int
	Bit   uint
}

// EnableChecksums allocates the vector's per-page checksum slots. Until
// a producer stores a checksum for a page, verification of that page is
// a no-op (no false positives on never-produced data).
func (v *Vector) EnableChecksums() {
	if v.cks != nil {
		return
	}
	np := v.space.layout.NumBlocks()
	v.cks = make([]atomic.Uint64, np)
	v.ckOK = make([]atomic.Bool, np)
}

// ChecksumsEnabled reports whether the vector carries page checksums.
func (v *Vector) ChecksumsEnabled() bool { return v.cks != nil }

// SetChecksum records the checksum of page p, computed by the kernel
// that produced the page's current content. No-op when checksums are
// not enabled.
func (v *Vector) SetChecksum(p int, ck uint64) {
	if v.cks == nil {
		return
	}
	v.cks[p].Store(ck)
	v.ckOK[p].Store(true)
}

// InvalidateChecksum forgets the checksum of page p: verification skips
// the page until a producer stores a fresh one. Called automatically
// whenever the page content is replaced outside a checksum-carrying
// kernel (recovery, remap).
func (v *Vector) InvalidateChecksum(p int) {
	if v.cks == nil {
		return
	}
	v.ckOK[p].Store(false)
}

// InvalidateChecksums forgets every page checksum of the vector (used
// when the whole vector is rebuilt, e.g. a solver reset or restart).
func (v *Vector) InvalidateChecksums() {
	if v.cks == nil {
		return
	}
	for p := range v.ckOK {
		v.ckOK[p].Store(false)
	}
}

// VerifyChecksum checks page p against its stored checksum and reports
// whether the page may be consumed. Pages without a stored checksum, or
// already marked failed, pass trivially. On a mismatch the silent flip
// has been caught: the page is Poisoned (turning the SDC into an
// ordinary DUE for the recovery relations), the detection counted, and
// false is returned so the calling kernel skips the page exactly like a
// stale-input guard.
func (v *Vector) VerifyChecksum(p int) bool {
	if v.cks == nil || !v.ckOK[p].Load() {
		return true
	}
	if v.Failed(p) {
		return true // already being handled as a DUE
	}
	lo, hi := v.space.layout.Range(p)
	if sparse.ChecksumRange(v.Data, lo, hi) == v.cks[p].Load() {
		return true
	}
	v.space.sdcDetected.Add(1)
	v.InvalidateChecksum(p)
	v.Poison(p)
	return false
}

// FlipBit enqueues a silent flip of bit (0..63) of element elem (offset
// within the page) of page p. The flip is applied at the next
// ApplySilentPending/ScramblePending boundary; no fault bit is set and
// no hook fires — the corruption is silent by construction.
func (v *Vector) FlipBit(p, elem int, bit uint) {
	lo, hi := v.space.layout.Range(p)
	if elem < 0 || lo+elem >= hi {
		panic(fmt.Sprintf("pagemem: silent flip element %d outside page %d (size %d)", elem, p, hi-lo))
	}
	if bit > 63 {
		panic(fmt.Sprintf("pagemem: silent flip bit %d out of range", bit))
	}
	s := v.space
	s.pendMu.Lock()
	s.sdcPending = append(s.sdcPending, SilentFlip{VecID: v.id, Page: p, Elem: elem, Bit: bit})
	s.pendMu.Unlock()
}

// ApplySilentPending applies every enqueued silent flip to the vector
// data. Like ScramblePending (which calls it first), it must run at a
// task-phase boundary where no task concurrently touches vector data.
// Returns the number of flips applied.
func (s *Space) ApplySilentPending() int {
	s.pendMu.Lock()
	flips := s.sdcPending
	s.sdcPending = nil
	s.pendMu.Unlock()
	for _, f := range flips {
		v := s.vectors[f.VecID]
		lo, _ := s.layout.Range(f.Page)
		i := lo + f.Elem
		v.Data[i] = math.Float64frombits(math.Float64bits(v.Data[i]) ^ (1 << f.Bit))
		s.sdcInjected.Add(1)
	}
	return len(flips)
}

// SDCInjected returns the number of silent flips applied so far.
func (s *Space) SDCInjected() int64 { return s.sdcInjected.Load() }

// SDCDetected returns the number of checksum-mismatch detections so far.
func (s *Space) SDCDetected() int64 { return s.sdcDetected.Load() }
