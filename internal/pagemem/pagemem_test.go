package pagemem

import (
	"math"
	"sync"
	"testing"
)

func TestSpaceLayout(t *testing.T) {
	s := NewSpace(1100, 512)
	if s.NumPages() != 3 {
		t.Fatalf("NumPages = %d, want 3", s.NumPages())
	}
	if s.N() != 1100 {
		t.Fatalf("N = %d", s.N())
	}
	lo, hi := s.Layout().Range(2)
	if lo != 1024 || hi != 1100 {
		t.Fatalf("page 2 = [%d,%d)", lo, hi)
	}
}

func TestDefaultPageSize(t *testing.T) {
	s := NewSpace(5000, 0)
	if s.Layout().BlockSize != DefaultPageDoubles {
		t.Fatalf("default page size %d, want %d", s.Layout().BlockSize, DefaultPageDoubles)
	}
	if DefaultPageDoubles != 512 {
		t.Fatalf("DefaultPageDoubles = %d, want 512 (4KiB of float64)", DefaultPageDoubles)
	}
}

func TestAddVectorAssignsBits(t *testing.T) {
	s := NewSpace(100, 10)
	x := s.AddVector("x")
	g := s.AddVector("g")
	if x.ID() != 0 || g.ID() != 1 {
		t.Fatalf("ids = %d,%d", x.ID(), g.ID())
	}
	if x.Name() != "x" || s.VectorByName("g") != g {
		t.Fatal("names wrong")
	}
	if s.VectorByName("nope") != nil {
		t.Fatal("unknown name should be nil")
	}
	if len(s.Vectors()) != 2 {
		t.Fatal("Vectors() wrong")
	}
}

func TestMaxVectorsEnforced(t *testing.T) {
	s := NewSpace(10, 10)
	for i := 0; i < MaxVectors; i++ {
		s.AddVector("v")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic past MaxVectors")
		}
	}()
	s.AddVector("overflow")
}

func TestPoisonScramblesAndFlags(t *testing.T) {
	s := NewSpace(100, 10)
	x := s.AddVector("x")
	for i := range x.Data {
		x.Data[i] = 1
	}
	x.PoisonNow(3)
	lo, hi := x.PageRange(3)
	for i := lo; i < hi; i++ {
		if !math.IsNaN(x.Data[i]) {
			t.Fatalf("element %d not scrambled", i)
		}
	}
	// Neighbouring pages untouched.
	if math.IsNaN(x.Data[lo-1]) || math.IsNaN(x.Data[hi]) {
		t.Fatal("poison leaked outside page")
	}
	if !x.Failed(3) || x.Failed(2) {
		t.Fatal("fault bits wrong")
	}
	if s.FaultCount() != 1 {
		t.Fatalf("FaultCount = %d", s.FaultCount())
	}
}

func TestPoisonZeroMode(t *testing.T) {
	s := NewSpace(100, 10)
	s.SetPoisonWithNaN(false)
	x := s.AddVector("x")
	for i := range x.Data {
		x.Data[i] = 7
	}
	x.PoisonNow(0)
	if x.Data[0] != 0 {
		t.Fatal("zero-mode poison did not zero")
	}
	if !x.Failed(0) {
		t.Fatal("fault bit missing")
	}
}

func TestRemapZeroesButKeepsBit(t *testing.T) {
	s := NewSpace(50, 10)
	x := s.AddVector("x")
	x.PoisonNow(1)
	x.Remap(1)
	lo, hi := x.PageRange(1)
	for i := lo; i < hi; i++ {
		if x.Data[i] != 0 {
			t.Fatal("remap did not zero page")
		}
	}
	if !x.Failed(1) {
		t.Fatal("remap must not clear the fault bit")
	}
}

func TestMarkRecoveredClearsOnlyOwnBit(t *testing.T) {
	s := NewSpace(50, 10)
	x := s.AddVector("x")
	g := s.AddVector("g")
	x.PoisonNow(2)
	g.PoisonNow(2)
	x.MarkRecovered(2)
	if x.Failed(2) {
		t.Fatal("x still failed")
	}
	if !g.Failed(2) {
		t.Fatal("g bit clobbered")
	}
	if s.PageMask(2) != 1<<1 {
		t.Fatalf("mask = %b", s.PageMask(2))
	}
}

func TestMarkFailedPropagation(t *testing.T) {
	s := NewSpace(50, 10)
	q := s.AddVector("q")
	q.MarkFailed(4)
	if !q.Failed(4) {
		t.Fatal("MarkFailed had no effect")
	}
	// Data untouched by MarkFailed.
	if math.IsNaN(q.Data[40]) {
		t.Fatal("MarkFailed must not scramble data")
	}
}

func TestAnyFailedInRange(t *testing.T) {
	s := NewSpace(100, 10)
	x := s.AddVector("x")
	x.PoisonNow(5) // elements 50..59
	cases := []struct {
		lo, hi int
		want   bool
	}{
		{0, 50, false},
		{50, 51, true},
		{59, 60, true},
		{60, 100, false},
		{0, 100, true},
		{55, 55, false}, // empty range
	}
	for _, c := range cases {
		if got := x.AnyFailedInRange(c.lo, c.hi); got != c.want {
			t.Fatalf("AnyFailedInRange(%d,%d) = %v, want %v", c.lo, c.hi, got, c.want)
		}
	}
}

func TestFailedPagesAndAnyFault(t *testing.T) {
	s := NewSpace(100, 10)
	x := s.AddVector("x")
	g := s.AddVector("g")
	if s.AnyFault() || x.AnyFailed() {
		t.Fatal("fresh space reports faults")
	}
	x.PoisonNow(1)
	x.PoisonNow(7)
	g.PoisonNow(3)
	fp := x.FailedPages()
	if len(fp) != 2 || fp[0] != 1 || fp[1] != 7 {
		t.Fatalf("FailedPages = %v", fp)
	}
	if !s.AnyFault() || !x.AnyFailed() || !g.AnyFailed() {
		t.Fatal("faults not reported")
	}
	s.ClearAll()
	if s.AnyFault() {
		t.Fatal("ClearAll left faults")
	}
}

func TestOnFaultCallback(t *testing.T) {
	s := NewSpace(100, 10)
	x := s.AddVector("x")
	var mu sync.Mutex
	var events []FaultEvent
	s.SetOnFault(func(e FaultEvent) {
		mu.Lock()
		events = append(events, e)
		mu.Unlock()
	})
	x.PoisonNow(2)
	mu.Lock()
	n := len(events)
	mu.Unlock()
	if n != 1 || events[0].Page != 2 || events[0].Vector != "x" {
		t.Fatalf("events = %+v", events)
	}
	s.SetOnFault(nil)
	x.PoisonNow(3)
	mu.Lock()
	if len(events) != 1 {
		t.Fatal("callback fired after removal")
	}
	mu.Unlock()
}

func TestConcurrentPoisonAndCheck(t *testing.T) {
	// Race-detector exercise: concurrent injector goroutines enqueue
	// poisons and worker-like goroutines read masks, while the "solver"
	// periodically applies pending faults at boundaries.
	s := NewSpace(5120, 512)
	x := s.AddVector("x")
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				p := (seed + i) % s.NumPages()
				x.Poison(p)
				_ = x.Failed(p)
				x.MarkFailed(p)
				x.MarkRecovered(p)
			}
		}(w)
	}
	wg.Wait()
	if got := s.PendingCount(); got != 4000 {
		t.Fatalf("PendingCount = %d, want 4000", got)
	}
	evs := s.ScramblePending()
	if len(evs) != 4000 || s.FaultCount() != 4000 {
		t.Fatalf("processed %d events, FaultCount = %d, want 4000", len(evs), s.FaultCount())
	}
	if s.PendingCount() != 0 {
		t.Fatal("pending queue not drained")
	}
}

func TestPoisonSetsBitImmediatelyScramblesLater(t *testing.T) {
	s := NewSpace(100, 10)
	x := s.AddVector("x")
	g := s.AddVector("g")
	for i := range x.Data {
		x.Data[i] = 3
	}
	x.Poison(1)
	g.Poison(2)
	if !x.Failed(1) || !g.Failed(2) {
		t.Fatal("fault bit not set at Poison time")
	}
	if math.IsNaN(x.Data[10]) {
		t.Fatal("data scrambled before ScramblePending")
	}
	evs := s.ScramblePending()
	if len(evs) != 2 || evs[0].Vector != "x" || evs[1].Vector != "g" {
		t.Fatalf("events = %+v", evs)
	}
	if !math.IsNaN(x.Data[10]) {
		t.Fatal("data not scrambled")
	}
}

func TestScramblePendingSkipsRecoveredPages(t *testing.T) {
	s := NewSpace(100, 10)
	x := s.AddVector("x")
	for i := range x.Data {
		x.Data[i] = 5
	}
	x.Poison(3)
	// A recovery task interpolates replacement data and clears the bit
	// before the page content was ever accessed.
	lo, hi := x.PageRange(3)
	for i := lo; i < hi; i++ {
		x.Data[i] = 7
	}
	x.MarkRecovered(3)
	s.ScramblePending()
	for i := lo; i < hi; i++ {
		if x.Data[i] != 7 {
			t.Fatal("ScramblePending destroyed recovered data")
		}
	}
}

func TestClearAllDropsPending(t *testing.T) {
	s := NewSpace(100, 10)
	x := s.AddVector("x")
	x.Poison(1)
	s.ClearAll()
	if s.PendingCount() != 0 {
		t.Fatal("ClearAll kept pending faults")
	}
	if evs := s.ScramblePending(); len(evs) != 0 {
		t.Fatalf("ScramblePending after ClearAll returned %d events", len(evs))
	}
}

func TestPoisonEmptyPagePanics(t *testing.T) {
	s := NewSpace(10, 10)
	x := s.AddVector("x")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic poisoning out-of-range page")
		}
	}()
	x.PoisonNow(1) // only page 0 exists
}
