// Package pagemem implements the paper's memory-page fault model (§2.1,
// §3.3.2, §5.3). Solver vectors live in a Space that partitions them into
// 4 KiB pages (512 float64 values). A Detected-and-Uncorrected Error (DUE)
// poisons one page of one vector: the data is lost (overwritten with NaN to
// model the fresh blank page the OS maps at the same virtual address) and
// the page's bit in an atomic per-page bitmask is set.
//
// The bitmask mirrors the paper's implementation exactly: "we maintain an
// atomic bitmask (e.g. an int) per block of failure granularity, thus per
// memory page. Each data vector and task output is represented by a bit in
// this mask." Tasks check the mask for the pages they touch, skip
// computation on failed input and propagate the failure to their output's
// bit; recovery tasks clear bits after interpolating replacement data.
//
// Poisoning is split in two to mirror detect-on-access semantics without
// data races: an injector goroutine calls Vector.Poison, which atomically
// sets the fault bit at once (tasks checking the mask from then on skip the
// page — this is the detection) and enqueues the data loss. The solver
// calls Space.ScramblePending at task-phase boundaries, where no task is
// touching vector data, to actually destroy the content of pages that are
// still marked failed. Tasks that passed their mask check before the bit
// was set complete with the pre-fault data, which is numerically identical
// to the fault having arrived just after their access — a pure timing
// shift. Deterministic tests can use PoisonNow.
package pagemem

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/sparse"
)

// PageBytes is the hardware memory page size assumed by the fault model.
const PageBytes = 4096

// DefaultPageDoubles is the number of float64 values per page: the paper's
// recovery granularity of 512 double-precision values (§2.3).
const DefaultPageDoubles = PageBytes / 8

// MaxVectors is the number of protectable vectors per Space, bounded by the
// 64 bits of the per-page atomic mask.
const MaxVectors = 64

// FaultEvent describes one injected or detected DUE.
type FaultEvent struct {
	Vector string // vector name
	VecID  int    // bit index
	Page   int    // page index within the vector
}

// Space is a fault domain: a set of equally sized vectors sharing a page
// layout and per-page atomic fault bitmasks.
type Space struct {
	n             int
	layout        sparse.BlockLayout
	masks         []atomic.Uint64
	vectors       []*Vector
	faults        atomic.Int64
	onFault       atomic.Pointer[func(FaultEvent)]
	poisonWithNaN bool

	pendMu     sync.Mutex
	pending    []FaultEvent
	sdcPending []SilentFlip

	sdcInjected atomic.Int64
	sdcDetected atomic.Int64
}

// NewSpace creates a fault domain for vectors of length n with the given
// page size in doubles (0 means DefaultPageDoubles).
func NewSpace(n, pageDoubles int) *Space {
	if pageDoubles <= 0 {
		pageDoubles = DefaultPageDoubles
	}
	layout := sparse.BlockLayout{N: n, BlockSize: pageDoubles}
	return &Space{
		n:             n,
		layout:        layout,
		masks:         make([]atomic.Uint64, layout.NumBlocks()),
		poisonWithNaN: true,
	}
}

// N returns the vector length of the space.
func (s *Space) N() int { return s.n }

// Layout returns the page layout shared by all vectors of the space.
func (s *Space) Layout() sparse.BlockLayout { return s.layout }

// NumPages returns the number of pages per vector.
func (s *Space) NumPages() int { return s.layout.NumBlocks() }

// SetOnFault installs a callback invoked synchronously from Poison for
// every injected fault. It must be safe for concurrent use. Pass nil to
// remove.
func (s *Space) SetOnFault(fn func(FaultEvent)) {
	if fn == nil {
		s.onFault.Store(nil)
		return
	}
	s.onFault.Store(&fn)
}

// SetPoisonWithNaN controls whether poisoning scrambles data with NaN
// (default true). Disabling it models scrubbing-detected errors where the
// page is remapped to zeros before any access.
func (s *Space) SetPoisonWithNaN(b bool) { s.poisonWithNaN = b }

// Vector is one protected solver vector: contiguous data plus an identity
// bit in the space's per-page masks.
type Vector struct {
	space *Space
	id    int
	name  string
	Data  []float64

	// ABFT page checksums (abft.go): nil unless EnableChecksums was
	// called. cks[p] holds the XOR-of-bits checksum of page p, valid only
	// while ckOK[p] is set.
	cks  []atomic.Uint64
	ckOK []atomic.Bool
}

// AddVector registers a new protected vector. It panics beyond MaxVectors
// (the paper's bitmask has the same bound).
func (s *Space) AddVector(name string) *Vector {
	if len(s.vectors) >= MaxVectors {
		panic(fmt.Sprintf("pagemem: too many vectors (max %d)", MaxVectors))
	}
	v := &Vector{space: s, id: len(s.vectors), name: name, Data: make([]float64, s.n)}
	s.vectors = append(s.vectors, v)
	return v
}

// Vectors returns the registered vectors in registration order.
func (s *Space) Vectors() []*Vector { return s.vectors }

// VectorByName returns the named vector or nil.
func (s *Space) VectorByName(name string) *Vector {
	for _, v := range s.vectors {
		if v.name == name {
			return v
		}
	}
	return nil
}

// Name returns the vector's registration name.
func (v *Vector) Name() string { return v.name }

// ID returns the vector's bit index in the page masks.
func (v *Vector) ID() int { return v.id }

// Space returns the owning fault domain.
func (v *Vector) Space() *Space { return v.space }

// PageRange returns the element range [lo, hi) of page p.
func (v *Vector) PageRange(p int) (int, int) { return v.space.layout.Range(p) }

// Poison injects a DUE into page p of the vector: the fault bit is set
// immediately and atomically (detection — tasks checking the mask from now
// on skip the page), the fault counter incremented, the OnFault hook fired
// and the data loss enqueued for the next ScramblePending. Safe to call
// from any goroutine.
func (v *Vector) Poison(p int) {
	s := v.space
	lo, hi := s.layout.Range(p)
	if lo >= hi {
		panic(fmt.Sprintf("pagemem: poison of empty page %d", p))
	}
	ev := FaultEvent{Vector: v.name, VecID: v.id, Page: p}
	// The page content is doomed (scramble, remap or recovery overwrite
	// follow): forget its ABFT checksum so no stale-valid checksum can
	// survive a restart-style mask clear.
	v.InvalidateChecksum(p)
	s.masks[p].Or(1 << uint(v.id))
	s.faults.Add(1)
	s.pendMu.Lock()
	s.pending = append(s.pending, ev)
	s.pendMu.Unlock()
	if fn := s.onFault.Load(); fn != nil {
		(*fn)(ev)
	}
}

// PoisonNow injects a DUE and immediately destroys the page data:
// convenience for single-threaded deterministic tests. It scrambles ALL
// pending pages.
func (v *Vector) PoisonNow(p int) {
	v.Poison(p)
	v.space.ScramblePending()
}

// PendingCount returns the number of enqueued, not-yet-scrambled faults.
func (s *Space) PendingCount() int {
	s.pendMu.Lock()
	defer s.pendMu.Unlock()
	return len(s.pending)
}

// ScramblePending destroys the data of every enqueued fault whose page is
// STILL marked failed (pages already recovered keep their interpolated
// replacement). It must be called from a point where no task concurrently
// touches vector data — a task-phase boundary — modelling the moment the
// poisoned page's content is gone for good. Returns the processed events.
func (s *Space) ScramblePending() []FaultEvent {
	// Silent flips model corruption of data at rest: apply them at the
	// same boundary, before the DUE scrambles (a DUE on the same page
	// destroys the flipped content anyway).
	s.ApplySilentPending()
	s.pendMu.Lock()
	evs := s.pending
	s.pending = nil
	s.pendMu.Unlock()
	for _, e := range evs {
		if s.masks[e.Page].Load()&(1<<uint(e.VecID)) == 0 {
			continue // recovered before the content was ever read
		}
		v := s.vectors[e.VecID]
		lo, hi := s.layout.Range(e.Page)
		if s.poisonWithNaN {
			nan := math.NaN()
			for i := lo; i < hi; i++ {
				v.Data[i] = nan
			}
		} else {
			for i := lo; i < hi; i++ {
				v.Data[i] = 0
			}
		}
	}
	return evs
}

// Remap replaces the lost page with a fresh zeroed page at the same
// location (the SIGBUS handler's mmap in the paper) WITHOUT clearing the
// fault bit: the data is still not valid, merely accessible. Trivial
// recovery stops here; exact recoveries interpolate then MarkRecovered.
func (v *Vector) Remap(p int) {
	lo, hi := v.space.layout.Range(p)
	for i := lo; i < hi; i++ {
		v.Data[i] = 0
	}
	v.InvalidateChecksum(p)
}

// MarkFailed sets the fault bit for page p without touching data: used to
// propagate skipped-computation status from inputs to outputs (§3.3.2).
func (v *Vector) MarkFailed(p int) {
	v.space.masks[p].Or(1 << uint(v.id))
}

// MarkRecovered clears the fault bit for page p after replacement data has
// been interpolated (or recomputed) into it. The page's ABFT checksum (if
// any) is forgotten: the rebuilt content is trusted, and verification
// skips the page until a checksum-carrying producer covers it again.
func (v *Vector) MarkRecovered(p int) {
	v.space.masks[p].And(^uint64(1 << uint(v.id)))
	v.InvalidateChecksum(p)
}

// Failed reports whether page p of this vector is currently invalid.
func (v *Vector) Failed(p int) bool {
	return v.space.masks[p].Load()&(1<<uint(v.id)) != 0
}

// AnyFailedInRange reports whether any page overlapping the element range
// [lo, hi) is invalid for this vector.
func (v *Vector) AnyFailedInRange(lo, hi int) bool {
	if lo >= hi {
		return false
	}
	pLo := v.space.layout.BlockOf(lo)
	pHi := v.space.layout.BlockOf(hi - 1)
	bit := uint64(1) << uint(v.id)
	for p := pLo; p <= pHi; p++ {
		if v.space.masks[p].Load()&bit != 0 {
			return true
		}
	}
	return false
}

// FailedPages returns the indices of this vector's currently invalid pages.
func (v *Vector) FailedPages() []int {
	var out []int
	bit := uint64(1) << uint(v.id)
	for p := range v.space.masks {
		if v.space.masks[p].Load()&bit != 0 {
			out = append(out, p)
		}
	}
	return out
}

// AnyFailed reports whether the vector has any invalid page.
func (v *Vector) AnyFailed() bool {
	bit := uint64(1) << uint(v.id)
	for p := range v.space.masks {
		if v.space.masks[p].Load()&bit != 0 {
			return true
		}
	}
	return false
}

// PageMask returns the raw fault mask of page p (bit i = vector i failed).
func (s *Space) PageMask(p int) uint64 { return s.masks[p].Load() }

// AnyFault reports whether any page of any vector is invalid.
func (s *Space) AnyFault() bool {
	for p := range s.masks {
		if s.masks[p].Load() != 0 {
			return true
		}
	}
	return false
}

// FaultCount returns the total number of applied faults so far.
func (s *Space) FaultCount() int64 { return s.faults.Load() }

// ClearAll resets every fault bit and drops pending faults (used when a
// restart-style recovery rebuilds all dynamic data from scratch).
func (s *Space) ClearAll() {
	s.pendMu.Lock()
	s.pending = nil
	s.pendMu.Unlock()
	for p := range s.masks {
		s.masks[p].Store(0)
	}
}

// AnyFailedInPages reports whether any of the listed pages is invalid for
// this vector.
func (v *Vector) AnyFailedInPages(pages []int) bool {
	bit := uint64(1) << uint(v.id)
	for _, p := range pages {
		if v.space.masks[p].Load()&bit != 0 {
			return true
		}
	}
	return false
}

// AnyFailedInPagesExcept is AnyFailedInPages skipping one page index.
func (v *Vector) AnyFailedInPagesExcept(pages []int, skip int) bool {
	bit := uint64(1) << uint(v.id)
	for _, p := range pages {
		if p == skip {
			continue
		}
		if v.space.masks[p].Load()&bit != 0 {
			return true
		}
	}
	return false
}
