package registry

import (
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/sparse"
)

func testCtxCfg() Config {
	return Config{
		Config: core.Config{
			Method:      core.MethodIdeal,
			PageDoubles: 64,
			Tol:         1e-10,
			UsePrecond:  true,
		},
	}
}

// TestCheckoutWarmZeroRebuilds pins the acceptance claim of the serving
// layer: after warmup, repeated solves against a cached operator perform
// zero diagonal-block factorizations and zero task-graph preparations —
// a warm checkout rebinds the RHS and replays prepared graphs, nothing
// else.
func TestCheckoutWarmZeroRebuilds(t *testing.T) {
	a, b := testSystem(t)
	octx := NewOperatorContext("m", a, 64)

	// Warmup: first checkout pays factorization + graph preparation.
	co, err := octx.Checkout("cg", b, testCtxCfg())
	if err != nil {
		t.Fatal(err)
	}
	if co.Warm {
		t.Fatal("first checkout claims to be warm")
	}
	if res, err := co.Instance.Run(); err != nil || !res.Converged {
		t.Fatalf("warmup solve: converged=%v err=%v", res.Converged, err)
	}
	co.Release()

	fac0, prep0 := sparse.FactorizationCount(), engine.GraphPrepCount()
	for i := 0; i < 3; i++ {
		co, err := octx.Checkout("cg", b, testCtxCfg())
		if err != nil {
			t.Fatal(err)
		}
		if !co.Warm {
			t.Fatalf("checkout %d after warmup is not warm", i)
		}
		res, err := co.Instance.Run()
		if err != nil || !res.Converged {
			t.Fatalf("warm solve %d: converged=%v err=%v", i, res.Converged, err)
		}
		co.Release()
	}
	if d := sparse.FactorizationCount() - fac0; d != 0 {
		t.Fatalf("warm solves performed %d factorizations, want 0", d)
	}
	if d := engine.GraphPrepCount() - prep0; d != 0 {
		t.Fatalf("warm solves performed %d graph preparations, want 0", d)
	}
}

// TestConcurrentCheckoutsDistinctRHS runs two goroutines solving
// different right-hand sides against one shared operator context — the
// serving layer's steady state. Run under -race this doubles as the
// data-race gate for the shared block caches and the process-wide pool.
func TestConcurrentCheckoutsDistinctRHS(t *testing.T) {
	a, _ := testSystem(t)
	octx := NewOperatorContext("m", a, 64)

	rhs := func(scale float64) []float64 {
		b := make([]float64, a.N)
		for i := range b {
			b[i] = scale * float64(1+i%7)
		}
		return b
	}
	var wg sync.WaitGroup
	errs := make(chan error, 2)
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			b := rhs(float64(g + 1))
			for i := 0; i < 3; i++ {
				co, err := octx.Checkout("cg", b, testCtxCfg())
				if err != nil {
					errs <- err
					return
				}
				res, err := co.Instance.Run()
				if err != nil {
					errs <- err
					return
				}
				if !res.Converged {
					t.Errorf("goroutine %d solve %d not converged: %+v", g, i, res)
				}
				co.Release()
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestSharedBlocksBitwiseIdentical checks that the prefactorized block
// cache a context hands to solvers is bitwise-identical to one built
// fresh: solving the same per-block RHS through both must give the
// exact same floats, because both factorize the same diagonal blocks
// with the same sequential algorithm. Any divergence means the cached
// path factorized something else.
func TestSharedBlocksBitwiseIdentical(t *testing.T) {
	a, _ := testSystem(t)
	octx := NewOperatorContext("m", a, 64)
	shared := octx.Blocks(true)

	fresh := sparse.NewBlockSolverCache(a, sparse.BlockLayout{N: a.N, BlockSize: 64}, true)
	fresh.PrefactorizeLenient()

	for blk := 0; blk < shared.Layout.NumBlocks(); blk++ {
		lo, hi := shared.Layout.Range(blk)
		x1 := make([]float64, hi-lo)
		x2 := make([]float64, hi-lo)
		for i := range x1 {
			x1[i] = float64(1+i) / 3
			x2[i] = x1[i]
		}
		err1 := shared.SolveDiagBlock(blk, x1)
		err2 := fresh.SolveDiagBlock(blk, x2)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("block %d: cached err=%v fresh err=%v", blk, err1, err2)
		}
		for i := range x1 {
			if x1[i] != x2[i] {
				t.Fatalf("block %d element %d: cached %v != fresh %v (not bitwise identical)", blk, i, x1[i], x2[i])
			}
		}
	}
}

// TestContextCacheEviction pins the LRU-under-cap behaviour of the
// matrix-handle store: inserting past the cap evicts the least recently
// used context while the newest insert always survives, and the hit /
// miss counters track lookups.
func TestContextCacheEviction(t *testing.T) {
	a, _ := testSystem(t)
	one := NewOperatorContext("probe", a, 64).SizeBytes()
	cc := NewContextCache(one + one/2) // room for one context, not two

	cc.Put("a", a, 64)
	if _, ok := cc.Get("a"); !ok {
		t.Fatal("a missing right after Put")
	}
	cc.Put("b", a, 64)
	if _, ok := cc.Get("b"); !ok {
		t.Fatal("newest insert b was evicted")
	}
	if _, ok := cc.Get("a"); ok {
		t.Fatal("a survived past the cap (no eviction)")
	}
	if n := cc.Len(); n != 1 {
		t.Fatalf("cache holds %d contexts, want 1", n)
	}
	hits, misses := cc.Counters()
	if hits != 2 || misses != 1 {
		t.Fatalf("hits=%d misses=%d, want 2/1", hits, misses)
	}

	// Recency matters: touch the older entry, insert a third; the
	// untouched one goes.
	cc2 := NewContextCache(2*one + one/2) // room for two
	cc2.Put("a", a, 64)
	cc2.Put("b", a, 64)
	if _, ok := cc2.Get("a"); !ok {
		t.Fatal("a evicted while under cap")
	}
	cc2.Put("c", a, 64) // over cap: evict LRU = b (a was just touched)
	if _, ok := cc2.Get("b"); ok {
		t.Fatal("b survived eviction despite being LRU")
	}
	if _, ok := cc2.Get("a"); !ok {
		t.Fatal("recently used a was evicted instead of LRU b")
	}
}

// TestCheckoutRejectsMismatchedPageSize: the page layout belongs to the
// context; a request asking for a different granularity must be refused
// loudly, not silently re-blocked.
func TestCheckoutRejectsMismatchedPageSize(t *testing.T) {
	a, b := testSystem(t)
	octx := NewOperatorContext("m", a, 64)
	cfg := testCtxCfg()
	cfg.PageDoubles = 128
	if _, err := octx.Checkout("cg", b, cfg); err == nil {
		t.Fatal("checkout with mismatched page size succeeded")
	}
}
