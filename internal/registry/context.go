// Operator contexts: the cacheable half of solver construction. Building
// a solver splits into (1) everything derivable from the operator alone —
// CSR shadows, the prefactorized diagonal-block caches that double as
// block-Jacobi preconditioners, the shard layout — and (2) a cheap
// per-request binding of RHS and launch configuration. An OperatorContext
// owns (1) plus a pool of warm solver instances whose prepared task
// graphs replay across requests, so two solves against the same matrix
// never refactorize or re-prepare; a ContextCache keeps contexts for
// repeated-operator traffic under a memory cap.
package registry

import (
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/defaults"
	"repro/internal/pagemem"
	"repro/internal/sparse"
	"repro/internal/taskrt"
)

// spdFor maps a solver name to the factorization family its recovery
// relations and preconditioner use: Cholesky for the CG family, LU for
// the general-matrix methods. Must agree with the solvers' own choices.
func spdFor(name string) bool {
	switch name {
	case "bicgstab", "gmres":
		return false
	}
	return true // cg, pipecg, cacg
}

// poolKey identifies one reusable solver build: every Config field that
// is baked into construction (per-request fields — RHS, cancellation,
// trace hooks — are rebound at checkout instead).
type poolKey struct {
	name               string
	method             core.Method
	workers            int
	usePrecond         bool
	tol                float64
	maxIter            int
	fallback           core.Fallback
	onDemand           bool
	taskPriority       int
	checkpointInterval int
}

// OperatorContext is the cached, shareable state for one matrix. All
// methods are safe for concurrent use; the block caches are prefactorized
// before they are handed out, so solver-side lookups are read-only.
type OperatorContext struct {
	Key         string
	A           *sparse.CSR
	PageDoubles int
	Layout      sparse.BlockLayout

	mu     sync.Mutex
	blocks map[bool]*sparse.BlockSolverCache // spd -> prefactorized cache
	pool   map[poolKey][]*pooledCG
	bpool  map[batchPoolKey][]*core.BatchCG
}

type pooledCG struct {
	s    *core.CG
	inst *Instance
}

// batchPoolKey extends poolKey with the kernel width: a warm batched
// instance replays its prepared graphs only at the width it was built
// for (Rebind varies the BOUND columns, not the capacity).
type batchPoolKey struct {
	poolKey
	width int
}

// NewOperatorContext builds the context for one matrix. pageDoubles <= 0
// means the paper's 4 KiB page.
func NewOperatorContext(key string, a *sparse.CSR, pageDoubles int) *OperatorContext {
	pd := defaults.PageDoublesOr(pageDoubles)
	return &OperatorContext{
		Key:         key,
		A:           a,
		PageDoubles: pd,
		Layout:      sparse.BlockLayout{N: a.N, BlockSize: pd},
		blocks:      make(map[bool]*sparse.BlockSolverCache),
		pool:        make(map[poolKey][]*pooledCG),
		bpool:       make(map[batchPoolKey][]*core.BatchCG),
	}
}

// Blocks returns the prefactorized diagonal-block cache of the requested
// family, factorizing it on first use (the expensive step this whole
// layer exists to amortize).
func (c *OperatorContext) Blocks(spd bool) *sparse.BlockSolverCache {
	c.mu.Lock()
	defer c.mu.Unlock()
	if bc, ok := c.blocks[spd]; ok {
		return bc
	}
	bc := sparse.NewBlockSolverCache(c.A, c.Layout, spd)
	bc.PrefactorizeLenient()
	c.blocks[spd] = bc
	return bc
}

// SizeBytes estimates the resident cost of the context: the CSR (values,
// index arrays and their narrow shadows) plus one dense factor per
// factorized diagonal block. The estimate drives cache eviction only, so
// page-granularity accuracy is enough.
func (c *OperatorContext) SizeBytes() int64 {
	nnz := int64(len(c.A.Vals))
	n := int64(c.A.N)
	bytes := nnz*8 + nnz*8 + (n+1)*8 // vals + cols + rowptr
	bytes += nnz*4 + (n+1)*4         // int32 shadows (worst case: present)
	c.mu.Lock()
	nc := int64(len(c.blocks))
	c.mu.Unlock()
	bs := int64(c.PageDoubles)
	bytes += nc * int64(c.Layout.NumBlocks()) * bs * bs * 8
	return bytes
}

func keyFor(name string, cfg Config) poolKey {
	return poolKey{
		name:               name,
		method:             cfg.Method,
		workers:            cfg.Workers,
		usePrecond:         cfg.UsePrecond,
		tol:                defaults.TolOr(cfg.Tol),
		maxIter:            cfg.MaxIter,
		fallback:           cfg.Fallback,
		onDemand:           cfg.OnDemandRecovery,
		taskPriority:       cfg.TaskPriority,
		checkpointInterval: cfg.CheckpointInterval,
	}
}

// Checkout is one request's hold on a solver bound to this context.
// Release returns poolable instances to the warm pool; calling it on a
// non-poolable checkout is a no-op. A Checkout must not be used after
// Release.
type Checkout struct {
	Instance *Instance
	// Warm reports whether the checkout reused a pooled instance (and so
	// skipped construction entirely).
	Warm bool

	ctx      *OperatorContext
	key      poolKey
	cg       *pooledCG
	released bool
}

// Checkout binds a solver for one request against the cached operator.
// The request supplies only RHS and launch configuration; the context
// supplies the matrix, the factorized block caches and (for the pooled
// single-node CG family) a warm instance whose prepared task graphs
// replay as-is. Non-pooled solvers are built fresh but still share the
// block cache and the process-wide task pool, so the dominant setup cost
// is amortized for every method.
func (c *OperatorContext) Checkout(name string, b []float64, cfg Config) (*Checkout, error) {
	if pd := defaults.PageDoublesOr(cfg.PageDoubles); pd != c.PageDoubles {
		return nil, fmt.Errorf("registry: page size %d does not match cached context (%d)", pd, c.PageDoubles)
	}
	cfg.Blocks = c.Blocks(spdFor(name))
	if cfg.RT == nil {
		cfg.RT = taskrt.Shared(cfg.Workers)
	}

	// The single-node CG family is fully reusable: Rebind + reset instead
	// of construction. Everything else (distributed substrates, the
	// Krylov-basis methods) is rebuilt per request on shared resources.
	if name == "cg" && cfg.Ranks == 0 {
		key := keyFor(name, cfg)
		c.mu.Lock()
		if q := c.pool[key]; len(q) > 0 {
			p := q[len(q)-1]
			c.pool[key] = q[:len(q)-1]
			c.mu.Unlock()
			if err := p.s.Rebind(b); err != nil {
				return nil, err
			}
			p.s.SetCancelled(cfg.Cancelled)
			p.s.SetOnIteration(cfg.OnIteration)
			return &Checkout{Instance: p.inst, Warm: true, ctx: c, key: key, cg: p}, nil
		}
		c.mu.Unlock()
		s, err := core.NewCG(c.A, b, cfg.Config)
		if err != nil {
			return nil, err
		}
		inst := &Instance{
			Spaces:   []*pagemem.Space{s.Space()},
			Dynamic:  s.DynamicVectors(),
			Run:      func() (core.Result, error) { return s.Run() },
			Solution: s.Solution,
		}
		return &Checkout{Instance: inst, ctx: c, key: key, cg: &pooledCG{s: s, inst: inst}}, nil
	}

	inst, err := New(name, c.A, b, cfg)
	if err != nil {
		return nil, err
	}
	return &Checkout{Instance: inst, ctx: c}, nil
}

// BatchCheckout is one coalesced batch's hold on a batched solver. The
// caller binds per-column cancellation hooks on S directly (they are
// per-request, like the RHS) and must Release when done; Release clears
// every hook before the instance returns to the warm pool.
type BatchCheckout struct {
	S *core.BatchCG
	// Warm reports whether the checkout reused a pooled instance.
	Warm bool

	ctx      *OperatorContext
	key      batchPoolKey
	released bool
}

// CheckoutBatch binds a width-`width` batched solver for one coalesced
// group of requests sharing this operator. Only solvers declaring the
// Batch capability have a batched variant — everything else is a loud
// rejection, never a silent per-column fallback. The warm path mirrors
// Checkout's: pooled instances Rebind across bound-column counts and
// replay their prepared task graphs, so a steady batched load performs
// zero factorizations and zero graph preparations.
func (c *OperatorContext) CheckoutBatch(name string, rhs [][]float64, width int, cfg Config) (*BatchCheckout, error) {
	caps, ok := Caps(name)
	if !ok {
		return nil, fmt.Errorf("registry: unknown solver %q (have %v)", name, Names())
	}
	if !caps.Batch {
		return nil, fmt.Errorf("registry: solver %q has no batched variant (batched solving requires cg)", name)
	}
	if cfg.Ranks > 0 {
		return nil, fmt.Errorf("registry: batched solving is single-node only (drop -ranks)")
	}
	if pd := defaults.PageDoublesOr(cfg.PageDoubles); pd != c.PageDoubles {
		return nil, fmt.Errorf("registry: page size %d does not match cached context (%d)", pd, c.PageDoubles)
	}
	cfg.Blocks = c.Blocks(spdFor(name))
	if cfg.RT == nil {
		cfg.RT = taskrt.Shared(cfg.Workers)
	}
	key := batchPoolKey{poolKey: keyFor(name, cfg), width: width}
	c.mu.Lock()
	if q := c.bpool[key]; len(q) > 0 {
		s := q[len(q)-1]
		c.bpool[key] = q[:len(q)-1]
		c.mu.Unlock()
		if err := s.Rebind(rhs); err != nil {
			return nil, err
		}
		s.SetCancelled(cfg.Cancelled)
		s.SetOnIteration(cfg.OnIteration)
		return &BatchCheckout{S: s, Warm: true, ctx: c, key: key}, nil
	}
	c.mu.Unlock()
	s, err := core.NewBatchCG(c.A, rhs, width, cfg.Config)
	if err != nil {
		return nil, err
	}
	s.SetCancelled(cfg.Cancelled)
	s.SetOnIteration(cfg.OnIteration)
	return &BatchCheckout{S: s, ctx: c, key: key}, nil
}

// Release returns the batched instance to the warm pool, clearing the
// whole-batch and per-column hooks so no stale cancellation can touch
// the next coalesced group.
func (co *BatchCheckout) Release() {
	if co.released {
		return
	}
	co.released = true
	co.S.SetCancelled(nil)
	co.S.SetOnIteration(nil)
	for j := 0; j < co.S.Width(); j++ {
		co.S.SetColumnCancelled(j, nil)
	}
	co.ctx.mu.Lock()
	co.ctx.bpool[co.key] = append(co.ctx.bpool[co.key], co.S)
	co.ctx.mu.Unlock()
}

// Release returns a poolable instance to the context's warm pool. The
// per-request hooks are cleared first so a stale cancellation can never
// abort the next tenant's solve.
func (co *Checkout) Release() {
	if co.released || co.cg == nil {
		return
	}
	co.released = true
	co.cg.s.SetCancelled(nil)
	co.cg.s.SetOnIteration(nil)
	co.ctx.mu.Lock()
	co.ctx.pool[co.key] = append(co.ctx.pool[co.key], co.cg)
	co.ctx.mu.Unlock()
}

// ContextCache is an LRU of operator contexts under a memory cap, the
// matrix-handle store of the serving layer. In-flight solves hold their
// own *OperatorContext references, so eviction never invalidates a
// running request — the context just stops being findable by handle.
type ContextCache struct {
	mu       sync.Mutex
	capBytes int64
	items    map[string]*cacheEntry
	tick     int64
	hits     int64
	misses   int64
}

type cacheEntry struct {
	ctx  *OperatorContext
	used int64
}

// NewContextCache builds a cache; capBytes <= 0 means
// defaults.ServeCacheBytes.
func NewContextCache(capBytes int64) *ContextCache {
	return &ContextCache{
		capBytes: defaults.ServeCacheBytesOr(capBytes),
		items:    make(map[string]*cacheEntry),
	}
}

// Get returns the context for a matrix handle, updating recency and the
// hit/miss counters.
func (cc *ContextCache) Get(key string) (*OperatorContext, bool) {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	e, ok := cc.items[key]
	if !ok {
		cc.misses++
		return nil, false
	}
	cc.hits++
	cc.tick++
	e.used = cc.tick
	return e.ctx, true
}

// Put inserts (or replaces) the context for a matrix handle and evicts
// least-recently-used entries while the cache exceeds its cap. The newly
// inserted entry is never evicted — a matrix larger than the whole cap
// still gets to serve its own requests.
func (cc *ContextCache) Put(key string, a *sparse.CSR, pageDoubles int) *OperatorContext {
	ctx := NewOperatorContext(key, a, pageDoubles)
	cc.mu.Lock()
	defer cc.mu.Unlock()
	cc.tick++
	cc.items[key] = &cacheEntry{ctx: ctx, used: cc.tick}
	cc.evictLocked(key)
	return ctx
}

func (cc *ContextCache) evictLocked(keep string) {
	for len(cc.items) > 1 && cc.bytesLocked() > cc.capBytes {
		var lruKey string
		var lruUsed int64
		for k, e := range cc.items {
			if k == keep {
				continue
			}
			if lruKey == "" || e.used < lruUsed {
				lruKey, lruUsed = k, e.used
			}
		}
		if lruKey == "" {
			return
		}
		delete(cc.items, lruKey)
	}
}

func (cc *ContextCache) bytesLocked() int64 {
	var total int64
	for _, e := range cc.items {
		total += e.ctx.SizeBytes()
	}
	return total
}

// Bytes returns the estimated resident size of all cached contexts.
func (cc *ContextCache) Bytes() int64 {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	return cc.bytesLocked()
}

// Len returns the number of cached contexts.
func (cc *ContextCache) Len() int {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	return len(cc.items)
}

// Counters returns the lifetime hit/miss counts.
func (cc *ContextCache) Counters() (hits, misses int64) {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	return cc.hits, cc.misses
}
