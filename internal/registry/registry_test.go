package registry

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/matgen"
	"repro/internal/sparse"
)

// testSystem builds an SPD system with cross-page coupling (so
// block-Jacobi preconditioning genuinely helps) and its exact solution.
func testSystem(t *testing.T) (*sparse.CSR, []float64) {
	t.Helper()
	a := matgen.Poisson2D(30, 30)
	b := matgen.Ones(a.N)
	return a, b
}

func testCfg(precond bool, ranks int) Config {
	return Config{
		Config: core.Config{
			Method:      core.MethodFEIR,
			PageDoubles: 64,
			Tol:         1e-10,
			MaxIter:     20000,
			UsePrecond:  precond,
		},
		Ranks: ranks,
	}
}

func TestNamesSorted(t *testing.T) {
	names := Names()
	if len(names) < 3 {
		t.Fatalf("expected at least the three built-ins, got %v", names)
	}
	for _, want := range []string{"bicgstab", "cg", "gmres"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Fatalf("missing %q in %v", want, names)
		}
	}
}

func TestUnknownSolverError(t *testing.T) {
	a, b := testSystem(t)
	_, err := New("no-such-method", a, b, testCfg(false, 0))
	if err == nil || !strings.Contains(err.Error(), "unknown solver") {
		t.Fatalf("want unknown-solver error, got %v", err)
	}
}

// TestAllVariantsDispatch runs every registered method through all four
// topology × preconditioning combinations: each must converge, and the
// preconditioned run must take strictly fewer iterations than its
// unpreconditioned counterpart — the regression test for the PR-3 bug
// where -precond was silently dropped outside single-node CG.
func TestAllVariantsDispatch(t *testing.T) {
	a, b := testSystem(t)
	for _, solver := range []string{"cg", "bicgstab", "gmres"} {
		for _, ranks := range []int{0, 2} {
			iters := map[bool]int{}
			for _, precond := range []bool{false, true} {
				inst, err := New(solver, a, b, testCfg(precond, ranks))
				if err != nil {
					t.Fatalf("%s ranks=%d precond=%v: %v", solver, ranks, precond, err)
				}
				res, err := inst.Run()
				if err != nil {
					t.Fatalf("%s ranks=%d precond=%v: %v", solver, ranks, precond, err)
				}
				if !res.Converged {
					t.Fatalf("%s ranks=%d precond=%v: not converged: %+v", solver, ranks, precond, res)
				}
				if res.RelResidual > 1e-8 {
					t.Fatalf("%s ranks=%d precond=%v: residual %v", solver, ranks, precond, res.RelResidual)
				}
				iters[precond] = res.Iterations
			}
			if iters[true] >= iters[false] {
				t.Fatalf("%s ranks=%d: preconditioned run not faster (%d vs %d iterations) — -precond silently dropped?",
					solver, ranks, iters[true], iters[false])
			}
		}
	}
}

// TestCapabilityRejection keeps the never-drop-a-config contract as a
// regression test: a builder that does not declare a capability must be
// rejected with an error naming the solver, not run without it.
func TestCapabilityRejection(t *testing.T) {
	name := "limited-test-solver"
	Register(name, Capabilities{}, func(a *sparse.CSR, b []float64, cfg Config) (*Instance, error) {
		t.Fatal("builder must not run for a rejected configuration")
		return nil, nil
	})
	a, b := testSystem(t)
	if _, err := New(name, a, b, testCfg(true, 0)); err == nil || !strings.Contains(err.Error(), name) {
		t.Fatalf("UsePrecond not rejected: %v", err)
	}
	if _, err := New(name, a, b, testCfg(false, 2)); err == nil || !strings.Contains(err.Error(), name) {
		t.Fatalf("Ranks not rejected: %v", err)
	}
	if _, ok := Caps(name); !ok {
		t.Fatal("capabilities not recorded")
	}
}

// TestBuiltinsDeclareFullCapabilities pins the six preconditioned entry
// points: every built-in dispatches -precond and -ranks.
func TestBuiltinsDeclareFullCapabilities(t *testing.T) {
	for _, solver := range []string{"cg", "bicgstab", "gmres"} {
		caps, ok := Caps(solver)
		if !ok {
			t.Fatalf("%s not registered", solver)
		}
		if !caps.Precond || !caps.Distributed {
			t.Fatalf("%s caps = %+v, want full", solver, caps)
		}
	}
}

// TestPipeCGRegistration pins the pipelined CG entry: distributed runs
// converge to the cg solution, single-node and preconditioned requests
// are rejected naming the solver.
func TestPipeCGRegistration(t *testing.T) {
	caps, ok := Caps("pipecg")
	if !ok {
		t.Fatal("pipecg not registered")
	}
	if caps.Precond || !caps.Distributed {
		t.Fatalf("pipecg caps = %+v, want distributed-only", caps)
	}
	a, b := testSystem(t)
	if _, err := New("pipecg", a, b, testCfg(true, 2)); err == nil || !strings.Contains(err.Error(), "pipecg") {
		t.Fatalf("UsePrecond not rejected: %v", err)
	}
	if _, err := New("pipecg", a, b, testCfg(false, 0)); err == nil || !strings.Contains(err.Error(), "pipecg") {
		t.Fatalf("single-node not rejected: %v", err)
	}
	inst, err := New("pipecg", a, b, testCfg(false, 2))
	if err != nil {
		t.Fatal(err)
	}
	res, err := inst.Run()
	if err != nil || !res.Converged || res.RelResidual > 1e-8 {
		t.Fatalf("pipecg run: %+v err=%v", res, err)
	}
	if inst.RankStats == nil || len(inst.RankStats()) != 2 {
		t.Fatal("pipecg instance missing per-rank stats")
	}
}
