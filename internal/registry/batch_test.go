package registry

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/matgen"
	"repro/internal/sparse"
)

func testBatchCfg() Config {
	return Config{
		Config: core.Config{
			Method:      core.MethodFEIR,
			PageDoubles: 64,
			Tol:         1e-10,
		},
	}
}

func batchRHS(n, cols int, seed int64) [][]float64 {
	rhs := make([][]float64, cols)
	for j := range rhs {
		rhs[j] = matgen.RandomVector(n, seed+int64(j))
	}
	return rhs
}

// TestCheckoutBatchRejections pins the capability gate: batched solving
// exists only for solvers declaring Batch, and only single-node.
func TestCheckoutBatchRejections(t *testing.T) {
	a, _ := testSystem(t)
	octx := NewOperatorContext("m", a, 64)
	rhs := batchRHS(a.N, 2, 7)

	for _, name := range []string{"bicgstab", "gmres", "pipecg", "cacg"} {
		if caps, ok := Caps(name); !ok || caps.Batch {
			t.Fatalf("%s: unexpected Batch capability", name)
		}
		if _, err := octx.CheckoutBatch(name, rhs, 4, testBatchCfg()); err == nil {
			t.Fatalf("%s: batched checkout did not fail", name)
		}
	}
	if _, err := octx.CheckoutBatch("nosuch", rhs, 4, testBatchCfg()); err == nil {
		t.Fatal("unknown solver accepted")
	}
	cfg := testBatchCfg()
	cfg.Ranks = 2
	if _, err := octx.CheckoutBatch("cg", rhs, 4, cfg); err == nil {
		t.Fatal("distributed batch accepted")
	}
	cfg = testBatchCfg()
	cfg.PageDoubles = 128
	if _, err := octx.CheckoutBatch("cg", rhs, 4, cfg); err == nil {
		t.Fatal("mismatched page size accepted")
	}
}

// TestCheckoutBatchWarmZeroRebuilds pins the batched serving claim:
// after warmup, batched checkouts against a cached operator perform zero
// factorizations and zero graph preparations, across Rebinds that vary
// the number of bound columns.
func TestCheckoutBatchWarmZeroRebuilds(t *testing.T) {
	a, _ := testSystem(t)
	octx := NewOperatorContext("m", a, 64)

	co, err := octx.CheckoutBatch("cg", batchRHS(a.N, 4, 1), 4, testBatchCfg())
	if err != nil {
		t.Fatal(err)
	}
	if co.Warm {
		t.Fatal("first batched checkout claims to be warm")
	}
	if res, err := co.S.Run(); err != nil || !res.Columns[0].Converged {
		t.Fatalf("warmup batch: %+v err=%v", res, err)
	}
	co.Release()

	fac0, prep0 := sparse.FactorizationCount(), engine.GraphPrepCount()
	for i := 0; i < 3; i++ {
		cols := 2 + i // rebinding across widths stays warm
		co, err := octx.CheckoutBatch("cg", batchRHS(a.N, cols, int64(10*i)), 4, testBatchCfg())
		if err != nil {
			t.Fatal(err)
		}
		if !co.Warm {
			t.Fatalf("batched checkout %d after warmup is not warm", i)
		}
		res, err := co.S.Run()
		if err != nil {
			t.Fatal(err)
		}
		for j, col := range res.Columns {
			if !col.Converged {
				t.Fatalf("warm batch %d col %d: %+v", i, j, col)
			}
		}
		co.Release()
	}
	if d := sparse.FactorizationCount() - fac0; d != 0 {
		t.Fatalf("warm batched solves performed %d factorizations, want 0", d)
	}
	if d := engine.GraphPrepCount() - prep0; d != 0 {
		t.Fatalf("warm batched solves performed %d graph preparations, want 0", d)
	}
}

// TestConcurrentBatchedCheckoutsDistinctRHS runs goroutines pushing
// distinct batched RHS sets through one shared operator context — the
// coalescing dispatcher's steady state. Under -race this is the data-race
// gate for the batch pool; it also pins zero rebuilds after a concurrent
// warmup.
func TestConcurrentBatchedCheckoutsDistinctRHS(t *testing.T) {
	a, _ := testSystem(t)
	octx := NewOperatorContext("m", a, 64)
	const gor = 3

	run := func(tag string) error {
		var wg sync.WaitGroup
		errs := make(chan error, gor)
		for g := 0; g < gor; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := 0; i < 2; i++ {
					co, err := octx.CheckoutBatch("cg", batchRHS(a.N, 3, int64(100*g+i)), 4, testBatchCfg())
					if err != nil {
						errs <- err
						return
					}
					res, err := co.S.Run()
					if err != nil {
						errs <- err
						return
					}
					for j, col := range res.Columns {
						if !col.Converged {
							errs <- fmt.Errorf("%s g%d i%d col %d: %+v", tag, g, i, j, col)
							co.Release()
							return
						}
					}
					co.Release()
				}
			}(g)
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			return err
		}
		return nil
	}

	// Deterministic warmup: hold gor instances at once so the pool is
	// provably deep enough — a concurrent traffic round only pools as many
	// instances as the scheduler happened to overlap, and the steady phase
	// below would flake with a cold construction.
	held := make([]*BatchCheckout, 0, gor)
	for g := 0; g < gor; g++ {
		co, err := octx.CheckoutBatch("cg", batchRHS(a.N, 3, int64(g)), 4, testBatchCfg())
		if err != nil {
			t.Fatal(err)
		}
		held = append(held, co)
		if _, err := co.S.Run(); err != nil {
			t.Fatal(err)
		}
	}
	for _, co := range held {
		co.Release()
	}
	if err := run("warmup"); err != nil {
		t.Fatal(err)
	}
	fac0, prep0 := sparse.FactorizationCount(), engine.GraphPrepCount()
	if err := run("steady"); err != nil {
		t.Fatal(err)
	}
	if d := sparse.FactorizationCount() - fac0; d != 0 {
		t.Fatalf("steady batched phase performed %d factorizations, want 0", d)
	}
	if d := engine.GraphPrepCount() - prep0; d != 0 {
		t.Fatalf("steady batched phase performed %d graph preparations, want 0", d)
	}
}
