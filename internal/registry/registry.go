// Package registry is the single dispatch point for every solver in the
// repository: a name-indexed table of constructors, each handling both
// the single-node task-parallel implementation (internal/core) and the
// rank-sharded distributed one (internal/dist) behind one launch shape.
// cmd/due-solve, cmd/due-bench and internal/experiments all consume it,
// so adding a method or a topology is one registration here instead of a
// switch edit per consumer.
package registry

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/defaults"
	"repro/internal/dist"
	"repro/internal/pagemem"
	"repro/internal/shard"
	"repro/internal/sparse"
	"repro/internal/taskrt"
)

// Config extends the single-node configuration with the distributed
// knobs. Ranks > 0 selects the rank-sharded substrate (Ranks == 1 still
// exercises the distributed path with a single shard).
type Config struct {
	core.Config
	// Ranks is the number of shards; 0 means single-node.
	Ranks int
	// Restart is the GMRES restart length; 0 means 30.
	Restart int
	// BasisK is the s-step basis size of the communication-avoiding CG
	// (cacg); 0 means 4.
	BasisK int
	// RankInject, when non-nil and Ranks > 0, is called once per
	// iteration with the substrate's ranks — the deterministic injection
	// hook of the distributed validation runs.
	RankInject func(it int, ranks []*shard.Rank)
	// SharedPool routes the instance's tasks through the process-wide
	// taskrt.Shared pool instead of constructing a private one — the fix
	// for registry.New silently oversubscribing GOMAXPROCS with one pool
	// per instance. Ignored when core.Config.RT is already set.
	SharedPool bool
}

func (c Config) distConfig() dist.Config {
	return dist.Config{
		Method:             c.Method,
		Workers:            c.Workers,
		PageDoubles:        c.PageDoubles,
		Tol:                c.Tol,
		MaxIter:            c.MaxIter,
		CheckpointInterval: c.CheckpointInterval,
		Restart:            c.Restart,
		BasisK:             c.BasisK,
		UsePrecond:         c.UsePrecond,
		Inject:             c.RankInject,
		OnIteration:        c.OnIteration,
		RT:                 c.RT,
		Blocks:             c.Blocks,
		Cancelled:          c.Cancelled,
		Policy:             c.Policy,
	}
}

// Instance is one ready-to-run solver: the injection surface plus the
// launch closure. RankStats is nil for single-node instances.
type Instance struct {
	// Spaces lists the fault domains (one single-node space, or one per
	// rank).
	Spaces []*pagemem.Space
	// Dynamic lists the vectors injections cover (§5.3).
	Dynamic []*pagemem.Vector
	// Run executes the solve (once) and returns the aggregate result.
	Run func() (core.Result, error)
	// RankStats, when non-nil, snapshots the per-rank recovery counters
	// after Run returned.
	RankStats func() []core.Stats
	// Solution returns the solution vector; only valid after Run
	// returned (and overwritten by the next Run on a pooled instance).
	Solution func() []float64
}

// Builder constructs an instance of one named method for either topology.
type Builder func(a *sparse.CSR, b []float64, cfg Config) (*Instance, error)

// Capabilities declares which optional Config knobs a builder honors, so
// New can reject a configuration the solver would otherwise silently
// drop. A requested knob a builder does not declare is a hard error, not
// a fallback: a user asking for PCG-class runs must never be handed
// unpreconditioned results without a word (the pre-PR-3 bug).
type Capabilities struct {
	// Precond: the builder honors Config.UsePrecond.
	Precond bool
	// Distributed: the builder honors Config.Ranks > 0.
	Distributed bool
	// Policy: the builder honors Config.Policy (adaptive resilience
	// switching at iteration fixpoints).
	Policy bool
	// ABFT: the builder honors Config.ABFT (checksum-carrying kernels
	// turning silent flips into recoverable poisons).
	ABFT bool
	// Batch: the solver has a multi-RHS batched variant reachable through
	// OperatorContext.CheckoutBatch (one SpMM pass shared by all columns).
	Batch bool
}

type entry struct {
	caps  Capabilities
	build Builder
}

var builders = map[string]entry{}

// Register adds a named solver with its declared capabilities. Later
// registrations replace earlier ones.
func Register(name string, caps Capabilities, b Builder) {
	builders[name] = entry{caps: caps, build: b}
}

// Names lists the registered solvers, sorted.
func Names() []string {
	out := make([]string, 0, len(builders))
	for n := range builders {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Caps returns the declared capabilities of a registered solver.
func Caps(name string) (Capabilities, bool) {
	e, ok := builders[name]
	return e.caps, ok
}

// New builds the named solver over A x = b, rejecting configuration
// knobs the solver does not declare.
func New(name string, a *sparse.CSR, b []float64, cfg Config) (*Instance, error) {
	e, ok := builders[name]
	if !ok {
		return nil, fmt.Errorf("registry: unknown solver %q (have %v)", name, Names())
	}
	if cfg.UsePrecond && !e.caps.Precond {
		return nil, fmt.Errorf("registry: solver %q has no preconditioned variant (drop -precond)", name)
	}
	if cfg.Ranks > 0 && !e.caps.Distributed {
		return nil, fmt.Errorf("registry: solver %q has no distributed variant (drop -ranks)", name)
	}
	if cfg.Policy != nil && !e.caps.Policy {
		return nil, fmt.Errorf("registry: solver %q has no adaptive-policy support (drop -policy)", name)
	}
	if cfg.ABFT && !e.caps.ABFT {
		return nil, fmt.Errorf("registry: solver %q has no ABFT checksum coverage (drop -abft)", name)
	}
	if cfg.SharedPool && cfg.RT == nil {
		cfg.RT = taskrt.Shared(cfg.Workers)
	}
	return e.build(a, b, cfg)
}

// distInstance adapts the common distributed solver surface.
type distSolver interface {
	Spaces() []*pagemem.Space
	DynamicVectors() []*pagemem.Vector
	RankStats() []core.Stats
	Run() (core.Result, []float64, error)
}

func distInstance(s distSolver) *Instance {
	inst := &Instance{
		Spaces:    s.Spaces(),
		Dynamic:   s.DynamicVectors(),
		RankStats: s.RankStats,
	}
	var sol []float64
	inst.Run = func() (core.Result, error) {
		res, x, err := s.Run()
		sol = x
		return res, err
	}
	inst.Solution = func() []float64 { return sol }
	return inst
}

// all declares the full capability set of the three built-in methods:
// since PR 3 every one of them dispatches a preconditioned variant for
// both topologies, and all three honor the adaptive resilience policy
// (single-node and distributed). ABFT checksum coverage exists only for
// the single-node CG's resilient kernels; the cg builder rejects the
// distributed combination explicitly.
var all = Capabilities{Precond: true, Distributed: true, Policy: true}

func init() {
	cgCaps := all
	cgCaps.ABFT = true
	cgCaps.Batch = true // core.BatchCG, via OperatorContext.CheckoutBatch
	Register("cg", cgCaps, func(a *sparse.CSR, b []float64, cfg Config) (*Instance, error) {
		if cfg.Ranks > 0 {
			if cfg.ABFT {
				return nil, fmt.Errorf("registry: ABFT checksum coverage is single-node only (drop -abft or -ranks)")
			}
			s, err := dist.NewCG(a, b, cfg.Ranks, cfg.distConfig())
			if err != nil {
				return nil, err
			}
			return distInstance(s), nil
		}
		s, err := core.NewCG(a, b, cfg.Config)
		if err != nil {
			return nil, err
		}
		return &Instance{
			Spaces:   []*pagemem.Space{s.Space()},
			Dynamic:  s.DynamicVectors(),
			Run:      func() (core.Result, error) { return s.Run() },
			Solution: s.Solution,
		}, nil
	})
	// pipecg is the pipelined distributed CG (single fused reduction per
	// iteration, allreduce overlapped with the next SpMV). It exists only
	// on the rank-sharded substrate and has no preconditioned variant or
	// checkpoint rollback; the capability declaration and the explicit
	// ranks check keep both rejections loud.
	Register("pipecg", Capabilities{Distributed: true}, func(a *sparse.CSR, b []float64, cfg Config) (*Instance, error) {
		if cfg.Ranks <= 0 {
			return nil, fmt.Errorf("registry: solver \"pipecg\" is distributed-only (set -ranks)")
		}
		s, err := dist.NewPipeCG(a, b, cfg.Ranks, cfg.distConfig())
		if err != nil {
			return nil, err
		}
		return distInstance(s), nil
	})
	// cacg is the communication-avoiding s-step CG (one global reduction
	// per k iterations, basis SpMVs back to back). Distributed-only, like
	// pipecg, and the block recurrence has no preconditioned variant or
	// checkpoint rollback.
	Register("cacg", Capabilities{Distributed: true}, func(a *sparse.CSR, b []float64, cfg Config) (*Instance, error) {
		if cfg.Ranks <= 0 {
			return nil, fmt.Errorf("registry: solver \"cacg\" is distributed-only (set -ranks)")
		}
		s, err := dist.NewCACG(a, b, cfg.Ranks, cfg.distConfig())
		if err != nil {
			return nil, err
		}
		return distInstance(s), nil
	})
	Register("bicgstab", all, func(a *sparse.CSR, b []float64, cfg Config) (*Instance, error) {
		if cfg.Ranks > 0 {
			s, err := dist.NewBiCGStab(a, b, cfg.Ranks, cfg.distConfig())
			if err != nil {
				return nil, err
			}
			return distInstance(s), nil
		}
		s, err := core.NewBiCGStab(a, b, cfg.Config)
		if err != nil {
			return nil, err
		}
		inst := &Instance{
			Spaces:  []*pagemem.Space{s.Space()},
			Dynamic: s.DynamicVectors(),
		}
		var sol []float64
		inst.Run = func() (core.Result, error) {
			res, x, err := s.Run()
			sol = x
			return res, err
		}
		inst.Solution = func() []float64 { return sol }
		return inst, nil
	})
	Register("gmres", all, func(a *sparse.CSR, b []float64, cfg Config) (*Instance, error) {
		if cfg.Ranks > 0 {
			s, err := dist.NewGMRES(a, b, cfg.Ranks, cfg.distConfig())
			if err != nil {
				return nil, err
			}
			return distInstance(s), nil
		}
		s, err := core.NewGMRES(a, b, defaults.GMRESRestartOr(cfg.Restart), cfg.Config)
		if err != nil {
			return nil, err
		}
		inst := &Instance{
			Spaces:  []*pagemem.Space{s.Space()},
			Dynamic: s.DynamicVectors(),
		}
		var sol []float64
		inst.Run = func() (core.Result, error) {
			res, x, err := s.Run()
			sol = x
			return res, err
		}
		inst.Solution = func() []float64 { return sol }
		return inst, nil
	})
}
