// The adaptive-policy benchmark: the paper's §5 evaluation fixes one
// resilience method per run, but no method dominates — FEIR's recovery
// latency is wasted on clean runs, while Lossy's restarts are ruinous
// under storms. This experiment drives the internal/policy controller
// through a scripted error ramp (quiet warm-up, then a dense mixed
// DUE/SDC storm) and compares the adaptive run against every static
// comparator under the IDENTICAL injection plan, plus the clean-run
// cost of the ABFT checksum coverage the SDC detections ride on.
package experiments

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/core"
	"repro/internal/defaults"
	"repro/internal/inject"
	"repro/internal/matgen"
	"repro/internal/policy"
	"repro/internal/sparse"
)

// PolicyOptions sizes the adaptive-policy benchmark. Zero values pick
// the quick defaults used for the committed artefact.
type PolicyOptions struct {
	// Scale is the matrix dimension; 0 means 4096 (a 64×64 Poisson grid).
	Scale int
	// Workers is the task-pool size; 0 means 8.
	Workers int
	// PageDoubles is the fault granularity; 0 means 64 so the quick grid
	// still spans enough pages to make injection targets interesting.
	PageDoubles int
	// Tol is the convergence threshold; 0 means 1e-8.
	Tol float64
	// Reps repeats the clean-overhead measurements; 0 means 3.
	Reps int
	// Seed drives the scripted injection plan; 0 means 1.
	Seed int64
}

func (o PolicyOptions) scale() int       { return defaults.Int(o.Scale, 4096) }
func (o PolicyOptions) workers() int     { return defaults.Int(o.Workers, 8) }
func (o PolicyOptions) pageDoubles() int { return defaults.Int(o.PageDoubles, 64) }
func (o PolicyOptions) tol() float64     { return defaults.Float(o.Tol, 1e-8) }
func (o PolicyOptions) reps() int        { return defaults.Int(o.Reps, 3) }

func (o PolicyOptions) seed() int64 {
	if o.Seed == 0 {
		return 1
	}
	return o.Seed
}

// PolicyRun is one comparator under the shared injection ramp.
type PolicyRun struct {
	Name        string  `json:"name"`
	Method      string  `json:"method"` // construction method
	ElapsedMs   float64 `json:"elapsed_ms"`
	Iterations  int     `json:"iterations"`
	Converged   bool    `json:"converged"`
	RelResidual float64 `json:"rel_residual"`
	FaultsSeen  int     `json:"faults_seen"`
	SDCInjected int     `json:"sdc_injected"`
	SDCDetected int     `json:"sdc_detected"`
	Restarts    int     `json:"restarts"`
	Switches    int     `json:"policy_switches"`
}

// PolicyResult is the BENCH_policy.json payload: the ABFT clean-run
// overhead (the checksum kernels must ride existing passes, so this is
// the headline "zero extra data passes" number), the static-vs-adaptive
// comparison under one scripted ramp, and the controller's decision log.
//
//due:bench-artefact
type PolicyResult struct {
	Matrix      string `json:"matrix"`
	N           int    `json:"n"`
	PageDoubles int    `json:"page_doubles"`
	Workers     int    `json:"workers"`
	Seed        int64  `json:"seed"`

	// ABFTCleanOverheadPct is the elapsed-time cost of running the
	// checksum-carrying kernels on a fault-free FEIR solve. The kernels
	// are bitwise-equal arithmetic folding an XOR per store, so this
	// should be single-digit percent.
	ABFTCleanOverheadPct float64 `json:"abft_clean_overhead_pct"`

	// Runs holds the comparators under the identical scripted ramp:
	// static FEIR/AFEIR (ABFT on), static Lossy (no checksum coverage —
	// silent flips land unobserved), and the adaptive controller run.
	Runs []PolicyRun `json:"runs"`

	// AdaptiveVsBestStaticPct is the adaptive run's elapsed overhead
	// against the fastest CONVERGED static comparator (negative means
	// the adaptive run won outright).
	AdaptiveVsBestStaticPct float64 `json:"adaptive_vs_best_static_pct"`

	// Decisions is the controller's switch log, one line per decision.
	Decisions []string `json:"decisions"`

	Provenance Provenance `json:"provenance"`
}

// policyRamp is the scripted schedule every comparator replays: quiet
// until iteration 40, then a storm of mean one event per 3 iterations,
// a quarter of them silent bit flips.
func policyRamp() []inject.RatePhase {
	return []inject.RatePhase{
		{FromIteration: 0, MeanIters: 0},
		{FromIteration: 40, MeanIters: 3, SDCFraction: 0.25},
	}
}

func policyConfig(opts PolicyOptions, m core.Method, abft bool) core.Config {
	return core.Config{
		Method:      m,
		Workers:     opts.workers(),
		PageDoubles: opts.pageDoubles(),
		Tol:         opts.tol(),
		MaxIter:     4000,
		ABFT:        abft,
	}
}

// runPolicyCase executes one comparator under the scripted ramp. The
// plan is compiled per run (each solver owns its vectors) from the same
// seed, so every comparator replays the identical error sequence.
func runPolicyCase(a *sparse.CSR, rhs []float64, cfg core.Config, opts PolicyOptions) (core.Result, error) {
	cg, err := core.NewCG(a, rhs, cfg)
	if err != nil {
		return core.Result{}, err
	}
	plan := inject.Schedule{
		Phases:  policyRamp(),
		Seed:    opts.seed(),
		Targets: cg.DynamicVectors(),
	}.Compile(cfg.MaxIter)
	plan.Start()
	defer plan.Stop()
	cg.SetOnIteration(func(it int, rel float64) { plan.Tick(it) })
	return cg.Run()
}

// RunPolicy executes the adaptive-policy benchmark.
func RunPolicy(opts PolicyOptions) (*PolicyResult, error) {
	grid := int(math.Sqrt(float64(opts.scale())))
	a := matgen.Poisson2D(grid, grid)
	rhs := matgen.RandomVector(a.N, 42)
	out := &PolicyResult{
		Matrix:      fmt.Sprintf("poisson2d-%dx%d", grid, grid),
		N:           a.N,
		PageDoubles: opts.pageDoubles(),
		Workers:     opts.workers(),
		Seed:        opts.seed(),
	}

	// ABFT clean overhead: FEIR with and without checksum coverage on a
	// fault-free solve, best of reps.
	plainT := measureBest(a, rhs, policyConfig(opts, core.MethodFEIR, false), opts.reps())
	abftT := measureBest(a, rhs, policyConfig(opts, core.MethodFEIR, true), opts.reps())
	out.ABFTCleanOverheadPct = (abftT.Seconds()/plainT.Seconds() - 1) * 100

	record := func(name string, cfg core.Config) (core.Result, error) {
		res, err := runPolicyCase(a, rhs, cfg, opts)
		if err != nil {
			return res, err
		}
		out.Runs = append(out.Runs, PolicyRun{
			Name:        name,
			Method:      cfg.Method.String(),
			ElapsedMs:   float64(res.Elapsed.Microseconds()) / 1e3,
			Iterations:  res.Iterations,
			Converged:   res.Converged,
			RelResidual: res.RelResidual,
			FaultsSeen:  res.Stats.FaultsSeen,
			SDCInjected: res.Stats.SDCInjected,
			SDCDetected: res.Stats.SDCDetected,
			Restarts:    res.Stats.Restarts,
			Switches:    res.Stats.PolicySwitches,
		})
		return res, nil
	}

	statics := []struct {
		name string
		m    core.Method
		abft bool
	}{
		{"static-FEIR+ABFT", core.MethodFEIR, true},
		{"static-AFEIR+ABFT", core.MethodAFEIR, true},
		{"static-Lossy", core.MethodLossy, false},
	}
	bestStatic := math.Inf(1)
	for _, s := range statics {
		res, err := record(s.name, policyConfig(opts, s.m, s.abft))
		if err != nil {
			return nil, err
		}
		if res.Converged && res.Elapsed.Seconds() < bestStatic {
			bestStatic = res.Elapsed.Seconds()
		}
	}

	ctrl := policy.New(policy.Config{})
	cfg := policyConfig(opts, core.MethodFEIR, true)
	cfg.Policy = ctrl
	adaptive, err := record("adaptive", cfg)
	if err != nil {
		return nil, err
	}
	for _, d := range ctrl.Decisions() {
		out.Decisions = append(out.Decisions, d.String())
	}
	if !math.IsInf(bestStatic, 1) {
		out.AdaptiveVsBestStaticPct = (adaptive.Elapsed.Seconds()/bestStatic - 1) * 100
	}
	out.Provenance = CollectProvenance()
	return out, nil
}

// String renders the benchmark for the terminal.
func (r *PolicyResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "policy bench: %s n=%d pages=%d workers=%d seed=%d\n",
		r.Matrix, r.N, r.PageDoubles, r.Workers, r.Seed)
	fmt.Fprintf(&b, "  ABFT clean overhead %+.2f%% (checksums folded into existing passes)\n",
		r.ABFTCleanOverheadPct)
	for _, run := range r.Runs {
		fmt.Fprintf(&b, "  %-18s %8.1fms %5d iters conv=%-5v faults=%d sdc=%d/%d restarts=%d switches=%d\n",
			run.Name, run.ElapsedMs, run.Iterations, run.Converged,
			run.FaultsSeen, run.SDCDetected, run.SDCInjected, run.Restarts, run.Switches)
	}
	fmt.Fprintf(&b, "  adaptive vs best static %+.2f%%\n", r.AdaptiveVsBestStaticPct)
	for _, d := range r.Decisions {
		fmt.Fprintf(&b, "    %s\n", d)
	}
	if r.Provenance.Degraded {
		b.WriteString("  [degraded provenance: GOMAXPROCS=1 — method contrasts collapse on one core]\n")
	}
	return b.String()
}
