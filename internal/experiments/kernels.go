package experiments

import (
	"fmt"
	"math/rand"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/matgen"
	"repro/internal/pagemem"
	"repro/internal/sparse"
	"repro/internal/taskrt"
)

// KernelsResult is the BENCH_kernels.json payload: the tracked kernel and
// steady-state performance baseline. Later PRs regenerate it and compare
// — the perf trajectory of the hot path starts here.
//
// The iteration speedup compares the frozen pre-PR hot path (see
// kernels_baseline.go: the single-heap scheduler with an eager channel
// per task, non-hoisted wide-index kernels, unfused ops submitted fresh
// every iteration) against this PR's hot path (fused q/<d,q> and g/ε
// tasks, narrow-index kernels, prepared handles replayed with zero
// allocations on the work-stealing+helping scheduler), both driving the
// same guarded CG iteration structure on the same matrix. Measurement
// rounds are interleaved and the medians reported, so slow-neighbour
// noise on virtualised runners cancels out of the ratio.
//
// CGIterNs/CGIterAllocs additionally measure the real core.CG solver
// (MethodFEIR, no faults), whose iterations also carry the recovery scan
// and reconcile passes the replicas omit.
//
//due:bench-artefact
type KernelsResult struct {
	Scale       int `json:"scale"`
	Workers     int `json:"workers"`
	PageDoubles int `json:"page_doubles"`
	NNZ         int `json:"nnz"`
	Iters       int `json:"iters"`

	SpMVPrePRGFlops float64 `json:"spmv_pre_pr_gflops"`
	SpMVGFlops      float64 `json:"spmv_gflops"`
	SpMVFusedGFlops float64 `json:"spmv_fused_gflops"`

	// Short-row panel: the SELL-C-σ shadow against the narrow-index CSR
	// kernel on the unstructured short-row matrix class DIA rejects (the
	// tracked Poisson stencil keeps its DIA shadow, so SELL needs its own
	// column). SELLShadow records what BuildIndex32 actually selected —
	// the auto-selection heuristics are judged against SELLSpeedup here.
	SELLShadow            string  `json:"spmv_shortrow_shadow"`
	SpMVSELLGFlops        float64 `json:"spmv_shortrow_sell_gflops"`
	SpMVShortRowCSRGFlops float64 `json:"spmv_shortrow_csr32_gflops"`
	SELLSpeedup           float64 `json:"spmv_sell_speedup"`

	IterPrePRNs     float64 `json:"cg_iter_pre_pr_ns"`
	IterFusedNs     float64 `json:"cg_iter_fused_ns"`
	IterSpeedup     float64 `json:"cg_iter_speedup"`
	IterFusedAllocs float64 `json:"cg_iter_fused_allocs"`

	CGIterNs     float64 `json:"cg_solver_iter_ns"`
	CGIterAllocs float64 `json:"cg_solver_iter_allocs"`

	TaskrtStealTasksPerSec  float64 `json:"taskrt_steal_tasks_per_sec"`
	TaskrtGlobalTasksPerSec float64 `json:"taskrt_global_tasks_per_sec"`

	Provenance Provenance `json:"provenance"`
}

func (r *KernelsResult) String() string {
	return fmt.Sprintf(`Kernel benchmark baseline (scale %d, %d workers, %d-double pages, %d iters)
  SpMV pre-PR          %8.2f GFLOP/s
  SpMV                 %8.2f GFLOP/s
  SpMV+dots fused      %8.2f GFLOP/s
  short-row SpMV (%s) %8.2f GFLOP/s vs csr32 %8.2f GFLOP/s  (%.2fx)
  CG steady-state iteration:
    pre-PR hot path (frozen)    %10.0f ns/iter
    fused + prepared + steal    %10.0f ns/iter   (%.2fx, %.2f allocs/iter)
  CG solver iteration (FEIR)    %10.0f ns/iter   (%.2f allocs/iter)
  taskrt throughput: steal %.2fM tasks/s, single-queue %.2fM tasks/s`,
		r.Scale, r.Workers, r.PageDoubles, r.Iters,
		r.SpMVPrePRGFlops, r.SpMVGFlops, r.SpMVFusedGFlops,
		r.SELLShadow, r.SpMVSELLGFlops, r.SpMVShortRowCSRGFlops, r.SELLSpeedup,
		r.IterPrePRNs, r.IterFusedNs, r.IterSpeedup, r.IterFusedAllocs,
		r.CGIterNs, r.CGIterAllocs,
		r.TaskrtStealTasksPerSec/1e6, r.TaskrtGlobalTasksPerSec/1e6)
}

// Kernels measures the hot-path baseline. Scale 0 means 65536 (the
// tracked configuration), Workers 0 means 4, iters <= 0 means 200
// measured steady-state iterations.
func Kernels(opts Options, iters int) (*KernelsResult, error) {
	scale := opts.Scale
	if scale <= 0 {
		scale = 1 << 16
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = 4
	}
	if iters <= 0 {
		iters = 200
	}
	side := 1
	for side*side < scale {
		side++
	}
	a := matgen.Poisson2D(side, side)
	b := matgen.Ones(a.N)
	pd := opts.pageDoubles()

	res := &KernelsResult{
		Scale:       a.N,
		Workers:     workers,
		PageDoubles: pd,
		NNZ:         a.NNZ(),
		Iters:       iters,
		Provenance:  CollectProvenance(),
	}

	// --- Sequential kernel GFLOP/s (interleaved medians) -----------
	x := matgen.RandomVector(a.N, 3)
	y := make([]float64, a.N)
	flops := 2 * float64(a.NNZ())
	var preT, newT, fusedT []float64
	for rep := 0; rep < 7; rep++ {
		preT = append(preT, bestNsOf(3, func() {
			prePRMulVecRange(a, x, y, 0, a.N)
		}))
		newT = append(newT, bestNsOf(3, func() {
			a.MulVecRange(x, y, 0, a.N)
		}))
		fusedT = append(fusedT, bestNsOf(3, func() {
			sinkXY, sinkYY := a.MulVecDotRange(x, y, 0, a.N)
			kernelSink = sinkXY + sinkYY
		}))
	}
	res.SpMVPrePRGFlops = flops / median(preT)
	res.SpMVGFlops = flops / median(newT)
	res.SpMVFusedGFlops = (flops + 4*float64(a.N)) / median(fusedT)

	// --- SELL-C-σ vs narrow CSR on a short-row matrix --------------
	// The stencil above keeps its DIA shadow, so the SELL column runs on
	// the unstructured class the shadow heuristics actually target; the
	// csr32 side is the same matrix with the SELL shadow dropped.
	sell := shortRowCSR(scale, 5)
	csr32 := sell.Clone()
	csr32.DisableShadow("sell")
	res.SELLShadow = sell.ShadowName()
	xs := matgen.RandomVector(sell.N, 4)
	ys := make([]float64, sell.N)
	sFlops := 2 * float64(sell.NNZ())
	var sellT, shortCsrT, sellRatio []float64
	for rep := 0; rep < 7; rep++ {
		s := bestNsOf(3, func() { sell.MulVecRange(xs, ys, 0, sell.N) })
		c := bestNsOf(3, func() { csr32.MulVecRange(xs, ys, 0, sell.N) })
		sellT = append(sellT, s)
		shortCsrT = append(shortCsrT, c)
		sellRatio = append(sellRatio, c/s)
	}
	res.SpMVSELLGFlops = sFlops / median(sellT)
	res.SpMVShortRowCSRGFlops = sFlops / median(shortCsrT)
	res.SELLSpeedup = median(sellRatio)

	// --- Steady-state iteration: frozen pre-PR vs fused ------------
	pre := newPrePRHarness(a, b, pd, workers)
	rtF := taskrt.New(workers)
	fused := newCGIterHarness(a, b, pd, rtF)
	for i := 0; i < 10; i++ { // warm both (rings, wait conds, caches)
		pre.iterate()
		fused.iterate()
	}
	// Small adjacent batches, alternating order, ratio taken per round:
	// the two sides of each ratio share whatever slow-neighbour drift the
	// host has at that moment, so the median ratio is far more stable
	// than the ratio of medians on virtualised runners.
	const batch = 5
	rounds := iters / batch
	if rounds < 4 {
		rounds = 4
	}
	batchNs := func(h interface{ iterate() }) float64 {
		t0 := time.Now()
		for i := 0; i < batch; i++ {
			h.iterate()
		}
		return float64(time.Since(t0).Nanoseconds()) / batch
	}
	var preNs, fusedNs, ratios []float64
	for r := 0; r < rounds; r++ {
		var p, f float64
		if r%2 == 0 {
			p = batchNs(pre)
			f = batchNs(fused)
		} else {
			f = batchNs(fused)
			p = batchNs(pre)
		}
		preNs = append(preNs, p)
		fusedNs = append(fusedNs, f)
		ratios = append(ratios, p/f)
	}
	res.IterPrePRNs = median(preNs)
	res.IterFusedNs = median(fusedNs)
	res.IterSpeedup = median(ratios)
	res.IterFusedAllocs = fused.measureAllocs(iters)
	pre.rt.close()
	rtF.Close()

	// --- Real solver steady state (FEIR, no faults) ----------------
	ns, allocs, err := cgSolverSteadyState(a, b, workers, pd, iters)
	if err != nil {
		return nil, err
	}
	res.CGIterNs, res.CGIterAllocs = ns, allocs

	// --- taskrt scheduling throughput ------------------------------
	res.TaskrtStealTasksPerSec = taskThroughput(taskrt.New(workers))
	res.TaskrtGlobalTasksPerSec = taskThroughput(taskrt.NewSingleQueue(workers))
	return res, nil
}

var kernelSink float64

// shortRowCSR builds the unstructured short-row matrix class the
// SELL-C-σ shadow targets: a dominant diagonal plus a handful of random
// off-diagonal entries per row — short rows with no diagonal structure,
// so DIA rejects it and SELL is the selected shadow.
func shortRowCSR(n int, seed int64) *sparse.CSR {
	rng := rand.New(rand.NewSource(seed))
	tr := make([]sparse.Triplet, 0, 8*n)
	for i := 0; i < n; i++ {
		tr = append(tr, sparse.Triplet{Row: i, Col: i, Val: 4 + rng.Float64()})
		extra := 2 + rng.Intn(10)
		for k := 0; k < extra; k++ {
			tr = append(tr, sparse.Triplet{Row: i, Col: rng.Intn(n), Val: rng.NormFloat64()})
		}
	}
	return sparse.NewCSRFromTriplets(n, n, tr)
}

// bestNsOf runs fn reps times and returns the fastest wall time in ns.
func bestNsOf(reps int, fn func()) float64 {
	best := time.Duration(1<<63 - 1)
	for i := 0; i < reps; i++ {
		t0 := time.Now()
		fn()
		if d := time.Since(t0); d < best {
			best = d
		}
	}
	return float64(best.Nanoseconds())
}

// cgIterHarness drives the CG steady-state iteration structure at the
// engine level — phase 1 (d update, fused q = A d with <d,q>) and phase
// 2 (x update, fused g -= αq with ε = <g,g>) as prepared replayed task
// graphs — with the real recurrence scalars so the data evolves like a
// genuine solve. Its frozen pre-PR counterpart is prePRHarness.
type cgIterHarness struct {
	a      *sparse.CSR
	layout sparse.BlockLayout
	eng    *engine.Engine
	rt     *taskrt.Runtime
	space  *pagemem.Space

	x, g, q        engine.Vec
	d              [2]engine.Vec
	dqPart, ggPart *engine.Partial

	ver         int64
	cur, prev   int
	alpha, beta float64
	epsGG       float64

	pd, pq, px, pg *engine.Prepared
}

func newCGIterHarness(a *sparse.CSR, b []float64, pageDoubles int, rt *taskrt.Runtime) *cgIterHarness {
	layout := sparse.BlockLayout{N: a.N, BlockSize: pageDoubles}
	h := &cgIterHarness{
		a:      a,
		layout: layout,
		rt:     rt,
		eng:    engine.New(a, layout, rt, true, 0),
		space:  pagemem.NewSpace(a.N, pageDoubles),
	}
	np := layout.NumBlocks()
	mk := func(name string) engine.Vec {
		return engine.Vec{V: h.space.AddVector(name), S: engine.NewStamps(np)}
	}
	h.x, h.g, h.q = mk("x"), mk("g"), mk("q")
	h.d[0], h.d[1] = mk("d0"), mk("d1")
	copy(h.g.V.Data, b)
	h.epsGG = sparse.Dot(b, b)
	h.dqPart = engine.NewPartial(np)
	h.ggPart = engine.NewPartial(np)
	{
		e := h.eng
		//due:hotpath
		h.pd = e.Prepare("d", 0, func(_, pLo, pHi int) {
			ver, beta := h.ver, h.beta
			dCur, dPrev := h.d[h.cur], h.d[h.prev]
			for p := pLo; p < pHi; p++ {
				if !h.g.Current(p, ver-1) || (beta != 0 && !dPrev.Current(p, ver-1)) {
					continue
				}
				lo, hi := h.layout.Range(p)
				if beta == 0 {
					copy(dCur.V.Data[lo:hi], h.g.V.Data[lo:hi])
				} else {
					sparse.XpbyOutRange(h.g.V.Data, beta, dPrev.V.Data, dCur.V.Data, lo, hi)
				}
				dCur.V.MarkRecovered(p)
				dCur.S[p].Store(ver)
			}
		})
		//due:hotpath
		h.pq = e.Prepare("q,<d,q>", 0, func(_, pLo, pHi int) {
			ver := h.ver
			in := engine.In(h.d[h.cur], ver)
			out := engine.Operand{Vec: h.q, Ver: ver}
			for p := pLo; p < pHi; p++ {
				lo, hi := h.layout.Range(p)
				e.SpMVDotPage(p, lo, hi, in, out, h.dqPart, nil)
			}
		})
		//due:hotpath
		h.px = e.Prepare("x", 0, func(_, pLo, pHi int) {
			ver, alpha := h.ver, h.alpha
			dCur := h.d[h.cur]
			for p := pLo; p < pHi; p++ {
				if !h.x.Current(p, ver-1) || !dCur.Current(p, ver) {
					continue
				}
				lo, hi := h.layout.Range(p)
				sparse.AxpyRange(alpha, dCur.V.Data, h.x.V.Data, lo, hi)
				h.x.S[p].Store(ver)
			}
		})
		//due:hotpath
		h.pg = e.Prepare("g,eps", 0, func(_, pLo, pHi int) {
			ver, alpha := h.ver, h.alpha
			qIn := engine.In(h.q, ver)
			gOut := engine.Operand{Vec: h.g, Ver: ver}
			for p := pLo; p < pHi; p++ {
				lo, hi := h.layout.Range(p)
				e.AxpyDotPage(p, lo, hi, -alpha, qIn, gOut, h.ggPart)
			}
		})
	}
	return h
}

// iterate runs one steady-state CG iteration.
func (h *cgIterHarness) iterate() {
	t := int(h.ver)
	h.cur, h.prev = t%2, (t+1)%2
	beta := h.beta
	if h.ver == 0 {
		beta = 0
	}
	h.beta = beta
	h.dqPart.ResetMissing()

	dH := h.pd.Submit(nil)
	h.pq.Submit(dH)
	h.pd.Wait()
	h.pq.Wait()

	dq, _ := h.dqPart.SumAvailable()
	if dq != 0 {
		h.alpha = h.epsGG / dq
	} else {
		h.alpha = 0
	}
	h.ggPart.ResetMissing()

	h.px.Submit(nil)
	h.pg.Submit(nil)
	h.px.Wait()
	h.pg.Wait()

	gg, _ := h.ggPart.SumAvailable()
	if h.epsGG != 0 {
		h.beta = gg / h.epsGG
	} else {
		h.beta = 0
	}
	h.epsGG = gg
	h.ver++
}

// measureAllocs returns mallocs per iteration over n iterations.
func (h *cgIterHarness) measureAllocs(n int) float64 {
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	for i := 0; i < n; i++ {
		h.iterate()
	}
	runtime.ReadMemStats(&m1)
	return float64(m1.Mallocs-m0.Mallocs) / float64(n)
}

// cgSolverSteadyState times the real core.CG (FEIR) per-iteration cost
// and allocation rate between two OnIteration checkpoints.
func cgSolverSteadyState(a *sparse.CSR, b []float64, workers, pageDoubles, iters int) (ns, allocs float64, err error) {
	const warm = 20
	last := warm + iters
	var m0, m1 runtime.MemStats
	var t0, t1 time.Time
	cfg := core.Config{
		Method:      core.MethodFEIR,
		Workers:     workers,
		PageDoubles: pageDoubles,
		Tol:         1e-300, // never converges inside the window
		MaxIter:     last + 1,
	}
	cfg.OnIteration = func(it int, rel float64) {
		switch it {
		case warm:
			runtime.ReadMemStats(&m0)
			t0 = time.Now()
		case last:
			runtime.ReadMemStats(&m1)
			t1 = time.Now()
		}
	}
	cg, err := core.NewCG(a, b, cfg)
	if err != nil {
		return 0, 0, err
	}
	if _, err := cg.Run(); err != nil {
		return 0, 0, err
	}
	n := float64(last - warm)
	return float64(t1.Sub(t0).Nanoseconds()) / n, float64(m1.Mallocs-m0.Mallocs) / n, nil
}

// taskThroughput measures raw scheduling throughput: waves of trivial
// tasks submitted and drained. Closes the runtime before returning.
func taskThroughput(rt *taskrt.Runtime) float64 {
	defer rt.Close()
	const wave, waves = 512, 40
	spec := taskrt.TaskSpec{Run: func(int) {}}
	// Warm up.
	for i := 0; i < wave; i++ {
		rt.Submit(spec)
	}
	rt.Quiesce()
	t0 := time.Now()
	for w := 0; w < waves; w++ {
		for i := 0; i < wave; i++ {
			rt.Submit(spec)
		}
		rt.Quiesce()
	}
	return float64(wave*waves) / time.Since(t0).Seconds()
}
