package experiments

import (
	"repro/internal/core"
	"repro/internal/matgen"
	"repro/internal/registry"
	"repro/internal/shard"
)

// ValidateDistributed runs the functional rank-sharded CG on a small
// 27-point stencil with the given method and error count, confirming the
// §3.4 protocol converges. It is the correctness anchor behind the
// modelled Figure 5 curves.
func ValidateDistributed(method core.Method, ranks, errors int, opts Options) (core.Result, error) {
	return ValidateDistributedSolver("cg", method, ranks, errors, false, opts)
}

// ValidateDistributedSolver is ValidateDistributed for any registered
// solver (cg, bicgstab, gmres) on the shared rank-sharded substrate,
// optionally block-Jacobi preconditioned: errors DUEs are injected into
// owned iterate pages of rotating ranks.
func ValidateDistributedSolver(solver string, method core.Method, ranks, errors int, precond bool, opts Options) (core.Result, error) {
	nx := 16
	a := matgen.Poisson3D27(nx, nx, nx)
	b := matgen.Ones(a.N)
	cfg := registry.Config{
		Config: core.Config{
			Method:      method,
			PageDoubles: 128, // small pages so a 16³ grid spans many pages
			Tol:         opts.tol(),
			MaxIter:     20000,
			UsePrecond:  precond,
		},
		Ranks: ranks,
	}
	if errors > 0 {
		injected := 0
		cfg.RankInject = func(it int, rs []*shard.Rank) {
			if injected < errors && it > 0 && it%5 == 0 {
				r := rs[(it/5)%len(rs)]
				r.Space.VectorByName("x").Poison((r.PLo + r.PHi) / 2)
				injected++
			}
		}
	}
	inst, err := registry.New(solver, a, b, cfg)
	if err != nil {
		return core.Result{}, err
	}
	return inst.Run()
}
