package experiments

import (
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/sparse"
)

// distConfig builds the distributed-layer configuration for validation
// runs.
func distConfig(method core.Method, opts Options) dist.Config {
	return dist.Config{
		Method:      method,
		PageDoubles: 128, // small pages so a 16³ grid spans many pages
		Tol:         opts.tol(),
		MaxIter:     20000,
	}
}

// distSolve adapts dist.SolveCG for the experiments layer.
func distSolve(a *sparse.CSR, b []float64, ranks int, cfg dist.Config) (core.Result, []float64, error) {
	return dist.SolveCG(a, b, ranks, cfg)
}
