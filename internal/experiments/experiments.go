// Package experiments regenerates every table and figure of the paper's
// evaluation (§5): Table 2 (no-error overheads), Table 3 (state-time
// breakdown), Figure 3 (convergence trace under a single error), Figure 4
// (slowdown vs error-injection rate across matrices and methods) and
// Figure 5 (scaling speedups, via internal/perfmodel plus functional
// distributed runs).
//
// Absolute numbers depend on the host; the paper ran on 8-core Xeon
// E5-2670 sockets, while CI-class hosts may expose a single core, which
// compresses the FEIR/AFEIR overlap contrast (overlap needs idle cores).
// The regenerated artefact is the SHAPE: method orderings, growth with
// error rate, and crossovers. EXPERIMENTS.md records paper-vs-measured.
package experiments

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/defaults"
	"repro/internal/inject"
	"repro/internal/matgen"
	"repro/internal/registry"
	"repro/internal/sparse"
)

// Options configures the experiment harness.
type Options struct {
	// Scale is the approximate matrix dimension for the workload
	// analogues. 0 means 4096 (quick); the paper's originals are 66k-1.2M
	// rows (see matgen.PaperSizes).
	Scale int
	// Workers is the task-pool size; 0 means 8, the paper's socket size.
	Workers int
	// PageDoubles is the fault granularity; 0 means 512 (4 KiB pages).
	// Quick runs use smaller pages so small matrices still span many
	// pages.
	PageDoubles int
	// Reps is the number of repetitions per configuration; 0 means 3
	// (the paper uses 50).
	Reps int
	// Tol is the convergence threshold; 0 means 1e-8 for the sweep
	// experiments (the paper uses 1e-10; smaller keeps quick runs quick).
	Tol float64
	// Matrices restricts the workload set; nil means all nine analogues.
	Matrices []string
	// Rates is the normalized error-frequency axis of Figure 4; nil
	// means {1, 2, 5, 10, 20, 50}.
	Rates []int
	// Seed drives the injection randomness.
	Seed int64
}

func (o Options) scale() int { return defaults.Int(o.Scale, 4096) }

func (o Options) workers() int { return defaults.Int(o.Workers, 8) }

func (o Options) pageDoubles() int { return defaults.PageDoublesOr(o.PageDoubles) }

func (o Options) reps() int { return defaults.Int(o.Reps, 3) }

// tol defaults to 1e-8, looser than defaults.Tol: the sweep experiments
// repeat many runs and the paper's 1e-10 makes quick runs slow.
func (o Options) tol() float64 { return defaults.Float(o.Tol, 1e-8) }

func (o Options) matrices() []string {
	if len(o.Matrices) > 0 {
		return o.Matrices
	}
	return matgen.PaperMatrixNames
}

func (o Options) rates() []int {
	if len(o.Rates) > 0 {
		return o.Rates
	}
	return []int{1, 2, 5, 10, 20, 50}
}

// harmonicMean returns the harmonic mean of xs (the paper's Table 2 and
// Figure 4 aggregate). Non-positive entries fall back to the arithmetic
// mean to stay defined for ~0 overheads.
func harmonicMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	anyNonPos := false
	for _, x := range xs {
		if x <= 0 {
			anyNonPos = true
			break
		}
	}
	if anyNonPos {
		var s float64
		for _, x := range xs {
			s += x
		}
		return s / float64(len(xs))
	}
	var s float64
	for _, x := range xs {
		s += 1 / x
	}
	return float64(len(xs)) / s
}

func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return s[len(s)/2]
}

// buildMatrix constructs one analogue at the configured scale.
func buildMatrix(name string, opts Options) (*sparse.CSR, []float64, error) {
	a, err := matgen.PaperMatrix(name, opts.scale())
	if err != nil {
		return nil, nil, err
	}
	return a, matgen.Ones(a.N), nil
}

// runOnce executes one solver run, returning elapsed time and the result.
func runOnce(a *sparse.CSR, b []float64, cfg core.Config) (core.Result, error) {
	cg, err := core.NewCG(a, b, cfg)
	if err != nil {
		return core.Result{}, err
	}
	return cg.Run()
}

// baseConfig assembles the shared solver configuration.
func baseConfig(opts Options, method core.Method, precond bool) core.Config {
	return core.Config{
		Method:      method,
		Workers:     opts.workers(),
		PageDoubles: opts.pageDoubles(),
		Tol:         opts.tol(),
		UsePrecond:  precond,
	}
}

// ---------------------------------------------------------------------
// Table 2: overheads in absence of faults.
// ---------------------------------------------------------------------

// Table2Row is one method's no-error overhead.
type Table2Row struct {
	Method   string
	Overhead float64 // fraction vs ideal, harmonic mean over matrices
}

// Table2Result reproduces Table 2.
type Table2Result struct {
	Rows []Table2Row
}

// Table2 measures the no-error overhead of every resilience method against
// the ideal CG, per matrix, and aggregates with the harmonic mean.
func Table2(opts Options) (*Table2Result, error) {
	type variant struct {
		name   string
		method core.Method
		ckpt   int
	}
	variants := []variant{
		{"Lossy", core.MethodLossy, 0},
		{"Trivial", core.MethodTrivial, 0},
		{"AFEIR", core.MethodAFEIR, 0},
		{"FEIR", core.MethodFEIR, 0},
		{"ckpt 1K", core.MethodCheckpoint, 1000},
		{"ckpt 200", core.MethodCheckpoint, 200},
	}
	overheads := make(map[string][]float64)
	for _, mat := range opts.matrices() {
		a, b, err := buildMatrix(mat, opts)
		if err != nil {
			return nil, err
		}
		ideal := measureBest(a, b, baseConfig(opts, core.MethodIdeal, false), opts.reps())
		for _, v := range variants {
			cfg := baseConfig(opts, v.method, false)
			cfg.CheckpointInterval = v.ckpt
			t := measureBest(a, b, cfg, opts.reps())
			overheads[v.name] = append(overheads[v.name], t.Seconds()/ideal.Seconds()-1)
		}
	}
	res := &Table2Result{}
	for _, v := range variants {
		res.Rows = append(res.Rows, Table2Row{Method: v.name, Overhead: harmonicMean(overheads[v.name])})
	}
	return res, nil
}

// measureBest runs the configuration reps times and returns the fastest
// time (minimum is the standard noise-robust estimator for overheads).
func measureBest(a *sparse.CSR, b []float64, cfg core.Config, reps int) time.Duration {
	best := time.Duration(math.MaxInt64)
	for r := 0; r < reps; r++ {
		res, err := runOnce(a, b, cfg)
		if err == nil && res.Elapsed < best {
			best = res.Elapsed
		}
	}
	return best
}

// String renders the table in the paper's row format.
func (t *Table2Result) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Table 2: resilience methods' overheads, no errors\n")
	fmt.Fprintf(&sb, "%-10s", "method")
	for _, r := range t.Rows {
		fmt.Fprintf(&sb, "%10s", r.Method)
	}
	sb.WriteString("\n")
	fmt.Fprintf(&sb, "%-10s", "overhead")
	for _, r := range t.Rows {
		fmt.Fprintf(&sb, "%9.2f%%", r.Overhead*100)
	}
	sb.WriteString("\n")
	return sb.String()
}

// ---------------------------------------------------------------------
// Table 3: increase of time spent per state for the FEIR methods.
// ---------------------------------------------------------------------

// Table3Row is one method's state-time increase versus ideal.
type Table3Row struct {
	Method    string
	Imbalance float64 // idle-share increase
	Runtime   float64 // scheduler-share increase
	Useful    float64 // useful-share increase
}

// Table3Result reproduces Table 3.
type Table3Result struct {
	Rows []Table3Row
}

// Table3 measures how FEIR and AFEIR shift worker time across states
// (useful / runtime / idle) relative to the ideal CG, averaged over the
// workload set. Values are the increase of each state's total time.
func Table3(opts Options) (*Table3Result, error) {
	type acc struct{ useful, runtime, idle []float64 }
	sums := map[string]*acc{"AFEIR": {}, "FEIR": {}}
	for _, mat := range opts.matrices() {
		a, b, err := buildMatrix(mat, opts)
		if err != nil {
			return nil, err
		}
		idealT, err := stateTimes(a, b, baseConfig(opts, core.MethodIdeal, false))
		if err != nil {
			return nil, err
		}
		for _, m := range []core.Method{core.MethodAFEIR, core.MethodFEIR} {
			tm, err := stateTimes(a, b, baseConfig(opts, m, false))
			if err != nil {
				return nil, err
			}
			a := sums[m.String()]
			a.useful = append(a.useful, ratioInc(tm.useful, idealT.useful))
			a.runtime = append(a.runtime, ratioInc(tm.runtime, idealT.runtime))
			a.idle = append(a.idle, ratioInc(tm.idle, idealT.idle))
		}
	}
	res := &Table3Result{}
	for _, name := range []string{"AFEIR", "FEIR"} {
		a := sums[name]
		res.Rows = append(res.Rows, Table3Row{
			Method:    name,
			Imbalance: median(a.idle),
			Runtime:   median(a.runtime),
			Useful:    median(a.useful),
		})
	}
	return res, nil
}

type stateTotals struct{ useful, runtime, idle float64 }

func stateTimes(a *sparse.CSR, b []float64, cfg core.Config) (stateTotals, error) {
	res, err := runOnce(a, b, cfg)
	if err != nil {
		return stateTotals{}, err
	}
	var t stateTotals
	for _, w := range res.WorkerTimes {
		t.useful += w.Useful.Seconds()
		t.runtime += w.Runtime.Seconds()
		t.idle += w.Idle.Seconds()
	}
	return t, nil
}

func ratioInc(v, base float64) float64 {
	if base <= 0 {
		return 0
	}
	return v/base - 1
}

// String renders the table in the paper's format.
func (t *Table3Result) String() string {
	var sb strings.Builder
	sb.WriteString("Table 3: increase of time spent per state for FEIR methods\n")
	fmt.Fprintf(&sb, "%-8s%12s%12s%12s\n", "", "imbalance", "runtime", "useful")
	for _, r := range t.Rows {
		fmt.Fprintf(&sb, "%-8s%11.2f%%%11.2f%%%11.2f%%\n", r.Method, r.Imbalance*100, r.Runtime*100, r.Useful*100)
	}
	return sb.String()
}

// ---------------------------------------------------------------------
// Figure 3: convergence under a single injected error.
// ---------------------------------------------------------------------

// TracePoint is one sample of a convergence trace.
type TracePoint struct {
	Time   time.Duration
	LogRes float64 // log10 of the relative recurrence residual
}

// Fig3Series is one method's convergence trace.
type Fig3Series struct {
	Method string
	Points []TracePoint
}

// Fig3Result reproduces Figure 3: thermal2-analogue, one error injected
// into an iterate page midway through the ideal convergence time.
type Fig3Result struct {
	Matrix     string
	InjectAt   time.Duration
	IdealTotal time.Duration
	Series     []Fig3Series
}

// Fig3 runs the single-error convergence study.
func Fig3(opts Options) (*Fig3Result, error) {
	const mat = "thermal2"
	a, b, err := buildMatrix(mat, opts)
	if err != nil {
		return nil, err
	}
	// Baseline: ideal run for total time and the trace.
	idealCfg := baseConfig(opts, core.MethodIdeal, false)
	out := &Fig3Result{Matrix: mat}
	idealTrace, idealRes, err := traceRun(a, b, idealCfg, nil, 0)
	if err != nil {
		return nil, err
	}
	out.IdealTotal = idealRes.Elapsed
	out.InjectAt = idealRes.Elapsed / 2
	out.Series = append(out.Series, Fig3Series{Method: "Ideal", Points: idealTrace})

	methods := []core.Method{core.MethodAFEIR, core.MethodFEIR, core.MethodLossy, core.MethodCheckpoint}
	for _, m := range methods {
		cfg := baseConfig(opts, m, false)
		if m == core.MethodCheckpoint {
			cfg.CheckpointInterval = 1000
			cfg.Disk = core.NewSimDisk(0)
		}
		trace, _, err := traceRun(a, b, cfg, func(cg *core.CG) *inject.Plan {
			x := cg.Space().VectorByName("x")
			page := cg.Space().NumPages() / 2
			return &inject.Plan{Errors: []inject.PlannedError{{Vector: x, Page: page, At: out.InjectAt}}}
		}, 0)
		if err != nil {
			return nil, err
		}
		out.Series = append(out.Series, Fig3Series{Method: m.String(), Points: trace})
	}
	return out, nil
}

// traceRun executes one run recording (time, log10 residual) points.
func traceRun(a *sparse.CSR, b []float64, cfg core.Config, plan func(*core.CG) *inject.Plan, _ int) ([]TracePoint, core.Result, error) {
	var points []TracePoint
	start := time.Now()
	cfg.OnIteration = func(it int, rel float64) {
		lr := math.Inf(-1)
		if rel > 0 {
			lr = math.Log10(rel)
		}
		points = append(points, TracePoint{Time: time.Since(start), LogRes: lr})
	}
	cg, err := core.NewCG(a, b, cfg)
	if err != nil {
		return nil, core.Result{}, err
	}
	var p *inject.Plan
	if plan != nil {
		p = plan(cg)
		p.Start()
		defer p.Stop()
	}
	start = time.Now()
	res, err := cg.Run()
	if err != nil {
		return nil, core.Result{}, err
	}
	return points, res, nil
}

// String renders a compact textual form of the traces.
func (f *Fig3Result) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Figure 3: CG convergence, matrix %s, single error in x at %v (ideal total %v)\n",
		f.Matrix, f.InjectAt.Round(time.Millisecond), f.IdealTotal.Round(time.Millisecond))
	for _, s := range f.Series {
		last := TracePoint{}
		if len(s.Points) > 0 {
			last = s.Points[len(s.Points)-1]
		}
		fmt.Fprintf(&sb, "  %-8s %5d iterations, final log10(res) %6.2f at %v\n",
			s.Method, len(s.Points), last.LogRes, last.Time.Round(time.Millisecond))
	}
	return sb.String()
}

// ---------------------------------------------------------------------
// Figure 4: slowdown vs error-injection rate.
// ---------------------------------------------------------------------

// Fig4Cell is one (solver, matrix, rate, method) aggregate.
type Fig4Cell struct {
	Solver   string // cg, bicgstab or gmres
	Matrix   string
	Rate     int // expected errors per ideal convergence time
	Method   string
	Slowdown float64 // fractional slowdown vs ideal (0.05 = 5 %)
	StdDev   float64
	Failures int // runs that did not converge within the iteration budget
}

// Fig4Result reproduces Figure 4.
type Fig4Result struct {
	Precond bool
	Cells   []Fig4Cell
	// MethodMeans aggregates each (method, rate) over matrices with the
	// harmonic mean — the paper's "CG mean"/"PCG mean" panels. With the
	// preconditioned sweep the key is "solver:method" for the non-CG
	// solvers.
	MethodMeans map[string]map[int]float64
}

// fig4Methods lists the resilience methods swept for one solver: CG has
// every comparator, BiCGStab/GMRES drop Checkpoint (no snapshot protocol
// for the non-symmetric recurrences).
func fig4Methods(solver string) []core.Method {
	if solver == "cg" {
		return []core.Method{core.MethodAFEIR, core.MethodFEIR, core.MethodLossy, core.MethodCheckpoint, core.MethodTrivial}
	}
	return []core.Method{core.MethodAFEIR, core.MethodFEIR, core.MethodLossy, core.MethodTrivial}
}

// fig4MeanKey names a (solver, method) series in MethodMeans.
func fig4MeanKey(solver string, m core.Method) string {
	if solver == "cg" {
		return m.String()
	}
	return solver + ":" + m.String()
}

// Fig4 sweeps matrices × rates × methods with wall-clock exponential error
// injection (MTBE = idealTime/rate), repeating each cell and aggregating
// like the paper. The unpreconditioned panel is the paper's CG sweep; the
// preconditioned one covers the preconditioned variants of all three
// registered methods (PCG, PBiCGStab, PGMRES) through the same registry
// dispatch the command-line tools use.
func Fig4(opts Options, precond bool) (*Fig4Result, error) {
	solvers := []string{"cg"}
	if precond {
		solvers = []string{"cg", "bicgstab", "gmres"}
	}
	out := &Fig4Result{Precond: precond, MethodMeans: map[string]map[int]float64{}}
	slowdowns := map[string]map[int][]float64{}
	for _, solver := range solvers {
		for _, m := range fig4Methods(solver) {
			key := fig4MeanKey(solver, m)
			slowdowns[key] = map[int][]float64{}
			out.MethodMeans[key] = map[int]float64{}
		}
	}
	seed := opts.Seed
	run := func(solver string, a *sparse.CSR, b []float64, cfg core.Config, injectSeed int64, mtbe time.Duration) (core.Result, error) {
		inst, err := registry.New(solver, a, b, registry.Config{Config: cfg})
		if err != nil {
			return core.Result{}, err
		}
		var in *inject.Injector
		if mtbe > 0 {
			in = inject.NewInjector(inst.Spaces[0], inst.Dynamic, mtbe, injectSeed)
			in.Start()
			defer in.Stop()
		}
		return inst.Run()
	}
	for _, mat := range opts.matrices() {
		a, b, err := buildMatrix(mat, opts)
		if err != nil {
			return nil, err
		}
		for _, solver := range solvers {
			idealCfg := baseConfig(opts, core.MethodIdeal, precond)
			idealRes, err := run(solver, a, b, idealCfg, 0, 0)
			if err != nil {
				return nil, err
			}
			tau := idealRes.Elapsed.Seconds()
			for r := 1; r < opts.reps(); r++ {
				if res, err := run(solver, a, b, idealCfg, 0, 0); err == nil && res.Elapsed.Seconds() < tau {
					tau = res.Elapsed.Seconds()
				}
			}
			// Divergent runs (Trivial at high rates) are cut off at a
			// budget proportional to the fault-free iteration count and
			// counted as failures, like the paper's >700% cells.
			iterBudget := 50 * idealRes.Iterations
			if iterBudget < 2000 {
				iterBudget = 2000
			}
			for _, rate := range opts.rates() {
				mtbe := time.Duration(tau / float64(rate) * float64(time.Second))
				for _, m := range fig4Methods(solver) {
					var times []float64
					fails := 0
					for rep := 0; rep < opts.reps(); rep++ {
						seed++
						cfg := baseConfig(opts, m, precond)
						cfg.MaxIter = iterBudget
						if m == core.MethodCheckpoint {
							cfg.ExpectedMTBE = mtbe
							cfg.Disk = core.NewSimDisk(0)
						}
						res, err := run(solver, a, b, cfg, seed, mtbe)
						if err != nil || !res.Converged {
							fails++
							continue
						}
						times = append(times, res.Elapsed.Seconds())
					}
					key := fig4MeanKey(solver, m)
					cell := Fig4Cell{Solver: solver, Matrix: mat, Rate: rate, Method: m.String(), Failures: fails}
					if len(times) > 0 {
						hm := harmonicMean(times)
						cell.Slowdown = hm/tau - 1
						var v float64
						for _, t := range times {
							d := t/tau - 1 - cell.Slowdown
							v += d * d
						}
						cell.StdDev = math.Sqrt(v / float64(len(times)))
						slowdowns[key][rate] = append(slowdowns[key][rate], cell.Slowdown)
					}
					out.Cells = append(out.Cells, cell)
				}
			}
		}
	}
	for m, byRate := range slowdowns {
		for rate, xs := range byRate {
			out.MethodMeans[m][rate] = harmonicMean(xs)
		}
	}
	return out, nil
}

// String renders the mean panel in the paper's axis order.
func (f *Fig4Result) String() string {
	var sb strings.Builder
	name := "CG"
	if f.Precond {
		name = "PCG"
	}
	fmt.Fprintf(&sb, "Figure 4 (%s mean): performance slowdown vs normalized error frequency\n", name)
	var rates []int
	for _, c := range f.Cells {
		found := false
		for _, r := range rates {
			if r == c.Rate {
				found = true
				break
			}
		}
		if !found {
			rates = append(rates, c.Rate)
		}
	}
	sort.Ints(rates)
	fmt.Fprintf(&sb, "%-10s", "method")
	for _, r := range rates {
		fmt.Fprintf(&sb, "%9dx", r)
	}
	sb.WriteString("\n")
	var methods []string
	for m := range f.MethodMeans {
		methods = append(methods, m)
	}
	sort.Strings(methods)
	for _, m := range methods {
		fmt.Fprintf(&sb, "%-10s", m)
		for _, r := range rates {
			fmt.Fprintf(&sb, "%9.1f%%", f.MethodMeans[m][r]*100)
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// ---------------------------------------------------------------------
// Figure 5: scaling (model + functional validation).
// ---------------------------------------------------------------------

// The distributed validation entry points (ValidateDistributed and
// ValidateDistributedSolver) live in dist_glue.go; the Figure 5 curves
// come from perfmodel.Fig5 directly.
