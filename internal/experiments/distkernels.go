package experiments

import (
	"fmt"
	"math"
	"runtime"
	"time"

	"repro/internal/matgen"
	"repro/internal/shard"
	"repro/internal/sparse"
)

// DistKernelsResult is the BENCH_dist.json payload: the tracked
// distributed hot-path baseline, started in the PR that made the
// distributed steady state communication-overlapping. Three disciplines
// drive the SAME substrate primitives the real dist solvers run:
//
//   - barrier:    the pre-overlap supersteps (d update, halo exchange at
//     a full barrier, fused SpMV+dot, fused x/g update), closures
//     submitted fresh each iteration;
//   - overlapped: the prepared shard.OverlapStep graph — d-update, per-
//     page halo import, interior rows under the in-flight import,
//     boundary rows gated on their ghosts — plus the prepared x/g
//     update, replayed with zero allocations;
//   - pipelined:  the pipelined CG recurrence (single fused reduction
//     per iteration, its sum overlapped with the next SpMV).
//
// Rounds are interleaved and the per-round ratios' medians reported, as
// in BENCH_kernels.json, so slow-neighbour drift cancels out of the
// speedups.
//
// The overlap/barrier contrast is a latency-hiding effect: it needs idle
// cores to run interior rows under the in-flight halo import, exactly as
// the FEIR/AFEIR contrast needs idle cores to overlap recovery (see the
// experiments package docs). On a single-core host every task serialises
// through the helping coordinator and the two disciplines collapse to
// the same schedule — the speedup then reflects only the overlapped
// path's cheaper superstep structure (fewer sync points, single-dot
// fused kernel, zero allocations). The provenance block records
// gomaxprocs/num_cpu so trajectory points are read against the core
// count they were measured with; the equivalence of the two paths is
// pinned by the bitwise and storm tests in internal/dist, not by this
// benchmark.
//
//due:bench-artefact
type DistKernelsResult struct {
	Scale       int `json:"scale"`
	Ranks       int `json:"ranks"`
	Workers     int `json:"workers"`
	PageDoubles int `json:"page_doubles"`
	NNZ         int `json:"nnz"`
	Iters       int `json:"iters"`

	BarrierIterNs  float64 `json:"dist_cg_iter_barrier_ns"`
	OverlapIterNs  float64 `json:"dist_cg_iter_overlap_ns"`
	PipeIterNs     float64 `json:"dist_cg_iter_pipelined_ns"`
	CAIterNs       float64 `json:"dist_cg_iter_ca_ns"` // per inner iteration (outer step / k)
	OverlapSpeedup float64 `json:"dist_cg_overlap_speedup"`
	PipeSpeedup    float64 `json:"dist_cg_pipelined_speedup"`
	CASpeedup      float64 `json:"dist_cg_ca_speedup"`

	BarrierAllocs float64 `json:"dist_cg_barrier_allocs"`
	OverlapAllocs float64 `json:"dist_cg_overlap_allocs"`
	PipeAllocs    float64 `json:"dist_cg_pipelined_allocs"`
	CAAllocs      float64 `json:"dist_cg_ca_allocs"`

	// Reduction-superstep accounting, measured from the substrates' own
	// counters over the timed iterations: classic CG spends 2 global
	// reductions per iteration, pipecg 1, cacg 1 per k iterations.
	// CAReductionRatio is barrier-CG reductions-per-iter over cacg's —
	// the communication-avoiding factor (≈ 2k).
	CABasisK            int     `json:"ca_basis_k"`
	BarrierRedPerIter   float64 `json:"dist_cg_reductions_per_iter"`
	PipelineRedPerIter  float64 `json:"dist_cg_pipelined_reductions_per_iter"`
	CAReductionsPerIter float64 `json:"ca_reductions_per_iter"`
	CAReductionRatio    float64 `json:"ca_reduction_ratio"`

	Provenance Provenance `json:"provenance"`
}

func (r *DistKernelsResult) String() string {
	return fmt.Sprintf(`Distributed kernel baseline (scale %d, %d ranks, %d workers, %d-double pages, %d iters)
  dist CG steady-state iteration:               time                      reductions/iter
    barrier supersteps          %10.0f ns/iter   (%.2f allocs/iter)       %.2f
    overlapped + prepared       %10.0f ns/iter   (%.2fx, %.2f allocs/iter)
    pipelined + prepared        %10.0f ns/iter   (%.2fx, %.2f allocs/iter) %.2f
    comm-avoiding s-step (k=%d) %10.0f ns/iter   (%.2fx, %.2f allocs/iter) %.3f  (ratio %.1fx)`,
		r.Scale, r.Ranks, r.Workers, r.PageDoubles, r.Iters,
		r.BarrierIterNs, r.BarrierAllocs, r.BarrierRedPerIter,
		r.OverlapIterNs, r.OverlapSpeedup, r.OverlapAllocs,
		r.PipeIterNs, r.PipeSpeedup, r.PipeAllocs, r.PipelineRedPerIter,
		r.CABasisK, r.CAIterNs, r.CASpeedup, r.CAAllocs, r.CAReductionsPerIter, r.CAReductionRatio)
}

// DistKernels measures the distributed hot-path baseline. Scale 0 means
// 65536 and Workers 0 means 4 (the tracked configuration: one worker per
// rank); ranks <= 0 means 4, iters <= 0 means 200 measured steady-state
// iterations per discipline.
func DistKernels(opts Options, ranks, iters int) (*DistKernelsResult, error) {
	scale := opts.Scale
	if scale <= 0 {
		scale = 1 << 16
	}
	if ranks <= 0 {
		ranks = 4
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = 4
	}
	if iters <= 0 {
		iters = 200
	}
	side := 1
	for side*side < scale {
		side++
	}
	a := matgen.Poisson2D(side, side)
	b := matgen.Ones(a.N)
	pd := opts.pageDoubles()

	bar, err := newDistCGHarness(a, b, ranks, pd, workers, true)
	if err != nil {
		return nil, err
	}
	defer bar.sub.Close()
	ovl, err := newDistCGHarness(a, b, ranks, pd, workers, false)
	if err != nil {
		return nil, err
	}
	defer ovl.sub.Close()
	pipe, err := newDistPipeHarness(a, b, ranks, pd, workers)
	if err != nil {
		return nil, err
	}
	defer pipe.sub.Close()
	const basisK = 4 // the tracked cacg configuration (defaults.BasisK)
	ca, err := newDistCAHarness(a, b, ranks, pd, workers, basisK)
	if err != nil {
		return nil, err
	}
	defer ca.sub.Close()

	res := &DistKernelsResult{
		Scale:       a.N,
		Ranks:       ranks,
		Workers:     workers,
		PageDoubles: pd,
		NNZ:         a.NNZ(),
		Iters:       iters,
		Provenance:  CollectProvenance(),
	}

	res.CABasisK = basisK

	for i := 0; i < 10; i++ { // warm rings, conds, succ capacity, caches
		bar.iterate()
		ovl.iterate()
		pipe.iterate()
		ca.iterate()
	}
	// The overlapped graph must be replaying the exact barrier
	// iteration: after identical warmups the recurrences agree bitwise.
	if bar.epsGG != ovl.epsGG {
		return nil, fmt.Errorf("distkernels: barrier/overlap recurrences diverged (%v vs %v)", bar.epsGG, ovl.epsGG)
	}

	// Reduction accounting starts after warmup so init-time Dots drop out.
	barRed0, barIt0 := bar.sub.Reductions(), bar.it
	pipeRed0, pipeIt0 := pipe.sub.Reductions(), pipe.it
	caRed0, caIt0 := ca.sub.Reductions(), ca.it

	const batch = 5
	rounds := iters / batch
	if rounds < 4 {
		rounds = 4
	}
	batchNs := func(h interface{ iterate() }) float64 {
		t0 := time.Now()
		for i := 0; i < batch; i++ {
			h.iterate()
		}
		return float64(time.Since(t0).Nanoseconds()) / batch
	}
	var barNs, ovlNs, pipeNs, caNs, ovlRatio, pipeRatio, caRatio []float64
	order := [][4]int{{0, 1, 2, 3}, {3, 2, 1, 0}, {1, 0, 3, 2}, {2, 3, 0, 1}, {0, 2, 3, 1}, {1, 3, 2, 0}}
	for r := 0; r < rounds; r++ {
		var ns [4]float64
		for _, k := range order[r%len(order)] {
			switch k {
			case 0:
				ns[0] = batchNs(bar)
			case 1:
				ns[1] = batchNs(ovl)
			case 2:
				ns[2] = batchNs(pipe)
			case 3:
				// One cacg outer step advances basisK iterations; report
				// per inner iteration for an apples-to-apples column.
				ns[3] = batchNs(ca) / float64(basisK)
			}
		}
		barNs = append(barNs, ns[0])
		ovlNs = append(ovlNs, ns[1])
		pipeNs = append(pipeNs, ns[2])
		caNs = append(caNs, ns[3])
		ovlRatio = append(ovlRatio, ns[0]/ns[1])
		pipeRatio = append(pipeRatio, ns[0]/ns[2])
		caRatio = append(caRatio, ns[0]/ns[3])
	}
	res.BarrierIterNs = median(barNs)
	res.OverlapIterNs = median(ovlNs)
	res.PipeIterNs = median(pipeNs)
	res.CAIterNs = median(caNs)
	res.OverlapSpeedup = median(ovlRatio)
	res.PipeSpeedup = median(pipeRatio)
	res.CASpeedup = median(caRatio)

	res.BarrierAllocs = measureAllocsPerIter(bar, iters)
	res.OverlapAllocs = measureAllocsPerIter(ovl, iters)
	res.PipeAllocs = measureAllocsPerIter(pipe, iters)
	res.CAAllocs = measureAllocsPerIter(ca, iters/basisK) / float64(basisK)

	res.BarrierRedPerIter = float64(bar.sub.Reductions()-barRed0) / float64(bar.it-barIt0)
	res.PipelineRedPerIter = float64(pipe.sub.Reductions()-pipeRed0) / float64(pipe.it-pipeIt0)
	res.CAReductionsPerIter = float64(ca.sub.Reductions()-caRed0) / float64((ca.it-caIt0)*basisK)
	res.CAReductionRatio = res.BarrierRedPerIter / res.CAReductionsPerIter
	return res, nil
}

func measureAllocsPerIter(h interface{ iterate() }, n int) float64 {
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	for i := 0; i < n; i++ {
		h.iterate()
	}
	runtime.ReadMemStats(&m1)
	return float64(m1.Mallocs-m0.Mallocs) / float64(n)
}

// distCGHarness drives the distributed CG steady-state iteration on a
// real shard substrate — the same primitives dist.CG runs, minus the
// convergence bookkeeping — in either superstep discipline. The barrier
// variant submits its closures fresh each iteration, exactly as the
// solver's barrier branch does.
type distCGHarness struct {
	sub        *shard.Substrate
	x, g, d, q *shard.Vec
	barrier    bool

	stepA               *shard.OverlapStep
	stepB               *shard.PreparedRankOp
	stepBeta, stepAlpha float64

	beta, epsGG float64
	it          int
}

func newDistCGHarness(a *sparse.CSR, b []float64, ranks, pd, workers int, barrier bool) (*distCGHarness, error) {
	sub, err := shard.New(a, b, ranks, pd, workers, true)
	if err != nil {
		return nil, err
	}
	h := &distCGHarness{sub: sub, barrier: barrier}
	h.x = sub.AddVector("x")
	h.g = sub.AddVector("g")
	h.d = sub.AddVector("d")
	h.q = sub.AddVector("q")
	sub.RankOp("init", func(r *shard.Rank, p, lo, hi int) {
		copy(h.g.Of(r).Data[lo:hi], sub.B[lo:hi])
	})
	h.epsGG = sub.Dot("gg", h.g, h.g)
	if !barrier {
		h.stepA = sub.NewOverlapStep("d|q,<d,q>", h.d, h.q, func(r *shard.Rank, p, lo, hi int) {
			if h.stepBeta == 0 {
				copy(h.d.Of(r).Data[lo:hi], h.g.Of(r).Data[lo:hi])
			} else {
				sparse.XpbyRange(h.g.Of(r).Data, h.stepBeta, h.d.Of(r).Data, lo, hi)
			}
		}, true, false)
		h.stepB = sub.PrepareRankOpDot("xg,<g,g>", func(r *shard.Rank, p, lo, hi int) float64 {
			sparse.AxpyRange(h.stepAlpha, h.d.Of(r).Data, h.x.Of(r).Data, lo, hi)
			return sparse.AxpyDotRange(-h.stepAlpha, h.q.Of(r).Data, h.g.Of(r).Data, lo, hi)
		})
	}
	return h, nil
}

func (h *distCGHarness) iterate() {
	sub := h.sub
	sub.ApplyPending() // the per-iteration fault-boundary scan (no faults)
	beta := h.beta
	if h.it == 0 {
		beta = 0
	}
	var dq float64
	if h.barrier {
		sub.RankOp("d", func(r *shard.Rank, p, lo, hi int) {
			if beta == 0 {
				copy(h.d.Of(r).Data[lo:hi], h.g.Of(r).Data[lo:hi])
			} else {
				sparse.XpbyRange(h.g.Of(r).Data, beta, h.d.Of(r).Data, lo, hi)
			}
		})
		dq = sub.SpMVDot("q,<d,q>", h.d, h.q)
	} else {
		h.stepBeta = beta
		dq, _ = h.stepA.Run()
	}
	alpha := 0.0
	if dq != 0 && !math.IsNaN(dq) && !math.IsNaN(h.epsGG) {
		alpha = h.epsGG / dq
	}
	var gg float64
	if h.barrier {
		gg = sub.RankOpDot("xg,<g,g>", func(r *shard.Rank, p, lo, hi int) float64 {
			sparse.AxpyRange(alpha, h.d.Of(r).Data, h.x.Of(r).Data, lo, hi)
			return sparse.AxpyDotRange(-alpha, h.q.Of(r).Data, h.g.Of(r).Data, lo, hi)
		})
	} else {
		h.stepAlpha = alpha
		gg = h.stepB.RunDot()
	}
	if h.epsGG != 0 && !math.IsNaN(gg) {
		h.beta = gg / h.epsGG
	} else {
		h.beta = 0
	}
	h.epsGG = gg
	h.it++
}

// distPipeHarness drives the pipelined CG steady-state iteration: one
// fused update superstep whose γ/δ sums are deferred into the next
// SpMV's in-flight window.
type distPipeHarness struct {
	sub                  *shard.Substrate
	x, r, w, p, sv, z, q *shard.Vec

	stepQ         *shard.OverlapStep
	stepU         *shard.PreparedRankOp
	uAlpha, uBeta float64

	gamma, gammaOld, delta, alphaOld float64
	haveFused                        bool
	it                               int
}

func newDistPipeHarness(a *sparse.CSR, b []float64, ranks, pd, workers int) (*distPipeHarness, error) {
	sub, err := shard.New(a, b, ranks, pd, workers, true)
	if err != nil {
		return nil, err
	}
	h := &distPipeHarness{sub: sub}
	h.x = sub.AddVector("x")
	h.r = sub.AddVector("g")
	h.w = sub.AddVector("w")
	h.p = sub.AddVector("p")
	h.sv = sub.AddVector("s")
	h.z = sub.AddVector("z")
	h.q = sub.AddVector("q")
	sub.RankOp("init", func(r *shard.Rank, p, lo, hi int) {
		copy(h.r.Of(r).Data[lo:hi], sub.B[lo:hi])
	})
	sub.SpMV("w=Ar", h.r, h.w)
	h.gamma = sub.Dot("<r,r>", h.r, h.r)
	h.delta = sub.Dot("<w,r>", h.w, h.r)
	h.stepQ = sub.NewOverlapStep("q=Aw", h.w, h.q, nil, false, false)
	h.stepU = sub.PrepareRankOpDot2("pipeupd", func(r *shard.Rank, p, lo, hi int) (float64, float64) {
		return sparse.PipeCGUpdateRange(h.uAlpha, h.uBeta,
			h.q.Of(r).Data, h.z.Of(r).Data, h.w.Of(r).Data, h.sv.Of(r).Data,
			h.r.Of(r).Data, h.p.Of(r).Data, h.x.Of(r).Data, lo, hi)
	})
	return h, nil
}

func (h *distPipeHarness) iterate() {
	sub := h.sub
	sub.ApplyPending()
	h.stepQ.Start()
	if h.haveFused {
		h.gamma, h.delta = h.stepU.Sums2()
		h.haveFused = false
	}
	beta := 0.0
	alpha := 0.0
	if h.it == 0 {
		if h.delta != 0 && !math.IsNaN(h.delta) {
			alpha = h.gamma / h.delta
		}
	} else {
		if h.gammaOld != 0 && !math.IsNaN(h.gamma) {
			beta = h.gamma / h.gammaOld
		}
		den := h.delta - beta*h.gamma/h.alphaOld
		if den != 0 && !math.IsNaN(den) {
			alpha = h.gamma / den
		}
	}
	h.stepQ.Finish()
	h.uAlpha, h.uBeta = alpha, beta
	h.stepU.Run()
	h.haveFused = true
	h.gammaOld = h.gamma
	if alpha != 0 {
		h.alphaOld = alpha
	} else {
		h.alphaOld = 1
	}
	h.it++
}

// distCAHarness drives the communication-avoiding s-step CG steady-state
// outer step on a real shard substrate — the same supersteps dist.CACG
// replays: k back-to-back overlapped basis SpMVs, the one Gram block
// reduction and the fused block update. The coordinator recurrence is
// pinned to a = 0, B = 0 (a stationary iteration with exactly the real
// step's memory traffic and flops — the update's B loop runs in full),
// so timing needs no convergence bookkeeping.
type distCAHarness struct {
	sub     *shard.Substrate
	k       int
	x, r    *shard.Vec
	v       []*shard.Vec
	pd, apd []*shard.Vec

	stepV []*shard.OverlapStep
	gram  *shard.PreparedRankOpDotBlock
	stepU *shard.PreparedRankOp

	cols   [][][]float64
	gbuf   []float64
	uA, uB []float64
	it     int
}

func newDistCAHarness(a *sparse.CSR, b []float64, ranks, pd, workers, k int) (*distCAHarness, error) {
	sub, err := shard.New(a, b, ranks, pd, workers, true)
	if err != nil {
		return nil, err
	}
	h := &distCAHarness{sub: sub, k: k}
	h.x = sub.AddVector("x")
	h.r = sub.AddVector("g")
	h.v = make([]*shard.Vec, k+1)
	h.v[0] = h.r
	for j := 1; j <= k; j++ {
		h.v[j] = sub.AddVector(fmt.Sprintf("v%d", j))
	}
	h.pd = make([]*shard.Vec, k)
	h.apd = make([]*shard.Vec, k)
	for j := 0; j < k; j++ {
		h.pd[j] = sub.AddVector(fmt.Sprintf("p%d", j))
		h.apd[j] = sub.AddVector(fmt.Sprintf("ap%d", j))
	}
	sub.RankOp("init", func(r *shard.Rank, p, lo, hi int) {
		copy(h.r.Of(r).Data[lo:hi], sub.B[lo:hi])
	})

	nc := 3*k + 1
	h.cols = make([][][]float64, len(sub.Ranks))
	for ri, r := range sub.Ranks {
		cs := make([][]float64, nc)
		for j := 0; j <= k; j++ {
			cs[j] = h.v[j].Of(r).Data
		}
		for j := 0; j < k; j++ {
			cs[k+1+j] = h.pd[j].Of(r).Data
			cs[2*k+1+j] = h.apd[j].Of(r).Data
		}
		h.cols[ri] = cs
	}
	var pairs [][2]int32
	for i := 0; i <= k; i++ {
		for j := i; j <= k; j++ {
			pairs = append(pairs, [2]int32{int32(i), int32(j)})
		}
	}
	for blk := 0; blk < 2; blk++ {
		for i := 0; i <= k; i++ {
			for j := 0; j < k; j++ {
				pairs = append(pairs, [2]int32{int32(i), int32((blk+1)*k + 1 + j)})
			}
		}
	}
	h.gbuf = make([]float64, len(pairs))
	h.uA = make([]float64, k)
	h.uB = make([]float64, k*k)

	h.stepV = make([]*shard.OverlapStep, k)
	for j := 0; j < k; j++ {
		h.stepV[j] = sub.NewOverlapStep(fmt.Sprintf("v%d=Av%d", j+1, j), h.v[j], h.v[j+1], nil, false, false)
	}
	h.gram = sub.PrepareRankOpDotBlock("gram", len(pairs), func(r *shard.Rank, p, lo, hi int, out []float64) {
		sparse.PairDotsRange(h.cols[r.ID], pairs, out, lo, hi)
	})
	h.stepU = sub.PrepareRankOpDot("caupd", func(r *shard.Rank, p, lo, hi int) float64 {
		cs := h.cols[r.ID]
		return sparse.CACGUpdateRange(cs[:k+1], cs[k+1:2*k+1], cs[2*k+1:], h.uB, h.uA,
			h.x.Of(r).Data, h.r.Of(r).Data, lo, hi)
	})
	return h, nil
}

func (h *distCAHarness) iterate() {
	h.sub.ApplyPending()
	for j := 0; j < h.k; j++ {
		h.stepV[j].Run()
	}
	for i := range h.gbuf {
		h.gbuf[i] = 0
	}
	h.gram.Run(h.gbuf)
	h.stepU.Run() // rr partials deferred and never summed, as in the solver
	h.it++
}
