//go:build race

package experiments

// raceEnabled reports that the race detector is instrumenting this build:
// wall-clock overhead comparisons are distorted by its ~10x slowdown, so
// timing-sensitive assertions are skipped (functional ones still run).
const raceEnabled = true
