package experiments

import (
	"os/exec"
	"runtime"
	"strings"
)

// Provenance records the environment a bench artefact was produced in,
// so trajectory points across PRs are comparable (a speedup measured
// with a different Go release, core count or commit is a different
// point, not a regression).
type Provenance struct {
	GoVersion   string `json:"go_version"`
	GOMAXPROCS  int    `json:"gomaxprocs"`
	NumCPU      int    `json:"num_cpu"`
	GitDescribe string `json:"git_describe,omitempty"`
	// Degraded marks artefacts produced with GOMAXPROCS == 1: every
	// latency-hiding contrast (overlap vs barrier, FEIR vs trivial,
	// affinity) collapses to parity on one core, so such numbers must
	// never be read as regressions — or committed as the trajectory.
	Degraded bool `json:"degraded_provenance,omitempty"`
}

// CollectProvenance snapshots the current environment. The git describe
// is best-effort: absent when the binary runs outside a work tree.
func CollectProvenance() Provenance {
	p := Provenance{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Degraded:   runtime.GOMAXPROCS(0) == 1,
	}
	if out, err := exec.Command("git", "describe", "--always", "--dirty", "--tags").Output(); err == nil {
		p.GitDescribe = strings.TrimSpace(string(out))
	}
	return p
}
