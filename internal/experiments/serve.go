// The serving benchmark: drive the solve-as-a-service layer in-process
// with concurrent clients over the three traffic mixes the server
// exists to handle — reuse-heavy (the cached fast path: warm solver
// instances, prefactorized blocks, prepared task graphs), cold-matrix
// (every request pays full operator setup) and a DUE storm tenant
// (fault-domain isolation under load). The headline number is the
// cached-vs-cold throughput ratio: how much of a solve the operator
// cache amortizes away.
package experiments

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/defaults"
	"repro/internal/engine"
	"repro/internal/matgen"
	"repro/internal/serve"
	"repro/internal/sparse"
)

// ServeOptions sizes the serving benchmark. Zero values pick the quick
// defaults used for the committed artefact.
type ServeOptions struct {
	// Scale is the matrix dimension; 0 means 4096.
	Scale int
	// Workers sizes the shared task pool; 0 means GOMAXPROCS.
	Workers int
	// Clients is the number of concurrent submitters; 0 means 4.
	Clients int
	// Requests is the measured cached-solve count; 0 means 40.
	Requests int
	// Cold is the cold-matrix request count; 0 means 8.
	Cold int
	// Storm is the DUE-storm request count; 0 means 12.
	Storm int
	// Seed drives storm injection.
	Seed int64
}

func (o ServeOptions) scale() int    { return defaults.Int(o.Scale, 4096) }
func (o ServeOptions) clients() int  { return defaults.Int(o.Clients, 4) }
func (o ServeOptions) requests() int { return defaults.Int(o.Requests, 40) }
func (o ServeOptions) cold() int     { return defaults.Int(o.Cold, 8) }
func (o ServeOptions) storm() int    { return defaults.Int(o.Storm, 12) }

// ServeResult is the BENCH_serve.json payload: server-level throughput
// under the three mixes, latency tails on the cached path, and the
// counter-verified claim that warm traffic performs zero factorizations
// and zero task-graph preparations.
//
//due:bench-artefact
type ServeResult struct {
	Matrix      string `json:"matrix"`
	N           int    `json:"n"`
	NNZ         int    `json:"nnz"`
	PageDoubles int    `json:"page_doubles"`
	Workers     int    `json:"workers"`
	Clients     int    `json:"clients"`

	ColdSolves         int     `json:"cold_solves"`
	ColdSolvesPerSec   float64 `json:"cold_solves_per_sec"`
	CachedSolves       int     `json:"cached_solves"`
	CachedSolvesPerSec float64 `json:"cached_solves_per_sec"`
	// CachedSpeedup is cached_solves_per_sec / cold_solves_per_sec — the
	// fraction of a request the operator cache amortizes away. The guard
	// floors cached_solves_per_sec; the acceptance bar is >= 3x here.
	CachedSpeedup float64 `json:"cached_speedup"`
	CachedP50Ms   float64 `json:"cached_p50_ms"`
	CachedP99Ms   float64 `json:"cached_p99_ms"`
	CacheHitRate  float64 `json:"cache_hit_rate"`

	StormSolves       int     `json:"storm_solves"`
	StormSolvesPerSec float64 `json:"storm_solves_per_sec"`
	// StormThroughputRatio is storm vs cached throughput: how gracefully
	// the server degrades when a tenant's fault domain is under fire.
	StormThroughputRatio float64 `json:"storm_throughput_ratio"`
	StormInjected        int     `json:"storm_injected"`

	// Batched mix: the same unpreconditioned FEIR request mix with and
	// without request coalescing. BatchWidth is the configured kernel
	// width; MeanBatchWidth is the occupancy the coalescer actually
	// achieved under load.
	BatchWidth            int     `json:"batch_width"`
	BatchSolves           int     `json:"batch_solves"`
	BatchSolvesPerSec     float64 `json:"batch_solves_per_sec"`
	UnbatchedSolvesPerSec float64 `json:"unbatched_solves_per_sec"`
	// BatchSpeedup is batch_solves_per_sec / cached_solves_per_sec: how
	// much faster the coalesced fast path retires requests than the
	// cached serving baseline at the same tolerance. The two mixes differ
	// in envelope (the cached mix runs the preconditioned configuration,
	// the batchable envelope is unpreconditioned CG), so this is an
	// end-to-end serving number, not a kernel ratio — CoalescingGain
	// isolates the kernel-level effect. The acceptance bar is >= 2x at
	// width >= 4.
	BatchSpeedup float64 `json:"batch_speedup"`
	// CoalescingGain is batch_solves_per_sec / unbatched_solves_per_sec —
	// the same request stream with and without coalescing, so it isolates
	// exactly what merging b requests into one operator pass buys. On a
	// single-core host this hovers near 1x (no memory-bandwidth sharing
	// to amortize); on multi-core it grows with width.
	CoalescingGain float64 `json:"coalescing_gain"`
	MeanBatchWidth float64 `json:"mean_batch_width"`
	// BatchColumnsExact is the structural per-column-exactness gate: one
	// member of a coalesced batch carrying a known RHS produced a solution
	// bitwise identical to the solo (uncoalesced) solve of the same
	// system.
	BatchColumnsExact bool `json:"batch_columns_exact"`

	AllConverged   bool    `json:"all_converged"`
	MaxRelResidual float64 `json:"max_rel_residual"`
	// Counter deltas across the measured cached, unbatched and batched
	// windows. Both must be zero: a warm checkout replays prepared graphs
	// against prefactorized blocks and never rebuilds either.
	FactorizationsAfterWarmup int64 `json:"factorizations_after_warmup"`
	GraphPrepsAfterWarmup     int64 `json:"graph_preps_after_warmup"`

	Provenance Provenance `json:"provenance"`
}

func (r *ServeResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "serve bench: %s n=%d nnz=%d pages=%d workers=%d clients=%d\n",
		r.Matrix, r.N, r.NNZ, r.PageDoubles, r.Workers, r.Clients)
	fmt.Fprintf(&b, "  cold    %6.2f solves/s  (%d solves, full operator setup per request)\n",
		r.ColdSolvesPerSec, r.ColdSolves)
	fmt.Fprintf(&b, "  cached  %6.2f solves/s  (%d solves, p50 %.1fms p99 %.1fms)  speedup %.2fx\n",
		r.CachedSolvesPerSec, r.CachedSolves, r.CachedP50Ms, r.CachedP99Ms, r.CachedSpeedup)
	fmt.Fprintf(&b, "  storm   %6.2f solves/s  (%d solves, %d DUEs injected)  ratio %.2f of cached\n",
		r.StormSolvesPerSec, r.StormSolves, r.StormInjected, r.StormThroughputRatio)
	fmt.Fprintf(&b, "  batched %6.2f solves/s  (%d solves, width %d, mean occupancy %.2f)  %.2fx of cached  gain %.2fx over unbatched %6.2f  columns_exact=%v\n",
		r.BatchSolvesPerSec, r.BatchSolves, r.BatchWidth, r.MeanBatchWidth,
		r.BatchSpeedup, r.CoalescingGain, r.UnbatchedSolvesPerSec, r.BatchColumnsExact)
	fmt.Fprintf(&b, "  cache hit rate %.2f; after warmup: %d factorizations, %d graph preps; converged=%v maxRes=%.2e\n",
		r.CacheHitRate, r.FactorizationsAfterWarmup, r.GraphPrepsAfterWarmup, r.AllConverged, r.MaxRelResidual)
	if r.Provenance.Degraded {
		b.WriteString("  [degraded provenance: GOMAXPROCS=1 — cached/cold contrast still valid, absolute rates are not]\n")
	}
	return b.String()
}

// servePhase aggregates one traffic mix.
type servePhase struct {
	mu         sync.Mutex
	latencies  []time.Duration
	injected   int
	converged  bool
	maxRes     float64
	warmSolves int
}

func newServePhase() *servePhase { return &servePhase{converged: true} }

func (ph *servePhase) record(resp *serve.Response, wall time.Duration) {
	ph.mu.Lock()
	defer ph.mu.Unlock()
	ph.latencies = append(ph.latencies, wall)
	ph.injected += resp.Injected
	if !resp.Converged {
		ph.converged = false
	}
	if resp.RelResidual > ph.maxRes {
		ph.maxRes = resp.RelResidual
	}
	if resp.Warm {
		ph.warmSolves++
	}
}

// runPhase fans total requests across clients goroutines; build makes
// the i-th request (and may register a matrix first). Returns the phase
// record and the wall-clock span of the whole mix.
func runPhase(srv *serve.Server, clients, total int, build func(i int) *serve.Request) (*servePhase, time.Duration, error) {
	ph := newServePhase()
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := c; i < total; i += clients {
				req := build(i)
				t0 := time.Now()
				resp, err := srv.Submit(req)
				if err != nil {
					errs <- fmt.Errorf("request %d: %w", i, err)
					return
				}
				ph.record(resp, time.Since(t0))
			}
		}(c)
	}
	wg.Wait()
	span := time.Since(start)
	close(errs)
	for err := range errs {
		return nil, 0, err
	}
	return ph, span, nil
}

func quantileMs(lat []time.Duration, q float64) float64 {
	if len(lat) == 0 {
		return 0
	}
	s := append([]time.Duration(nil), lat...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	idx := int(math.Ceil(q*float64(len(s)))) - 1
	if idx < 0 {
		idx = 0
	}
	return float64(s[idx].Nanoseconds()) / 1e6
}

// Serve benchmarks the serving layer end to end. One matrix is
// registered once and hammered by concurrent clients (the cached mix);
// the same operator is then re-registered under fresh handles so every
// request pays full setup (the cold mix — same flops, no reuse); and a
// storm tenant re-runs the cached mix under wall-clock DUE injection
// against its own fault domain. Large pages (1024 doubles) keep the
// diagonal-block factorization the dominant setup cost, which is
// exactly the term the cache exists to amortize.
func Serve(opts ServeOptions) (*ServeResult, error) {
	const gen = "qa8fm"
	const pageDoubles = 1024
	const tol = 1e-8
	scale := opts.scale()
	a, err := matgen.PaperMatrix(gen, scale)
	if err != nil {
		return nil, err
	}
	clients := opts.clients()
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	srv := serve.New(serve.Options{
		Workers:    workers,
		Concurrent: clients,
		// Cold contexts at this page size are large; cap generously so
		// the cold mix measures setup cost, not eviction churn.
		CacheBytes: 1 << 30,
	})
	defer srv.Drain()
	srv.RegisterMatrix(gen, a, pageDoubles)

	warmReq := func(int) *serve.Request {
		return &serve.Request{Matrix: gen, Solver: "cg", Precond: true, Tol: tol}
	}

	// Warm-up: deterministically fill the instance pool (one per
	// dispatcher) paying the one-time factorization + graph preparation,
	// then run a traffic round so server-side caches and stats settle.
	if err := srv.Prewarm(warmReq(0), clients); err != nil {
		return nil, fmt.Errorf("warmup: %w", err)
	}
	if _, _, err := runPhase(srv, clients, 2*clients, warmReq); err != nil {
		return nil, fmt.Errorf("warmup: %w", err)
	}

	// Measured cached mix, with the zero-rebuild claim pinned by the
	// process-wide counters across the window.
	fac0, prep0 := sparse.FactorizationCount(), engine.GraphPrepCount()
	cached, cachedSpan, err := runPhase(srv, clients, opts.requests(), warmReq)
	if err != nil {
		return nil, fmt.Errorf("cached mix: %w", err)
	}
	facDelta := sparse.FactorizationCount() - fac0
	prepDelta := engine.GraphPrepCount() - prep0

	// Cold mix: the same operator under a fresh handle per request, so
	// each solve factorizes, prepares and constructs from scratch.
	var regMu sync.Mutex
	coldReq := func(i int) *serve.Request {
		key := fmt.Sprintf("cold-%d", i)
		regMu.Lock()
		srv.RegisterMatrix(key, a, pageDoubles)
		regMu.Unlock()
		return &serve.Request{Matrix: key, Solver: "cg", Precond: true, Tol: tol}
	}
	cold, coldSpan, err := runPhase(srv, clients, opts.cold(), coldReq)
	if err != nil {
		return nil, fmt.Errorf("cold mix: %w", err)
	}

	// Storm tenant: cached solves with AFEIR recovery while the injector
	// fires at roughly three DUEs per solve into this tenant's domain.
	mtbe := time.Duration(quantileMs(cached.latencies, 0.5)*1e6) / 3
	if mtbe <= 0 {
		mtbe = time.Millisecond
	}
	seed := opts.Seed
	if seed == 0 {
		seed = 1
	}
	stormReq := func(i int) *serve.Request {
		return &serve.Request{
			Matrix: gen, Solver: "cg", Method: "afeir", Precond: true, Tol: tol,
			Tenant: "storm", DUEMTBE: mtbe, Seed: seed + int64(i),
		}
	}
	storm, stormSpan, err := runPhase(srv, clients, opts.storm(), stormReq)
	if err != nil {
		return nil, fmt.Errorf("storm mix: %w", err)
	}

	// Batched mix: an identical unpreconditioned FEIR request stream run
	// twice — once solo, once opted into coalescing — so coalescing_gain
	// isolates exactly what merging b requests into one operator pass
	// buys, while batch_speedup compares the coalesced fast path against
	// the cached serving baseline. Enough concurrent submitters keep the
	// admission queue fed so dispatchers can actually fill their batches.
	batchWidth := defaults.ServeBatchWidthOr(0)
	batchClients := clients * batchWidth
	envReq := func(batch bool) func(int) *serve.Request {
		return func(int) *serve.Request {
			return &serve.Request{Matrix: gen, Method: "feir", Tol: tol, Batch: batch}
		}
	}
	// Warm both pools: the unpreconditioned solo instances and the batched
	// instances, one per concurrent dispatcher. Prewarm is deterministic
	// where a traffic round is not — these envelope solves retire in a
	// millisecond, so a traffic warmup only pools as many instances as the
	// scheduler happened to run concurrently, and the measured window
	// would occasionally pay a construction (breaking the zero-rebuild
	// counters). The traffic rounds after it settle queue/cache state.
	if err := srv.Prewarm(envReq(false)(0), clients); err != nil {
		return nil, fmt.Errorf("unbatched prewarm: %w", err)
	}
	if err := srv.Prewarm(envReq(true)(0), clients); err != nil {
		return nil, fmt.Errorf("batched prewarm: %w", err)
	}
	if _, _, err := runPhase(srv, batchClients, 2*batchClients, envReq(false)); err != nil {
		return nil, fmt.Errorf("unbatched warmup: %w", err)
	}
	if _, _, err := runPhase(srv, batchClients, 2*batchClients, envReq(true)); err != nil {
		return nil, fmt.Errorf("batched warmup: %w", err)
	}
	fac1, prep1 := sparse.FactorizationCount(), engine.GraphPrepCount()
	// Measure batchWidth times the cached-mix request count: these solves
	// retire in ~1/100th the time of a preconditioned cached solve, so a
	// small sample would be dominated by window-timing jitter in the
	// coalescer (occupancy swings of one request move the rate by 1/b).
	envRequests := opts.requests() * batchWidth
	// Best of three repetitions: the envelope rates feed batch_speedup
	// and its guard floor, and the span of any single short phase is
	// dominated by whether the scheduler happened to keep the admission
	// queue fed (a dispatcher that finds the queue empty eats the full
	// coalescing window). The fastest run estimates the noise floor,
	// which is the stable quantity.
	bestPhase := func(batch bool) (*servePhase, time.Duration, error) {
		var best *servePhase
		var bestSpan time.Duration
		allConverged, worstRes := true, 0.0
		for i := 0; i < 3; i++ {
			ph, span, err := runPhase(srv, batchClients, envRequests, envReq(batch))
			if err != nil {
				return nil, 0, err
			}
			allConverged = allConverged && ph.converged
			worstRes = math.Max(worstRes, ph.maxRes)
			if best == nil || span < bestSpan {
				best, bestSpan = ph, span
			}
		}
		// Timing comes from the fastest run; correctness from all three.
		best.converged = allConverged
		best.maxRes = worstRes
		return best, bestSpan, nil
	}
	unbatched, unbatchedSpan, err := bestPhase(false)
	if err != nil {
		return nil, fmt.Errorf("unbatched mix: %w", err)
	}
	batched, batchedSpan, err := bestPhase(true)
	if err != nil {
		return nil, fmt.Errorf("batched mix: %w", err)
	}
	facDelta += sparse.FactorizationCount() - fac1
	prepDelta += engine.GraphPrepCount() - prep1

	exact, err := batchedColumnsExact(a, workers, gen, pageDoubles, tol)
	if err != nil {
		return nil, fmt.Errorf("batch exactness probe: %w", err)
	}

	snap := srv.Snapshot()
	hitRate := 0.0
	if snap.CacheHits+snap.CacheMisses > 0 {
		hitRate = float64(snap.CacheHits) / float64(snap.CacheHits+snap.CacheMisses)
	}
	res := &ServeResult{
		Matrix:      gen,
		N:           a.N,
		NNZ:         a.NNZ(),
		PageDoubles: pageDoubles,
		Workers:     workers,
		Clients:     clients,

		ColdSolves:         len(cold.latencies),
		ColdSolvesPerSec:   float64(len(cold.latencies)) / coldSpan.Seconds(),
		CachedSolves:       len(cached.latencies),
		CachedSolvesPerSec: float64(len(cached.latencies)) / cachedSpan.Seconds(),
		CachedP50Ms:        quantileMs(cached.latencies, 0.5),
		CachedP99Ms:        quantileMs(cached.latencies, 0.99),
		CacheHitRate:       hitRate,

		StormSolves:       len(storm.latencies),
		StormSolvesPerSec: float64(len(storm.latencies)) / stormSpan.Seconds(),
		StormInjected:     storm.injected,

		BatchWidth:            batchWidth,
		BatchSolves:           len(batched.latencies),
		BatchSolvesPerSec:     float64(len(batched.latencies)) / batchedSpan.Seconds(),
		UnbatchedSolvesPerSec: float64(len(unbatched.latencies)) / unbatchedSpan.Seconds(),
		MeanBatchWidth:        snap.MeanBatchWidth,
		BatchColumnsExact:     exact,

		AllConverged: cached.converged && cold.converged && storm.converged &&
			unbatched.converged && batched.converged,
		MaxRelResidual: math.Max(math.Max(cached.maxRes, unbatched.maxRes),
			math.Max(batched.maxRes, math.Max(cold.maxRes, storm.maxRes))),

		FactorizationsAfterWarmup: facDelta,
		GraphPrepsAfterWarmup:     prepDelta,

		Provenance: CollectProvenance(),
	}
	if res.ColdSolvesPerSec > 0 {
		res.CachedSpeedup = res.CachedSolvesPerSec / res.ColdSolvesPerSec
	}
	if res.CachedSolvesPerSec > 0 {
		res.StormThroughputRatio = res.StormSolvesPerSec / res.CachedSolvesPerSec
	}
	if res.CachedSolvesPerSec > 0 {
		res.BatchSpeedup = res.BatchSolvesPerSec / res.CachedSolvesPerSec
	}
	if res.UnbatchedSolvesPerSec > 0 {
		res.CoalescingGain = res.BatchSolvesPerSec / res.UnbatchedSolvesPerSec
	}
	return res, nil
}

// batchedColumnsExact pins service-level per-column exactness on a
// dedicated single-dispatcher server with a wide coalescing window: one
// member of a width-4 batch carries a known RHS, and its solution must
// be bitwise identical to the solo (uncoalesced) solve of the same
// system.
func batchedColumnsExact(a *sparse.CSR, workers int, gen string, pageDoubles int, tol float64) (bool, error) {
	srv := serve.New(serve.Options{
		Workers: workers, Concurrent: 1, BatchWindow: 100 * time.Millisecond,
	})
	defer srv.Drain()
	srv.RegisterMatrix(gen, a, pageDoubles)
	b := matgen.RandomVector(a.N, 11)
	solo, err := srv.Submit(&serve.Request{
		Matrix: gen, Method: "feir", Tol: tol, B: b, WantSolution: true,
	})
	if err != nil {
		return false, err
	}
	var wg sync.WaitGroup
	resps := make([]*serve.Response, 4)
	errs := make([]error, 4)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			req := &serve.Request{Matrix: gen, Method: "feir", Tol: tol, Batch: true}
			if i == 0 {
				req.B = b
				req.WantSolution = true
			}
			resps[i], errs[i] = srv.Submit(req)
		}(i)
	}
	wg.Wait()
	for _, e := range errs {
		if e != nil {
			return false, e
		}
	}
	if resps[0].BatchWidth < 2 {
		return false, nil // did not coalesce: exactness unproven
	}
	for k := range b {
		if math.Float64bits(resps[0].X[k]) != math.Float64bits(solo.X[k]) {
			return false, nil
		}
	}
	return true, nil
}
