package experiments

// The frozen pre-PR hot path, kept verbatim as the benchmark baseline so
// BENCH_kernels.json measures this PR's steady-state speedup against the
// code it replaced (commit "Make preconditioning a first-class subsystem
// ..."): the single-mutex global-heap scheduler with an eagerly
// allocated completion channel per task, the non-hoisted wide-index SpMV
// kernel, and the unfused op pipeline that submitted fresh closure tasks
// for every operation of every iteration. Nothing here is reachable from
// production code.

import (
	"container/heap"
	"sync"
	"time"

	"repro/internal/engine"
	"repro/internal/pagemem"
	"repro/internal/sparse"
)

// ---- pre-PR scheduler (verbatim mechanics) --------------------------

type prePRHandle struct {
	seq      uint64
	priority int
	run      func(worker int)
	npred    int
	succs    []*prePRHandle
	done     bool
	doneCh   chan struct{}
}

type prePRRuntime struct {
	mu        sync.Mutex
	cond      *sync.Cond
	ready     prePRHeap
	seq       uint64
	pending   int
	closed    bool
	quiescent *sync.Cond
	workers   int
}

func newPrePRRuntime(workers int) *prePRRuntime {
	rt := &prePRRuntime{workers: workers}
	rt.cond = sync.NewCond(&rt.mu)
	rt.quiescent = sync.NewCond(&rt.mu)
	for w := 0; w < workers; w++ {
		go rt.worker(w)
	}
	return rt
}

func (rt *prePRRuntime) submit(run func(int), after []*prePRHandle) *prePRHandle {
	h := &prePRHandle{run: run, doneCh: make(chan struct{})}
	rt.mu.Lock()
	rt.seq++
	h.seq = rt.seq
	rt.pending++
	for _, pred := range after {
		if pred != nil && !pred.done {
			pred.succs = append(pred.succs, h)
			h.npred++
		}
	}
	if h.npred == 0 {
		heap.Push(&rt.ready, h)
		rt.cond.Signal()
	}
	rt.mu.Unlock()
	return h
}

func (rt *prePRRuntime) waitAll(hs []*prePRHandle) {
	for _, h := range hs {
		<-h.doneCh
	}
}

func (rt *prePRRuntime) close() {
	rt.mu.Lock()
	for rt.pending > 0 {
		rt.quiescent.Wait()
	}
	rt.closed = true
	rt.cond.Broadcast()
	rt.mu.Unlock()
}

func (rt *prePRRuntime) worker(w int) {
	// The pre-PR loop kept per-worker state clocks: the time.Now calls
	// around every task are part of its per-task cost, so they stay.
	var useful, overhead, idle time.Duration
	for {
		tSched := time.Now()
		rt.mu.Lock()
		for rt.ready.Len() == 0 && !rt.closed {
			tIdle := time.Now()
			overhead += tIdle.Sub(tSched)
			rt.cond.Wait()
			tSched = time.Now()
			idle += tSched.Sub(tIdle)
		}
		if rt.ready.Len() == 0 && rt.closed {
			rt.mu.Unlock()
			return
		}
		h := heap.Pop(&rt.ready).(*prePRHandle)
		rt.mu.Unlock()
		tRun := time.Now()
		overhead += tRun.Sub(tSched)
		h.run(w)
		useful += time.Since(tRun)
		_ = useful
		_ = idle

		rt.mu.Lock()
		h.done = true
		for _, s := range h.succs {
			s.npred--
			if s.npred == 0 {
				heap.Push(&rt.ready, s)
				rt.cond.Signal()
			}
		}
		h.succs = nil
		rt.pending--
		if rt.pending == 0 {
			rt.quiescent.Broadcast()
		}
		rt.mu.Unlock()
		close(h.doneCh)
	}
}

type prePRHeap []*prePRHandle

func (th prePRHeap) Len() int { return len(th) }
func (th prePRHeap) Less(i, j int) bool {
	if th[i].priority != th[j].priority {
		return th[i].priority > th[j].priority
	}
	return th[i].seq < th[j].seq
}
func (th prePRHeap) Swap(i, j int) { th[i], th[j] = th[j], th[i] }
func (th *prePRHeap) Push(x any)   { *th = append(*th, x.(*prePRHandle)) }
func (th *prePRHeap) Pop() any {
	old := *th
	n := len(old)
	x := old[n-1]
	old[n-1] = nil
	*th = old[:n-1]
	return x
}

// ---- pre-PR kernels (verbatim) --------------------------------------

func prePRMulVecRange(a *sparse.CSR, x, y []float64, lo, hi int) {
	for i := lo; i < hi; i++ {
		var s float64
		end := a.RowPtr[i+1]
		for k := a.RowPtr[i]; k < end; k++ {
			s += a.Vals[k] * x[a.Cols[k]]
		}
		y[i] = s
	}
}

func prePRDotRange(x, y []float64, lo, hi int) float64 {
	var s float64
	for i := lo; i < hi; i++ {
		s += x[i] * y[i]
	}
	return s
}

func prePRAxpyRange(alpha float64, x, y []float64, lo, hi int) {
	for i := lo; i < hi; i++ {
		y[i] += alpha * x[i]
	}
}

func prePRXpbyOutRange(x []float64, beta float64, y, out []float64, lo, hi int) {
	for i := lo; i < hi; i++ {
		out[i] = x[i] + beta*y[i]
	}
}

// ---- pre-PR CG steady-state iteration -------------------------------

// prePRHarness drives the same resilient CG iteration structure as
// cgIterHarness, the pre-PR way: six unfused chunked operations per
// iteration (d, q, <d,q>, x, g, ε), each submitted as fresh closure
// tasks on the pre-PR scheduler, with the same stamp guards.
type prePRHarness struct {
	a      *sparse.CSR
	layout sparse.BlockLayout
	rt     *prePRRuntime
	chunks [][2]int
	conn   [][]int
	space  *pagemem.Space

	x, g, q        engine.Vec
	d              [2]engine.Vec
	dqPart, ggPart *engine.Partial

	ver         int64
	alpha, beta float64
	epsGG       float64
}

func newPrePRHarness(a *sparse.CSR, b []float64, pageDoubles, workers int) *prePRHarness {
	layout := sparse.BlockLayout{N: a.N, BlockSize: pageDoubles}
	np := layout.NumBlocks()
	h := &prePRHarness{
		a:      a,
		layout: layout,
		rt:     newPrePRRuntime(workers),
		chunks: engine.ChunkRanges(np, workers),
		conn:   engine.PageConnectivity(a, layout),
		space:  pagemem.NewSpace(a.N, pageDoubles),
	}
	mk := func(name string) engine.Vec {
		return engine.Vec{V: h.space.AddVector(name), S: engine.NewStamps(np)}
	}
	h.x, h.g, h.q = mk("x"), mk("g"), mk("q")
	h.d[0], h.d[1] = mk("d0"), mk("d1")
	copy(h.g.V.Data, b)
	h.epsGG = prePRDotRange(b, b, 0, a.N)
	h.dqPart = engine.NewPartial(np)
	h.ggPart = engine.NewPartial(np)
	return h
}

// chunked submits one fresh closure task per chunk — the pre-PR op shape.
func (h *prePRHarness) chunked(after []*prePRHandle, fn func(p, lo, hi int)) []*prePRHandle {
	handles := make([]*prePRHandle, 0, len(h.chunks))
	for _, ch := range h.chunks {
		pLo, pHi := ch[0], ch[1]
		handles = append(handles, h.rt.submit(func(int) {
			for p := pLo; p < pHi; p++ {
				lo, hi := h.layout.Range(p)
				fn(p, lo, hi)
			}
		}, after))
	}
	return handles
}

func (h *prePRHarness) iterate() {
	ver := h.ver
	t := int(ver)
	cur, prev := t%2, (t+1)%2
	dCur, dPrev := h.d[cur], h.d[prev]
	beta := h.beta
	if ver == 0 {
		beta = 0
	}
	h.dqPart.ResetMissing()

	dH := h.chunked(nil, func(p, lo, hi int) {
		if !h.g.Current(p, ver-1) || (beta != 0 && !dPrev.Current(p, ver-1)) {
			return
		}
		if beta == 0 {
			copy(dCur.V.Data[lo:hi], h.g.V.Data[lo:hi])
		} else {
			prePRXpbyOutRange(h.g.V.Data, beta, dPrev.V.Data, dCur.V.Data, lo, hi)
		}
		dCur.V.MarkRecovered(p)
		dCur.S[p].Store(ver)
	})
	qH := h.chunked(dH, func(p, lo, hi int) {
		if !dCur.ConnCurrent(h.conn[p], ver, -1) {
			return
		}
		prePRMulVecRange(h.a, dCur.V.Data, h.q.V.Data, lo, hi)
		h.q.V.MarkRecovered(p)
		h.q.S[p].Store(ver)
	})
	pH := h.chunked(qH, func(p, lo, hi int) {
		if !dCur.Current(p, ver) || !h.q.Current(p, ver) {
			return
		}
		h.dqPart.Store(p, prePRDotRange(dCur.V.Data, h.q.V.Data, lo, hi))
	})
	h.rt.waitAll(dH)
	h.rt.waitAll(qH)
	h.rt.waitAll(pH)

	// The pre-PR FEIR solver ran a critical-path recovery task after
	// every phase, scanning all pages for repairs and missing partials
	// even in fault-free steady state — part of its per-iteration cost.
	r1 := h.rt.submit(func(int) {
		for p := 0; p < len(h.conn); p++ {
			if h.g.Current(p, ver-1) && dCur.Current(p, ver) && h.q.Current(p, ver) &&
				(beta == 0 || dPrev.Current(p, ver-1)) {
				_ = h.dqPart.Missing(p)
			}
		}
	}, nil)
	h.rt.waitAll([]*prePRHandle{r1})

	dq, _ := h.dqPart.SumAvailable()
	if dq != 0 {
		h.alpha = h.epsGG / dq
	} else {
		h.alpha = 0
	}
	alpha := h.alpha
	h.ggPart.ResetMissing()

	xH := h.chunked(nil, func(p, lo, hi int) {
		if !h.x.Current(p, ver-1) || !dCur.Current(p, ver) {
			return
		}
		prePRAxpyRange(alpha, dCur.V.Data, h.x.V.Data, lo, hi)
		h.x.S[p].Store(ver)
	})
	gH := h.chunked(nil, func(p, lo, hi int) {
		if !h.g.Current(p, ver-1) || !h.q.Current(p, ver) {
			return
		}
		prePRAxpyRange(-alpha, h.q.V.Data, h.g.V.Data, lo, hi)
		h.g.S[p].Store(ver)
	})
	eH := h.chunked(gH, func(p, lo, hi int) {
		if !h.g.Current(p, ver) {
			return
		}
		h.ggPart.Store(p, prePRDotRange(h.g.V.Data, h.g.V.Data, lo, hi))
	})
	h.rt.waitAll(xH)
	h.rt.waitAll(gH)
	h.rt.waitAll(eH)
	r23 := h.rt.submit(func(int) {
		for p := 0; p < len(h.conn); p++ {
			if h.x.Current(p, ver) && h.g.Current(p, ver) && h.q.Current(p, ver) && dCur.Current(p, ver) {
				_ = h.ggPart.Missing(p)
			}
		}
	}, nil)
	h.rt.waitAll([]*prePRHandle{r23})
	// ... and the end-of-iteration reconcile swept every protected
	// vector's stamps once more.
	for p := 0; p < len(h.conn); p++ {
		if !h.x.Current(p, ver) || !h.g.Current(p, ver) || !dCur.Current(p, ver) || !h.q.Current(p, ver) {
			panic("kernels baseline: steady state lost a page")
		}
	}

	gg, _ := h.ggPart.SumAvailable()
	if h.epsGG != 0 {
		h.beta = gg / h.epsGG
	} else {
		h.beta = 0
	}
	h.epsGG = gg
	h.ver++
}
