package experiments

import (
	"strings"
	"testing"

	"repro/internal/core"
)

// quickOpts keeps harness tests fast: tiny matrices, few pages, 1 rep.
func quickOpts() Options {
	return Options{
		Scale:       1024,
		Workers:     2,
		PageDoubles: 64,
		Reps:        1,
		Tol:         1e-7,
		Matrices:    []string{"qa8fm", "Dubcova3"},
		Rates:       []int{1, 5},
		Seed:        7,
	}
}

func TestHarmonicMean(t *testing.T) {
	if hm := harmonicMean([]float64{1, 1, 1}); hm != 1 {
		t.Fatalf("hm = %v", hm)
	}
	hm := harmonicMean([]float64{2, 4})
	if hm < 2.66 || hm > 2.67 {
		t.Fatalf("hm = %v, want 8/3", hm)
	}
	// Mixed-sign input falls back to the arithmetic mean.
	if hm := harmonicMean([]float64{-0.01, 0.03}); hm < 0.0099 || hm > 0.0101 {
		t.Fatalf("fallback hm = %v", hm)
	}
	if harmonicMean(nil) != 0 {
		t.Fatal("empty input")
	}
}

func TestMedian(t *testing.T) {
	if m := median([]float64{3, 1, 2}); m != 2 {
		t.Fatalf("median = %v", m)
	}
	if median(nil) != 0 {
		t.Fatal("empty median")
	}
}

func TestTable2Runs(t *testing.T) {
	res, err := Table2(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 6 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// Checkpointing must cost more than the forward-recovery methods —
	// a wall-clock comparison the race detector's slowdown invalidates.
	if !raceEnabled {
		byName := map[string]float64{}
		for _, r := range res.Rows {
			byName[r.Method] = r.Overhead
		}
		if byName["ckpt 200"] <= byName["AFEIR"] {
			t.Fatalf("ckpt 200 (%v) should exceed AFEIR (%v)", byName["ckpt 200"], byName["AFEIR"])
		}
	}
	s := res.String()
	if !strings.Contains(s, "Table 2") || !strings.Contains(s, "AFEIR") {
		t.Fatalf("rendering: %s", s)
	}
}

func TestTable3Runs(t *testing.T) {
	res, err := Table3(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 || res.Rows[0].Method != "AFEIR" || res.Rows[1].Method != "FEIR" {
		t.Fatalf("rows: %+v", res.Rows)
	}
	if !strings.Contains(res.String(), "imbalance") {
		t.Fatal("rendering")
	}
}

func TestFig3Runs(t *testing.T) {
	opts := quickOpts()
	res, err := Fig3(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 5 {
		t.Fatalf("series = %d", len(res.Series))
	}
	for _, s := range res.Series {
		if len(s.Points) == 0 {
			t.Fatalf("series %s empty", s.Method)
		}
		// Converged: final residual well below start.
		last := s.Points[len(s.Points)-1]
		if last.LogRes > -6 {
			t.Fatalf("series %s final log residual %v", s.Method, last.LogRes)
		}
	}
	if !strings.Contains(res.String(), "Figure 3") {
		t.Fatal("rendering")
	}
}

func TestFig4Runs(t *testing.T) {
	opts := quickOpts()
	opts.Matrices = []string{"qa8fm"}
	opts.Rates = []int{1}
	res, err := Fig4(opts, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 5 { // 1 matrix × 1 rate × 5 methods
		t.Fatalf("cells = %d", len(res.Cells))
	}
	if !strings.Contains(res.String(), "Figure 4") {
		t.Fatal("rendering")
	}
}

func TestValidateDistributed(t *testing.T) {
	for _, m := range []core.Method{core.MethodIdeal, core.MethodFEIR, core.MethodLossy} {
		res, err := ValidateDistributed(m, 4, 2, quickOpts())
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if !res.Converged {
			t.Fatalf("%v: not converged", m)
		}
		if res.RelResidual > 1e-6 {
			t.Fatalf("%v: residual %v", m, res.RelResidual)
		}
	}
}
