package experiments

import (
	"strings"
	"testing"

	"math"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/matgen"
)

// quickOpts keeps harness tests fast: tiny matrices, few pages, 1 rep.
func quickOpts() Options {
	return Options{
		Scale:       1024,
		Workers:     2,
		PageDoubles: 64,
		Reps:        1,
		Tol:         1e-7,
		Matrices:    []string{"qa8fm", "Dubcova3"},
		Rates:       []int{1, 5},
		Seed:        7,
	}
}

func TestHarmonicMean(t *testing.T) {
	if hm := harmonicMean([]float64{1, 1, 1}); hm != 1 {
		t.Fatalf("hm = %v", hm)
	}
	hm := harmonicMean([]float64{2, 4})
	if hm < 2.66 || hm > 2.67 {
		t.Fatalf("hm = %v, want 8/3", hm)
	}
	// Mixed-sign input falls back to the arithmetic mean.
	if hm := harmonicMean([]float64{-0.01, 0.03}); hm < 0.0099 || hm > 0.0101 {
		t.Fatalf("fallback hm = %v", hm)
	}
	if harmonicMean(nil) != 0 {
		t.Fatal("empty input")
	}
}

func TestMedian(t *testing.T) {
	if m := median([]float64{3, 1, 2}); m != 2 {
		t.Fatalf("median = %v", m)
	}
	if median(nil) != 0 {
		t.Fatal("empty median")
	}
}

func TestTable2Runs(t *testing.T) {
	res, err := Table2(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 6 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// Checkpointing must cost more than the forward-recovery methods —
	// a wall-clock comparison the race detector's slowdown invalidates.
	if !raceEnabled {
		byName := map[string]float64{}
		for _, r := range res.Rows {
			byName[r.Method] = r.Overhead
		}
		if byName["ckpt 200"] <= byName["AFEIR"] {
			t.Fatalf("ckpt 200 (%v) should exceed AFEIR (%v)", byName["ckpt 200"], byName["AFEIR"])
		}
	}
	s := res.String()
	if !strings.Contains(s, "Table 2") || !strings.Contains(s, "AFEIR") {
		t.Fatalf("rendering: %s", s)
	}
}

func TestTable3Runs(t *testing.T) {
	res, err := Table3(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 || res.Rows[0].Method != "AFEIR" || res.Rows[1].Method != "FEIR" {
		t.Fatalf("rows: %+v", res.Rows)
	}
	if !strings.Contains(res.String(), "imbalance") {
		t.Fatal("rendering")
	}
}

func TestFig3Runs(t *testing.T) {
	opts := quickOpts()
	res, err := Fig3(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 5 {
		t.Fatalf("series = %d", len(res.Series))
	}
	for _, s := range res.Series {
		if len(s.Points) == 0 {
			t.Fatalf("series %s empty", s.Method)
		}
		// Converged: final residual well below start.
		last := s.Points[len(s.Points)-1]
		if last.LogRes > -6 {
			t.Fatalf("series %s final log residual %v", s.Method, last.LogRes)
		}
	}
	if !strings.Contains(res.String(), "Figure 3") {
		t.Fatal("rendering")
	}
}

func TestFig4Runs(t *testing.T) {
	opts := quickOpts()
	opts.Matrices = []string{"qa8fm"}
	opts.Rates = []int{1}
	res, err := Fig4(opts, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 5 { // 1 matrix × 1 rate × 5 methods
		t.Fatalf("cells = %d", len(res.Cells))
	}
	if !strings.Contains(res.String(), "Figure 4") {
		t.Fatal("rendering")
	}
}

func TestValidateDistributed(t *testing.T) {
	for _, m := range []core.Method{core.MethodIdeal, core.MethodFEIR, core.MethodLossy} {
		res, err := ValidateDistributed(m, 4, 2, quickOpts())
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if !res.Converged {
			t.Fatalf("%v: not converged", m)
		}
		if res.RelResidual > 1e-6 {
			t.Fatalf("%v: residual %v", m, res.RelResidual)
		}
	}
}

func TestDistKernelsSmoke(t *testing.T) {
	opts := Options{Scale: 900, PageDoubles: 64, Workers: 2}
	res, err := DistKernels(opts, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ranks != 3 || res.Scale < 900 {
		t.Fatalf("config echo: %+v", res)
	}
	if res.BarrierIterNs <= 0 || res.OverlapIterNs <= 0 || res.PipeIterNs <= 0 {
		t.Fatalf("missing timings: %+v", res)
	}
	if res.OverlapAllocs > 0.5 || res.PipeAllocs > 0.5 {
		t.Fatalf("prepared dist supersteps allocate: %+v", res)
	}
	if res.Provenance.GoVersion == "" || res.Provenance.NumCPU == 0 {
		t.Fatalf("missing provenance: %+v", res.Provenance)
	}
	if !strings.Contains(res.String(), "Distributed kernel baseline") {
		t.Fatal("rendering")
	}
}

// TestDistKernelsHarnessMatchesSolver pins the bench harnesses to the
// shipped solvers: the tracked BENCH_dist.json baseline re-implements
// the steady-state loops for interleaved measurement, so its recurrence
// must reproduce dist.CG's and dist.PipeCG's residual traces bitwise.
// If a later PR changes a solver's steady loop, this fails instead of
// letting the tracked baseline silently measure stale code.
func TestDistKernelsHarnessMatchesSolver(t *testing.T) {
	a := matgen.Poisson2D(30, 30)
	b := matgen.Ones(a.N)
	const iters = 6
	trace := func(solve func(cfg dist.Config) error) []float64 {
		var out []float64
		cfg := dist.Config{Method: core.MethodFEIR, PageDoubles: 64, Tol: 1e-300, MaxIter: iters,
			OnIteration: func(it int, rel float64) { out = append(out, rel) }}
		if err := solve(cfg); err != nil {
			t.Fatal(err)
		}
		if len(out) != iters {
			t.Fatalf("trace length %d, want %d", len(out), iters)
		}
		return out
	}

	cgTrace := trace(func(cfg dist.Config) error {
		_, _, err := dist.SolveCG(a, b, 3, cfg)
		return err
	})
	h, err := newDistCGHarness(a, b, 3, 64, 2, false)
	if err != nil {
		t.Fatal(err)
	}
	defer h.sub.Close()
	for it := 0; it < iters; it++ {
		if rel := math.Sqrt(math.Max(h.epsGG, 0)) / h.sub.Bnorm; rel != cgTrace[it] {
			t.Fatalf("cg harness drifted from dist.CG at iteration %d: %v vs %v", it, rel, cgTrace[it])
		}
		h.iterate()
	}

	pipeTrace := trace(func(cfg dist.Config) error {
		_, _, err := dist.SolvePipeCG(a, b, 3, cfg)
		return err
	})
	ph, err := newDistPipeHarness(a, b, 3, 64, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer ph.sub.Close()
	for it := 0; it < iters; it++ {
		ph.iterate()
		if rel := math.Sqrt(math.Max(ph.gamma, 0)) / ph.sub.Bnorm; rel != pipeTrace[it] {
			t.Fatalf("pipecg harness drifted from dist.PipeCG at iteration %d: %v vs %v", it, rel, pipeTrace[it])
		}
	}
}
