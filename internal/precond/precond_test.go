package precond

import (
	"math"
	"testing"

	"repro/internal/matgen"
	"repro/internal/sparse"
)

func TestIdentityApply(t *testing.T) {
	p := NewIdentity(10, 4)
	v := []float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	u := make([]float64, 10)
	p.Apply(v, u)
	for i := range v {
		if u[i] != v[i] {
			t.Fatalf("u[%d] = %v", i, u[i])
		}
	}
	if p.Layout().NumBlocks() != 3 {
		t.Fatalf("blocks = %d", p.Layout().NumBlocks())
	}
}

func TestIdentityApplyBlock(t *testing.T) {
	p := NewIdentity(10, 4)
	v := []float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	u := make([]float64, 10)
	if err := p.ApplyBlock(1, v, u); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		want := 0.0
		if i >= 4 && i < 8 {
			want = v[i]
		}
		if u[i] != want {
			t.Fatalf("u[%d] = %v, want %v", i, u[i], want)
		}
	}
}

func TestBlockJacobiSolvesBlockSystems(t *testing.T) {
	a := matgen.Poisson2D(8, 8)
	bj, err := NewBlockJacobi(a, 16)
	if err != nil {
		t.Fatal(err)
	}
	v := matgen.RandomVector(64, 1)
	u := make([]float64, 64)
	bj.Apply(v, u)
	// Verify block-wise: A_ii u_i = v_i.
	layout := bj.Layout()
	for blk := 0; blk < layout.NumBlocks(); blk++ {
		lo, hi := layout.Range(blk)
		d := a.DiagBlock(lo, hi)
		check := make([]float64, hi-lo)
		d.MulVec(u[lo:hi], check)
		for i := range check {
			if math.Abs(check[i]-v[lo+i]) > 1e-10 {
				t.Fatalf("block %d row %d: %v != %v", blk, i, check[i], v[lo+i])
			}
		}
	}
}

func TestBlockJacobiApplyBlockMatchesFullApply(t *testing.T) {
	a := matgen.Poisson2D(10, 10)
	bj, err := NewBlockJacobi(a, 32)
	if err != nil {
		t.Fatal(err)
	}
	v := matgen.RandomVector(100, 2)
	full := make([]float64, 100)
	bj.Apply(v, full)
	partial := make([]float64, 100)
	for blk := 0; blk < bj.Layout().NumBlocks(); blk++ {
		if err := bj.ApplyBlock(blk, v, partial); err != nil {
			t.Fatal(err)
		}
	}
	for i := range full {
		if full[i] != partial[i] {
			t.Fatalf("element %d differs: %v vs %v", i, full[i], partial[i])
		}
	}
}

func TestBlockJacobiDefaultBlockSize(t *testing.T) {
	a := matgen.Poisson2D(30, 30) // 900 elements: 2 pages of 512
	bj, err := NewBlockJacobi(a, 0)
	if err != nil {
		t.Fatal(err)
	}
	if bj.Layout().BlockSize != 512 {
		t.Fatalf("default block size = %d", bj.Layout().BlockSize)
	}
	if bj.Layout().NumBlocks() != 2 {
		t.Fatalf("blocks = %d", bj.Layout().NumBlocks())
	}
	if bj.Solver(0) == nil || bj.Solver(1) == nil {
		t.Fatal("solvers not exposed")
	}
}

func TestBlockJacobiIsContractionForSPD(t *testing.T) {
	// For SPD A, block-Jacobi preconditioning must keep z = M^{-1} g a
	// descent direction: <z, g> > 0 for g != 0.
	a := matgen.Thermal2Analogue(400)
	bj, err := NewBlockJacobi(a, 64)
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(0); seed < 5; seed++ {
		g := matgen.RandomVector(a.N, seed)
		z := make([]float64, a.N)
		bj.Apply(g, z)
		if sparse.Dot(z, g) <= 0 {
			t.Fatalf("seed %d: <z,g> = %v, want > 0", seed, sparse.Dot(z, g))
		}
	}
}

func TestGeneralLUBlocks(t *testing.T) {
	// New(..., false) factorizes with LU: the non-symmetric case the
	// preconditioned BiCGStab/GMRES need. Round-trip: u = M⁻¹(M v).
	a := matgen.Thermal2Analogue(300)
	bj, err := New(a, 64, false)
	if err != nil {
		t.Fatal(err)
	}
	v := matgen.RandomVector(a.N, 7)
	mv := make([]float64, a.N)
	u := make([]float64, a.N)
	for i := 0; i < bj.Layout().NumBlocks(); i++ {
		if err := bj.MulBlock(i, v, mv); err != nil {
			t.Fatal(err)
		}
		if err := bj.ApplyBlock(i, mv, u); err != nil {
			t.Fatal(err)
		}
	}
	for i := range v {
		if d := u[i] - v[i]; d > 1e-9 || d < -1e-9 {
			t.Fatalf("round-trip u[%d] = %v, want %v", i, u[i], v[i])
		}
	}
}

func TestFromCacheReusesFactorizations(t *testing.T) {
	// FromCache must behave exactly like a fresh factorization — the §5.1
	// "factorizations come for free" reuse the shard substrate relies on.
	a := matgen.Thermal2Analogue(300)
	layout := sparse.BlockLayout{N: a.N, BlockSize: 64}
	cache := sparse.NewBlockSolverCache(a, layout, true)
	cache.PrefactorizeLenient()
	fromCache, err := FromCache(cache)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := NewBlockJacobi(a, 64)
	if err != nil {
		t.Fatal(err)
	}
	g := matgen.RandomVector(a.N, 3)
	z1 := make([]float64, a.N)
	z2 := make([]float64, a.N)
	fromCache.Apply(g, z1)
	fresh.Apply(g, z2)
	for i := range z1 {
		if z1[i] != z2[i] {
			t.Fatalf("z[%d] = %v from cache, %v fresh", i, z1[i], z2[i])
		}
	}
}

func TestSolveBlockInPlaceMatchesApplyBlock(t *testing.T) {
	a := matgen.Thermal2Analogue(300)
	bj, err := NewBlockJacobi(a, 64)
	if err != nil {
		t.Fatal(err)
	}
	v := matgen.RandomVector(a.N, 11)
	u := make([]float64, a.N)
	lo, hi := bj.Layout().Range(2)
	if err := bj.ApplyBlock(2, v, u); err != nil {
		t.Fatal(err)
	}
	buf := append([]float64(nil), v[lo:hi]...)
	if err := bj.SolveBlockInPlace(2, buf); err != nil {
		t.Fatal(err)
	}
	for i := range buf {
		if buf[i] != u[lo+i] {
			t.Fatalf("buf[%d] = %v, want %v", i, buf[i], u[lo+i])
		}
	}
}
