// Package precond provides the block-Jacobi preconditioner used by the
// paper's preconditioned CG (§5.1): 512×512 diagonal blocks factorized
// once with Cholesky, sized to coincide with the memory-page fault
// granularity so the factorizations double as recovery solvers.
//
// The key property for cheap recovery (§3.2) is partial application: as a
// block-diagonal operator, solving M u = v on the set of blocks that
// supersedes lost data recovers exactly the lost portion of u.
package precond

import (
	"fmt"

	"repro/internal/sparse"
)

// Preconditioner solves M u = v, optionally on a subset of blocks.
type Preconditioner interface {
	// Apply solves M u = v for the whole vector.
	Apply(v, u []float64)
	// ApplyBlock solves the block-diagonal sub-problem for block i only,
	// reading v and writing u on that block's element range.
	ApplyBlock(i int, v, u []float64) error
	// Layout returns the block partition of the operator.
	Layout() sparse.BlockLayout
}

// Identity is the no-preconditioner case: u = v.
type Identity struct {
	layout sparse.BlockLayout
}

// NewIdentity builds an identity preconditioner over n elements with the
// given block size (for layout queries only).
func NewIdentity(n, blockSize int) *Identity {
	return &Identity{layout: sparse.BlockLayout{N: n, BlockSize: blockSize}}
}

// Apply copies v into u.
func (p *Identity) Apply(v, u []float64) { copy(u, v) }

// ApplyBlock copies block i of v into u.
func (p *Identity) ApplyBlock(i int, v, u []float64) error {
	lo, hi := p.layout.Range(i)
	copy(u[lo:hi], v[lo:hi])
	return nil
}

// Layout returns the block partition.
func (p *Identity) Layout() sparse.BlockLayout { return p.layout }

// BlockJacobi is the paper's preconditioner: M = blockdiag(A_00..A_kk),
// each block factorized once at setup.
type BlockJacobi struct {
	a       *sparse.CSR
	layout  sparse.BlockLayout
	solvers []sparse.BlockSolver
}

// New factorizes the diagonal blocks of a with the given block size
// (0 means the page size, 512). spd selects Cholesky factorization of the
// blocks; pass false for general (possibly non-symmetric) matrices, which
// factorizes with LU — the BiCGStab/GMRES setting.
func New(a *sparse.CSR, blockSize int, spd bool) (*BlockJacobi, error) {
	if blockSize <= 0 {
		blockSize = 512
	}
	layout := sparse.BlockLayout{N: a.N, BlockSize: blockSize}
	bj := &BlockJacobi{a: a, layout: layout, solvers: make([]sparse.BlockSolver, layout.NumBlocks())}
	for i := 0; i < layout.NumBlocks(); i++ {
		lo, hi := layout.Range(i)
		s, err := sparse.FactorizeBlock(a.DiagBlock(lo, hi), spd)
		if err != nil {
			return nil, fmt.Errorf("precond: block %d: %w", i, err)
		}
		bj.solvers[i] = s
	}
	return bj, nil
}

// NewBlockJacobi factorizes the diagonal blocks of the SPD matrix a with
// the given block size (0 means the page size, 512).
func NewBlockJacobi(a *sparse.CSR, blockSize int) (*BlockJacobi, error) {
	return New(a, blockSize, true)
}

// FromCache builds a block-Jacobi preconditioner over the cache's layout
// reusing its already-factorized diagonal blocks — the §5.1 observation
// that with block size equal to the page size, the preconditioner setup
// and the recovery solvers are the same factorizations. The cache must
// hold a solver for every block (Prefactorize, or a lenient
// prefactorization that lost no block).
func FromCache(c *sparse.BlockSolverCache) (*BlockJacobi, error) {
	bj := &BlockJacobi{a: c.A, layout: c.Layout, solvers: make([]sparse.BlockSolver, c.Layout.NumBlocks())}
	for i := range bj.solvers {
		s, err := c.Solver(i)
		if err != nil {
			return nil, fmt.Errorf("precond: %w", err)
		}
		bj.solvers[i] = s
	}
	return bj, nil
}

// Apply solves M u = v block by block.
func (p *BlockJacobi) Apply(v, u []float64) {
	for i := range p.solvers {
		if err := p.ApplyBlock(i, v, u); err != nil {
			// Factorized at setup; solve cannot fail for Cholesky/LU.
			panic(fmt.Sprintf("precond: block %d apply: %v", i, err))
		}
	}
}

// ApplyBlock solves block i: u_i = A_ii^{-1} v_i. This is the partial
// application that makes preconditioned-vector recovery cheap (§3.2).
func (p *BlockJacobi) ApplyBlock(i int, v, u []float64) error {
	lo, hi := p.layout.Range(i)
	buf := u[lo:hi]
	copy(buf, v[lo:hi])
	return p.solvers[i].SolveInPlace(buf)
}

// Layout returns the block partition.
func (p *BlockJacobi) Layout() sparse.BlockLayout { return p.layout }

// SolveBlockInPlace solves M_ii u = u on a raw page-sized buffer — the
// same partial application as ApplyBlock, for recovery code that works on
// detached page buffers rather than full-length vectors (the GMRES
// Hessenberg rebuild).
func (p *BlockJacobi) SolveBlockInPlace(i int, buf []float64) error {
	return p.solvers[i].SolveInPlace(buf)
}

// MulBlock computes u_i = M_ii v_i = A_ii v_i for block i — the forward
// product inverse to ApplyBlock, used to rebuild a lost unpreconditioned
// page from its surviving preconditioned image (d = M d̂). The dense
// diagonal block is re-extracted on demand: this runs only on the rare
// recovery path, so nothing is cached.
func (p *BlockJacobi) MulBlock(i int, v, u []float64) error {
	lo, hi := p.layout.Range(i)
	p.a.DiagBlock(lo, hi).MulVec(v[lo:hi], u[lo:hi])
	return nil
}

// Solver returns the factorized solver of diagonal block i, so recovery
// code can reuse the existing factorization (the paper picks a 512-block
// block-Jacobi precisely because "the factorization of diagonal blocks for
// the recovery of single errors is already computed", §5.1).
func (p *BlockJacobi) Solver(i int) sparse.BlockSolver { return p.solvers[i] }
