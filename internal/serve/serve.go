// Package serve is the solve-as-a-service layer: a long-running server
// that accepts solve requests against cached operators and runs them
// concurrently on the process-wide task pool. The production-scale
// pieces the one-shot CLIs lack live here:
//
//   - admission control: a bounded priority queue; a request arriving
//     past the bound is rejected immediately instead of queueing without
//     limit, and higher-priority requests dispatch first (their solver
//     tasks also ride the work-stealing heap at that priority);
//   - operator caching: matrices are registered once and referenced by
//     handle; repeated solves reuse the context's factorizations, warm
//     solver instances and prepared task graphs (registry.Checkout);
//   - per-request deadlines and cancellation via context, polled by the
//     solvers at iteration boundaries;
//   - per-tenant fault domains: every request's instance owns its
//     pagemem spaces, so a DUE storm in one tenant's solve cannot touch
//     another's data — isolation is structural, not scheduled;
//   - graceful drain: shutdown stops admissions, lets queued and
//     in-flight solves finish, and only then releases the pool.
package serve

import (
	"container/heap"
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/defaults"
	"repro/internal/inject"
	"repro/internal/registry"
	"repro/internal/sparse"
)

// Sentinel admission errors: the HTTP layer maps these to 429/503.
var (
	ErrQueueFull     = errors.New("serve: admission queue full")
	ErrDraining      = errors.New("serve: server is draining")
	ErrUnknownMatrix = errors.New("serve: unknown matrix handle")
)

// Options configures a Server. Zero values resolve through
// internal/defaults (ServeQueueDepth, ServeConcurrent, ServeTimeout,
// ServeCacheBytes).
type Options struct {
	// QueueDepth bounds the admission queue.
	QueueDepth int
	// Concurrent is the number of solves dispatched at once.
	Concurrent int
	// Timeout is the default per-request budget (requests may set a
	// shorter one).
	Timeout time.Duration
	// CacheBytes caps the operator-context cache.
	CacheBytes int64
	// Workers sizes the shared task pool on first use; 0 = GOMAXPROCS.
	Workers int
	// BatchWidth is the kernel width of coalesced multi-RHS solves
	// (capped at sparse.MaxBatchWidth); 0 = defaults.ServeBatchWidth.
	// Coalescing applies only to requests that opt in (Request.Batch).
	BatchWidth int
	// BatchWindow is how long a dispatcher holds a batch-opted request
	// open for same-matrix companions; 0 = defaults.ServeBatchWindow.
	BatchWindow time.Duration
}

// Request is one solve submission. Matrix references a handle registered
// via RegisterMatrix (or an earlier inline submission).
type Request struct {
	Matrix   string        `json:"matrix"`
	Solver   string        `json:"solver,omitempty"` // registry name; "" = cg
	Method   string        `json:"method,omitempty"` // resilience scheme; "" = ideal
	Precond  bool          `json:"precond,omitempty"`
	Tol      float64       `json:"tol,omitempty"`
	MaxIter  int           `json:"max_iter,omitempty"`
	Ranks    int           `json:"ranks,omitempty"`
	B        []float64     `json:"b,omitempty"` // nil = all-ones RHS
	Priority int           `json:"priority,omitempty"`
	Timeout  time.Duration `json:"timeout_ns,omitempty"`
	Tenant   string        `json:"tenant,omitempty"`
	// DUEMTBE, when positive, runs a wall-clock DUE storm against this
	// request's own fault domain for the duration of the solve.
	DUEMTBE time.Duration `json:"due_mtbe_ns,omitempty"`
	Seed    int64         `json:"seed,omitempty"`
	// WantSolution includes the solution vector in the response.
	WantSolution bool `json:"want_solution,omitempty"`
	// Batch opts this request into multi-RHS coalescing: concurrent
	// same-matrix, same-configuration requests merge into one batched
	// solve that streams the operator once for all of them. Only the
	// unpreconditioned single-node CG family (methods ideal/feir/afeir,
	// no injection) is batchable; anything else solves solo as usual.
	Batch bool `json:"batch,omitempty"`
}

// Response reports one completed solve.
type Response struct {
	Converged   bool          `json:"converged"`
	Iterations  int           `json:"iterations"`
	RelResidual float64       `json:"rel_residual"`
	Elapsed     time.Duration `json:"elapsed_ns"`
	Queued      time.Duration `json:"queued_ns"`
	Warm        bool          `json:"warm"`
	Injected    int           `json:"injected"`
	Stats       core.Stats    `json:"stats"`
	// BatchWidth is the number of requests that shared this solve's
	// operator pass (0 or 1 = solved solo). Stats is the whole batch's
	// aggregate for coalesced responses.
	BatchWidth int       `json:"batch_width,omitempty"`
	X          []float64 `json:"x,omitempty"`
}

// Stats is a point-in-time snapshot of server counters.
type Stats struct {
	Accepted    int64 `json:"accepted"`
	Rejected    int64 `json:"rejected"`
	Completed   int64 `json:"completed"`
	Failed      int64 `json:"failed"`
	WarmSolves  int64 `json:"warm_solves"`
	CacheHits   int64 `json:"cache_hits"`
	CacheMisses int64 `json:"cache_misses"`
	Cached      int   `json:"cached_matrices"`
	CacheBytes  int64 `json:"cache_bytes"`
	QueueLen    int   `json:"queue_len"`
	// CacheHitRate is CacheHits/(CacheHits+CacheMisses); 0 before any
	// lookup.
	CacheHitRate float64 `json:"cache_hit_rate"`
	// Batch occupancy: how many batched dispatches ran, how many
	// requests they absorbed, and the mean width (coalesced/batches).
	BatchesDispatched int64   `json:"batches_dispatched"`
	RequestsCoalesced int64   `json:"requests_coalesced"`
	MeanBatchWidth    float64 `json:"mean_batch_width"`
}

// pending is one queued request plus its completion channel.
type pending struct {
	req      *Request
	enqueued time.Time
	seq      int64
	done     chan outcome
	index    int // heap bookkeeping
}

type outcome struct {
	resp *Response
	err  error
}

// Server runs solves against cached operator contexts. Create with New,
// submit with Submit (safe for concurrent use), stop with Drain.
type Server struct {
	opts  Options
	cache *registry.ContextCache

	mu       sync.Mutex
	cond     *sync.Cond
	queue    pendingHeap
	seq      int64
	draining bool

	inflight sync.WaitGroup
	workers  sync.WaitGroup

	accepted, rejected, completed, failed, warm int64
	batches, coalesced                          int64
}

// New builds a server and starts its dispatchers.
func New(opts Options) *Server {
	s := &Server{
		opts:  opts,
		cache: registry.NewContextCache(opts.CacheBytes),
	}
	s.cond = sync.NewCond(&s.mu)
	n := defaults.ServeConcurrentOr(opts.Concurrent)
	s.workers.Add(n)
	for i := 0; i < n; i++ {
		go s.dispatch()
	}
	return s
}

// Cache exposes the operator-context cache (the HTTP layer and tests
// inspect it).
func (s *Server) Cache() *registry.ContextCache { return s.cache }

// RegisterMatrix caches an operator context under the handle and returns
// it. Re-registering a handle replaces the context.
func (s *Server) RegisterMatrix(key string, a *sparse.CSR, pageDoubles int) *registry.OperatorContext {
	return s.cache.Put(key, a, pageDoubles)
}

// Prewarm deterministically fills the warm instance pool for req's
// configuration: count instances are checked out together, each run once
// (the first Run is what builds the prepared task graphs), then released
// as a group. Traffic-based warmup grows the pool only as deep as the
// checkouts that actually overlapped — scheduler luck — so a later burst
// can still pay a construction mid-flight; after Prewarm(req, concurrent)
// it cannot. A batch-opted request warms the batched pool at the
// configured width instead of the solo pool. Prewarm bypasses admission
// and leaves the serving stats untouched.
func (s *Server) Prewarm(req *Request, count int) error {
	octx, ok := s.cache.Get(req.Matrix)
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownMatrix, req.Matrix)
	}
	method, err := ParseMethod(req.Method)
	if err != nil {
		return err
	}
	ones := func() []float64 {
		b := make([]float64, octx.A.N)
		for k := range b {
			b[k] = 1
		}
		return b
	}
	if s.batchable(req) {
		width := s.batchWidth()
		rhs := make([][]float64, width)
		for j := range rhs {
			rhs[j] = ones()
		}
		cfg := registry.Config{Config: core.Config{
			Method: method, Workers: s.opts.Workers, PageDoubles: octx.PageDoubles,
			Tol: req.Tol, MaxIter: req.MaxIter, TaskPriority: req.Priority,
		}}
		cos := make([]*registry.BatchCheckout, 0, count)
		defer func() {
			for _, co := range cos {
				co.Release()
			}
		}()
		for i := 0; i < count; i++ {
			co, err := octx.CheckoutBatch("cg", rhs, width, cfg)
			if err != nil {
				return err
			}
			cos = append(cos, co)
			if _, err := co.S.Run(); err != nil {
				return err
			}
		}
		return nil
	}
	solver := req.Solver
	if solver == "" {
		solver = "cg"
	}
	cfg := registry.Config{
		Config: core.Config{
			Method: method, Workers: s.opts.Workers, PageDoubles: octx.PageDoubles,
			Tol: req.Tol, MaxIter: req.MaxIter, UsePrecond: req.Precond,
			TaskPriority: req.Priority,
		},
		Ranks: req.Ranks,
	}
	b := ones()
	cos := make([]*registry.Checkout, 0, count)
	defer func() {
		for _, co := range cos {
			co.Release()
		}
	}()
	for i := 0; i < count; i++ {
		co, err := octx.Checkout(solver, b, cfg)
		if err != nil {
			return err
		}
		cos = append(cos, co)
		if _, err := co.Instance.Run(); err != nil {
			return err
		}
	}
	return nil
}

// Submit runs one request to completion: admission, queueing, dispatch,
// solve. It blocks until the solve finished, failed, timed out or was
// rejected — concurrency comes from calling Submit on many goroutines
// (one per client), as the HTTP layer does.
func (s *Server) Submit(req *Request) (*Response, error) {
	p := &pending{req: req, enqueued: time.Now(), done: make(chan outcome, 1)}
	s.mu.Lock()
	if s.draining {
		s.rejected++
		s.mu.Unlock()
		return nil, ErrDraining
	}
	if s.queue.Len() >= defaults.ServeQueueDepthOr(s.opts.QueueDepth) {
		s.rejected++
		s.mu.Unlock()
		return nil, ErrQueueFull
	}
	s.seq++
	p.seq = s.seq
	s.accepted++
	heap.Push(&s.queue, p)
	s.cond.Signal()
	s.mu.Unlock()

	out := <-p.done
	return out.resp, out.err
}

// Drain stops admissions, waits for every queued and in-flight solve to
// finish, and stops the dispatchers. Safe to call once.
func (s *Server) Drain() {
	s.mu.Lock()
	s.draining = true
	s.cond.Broadcast()
	s.mu.Unlock()
	s.workers.Wait()
	s.inflight.Wait()
}

// Snapshot returns current server counters.
func (s *Server) Snapshot() Stats {
	hits, misses := s.cache.Counters()
	var hitRate float64
	if hits+misses > 0 {
		hitRate = float64(hits) / float64(hits+misses)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	var meanWidth float64
	if s.batches > 0 {
		meanWidth = float64(s.coalesced) / float64(s.batches)
	}
	return Stats{
		Accepted:          s.accepted,
		Rejected:          s.rejected,
		Completed:         s.completed,
		Failed:            s.failed,
		WarmSolves:        s.warm,
		CacheHits:         hits,
		CacheMisses:       misses,
		Cached:            s.cache.Len(),
		CacheBytes:        s.cache.Bytes(),
		QueueLen:          s.queue.Len(),
		CacheHitRate:      hitRate,
		BatchesDispatched: s.batches,
		RequestsCoalesced: s.coalesced,
		MeanBatchWidth:    meanWidth,
	}
}

// dispatch is one worker loop: pop the highest-priority request, run it.
// Draining dispatchers first empty the queue, then exit.
func (s *Server) dispatch() {
	defer s.workers.Done()
	for {
		s.mu.Lock()
		for s.queue.Len() == 0 && !s.draining {
			s.cond.Wait()
		}
		if s.queue.Len() == 0 && s.draining {
			s.mu.Unlock()
			return
		}
		p := heap.Pop(&s.queue).(*pending)
		s.inflight.Add(1)
		s.mu.Unlock()

		if s.batchable(p.req) {
			if group := s.collectBatch(p); len(group) > 1 {
				s.executeBatch(group)
				continue
			}
		}
		resp, err := s.execute(p)
		s.mu.Lock()
		if err != nil {
			s.failed++
		} else {
			s.completed++
			if resp.Warm {
				s.warm++
			}
		}
		s.mu.Unlock()
		p.done <- outcome{resp: resp, err: err}
		s.inflight.Done()
	}
}

// execute runs one admitted request against its cached operator context.
func (s *Server) execute(p *pending) (*Response, error) {
	req := p.req
	octx, ok := s.cache.Get(req.Matrix)
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownMatrix, req.Matrix)
	}
	method, err := ParseMethod(req.Method)
	if err != nil {
		return nil, err
	}
	solver := req.Solver
	if solver == "" {
		solver = "cg"
	}
	timeout := req.Timeout
	if timeout <= 0 {
		timeout = defaults.ServeTimeoutOr(s.opts.Timeout)
	}
	cctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()

	b := req.B
	if b == nil {
		b = make([]float64, octx.A.N)
		for i := range b {
			b[i] = 1
		}
	} else if len(b) != octx.A.N {
		return nil, fmt.Errorf("serve: rhs length %d for n=%d", len(b), octx.A.N)
	}

	cfg := registry.Config{
		Config: core.Config{
			Method:  method,
			Workers: s.opts.Workers,
			// The fault-granularity layout belongs to the cached operator,
			// not the request: a request cannot ask for a different page
			// size without registering the matrix under another handle.
			PageDoubles:  octx.PageDoubles,
			Tol:          req.Tol,
			MaxIter:      req.MaxIter,
			UsePrecond:   req.Precond,
			TaskPriority: req.Priority,
			Cancelled:    func() bool { return cctx.Err() != nil },
		},
		Ranks: req.Ranks,
	}
	co, err := octx.Checkout(solver, b, cfg)
	if err != nil {
		return nil, err
	}
	defer co.Release()

	// Per-tenant storm: the injector targets this instance's own fault
	// domain, so concurrent tenants' solves are untouched by design.
	var in *inject.Injector
	if req.DUEMTBE > 0 {
		seed := req.Seed
		if seed == 0 {
			seed = p.seq
		}
		in = inject.NewInjector(co.Instance.Spaces[0], co.Instance.Dynamic, req.DUEMTBE, seed)
		in.Start()
	}
	res, runErr := co.Instance.Run()
	injected := 0
	if in != nil {
		in.Stop()
		injected = in.Injected()
	}
	if runErr != nil {
		return nil, runErr
	}
	resp := &Response{
		Converged:   res.Converged,
		Iterations:  res.Iterations,
		RelResidual: res.RelResidual,
		Elapsed:     res.Elapsed,
		Queued:      time.Since(p.enqueued) - res.Elapsed,
		Warm:        co.Warm,
		Injected:    injected,
		Stats:       res.Stats,
	}
	if req.WantSolution && co.Instance.Solution != nil {
		resp.X = append([]float64(nil), co.Instance.Solution()...)
	}
	return resp, nil
}

// ParseMethod maps the wire name of a resilience scheme to core.Method.
// "" means Ideal.
func ParseMethod(s string) (core.Method, error) {
	switch strings.ToLower(s) {
	case "", "ideal":
		return core.MethodIdeal, nil
	case "trivial":
		return core.MethodTrivial, nil
	case "lossy":
		return core.MethodLossy, nil
	case "ckpt", "checkpoint":
		return core.MethodCheckpoint, nil
	case "feir":
		return core.MethodFEIR, nil
	case "afeir":
		return core.MethodAFEIR, nil
	}
	return 0, fmt.Errorf("serve: unknown method %q", s)
}

// pendingHeap orders requests by descending priority, FIFO within a
// priority tier — the admission-side mirror of the task heap.
type pendingHeap []*pending

func (h pendingHeap) Len() int { return len(h) }
func (h pendingHeap) Less(i, j int) bool {
	if h[i].req.Priority != h[j].req.Priority {
		return h[i].req.Priority > h[j].req.Priority
	}
	return h[i].seq < h[j].seq
}
func (h pendingHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index, h[j].index = i, j
}
func (h *pendingHeap) Push(x any) {
	p := x.(*pending)
	p.index = len(*h)
	*h = append(*h, p)
}
func (h *pendingHeap) Pop() any {
	old := *h
	n := len(old)
	p := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return p
}
