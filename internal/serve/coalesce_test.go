package serve

import (
	"errors"
	"math"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/matgen"
	"repro/internal/sparse"
)

func batchReq(tenant string) *Request {
	return &Request{Matrix: "m", Method: "feir", Batch: true, Tenant: tenant, WantSolution: true}
}

// TestCoalesceMergesConcurrentRequests drives one dispatcher with four
// concurrent batch-opted requests: they must merge into a single
// batched solve, every member converging, and a second round must reuse
// the warm batched instance.
func TestCoalesceMergesConcurrentRequests(t *testing.T) {
	srv := newTestServer(t, Options{Concurrent: 1, BatchWidth: 4, BatchWindow: 200 * time.Millisecond})

	round := func() []*Response {
		var wg sync.WaitGroup
		resps := make([]*Response, 4)
		errs := make([]error, 4)
		for i := 0; i < 4; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				resps[i], errs[i] = srv.Submit(batchReq("t"))
			}(i)
		}
		wg.Wait()
		for i := range errs {
			if errs[i] != nil {
				t.Fatalf("member %d: %v", i, errs[i])
			}
			if !resps[i].Converged {
				t.Fatalf("member %d did not converge: %+v", i, resps[i])
			}
		}
		return resps
	}

	first := round()
	for i, r := range first {
		if r.BatchWidth != 4 {
			t.Fatalf("round 1 member %d batch width %d, want 4", i, r.BatchWidth)
		}
	}
	s := srv.Snapshot()
	if s.BatchesDispatched != 1 || s.RequestsCoalesced != 4 || s.MeanBatchWidth != 4 {
		t.Fatalf("occupancy: batches=%d coalesced=%d mean=%v", s.BatchesDispatched, s.RequestsCoalesced, s.MeanBatchWidth)
	}
	if s.CacheHitRate <= 0 {
		t.Fatalf("cache hit rate %v", s.CacheHitRate)
	}

	second := round()
	for i, r := range second {
		if !r.Warm {
			t.Fatalf("round 2 member %d not warm", i)
		}
	}

	// All members solved the same all-ones RHS: identical columns,
	// identical solutions — and identical to the solo (uncoalesced) solve
	// of the same request, since each batched column is bitwise the
	// unbatched run.
	solo, err := srv.Submit(&Request{Matrix: "m", Method: "feir", WantSolution: true})
	if err != nil {
		t.Fatal(err)
	}
	if solo.BatchWidth != 0 {
		t.Fatalf("solo request coalesced: %+v", solo)
	}
	if solo.Iterations != first[0].Iterations {
		t.Fatalf("batched member ran %d iterations, solo %d", first[0].Iterations, solo.Iterations)
	}
	for i := range solo.X {
		if math.Float64bits(solo.X[i]) != math.Float64bits(first[0].X[i]) {
			t.Fatalf("row %d: batched %v vs solo %v", i, first[0].X[i], solo.X[i])
		}
	}
}

// TestCoalesceRespectsEnvelope pins the gate: requests outside the
// batchable envelope never coalesce, even when opted in.
func TestCoalesceRespectsEnvelope(t *testing.T) {
	srv := newTestServer(t, Options{Concurrent: 2, BatchWidth: 4, BatchWindow: 50 * time.Millisecond})
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Preconditioned: batchable must refuse regardless of Batch.
			resp, err := srv.Submit(&Request{Matrix: "m", Precond: true, Batch: true})
			if err != nil || !resp.Converged || resp.BatchWidth != 0 {
				t.Errorf("preconditioned request mishandled: %+v err=%v", resp, err)
			}
		}()
	}
	wg.Wait()
	if s := srv.Snapshot(); s.BatchesDispatched != 0 || s.RequestsCoalesced != 0 {
		t.Fatalf("envelope leak: %+v", s)
	}
}

// TestCoalesceTenantFairness queues three requests from one tenant and
// one from another behind a busy dispatcher, with a width-3 batch: the
// round-robin slot handout must put the minority tenant in the first
// batch instead of letting the flooding tenant hold every slot.
func TestCoalesceTenantFairness(t *testing.T) {
	srv := newTestServer(t, Options{Concurrent: 1, BatchWidth: 3, BatchWindow: 50 * time.Millisecond})

	var wg sync.WaitGroup
	// Occupy the single dispatcher so the batchable requests accumulate
	// in the queue.
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, _ = srv.Submit(slowReq(300 * time.Millisecond))
	}()
	waitFor(t, srv, "blocker in flight", func(s Stats) bool { return s.Accepted == 1 && s.QueueLen == 0 })

	type res struct {
		resp *Response
		err  error
	}
	flood := make([]res, 3)
	var minority res
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r := res{}
			r.resp, r.err = srv.Submit(batchReq("flood"))
			flood[i] = r
		}(i)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		minority.resp, minority.err = srv.Submit(batchReq("minor"))
	}()
	waitFor(t, srv, "queue filled", func(s Stats) bool { return s.QueueLen == 4 })
	wg.Wait()

	if minority.err != nil || !minority.resp.Converged {
		t.Fatalf("minority tenant: %+v err=%v", minority.resp, minority.err)
	}
	if minority.resp.BatchWidth != 3 {
		t.Fatalf("minority tenant rode batch width %d, want 3 (first batch)", minority.resp.BatchWidth)
	}
	in3 := 0
	for i, r := range flood {
		if r.err != nil || !r.resp.Converged {
			t.Fatalf("flood member %d: %+v err=%v", i, r.resp, r.err)
		}
		if r.resp.BatchWidth == 3 {
			in3++
		}
	}
	// Two flood slots in the first batch, the third solved after it.
	if in3 != 2 {
		t.Fatalf("%d flood members in the width-3 batch, want 2", in3)
	}
}

// TestCoalescePerColumnTimeout pins per-member deadlines: an expired
// member's column retires cancelled while the rest of the batch solves
// to convergence.
func TestCoalescePerColumnTimeout(t *testing.T) {
	srv := newTestServer(t, Options{Concurrent: 1, BatchWidth: 2, BatchWindow: 100 * time.Millisecond})

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, _ = srv.Submit(slowReq(200 * time.Millisecond))
	}()
	waitFor(t, srv, "blocker in flight", func(s Stats) bool { return s.Accepted == 1 && s.QueueLen == 0 })

	var okResp, deadResp *Response
	var okErr, deadErr error
	wg.Add(2)
	go func() {
		defer wg.Done()
		okResp, okErr = srv.Submit(batchReq("a"))
	}()
	go func() {
		defer wg.Done()
		dead := batchReq("b")
		dead.Timeout = time.Nanosecond // expires before the first iteration
		deadResp, deadErr = srv.Submit(dead)
	}()
	waitFor(t, srv, "pair queued", func(s Stats) bool { return s.QueueLen == 2 })
	wg.Wait()

	if !errors.Is(deadErr, core.ErrCancelled) {
		t.Fatalf("expired member: resp=%+v err=%v", deadResp, deadErr)
	}
	if okErr != nil || !okResp.Converged || okResp.BatchWidth != 2 {
		t.Fatalf("surviving member: %+v err=%v", okResp, okErr)
	}
	s := srv.Snapshot()
	if s.Failed != 2 { // the blocker and the expired member
		t.Fatalf("failed=%d, want 2", s.Failed)
	}
}

// TestPrewarmPinsZeroRebuilds drives both pools with a concurrent mix
// after Prewarm(count = Concurrent) and requires bit-for-bit zero
// factorizations and graph preparations: traffic warmup only pools as
// deep as the checkouts that happened to overlap, Prewarm is exact.
func TestPrewarmPinsZeroRebuilds(t *testing.T) {
	srv := newTestServer(t, Options{Concurrent: 2, BatchWidth: 4, BatchWindow: 100 * time.Millisecond})
	if err := srv.Prewarm(batchReq("t"), 2); err != nil {
		t.Fatal(err)
	}
	if err := srv.Prewarm(&Request{Matrix: "m", Method: "feir"}, 2); err != nil {
		t.Fatal(err)
	}

	fac0, prep0 := sparse.FactorizationCount(), engine.GraphPrepCount()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			req := batchReq("t")
			if i%3 == 0 {
				req.Batch = false // exercise the solo pool too
			}
			resp, err := srv.Submit(req)
			if err != nil || !resp.Converged {
				t.Errorf("request %d: %+v err=%v", i, resp, err)
			}
		}(i)
	}
	wg.Wait()
	if d := sparse.FactorizationCount() - fac0; d != 0 {
		t.Fatalf("%d factorizations after prewarm", d)
	}
	if d := engine.GraphPrepCount() - prep0; d != 0 {
		t.Fatalf("%d graph preparations after prewarm", d)
	}
}

// TestCoalesceDistinctRHSBitwise submits two different right-hand sides
// in one batch and checks each member's solution against its solo run.
func TestCoalesceDistinctRHSBitwise(t *testing.T) {
	srv := newTestServer(t, Options{Concurrent: 1, BatchWidth: 2, BatchWindow: 200 * time.Millisecond})
	n := 900
	b0 := matgen.RandomVector(n, 1)
	b1 := matgen.RandomVector(n, 2)

	var wg sync.WaitGroup
	resps := make([]*Response, 2)
	for i, b := range [][]float64{b0, b1} {
		wg.Add(1)
		go func(i int, b []float64) {
			defer wg.Done()
			r := batchReq("t")
			r.B = b
			var err error
			resps[i], err = srv.Submit(r)
			if err != nil {
				t.Errorf("member %d: %v", i, err)
			}
		}(i, b)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	if resps[0].BatchWidth != 2 || resps[1].BatchWidth != 2 {
		t.Fatalf("did not coalesce: widths %d, %d", resps[0].BatchWidth, resps[1].BatchWidth)
	}
	for i, b := range [][]float64{b0, b1} {
		solo := &Request{Matrix: "m", Method: "feir", B: b, WantSolution: true}
		want, err := srv.Submit(solo)
		if err != nil || !want.Converged {
			t.Fatalf("solo %d: %+v err=%v", i, want, err)
		}
		for k := range want.X {
			if math.Float64bits(want.X[k]) != math.Float64bits(resps[i].X[k]) {
				t.Fatalf("member %d row %d: batched %v vs solo %v", i, k, resps[i].X[k], want.X[k])
			}
		}
	}
}
