package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"repro/internal/core"
	"repro/internal/matgen"
	"repro/internal/sparse"
)

// MatrixSubmission is the wire form of POST /v1/matrices: either a named
// paper-analogue generator ("gen" + "n") or a raw CSR (rowptr/cols/vals).
type MatrixSubmission struct {
	Key         string    `json:"key"`
	Gen         string    `json:"gen,omitempty"`
	N           int       `json:"n,omitempty"`
	RowPtr      []int     `json:"rowptr,omitempty"`
	Cols        []int     `json:"cols,omitempty"`
	Vals        []float64 `json:"vals,omitempty"`
	PageDoubles int       `json:"page_doubles,omitempty"`
}

// Build materialises the submitted matrix.
func (m *MatrixSubmission) Build() (*sparse.CSR, error) {
	if m.Key == "" {
		return nil, fmt.Errorf("serve: matrix submission needs a key")
	}
	if m.Gen != "" {
		return matgen.PaperMatrix(m.Gen, m.N)
	}
	if len(m.RowPtr) != m.N+1 {
		return nil, fmt.Errorf("serve: rowptr length %d for n=%d", len(m.RowPtr), m.N)
	}
	if len(m.Cols) != len(m.Vals) {
		return nil, fmt.Errorf("serve: cols/vals length mismatch %d != %d", len(m.Cols), len(m.Vals))
	}
	a := &sparse.CSR{N: m.N, M: m.N, RowPtr: m.RowPtr, Cols: m.Cols, Vals: m.Vals}
	a.BuildIndex32()
	return a, nil
}

// Handler returns the JSON API:
//
//	POST /v1/matrices  register a matrix (generator spec or raw CSR)
//	POST /v1/solve     run one solve request (blocks until done)
//	GET  /v1/stats     server counters
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/matrices", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		var sub MatrixSubmission
		if err := json.NewDecoder(r.Body).Decode(&sub); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		a, err := sub.Build()
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		s.RegisterMatrix(sub.Key, a, sub.PageDoubles)
		writeJSON(w, http.StatusOK, map[string]any{"key": sub.Key, "n": a.N, "nnz": len(a.Vals)})
	})
	mux.HandleFunc("/v1/solve", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		var req Request
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		resp, err := s.Submit(&req)
		if err != nil {
			http.Error(w, err.Error(), statusFor(err))
			return
		}
		writeJSON(w, http.StatusOK, resp)
	})
	mux.HandleFunc("/v1/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Snapshot())
	})
	return mux
}

// statusFor maps solve errors onto admission-aware HTTP statuses.
func statusFor(err error) int {
	switch {
	case errors.Is(err, ErrQueueFull):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrDraining):
		return http.StatusServiceUnavailable
	case errors.Is(err, ErrUnknownMatrix):
		return http.StatusNotFound
	case errors.Is(err, core.ErrCancelled):
		return http.StatusGatewayTimeout
	}
	return http.StatusBadRequest
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}
