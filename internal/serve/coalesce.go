// Request coalescing: merging concurrent same-matrix solve requests into
// one batched multi-RHS solve (core.BatchCG via registry.CheckoutBatch),
// so the operator streams through memory once per iteration for the
// whole group instead of once per request. A dispatcher that pops a
// batch-opted request holds it open for a short window, pulling
// compatible companions out of the admission queue up to the kernel
// width, then runs one batched solve and fans the per-column outcomes
// back out to the waiting submitters.
//
// Per-request semantics survive coalescing:
//   - deadlines and cancellation bind per column (a timed-out member's
//     column retires; the rest keep solving);
//   - the batch dispatches and runs at the MAX priority of its members
//     (coalescing never lowers anyone's tier);
//   - slots are handed out round-robin across tenants, so one tenant
//     cannot hold the whole batch while another waits — but a lone
//     tenant still fills every slot (the fairness cap never starves).
package serve

import (
	"container/heap"
	"context"
	"fmt"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/defaults"
	"repro/internal/registry"
	"repro/internal/sparse"
)

// batchKey identifies requests that can share one batched solve: same
// operator, same solve configuration. Priority, timeout and tenant stay
// out — they are per-member (max, per-column, fairness respectively).
type batchKey struct {
	matrix  string
	method  core.Method
	tol     float64
	maxIter int
}

func batchKeyOf(r *Request) batchKey {
	m, _ := ParseMethod(r.Method) // batchable() vetted it
	return batchKey{matrix: r.Matrix, method: m, tol: r.Tol, maxIter: r.MaxIter}
}

// batchable reports whether a request fits the batched envelope: opted
// in, unpreconditioned single-node CG under ideal/feir/afeir, and no
// per-request fault injection (an injector targets one fault domain; a
// batch shares it).
func (s *Server) batchable(r *Request) bool {
	if !r.Batch || r.Precond || r.Ranks != 0 || r.DUEMTBE > 0 {
		return false
	}
	if r.Solver != "" && r.Solver != "cg" {
		return false
	}
	m, err := ParseMethod(r.Method)
	if err != nil {
		return false
	}
	switch m {
	case core.MethodIdeal, core.MethodFEIR, core.MethodAFEIR:
		return true
	}
	return false
}

// batchWidth resolves the configured kernel width, capped at what the
// SpMM kernels support.
func (s *Server) batchWidth() int {
	w := defaults.ServeBatchWidthOr(s.opts.BatchWidth)
	if w > sparse.MaxBatchWidth {
		w = sparse.MaxBatchWidth
	}
	return w
}

// collectBatch gathers companions for a popped leader: compatible queued
// requests now, then whatever arrives within the coalescing window, up
// to the kernel width. Returns the group including the leader.
func (s *Server) collectBatch(leader *pending) []*pending {
	width := s.batchWidth()
	group := []*pending{leader}
	if width <= 1 {
		return group
	}
	key := batchKeyOf(leader.req)
	window := defaults.ServeBatchWindowOr(s.opts.BatchWindow)
	deadline := time.Now().Add(window)
	poll := window / 8
	if poll < 50*time.Microsecond {
		poll = 50 * time.Microsecond
	}
	for {
		s.mu.Lock()
		s.takeMatchesLocked(&group, key, width)
		s.mu.Unlock()
		if len(group) >= width || !time.Now().Before(deadline) {
			return group
		}
		time.Sleep(poll)
	}
}

// takeMatchesLocked moves queued requests matching key into the group,
// round-robin across tenants (fewest slots held first, FIFO within a
// tenant), up to width. Caller holds s.mu.
func (s *Server) takeMatchesLocked(group *[]*pending, key batchKey, width int) {
	if len(*group) >= width {
		return
	}
	byTenant := map[string][]*pending{}
	for _, q := range s.queue {
		if s.batchable(q.req) && batchKeyOf(q.req) == key {
			byTenant[q.req.Tenant] = append(byTenant[q.req.Tenant], q)
		}
	}
	if len(byTenant) == 0 {
		return
	}
	for t := range byTenant {
		c := byTenant[t]
		sort.Slice(c, func(i, j int) bool { return c[i].seq < c[j].seq })
	}
	held := map[string]int{}
	for _, p := range *group {
		held[p.req.Tenant]++
	}
	for len(*group) < width {
		var best string
		found := false
		for t, c := range byTenant {
			if len(c) == 0 {
				continue
			}
			if !found || held[t] < held[best] ||
				(held[t] == held[best] && c[0].seq < byTenant[best][0].seq) {
				best, found = t, true
			}
		}
		if !found {
			return
		}
		p := byTenant[best][0]
		byTenant[best] = byTenant[best][1:]
		heap.Remove(&s.queue, p.index)
		s.inflight.Add(1)
		held[best]++
		*group = append(*group, p)
	}
}

// executeBatch runs one coalesced group and fans outcomes back to every
// member's submitter, maintaining the same counters as the solo path
// plus the batch-occupancy ones.
func (s *Server) executeBatch(group []*pending) {
	resps, errs := s.runBatch(group)
	s.mu.Lock()
	s.batches++
	s.coalesced += int64(len(group))
	for i := range group {
		if errs[i] != nil {
			s.failed++
		} else {
			s.completed++
			if resps[i].Warm {
				s.warm++
			}
		}
	}
	s.mu.Unlock()
	for i, p := range group {
		p.done <- outcome{resp: resps[i], err: errs[i]}
		s.inflight.Done()
	}
}

// runBatch executes the batched solve for a coalesced group.
func (s *Server) runBatch(group []*pending) ([]*Response, []error) {
	resps := make([]*Response, len(group))
	errs := make([]error, len(group))
	fail := func(err error) ([]*Response, []error) {
		for i := range errs {
			errs[i] = err
		}
		return resps, errs
	}
	leader := group[0].req
	octx, ok := s.cache.Get(leader.Matrix)
	if !ok {
		return fail(fmt.Errorf("%w: %q", ErrUnknownMatrix, leader.Matrix))
	}
	method, err := ParseMethod(leader.Method)
	if err != nil {
		return fail(err)
	}

	// Bind columns: invalid members error out individually, the rest
	// still share the batch.
	var rhs [][]float64
	var live []int // group index of each bound column
	priority := 0
	for i, p := range group {
		b := p.req.B
		if b == nil {
			b = make([]float64, octx.A.N)
			for k := range b {
				b[k] = 1
			}
		} else if len(b) != octx.A.N {
			errs[i] = fmt.Errorf("serve: rhs length %d for n=%d", len(b), octx.A.N)
			continue
		}
		rhs = append(rhs, b)
		live = append(live, i)
		if p.req.Priority > priority {
			priority = p.req.Priority
		}
	}
	if len(live) == 0 {
		return resps, errs
	}
	width := s.batchWidth()
	if width < len(live) {
		width = len(live)
	}

	cfg := registry.Config{
		Config: core.Config{
			Method:       method,
			Workers:      s.opts.Workers,
			PageDoubles:  octx.PageDoubles,
			Tol:          leader.Tol,
			MaxIter:      leader.MaxIter,
			TaskPriority: priority, // the batch runs at its members' max tier
		},
	}
	co, err := octx.CheckoutBatch("cg", rhs, width, cfg)
	if err != nil {
		for _, i := range live {
			errs[i] = err
		}
		return resps, errs
	}
	defer co.Release()

	// Per-column deadlines: a member's timeout cancels its column only.
	for j, i := range live {
		timeout := group[i].req.Timeout
		if timeout <= 0 {
			timeout = defaults.ServeTimeoutOr(s.opts.Timeout)
		}
		cctx, cancel := context.WithTimeout(context.Background(), timeout)
		defer cancel()
		col := cctx
		co.S.SetColumnCancelled(j, func() bool { return col.Err() != nil })
	}

	res, runErr := co.S.Run()
	if runErr != nil {
		for _, i := range live {
			errs[i] = runErr
		}
		return resps, errs
	}
	for j, i := range live {
		col := res.Columns[j]
		if col.Cancelled {
			errs[i] = core.ErrCancelled
			continue
		}
		resp := &Response{
			Converged:   col.Converged,
			Iterations:  col.Iterations,
			RelResidual: col.RelResidual,
			Elapsed:     res.Elapsed,
			Queued:      time.Since(group[i].enqueued) - res.Elapsed,
			Warm:        co.Warm,
			Stats:       res.Stats, // whole-batch aggregate
			BatchWidth:  len(live),
		}
		if group[i].req.WantSolution {
			resp.X = make([]float64, octx.A.N)
			co.S.SolutionInto(j, resp.X)
		}
		resps[i] = resp
	}
	return resps, errs
}
